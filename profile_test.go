package iva

import (
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func fillProfiled(t *testing.T, n int, opts Options) (*Store, *Query) {
	t.Helper()
	s, err := Create("", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for i := 0; i < n; i++ {
		if _, err := s.Insert(map[string]Value{
			"Type":  Strings("Digital Camera"),
			"Price": Num(float64(100 + i%97)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	return s, NewQuery(7).WhereNum("Price", 150).WhereText("Type", "Camera")
}

// TestSearchProfiledIdentical asserts the profiled entry point changes
// nothing about execution: results are bit-identical to Search, and the
// profile describes a plan whose phases fit inside the measured wall clock.
func TestSearchProfiledIdentical(t *testing.T) {
	s, q := fillProfiled(t, 400, Options{})
	want, _, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := s.SearchProfiled(q)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, "profiled", res, want)
	if prof == nil || prof.Stats.Phase == nil {
		t.Fatal("profile missing phase breakdown")
	}
	if len(prof.TraceID) != 16 {
		t.Fatalf("trace id %q, want 16 hex digits", prof.TraceID)
	}
	ph := prof.Stats.Phase
	total := ph.FilterTime + ph.RefineTime + ph.MergeTime
	if total <= 0 {
		t.Fatalf("phase times sum to %v", total)
	}
	if total > prof.Elapsed {
		t.Fatalf("phases (%v) exceed measured wall clock (%v)", total, prof.Elapsed)
	}
	if ph.StripesTotal < 1 {
		t.Fatalf("plan covered %d stripes", ph.StripesTotal)
	}
	if len(ph.Workers) != prof.Stats.Workers {
		t.Fatalf("%d worker profiles for %d workers", len(ph.Workers), prof.Stats.Workers)
	}
	var scanned int64
	for _, w := range ph.Workers {
		scanned += w.Scanned
	}
	if scanned != prof.Stats.Scanned {
		t.Fatalf("worker profiles scanned %d, query scanned %d", scanned, prof.Stats.Scanned)
	}
}

// TestProfileRender is the EXPLAIN ANALYZE smoke test: every phase line, the
// I/O summary, and the trace id appear in the rendering.
func TestProfileRender(t *testing.T) {
	s, q := fillProfiled(t, 200, Options{SearchParallelism: 4})
	_, prof, err := s.SearchProfiled(q)
	if err != nil {
		t.Fatal(err)
	}
	out := prof.Render()
	for _, frag := range []string{
		"Search ", "results=7", "trace=" + prof.TraceID,
		"Filter:", "scanned=", "stripes=",
		"Refine:", "fetched=",
		"Merge:",
		"pool_hit_ratio=",
		"Worker 0:",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, out)
		}
	}
}

// TestShardedProfile covers the fan-out profile: byte-identical results, the
// concatenated worker breakdown, and per-shard lines in the rendering.
func TestShardedProfile(t *testing.T) {
	s, err := CreateSharded("", 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		if _, err := s.Insert(map[string]Value{"Price": Num(float64(i % 61))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	q := NewQuery(5).WhereNum("Price", 30)
	want, _, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := s.SearchProfiled(q)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, "sharded profiled", res, want)
	if prof.Stats.Phase == nil || len(prof.Stats.Phase.Workers) < 2 {
		t.Fatalf("fan-out profile lost the per-shard workers: %+v", prof.Stats.Phase)
	}
	if len(prof.Stats.Shards) != 2 {
		t.Fatalf("%d shard breakdowns, want 2", len(prof.Stats.Shards))
	}
	out := prof.Render()
	if !strings.Contains(out, "Shard 0:") || !strings.Contains(out, "Shard 1:") {
		t.Fatalf("rendering missing per-shard lines:\n%s", out)
	}
}

// metricValue extracts one sample's value from a Prometheus text exposition.
func metricValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(sample) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("sample %q not found in exposition", sample)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("sample %q value %q: %v", sample, m[1], err)
	}
	return v
}

// TestPhaseHistogramsSumToLatency asserts the acceptance property that the
// per-phase latency histograms decompose the whole-query histogram: summed
// over many queries, filter+refine+merge time equals end-to-end time minus
// per-query dispatch overhead (bounded by a generous slack).
func TestPhaseHistogramsSumToLatency(t *testing.T) {
	s, q := fillProfiled(t, 500, Options{})
	const n = 20
	for i := 0; i < n; i++ {
		if _, _, err := s.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	text := s.MetricsText()
	durSum := metricValue(t, text, "iva_query_duration_seconds_sum")
	phaseSum := metricValue(t, text, `iva_query_phase_duration_seconds_sum{phase="filter"}`) +
		metricValue(t, text, `iva_query_phase_duration_seconds_sum{phase="refine"}`) +
		metricValue(t, text, `iva_query_phase_duration_seconds_sum{phase="merge"}`)
	if phaseSum <= 0 {
		t.Fatalf("phase histograms observed nothing (sum=%g)", phaseSum)
	}
	// Phases are sub-intervals of the query span; they can never exceed it.
	if phaseSum > durSum*1.001+1e-6 {
		t.Fatalf("phase sum %gs exceeds query duration sum %gs", phaseSum, durSum)
	}
	// And they must account for it up to dispatch overhead: allow half the
	// total plus 1ms per query of absolute slack so the assertion stays
	// robust on slow CI machines while still catching a dead phase timer.
	if slack := durSum/2 + n*0.001; phaseSum < durSum-slack {
		t.Fatalf("phase sum %gs accounts for too little of %gs", phaseSum, durSum)
	}
	if c := metricValue(t, text, "iva_query_duration_seconds_count"); c < n {
		t.Fatalf("duration histogram count %g, want >= %d", c, n)
	}
}

// TestWriteTracesJSON exercises the /debug/trace payload: valid JSON, the
// sampled ring retains the queries just run, exemplars join latency buckets
// to retained trace ids, and FindTrace resolves an id round-tripped through
// QueryStats.
func TestWriteTracesJSON(t *testing.T) {
	s, q := fillProfiled(t, 200, Options{TraceSampleEvery: 1})
	_, qs, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.WriteTraces(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total  int64 `json:"total"`
		Traces []struct {
			Trace json.RawMessage `json:"trace"`
		} `json:"traces"`
		Exemplars []struct {
			LE      string  `json:"le"`
			Value   float64 `json:"value"`
			TraceID string  `json:"trace_id"`
		} `json:"exemplars"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace payload not JSON: %v\n%s", err, b.String())
	}
	if doc.Total < 1 || len(doc.Traces) < 1 {
		t.Fatalf("ring retained %d/%d traces, want >= 1", len(doc.Traces), doc.Total)
	}
	if len(doc.Exemplars) == 0 {
		t.Fatal("latency histogram produced no exemplars")
	}
	for _, e := range doc.Exemplars {
		if len(e.TraceID) != 16 {
			t.Fatalf("exemplar trace id %q, want 16 hex digits", e.TraceID)
		}
	}
	if tr := s.FindTrace(qs.TraceID); tr == nil {
		t.Fatalf("trace %s not retained at sample-every=1", qs.TraceID)
	} else if tr.TraceID() != qs.TraceID {
		t.Fatalf("FindTrace returned trace %s, want %s", tr.TraceID(), qs.TraceID)
	}
}
