package iva

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestShardedMatchesSingleStore(t *testing.T) {
	// The partitioned search must return exactly the distances a single
	// store returns for the same data.
	single, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := CreateSharded("", 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	rng := rand.New(rand.NewSource(3))
	names := []string{"canon", "sony", "nikon", "leica", "pentax", "kodak"}
	for i := 0; i < 400; i++ {
		row := Row{
			"brand": Strings(names[rng.Intn(len(names))]),
			"price": Num(float64(rng.Intn(1000))),
		}
		if _, err := single.Insert(row); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := NewQuery(1+rng.Intn(10)).
			WhereText("brand", names[rng.Intn(len(names))]).
			WhereNum("price", float64(rng.Intn(1000)))
		a, _, err := single.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := sharded.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
				t.Fatalf("trial %d pos %d: %v vs %v", trial, i, a[i].Dist, b[i].Dist)
			}
		}
	}
}

func TestShardedBalancesInserts(t *testing.T) {
	s, err := CreateSharded("", 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 90; i++ {
		if _, err := s.Insert(Row{"x": Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range s.shards {
		if live := st.Stats().Tuples; live != 30 {
			t.Fatalf("shard %d holds %d tuples, want 30", i, live)
		}
	}
}

func TestShardedCRUD(t *testing.T) {
	s, err := CreateSharded("", 2, Options{CleanThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tid, err := s.Insert(Row{"name": Strings("original")})
	if err != nil {
		t.Fatal(err)
	}
	row, err := s.Get(tid)
	if err != nil || row["name"].Texts()[0] != "original" {
		t.Fatalf("Get: %v %v", row, err)
	}
	newTID, err := s.Update(tid, Row{"name": Strings("updated")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(tid); err != ErrNotFound {
		t.Fatalf("old id still resolves: %v", err)
	}
	if err := s.Delete(newTID); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(newTID); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if err := s.Delete(50 * ShardStride); err != ErrNotFound {
		t.Fatalf("out-of-range shard: %v", err)
	}
}

func TestShardedPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cluster")
	s, err := CreateSharded(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tids []TID
	for i := 0; i < 30; i++ {
		tid, err := s.Insert(Row{"item": Strings(fmt.Sprintf("thing %d", i))})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Tuples; got != 30 {
		t.Fatalf("reopened tuples = %d", got)
	}
	row, err := s2.Get(tids[17])
	if err != nil || row["item"].Texts()[0] != "thing 17" {
		t.Fatalf("Get after reopen: %v %v", row, err)
	}
	res, _, err := s2.Search(NewQuery(1).WhereText("item", "thing 5"))
	if err != nil || len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("search after reopen: %v %v", res, err)
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := CreateSharded("", 0, Options{}); err == nil {
		t.Fatal("zero shards accepted")
	}
}
