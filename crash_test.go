package iva

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestCrashConsistency simulates a crash: the store is abandoned without
// Close after a Sync, with further unsynced writes on top. Reopening must
// recover exactly the synced prefix, pass the integrity check, and accept
// new writes (which safely overwrite the unsynced tail).
func TestCrashConsistency(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := st.Insert(Row{
			"name": Strings(fmt.Sprintf("durable %02d", i)),
			"seq":  Num(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced writes after the checkpoint, then "crash" (no Close).
	for i := 0; i < 15; i++ {
		if _, err := st.Insert(Row{"name": Strings("lost in the crash")}); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon st. The write-through cache means the bytes are on "disk",
	// but the headers still describe the synced state.

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st2.Close()
	if got := st2.Stats().Tuples; got != 40 {
		t.Fatalf("recovered %d tuples, want the synced 40", got)
	}
	rep, err := st2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("recovered store inconsistent: %v", rep.Problems)
	}
	// Synced data is queryable.
	res, _, err := st2.Search(NewQuery(1).WhereText("name", "durable 23"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("synced tuple lost: %v", res)
	}
	// Unsynced data is gone, not half-present.
	res, _, err = st2.Search(NewQuery(1).WhereText("name", "lost in the crash"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 1 && res[0].Dist == 0 {
		t.Fatal("unsynced tuple survived the crash intact (header not authoritative)")
	}
	// New writes land cleanly over the abandoned tail.
	tid, err := st2.Insert(Row{"name": Strings("post crash")})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = st2.Search(NewQuery(1).WhereText("name", "post crash"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TID != tid || res[0].Dist != 0 {
		t.Fatalf("post-crash insert not found: %v", res)
	}
	rep, err = st2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("post-crash store inconsistent: %v", rep.Problems)
	}
}
