package vaq

import (
	"math"
	"math/rand"
	"testing"
)

// TestEncodeCellEdges pins down which slice a value exactly on a cell edge
// lands in, and that the lower bound stays exact there: a value encodes to a
// slice whose bounds contain it, so MinDist(v, Encode(v)) is always zero —
// including at v == min, v == max and every interior edge.
func TestEncodeCellEdges(t *testing.T) {
	q, err := New(0, 8, 3) // 7 data slices of width 8/7 over [0,8]
	if err != nil {
		t.Fatal(err)
	}
	if q.Slices() != 7 {
		t.Fatalf("Slices() = %d, want 7", q.Slices())
	}
	w := 8.0 / 7.0
	for c := uint64(0); c < q.Slices(); c++ {
		edge := float64(c) * w
		code := q.Encode(edge)
		// An interior edge belongs to the upper slice (Encode is lower-
		// inclusive via v <= min and the integer truncation); either way the
		// lower-bound invariant must hold exactly.
		if d := q.MinDist(edge, code); d != 0 {
			t.Fatalf("MinDist(edge %v, Encode) = %v, want 0", edge, d)
		}
		lo, hi := q.SliceBounds(code)
		if edge < lo || edge > hi {
			t.Fatalf("edge %v encoded to slice %d with bounds [%v,%v]", edge, code, lo, hi)
		}
	}
	if q.Encode(0) != 0 {
		t.Fatalf("Encode(min) = %d, want 0", q.Encode(0))
	}
	if q.Encode(8) != q.Slices()-1 {
		t.Fatalf("Encode(max) = %d, want %d", q.Encode(8), q.Slices()-1)
	}
	// Out-of-domain values clamp to the edge slices, whose bounds are open
	// toward the clamped side — the lower bound must stay 0 for them.
	for _, v := range []float64{-1e9, -0.001, 8.001, 1e12} {
		if d := q.MinDist(v, q.Encode(v)); d != 0 {
			t.Fatalf("MinDist(%v, Encode) = %v, want 0 (clamped slice is unbounded)", v, d)
		}
	}
}

// TestDomainRejection checks New refuses non-finite and inverted domains.
func TestDomainRejection(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	bad := [][2]float64{
		{nan, 1}, {0, nan}, {nan, nan},
		{inf, inf}, {-inf, 0}, {0, inf}, {-inf, inf},
		{2, 1},
	}
	for _, d := range bad {
		if _, err := New(d[0], d[1], 8); err == nil {
			t.Errorf("New(%v, %v, 8) accepted an invalid domain", d[0], d[1])
		}
	}
	for _, bits := range []int{0, -1, 64, 100} {
		if _, err := New(0, 1, bits); err == nil {
			t.Errorf("New(0, 1, %d) accepted an invalid width", bits)
		}
	}
	// Degenerate single-value domain is legal and collapses to one slice
	// covering everything.
	q, err := New(5, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c := q.Encode(123); c != 0 {
		t.Fatalf("degenerate Encode = %d, want 0", c)
	}
	if d := q.MinDist(-40, 0); d != 0 {
		t.Fatalf("degenerate MinDist = %v, want 0", d)
	}
}

// TestLowerBoundInvariant is the filter-correctness property on random
// domains, values and queries: for any data value v and query x,
// MinDist(x, Encode(v)) ≤ |x − v| (no false negatives), MinDist is
// non-negative, Encode never emits the reserved ndf code, and MaxDist is
// never below MinDist.
func TestLowerBoundInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7a0b))
	for trial := 0; trial < 200; trial++ {
		min := rng.NormFloat64() * 1000
		max := min + math.Abs(rng.NormFloat64())*1000
		bits := 1 + rng.Intn(12)
		q, err := New(min, max, bits)
		if err != nil {
			t.Fatal(err)
		}
		span := max - min
		for i := 0; i < 200; i++ {
			// Values mostly inside the domain, sometimes well outside.
			v := min + (rng.Float64()*1.5-0.25)*span
			x := min + (rng.Float64()*1.5-0.25)*span
			c := q.Encode(v)
			if c == q.NDFReserved() {
				t.Fatalf("trial %d: Encode(%v) produced the reserved ndf code %d", trial, v, c)
			}
			if c >= q.Slices() {
				t.Fatalf("trial %d: Encode(%v) = %d outside %d slices", trial, v, c, q.Slices())
			}
			lb := q.MinDist(x, c)
			if lb < 0 || math.IsNaN(lb) {
				t.Fatalf("trial %d: MinDist(%v, %d) = %v", trial, x, c, lb)
			}
			if actual := math.Abs(x - v); lb > actual+1e-9*math.Abs(actual) {
				t.Fatalf("trial %d: MinDist(%v, Encode(%v)) = %v exceeds true distance %v (domain [%v,%v] bits %d)",
					trial, x, v, lb, actual, min, max, bits)
			}
			if ub := q.MaxDist(x, c); ub < lb {
				t.Fatalf("trial %d: MaxDist %v < MinDist %v", trial, ub, lb)
			}
		}
	}
}
