package vaq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t testing.TB, min, max float64, bits int) *Quantizer {
	t.Helper()
	q, err := New(min, max, bits)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 0); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := New(0, 1, 64); err == nil {
		t.Error("bits=64 accepted")
	}
	if _, err := New(2, 1, 8); err == nil {
		t.Error("min>max accepted")
	}
	if _, err := New(math.NaN(), 1, 8); err == nil {
		t.Error("NaN domain accepted")
	}
	if _, err := New(5, 5, 8); err != nil {
		t.Errorf("degenerate domain rejected: %v", err)
	}
}

func TestNDFReservedCode(t *testing.T) {
	q := mustNew(t, 0, 100, 4)
	if q.NDFReserved() != 15 {
		t.Fatalf("ndf code = %d, want 15", q.NDFReserved())
	}
	if q.Slices() != 15 {
		t.Fatalf("slices = %d, want 15", q.Slices())
	}
	// No in-domain value may encode to the ndf code.
	for v := -10.0; v <= 110; v += 0.5 {
		if q.Encode(v) == q.NDFReserved() {
			t.Fatalf("Encode(%v) produced the reserved ndf code", v)
		}
	}
}

func TestEncodeClamping(t *testing.T) {
	q := mustNew(t, 0, 100, 4)
	if q.Encode(-50) != 0 {
		t.Fatal("below-domain value did not clamp to slice 0")
	}
	if q.Encode(1e9) != q.Slices()-1 {
		t.Fatal("above-domain value did not clamp to top slice")
	}
}

func TestEncodeMonotone(t *testing.T) {
	q := mustNew(t, -10, 10, 6)
	prev := uint64(0)
	for v := -12.0; v <= 12; v += 0.01 {
		c := q.Encode(v)
		if c < prev {
			t.Fatalf("Encode not monotone at %v: %d < %d", v, c, prev)
		}
		prev = c
	}
}

func TestMinDistLowerBound(t *testing.T) {
	// Core no-false-negative property: MinDist(q, Encode(v)) <= |q - v|,
	// including out-of-domain v (clamped codes).
	rng := rand.New(rand.NewSource(9))
	for _, bits := range []int{2, 4, 8, 16} {
		q := mustNew(t, -100, 300, bits)
		for trial := 0; trial < 5000; trial++ {
			v := rng.Float64()*600 - 200 // may fall outside the domain
			query := rng.Float64()*600 - 200
			c := q.Encode(v)
			lb := q.MinDist(query, c)
			actual := math.Abs(query - v)
			if lb > actual+1e-9 {
				t.Fatalf("bits=%d: MinDist(%v, code(%v)) = %v > |q-v| = %v",
					bits, query, v, lb, actual)
			}
		}
	}
}

func TestMinDistInsideSliceIsZero(t *testing.T) {
	q := mustNew(t, 0, 150, 4) // 15 slices of width 10
	c := q.Encode(42)
	if d := q.MinDist(45, c); d != 0 {
		t.Fatalf("MinDist inside slice = %v, want 0", d)
	}
}

func TestMinDistOutsideSlice(t *testing.T) {
	q := mustNew(t, 0, 150, 4) // width 10: slice 4 covers [40,50)
	c := q.Encode(42)
	if c != 4 {
		t.Fatalf("Encode(42) = %d, want 4", c)
	}
	if d := q.MinDist(75, c); math.Abs(d-25) > 1e-9 {
		t.Fatalf("MinDist(75, slice4) = %v, want 25", d)
	}
	if d := q.MinDist(12, c); math.Abs(d-28) > 1e-9 {
		t.Fatalf("MinDist(12, slice4) = %v, want 28", d)
	}
}

func TestSliceBoundsOpenEnds(t *testing.T) {
	q := mustNew(t, 0, 100, 3) // 7 slices
	lo, _ := q.SliceBounds(0)
	if !math.IsInf(lo, -1) {
		t.Fatalf("slice 0 lo = %v, want -Inf", lo)
	}
	_, hi := q.SliceBounds(q.Slices() - 1)
	if !math.IsInf(hi, 1) {
		t.Fatalf("top slice hi = %v, want +Inf", hi)
	}
}

func TestDegenerateDomain(t *testing.T) {
	q := mustNew(t, 7, 7, 8)
	if q.Encode(7) != 0 || q.Encode(100) != 0 {
		t.Fatal("degenerate domain must encode everything to slice 0")
	}
	if d := q.MinDist(3, 0); d != 0 {
		t.Fatalf("degenerate MinDist = %v, want 0 (no information)", d)
	}
}

func TestQuickLowerBound(t *testing.T) {
	q := mustNew(t, -1000, 1000, 10)
	f := func(v, query float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(query) || math.IsInf(query, 0) {
			return true
		}
		c := q.Encode(v)
		return q.MinDist(query, c) <= math.Abs(query-v)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeBeatsAbsoluteResolution(t *testing.T) {
	// The paper's motivation for relative domains: with values clustered in
	// [0, 1000] inside a 32-bit absolute domain, the relative quantizer
	// discriminates and the absolute one does not.
	rel := mustNew(t, 0, 1000, 8)
	abs, err := AbsoluteQuantizer(math.MinInt32, math.MaxInt32, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := 100.0, 900.0
	if rel.Encode(a) == rel.Encode(b) {
		t.Fatal("relative quantizer cannot distinguish 100 from 900")
	}
	if abs.Encode(a) != abs.Encode(b) {
		t.Fatal("absolute quantizer unexpectedly distinguishes them (test premise broken)")
	}
	// And the relative lower bound is correspondingly tighter.
	if rel.MinDist(a, rel.Encode(b)) <= abs.MinDist(a, abs.Encode(b)) {
		t.Fatal("relative lower bound not tighter than absolute")
	}
}

func TestMaxDistUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := mustNew(t, -50, 250, 6)
	for trial := 0; trial < 5000; trial++ {
		v := rng.Float64()*300 - 50 // in-domain values only
		query := rng.Float64()*400 - 100
		c := q.Encode(v)
		ub := q.MaxDist(query, c)
		if actual := math.Abs(query - v); ub < actual-1e-9 {
			t.Fatalf("MaxDist(%v, code(%v)) = %v < |q-v| = %v", query, v, ub, actual)
		}
	}
	// Edge slices are unbounded.
	if ub := q.MaxDist(0, 0); !math.IsInf(ub, 1) {
		t.Fatalf("edge slice upper bound = %v, want +Inf", ub)
	}
}

func BenchmarkEncode(b *testing.B) {
	q := mustNew(b, 0, 1e6, 16)
	for i := 0; i < b.N; i++ {
		q.Encode(float64(i % 1000000))
	}
}

func BenchmarkMinDist(b *testing.B) {
	q := mustNew(b, 0, 1e6, 16)
	c := q.Encode(123456)
	for i := 0; i < b.N; i++ {
		q.MinDist(float64(i%1000000), c)
	}
}
