// Package vaq implements the iVA-file's approximation code for numerical
// values (§III-C). The classic VA-file truncates a value's low bits, slicing
// the attribute's *absolute* domain (e.g. all 32-bit integers) into equal
// cells; because real values cluster in a tiny sub-range, most of those
// cells are empty and the code barely discriminates. The paper instead
// slices the *relative* domain — the [min, max] range actually observed on
// the attribute — giving the same code length far more resolution.
//
// A code identifies the slice its value falls in, so the minimum possible
// distance between a data value and a query value is computable from the
// code alone and lower-bounds the true distance (no false negatives).
// Values inserted outside the current relative domain are encoded with the
// nearest slice, which keeps the lower-bound property; the periodic rebuild
// re-derives the domain (§III-C, §IV-B).
package vaq

import (
	"fmt"
	"math"
)

// Quantizer maps numeric values of one attribute to fixed-width slice codes
// over the attribute's relative domain.
type Quantizer struct {
	min, max float64
	bits     int    // code width in bits
	slices   uint64 // number of usable slices
	ndf      uint64 // reserved code for ndf (Type IV lists), = 1<<bits - 1
}

// NDFReserved reports the code reserved for ndf cells in Type IV lists.
func (q *Quantizer) NDFReserved() uint64 { return q.ndf }

// New returns a quantizer of `bits`-wide codes over the relative domain
// [min, max]. bits must be in [1, 63]; min may equal max (single-value
// domains degrade to one slice). The top code (all ones) is reserved for
// ndf, leaving 2^bits−1 usable slices.
func New(min, max float64, bits int) (*Quantizer, error) {
	if bits < 1 || bits > 63 {
		return nil, fmt.Errorf("vaq: bits = %d, want in [1,63]", bits)
	}
	if math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) || min > max {
		return nil, fmt.Errorf("vaq: invalid domain [%v,%v]", min, max)
	}
	ndf := uint64(1)<<uint(bits) - 1
	slices := ndf // codes 0 .. ndf-1 are data slices
	if slices == 0 {
		slices = 1
	}
	return &Quantizer{min: min, max: max, bits: bits, slices: slices, ndf: ndf}, nil
}

// Bits returns the code width.
func (q *Quantizer) Bits() int { return q.bits }

// Domain returns the relative domain the quantizer was built over.
func (q *Quantizer) Domain() (min, max float64) { return q.min, q.max }

// Slices returns the number of usable data slices.
func (q *Quantizer) Slices() uint64 { return q.slices }

func (q *Quantizer) width() float64 {
	w := (q.max - q.min) / float64(q.slices)
	if w <= 0 {
		return 0
	}
	return w
}

// Encode returns the slice code of v. Values outside the relative domain
// clamp to the nearest slice (the paper's rule for post-build inserts).
func (q *Quantizer) Encode(v float64) uint64 {
	w := q.width()
	if w == 0 || math.IsNaN(v) {
		// NaN is rejected at the model layer; mapping it to slice 0 here
		// keeps the float→uint conversion defined for hostile inputs.
		return 0
	}
	if v <= q.min {
		return 0
	}
	if v >= q.max {
		return q.slices - 1
	}
	c := uint64((v - q.min) / w)
	if c >= q.slices {
		c = q.slices - 1
	}
	return c
}

// SliceBounds returns the value range [lo, hi] covered by code c. The last
// slice extends to +Inf and the first to −Inf, reflecting the clamping rule
// so that lower bounds stay valid for out-of-domain data values.
func (q *Quantizer) SliceBounds(c uint64) (lo, hi float64) {
	w := q.width()
	if w == 0 {
		return math.Inf(-1), math.Inf(1)
	}
	lo = q.min + float64(c)*w
	hi = q.min + float64(c+1)*w
	if c == 0 {
		lo = math.Inf(-1)
	}
	if c == q.slices-1 {
		hi = math.Inf(1)
	}
	return lo, hi
}

// MinDist returns the minimum possible |query − value| for any value whose
// code is c: zero when the query falls inside the slice, otherwise the
// distance to the nearest slice edge. This is the filter-step lower bound.
func (q *Quantizer) MinDist(query float64, c uint64) float64 {
	lo, hi := q.SliceBounds(c)
	switch {
	case query < lo:
		return lo - query
	case query > hi:
		return query - hi
	default:
		return 0
	}
}

// MinDistRange returns the minimum possible |query − value| for any value
// whose code lies in [cmin, cmax]: zero when the query falls inside the
// union of the covered slices, otherwise the distance to the nearest edge.
// This is the zone-map stripe lower bound — MinDist generalized from one
// cell to a contiguous code range.
func (q *Quantizer) MinDistRange(query float64, cmin, cmax uint64) float64 {
	if cmin > cmax {
		cmin, cmax = cmax, cmin
	}
	lo, _ := q.SliceBounds(cmin)
	_, hi := q.SliceBounds(cmax)
	switch {
	case query < lo:
		return lo - query
	case query > hi:
		return query - hi
	default:
		return 0
	}
}

// MaxDist returns the maximum possible |query − value| for any value whose
// code is c: the distance to the farthest slice edge. Edge slices are
// unbounded (clamped out-of-domain values land there), so their upper bound
// is +Inf. The VA-file's sequential query plan needs this upper bound; the
// iVA-file's parallel plan does not (§IV-A), but the plan ablation uses it.
func (q *Quantizer) MaxDist(query float64, c uint64) float64 {
	lo, hi := q.SliceBounds(c)
	d1 := math.Abs(query - lo)
	d2 := math.Abs(query - hi)
	if d1 > d2 {
		return d1
	}
	return d2
}

// AbsoluteQuantizer implements the original VA-file scheme over a fixed
// absolute domain, kept for the ablation experiment comparing absolute vs.
// relative domains (DESIGN.md §7). It simply delegates to a Quantizer whose
// domain is the full absolute range.
func AbsoluteQuantizer(absMin, absMax float64, bits int) (*Quantizer, error) {
	return New(absMin, absMax, bits)
}
