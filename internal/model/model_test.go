package model

import (
	"strings"
	"testing"
)

func TestValueConstructors(t *testing.T) {
	n := Num(3.5)
	if n.Kind != KindNumeric || n.Num != 3.5 {
		t.Fatalf("Num = %+v", n)
	}
	s := Text("a", "b")
	if s.Kind != KindText || len(s.Strs) != 2 {
		t.Fatalf("Text = %+v", s)
	}
}

func TestValueValidate(t *testing.T) {
	cases := []struct {
		v  Value
		ok bool
	}{
		{Num(0), true},
		{Text("x"), true},
		{Text("x", "y"), true},
		{Text(), false},
		{Text(""), false},
		{Text(strings.Repeat("a", MaxStringLen)), true},
		{Text(strings.Repeat("a", MaxStringLen+1)), false},
		{Value{Kind: 9}, false},
	}
	for i, c := range cases {
		if err := c.v.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Num(1).Equal(Num(1)) || Num(1).Equal(Num(2)) {
		t.Fatal("numeric equality broken")
	}
	if !Text("a", "b").Equal(Text("a", "b")) {
		t.Fatal("text equality broken")
	}
	if Text("a", "b").Equal(Text("b", "a")) {
		t.Fatal("order-insensitive comparison")
	}
	if Text("a").Equal(Num(0)) {
		t.Fatal("cross-kind equality")
	}
	if Text("a").Equal(Text("a", "a")) {
		t.Fatal("length-insensitive comparison")
	}
}

func TestValueString(t *testing.T) {
	if got := Num(2.5).String(); got != "2.5" {
		t.Errorf("Num String = %q", got)
	}
	if got := Text("a", "b").String(); got != "{a, b}" {
		t.Errorf("Text String = %q", got)
	}
}

func TestTupleSetGetAttrs(t *testing.T) {
	tp := NewTuple(7)
	tp.Set(3, Num(1))
	tp.Set(1, Text("x"))
	tp.Set(2, Num(9))
	if _, ok := tp.Get(5); ok {
		t.Fatal("undefined attribute reported defined")
	}
	attrs := tp.Attrs()
	if len(attrs) != 3 || attrs[0] != 1 || attrs[1] != 2 || attrs[2] != 3 {
		t.Fatalf("Attrs = %v, want sorted [1 2 3]", attrs)
	}
	// Set on a zero-value tuple must not panic.
	var z Tuple
	z.Set(1, Num(2))
	if v, ok := z.Get(1); !ok || v.Num != 2 {
		t.Fatal("zero-value tuple Set/Get broken")
	}
}

func TestTupleClone(t *testing.T) {
	tp := NewTuple(1)
	tp.Set(0, Text("original"))
	c := tp.Clone()
	c.Values[0].Strs[0] = "mutated"
	if v, _ := tp.Get(0); v.Strs[0] != "original" {
		t.Fatal("Clone shares string storage")
	}
}

func TestQueryBuilders(t *testing.T) {
	q := (&Query{K: 5}).NumTerm(1, 2.5).TextTerm(2, "abc")
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 2 || q.Terms[0].Kind != KindNumeric || q.Terms[1].Str != "abc" {
		t.Fatalf("terms = %+v", q.Terms)
	}
}

func TestQueryValidate(t *testing.T) {
	cases := []struct {
		q  *Query
		ok bool
	}{
		{(&Query{K: 1}).NumTerm(0, 1), true},
		{(&Query{K: 0}).NumTerm(0, 1), false},               // k = 0
		{&Query{K: 1}, false},                               // no terms
		{(&Query{K: 1}).NumTerm(0, 1).NumTerm(0, 2), false}, // duplicate attr
		{(&Query{K: 1}).TextTerm(0, ""), false},             // empty string
		{(&Query{K: 1}).TextTerm(0, strings.Repeat("a", 300)), false},
		{&Query{K: 1, Terms: []QueryTerm{{Attr: 0, Weight: -1}}}, false},
	}
	for i, c := range cases {
		if err := c.q.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindNumeric.String() != "numeric" || KindText.String() != "text" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}
