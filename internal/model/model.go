// Package model defines the data model shared by every layer of the
// repository: sparse-wide-table values, tuples, attribute descriptors and
// structured similarity queries, exactly as defined in §III-A of the iVA-file
// paper.
//
// A cell value v(T,A) is either the special undefined marker ndf, a numeric
// value, or a non-empty set of finite-length strings (a text value may carry
// several strings, e.g. Industry = {"Computer", "Software"} in the paper's
// Fig. 1). A query value v(Q,A) is a single number or a single string.
package model

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// AttrID identifies an attribute of the sparse wide table. Attribute ids are
// dense: they index the attribute list positionally (the paper eliminates
// explicit attribute ids from attribute-list elements the same way).
type AttrID uint32

// TID identifies a tuple. TIDs increase monotonically; deleted tuples leave
// gaps that a rebuild does not reuse.
type TID uint32

// Kind is the type of an attribute (and of a defined value).
type Kind uint8

// Attribute kinds.
const (
	KindNumeric Kind = iota
	KindText
)

func (k Kind) String() string {
	switch k {
	case KindNumeric:
		return "numeric"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MaxStringLen is the maximum length in bytes of a single data string. The
// nG-signature stores the string length in one byte (cL), so the table layer
// rejects longer strings. CWMS strings are short (paper: 16.8 bytes mean).
const MaxStringLen = 255

// Value is a defined cell value: a number or a non-empty set of strings.
// The undefined value ndf is represented by absence from Tuple.Values
// (a sparse representation; the table never materializes ndf cells).
type Value struct {
	Kind Kind
	Num  float64  // valid when Kind == KindNumeric
	Strs []string // valid when Kind == KindText; len >= 1
}

// Num returns a numeric value.
func Num(v float64) Value { return Value{Kind: KindNumeric, Num: v} }

// Text returns a text value holding the given strings.
func Text(strs ...string) Value { return Value{Kind: KindText, Strs: strs} }

// Validate reports whether the value is well formed.
func (v Value) Validate() error {
	switch v.Kind {
	case KindNumeric:
		// NaN breaks the total order of distances and ±Inf breaks the
		// relative-domain quantizer, so only finite numbers are storable.
		if math.IsNaN(v.Num) || math.IsInf(v.Num, 0) {
			return fmt.Errorf("model: non-finite numeric value %v", v.Num)
		}
		return nil
	case KindText:
		if len(v.Strs) == 0 {
			return fmt.Errorf("model: text value with no strings")
		}
		for _, s := range v.Strs {
			if len(s) == 0 {
				return fmt.Errorf("model: empty string in text value")
			}
			if len(s) > MaxStringLen {
				return fmt.Errorf("model: string of %d bytes exceeds %d", len(s), MaxStringLen)
			}
		}
		return nil
	default:
		return fmt.Errorf("model: invalid kind %d", v.Kind)
	}
}

func (v Value) String() string {
	if v.Kind == KindNumeric {
		return fmt.Sprintf("%g", v.Num)
	}
	return "{" + strings.Join(v.Strs, ", ") + "}"
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == KindNumeric {
		return v.Num == o.Num
	}
	if len(v.Strs) != len(o.Strs) {
		return false
	}
	for i := range v.Strs {
		if v.Strs[i] != o.Strs[i] {
			return false
		}
	}
	return true
}

// Tuple is a sparse tuple: only defined attributes appear in Values.
type Tuple struct {
	TID    TID
	Values map[AttrID]Value
}

// NewTuple returns an empty tuple with the given id.
func NewTuple(tid TID) *Tuple {
	return &Tuple{TID: tid, Values: make(map[AttrID]Value)}
}

// Set defines attribute a with value v.
func (t *Tuple) Set(a AttrID, v Value) {
	if t.Values == nil {
		t.Values = make(map[AttrID]Value)
	}
	t.Values[a] = v
}

// Get returns the value on attribute a; ok is false when v(T,a) = ndf.
func (t *Tuple) Get(a AttrID) (Value, bool) {
	v, ok := t.Values[a]
	return v, ok
}

// Attrs returns the defined attribute ids in increasing order.
func (t *Tuple) Attrs() []AttrID {
	ids := make([]AttrID, 0, len(t.Values))
	for a := range t.Values {
		ids = append(ids, a)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() *Tuple {
	c := NewTuple(t.TID)
	for a, v := range t.Values {
		if v.Kind == KindText {
			strs := make([]string, len(v.Strs))
			copy(strs, v.Strs)
			v.Strs = strs
		}
		c.Values[a] = v
	}
	return c
}

// QueryTerm is one defined value of a structured query: a single number or a
// single string on one attribute, with an importance weight λ > 0.
type QueryTerm struct {
	Attr   AttrID
	Kind   Kind
	Num    float64 // when Kind == KindNumeric
	Str    string  // when Kind == KindText
	Weight float64 // λ; 0 means "use the configured weighting scheme"
}

// Query is a top-k structured similarity query (§III-A).
type Query struct {
	Terms []QueryTerm
	K     int
}

// NumTerm appends a numeric term to the query.
func (q *Query) NumTerm(a AttrID, v float64) *Query {
	q.Terms = append(q.Terms, QueryTerm{Attr: a, Kind: KindNumeric, Num: v})
	return q
}

// TextTerm appends a text term to the query.
func (q *Query) TextTerm(a AttrID, s string) *Query {
	q.Terms = append(q.Terms, QueryTerm{Attr: a, Kind: KindText, Str: s})
	return q
}

// Validate reports whether the query is well formed.
func (q *Query) Validate() error {
	if q.K <= 0 {
		return fmt.Errorf("model: query k = %d, want > 0", q.K)
	}
	if len(q.Terms) == 0 {
		return fmt.Errorf("model: query with no terms")
	}
	seen := make(map[AttrID]bool, len(q.Terms))
	for _, term := range q.Terms {
		if seen[term.Attr] {
			return fmt.Errorf("model: duplicate query term on attribute %d", term.Attr)
		}
		seen[term.Attr] = true
		if term.Kind == KindText {
			if term.Str == "" {
				return fmt.Errorf("model: empty query string on attribute %d", term.Attr)
			}
			if len(term.Str) > MaxStringLen {
				return fmt.Errorf("model: query string of %d bytes exceeds %d", len(term.Str), MaxStringLen)
			}
		}
		if term.Kind == KindNumeric && (math.IsNaN(term.Num) || math.IsInf(term.Num, 0)) {
			return fmt.Errorf("model: non-finite query number on attribute %d", term.Attr)
		}
		if term.Weight < 0 {
			return fmt.Errorf("model: negative weight on attribute %d", term.Attr)
		}
	}
	return nil
}

// Result is one element of a top-k answer.
type Result struct {
	TID  TID
	Dist float64
}

// AttrDesc describes one attribute of the table (catalog entry).
type AttrDesc struct {
	ID   AttrID
	Name string
	Kind Kind
}
