// Package gram implements the n-gram machinery behind the nG-signature:
// n-gram extraction with '#'/'$' padding, positional n-gram multisets, the
// common-gram-set lower bound est' of Gravano et al. (the paper's Eq. 1–2),
// and the exact dynamic-programming edit distance used by the refine step.
package gram

// PrefixPad and SuffixPad are the two symbols outside the text alphabet used
// to extend a string before extracting its n-grams (§III-B.1).
const (
	PrefixPad = '#'
	SuffixPad = '$'
)

// Grams returns all n-grams of s in order: the string is extended with n−1
// PrefixPad bytes and n−1 SuffixPad bytes, and every window of n consecutive
// bytes of the extension is one gram. A string of length m has m+n−1 grams.
func Grams(s string, n int) []string {
	if n < 1 {
		panic("gram: n < 1")
	}
	if n == 1 {
		out := make([]string, len(s))
		for i := 0; i < len(s); i++ {
			out[i] = s[i : i+1]
		}
		return out
	}
	ext := make([]byte, 0, len(s)+2*(n-1))
	for i := 0; i < n-1; i++ {
		ext = append(ext, PrefixPad)
	}
	ext = append(ext, s...)
	for i := 0; i < n-1; i++ {
		ext = append(ext, SuffixPad)
	}
	count := len(ext) - n + 1
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, string(ext[i:i+n]))
	}
	return out
}

// Set is a positional n-gram multiset: gram → number of occurrences
// (the paper's g(s), a set of (count, gram) pairs).
type Set map[string]int

// NewSet returns the n-gram multiset of s.
func NewSet(s string, n int) Set {
	set := make(Set)
	for _, g := range Grams(s, n) {
		set[g]++
	}
	return set
}

// Size returns |Ω| = Σ counts.
func (g Set) Size() int {
	total := 0
	for _, a := range g {
		total += a
	}
	return total
}

// CommonSize returns |cg(s1,s2)| = Σ min(a1,a2) over shared grams.
func (g Set) CommonSize(o Set) int {
	total := 0
	for gram, a := range g {
		if b, ok := o[gram]; ok {
			if b < a {
				total += b
			} else {
				total += a
			}
		}
	}
	return total
}

// EstPrime computes est'(sq, sd) (Eq. 1): the n-gram lower bound of the edit
// distance between the two strings,
//
//	est' = (max(|sq|,|sd|) − |cg(sq,sd)| − 1)/n + 1,
//
// clamped at 0 (identical strings yield a non-positive raw value).
func EstPrime(sq, sd string, n int) float64 {
	cg := NewSet(sq, n).CommonSize(NewSet(sd, n))
	return EstFromCommon(len(sq), len(sd), cg, n)
}

// EstFromCommon evaluates Eq. 1 given the two lengths and the (possibly
// estimated) common-gram count. It is shared with the signature package,
// which substitutes the hit-gram count for the common-gram count (Eq. 3).
func EstFromCommon(lq, ld, common, n int) float64 {
	m := lq
	if ld > m {
		m = ld
	}
	est := float64(m-common-1)/float64(n) + 1
	if est < 0 {
		return 0
	}
	return est
}

// EditDistance returns the Levenshtein distance between a and b: the minimum
// number of single-character insertions, deletions and substitutions that
// transform a into b. This is the exact metric of the refine step.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Keep the inner loop over the shorter string.
	if len(b) > len(a) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost        // substitution
			if v := prev[j] + 1; v < d { // deletion
				d = v
			}
			if v := cur[j-1] + 1; v < d { // insertion
				d = v
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// EditDistanceBounded returns min(EditDistance(a,b), bound+1) while doing
// less work when the distance exceeds bound. Queries that only need to know
// whether a tuple beats the pool's current maximum use this.
func EditDistanceBounded(a, b string, bound int) int {
	if bound < 0 {
		bound = 0
	}
	la, lb := len(a), len(b)
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if diff > bound {
		return bound + 1
	}
	if a == b {
		return 0
	}
	if lb > la {
		a, b = b, a
		la, lb = lb, la
	}
	if lb == 0 {
		// la <= bound is guaranteed by the length-difference check above.
		return la
	}
	const inf = 1 << 29
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		// Only cells with |i-j| <= bound can end ≤ bound.
		lo := i - bound
		if lo < 1 {
			lo = 1
		}
		hi := i + bound
		if hi > lb {
			hi = lb
		}
		cur[0] = i
		if lo > 1 {
			cur[lo-1] = inf
		}
		rowMin := inf
		ca := a[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			if v := prev[j] + 1; v < d {
				d = v
			}
			if v := cur[j-1] + 1; v < d {
				d = v
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > bound {
			return bound + 1
		}
		prev, cur = cur, prev
	}
	if prev[lb] > bound {
		return bound + 1
	}
	return prev[lb]
}
