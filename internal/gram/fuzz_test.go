package gram

import "testing"

// FuzzEditDistanceBounded cross-checks the banded implementation against
// the exact one for fuzzer-chosen strings and bounds.
func FuzzEditDistanceBounded(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "abc", 0)
	f.Add("canon", "cannon", 10)
	f.Fuzz(func(t *testing.T, a, b string, bound int) {
		if len(a) > 64 || len(b) > 64 {
			return
		}
		bound %= 32
		if bound < 0 {
			bound = -bound
		}
		exact := EditDistance(a, b)
		got := EditDistanceBounded(a, b, bound)
		if exact <= bound {
			if got != exact {
				t.Fatalf("bounded(%q,%q,%d) = %d, want %d", a, b, bound, got, exact)
			}
		} else if got != bound+1 {
			t.Fatalf("bounded(%q,%q,%d) = %d, want %d", a, b, bound, got, bound+1)
		}
	})
}

// FuzzEstPrimeLowerBound verifies the n-gram bound never exceeds the true
// edit distance for arbitrary byte strings.
func FuzzEstPrimeLowerBound(f *testing.F) {
	f.Add("digital camera", "digtal camrea", 2)
	f.Add("a", "b", 5)
	f.Fuzz(func(t *testing.T, a, b string, n int) {
		if len(a) == 0 || len(b) == 0 || len(a) > 64 || len(b) > 64 {
			return
		}
		if n < 0 {
			n = -n
		}
		n = n%7 + 1
		if est, ed := EstPrime(a, b, n), float64(EditDistance(a, b)); est > ed {
			t.Fatalf("est'(%q,%q,%d) = %v > ed = %v", a, b, n, est, ed)
		}
	})
}
