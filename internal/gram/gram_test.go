package gram

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGramsPaperExample31(t *testing.T) {
	// Example 3.1: the 3-grams of "yes" are ##y, #ye, yes, es$, s$$.
	got := Grams("yes", 3)
	want := []string{"##y", "#ye", "yes", "es$", "s$$"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Grams(yes,3) = %v, want %v", got, want)
	}
}

func TestGramsPaperExample32(t *testing.T) {
	// Example 3.2: the 2-grams of "ok" are #o, ok, k$.
	got := Grams("ok", 2)
	want := []string{"#o", "ok", "k$"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Grams(ok,2) = %v, want %v", got, want)
	}
}

func TestGramCount(t *testing.T) {
	// A string of length m has m+n-1 n-grams.
	for _, s := range []string{"a", "ab", "hello", "community systems"} {
		for n := 1; n <= 5; n++ {
			if got := len(Grams(s, n)); got != len(s)+n-1 {
				t.Errorf("len(Grams(%q,%d)) = %d, want %d", s, n, got, len(s)+n-1)
			}
		}
	}
}

func TestGramsN1(t *testing.T) {
	got := Grams("abc", 1)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Grams(abc,1) = %v", got)
	}
}

func TestSetPaperExample33(t *testing.T) {
	// Example 3.3: the 2-gram set of "www" is {(1,#w),(2,ww),(1,w$)}, size 4.
	set := NewSet("www", 2)
	want := Set{"#w": 1, "ww": 2, "w$": 1}
	if !reflect.DeepEqual(set, want) {
		t.Fatalf("NewSet(www,2) = %v, want %v", set, want)
	}
	if set.Size() != 4 {
		t.Fatalf("Size = %d, want 4", set.Size())
	}
}

func TestCommonSize(t *testing.T) {
	a := NewSet("www", 2)
	b := NewSet("ww", 2)
	// grams of "ww": #w, ww, w$. common: #w(1), ww(1), w$(1) -> 3.
	if got := a.CommonSize(b); got != 3 {
		t.Fatalf("CommonSize = %d, want 3", got)
	}
	if got := b.CommonSize(a); got != 3 {
		t.Fatalf("CommonSize not symmetric: %d", got)
	}
}

func TestEditDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"canon", "cannon", 1}, // the paper's running typo example
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"abc", "axc", 1},
		{"sunday", "saturday", 3},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.d {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randomString(rng, 12))
			}
		},
	}
	// Symmetry and identity.
	sym := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a) && EditDistance(a, a) == 0
	}
	if err := quick.Check(sym, cfg); err != nil {
		t.Error(err)
	}
	// Triangle inequality.
	tri := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(tri, cfg); err != nil {
		t.Error(err)
	}
	// Length difference is a lower bound; max length an upper bound.
	bounds := func(a, b string) bool {
		d := EditDistance(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(bounds, cfg); err != nil {
		t.Error(err)
	}
}

func TestEstPrimeLowerBound(t *testing.T) {
	// Proposition from [9]: est'(sq,sd) <= ed(sq,sd) always.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		a := randomString(rng, 20)
		b := mutate(rng, a, rng.Intn(6))
		for _, n := range []int{2, 3, 4, 5} {
			if a == "" || b == "" {
				continue
			}
			est := EstPrime(a, b, n)
			ed := float64(EditDistance(a, b))
			if est > ed {
				t.Fatalf("est'(%q,%q,n=%d) = %v > ed = %v", a, b, n, est, ed)
			}
		}
	}
}

func TestEstPrimeIdentical(t *testing.T) {
	for _, s := range []string{"a", "ok", "digital camera"} {
		for n := 2; n <= 4; n++ {
			if got := EstPrime(s, s, n); got != 0 {
				t.Errorf("EstPrime(%q,%q,%d) = %v, want 0", s, s, n, got)
			}
		}
	}
}

func TestEstFromCommonClamp(t *testing.T) {
	if got := EstFromCommon(2, 2, 100, 2); got != 0 {
		t.Fatalf("negative estimate not clamped: %v", got)
	}
}

func TestEditDistanceBoundedAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		a := randomString(rng, 15)
		b := mutate(rng, a, rng.Intn(8))
		exact := EditDistance(a, b)
		for bound := 0; bound <= 10; bound++ {
			got := EditDistanceBounded(a, b, bound)
			if exact <= bound {
				if got != exact {
					t.Fatalf("bounded(%q,%q,%d) = %d, want exact %d", a, b, bound, got, exact)
				}
			} else if got != bound+1 {
				t.Fatalf("bounded(%q,%q,%d) = %d, want %d (exact %d)", a, b, bound, got, bound+1, exact)
			}
		}
	}
}

func TestEditDistanceBoundedEmpty(t *testing.T) {
	if got := EditDistanceBounded("", "abc", 5); got != 3 {
		t.Fatalf("got %d, want 3", got)
	}
	if got := EditDistanceBounded("", "abc", 1); got != 2 {
		t.Fatalf("got %d, want 2 (bound+1)", got)
	}
}

// randomString draws a lowercase string of length 1..maxLen.
func randomString(rng *rand.Rand, maxLen int) string {
	n := 1 + rng.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(6)) // small alphabet => many shared grams
	}
	return string(b)
}

// mutate applies k random single-character edits to s.
func mutate(rng *rand.Rand, s string, k int) string {
	b := []byte(s)
	for i := 0; i < k; i++ {
		if len(b) == 0 {
			b = append(b, byte('a'+rng.Intn(6)))
			continue
		}
		p := rng.Intn(len(b))
		switch rng.Intn(3) {
		case 0: // substitution
			b[p] = byte('a' + rng.Intn(6))
		case 1: // deletion
			b = append(b[:p], b[p+1:]...)
		default: // insertion
			b = append(b[:p], append([]byte{byte('a' + rng.Intn(6))}, b[p:]...)...)
		}
	}
	if len(b) == 0 {
		return "a"
	}
	return string(b)
}

func BenchmarkEditDistance16(b *testing.B) {
	x, y := "digital camerass", "digital cannerae"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistance(x, y)
	}
}

func BenchmarkEstPrime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EstPrime("digital camera", "digital cannera", 2)
	}
}
