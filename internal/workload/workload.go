// Package workload is a deterministic seeded generator of sparse-wide-table
// workloads for the differential oracle (internal/oracle). It mirrors the
// shape of the paper's Google Base subset: a mix of short-text and numeric
// attributes with skewed definition frequencies (most tuples define a handful
// of popular attributes and ignore the long tail, i.e. high ndf density),
// typo-mutated strings, clustered numbers, and interleaved
// insert/update/delete/search/sync/reopen/rebuild schedules.
//
// Every random decision flows through one math/rand stream, so an entire run
// — rows, queries, and the op schedule — replays exactly from a single
// uint64 seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/sparsewide/iva/internal/model"
)

// OpKind is one step of a generated schedule.
type OpKind int

// Schedule operations. OpRoundTrip is the insert→delete metamorphic probe
// (the pair must be a no-op for search results); OpReopen implies a sync.
const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
	OpSearch
	OpSync
	OpReopen
	OpRebuild
	OpRoundTrip
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpSearch:
		return "search"
	case OpSync:
		return "sync"
	case OpReopen:
		return "reopen"
	case OpRebuild:
		return "rebuild"
	case OpRoundTrip:
		return "roundtrip"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Cell is one defined attribute of a generated row. Rows are slices (not
// maps) so that iteration order — and so catalog registration order — is
// deterministic.
type Cell struct {
	Name string
	Val  model.Value
}

// Row is a generated sparse row in fixed attribute order.
type Row []Cell

// TermSpec is one query term by attribute name.
type TermSpec struct {
	Name   string
	Kind   model.Kind
	Num    float64 // Kind == KindNumeric
	Str    string  // Kind == KindText
	Weight float64 // explicit λ; 0 = use the engine's weighting scheme
}

// QuerySpec is a generated top-k query by attribute names.
type QuerySpec struct {
	K     int
	Terms []TermSpec
}

// attrSpec fixes one attribute's name, kind, definition frequency and value
// distribution for the lifetime of a generator.
type attrSpec struct {
	name string
	kind model.Kind
	freq float64 // P(row defines the attribute)

	center, spread float64  // numeric cluster
	words          []string // text vocabulary
}

// Gen generates rows, queries and op schedules from one seeded stream.
type Gen struct {
	rng   *rand.Rand
	attrs []attrSpec
}

// vocabulary is the global word pool; per-attribute vocabularies are seeded
// subsets. Words are ≥ 4 bytes so a deletion typo never empties a string.
var vocabulary = []string{
	"camera", "canon", "sony", "google", "software", "computer", "album",
	"jazz", "guitar", "piano", "berlin", "london", "tokyo", "paris",
	"widget", "gadget", "sensor", "laptop", "phone", "music", "photo",
	"drive", "cloud", "pixel", "stereo", "vinyl", "retro", "nova", "delta",
	"omega", "prism", "quartz", "silver", "cobalt", "amber", "falcon",
}

var attrNames = []struct {
	name string
	kind model.Kind
}{
	{"type", model.KindText},
	{"price", model.KindNumeric},
	{"company", model.KindText},
	{"year", model.KindNumeric},
	{"industry", model.KindText},
	{"rating", model.KindNumeric},
	{"city", model.KindText},
	{"salary", model.KindNumeric},
	{"artist", model.KindText},
	{"weight", model.KindNumeric},
	{"title", model.KindText},
	{"stock", model.KindNumeric},
	{"tag", model.KindText},
	{"pixels", model.KindNumeric},
}

// New returns a generator for the given seed. Equal seeds generate equal
// streams.
func New(seed uint64) *Gen {
	g := &Gen{rng: rand.New(rand.NewSource(int64(seed)))}
	for i, a := range attrNames {
		sp := attrSpec{
			name: a.name,
			kind: a.kind,
			// Skewed definition frequency: the head attributes appear on most
			// rows, the tail rarely (the sparse-wide-table shape of Fig. 1).
			freq: 0.85 / (1 + 0.45*float64(i)),
		}
		if a.kind == model.KindNumeric {
			sp.center = math.Trunc(10 + g.rng.Float64()*5000)
			sp.spread = 1 + sp.center*0.2
		} else {
			n := 6 + g.rng.Intn(5)
			for j := 0; j < n; j++ {
				sp.words = append(sp.words, vocabulary[g.rng.Intn(len(vocabulary))])
			}
		}
		g.attrs = append(g.attrs, sp)
	}
	return g
}

// NumAttrs returns the size of the attribute universe (ghost query attributes
// excluded).
func (g *Gen) NumAttrs() int { return len(g.attrs) }

// Row generates one sparse row: each attribute is defined with its skewed
// frequency; at least one attribute is always defined.
func (g *Gen) Row() Row {
	var row Row
	for i := range g.attrs {
		if g.rng.Float64() >= g.attrs[i].freq {
			continue
		}
		row = append(row, Cell{Name: g.attrs[i].name, Val: g.value(i)})
	}
	if len(row) == 0 {
		row = append(row, Cell{Name: g.attrs[0].name, Val: g.value(0)})
	}
	return row
}

func (g *Gen) value(i int) model.Value {
	sp := &g.attrs[i]
	if sp.kind == model.KindNumeric {
		v := sp.center + sp.spread*g.rng.NormFloat64()
		// Round to 3 decimals so exact distance ties between tuples occur,
		// exercising the lexicographic (dist, tid) order.
		return model.Num(math.Round(v*1000) / 1000)
	}
	n := 1 + g.rng.Intn(3)
	strs := make([]string, n)
	for j := 0; j < n; j++ {
		w := sp.words[g.rng.Intn(len(sp.words))]
		if g.rng.Float64() < 0.3 {
			w = g.mutate(w)
		}
		strs[j] = w
	}
	return model.Text(strs...)
}

// mutate applies one random typo (substitute, insert or delete a letter).
func (g *Gen) mutate(w string) string {
	b := []byte(w)
	pos := g.rng.Intn(len(b))
	c := byte('a' + g.rng.Intn(26))
	switch g.rng.Intn(3) {
	case 0:
		b[pos] = c
	case 1:
		b = append(b[:pos], append([]byte{c}, b[pos:]...)...)
	default:
		if len(b) > 1 {
			b = append(b[:pos], b[pos+1:]...)
		}
	}
	return string(b)
}

// NextOp draws the next schedule operation given the current live tuple
// count. Small stores are seeded with inserts; large ones are biased toward
// deletes so the live set stays bounded and searches stay affordable.
func (g *Gen) NextOp(live int) OpKind {
	if live < 20 {
		return OpInsert
	}
	type wk struct {
		k OpKind
		w float64
	}
	weights := []wk{
		{OpInsert, 0.40}, {OpUpdate, 0.06}, {OpDelete, 0.12},
		{OpSearch, 0.12}, {OpSync, 0.05}, {OpReopen, 0.01},
		{OpRebuild, 0.01}, {OpRoundTrip, 0.04},
	}
	if live > 1200 {
		weights[0].w, weights[2].w = 0.08, 0.45
	}
	var total float64
	for _, w := range weights {
		total += w.w
	}
	r := g.rng.Float64() * total
	for _, w := range weights {
		if r < w.w {
			return w.k
		}
		r -= w.w
	}
	return OpInsert
}

// PickLive selects a victim index for delete/update from n live tuples.
func (g *Gen) PickLive(n int) int { return g.rng.Intn(n) }

// Query generates a top-k query: 1–3 distinct attributes, values drawn near
// (but not exactly from) the data distributions, occasional explicit weights,
// and occasional "ghost" terms on attributes no tuple defines (all-ndf).
func (g *Gen) Query() QuerySpec {
	spec := QuerySpec{K: 1 + g.rng.Intn(12)}
	nterms := 1 + g.rng.Intn(3)
	perm := g.rng.Perm(len(g.attrs))
	for _, ai := range perm[:nterms] {
		var t TermSpec
		if g.rng.Float64() < 0.06 {
			t = g.ghostTerm()
		} else {
			sp := &g.attrs[ai]
			t = TermSpec{Name: sp.name, Kind: sp.kind}
			if sp.kind == model.KindNumeric {
				// 3× the data spread: queries regularly fall outside the
				// relative domain, exercising the clamped edge slices.
				t.Num = math.Round((sp.center+3*sp.spread*g.rng.NormFloat64())*1000) / 1000
			} else {
				w := sp.words[g.rng.Intn(len(sp.words))]
				if g.rng.Float64() < 0.5 {
					w = g.mutate(w)
				}
				t.Str = w
			}
		}
		if g.rng.Float64() < 0.15 {
			t.Weight = 0.5 + 2*g.rng.Float64()
		}
		spec.Terms = append(spec.Terms, t)
	}
	// Ghost terms may duplicate an attribute chosen twice; the oracle dedups.
	return spec
}

// ghostTerm returns a term on an attribute no row ever defines. Names map to
// a fixed kind so catalog registration never conflicts.
func (g *Gen) ghostTerm() TermSpec {
	if g.rng.Intn(2) == 0 {
		return TermSpec{Name: "ghost-text", Kind: model.KindText,
			Str: vocabulary[g.rng.Intn(len(vocabulary))]}
	}
	return TermSpec{Name: "ghost-num", Kind: model.KindNumeric,
		Num: math.Round(g.rng.Float64()*10000) / 10}
}
