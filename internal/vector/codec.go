package vector

import (
	"encoding/binary"
	"fmt"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
)

// Block codecs (format v6).
//
// A vector list is logically the bit stream the Encoder produces — every
// reader (Cursor, zone accumulator, checkpoints) addresses it by logical bit
// offset. Codec 0 stores that stream verbatim, byte-compatible with v5.
// Codec 1 ("packed") re-stores it as a sequence of self-describing blocks,
// one per sealed checkpoint stripe: a word-aligned container with a skip
// header (element count, decoded length, payload size, first tuple id, a
// CRC32C over the whole block) and a payload that either carries the raw
// bits or a delta transform replacing each element's tuple-id field with a
// narrow gap from its predecessor. Tuple ids within a list are
// non-decreasing, so gaps need BitsFor(maxGap) bits instead of LTid — the
// classic posting-list win. Element bodies are stored verbatim: both the
// transform and its inverse re-parse the element framing (§III-D Types I/II)
// rather than storing lengths, so the transform is fully lossless and costs
// no side information.
//
// Inserts after the last seal append raw logical bits word-aligned behind
// the coded region ("the tail"); BlockSource splices blocks and tail back
// into one logical stream for the unchanged word-at-a-time readers.

// Codec ids recorded per attribute list in the attribute element.
const (
	CodecRaw    uint8 = 0 // legacy raw bit-packed layout, byte-compatible with v5
	CodecPacked uint8 = 1 // word-aligned blocks, skip headers, delta-coded tid gaps
)

// Codec is a pluggable storage transform for one attribute's vector list.
// Implementations transcode whole sealed stripes; the logical encoding the
// Cursor consumes is identical under every codec.
type Codec interface {
	// ID is the on-disk codec id stored in the attribute element.
	ID() uint8
	// Name is the human-readable codec name for stats output.
	Name() string
	// Blocked reports whether lists under this codec store sealed stripes
	// as block containers (false means the physical and logical streams
	// coincide and Seal is never called on the write path).
	Blocked() bool
	// Seal transcodes one sealed stripe of logical bits into a
	// self-describing block, returned as whole 64-bit words.
	Seal(lay Layout, logical []byte, nbits int64) ([]uint64, error)
}

type rawCodec struct{}

func (rawCodec) ID() uint8     { return CodecRaw }
func (rawCodec) Name() string  { return "raw" }
func (rawCodec) Blocked() bool { return false }
func (rawCodec) Seal(lay Layout, logical []byte, nbits int64) ([]uint64, error) {
	return sealBlock(lay, logical, nbits, true)
}

type packedCodec struct{}

func (packedCodec) ID() uint8     { return CodecPacked }
func (packedCodec) Name() string  { return "packed" }
func (packedCodec) Blocked() bool { return true }
func (packedCodec) Seal(lay Layout, logical []byte, nbits int64) ([]uint64, error) {
	return sealBlock(lay, logical, nbits, false)
}

// Raw and Packed are the two built-in codecs.
var (
	Raw    Codec = rawCodec{}
	Packed Codec = packedCodec{}
)

// CodecByID resolves an on-disk codec id.
func CodecByID(id uint8) (Codec, bool) {
	switch id {
	case CodecRaw:
		return Raw, true
	case CodecPacked:
		return Packed, true
	}
	return nil, false
}

// CodecName names a codec id for stats output ("raw", "packed").
func CodecName(id uint8) string {
	if c, ok := CodecByID(id); ok {
		return c.Name()
	}
	return fmt.Sprintf("unknown(%d)", id)
}

// Block container layout. Four header words followed by payloadWords payload
// words; every word is serialized MSB-first (WriteBits(v, 64)), so the block
// occupies exactly (4+payloadWords)*64 bits of the physical stream.
//
//	word 0: magic (32) | elemCount (32)
//	word 1: mode (8) | gapBits (8) | logicalBits (48)
//	word 2: payloadWords (32) | crc32c (32)
//	word 3: firstTID (64)
//
// The CRC32C covers the big-endian byte serialization of the whole block
// with the crc field zeroed. mode 0 payloads carry the logical bits
// verbatim; mode 1 payloads carry (elemCount-1) gap fields of gapBits each,
// then every element's body bits (tuple-id fields stripped) verbatim.
const (
	blockMagic       = 0x69564233 // "iVB3"
	blockHeaderWords = 4
	blockModeRaw     = 0
	blockModeDelta   = 1
	maxBlockLogical  = int64(1)<<48 - 1
)

type blockHeader struct {
	elems        uint32
	mode         uint8
	gapBits      uint8
	logicalBits  int64
	payloadWords int64
	crc          uint32
	firstTID     uint64
}

func (h blockHeader) words() [blockHeaderWords]uint64 {
	return [blockHeaderWords]uint64{
		uint64(blockMagic)<<32 | uint64(h.elems),
		uint64(h.mode)<<56 | uint64(h.gapBits)<<48 | uint64(h.logicalBits),
		uint64(h.payloadWords)<<32 | uint64(h.crc),
		h.firstTID,
	}
}

func corruptBlock(format string, args ...interface{}) error {
	return &storage.CorruptionError{
		File:    "iva.idx",
		Offset:  -1,
		Segment: storage.NoCorruptSegment,
		Detail:  "vector block: " + fmt.Sprintf(format, args...),
	}
}

func parseBlockHeader(w [blockHeaderWords]uint64) (blockHeader, error) {
	var h blockHeader
	if magic := uint32(w[0] >> 32); magic != blockMagic {
		return h, corruptBlock("bad magic %#x", magic)
	}
	h.elems = uint32(w[0])
	h.mode = uint8(w[1] >> 56)
	h.gapBits = uint8(w[1] >> 48)
	h.logicalBits = int64(w[1] & uint64(maxBlockLogical))
	h.payloadWords = int64(w[2] >> 32)
	h.crc = uint32(w[2])
	h.firstTID = w[3]
	if h.mode != blockModeRaw && h.mode != blockModeDelta {
		return h, corruptBlock("unknown mode %d", h.mode)
	}
	if h.logicalBits <= 0 {
		return h, corruptBlock("empty block (logicalBits %d)", h.logicalBits)
	}
	if h.mode == blockModeDelta && (h.gapBits == 0 || h.gapBits > 64 || h.elems == 0) {
		return h, corruptBlock("delta header inconsistent (gapBits %d, elems %d)", h.gapBits, h.elems)
	}
	return h, nil
}

// blockCRC computes the container checksum: CRC32C over the big-endian
// serialization of every word with the crc field zeroed.
func blockCRC(words []uint64) uint32 {
	var buf [8]byte
	crc := uint32(0)
	for i, w := range words {
		if i == 2 {
			w &^= 0xFFFFFFFF // crc field reads as zero
		}
		binary.BigEndian.PutUint64(buf[:], w)
		crc = storage.ChecksumUpdate(crc, buf[:])
	}
	return crc
}

// copyBits streams n bits from src to dst.
func copyBits(dst *bitio.Writer, src *bitio.Reader, n int64) error {
	for n > 0 {
		take := 64
		if n < 64 {
			take = int(n)
		}
		v, err := src.ReadBits(take)
		if err != nil {
			return err
		}
		dst.WriteBits(v, take)
		n -= int64(take)
	}
	return nil
}

// copyBody copies one element body (everything after the tuple-id field)
// from src to dst, parsing the §III-D framing to find its end. Only Types I
// and II carry tuple ids, so only they are delta-eligible.
func copyBody(lay Layout, src *bitio.Reader, dst *bitio.Writer) error {
	copySig := func() error {
		l, err := src.ReadBits(signature.LenBits)
		if err != nil {
			return err
		}
		dst.WriteBits(l, signature.LenBits)
		return copyBits(dst, src, int64(lay.Codec.SigBits(int(l))))
	}
	switch {
	case lay.Type == TypeI && lay.Kind == model.KindText:
		return copySig()
	case lay.Type == TypeI && lay.Kind == model.KindNumeric:
		return copyBits(dst, src, int64(lay.VecBits))
	case lay.Type == TypeII:
		n, err := src.ReadBits(lay.LNum)
		if err != nil {
			return err
		}
		dst.WriteBits(n, lay.LNum)
		for i := uint64(0); i < n; i++ {
			if err := copySig(); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("vector: list type %v has no tuple-id framing", lay.Type)
}

// parseElements splits a logical stripe into its per-element tuple ids and
// concatenated body bits. ok is false when the stream does not parse cleanly
// (the caller then stores the stripe raw).
func parseElements(lay Layout, logical []byte, nbits int64) (tids []uint64, bodies *bitio.Writer, ok bool) {
	if lay.Type != TypeI && lay.Type != TypeII {
		return nil, nil, false
	}
	r := bitio.NewReader(logical, int(nbits))
	bodies = &bitio.Writer{}
	var last uint64
	for r.Remaining() > 0 {
		tid, err := r.ReadBits(lay.LTid)
		if err != nil {
			return nil, nil, false
		}
		if len(tids) > 0 && tid < last {
			return nil, nil, false
		}
		if err := copyBody(lay, r, bodies); err != nil {
			return nil, nil, false
		}
		tids = append(tids, tid)
		last = tid
	}
	return tids, bodies, len(tids) > 0
}

// packPayload turns a bit stream into left-justified 64-bit payload words.
func packPayload(buf []byte, nbits int64) []uint64 {
	nw := (nbits + 63) / 64
	out := make([]uint64, nw)
	r := bitio.NewReader(buf, int(nbits))
	for i := range out {
		take := 64
		if rem := nbits - int64(i)*64; rem < 64 {
			take = int(rem)
		}
		v, _ := r.ReadBits(take)
		out[i] = v << (64 - uint(take))
	}
	return out
}

// unpackPayload streams the first nbits bits of the payload words into dst.
func unpackPayload(words []uint64, nbits int64, dst *bitio.Writer) {
	for i, w := range words {
		rem := nbits - int64(i)*64
		if rem <= 0 {
			break
		}
		take := 64
		if rem < 64 {
			take = int(rem)
		}
		dst.WriteBits(w>>(64-uint(take)), take)
	}
}

// sealBlock builds one block container from a sealed stripe's logical bits.
// With forceRaw false it applies the delta transform whenever the stripe
// parses and the transform actually saves bits.
func sealBlock(lay Layout, logical []byte, nbits int64, forceRaw bool) ([]uint64, error) {
	if nbits <= 0 || nbits > maxBlockLogical {
		return nil, fmt.Errorf("vector: cannot seal %d bits", nbits)
	}
	h := blockHeader{mode: blockModeRaw, logicalBits: nbits}
	var payload []uint64
	if !forceRaw {
		if tids, bodies, ok := parseElements(lay, logical, nbits); ok {
			var maxGap uint64
			for i := 1; i < len(tids); i++ {
				if g := tids[i] - tids[i-1]; g > maxGap {
					maxGap = g
				}
			}
			gapBits := bitio.BitsFor(maxGap)
			deltaBits := int64(len(tids)-1)*int64(gapBits) + int64(bodies.Len())
			if deltaBits < nbits {
				var pw bitio.Writer
				for i := 1; i < len(tids); i++ {
					pw.WriteBits(tids[i]-tids[i-1], gapBits)
				}
				if err := copyBits(&pw, bitio.NewReader(bodies.Bytes(), bodies.Len()), int64(bodies.Len())); err != nil {
					return nil, err
				}
				h.mode = blockModeDelta
				h.gapBits = uint8(gapBits)
				h.elems = uint32(len(tids))
				h.firstTID = tids[0]
				payload = packPayload(pw.Bytes(), int64(pw.Len()))
			}
		}
	}
	if h.mode == blockModeRaw {
		payload = packPayload(logical, nbits)
	}
	h.payloadWords = int64(len(payload))
	hw := h.words()
	words := make([]uint64, 0, blockHeaderWords+len(payload))
	words = append(words, hw[:]...)
	words = append(words, payload...)
	crc := blockCRC(words)
	words[2] |= uint64(crc)
	return words, nil
}

// DecodeBlock verifies and decodes one block container back into its
// logical bits, written into out (which is reset). Structural damage and
// checksum mismatches surface as a typed *storage.CorruptionError.
func DecodeBlock(lay Layout, words []uint64, out *bitio.Writer) (int64, error) {
	if len(words) < blockHeaderWords {
		return 0, corruptBlock("truncated header (%d words)", len(words))
	}
	var hw [blockHeaderWords]uint64
	copy(hw[:], words)
	h, err := parseBlockHeader(hw)
	if err != nil {
		return 0, err
	}
	if int64(len(words)) != blockHeaderWords+h.payloadWords {
		return 0, corruptBlock("payload size mismatch (%d words, header says %d)", len(words)-blockHeaderWords, h.payloadWords)
	}
	if got := blockCRC(words); got != h.crc {
		return 0, corruptBlock("checksum mismatch (crc %#x, want %#x)", got, h.crc)
	}
	payload := words[blockHeaderWords:]
	out.Reset()
	switch h.mode {
	case blockModeRaw:
		if h.logicalBits > h.payloadWords*64 {
			return 0, corruptBlock("raw payload shorter than logical length")
		}
		unpackPayload(payload, h.logicalBits, out)
	case blockModeDelta:
		if err := decodeDelta(lay, h, payload, out); err != nil {
			return 0, err
		}
	}
	if int64(out.Len()) != h.logicalBits {
		return 0, corruptBlock("decoded %d bits, header says %d", out.Len(), h.logicalBits)
	}
	return h.logicalBits, nil
}

// decodeDelta inverts the delta transform: gaps back to absolute tuple ids,
// bodies re-interleaved by re-parsing the element framing.
func decodeDelta(lay Layout, h blockHeader, payload []uint64, out *bitio.Writer) error {
	if lay.Type != TypeI && lay.Type != TypeII {
		return corruptBlock("delta mode on list type %v", lay.Type)
	}
	var stream bitio.Writer
	unpackPayload(payload, h.payloadWords*64, &stream)
	r := bitio.NewReader(stream.Bytes(), stream.Len())
	gaps := make([]uint64, int(h.elems)-1)
	for i := range gaps {
		g, err := r.ReadBits(int(h.gapBits))
		if err != nil {
			return corruptBlock("truncated gap table: %v", err)
		}
		gaps[i] = g
	}
	tid := h.firstTID
	for i := uint32(0); i < h.elems; i++ {
		if i > 0 {
			tid += gaps[i-1]
		}
		out.WriteBits(tid, lay.LTid)
		if err := copyBody(lay, r, out); err != nil {
			return corruptBlock("element %d body: %v", i, err)
		}
		if int64(out.Len()) > h.logicalBits {
			return corruptBlock("decoded stream overruns logical length")
		}
	}
	return nil
}

// BlockMeta locates one sealed block within a packed vector list's physical
// stream; the in-memory block directory is a sorted slice of these, rebuilt
// at open time by WalkBlocks from the self-describing headers (it survives
// dropped checkpoint chains, which DegradeReads may discard wholesale).
type BlockMeta struct {
	PhysWord     int64 // 64-bit-word offset of the block header
	LogicalStart int64 // logical bit offset of the first decoded bit
	LogicalBits  int64 // decoded logical length
}

// WalkBlocks scans the first codedWords words of a packed list's physical
// stream and rebuilds its block directory from the chained skip headers.
// It also returns the total logical bit length the blocks decode to. Damage
// (bad magic, a block overrunning the coded region) surfaces as a typed
// *storage.CorruptionError; read errors from phys (e.g. a segment checksum
// failure) pass through.
func WalkBlocks(phys BitSource, codedWords int64) ([]BlockMeta, int64, error) {
	var dir []BlockMeta
	var logical int64
	for w := int64(0); w < codedWords; {
		if codedWords-w < blockHeaderWords {
			return nil, 0, corruptBlock("trailing %d words cannot hold a header", codedWords-w)
		}
		if err := phys.SeekBit(w * 64); err != nil {
			return nil, 0, err
		}
		var hw [blockHeaderWords]uint64
		for i := range hw {
			v, err := phys.ReadBits(64)
			if err != nil {
				return nil, 0, err
			}
			hw[i] = v
		}
		h, err := parseBlockHeader(hw)
		if err != nil {
			return nil, 0, err
		}
		if h.payloadWords < 0 || w+blockHeaderWords+h.payloadWords > codedWords {
			return nil, 0, corruptBlock("block at word %d overruns coded region", w)
		}
		dir = append(dir, BlockMeta{PhysWord: w, LogicalStart: logical, LogicalBits: h.logicalBits})
		logical += h.logicalBits
		w += blockHeaderWords + h.payloadWords
	}
	return dir, logical, nil
}

// BlockSource adapts a packed list's physical stream back into the logical
// bit stream the Cursor consumes: reads inside the coded region decode (and
// cache) one block at a time, reads past it fall through to the raw tail
// appended after the last seal. It implements BitSource over logical
// offsets, including the arbitrary absolute seeks positional cursors issue.
type BlockSource struct {
	lay          Layout
	phys         BitSource
	dir          []BlockMeta
	codedWords   int64
	codedLogical int64
	total        int64 // total logical bits (coded + tail)
	pos          int64

	blk   int // directory index of the cached decoded block, -1 none
	dec   bitio.Writer
	rd    *bitio.Reader
	words []uint64
}

// NewBlockSource wraps a packed list. phys must expose at least
// codedWords*64 + (totalLogical - sum(dir.LogicalBits)) bits.
func NewBlockSource(lay Layout, phys BitSource, dir []BlockMeta, codedWords, totalLogical int64) *BlockSource {
	var cl int64
	if n := len(dir); n > 0 {
		cl = dir[n-1].LogicalStart + dir[n-1].LogicalBits
	}
	return &BlockSource{lay: lay, phys: phys, dir: dir, codedWords: codedWords, codedLogical: cl, total: totalLogical, blk: -1}
}

// load ensures the cached decode buffer covers logical position pos (which
// must lie inside the coded region).
func (b *BlockSource) load(pos int64) error {
	if b.blk >= 0 {
		if m := b.dir[b.blk]; pos >= m.LogicalStart && pos < m.LogicalStart+m.LogicalBits {
			return nil
		}
	}
	lo, hi := 0, len(b.dir)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.dir[mid].LogicalStart+b.dir[mid].LogicalBits <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(b.dir) || b.dir[lo].LogicalStart > pos {
		return corruptBlock("logical offset %d outside block directory", pos)
	}
	m := b.dir[lo]
	end := b.codedWords
	if lo+1 < len(b.dir) {
		end = b.dir[lo+1].PhysWord
	}
	nw := int(end - m.PhysWord)
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	}
	b.words = b.words[:nw]
	if err := b.phys.SeekBit(m.PhysWord * 64); err != nil {
		return err
	}
	for i := range b.words {
		v, err := b.phys.ReadBits(64)
		if err != nil {
			return err
		}
		b.words[i] = v
	}
	n, err := DecodeBlock(b.lay, b.words, &b.dec)
	if err != nil {
		return err
	}
	if n != m.LogicalBits {
		return corruptBlock("block at word %d decoded %d bits, directory says %d", m.PhysWord, n, m.LogicalBits)
	}
	b.blk = lo
	b.rd = bitio.NewReader(b.dec.Bytes(), int(n))
	return nil
}

// ReadBits reads up to 64 bits at the current logical position, assembling
// across block and tail boundaries as needed.
func (b *BlockSource) ReadBits(width int) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	if b.pos+int64(width) > b.total {
		return 0, bitio.ErrShortBuffer
	}
	var v uint64
	for rem := width; rem > 0; {
		take := rem
		var x uint64
		if b.pos >= b.codedLogical {
			if err := b.phys.SeekBit(b.codedWords*64 + (b.pos - b.codedLogical)); err != nil {
				return 0, err
			}
			got, err := b.phys.ReadBits(take)
			if err != nil {
				return 0, err
			}
			x = got
		} else {
			if err := b.load(b.pos); err != nil {
				return 0, err
			}
			m := b.dir[b.blk]
			off := b.pos - m.LogicalStart
			if avail := m.LogicalBits - off; int64(take) > avail {
				take = int(avail)
			}
			if err := b.rd.Seek(int(off)); err != nil {
				return 0, err
			}
			got, err := b.rd.ReadBits(take)
			if err != nil {
				return 0, err
			}
			x = got
		}
		v = v<<uint(take) | x
		b.pos += int64(take)
		rem -= take
	}
	return v, nil
}

// ReadWords fills dst with width bits in the bitio.Writer WriteWords layout.
func (b *BlockSource) ReadWords(dst []uint64, width int) error {
	rem := width
	for i := range dst {
		take := 64
		if rem < 64 {
			take = rem
		}
		v, err := b.ReadBits(take)
		if err != nil {
			return err
		}
		if take < 64 {
			v <<= uint(64 - take)
		}
		dst[i] = v
		rem -= take
	}
	return nil
}

// SkipBits advances the logical position without decoding skipped blocks.
func (b *BlockSource) SkipBits(n int64) error {
	return b.SeekBit(b.pos + n)
}

// SeekBit positions the source at an absolute logical bit offset.
func (b *BlockSource) SeekBit(off int64) error {
	if off < 0 || off > b.total {
		return fmt.Errorf("vector: seek to bit %d outside logical stream of %d bits", off, b.total)
	}
	b.pos = off
	return nil
}

// Pos returns the current logical bit position.
func (b *BlockSource) Pos() int64 { return b.pos }

// Remaining returns the exact count of logical bits left.
func (b *BlockSource) Remaining() int64 { return b.total - b.pos }
