package vector

import (
	"math/rand"
	"testing"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
)

func encodeStrs(lay Layout, strs []string) []signature.Sig {
	out := make([]signature.Sig, 0, len(strs))
	for _, s := range strs {
		out = append(out, lay.Codec.Encode(s))
	}
	return out
}

// TestCursorOverSegmentChains runs the cursor against lists stored in real
// segment chains (crossing extent boundaries), including tail appends after
// the initial build, exactly as the index uses them.
func TestCursorOverSegmentChains(t *testing.T) {
	pool := storage.NewPool(256, 1<<20)
	segs, err := storage.NewSegStore(storage.NewFile(pool, storage.NewMemDevice()), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))

	for _, typ := range []ListType{TypeI, TypeII, TypeIII} {
		lay := textLayout(t, typ)
		enc, err := NewEncoder(lay)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := segs.Create()
		if err != nil {
			t.Fatal(err)
		}
		col := randomTextColumn(rng, 120, 0.5, 3)

		// Build phase: first 80 tuples in one batch.
		var w bitio.Writer
		for _, tid := range col.tids[:80] {
			if err := enc.EncodeText(&w, tid, encodeStrs(lay, col.strs[tid])); err != nil {
				t.Fatal(err)
			}
		}
		bitLen, err := storage.AppendBits(segs, chain, 0, w.Bytes(), w.Len())
		if err != nil {
			t.Fatal(err)
		}
		// Update phase: remaining tuples appended one at a time (§IV-B).
		for _, tid := range col.tids[80:] {
			var aw bitio.Writer
			if err := enc.EncodeText(&aw, tid, encodeStrs(lay, col.strs[tid])); err != nil {
				t.Fatal(err)
			}
			if bitLen, err = storage.AppendBits(segs, chain, bitLen, aw.Bytes(), aw.Len()); err != nil {
				t.Fatal(err)
			}
		}

		cur, err := NewCursor(lay, storage.NewChainBitReader(segs, chain, bitLen))
		if err != nil {
			t.Fatal(err)
		}
		for pos, tid := range col.tids {
			e, err := cur.MoveTo(tid, int64(pos))
			if err != nil {
				t.Fatalf("type %v MoveTo(%d): %v", typ, tid, err)
			}
			if col.ndf[tid] != e.NDF {
				t.Fatalf("type %v tid %d: NDF %v want %v", typ, tid, e.NDF, col.ndf[tid])
			}
			if !e.NDF && len(e.Sigs) != len(col.strs[tid]) {
				t.Fatalf("type %v tid %d: %d sigs want %d", typ, tid, len(e.Sigs), len(col.strs[tid]))
			}
		}
	}
}

// TestNumericCursorOverChains does the same for Type IV's positional seeks
// across extent boundaries.
func TestNumericCursorOverChains(t *testing.T) {
	pool := storage.NewPool(256, 1<<20)
	segs, _ := storage.NewSegStore(storage.NewFile(pool, storage.NewMemDevice()), 0, 64)
	rng := rand.New(rand.NewSource(73))
	lay := numLayout(TypeIV)
	enc, _ := NewEncoder(lay)
	chain, _ := segs.Create()

	codes := make([]uint64, 300)
	ndf := make([]bool, 300)
	var w bitio.Writer
	for i := range codes {
		ndf[i] = rng.Intn(3) == 0
		codes[i] = uint64(rng.Intn(255))
		if err := enc.EncodeNumeric(&w, 0, codes[i], ndf[i]); err != nil {
			t.Fatal(err)
		}
	}
	bitLen, err := storage.AppendBits(segs, chain, 0, w.Bytes(), w.Len())
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := NewCursor(lay, storage.NewChainBitReader(segs, chain, bitLen))
	// Sparse driver: visit every third position, as after deletions.
	for pos := 0; pos < 300; pos += 3 {
		e, err := cur.MoveTo(0, int64(pos))
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if e.NDF != ndf[pos] {
			t.Fatalf("pos %d: NDF %v want %v", pos, e.NDF, ndf[pos])
		}
		if !e.NDF && e.Code != codes[pos] {
			t.Fatalf("pos %d: code %d want %d", pos, e.Code, codes[pos])
		}
	}
}
