package vector

import (
	"fmt"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
)

// Cursor is the scanning pointer of §IV-A over one attribute's vector list.
// The query loop advances the tuple-list pointer one element at a time and
// calls MoveTo(tid, pos) for each related attribute; the cursor either
// yields the decoded element of that tuple or reports ndf.
//
// For tid-addressed lists (Types I and II) the cursor freezes when it is
// positioned on an element whose tid exceeds the current tuple — it keeps
// the element pending and reports ndf until the scan catches up. Elements
// whose tids were skipped by the driver (deleted tuples) are discarded in
// passing. For positional lists (Types III and IV) the cursor advances to
// the element at the requested tuple-list position, skipping intervening
// elements' bits.
//
// MoveTo must be called with strictly increasing positions (and,
// correspondingly, increasing tids): a cursor is a forward scan, not an
// index.
type Cursor struct {
	lay Layout
	src BitSource

	// Type I/II freeze state: the last element header read but not yet
	// consumed.
	pending    bool
	pendingTID model.TID

	// Type III/IV positional state: tuple-list position of the next
	// element in the stream.
	nextPos int64

	lastPos int64 // last requested position, for ordering checks
	started bool

	// Optional signature scratch arena, see EnableScratch.
	reuse bool
	arena []uint64
}

// NewCursor returns a cursor at the start of a list.
func NewCursor(lay Layout, src BitSource) (*Cursor, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	return &Cursor{lay: lay, src: src}, nil
}

// NewCursorAt returns a cursor resuming a list at a stripe checkpoint. off is
// the bit offset of the next unconsumed element header (the normalized form
// checkpoints record: never mid-element, never a read-ahead frozen header)
// and startPos is the tuple-list position the first MoveTo will be at least
// at. Type IV lists seek absolutely per element, so off is redundant for
// them but still positioned for uniformity.
func NewCursorAt(lay Layout, src BitSource, off int64, startPos int64) (*Cursor, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if err := src.SeekBit(off); err != nil {
		return nil, err
	}
	c := &Cursor{lay: lay, src: src, nextPos: startPos}
	if startPos > 0 {
		c.started = true
		c.lastPos = startPos - 1
	}
	return c, nil
}

// EnableScratch makes the cursor decode signature words into a reusable
// per-cursor arena instead of allocating per signature. The words of the
// Entry returned by MoveTo then stay valid only until the next MoveTo call —
// exactly the lifetime the filter loop needs, which estimates a distance
// bound from the entry and moves on.
func (c *Cursor) EnableScratch() { c.reuse = true }

// MoveTo synchronizes the cursor with the tuple at tuple-list position pos
// holding id tid, and returns that tuple's decoded element.
func (c *Cursor) MoveTo(tid model.TID, pos int64) (Entry, error) {
	if c.started && pos <= c.lastPos {
		return Entry{}, fmt.Errorf("vector: MoveTo positions must increase (%d after %d)", pos, c.lastPos)
	}
	c.started = true
	c.lastPos = pos
	if c.reuse {
		c.arena = c.arena[:0] // invalidates the previous MoveTo's entry
	}
	switch c.lay.Type {
	case TypeI:
		return c.moveTID(tid, false)
	case TypeII:
		return c.moveTID(tid, true)
	case TypeIII:
		return c.movePositionalText(pos)
	case TypeIV:
		return c.movePositionalNumeric(pos)
	}
	return Entry{}, fmt.Errorf("vector: bad list type %v", c.lay.Type)
}

// moveTID implements Types I and II. withCount selects the Type II layout.
func (c *Cursor) moveTID(tid model.TID, withCount bool) (Entry, error) {
	for {
		if !c.pending {
			if c.src.Remaining() < int64(c.lay.LTid) {
				// Tail reached: everything further is ndf (§IV-A step 5).
				return Entry{NDF: true}, nil
			}
			v, err := c.src.ReadBits(c.lay.LTid)
			if err != nil {
				return Entry{}, err
			}
			c.pending = true
			c.pendingTID = model.TID(v)
		}
		switch {
		case c.pendingTID > tid:
			// Freeze: current tuple has no element here.
			return Entry{NDF: true}, nil
		case c.pendingTID < tid:
			// Element of a tuple the driver skipped (deleted): discard.
			if err := c.discardBody(withCount); err != nil {
				return Entry{}, err
			}
			c.pending = false
		default:
			return c.consumeMatch(tid, withCount)
		}
	}
}

// consumeMatch decodes the pending element (and, for Type I text values
// with multiple strings, all consecutive elements sharing the tid).
func (c *Cursor) consumeMatch(tid model.TID, withCount bool) (Entry, error) {
	c.pending = false
	if c.lay.Kind == model.KindNumeric {
		code, err := c.src.ReadBits(c.lay.VecBits)
		if err != nil {
			return Entry{}, err
		}
		return Entry{Code: code}, nil
	}
	var sigs []signature.Sig
	if withCount {
		n, err := c.src.ReadBits(c.lay.LNum)
		if err != nil {
			return Entry{}, err
		}
		for i := uint64(0); i < n; i++ {
			s, err := c.readSig()
			if err != nil {
				return Entry{}, err
			}
			sigs = append(sigs, s)
		}
		return Entry{Sigs: sigs}, nil
	}
	// Type I: one signature per element; collect consecutive same-tid
	// elements.
	for {
		s, err := c.readSig()
		if err != nil {
			return Entry{}, err
		}
		sigs = append(sigs, s)
		if c.src.Remaining() < int64(c.lay.LTid) {
			break
		}
		v, err := c.src.ReadBits(c.lay.LTid)
		if err != nil {
			return Entry{}, err
		}
		next := model.TID(v)
		if next != tid {
			c.pending = true
			c.pendingTID = next
			break
		}
	}
	return Entry{Sigs: sigs}, nil
}

// discardBody skips the body of the pending element (header already read).
func (c *Cursor) discardBody(withCount bool) error {
	if c.lay.Kind == model.KindNumeric {
		return c.src.SkipBits(int64(c.lay.VecBits))
	}
	if withCount {
		n, err := c.src.ReadBits(c.lay.LNum)
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			if err := c.skipSig(); err != nil {
				return err
			}
		}
		return nil
	}
	return c.skipSig()
}

// movePositionalText implements Type III.
func (c *Cursor) movePositionalText(pos int64) (Entry, error) {
	for c.nextPos < pos {
		// Skip the element of an intervening tuple.
		n, err := c.src.ReadBits(c.lay.LNum)
		if err != nil {
			return Entry{}, err
		}
		for i := uint64(0); i < n; i++ {
			if err := c.skipSig(); err != nil {
				return Entry{}, err
			}
		}
		c.nextPos++
	}
	n, err := c.src.ReadBits(c.lay.LNum)
	if err != nil {
		return Entry{}, err
	}
	c.nextPos++
	if n == 0 {
		return Entry{NDF: true}, nil
	}
	sigs := make([]signature.Sig, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := c.readSig()
		if err != nil {
			return Entry{}, err
		}
		sigs = append(sigs, s)
	}
	return Entry{Sigs: sigs}, nil
}

// movePositionalNumeric implements Type IV: fixed-width elements allow a
// direct seek.
func (c *Cursor) movePositionalNumeric(pos int64) (Entry, error) {
	if err := c.src.SeekBit(pos * int64(c.lay.VecBits)); err != nil {
		return Entry{}, err
	}
	code, err := c.src.ReadBits(c.lay.VecBits)
	if err != nil {
		return Entry{}, err
	}
	if code == c.lay.NDFCode {
		return Entry{NDF: true}, nil
	}
	return Entry{Code: code}, nil
}

func (c *Cursor) readSig() (signature.Sig, error) {
	lv, err := c.src.ReadBits(signature.LenBits)
	if err != nil {
		return signature.Sig{}, err
	}
	width := c.lay.Codec.SigBits(int(lv))
	words := c.sigWords((width + 63) / 64)
	if err := c.src.ReadWords(words, width); err != nil {
		return signature.Sig{}, err
	}
	return signature.Sig{Len: int(lv), H: words}, nil
}

// sigWords returns an nw-word slice for a signature body. With scratch
// enabled it is carved out of the arena; a grow leaves earlier slices of the
// same MoveTo pointing at the old backing array, which stays alive through
// their references.
func (c *Cursor) sigWords(nw int) []uint64 {
	if !c.reuse {
		return make([]uint64, nw)
	}
	n := len(c.arena)
	if cap(c.arena)-n < nw {
		grow := 2*cap(c.arena) + nw
		if grow < 64 {
			grow = 64
		}
		na := make([]uint64, n, grow)
		copy(na, c.arena)
		c.arena = na
	}
	c.arena = c.arena[:n+nw]
	return c.arena[n : n+nw]
}

func (c *Cursor) skipSig() error {
	lv, err := c.src.ReadBits(signature.LenBits)
	if err != nil {
		return err
	}
	return c.src.SkipBits(int64(c.lay.Codec.SigBits(int(lv))))
}
