package vector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
)

func TestCodecRegistry(t *testing.T) {
	if c, ok := CodecByID(CodecRaw); !ok || c.ID() != CodecRaw || c.Name() != "raw" || c.Blocked() {
		t.Fatalf("raw codec misregistered: %v %v", c, ok)
	}
	if c, ok := CodecByID(CodecPacked); !ok || c.ID() != CodecPacked || c.Name() != "packed" || !c.Blocked() {
		t.Fatalf("packed codec misregistered: %v %v", c, ok)
	}
	if _, ok := CodecByID(7); ok {
		t.Fatal("unknown codec id resolved")
	}
	if got := CodecName(7); got != "unknown(7)" {
		t.Fatalf("CodecName(7) = %q", got)
	}
}

// codecTestLayouts returns the delta-eligible layouts (tid-bearing Types I
// and II) plus a positional one for the raw fallback.
func codecTestLayouts(t *testing.T) map[string]Layout {
	t.Helper()
	sc, err := signature.NewCodec(2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Layout{
		"I-text":    {Type: TypeI, Kind: model.KindText, LTid: 20, Codec: sc},
		"I-numeric": {Type: TypeI, Kind: model.KindNumeric, LTid: 20, VecBits: 6},
		"II-text":   {Type: TypeII, Kind: model.KindText, LTid: 20, LNum: 4, Codec: sc},
		"IV-num":    {Type: TypeIV, Kind: model.KindNumeric, VecBits: 8, NDFCode: 255},
	}
}

// encodeStripe produces a logical element stream for lay: n elements with
// tids spaced by gap (positional layouts ignore tids).
func encodeStripe(t *testing.T, lay Layout, n int, gap uint64) *bitio.Writer {
	t.Helper()
	enc, err := NewEncoder(lay)
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	for i := 0; i < n; i++ {
		tid := model.TID(uint64(i) * gap)
		switch lay.Kind {
		case model.KindText:
			var sigs []signature.Sig
			ns := 1
			if lay.Type == TypeII {
				ns = i%3 + 1
			}
			for j := 0; j < ns; j++ {
				sigs = append(sigs, lay.Codec.Encode(fmt.Sprintf("value-%d-%d", i, j)))
			}
			if err := enc.EncodeText(&w, tid, sigs); err != nil {
				t.Fatal(err)
			}
		case model.KindNumeric:
			if err := enc.EncodeNumeric(&w, tid, uint64(i%50), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &w
}

func bitsEqual(a, b *bitio.Writer) bool {
	if a.Len() != b.Len() {
		return false
	}
	ra := bitio.NewReader(a.Bytes(), a.Len())
	rb := bitio.NewReader(b.Bytes(), b.Len())
	for rem := a.Len(); rem > 0; {
		take := 64
		if rem < 64 {
			take = rem
		}
		va, _ := ra.ReadBits(take)
		vb, _ := rb.ReadBits(take)
		if va != vb {
			return false
		}
		rem -= take
	}
	return true
}

// TestSealRoundTrip proves both codecs are lossless on every layout: the
// decoded block is bit-identical to the stripe that was sealed, and the
// packed codec's delta mode actually fires (and saves payload) on the
// tid-bearing layouts.
func TestSealRoundTrip(t *testing.T) {
	for name, lay := range codecTestLayouts(t) {
		for _, cdc := range []Codec{Raw, Packed} {
			w := encodeStripe(t, lay, 64, 3)
			words, err := cdc.Seal(lay, w.Bytes(), int64(w.Len()))
			if err != nil {
				t.Fatalf("%s/%s: seal: %v", name, cdc.Name(), err)
			}
			var dec bitio.Writer
			n, err := DecodeBlock(lay, words, &dec)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", name, cdc.Name(), err)
			}
			if n != int64(w.Len()) || !bitsEqual(w, &dec) {
				t.Fatalf("%s/%s: round trip not bit-identical (%d vs %d bits)", name, cdc.Name(), n, w.Len())
			}
			mode := uint8(words[1] >> 56)
			deltaEligible := lay.Type == TypeI || lay.Type == TypeII
			if cdc.ID() == CodecRaw && mode != blockModeRaw {
				t.Fatalf("%s: raw codec produced mode %d", name, mode)
			}
			if cdc.ID() == CodecPacked && deltaEligible {
				if mode != blockModeDelta {
					t.Fatalf("%s: packed codec fell back to raw on a delta-eligible stripe", name)
				}
				rawWords, err := Raw.Seal(lay, w.Bytes(), int64(w.Len()))
				if err != nil {
					t.Fatal(err)
				}
				if len(words) >= len(rawWords) {
					t.Fatalf("%s: delta block (%d words) not smaller than raw (%d words)",
						name, len(words), len(rawWords))
				}
			}
			if cdc.ID() == CodecPacked && !deltaEligible && mode != blockModeRaw {
				t.Fatalf("%s: positional layout sealed in delta mode", name)
			}
		}
	}
}

// TestSealRawFallback: a stripe whose bits do not parse as clean element
// framing (here: a valid stream truncated mid-element) must seal in raw mode
// — the packed codec never guesses — and still round-trip bit-identically.
func TestSealRawFallback(t *testing.T) {
	lay := Layout{Type: TypeI, Kind: model.KindNumeric, LTid: 20, VecBits: 6}
	w := encodeStripe(t, lay, 8, 3)
	nbits := int64(w.Len()) - 5 // chop mid-element: framing no longer parses
	words, err := Packed.Seal(lay, w.Bytes(), nbits)
	if err != nil {
		t.Fatal(err)
	}
	if mode := uint8(words[1] >> 56); mode != blockModeRaw {
		t.Fatalf("unparseable stripe sealed in mode %d, want raw", mode)
	}
	var dec bitio.Writer
	n, err := DecodeBlock(lay, words, &dec)
	if err != nil || n != nbits {
		t.Fatalf("raw-fallback round trip failed: %v (%d bits)", err, n)
	}
	want := bitio.NewReader(w.Bytes(), int(nbits))
	got := bitio.NewReader(dec.Bytes(), dec.Len())
	for rem := nbits; rem > 0; rem -= 64 {
		take := 64
		if rem < 64 {
			take = int(rem)
		}
		a, _ := want.ReadBits(take)
		b, _ := got.ReadBits(take)
		if a != b {
			t.Fatal("raw fallback not bit-identical")
		}
	}
}

// blockBytes serializes block words the way the physical stream stores them
// (MSB-first, i.e. big-endian per word).
func blockBytes(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint64(out[8*i:], w)
	}
	return out
}

func wordsFromBytes(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(b[8*i:])
	}
	return out
}

// TestDecodeBlockStompedBytes is the unit-level no-false-negative check: for
// every byte of a sealed block, stomping it must yield a typed
// *storage.CorruptionError — never a silent different decode, never a panic.
func TestDecodeBlockStompedBytes(t *testing.T) {
	for name, lay := range codecTestLayouts(t) {
		w := encodeStripe(t, lay, 32, 3)
		words, err := Packed.Seal(lay, w.Bytes(), int64(w.Len()))
		if err != nil {
			t.Fatal(err)
		}
		clean := blockBytes(words)
		for off := 0; off < len(clean); off++ {
			for _, xor := range []byte{0x01, 0x80, 0xff} {
				dirty := append([]byte(nil), clean...)
				dirty[off] ^= xor
				var dec bitio.Writer
				_, err := DecodeBlock(lay, wordsFromBytes(dirty), &dec)
				if err == nil {
					if !bitsEqual(w, &dec) {
						t.Fatalf("%s: stomp at byte %d xor %#x decoded silently different bits", name, off, xor)
					}
					t.Fatalf("%s: stomp at byte %d xor %#x escaped the block checksum", name, off, xor)
				}
				var ce *storage.CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("%s: stomp at byte %d: untyped error %v", name, off, err)
				}
			}
		}
	}
}

// TestWalkBlocks chains three sealed stripes and proves the header walk
// reconstructs the directory, then that damage in any header is detected.
func TestWalkBlocks(t *testing.T) {
	lay := Layout{Type: TypeI, Kind: model.KindNumeric, LTid: 16, VecBits: 6}
	var phys bitio.Writer
	var wantDir []BlockMeta
	var logical int64
	var physWord int64
	for s := 0; s < 3; s++ {
		w := encodeStripe(t, lay, 16+8*s, 2)
		words, err := Packed.Seal(lay, w.Bytes(), int64(w.Len()))
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range words {
			phys.WriteBits(x, 64)
		}
		wantDir = append(wantDir, BlockMeta{PhysWord: physWord, LogicalStart: logical, LogicalBits: int64(w.Len())})
		physWord += int64(len(words))
		logical += int64(w.Len())
	}
	src := MemSource{R: bitio.NewReader(phys.Bytes(), phys.Len())}
	dir, gotLogical, err := WalkBlocks(src, physWord)
	if err != nil {
		t.Fatal(err)
	}
	if gotLogical != logical || len(dir) != len(wantDir) {
		t.Fatalf("walk: %d blocks %d bits, want %d blocks %d bits", len(dir), gotLogical, len(wantDir), logical)
	}
	for i := range dir {
		if dir[i] != wantDir[i] {
			t.Fatalf("block %d: %+v, want %+v", i, dir[i], wantDir[i])
		}
	}

	// A corrupted magic word in the second header fails the walk typed.
	dirty := append([]byte(nil), phys.Bytes()...)
	dirty[8*wantDir[1].PhysWord] ^= 0x10
	_, _, err = WalkBlocks(MemSource{R: bitio.NewReader(dirty, phys.Len())}, physWord)
	var ce *storage.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("walk over stomped header: %v, want *storage.CorruptionError", err)
	}

	// A truncated coded region (cutting mid-block) fails typed too.
	if _, _, err := WalkBlocks(src, physWord-1); !errors.As(err, &ce) {
		t.Fatalf("walk over truncated region: %v, want *storage.CorruptionError", err)
	}
}

// TestBlockSourceSplice drives a Cursor over a BlockSource splicing two
// sealed stripes plus a raw tail, and demands element-exact agreement with a
// cursor over the plain logical stream — including absolute re-seeks.
func TestBlockSourceSplice(t *testing.T) {
	sc, err := signature.NewCodec(2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for name, lay := range map[string]Layout{
		"I-text":    {Type: TypeI, Kind: model.KindText, LTid: 16, Codec: sc},
		"I-numeric": {Type: TypeI, Kind: model.KindNumeric, LTid: 16, VecBits: 6},
		"II-text":   {Type: TypeII, Kind: model.KindText, LTid: 16, LNum: 4, Codec: sc},
	} {
		enc, err := NewEncoder(lay)
		if err != nil {
			t.Fatal(err)
		}
		// Full logical stream: 48 elements, one per position.
		var logical bitio.Writer
		stripeEnds := []int{}
		for i := 0; i < 48; i++ {
			tid := model.TID(i)
			if lay.Kind == model.KindText {
				sigs := []signature.Sig{lay.Codec.Encode(fmt.Sprintf("e%d", i))}
				if err := enc.EncodeText(&logical, tid, sigs); err != nil {
					t.Fatal(err)
				}
			} else if err := enc.EncodeNumeric(&logical, tid, uint64(i%60), false); err != nil {
				t.Fatal(err)
			}
			if i == 15 || i == 31 {
				stripeEnds = append(stripeEnds, logical.Len())
			}
		}
		// Physical stream: stripes [0,e0) and [e0,e1) sealed, rest raw tail.
		var phys bitio.Writer
		var dir []BlockMeta
		prev := 0
		for _, end := range stripeEnds {
			seg := make([]byte, (end-prev+7)/8)
			r := bitio.NewReader(logical.Bytes(), logical.Len())
			if err := r.Seek(prev); err != nil {
				t.Fatal(err)
			}
			var sw bitio.Writer
			if err := copyBits(&sw, r, int64(end-prev)); err != nil {
				t.Fatal(err)
			}
			copy(seg, sw.Bytes())
			words, err := Packed.Seal(lay, sw.Bytes(), int64(end-prev))
			if err != nil {
				t.Fatal(err)
			}
			dir = append(dir, BlockMeta{PhysWord: int64(phys.Len() / 64), LogicalStart: int64(prev), LogicalBits: int64(end - prev)})
			for _, x := range words {
				phys.WriteBits(x, 64)
			}
			prev = end
		}
		codedWords := int64(phys.Len() / 64)
		// Raw tail: the remaining logical bits verbatim.
		r := bitio.NewReader(logical.Bytes(), logical.Len())
		if err := r.Seek(prev); err != nil {
			t.Fatal(err)
		}
		if err := copyBits(&phys, r, int64(logical.Len()-prev)); err != nil {
			t.Fatal(err)
		}

		bs := NewBlockSource(lay, MemSource{R: bitio.NewReader(phys.Bytes(), phys.Len())},
			dir, codedWords, int64(logical.Len()))
		if bs.Remaining() != int64(logical.Len()) {
			t.Fatalf("%s: Remaining %d, want %d", name, bs.Remaining(), logical.Len())
		}
		ref, err := NewCursor(lay, MemSource{R: bitio.NewReader(logical.Bytes(), logical.Len())})
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewCursor(lay, bs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 48; i++ {
			we, err := ref.MoveTo(model.TID(i), int64(i))
			if err != nil {
				t.Fatalf("%s ref MoveTo(%d): %v", name, i, err)
			}
			ge, err := got.MoveTo(model.TID(i), int64(i))
			if err != nil {
				t.Fatalf("%s spliced MoveTo(%d): %v", name, i, err)
			}
			if we.NDF != ge.NDF || we.Code != ge.Code || len(we.Sigs) != len(ge.Sigs) {
				t.Fatalf("%s pos %d: spliced element differs (%+v vs %+v)", name, i, ge, we)
			}
			for j := range we.Sigs {
				if we.Sigs[j].Len != ge.Sigs[j].Len {
					t.Fatalf("%s pos %d sig %d differs", name, i, j)
				}
				for k := range we.Sigs[j].H {
					if we.Sigs[j].H[k] != ge.Sigs[j].H[k] {
						t.Fatalf("%s pos %d sig %d word %d differs", name, i, j, k)
					}
				}
			}
		}
		// Re-seek to the middle (the checkpoint-resume path) and re-read.
		if err := bs.SeekBit(dir[1].LogicalStart); err != nil {
			t.Fatal(err)
		}
		cur2, err := NewCursorAt(lay, bs, dir[1].LogicalStart, 16)
		if err != nil {
			t.Fatal(err)
		}
		if e, err := cur2.MoveTo(model.TID(20), 20); err != nil || e.NDF {
			t.Fatalf("%s: re-seated cursor failed at pos 20: %v", name, err)
		}
	}
}

// FuzzCodecBlock seals a fuzzer-chosen element stream, then stomps
// fuzzer-chosen bytes of the container: DecodeBlock must either fail with a
// typed *storage.CorruptionError or decode the exact original bits — never a
// silent difference, never a panic. The raw remainder of the input is also
// decoded directly to exercise hostile headers.
func FuzzCodecBlock(f *testing.F) {
	f.Add([]byte{0, 10, 3, 20, 5, 9, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0x55, 0xaa, 0x55, 0xaa, 1, 2})
	f.Add([]byte{4, 31, 15, 62, 200, 1, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{5, 1, 1, 1, 31, 250, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 || len(data) > 1<<12 {
			return
		}
		lay := fuzzLayout(t, [4]byte{data[0], data[1], data[2], data[3]})
		stompSel := data[4]
		xor := data[5]
		body := data[6:]

		// Encode a valid stream, mirroring FuzzVectorList's generator.
		enc, err := NewEncoder(lay)
		if err != nil {
			t.Fatal(err)
		}
		n := len(body)
		if n > 40 {
			n = 40
		}
		var w bitio.Writer
		for i := 0; i < n; i++ {
			b := body[i]
			tid := model.TID(i)
			if lay.Kind == model.KindNumeric {
				code := uint64(b)
				if max := uint64(1)<<uint(lay.VecBits) - 1; code >= max {
					code = max - 1
				}
				if code == lay.NDFCode {
					code = 0
				}
				if err := enc.EncodeNumeric(&w, tid, code, b%5 == 0); err != nil {
					t.Fatal(err)
				}
				continue
			}
			var sigs []signature.Sig
			if b%5 != 0 {
				ns := int(b)%3 + 1
				if lay.Type != TypeI && ns >= 1<<uint(lay.LNum) {
					ns = 1
				}
				for j := 0; j < ns; j++ {
					sigs = append(sigs, lay.Codec.Encode(fmt.Sprintf("s%d-%d", i, j)))
				}
			}
			if err := enc.EncodeText(&w, tid, sigs); err != nil {
				t.Fatal(err)
			}
		}
		if w.Len() > 0 {
			words, err := Packed.Seal(lay, w.Bytes(), int64(w.Len()))
			if err != nil {
				t.Fatalf("seal: %v", err)
			}
			// Clean decode must round-trip exactly.
			var dec bitio.Writer
			if _, err := DecodeBlock(lay, words, &dec); err != nil {
				t.Fatalf("clean decode: %v", err)
			}
			if !bitsEqual(&w, &dec) {
				t.Fatal("clean decode not bit-identical")
			}
			// Stomped decode: typed error or identical bits.
			raw := blockBytes(words)
			if xor != 0 {
				raw[int(stompSel)%len(raw)] ^= xor
				var dec2 bitio.Writer
				if _, err := DecodeBlock(lay, wordsFromBytes(raw), &dec2); err == nil {
					if !bitsEqual(&w, &dec2) {
						t.Fatal("stomped block decoded silently different bits")
					}
				} else {
					var ce *storage.CorruptionError
					if !errors.As(err, &ce) {
						t.Fatalf("stomped block: untyped error %v", err)
					}
				}
			}
		}

		// Hostile container: the raw fuzz bytes as block words. Must reject
		// cleanly or decode without panicking; errors must stay typed.
		if len(body) >= 8 {
			hw := wordsFromBytes(body[:len(body)/8*8])
			var dec bitio.Writer
			if _, err := DecodeBlock(lay, hw, &dec); err != nil {
				var ce *storage.CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("hostile container: untyped error %v", err)
				}
			}
			// Hostile directory walk, same contract.
			src := MemSource{R: bitio.NewReader(body, -1)}
			if _, _, err := WalkBlocks(src, int64(len(body)/8)); err != nil {
				var ce *storage.CorruptionError
				if !errors.As(err, &ce) && !errors.Is(err, bitio.ErrShortBuffer) {
					t.Fatalf("hostile walk: untyped error %v", err)
				}
			}
		}
	})
}
