package vector

import (
	"math/rand"
	"testing"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
)

func textLayout(t testing.TB, typ ListType) Layout {
	t.Helper()
	codec, err := signature.NewCodec(2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return Layout{Type: typ, Kind: model.KindText, LTid: 10, LNum: 4, Codec: codec}
}

func numLayout(typ ListType) Layout {
	return Layout{Type: typ, Kind: model.KindNumeric, LTid: 10, VecBits: 8, NDFCode: 255}
}

func TestLayoutValidate(t *testing.T) {
	codec, _ := signature.NewCodec(2, 0.2)
	cases := []struct {
		lay Layout
		ok  bool
	}{
		{Layout{Type: TypeI, Kind: model.KindText, LTid: 10, Codec: codec}, true},
		{Layout{Type: TypeII, Kind: model.KindText, LTid: 10, LNum: 4, Codec: codec}, true},
		{Layout{Type: TypeIII, Kind: model.KindText, LNum: 4, Codec: codec}, true},
		{Layout{Type: TypeIV, Kind: model.KindNumeric, VecBits: 8, NDFCode: 255}, true},
		{Layout{Type: TypeII, Kind: model.KindNumeric, LTid: 10, LNum: 4, VecBits: 8}, false}, // II is text-only
		{Layout{Type: TypeIV, Kind: model.KindText, Codec: codec}, false},                     // IV is numeric-only
		{Layout{Type: TypeI, Kind: model.KindText, LTid: 0, Codec: codec}, false},
		{Layout{Type: TypeI, Kind: model.KindText, LTid: 10}, false}, // no codec
		{Layout{Type: TypeI, Kind: model.KindNumeric, LTid: 10, VecBits: 0}, false},
		{Layout{Type: 9}, false},
	}
	for i, c := range cases {
		err := c.lay.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestChooseText(t *testing.T) {
	// Dense attribute (df ~ |T|, one string each): Type III avoids repeating
	// tids.
	if got := ChooseText(20, 4, 1000, 1000, 1000, 50000); got != TypeIII {
		t.Errorf("dense: got %v, want III", got)
	}
	// Very sparse attribute with single strings: Type I (no counts needed).
	if got := ChooseText(20, 4, 5, 5, 1000000, 250); got != TypeI {
		t.Errorf("sparse: got %v, want I", got)
	}
	// Sparse with many strings per value: Type II amortizes the tid.
	if got := ChooseText(20, 4, 10, 200, 1000000, 10000); got != TypeII {
		t.Errorf("multi-string: got %v, want II", got)
	}
}

func TestChooseNumeric(t *testing.T) {
	if got := ChooseNumeric(20, 16, 10, 1000000); got != TypeI {
		t.Errorf("sparse numeric: got %v, want I", got)
	}
	if got := ChooseNumeric(20, 16, 900000, 1000000); got != TypeIV {
		t.Errorf("dense numeric: got %v, want IV", got)
	}
}

// column is a test fixture: a sparse attribute over a run of tuples.
type column struct {
	tids []model.TID            // tuple-list order
	strs map[model.TID][]string // text values (nil = ndf)
	nums map[model.TID]uint64   // numeric codes
	ndf  map[model.TID]bool
}

func buildTextList(t *testing.T, lay Layout, col column) ([]byte, int) {
	t.Helper()
	enc, err := NewEncoder(lay)
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	for _, tid := range col.tids {
		var sigs []signature.Sig
		for _, s := range col.strs[tid] {
			sigs = append(sigs, lay.Codec.Encode(s))
		}
		if err := enc.EncodeText(&w, tid, sigs); err != nil {
			t.Fatal(err)
		}
	}
	return w.Bytes(), w.Len()
}

func buildNumList(t *testing.T, lay Layout, col column) ([]byte, int) {
	t.Helper()
	enc, err := NewEncoder(lay)
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	for _, tid := range col.tids {
		if err := enc.EncodeNumeric(&w, tid, col.nums[tid], col.ndf[tid]); err != nil {
			t.Fatal(err)
		}
	}
	return w.Bytes(), w.Len()
}

func randomTextColumn(rng *rand.Rand, n int, density float64, maxStrs int) column {
	col := column{strs: map[model.TID][]string{}, ndf: map[model.TID]bool{}}
	for i := 0; i < n; i++ {
		tid := model.TID(i)
		col.tids = append(col.tids, tid)
		if rng.Float64() > density {
			col.ndf[tid] = true
			continue
		}
		k := 1 + rng.Intn(maxStrs)
		strs := make([]string, k)
		for j := range strs {
			b := make([]byte, 1+rng.Intn(15))
			for x := range b {
				b[x] = byte('a' + rng.Intn(26))
			}
			strs[j] = string(b)
		}
		col.strs[tid] = strs
	}
	return col
}

func verifyTextScan(t *testing.T, lay Layout, col column, buf []byte, nbits int) {
	t.Helper()
	cur, err := NewCursor(lay, MemSource{R: bitio.NewReader(buf, nbits)})
	if err != nil {
		t.Fatal(err)
	}
	for pos, tid := range col.tids {
		e, err := cur.MoveTo(tid, int64(pos))
		if err != nil {
			t.Fatalf("MoveTo(%d,%d): %v", tid, pos, err)
		}
		want := col.strs[tid]
		if col.ndf[tid] {
			if !e.NDF {
				t.Fatalf("tid %d: want ndf, got %d sigs", tid, len(e.Sigs))
			}
			continue
		}
		if e.NDF {
			t.Fatalf("tid %d: got ndf, want %d strings", tid, len(want))
		}
		if len(e.Sigs) != len(want) {
			t.Fatalf("tid %d: %d sigs, want %d", tid, len(e.Sigs), len(want))
		}
		for i, s := range want {
			ref := lay.Codec.Encode(s)
			if e.Sigs[i].Len != ref.Len {
				t.Fatalf("tid %d sig %d: len %d want %d", tid, i, e.Sigs[i].Len, ref.Len)
			}
			for wd := range ref.H {
				if e.Sigs[i].H[wd] != ref.H[wd] {
					t.Fatalf("tid %d sig %d word %d: %x want %x", tid, i, wd, e.Sigs[i].H[wd], ref.H[wd])
				}
			}
		}
	}
}

func TestTextListRoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, typ := range []ListType{TypeI, TypeII, TypeIII} {
		for trial := 0; trial < 10; trial++ {
			lay := textLayout(t, typ)
			col := randomTextColumn(rng, 100, 0.4, 3)
			buf, nbits := buildTextList(t, lay, col)
			verifyTextScan(t, lay, col, buf, nbits)
		}
	}
}

func TestNumericListRoundTripBothTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, typ := range []ListType{TypeI, TypeIV} {
		for trial := 0; trial < 10; trial++ {
			lay := numLayout(typ)
			col := column{nums: map[model.TID]uint64{}, ndf: map[model.TID]bool{}}
			for i := 0; i < 100; i++ {
				tid := model.TID(i)
				col.tids = append(col.tids, tid)
				if rng.Float64() > 0.5 {
					col.ndf[tid] = true
				} else {
					col.nums[tid] = uint64(rng.Intn(255)) // 255 reserved for ndf
				}
			}
			buf, nbits := buildNumList(t, lay, col)
			cur, err := NewCursor(lay, MemSource{R: bitio.NewReader(buf, nbits)})
			if err != nil {
				t.Fatal(err)
			}
			for pos, tid := range col.tids {
				e, err := cur.MoveTo(tid, int64(pos))
				if err != nil {
					t.Fatalf("MoveTo(%d): %v", tid, err)
				}
				if col.ndf[tid] != e.NDF {
					t.Fatalf("type %v tid %d: NDF=%v want %v", typ, tid, e.NDF, col.ndf[tid])
				}
				if !e.NDF && e.Code != col.nums[tid] {
					t.Fatalf("type %v tid %d: code %d want %d", typ, tid, e.Code, col.nums[tid])
				}
			}
		}
	}
}

func TestCursorSkipsDeletedTuples(t *testing.T) {
	// The query driver does not call MoveTo for deleted tuples; cursors must
	// discard their elements in passing (Types I/II) or skip their positions
	// (Type III/IV).
	rng := rand.New(rand.NewSource(35))
	for _, typ := range []ListType{TypeI, TypeII, TypeIII} {
		lay := textLayout(t, typ)
		col := randomTextColumn(rng, 60, 0.7, 2)
		buf, nbits := buildTextList(t, lay, col)
		cur, _ := NewCursor(lay, MemSource{R: bitio.NewReader(buf, nbits)})
		for pos, tid := range col.tids {
			if tid%3 == 1 { // "deleted"
				continue
			}
			e, err := cur.MoveTo(tid, int64(pos))
			if err != nil {
				t.Fatalf("type %v MoveTo(%d): %v", typ, tid, err)
			}
			if col.ndf[tid] != e.NDF {
				t.Fatalf("type %v tid %d: NDF=%v want %v", typ, tid, e.NDF, col.ndf[tid])
			}
			if !e.NDF && len(e.Sigs) != len(col.strs[tid]) {
				t.Fatalf("type %v tid %d: %d sigs want %d", typ, tid, len(e.Sigs), len(col.strs[tid]))
			}
		}
	}
}

func TestCursorFreeze(t *testing.T) {
	// Fig. 7's scenario: a Type II list with elements for tuples 0 and 5
	// only; the cursor must freeze on tids 1..4 and unfreeze at 5.
	lay := textLayout(t, TypeII)
	col := column{
		tids: []model.TID{0, 1, 2, 3, 4, 5},
		strs: map[model.TID][]string{0: {"wideangle"}, 5: {"telephoto", "wideangle"}},
		ndf:  map[model.TID]bool{1: true, 2: true, 3: true, 4: true},
	}
	buf, nbits := buildTextList(t, lay, col)
	cur, _ := NewCursor(lay, MemSource{R: bitio.NewReader(buf, nbits)})
	for pos, tid := range col.tids {
		e, err := cur.MoveTo(tid, int64(pos))
		if err != nil {
			t.Fatal(err)
		}
		switch tid {
		case 0:
			if e.NDF || len(e.Sigs) != 1 {
				t.Fatalf("tid 0: %+v", e)
			}
		case 5:
			if e.NDF || len(e.Sigs) != 2 {
				t.Fatalf("tid 5: %+v", e)
			}
		default:
			if !e.NDF {
				t.Fatalf("tid %d: want frozen ndf", tid)
			}
		}
	}
}

func TestCursorPastTail(t *testing.T) {
	// After the last element, every further tuple is ndf (Fig. 7 step 5).
	lay := numLayout(TypeI)
	col := column{
		tids: []model.TID{0, 1, 2},
		nums: map[model.TID]uint64{0: 42},
		ndf:  map[model.TID]bool{1: true, 2: true},
	}
	buf, nbits := buildNumList(t, lay, col)
	cur, _ := NewCursor(lay, MemSource{R: bitio.NewReader(buf, nbits)})
	e, _ := cur.MoveTo(0, 0)
	if e.NDF || e.Code != 42 {
		t.Fatalf("tid 0: %+v", e)
	}
	for pos, tid := range []model.TID{1, 2} {
		e, err := cur.MoveTo(tid, int64(pos+1))
		if err != nil {
			t.Fatal(err)
		}
		if !e.NDF {
			t.Fatalf("tid %d past tail: %+v", tid, e)
		}
	}
}

func TestMoveToOrderingEnforced(t *testing.T) {
	lay := numLayout(TypeIV)
	col := column{tids: []model.TID{0, 1}, nums: map[model.TID]uint64{0: 1, 1: 2}}
	buf, nbits := buildNumList(t, lay, col)
	cur, _ := NewCursor(lay, MemSource{R: bitio.NewReader(buf, nbits)})
	if _, err := cur.MoveTo(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.MoveTo(0, 0); err == nil {
		t.Fatal("backwards MoveTo accepted")
	}
}

func TestEncoderWidthOverflow(t *testing.T) {
	lay := numLayout(TypeI)
	lay.LTid = 3 // max tid 7
	enc, _ := NewEncoder(lay)
	var w bitio.Writer
	if err := enc.EncodeNumeric(&w, 8, 1, false); err != ErrWidthOverflow {
		t.Fatalf("err = %v, want ErrWidthOverflow", err)
	}
	tl := textLayout(t, TypeII)
	tl.LNum = 2 // max 3 strings
	tenc, _ := NewEncoder(tl)
	sigs := make([]signature.Sig, 4)
	for i := range sigs {
		sigs[i] = tl.Codec.Encode("x")
	}
	if err := tenc.EncodeText(&w, 1, sigs); err != ErrWidthOverflow {
		t.Fatalf("err = %v, want ErrWidthOverflow", err)
	}
}

func TestKindMismatch(t *testing.T) {
	enc, _ := NewEncoder(numLayout(TypeI))
	var w bitio.Writer
	if err := enc.EncodeText(&w, 0, nil); err == nil {
		t.Fatal("EncodeText on numeric layout accepted")
	}
	tenc, _ := NewEncoder(textLayout(t, TypeI))
	if err := tenc.EncodeNumeric(&w, 0, 0, false); err == nil {
		t.Fatal("EncodeNumeric on text layout accepted")
	}
}

func TestPaperFig6SizeOrdering(t *testing.T) {
	// Sanity: the chosen type's size is minimal by construction. Exercise
	// the formulas on the paper's Fig. 6 shape (5 tuples, mixed columns).
	// "Color": 4 single-string values in 5 tuples.
	if got := ChooseText(3, 2, 4, 4, 5, 4*8); got == 0 {
		t.Fatal("no type chosen")
	}
	// "Num": 2 defined of 5, 4-bit vectors: I = (3+4)*2 = 14 vs IV = 4*5 = 20.
	if got := ChooseNumeric(3, 4, 2, 5); got != TypeI {
		t.Fatalf("Num column: got %v, want I", got)
	}
}
