// Package vector implements the vector lists of §III-D: the per-attribute
// sequences of approximation vectors that make up the bulk of an iVA-file.
//
// Four bit-packed organizations are provided, chosen per attribute by the
// paper's size formulas:
//
//	Type I   <tid, vector>            text or numeric; ndf tuples absent
//	Type II  <tid, num, vector...>    text; ndf tuples absent
//	Type III <num, vector...>         text; one element per tuple-list entry
//	Type IV  <vector>                 numeric; one element per entry,
//	                                  a reserved code denotes ndf
//
// Types I/II are tid-addressed and sorted by tid; Types III/IV are
// positional — the i-th element belongs to the i-th tuple-list entry.
// Cursors implement the synchronized MoveTo scan of §IV-A, including the
// freeze behavior when a tid-addressed list has no element for the current
// tuple.
package vector

import (
	"fmt"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
)

// ListType identifies a vector-list organization.
type ListType uint8

// The four organizations of §III-D.
const (
	TypeI ListType = iota + 1
	TypeII
	TypeIII
	TypeIV
)

func (t ListType) String() string {
	switch t {
	case TypeI:
		return "I"
	case TypeII:
		return "II"
	case TypeIII:
		return "III"
	case TypeIV:
		return "IV"
	default:
		return fmt.Sprintf("ListType(%d)", uint8(t))
	}
}

// Layout carries the bit widths and codec needed to encode or decode one
// attribute's vector list.
type Layout struct {
	Type ListType
	Kind model.Kind

	LTid    int    // bits per tuple id (Types I, II)
	LNum    int    // bits per string count (Types II, III)
	VecBits int    // numeric code width (numeric attributes)
	NDFCode uint64 // reserved numeric code for ndf (Type IV)

	Codec *signature.Codec // text signature sizing (text attributes)
}

// Validate reports whether the layout is internally consistent.
func (l Layout) Validate() error {
	switch l.Type {
	case TypeI:
	case TypeII, TypeIII:
		if l.Kind != model.KindText {
			return fmt.Errorf("vector: type %v requires a text attribute", l.Type)
		}
	case TypeIV:
		if l.Kind != model.KindNumeric {
			return fmt.Errorf("vector: type IV requires a numeric attribute")
		}
	default:
		return fmt.Errorf("vector: invalid list type %d", l.Type)
	}
	if l.Kind == model.KindText && l.Codec == nil {
		return fmt.Errorf("vector: text layout without codec")
	}
	if l.Kind == model.KindNumeric && (l.VecBits < 1 || l.VecBits > 63) {
		return fmt.Errorf("vector: numeric layout with VecBits=%d", l.VecBits)
	}
	if (l.Type == TypeI || l.Type == TypeII) && (l.LTid < 1 || l.LTid > 32) {
		return fmt.Errorf("vector: LTid=%d", l.LTid)
	}
	if (l.Type == TypeII || l.Type == TypeIII) && (l.LNum < 1 || l.LNum > 16) {
		return fmt.Errorf("vector: LNum=%d", l.LNum)
	}
	return nil
}

// ChooseText picks the smallest of the three text organizations given the
// attribute's statistics (the paper's L_I/L_II/L_III formulas): ltid and
// lnum are the id/count widths, df the defining-tuple count, str the string
// count, tupleEntries the tuple-list length |T|, and vecBits the total
// signature bits L (including the cL bytes). Ties prefer the lower type.
func ChooseText(ltid, lnum int, df, str, tupleEntries, vecBits int64) ListType {
	li := int64(ltid)*str + vecBits
	lii := int64(ltid+lnum)*df + vecBits
	liii := int64(lnum)*tupleEntries + vecBits
	best, bt := li, TypeI
	if lii < best {
		best, bt = lii, TypeII
	}
	if liii < best {
		bt = TypeIII
	}
	return bt
}

// ChooseNumeric picks Type I or IV for a numeric attribute.
func ChooseNumeric(ltid, vecBits int, df, tupleEntries int64) ListType {
	li := int64(ltid+vecBits) * df
	liv := int64(vecBits) * tupleEntries
	if li <= liv {
		return TypeI
	}
	return TypeIV
}

// Entry is a decoded vector-list element for one tuple: either ndf, a set of
// string signatures (text), or a numeric code.
type Entry struct {
	NDF  bool
	Sigs []signature.Sig // text attributes
	Code uint64          // numeric attributes
}

// Encoder serializes elements of one list into a bit writer.
type Encoder struct {
	L Layout
}

// NewEncoder returns an encoder after validating the layout.
func NewEncoder(l Layout) (*Encoder, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &Encoder{L: l}, nil
}

// maxNum returns the largest string count representable in LNum bits.
func (e *Encoder) maxNum() int { return 1<<uint(e.L.LNum) - 1 }

// maxTid returns the largest tuple id representable in LTid bits.
func (e *Encoder) maxTid() model.TID { return model.TID(1<<uint(e.L.LTid) - 1) }

// ErrWidthOverflow is returned when a tid or string count no longer fits the
// list's bit widths; the caller must rebuild the index with wider fields.
var ErrWidthOverflow = fmt.Errorf("vector: field width overflow, rebuild required")

// EncodeText appends the element(s) for one tuple's text value. For Types I
// and II, an ndf tuple (sigs == nil) writes nothing; for Type III it writes
// a zero-count element. Multi-string values become consecutive Type I
// elements sharing the tid, exactly as in the paper's Fig. 6.
func (e *Encoder) EncodeText(w *bitio.Writer, tid model.TID, sigs []signature.Sig) error {
	if e.L.Kind != model.KindText {
		return fmt.Errorf("vector: EncodeText on %v layout", e.L.Kind)
	}
	switch e.L.Type {
	case TypeI:
		if tid > e.maxTid() && len(sigs) > 0 {
			return ErrWidthOverflow
		}
		for _, s := range sigs {
			w.WriteBits(uint64(tid), e.L.LTid)
			e.writeSig(w, s)
		}
	case TypeII:
		if len(sigs) == 0 {
			return nil
		}
		if tid > e.maxTid() {
			return ErrWidthOverflow
		}
		if len(sigs) > e.maxNum() {
			return ErrWidthOverflow
		}
		w.WriteBits(uint64(tid), e.L.LTid)
		w.WriteBits(uint64(len(sigs)), e.L.LNum)
		for _, s := range sigs {
			e.writeSig(w, s)
		}
	case TypeIII:
		if len(sigs) > e.maxNum() {
			return ErrWidthOverflow
		}
		w.WriteBits(uint64(len(sigs)), e.L.LNum)
		for _, s := range sigs {
			e.writeSig(w, s)
		}
	default:
		return fmt.Errorf("vector: text element on type %v list", e.L.Type)
	}
	return nil
}

// EncodeNumeric appends the element for one tuple's numeric value. For Type
// I an ndf tuple writes nothing; for Type IV it writes the reserved code.
func (e *Encoder) EncodeNumeric(w *bitio.Writer, tid model.TID, code uint64, ndf bool) error {
	if e.L.Kind != model.KindNumeric {
		return fmt.Errorf("vector: EncodeNumeric on %v layout", e.L.Kind)
	}
	switch e.L.Type {
	case TypeI:
		if ndf {
			return nil
		}
		if tid > e.maxTid() {
			return ErrWidthOverflow
		}
		w.WriteBits(uint64(tid), e.L.LTid)
		w.WriteBits(code, e.L.VecBits)
	case TypeIV:
		if ndf {
			code = e.L.NDFCode
		}
		w.WriteBits(code, e.L.VecBits)
	default:
		return fmt.Errorf("vector: numeric element on type %v list", e.L.Type)
	}
	return nil
}

func (e *Encoder) writeSig(w *bitio.Writer, s signature.Sig) {
	w.WriteBits(uint64(s.Len), signature.LenBits)
	w.WriteWords(s.H, e.L.Codec.SigBits(s.Len))
}

// BitSource abstracts the bit stream a cursor scans: either an in-memory
// bitio.Reader (via MemSource) or a storage.ChainBitReader.
type BitSource interface {
	ReadBits(width int) (uint64, error)
	ReadWords(dst []uint64, width int) error
	SkipBits(n int64) error
	SeekBit(off int64) error
	Pos() int64
	Remaining() int64
}

// MemSource adapts a bitio.Reader to BitSource for tests and in-memory use.
type MemSource struct {
	R *bitio.Reader
}

// ReadBits implements BitSource.
func (m MemSource) ReadBits(width int) (uint64, error) { return m.R.ReadBits(width) }

// ReadWords implements BitSource.
func (m MemSource) ReadWords(dst []uint64, width int) error { return m.R.ReadWords(dst, width) }

// SkipBits implements BitSource.
func (m MemSource) SkipBits(n int64) error { return m.R.Skip(int(n)) }

// SeekBit implements BitSource.
func (m MemSource) SeekBit(off int64) error { return m.R.Seek(int(off)) }

// Pos implements BitSource.
func (m MemSource) Pos() int64 { return int64(m.R.Pos()) }

// Remaining implements BitSource.
func (m MemSource) Remaining() int64 { return int64(m.R.Remaining()) }
