package vector

import (
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
)

// fuzzLayout derives a valid Layout from four fuzz bytes, honoring the
// kind/type constraints Validate enforces (II/III are text-only, IV is
// numeric-only).
func fuzzLayout(t *testing.T, sel [4]byte) Layout {
	lay := Layout{Type: ListType(sel[0]%4 + 1)}
	switch lay.Type {
	case TypeII, TypeIII:
		lay.Kind = model.KindText
	case TypeIV:
		lay.Kind = model.KindNumeric
	default:
		if sel[0]&4 != 0 {
			lay.Kind = model.KindText
		} else {
			lay.Kind = model.KindNumeric
		}
	}
	lay.LTid = 8 + int(sel[1])%25  // 8..32: every tid below 256 fits
	lay.LNum = 2 + int(sel[2])%15  // 2..16: counts up to 3 fit
	lay.VecBits = 1 + int(sel[3])%63
	if lay.Kind == model.KindText {
		codec, err := signature.NewCodec(1+int(sel[3])%4, float64(1+sel[1]%8)/8)
		if err != nil {
			t.Fatal(err)
		}
		lay.Codec = codec
	}
	if lay.Type == TypeIV {
		lay.NDFCode = 1<<uint(lay.VecBits) - 1
	}
	if err := lay.Validate(); err != nil {
		t.Fatalf("derived layout invalid: %v", err)
	}
	return lay
}

// FuzzVectorList encodes a fuzzer-chosen element sequence under a
// fuzzer-chosen (but legal) layout, decodes it back with a Cursor and
// demands exact agreement; then it points a cursor of the same layout at the
// raw fuzz bytes and walks it until error to prove hostile bit streams are
// rejected without panics.
func FuzzVectorList(f *testing.F) {
	f.Add([]byte{0, 10, 3, 20, 0xff, 0x0f, 0xf0, 7, 1, 2, 3})
	f.Add([]byte{1, 0, 0, 0, 0x55, 0xaa, 0x55, 0xaa})
	f.Add([]byte{2, 31, 15, 62, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{3, 1, 1, 1, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 || len(data) > 1<<12 {
			return
		}
		lay := fuzzLayout(t, [4]byte{data[0], data[1], data[2], data[3]})
		body := data[4:]

		// Encode one element per tuple-list position; body bytes decide
		// ndf/defined and the payload.
		type elem struct {
			ndf  bool
			code uint64
			strs []string
		}
		enc, err := NewEncoder(lay)
		if err != nil {
			t.Fatal(err)
		}
		n := len(body)
		if n > 40 {
			n = 40
		}
		var w bitio.Writer
		elems := make([]elem, n)
		for i := 0; i < n; i++ {
			b := body[i]
			e := &elems[i]
			e.ndf = b%5 == 0
			tid := model.TID(i)
			if lay.Kind == model.KindNumeric {
				// Keep defined codes clear of the Type IV ndf code.
				e.code = uint64(b)
				if max := uint64(1)<<uint(lay.VecBits) - 1; e.code >= max {
					e.code = max - 1
				}
				if e.code == lay.NDFCode {
					e.code = 0
				}
				if err := enc.EncodeNumeric(&w, tid, e.code, e.ndf); err != nil {
					t.Fatalf("elem %d: %v", i, err)
				}
				continue
			}
			var sigs []signature.Sig
			if !e.ndf {
				ns := int(b)%3 + 1
				if lay.Type != TypeI && ns >= 1<<uint(lay.LNum) {
					ns = 1
				}
				for j := 0; j < ns; j++ {
					s := fmt.Sprintf("s%d-%d-%c", i, j, 'a'+b%26)
					e.strs = append(e.strs, s)
					sigs = append(sigs, lay.Codec.Encode(s))
				}
			}
			if err := enc.EncodeText(&w, tid, sigs); err != nil {
				t.Fatalf("elem %d: %v", i, err)
			}
		}

		cur, err := NewCursor(lay, MemSource{R: bitio.NewReader(w.Bytes(), w.Len())})
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range elems {
			got, err := cur.MoveTo(model.TID(i), int64(i))
			if err != nil {
				t.Fatalf("MoveTo(%d): %v", i, err)
			}
			if got.NDF != e.ndf {
				t.Fatalf("pos %d: NDF = %v, want %v", i, got.NDF, e.ndf)
			}
			if e.ndf {
				continue
			}
			if lay.Kind == model.KindNumeric {
				if got.Code != e.code {
					t.Fatalf("pos %d: code %d, want %d", i, got.Code, e.code)
				}
				continue
			}
			if len(got.Sigs) != len(e.strs) {
				t.Fatalf("pos %d: %d sigs, want %d", i, len(got.Sigs), len(e.strs))
			}
			for j, s := range e.strs {
				want := lay.Codec.Encode(s)
				if got.Sigs[j].Len != want.Len {
					t.Fatalf("pos %d sig %d: Len %d, want %d", i, j, got.Sigs[j].Len, want.Len)
				}
				for k := range want.H {
					if got.Sigs[j].H[k] != want.H[k] {
						t.Fatalf("pos %d sig %d word %d: %#x, want %#x", i, j, k, got.Sigs[j].H[k], want.H[k])
					}
				}
			}
		}

		// Hostile stream: the raw fuzz bytes under the same layout. Every
		// MoveTo must return cleanly (an element, an NDF, or an error) —
		// never panic, never loop past the buffer.
		hc, err := NewCursor(lay, MemSource{R: bitio.NewReader(body, -1)})
		if err != nil {
			t.Fatal(err)
		}
		hc.EnableScratch()
		for i := 0; i < 2*len(body)+8; i++ {
			if _, err := hc.MoveTo(model.TID(i), int64(i)); err != nil {
				break
			}
		}
	})
}
