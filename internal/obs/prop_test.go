package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestHistogramConcurrentProperties hammers one histogram from many
// goroutines (run under -race in CI) and then checks the invariants the
// exposition format relies on: cumulative bucket counts are monotonically
// non-decreasing, the +Inf bucket equals Count, Count equals the number of
// observations made, and Sum matches the known total.
func TestHistogramConcurrentProperties(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("prop_hist", "property test", nil, []float64{0.25, 0.5, 1, 2, 4})

	const workers = 8
	const perWorker = 5000
	sums := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				v := rng.Float64() * 5
				sums[w] += v
				if i%16 == 0 {
					h.ObserveTrace(v, FormatID(uint64(w*perWorker+i)))
				} else {
					h.Observe(v)
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Fatalf("count %d, want %d observations", got, want)
	}
	bounds, cum := h.Buckets()
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not monotone at le=%g: %d < %d", bounds[i], cum[i], cum[i-1])
		}
	}
	if len(cum) > 0 && cum[len(cum)-1] > h.Count() {
		t.Fatalf("largest finite bucket (%d) exceeds +Inf cumulative count (%d)",
			cum[len(cum)-1], h.Count())
	}
	var want float64
	for _, s := range sums {
		want += s
	}
	if got := h.Sum(); got < want*0.999999 || got > want*1.000001 {
		t.Fatalf("sum %g, want %g", got, want)
	}
	// Each exemplar that exists must carry a well-formed trace id.
	for i, e := range h.Exemplars() {
		if e != nil && len(e.TraceID) != 16 {
			t.Fatalf("bucket %d exemplar trace id %q", i, e.TraceID)
		}
	}
}

// TestRegistryGetOrCreateConcurrent asserts the get-or-create contract under
// contention: every goroutine must receive the same counter handle, so the
// final value is exactly the number of Incs.
func TestRegistryGetOrCreateConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("prop_ctr", "property test", Labels{"shard": "0"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("prop_ctr", "property test", Labels{"shard": "0"}).Value(); got != workers*perWorker {
		t.Fatalf("counter %d, want %d — get-or-create handed out distinct handles", got, workers*perWorker)
	}
}

// TestDuplicateKindPanics pins the registry's misuse guard: registering an
// existing family under a different metric kind is a programming error and
// must panic rather than silently corrupt the exposition.
func TestDuplicateKindPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_metric", "first registration", nil)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, "dup_metric") {
			t.Fatalf("panic message %v does not name the metric", rec)
		}
	}()
	r.Gauge("dup_metric", "conflicting registration", nil)
}

// TestLabelEscaping pins the exposition-format escaping rules for label
// values: backslash, double quote, and newline must come out escaped so one
// hostile value cannot corrupt the whole scrape.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "escape test", Labels{"path": `C:\tmp`}).Inc()
	r.Counter("esc_total", "escape test", Labels{"path": `say "hi"`}).Inc()
	r.Counter("esc_total", "escape test", Labels{"path": "line1\nline2"}).Inc()
	r.Gauge("esc_gauge", "help with\nnewline and \\ backslash", nil).Set(1)

	text := r.Text()
	for _, want := range []string{
		`esc_total{path="C:\\tmp"} 1`,
		`esc_total{path="say \"hi\""} 1`,
		`esc_total{path="line1\nline2"} 1`,
		`# HELP esc_gauge help with\nnewline and \\ backslash`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// No raw newline may survive inside a sample line: every line is either
	// a comment, blank, or "name{labels} value".
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") == 0 {
			t.Errorf("sample line %q has no value separator — escaping leaked a newline", line)
		}
	}
}
