package obs

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// maxQueryDesc bounds the rendered query description retained per entry: an
// adversarial or machine-generated query with megabytes of term text must not
// make the ring log (and every /debug/querylog response) balloon. Truncation
// is marked with a trailing ellipsis.
const maxQueryDesc = 1024

// PhaseBreakdown summarizes one logged query's per-phase cost — the same
// decomposition the phase histograms track, denormalized into the entry so a
// log line answers "where did the time go" without walking the trace.
type PhaseBreakdown struct {
	FilterMS float64
	RefineMS float64
	MergeMS  float64
	Scanned  int64
	Fetched  int64
	Workers  int
	Degraded int // corrupt segments the query degraded past
}

// LogEntry is one captured slow query.
type LogEntry struct {
	Time     time.Time
	Query    string // rendered query description
	Duration time.Duration
	Trace    *Span  // full trace of the offending query
	TraceID  string // the trace's id, the join key into /debug/trace
	Phases   *PhaseBreakdown
}

// QueryLog retains the most recent queries whose duration met a threshold,
// each with its full trace. All methods are safe on a nil receiver (a nil
// log is a disabled log), so callers need no conditionals.
type QueryLog struct {
	threshold time.Duration
	cap       int

	mu      sync.Mutex
	entries []LogEntry // oldest first
	total   int64
}

// NewQueryLog returns a log capturing queries at or above threshold,
// retaining at most capEntries (default 64 when <= 0). A non-positive
// threshold returns nil: the disabled log.
func NewQueryLog(threshold time.Duration, capEntries int) *QueryLog {
	if threshold <= 0 {
		return nil
	}
	if capEntries <= 0 {
		capEntries = 64
	}
	return &QueryLog{threshold: threshold, cap: capEntries}
}

// Threshold returns the capture threshold (0 when disabled).
func (l *QueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records the query if its duration meets the threshold, reporting
// whether it was captured.
func (l *QueryLog) Observe(query string, dur time.Duration, tr *Span) bool {
	return l.ObserveEntry(LogEntry{Query: query, Duration: dur, Trace: tr})
}

// ObserveEntry records a fully described entry if its Duration meets the
// threshold, reporting whether it was captured. A zero Time is stamped now;
// an empty TraceID is taken from the trace; an over-long Query is truncated.
func (l *QueryLog) ObserveEntry(e LogEntry) bool {
	if l == nil || e.Duration < l.threshold {
		return false
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if e.TraceID == "" {
		e.TraceID = e.Trace.TraceID()
	}
	if len(e.Query) > maxQueryDesc {
		e.Query = e.Query[:maxQueryDesc] + "…"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) >= l.cap {
		copy(l.entries, l.entries[1:])
		l.entries = l.entries[:len(l.entries)-1]
	}
	l.entries = append(l.entries, e)
	return true
}

// Total returns how many queries ever met the threshold (captured or
// already evicted).
func (l *QueryLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained entries, newest first.
func (l *QueryLog) Entries() []LogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, len(l.entries))
	for i, e := range l.entries {
		out[len(out)-1-i] = e
	}
	return out
}

// WriteJSON serializes the retained entries, newest first, as a JSON array
// of {"time","query","duration_ms","trace_id","phases","trace"} objects
// (trace_id and phases appear when present). A disabled log writes an empty
// array.
func (l *QueryLog) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, e := range l.Entries() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"time":`)
		b.WriteString(strconv.Quote(e.Time.Format(time.RFC3339Nano)))
		b.WriteString(`,"query":`)
		b.WriteString(strconv.Quote(e.Query))
		b.WriteString(`,"duration_ms":`)
		b.WriteString(strconv.FormatFloat(float64(e.Duration.Nanoseconds())/1e6, 'g', -1, 64))
		if e.TraceID != "" {
			b.WriteString(`,"trace_id":`)
			b.WriteString(strconv.Quote(e.TraceID))
		}
		if p := e.Phases; p != nil {
			fmt.Fprintf(&b, `,"phases":{"filter_ms":%s,"refine_ms":%s,"merge_ms":%s,"scanned":%d,"fetched":%d,"workers":%d,"degraded_segments":%d}`,
				jsonFloat(p.FilterMS), jsonFloat(p.RefineMS), jsonFloat(p.MergeMS),
				p.Scanned, p.Fetched, p.Workers, p.Degraded)
		}
		b.WriteString(`,"trace":`)
		e.Trace.appendJSON(&b)
		b.WriteByte('}')
	}
	b.WriteByte(']')
	b.WriteByte('\n')
	_, err := w.Write(b.Bytes())
	return err
}

// WriteText renders the retained entries, newest first, one line per query
// with its phase breakdown — the human-paged form of WriteJSON.
func (l *QueryLog) WriteText(w io.Writer) error {
	for _, e := range l.Entries() {
		var phases string
		if p := e.Phases; p != nil {
			phases = fmt.Sprintf(" filter=%.3fms refine=%.3fms merge=%.3fms scanned=%d fetched=%d workers=%d degraded=%d",
				p.FilterMS, p.RefineMS, p.MergeMS, p.Scanned, p.Fetched, p.Workers, p.Degraded)
		}
		if _, err := fmt.Fprintf(w, "%s %8.3fms trace=%s%s %s\n",
			e.Time.Format(time.RFC3339), float64(e.Duration.Nanoseconds())/1e6,
			e.TraceID, phases, e.Query); err != nil {
			return err
		}
	}
	return nil
}
