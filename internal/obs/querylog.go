package obs

import (
	"bytes"
	"io"
	"strconv"
	"sync"
	"time"
)

// LogEntry is one captured slow query.
type LogEntry struct {
	Time     time.Time
	Query    string // rendered query description
	Duration time.Duration
	Trace    *Span // full trace of the offending query
}

// QueryLog retains the most recent queries whose duration met a threshold,
// each with its full trace. All methods are safe on a nil receiver (a nil
// log is a disabled log), so callers need no conditionals.
type QueryLog struct {
	threshold time.Duration
	cap       int

	mu      sync.Mutex
	entries []LogEntry // oldest first
	total   int64
}

// NewQueryLog returns a log capturing queries at or above threshold,
// retaining at most capEntries (default 64 when <= 0). A non-positive
// threshold returns nil: the disabled log.
func NewQueryLog(threshold time.Duration, capEntries int) *QueryLog {
	if threshold <= 0 {
		return nil
	}
	if capEntries <= 0 {
		capEntries = 64
	}
	return &QueryLog{threshold: threshold, cap: capEntries}
}

// Threshold returns the capture threshold (0 when disabled).
func (l *QueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records the query if its duration meets the threshold, reporting
// whether it was captured.
func (l *QueryLog) Observe(query string, dur time.Duration, tr *Span) bool {
	if l == nil || dur < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.entries) >= l.cap {
		copy(l.entries, l.entries[1:])
		l.entries = l.entries[:len(l.entries)-1]
	}
	l.entries = append(l.entries, LogEntry{Time: time.Now(), Query: query, Duration: dur, Trace: tr})
	return true
}

// Total returns how many queries ever met the threshold (captured or
// already evicted).
func (l *QueryLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained entries, newest first.
func (l *QueryLog) Entries() []LogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, len(l.entries))
	for i, e := range l.entries {
		out[len(out)-1-i] = e
	}
	return out
}

// WriteJSON serializes the retained entries, newest first, as a JSON array
// of {"time","query","duration_ms","trace"} objects. A disabled log writes
// an empty array.
func (l *QueryLog) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, e := range l.Entries() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"time":`)
		b.WriteString(strconv.Quote(e.Time.Format(time.RFC3339Nano)))
		b.WriteString(`,"query":`)
		b.WriteString(strconv.Quote(e.Query))
		b.WriteString(`,"duration_ms":`)
		b.WriteString(strconv.FormatFloat(float64(e.Duration.Nanoseconds())/1e6, 'g', -1, 64))
		b.WriteString(`,"trace":`)
		e.Trace.appendJSON(&b)
		b.WriteByte('}')
	}
	b.WriteByte(']')
	b.WriteByte('\n')
	_, err := w.Write(b.Bytes())
	return err
}
