package obs

import (
	"bytes"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRing retains a sample of recently completed query traces so an
// operator can pull concrete span trees off a live store (/debug/trace)
// without logging every query. Two paths feed it: Offer samples one query in
// every `every` (an atomic counter, no lock on the common drop path), and
// Force records unconditionally — the slow-query path, so a trace referenced
// by the slow-query log or a histogram exemplar is usually still resident.
//
// All methods are safe on a nil receiver (a nil ring is a disabled ring).
type TraceRing struct {
	every int64
	n     atomic.Int64 // queries offered, for the 1-in-every decision

	mu      sync.Mutex
	entries []TraceEntry // ring storage
	next    int          // next overwrite position
	total   int64        // traces ever recorded
}

// TraceEntry is one retained trace.
type TraceEntry struct {
	Time  time.Time
	Trace *Span
}

// NewTraceRing returns a ring keeping the most recent capEntries sampled
// traces, recording one query in every `every` (plus everything Forced).
// capEntries <= 0 defaults to 64; every <= 0 defaults to 16. A negative
// capacity returns nil: the disabled ring.
func NewTraceRing(capEntries, every int) *TraceRing {
	if capEntries < 0 {
		return nil
	}
	if capEntries == 0 {
		capEntries = 64
	}
	if every <= 0 {
		every = 16
	}
	return &TraceRing{every: int64(every), entries: make([]TraceEntry, 0, capEntries)}
}

// Offer records the trace if it falls on the sampling grid, reporting whether
// it was kept.
func (r *TraceRing) Offer(tr *Span) bool {
	if r == nil || tr == nil {
		return false
	}
	if (r.n.Add(1)-1)%r.every != 0 {
		return false
	}
	r.Force(tr)
	return true
}

// Force records the trace unconditionally (slow queries).
func (r *TraceRing) Force(tr *Span) {
	if r == nil || tr == nil {
		return
	}
	e := TraceEntry{Time: time.Now(), Trace: tr}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
		return
	}
	r.entries[r.next] = e
	r.next = (r.next + 1) % len(r.entries)
}

// Total returns how many traces were ever recorded (kept or since evicted).
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Entries returns the retained traces, newest first.
func (r *TraceRing) Entries() []TraceEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEntry, len(r.entries))
	// entries[next-1] is newest once the ring has wrapped; before that the
	// newest is the last appended element.
	for i := range out {
		j := (r.next - 1 - i + 2*len(r.entries)) % len(r.entries)
		out[i] = r.entries[j]
	}
	return out
}

// Find returns the retained trace with the given 16-hex-digit trace id, or
// nil — the lookup behind /debug/trace?id=.
func (r *TraceRing) Find(traceID string) *Span {
	for _, e := range r.Entries() {
		if e.Trace.TraceID() == traceID {
			return e.Trace
		}
	}
	return nil
}

// WriteJSON serializes the retained traces, newest first, as a JSON array of
// {"time","trace"} objects. A disabled (nil) ring writes an empty array.
func (r *TraceRing) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	r.appendEntriesJSON(&b)
	b.WriteByte('\n')
	_, err := w.Write(b.Bytes())
	return err
}

// appendEntriesJSON writes the retained traces, newest first, as a JSON
// array of {"time","trace"} objects.
func (r *TraceRing) appendEntriesJSON(b *bytes.Buffer) {
	b.WriteByte('[')
	for i, e := range r.Entries() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"time":`)
		b.WriteString(strconv.Quote(e.Time.Format(time.RFC3339Nano)))
		b.WriteString(`,"trace":`)
		e.Trace.appendJSON(b)
		b.WriteByte('}')
	}
	b.WriteByte(']')
}
