package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestQueryLogThreshold(t *testing.T) {
	l := NewQueryLog(10*time.Millisecond, 4)
	if l.Observe("fast", 5*time.Millisecond, nil) {
		t.Fatal("captured a query under the threshold")
	}
	tr := StartSpan("query")
	tr.End()
	if !l.Observe("slow", 10*time.Millisecond, tr) {
		t.Fatal("dropped a query at the threshold")
	}
	if l.Total() != 1 || len(l.Entries()) != 1 {
		t.Fatalf("total=%d entries=%d", l.Total(), len(l.Entries()))
	}
	if e := l.Entries()[0]; e.Query != "slow" || e.Trace != tr {
		t.Fatalf("entry = %+v", e)
	}
}

func TestQueryLogEviction(t *testing.T) {
	l := NewQueryLog(time.Nanosecond, 3)
	for i := 0; i < 5; i++ {
		l.Observe(fmt.Sprintf("q%d", i), time.Second, nil)
	}
	es := l.Entries()
	if len(es) != 3 || l.Total() != 5 {
		t.Fatalf("entries=%d total=%d", len(es), l.Total())
	}
	// Newest first; the two oldest were evicted.
	if es[0].Query != "q4" || es[2].Query != "q2" {
		t.Fatalf("ring order wrong: %v %v", es[0].Query, es[2].Query)
	}
}

func TestQueryLogDisabled(t *testing.T) {
	l := NewQueryLog(0, 8)
	if l != nil {
		t.Fatal("zero threshold should return the nil (disabled) log")
	}
	if l.Observe("q", time.Hour, nil) || l.Total() != 0 || l.Entries() != nil {
		t.Fatal("disabled log not inert")
	}
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("disabled log JSON = %q", b.String())
	}
}

func TestQueryLogJSON(t *testing.T) {
	l := NewQueryLog(time.Nanosecond, 8)
	tr := StartSpan("query")
	tr.Child("filter").EndAt(2 * time.Millisecond)
	tr.End()
	l.Observe("brand=\"canon\" k=5", 3*time.Millisecond, tr)

	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Time       time.Time       `json:"time"`
		Query      string          `json:"query"`
		DurationMS float64         `json:"duration_ms"`
		Trace      json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(b.String()), &entries); err != nil {
		t.Fatalf("invalid JSON %q: %v", b.String(), err)
	}
	if len(entries) != 1 || entries[0].Query != "brand=\"canon\" k=5" || entries[0].DurationMS != 3 {
		t.Fatalf("entries = %+v", entries)
	}
	if !strings.Contains(string(entries[0].Trace), `"filter"`) {
		t.Fatalf("trace lost: %s", entries[0].Trace)
	}
}
