package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace and span ids are 64-bit values unique within the process: a splitmix64
// walk seeded from the clock at startup, so ids differ across restarts but
// cost one atomic add to mint. Rendered as 16 hex digits everywhere (metrics
// exemplars, the slow-query log, /debug/trace), they are the join key between
// a latency histogram bucket and the concrete trace that landed in it.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

func newID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // 0 is reserved for "no id" (the nil span)
	}
	return x
}

// FormatID renders a trace or span id the way every endpoint does.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// Span is one node of a per-query trace: a named, timed piece of work with
// typed annotations and child spans. All methods are safe on a nil receiver,
// so tracing is disabled by passing a nil span down the stack — instrumented
// code needs no conditionals.
//
// Spans whose duration cannot be measured start-to-end (phases interleaved
// in one loop, like the paper's synchronized filter/refine pass) are closed
// with EndAt and an externally accumulated duration; pure annotation
// carriers (per-term statistics) are closed with EndAt(0).
type Span struct {
	name    string
	start   time.Time
	dur     time.Duration
	traceID uint64 // shared by every span of one query's tree
	spanID  uint64 // unique per span

	mu       sync.Mutex
	attrs    []spanAttr
	children []*Span
}

type spanAttr struct {
	key string
	str string
	i   int64
	f   float64
	typ uint8 // 0 string, 1 int, 2 float
}

// StartSpan begins a root span with a fresh trace id.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now(), traceID: newID(), spanID: newID()}
}

// Child begins a nested span under the parent's trace id.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), traceID: s.traceID, spanID: newID()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Adopt attaches an independently started span as a child (used when a
// fan-out creates the child on another goroutine), folding the adopted
// subtree into the parent's trace id so the whole tree shares one.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	c.retrace(s.traceID)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// retrace rewrites the trace id across a subtree (adoption).
func (s *Span) retrace(traceID uint64) {
	s.traceID = traceID
	for _, c := range s.Children() {
		c.retrace(traceID)
	}
}

// TraceID returns the span's trace id as 16 hex digits ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return FormatID(s.traceID)
}

// SpanID returns the span's own id as 16 hex digits ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return FormatID(s.spanID)
}

// End closes the span, fixing its duration to now−start.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
}

// EndAt closes the span with an explicit duration.
func (s *Span) EndAt(d time.Duration) {
	if s == nil {
		return
	}
	s.dur = d
}

// SetStr annotates the span with a string value.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, str: v, typ: 0})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, i: v, typ: 1})
	s.mu.Unlock()
}

// SetFloat annotates the span with a float value.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, f: v, typ: 2})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's closed duration (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attr returns the annotation value for key rendered as a string, and
// whether it is present.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.key == key {
			return a.render(), true
		}
	}
	return "", false
}

// Find returns the first descendant span (depth-first, self included) with
// the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

func (a spanAttr) render() string {
	switch a.typ {
	case 1:
		return strconv.FormatInt(a.i, 10)
	case 2:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	default:
		return a.str
	}
}

// WriteText renders the span tree as an indented listing.
func (s *Span) WriteText(w io.Writer) error {
	return s.writeText(w, 0)
}

func (s *Span) writeText(w io.Writer, depth int) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	attrs := append([]spanAttr(nil), s.attrs...)
	s.mu.Unlock()
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&b, "%s %.3fms", s.name, float64(s.dur.Nanoseconds())/1e6)
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%s", a.key, a.render())
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := c.writeText(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders the span tree as
// {"name":..., "trace_id":..., "span_id":..., "duration_ms":...,
// "attrs":{...}, "children":[...]}. The trace id appears on the root span
// only; every span carries its own span id.
func (s *Span) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	s.appendJSON(&b)
	return b.Bytes(), nil
}

func (s *Span) appendJSON(b *bytes.Buffer) { s.appendJSONDepth(b, true) }

func (s *Span) appendJSONDepth(b *bytes.Buffer, root bool) {
	if s == nil {
		b.WriteString("null")
		return
	}
	s.mu.Lock()
	attrs := append([]spanAttr(nil), s.attrs...)
	s.mu.Unlock()
	b.WriteString(`{"name":`)
	b.WriteString(quoteJSON(s.name))
	if root && s.traceID != 0 {
		fmt.Fprintf(b, `,"trace_id":"%016x"`, s.traceID)
	}
	if s.spanID != 0 {
		fmt.Fprintf(b, `,"span_id":"%016x"`, s.spanID)
	}
	fmt.Fprintf(b, `,"duration_ms":%s`,
		strconv.FormatFloat(float64(s.dur.Nanoseconds())/1e6, 'g', -1, 64))
	if len(attrs) > 0 {
		// Stable key order keeps the output diffable.
		sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].key < attrs[j].key })
		b.WriteString(`,"attrs":{`)
		for i, a := range attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quoteJSON(a.key))
			b.WriteByte(':')
			switch a.typ {
			case 1:
				b.WriteString(strconv.FormatInt(a.i, 10))
			case 2:
				b.WriteString(jsonFloat(a.f))
			default:
				b.WriteString(quoteJSON(a.str))
			}
		}
		b.WriteByte('}')
	}
	if cs := s.Children(); len(cs) > 0 {
		b.WriteString(`,"children":[`)
		for i, c := range cs {
			if i > 0 {
				b.WriteByte(',')
			}
			c.appendJSONDepth(b, false)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
}

func jsonFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// JSON has no Inf/NaN literals.
	if strings.ContainsAny(s, "IN") {
		return "null"
	}
	return s
}

func quoteJSON(s string) string { return strconv.Quote(s) }
