package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Span is one node of a per-query trace: a named, timed piece of work with
// typed annotations and child spans. All methods are safe on a nil receiver,
// so tracing is disabled by passing a nil span down the stack — instrumented
// code needs no conditionals.
//
// Spans whose duration cannot be measured start-to-end (phases interleaved
// in one loop, like the paper's synchronized filter/refine pass) are closed
// with EndAt and an externally accumulated duration; pure annotation
// carriers (per-term statistics) are closed with EndAt(0).
type Span struct {
	name  string
	start time.Time
	dur   time.Duration

	mu       sync.Mutex
	attrs    []spanAttr
	children []*Span
}

type spanAttr struct {
	key string
	str string
	i   int64
	f   float64
	typ uint8 // 0 string, 1 int, 2 float
}

// StartSpan begins a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child begins a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Adopt attaches an independently started span as a child (used when a
// fan-out creates the child on another goroutine).
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span, fixing its duration to now−start.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.dur = time.Since(s.start)
}

// EndAt closes the span with an explicit duration.
func (s *Span) EndAt(d time.Duration) {
	if s == nil {
		return
	}
	s.dur = d
}

// SetStr annotates the span with a string value.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, str: v, typ: 0})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, i: v, typ: 1})
	s.mu.Unlock()
}

// SetFloat annotates the span with a float value.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, f: v, typ: 2})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's closed duration (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Children returns a copy of the child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attr returns the annotation value for key rendered as a string, and
// whether it is present.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.key == key {
			return a.render(), true
		}
	}
	return "", false
}

// Find returns the first descendant span (depth-first, self included) with
// the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

func (a spanAttr) render() string {
	switch a.typ {
	case 1:
		return strconv.FormatInt(a.i, 10)
	case 2:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	default:
		return a.str
	}
}

// WriteText renders the span tree as an indented listing.
func (s *Span) WriteText(w io.Writer) error {
	return s.writeText(w, 0)
}

func (s *Span) writeText(w io.Writer, depth int) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	attrs := append([]spanAttr(nil), s.attrs...)
	s.mu.Unlock()
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&b, "%s %.3fms", s.name, float64(s.dur.Nanoseconds())/1e6)
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%s", a.key, a.render())
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := c.writeText(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders the span tree as
// {"name":..., "duration_ms":..., "attrs":{...}, "children":[...]}.
func (s *Span) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	s.appendJSON(&b)
	return b.Bytes(), nil
}

func (s *Span) appendJSON(b *bytes.Buffer) {
	if s == nil {
		b.WriteString("null")
		return
	}
	s.mu.Lock()
	attrs := append([]spanAttr(nil), s.attrs...)
	s.mu.Unlock()
	fmt.Fprintf(b, `{"name":%s,"duration_ms":%s`,
		quoteJSON(s.name), strconv.FormatFloat(float64(s.dur.Nanoseconds())/1e6, 'g', -1, 64))
	if len(attrs) > 0 {
		// Stable key order keeps the output diffable.
		sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].key < attrs[j].key })
		b.WriteString(`,"attrs":{`)
		for i, a := range attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quoteJSON(a.key))
			b.WriteByte(':')
			switch a.typ {
			case 1:
				b.WriteString(strconv.FormatInt(a.i, 10))
			case 2:
				b.WriteString(jsonFloat(a.f))
			default:
				b.WriteString(quoteJSON(a.str))
			}
		}
		b.WriteByte('}')
	}
	if cs := s.Children(); len(cs) > 0 {
		b.WriteString(`,"children":[`)
		for i, c := range cs {
			if i > 0 {
				b.WriteByte(',')
			}
			c.appendJSON(b)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
}

func jsonFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// JSON has no Inf/NaN literals.
	if strings.ContainsAny(s, "IN") {
		return "null"
	}
	return s
}

func quoteJSON(s string) string { return strconv.Quote(s) }
