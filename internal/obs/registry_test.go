package obs

import (
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one counter, gauge and histogram from many
// goroutines; run with -race. Handles are looked up per-iteration too, so
// the get-or-create path is exercised concurrently with updates.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	labels := Labels{"shard": "0"}
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c_total", "c", labels).Inc()
				r.Gauge("g", "g", labels).Add(1)
				r.Histogram("h_seconds", "h", labels, nil).Observe(0.003)
				_ = r.Text()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "c", labels).Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g", "g", labels).Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	h := r.Histogram("h_seconds", "h", labels, nil)
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if math.Abs(h.Sum()-0.003*workers*iters) > 1e-6 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
}

// TestPrometheusGolden pins the exact text-format output.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("iva_queries_total", "Queries served.", nil).Add(3)
	r.Counter("iva_queries_total", "Queries served.", Labels{"shard": "1"}).Add(2)
	r.Gauge("iva_tuples_live", "Live tuples.", nil).Set(42.5)
	r.GaugeFunc("iva_cost_ms", "Modeled cost.", nil, func() float64 { return 8 })
	h := r.Histogram("iva_query_duration_seconds", "Latency.", Labels{"shard": "a\"b"}, []float64{0.01, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(99)

	want := `# HELP iva_cost_ms Modeled cost.
# TYPE iva_cost_ms gauge
iva_cost_ms 8
# HELP iva_queries_total Queries served.
# TYPE iva_queries_total counter
iva_queries_total 3
iva_queries_total{shard="1"} 2
# HELP iva_query_duration_seconds Latency.
# TYPE iva_query_duration_seconds histogram
iva_query_duration_seconds_bucket{shard="a\"b",le="0.01"} 1
iva_query_duration_seconds_bucket{shard="a\"b",le="1"} 2
iva_query_duration_seconds_bucket{shard="a\"b",le="+Inf"} 3
iva_query_duration_seconds_sum{shard="a\"b"} 99.505
iva_query_duration_seconds_count{shard="a\"b"} 3
# HELP iva_tuples_live Live tuples.
# TYPE iva_tuples_live gauge
iva_tuples_live 42.5
`
	if got := r.Text(); got != want {
		t.Fatalf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", nil, []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(3)
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || cum[0] != 1 || cum[1] != 2 {
		t.Fatalf("buckets = %v %v", bounds, cum)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestWith(t *testing.T) {
	base := Labels{"a": "1"}
	got := With(base, "b", "2")
	if len(base) != 1 {
		t.Fatal("With mutated base")
	}
	if got["a"] != "1" || got["b"] != "2" {
		t.Fatalf("got %v", got)
	}
}
