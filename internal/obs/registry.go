// Package obs is the repository's unified observability layer: a
// dependency-free metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms with Prometheus text-format exposition), a per-query
// trace-span API, and a slow-query log.
//
// The paper's whole evaluation (Figs. 8–16) decomposes query cost into
// sequential index scanning vs. random table accesses; this package makes
// that decomposition continuously observable on a live store instead of only
// inside the bench harness.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach dimensions to a metric series (e.g. shard="3"). A nil map is
// the empty label set.
type Labels map[string]string

// With returns a copy of base with k=v added (base is not modified).
func With(base Labels, k, v string) Labels {
	out := make(Labels, len(base)+1)
	for bk, bv := range base {
		out[bk] = bv
	}
	out[k] = v
	return out
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free; buckets are upper bounds in ascending order with an implicit
// +Inf bucket. Each bucket optionally retains one exemplar — the most recent
// (value, trace id) pair that landed in it — so a bad p99 bucket links to a
// concrete trace in the ring (/debug/trace?id=...).
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1, non-cumulative
	exemplars []atomic.Pointer[Exemplar]
	sum       Gauge
	count     atomic.Int64
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// DefaultLatencyBuckets spans 100µs to 10s, the range of interest between an
// all-cached scan and a badly I/O-bound query (values in seconds).
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveTrace records one value and stamps its bucket's exemplar with the
// producing query's trace id (a no-op on an empty id).
func (h *Histogram) ObserveTrace(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// Exemplars returns each bucket's retained exemplar (nil where none landed
// yet), indexed like the bounds with the +Inf bucket last.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the upper bounds and the cumulative counts per bucket
// (excluding +Inf, whose cumulative count is Count()).
func (h *Histogram) Buckets() ([]float64, []int64) {
	cum := make([]int64, len(h.bounds))
	var run int64
	for i := range h.bounds {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return h.bounds, cum
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type series struct {
	labels Labels
	key    string // canonical label rendering, the dedup key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string // insertion order of series keys, for stable output
}

// Registry holds metric families and renders them in Prometheus text format.
// All methods are safe for concurrent use; metric handles are get-or-create,
// so layers can look the same series up independently.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind.promType(), f.kind.promType()))
	}
	return f
}

func (f *family) get(labels Labels) (*series, bool) {
	key := labelKey(labels, "", "")
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, key: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s, ok
}

// Counter returns the counter series name{labels}, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, kindCounter).get(labels)
	if !ok {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge series name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, kindGauge).get(labels)
	if !ok {
		s.g = &Gauge{}
	}
	return s.g
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time (for counters maintained elsewhere, e.g. the buffer pool's I/O
// stats). Re-registering the same series replaces the function.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, kindCounterFunc).get(labels)
	s.fn = fn
}

// GaugeFunc registers a gauge evaluated at exposition time. Re-registering
// the same series replaces the function.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, kindGaugeFunc).get(labels)
	s.fn = fn
}

// Histogram returns the histogram series name{labels} with the given bucket
// upper bounds (nil selects DefaultLatencyBuckets), creating it on first
// use. Buckets are fixed at creation; later calls reuse the first buckets.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, kindHistogram).get(labels)
	if !ok {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.h = &Histogram{
			bounds:    bounds,
			counts:    make([]atomic.Int64, len(bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
		}
	}
	return s.h
}

// Families returns every registered metric family name, sorted.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// labelKey renders labels canonically: sorted keys, escaped values, with an
// optional extra pair appended last (used for histogram le labels).
func labelKey(labels Labels, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus serializes every metric in the Prometheus text exposition
// format, version 0.0.4. Families are sorted by name; series keep their
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind.promType()); err != nil {
			return err
		}
		r.mu.Lock()
		order := append([]string(nil), f.order...)
		srs := make([]*series, len(order))
		for i, k := range order {
			srs[i] = f.series[k]
		}
		r.mu.Unlock()
		for _, s := range srs {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.key, s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.key, formatFloat(s.g.Value()))
		return err
	case kindCounterFunc, kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.key, formatFloat(s.fn()))
		return err
	case kindHistogram:
		bounds, cum := s.h.Buckets()
		for i, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelKey(s.labels, "le", formatFloat(b)), cum[i]); err != nil {
				return err
			}
		}
		count := s.h.Count()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelKey(s.labels, "le", "+Inf"), count); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			f.name, s.key, formatFloat(s.h.Sum()), f.name, s.key, count)
		return err
	}
	return nil
}

// Text returns WritePrometheus output as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}
