package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	root := StartSpan("query")
	filter := root.Child("filter")
	term := filter.Child("term:price")
	term.SetInt("scanned", 100)
	term.SetStr("kind", "numeric")
	term.EndAt(0)
	filter.EndAt(3 * time.Millisecond)
	refine := root.Child("refine")
	refine.SetFloat("cost_ms", 1.5)
	refine.EndAt(time.Millisecond)
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	if root.Find("term:price") == nil {
		t.Fatal("Find did not reach the nested term span")
	}
	if v, ok := root.Find("term:price").Attr("scanned"); !ok || v != "100" {
		t.Fatalf("scanned attr = %q, %v", v, ok)
	}
	if filter.Duration() != 3*time.Millisecond {
		t.Fatalf("filter duration = %v", filter.Duration())
	}
	if root.Duration() <= 0 {
		t.Fatalf("root duration = %v", root.Duration())
	}

	blob, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name     string `json:"name"`
		Children []struct {
			Name     string         `json:"name"`
			Attrs    map[string]any `json:"attrs"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"children"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("invalid span JSON %s: %v", blob, err)
	}
	if decoded.Name != "query" || decoded.Children[0].Name != "filter" ||
		decoded.Children[0].Children[0].Name != "term:price" {
		t.Fatalf("unexpected tree: %s", blob)
	}
	if decoded.Children[1].Attrs["cost_ms"] != 1.5 {
		t.Fatalf("float attr lost: %s", blob)
	}

	var text strings.Builder
	if err := root.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "  filter") || !strings.Contains(text.String(), "    term:price") {
		t.Fatalf("text rendering lost nesting:\n%s", text.String())
	}
}

// TestSpanNilSafe verifies disabled tracing (nil spans) is inert end to end.
func TestSpanNilSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	c.SetInt("k", 1)
	c.End()
	s.Adopt(StartSpan("y"))
	if s.Find("y") != nil || s.Duration() != 0 || s.Name() != "" {
		t.Fatal("nil span not inert")
	}
	if _, ok := s.Attr("k"); ok {
		t.Fatal("nil span has attrs")
	}
}

// TestSpanConcurrentAdopt models the sharded fan-out: children attached from
// several goroutines (run under -race).
func TestSpanConcurrentAdopt(t *testing.T) {
	root := StartSpan("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := StartSpan("shard")
			c.SetInt("n", 1)
			c.End()
			root.Adopt(c)
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 8 {
		t.Fatalf("adopted %d children, want 8", got)
	}
}
