// Package dataset generates the synthetic Google-Base-like workload the
// experiments run on. The paper evaluates on a crawled Google Base subset
// whose published statistics are: 779,019 tuples, 1,147 attributes of which
// 1,081 are text, 16.3 defined attributes per tuple on average, and a mean
// string length of 16.8 bytes. Google Base was shut down in 2011 and the
// crawl was never released, so this generator synthesizes data matched to
// those statistics (DESIGN.md §5 documents the substitution):
//
//   - attribute popularity is Zipfian — a few near-universal attributes
//     (Type, Price, ...) and a long sparse tail,
//   - each tuple defines ~Poisson(16.3) attributes sampled by popularity,
//   - text values draw from per-attribute vocabularies of short multi-word
//     strings (mean ≈ 16.8 bytes); some values hold several strings,
//   - a small typo rate mutates strings, reflecting the community-input
//     noise that motivates edit-distance ranking,
//   - numeric attributes draw from per-attribute ranges of very different
//     magnitudes (prices, years, pixel counts).
//
// Generation is deterministic in (Config, tuple index), so query workloads
// can re-derive any stored value without keeping the dataset in memory.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/table"
)

// Config parameterizes the generator. Zero values select the paper's
// statistics (at a caller-chosen scale).
type Config struct {
	Tuples        int     // number of tuples to generate
	TextAttrs     int     // default 1081
	NumAttrs      int     // default 66
	MeanAttrs     float64 // mean defined attributes per tuple; default 16.3
	MeanStringLen int     // target mean string bytes; default 17 (≈16.8)
	MultiStrProb  float64 // probability a text value has >1 string; default 0.10
	MaxStrings    int     // max strings per text value; default 3
	TypoProb      float64 // per-string typo probability; default 0.02
	ZipfS         float64 // attribute popularity skew; default 1.07
	Seed          int64
}

func (c Config) withDefaults() Config {
	if c.TextAttrs == 0 {
		c.TextAttrs = 1081
	}
	if c.NumAttrs == 0 {
		c.NumAttrs = 66
	}
	if c.MeanAttrs == 0 {
		c.MeanAttrs = 16.3
	}
	if c.MeanStringLen == 0 {
		c.MeanStringLen = 17
	}
	if c.MultiStrProb == 0 {
		c.MultiStrProb = 0.10
	}
	if c.MaxStrings == 0 {
		c.MaxStrings = 3
	}
	if c.TypoProb == 0 {
		c.TypoProb = 0.02
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.07
	}
	return c
}

// Generator produces tuples and queries for one configuration.
type Generator struct {
	cfg   Config
	kinds []model.Kind // per attribute rank
	vocab []int        // vocabulary size per attribute
}

// New returns a generator for cfg.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	total := cfg.TextAttrs + cfg.NumAttrs
	g := &Generator{cfg: cfg, kinds: make([]model.Kind, total), vocab: make([]int, total)}
	// Spread numeric attributes across the popularity ranks so queries mix
	// kinds at every selectivity, like Price/Year in the real data.
	numEvery := total / cfg.NumAttrs
	if numEvery < 2 {
		numEvery = 2
	}
	numLeft := cfg.NumAttrs
	for rank := 0; rank < total; rank++ {
		if numLeft > 0 && rank%numEvery == 1 {
			g.kinds[rank] = model.KindNumeric
			numLeft--
		} else {
			g.kinds[rank] = model.KindText
		}
	}
	// Leftover numeric attributes (rounding) take the last text slots.
	for rank := total - 1; numLeft > 0 && rank >= 0; rank-- {
		if g.kinds[rank] == model.KindText {
			g.kinds[rank] = model.KindNumeric
			numLeft--
		}
	}
	// Vocabulary sizes shrink with rank: popular attributes have rich
	// vocabularies, tail attributes only a handful of values.
	for rank := 0; rank < total; rank++ {
		v := 2048 / (1 + rank/8)
		if v < 12 {
			v = 12
		}
		g.vocab[rank] = v
	}
	return g
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// NumAttrsTotal returns the attribute universe size.
func (g *Generator) NumAttrsTotal() int { return len(g.kinds) }

// AttrName returns the canonical name of attribute rank r.
func (g *Generator) AttrName(r int) string {
	if g.kinds[r] == model.KindNumeric {
		return fmt.Sprintf("num_%04d", r)
	}
	return fmt.Sprintf("attr_%04d", r)
}

// AttrKind returns the kind of attribute rank r.
func (g *Generator) AttrKind(r int) model.Kind { return g.kinds[r] }

func (g *Generator) tupleRNG(i int) *rand.Rand {
	return rand.New(rand.NewSource(g.cfg.Seed*1_000_003 + int64(i)*7_919 + 13))
}

// poisson draws a Poisson(mean) variate (Knuth's method; mean ≈ 16 here).
func poisson(rng *rand.Rand, mean float64) int {
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// sampleAttrs draws n distinct attribute ranks by Zipf popularity.
func (g *Generator) sampleAttrs(rng *rand.Rand, n int) []int {
	total := len(g.kinds)
	if n > total {
		n = total
	}
	z := rand.NewZipf(rng, g.cfg.ZipfS, 1, uint64(total-1))
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		r := int(z.Uint64())
		if seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

// Values generates tuple i's defined (attribute rank → value) map.
func (g *Generator) Values(i int) map[int]model.Value {
	rng := g.tupleRNG(i)
	n := poisson(rng, g.cfg.MeanAttrs)
	if n < 1 {
		n = 1
	}
	out := make(map[int]model.Value, n)
	for _, rank := range g.sampleAttrs(rng, n) {
		if g.kinds[rank] == model.KindNumeric {
			out[rank] = model.Num(g.numValue(rng, rank))
		} else {
			k := 1
			if rng.Float64() < g.cfg.MultiStrProb {
				k = 2 + rng.Intn(g.cfg.MaxStrings-1)
			}
			strs := make([]string, k)
			for s := range strs {
				strs[s] = g.textValue(rng, rank)
			}
			out[rank] = model.Text(strs...)
		}
	}
	return out
}

// numValue draws from attribute rank's characteristic range: magnitudes
// vary per attribute like prices vs. years vs. pixel counts.
func (g *Generator) numValue(rng *rand.Rand, rank int) float64 {
	scale := math.Pow(10, float64(1+rank%6)) // 10 .. 1e6
	switch rank % 3 {
	case 0: // uniform range
		return math.Floor(rng.Float64() * scale)
	case 1: // year-like narrow band
		return 1950 + float64(rng.Intn(60))
	default: // log-normal-ish prices
		return math.Floor(math.Exp(rng.NormFloat64()*0.8) * scale / 10)
	}
}

// textValue draws a vocabulary string of attribute rank, with typo noise.
// Word popularity within an attribute is itself Zipfian: community data
// repeats common values ("Canon", "Digital Camera") across many tuples,
// which is what lets top-k distances tighten quickly.
func (g *Generator) textValue(rng *rand.Rand, rank int) string {
	z := rand.NewZipf(rng, 1.3, 1, uint64(g.vocab[rank]-1))
	word := g.VocabWord(rank, int(z.Uint64()))
	if rng.Float64() < g.cfg.TypoProb {
		word = typo(rng, word)
	}
	return word
}

// VocabWord deterministically synthesizes word w of attribute rank's
// vocabulary: one to three pronounceable words totalling ≈ MeanStringLen
// bytes.
func (g *Generator) VocabWord(rank, w int) string {
	rng := rand.New(rand.NewSource(g.cfg.Seed*69_069 + int64(rank)*104_729 + int64(w)))
	target := g.cfg.MeanStringLen + rng.Intn(9) - 4 // mean-centered spread
	if target < 3 {
		target = 3
	}
	var b []byte
	for len(b) < target {
		if len(b) > 0 {
			b = append(b, ' ')
		}
		wl := 4 + rng.Intn(5)
		if rem := target - len(b); wl > rem {
			wl = rem
		}
		b = appendWord(b, rng, wl)
	}
	return string(b)
}

const (
	consonants = "bcdfghjklmnpqrstvwxz"
	vowels     = "aeiouy"
	digits     = "0123456789"
)

// appendWord emits a pronounceable-but-diverse word: mostly
// consonant/vowel mixing without a rigid alternation (rigid CV patterns
// would make unrelated words share most of their 2-grams and destroy the
// n-gram filter's realism), with occasional digits as in real product
// names ("eos450d").
func appendWord(b []byte, rng *rand.Rand, n int) []byte {
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.08:
			b = append(b, digits[rng.Intn(len(digits))])
		case r < 0.52:
			b = append(b, vowels[rng.Intn(len(vowels))])
		default:
			b = append(b, consonants[rng.Intn(len(consonants))])
		}
	}
	return b
}

// typo applies one random edit (the community-noise model behind Fig. 2's
// "Cannon" example).
func typo(rng *rand.Rand, s string) string {
	b := []byte(s)
	if len(b) == 0 {
		return s
	}
	p := rng.Intn(len(b))
	switch rng.Intn(3) {
	case 0: // substitution
		b[p] = byte('a' + rng.Intn(26))
	case 1: // deletion
		if len(b) > 1 {
			b = append(b[:p], b[p+1:]...)
		}
	default: // duplication-style insertion
		b = append(b[:p], append([]byte{b[p]}, b[p:]...)...)
	}
	return string(b)
}

// Populate registers the attribute universe in tbl's catalog and appends all
// cfg.Tuples tuples. It returns the rank→AttrID mapping.
func (g *Generator) Populate(tbl *table.Table) ([]model.AttrID, error) {
	cat := tbl.Catalog()
	ids := make([]model.AttrID, len(g.kinds))
	for r := range g.kinds {
		id, err := cat.AddAttr(g.AttrName(r), g.kinds[r])
		if err != nil {
			return nil, err
		}
		ids[r] = id
	}
	for i := 0; i < g.cfg.Tuples; i++ {
		vals := g.Values(i)
		mapped := make(map[model.AttrID]model.Value, len(vals))
		for rank, v := range vals {
			mapped[ids[rank]] = v
		}
		if _, _, err := tbl.Append(mapped); err != nil {
			return nil, fmt.Errorf("dataset: tuple %d: %w", i, err)
		}
	}
	return ids, nil
}

// Query workload ---------------------------------------------------------

// QueryConfig parameterizes a query set (§V-A: 50 queries, the first 10 for
// cache warming; values sampled from stored tuples so the query distribution
// follows the data distribution).
type QueryConfig struct {
	Values int // defined values per query (Table I default 3)
	K      int // top-k (Table I default 10)
	Count  int // total queries (default 50)
	Warm   int // leading queries used for warming (default 10)
	// QueryTypoProb injects an edit into a sampled query string: users
	// mistype ("Cannon" for "Canon", the paper's Fig. 2), so the best
	// match is usually at a small positive edit distance rather than 0.
	// Negative disables; zero selects the default 0.25.
	QueryTypoProb float64
	Seed          int64
}

func (qc QueryConfig) withDefaults() QueryConfig {
	if qc.Values == 0 {
		qc.Values = 3
	}
	if qc.K == 0 {
		qc.K = 10
	}
	if qc.Count == 0 {
		qc.Count = 50
	}
	if qc.Warm == 0 && qc.Count >= 20 {
		qc.Warm = 10
	}
	if qc.QueryTypoProb == 0 {
		qc.QueryTypoProb = 0.25
	}
	if qc.QueryTypoProb < 0 {
		qc.QueryTypoProb = 0
	}
	return qc
}

func sortedRanks(vals map[int]model.Value) []int {
	ranks := make([]int, 0, len(vals))
	for r := range vals {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// Queries builds a query set against the generated data. ids maps attribute
// rank to catalog id (as returned by Populate).
func (g *Generator) Queries(qc QueryConfig, ids []model.AttrID) ([]*model.Query, int) {
	qc = qc.withDefaults()
	rng := rand.New(rand.NewSource(qc.Seed*2_654_435_761 + 17))
	queries := make([]*model.Query, 0, qc.Count)
	for len(queries) < qc.Count {
		ti := rng.Intn(g.cfg.Tuples)
		vals := g.Values(ti)
		if len(vals) == 0 {
			continue
		}
		ranks := sortedRanks(vals)
		// Queries may need more attributes than one tuple defines; borrow
		// from further tuples when short, like a user combining fields.
		for extra := 1; len(ranks) < qc.Values && extra < 50; extra++ {
			more := g.Values((ti + extra) % g.cfg.Tuples)
			for _, r := range sortedRanks(more) {
				if _, dup := vals[r]; !dup {
					vals[r] = more[r]
					ranks = append(ranks, r)
				}
				if len(ranks) >= qc.Values {
					break
				}
			}
		}
		if len(ranks) < qc.Values {
			continue
		}
		rng.Shuffle(len(ranks), func(i, j int) { ranks[i], ranks[j] = ranks[j], ranks[i] })
		q := &model.Query{K: qc.K}
		for _, r := range ranks[:qc.Values] {
			v := vals[r]
			if v.Kind == model.KindNumeric {
				q.NumTerm(ids[r], v.Num)
			} else {
				s := v.Strs[rng.Intn(len(v.Strs))]
				if rng.Float64() < qc.QueryTypoProb {
					s = typo(rng, s)
				}
				q.TextTerm(ids[r], s)
			}
		}
		queries = append(queries, q)
	}
	return queries, qc.Warm
}
