package dataset

import (
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

func TestDefaultsMatchPaperStatistics(t *testing.T) {
	g := New(Config{Tuples: 2000, Seed: 1})
	cfg := g.Config()
	if cfg.TextAttrs != 1081 || cfg.NumAttrs != 66 {
		t.Fatalf("attribute universe %d text + %d num, want 1081 + 66", cfg.TextAttrs, cfg.NumAttrs)
	}
	if g.NumAttrsTotal() != 1147 {
		t.Fatalf("total attrs = %d, want 1147", g.NumAttrsTotal())
	}
	// Kind census must match the config exactly.
	text, num := 0, 0
	for r := 0; r < g.NumAttrsTotal(); r++ {
		if g.AttrKind(r) == model.KindNumeric {
			num++
		} else {
			text++
		}
	}
	if text != 1081 || num != 66 {
		t.Fatalf("kinds: %d text, %d num", text, num)
	}

	// Mean defined attributes per tuple ≈ 16.3 (±15%).
	totalAttrs, totalStrs, totalStrBytes := 0, 0, 0
	for i := 0; i < 2000; i++ {
		vals := g.Values(i)
		totalAttrs += len(vals)
		for _, v := range vals {
			if v.Kind == model.KindText {
				for _, s := range v.Strs {
					totalStrs++
					totalStrBytes += len(s)
				}
			}
		}
	}
	meanAttrs := float64(totalAttrs) / 2000
	if meanAttrs < 13.5 || meanAttrs > 19 {
		t.Fatalf("mean attrs/tuple = %v, want ≈16.3", meanAttrs)
	}
	meanLen := float64(totalStrBytes) / float64(totalStrs)
	if meanLen < 13 || meanLen > 21 {
		t.Fatalf("mean string length = %v, want ≈16.8", meanLen)
	}
}

func TestDeterminism(t *testing.T) {
	g1 := New(Config{Tuples: 100, Seed: 7})
	g2 := New(Config{Tuples: 100, Seed: 7})
	for i := 0; i < 100; i++ {
		a, b := g1.Values(i), g2.Values(i)
		if len(a) != len(b) {
			t.Fatalf("tuple %d: sizes differ", i)
		}
		for r, v := range a {
			if !v.Equal(b[r]) {
				t.Fatalf("tuple %d attr %d: %v != %v", i, r, v, b[r])
			}
		}
	}
	// Different seeds must differ somewhere.
	g3 := New(Config{Tuples: 100, Seed: 8})
	same := true
	for i := 0; i < 10 && same; i++ {
		a, b := g1.Values(i), g3.Values(i)
		if len(a) != len(b) {
			same = false
			break
		}
		for r, v := range a {
			if o, ok := b[r]; !ok || !v.Equal(o) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestZipfPopularitySkew(t *testing.T) {
	g := New(Config{Tuples: 1500, Seed: 3})
	counts := make([]int, g.NumAttrsTotal())
	for i := 0; i < 1500; i++ {
		for r := range g.Values(i) {
			counts[r]++
		}
	}
	// Head attributes must be far more popular than the tail.
	head := counts[0] + counts[1] + counts[2]
	tail := 0
	for _, c := range counts[len(counts)/2:] {
		tail += c
	}
	if head < tail {
		t.Fatalf("no popularity skew: head-3 %d vs tail-half %d", head, tail)
	}
	if counts[0] < 500 {
		t.Fatalf("most popular attribute defined only %d/1500 times", counts[0])
	}
}

func TestValuesAreValid(t *testing.T) {
	g := New(Config{Tuples: 500, Seed: 5})
	for i := 0; i < 500; i++ {
		for r, v := range g.Values(i) {
			if err := v.Validate(); err != nil {
				t.Fatalf("tuple %d attr %d: %v", i, r, err)
			}
			if v.Kind != g.AttrKind(r) {
				t.Fatalf("tuple %d attr %d: kind mismatch", i, r)
			}
		}
	}
}

func TestPopulate(t *testing.T) {
	pool := storage.NewPool(0, 4<<20)
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(pool, storage.NewMemDevice()), cat)
	if err != nil {
		t.Fatal(err)
	}
	g := New(Config{Tuples: 300, TextAttrs: 40, NumAttrs: 8, Seed: 11})
	ids, err := g.Populate(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 48 {
		t.Fatalf("%d ids", len(ids))
	}
	if tbl.Live() != 300 {
		t.Fatalf("live = %d", tbl.Live())
	}
	// Stored values must round-trip against the generator.
	i := 0
	err = tbl.Scan(func(_ int64, tp *model.Tuple) error {
		want := g.Values(i)
		if len(tp.Values) != len(want) {
			t.Fatalf("tuple %d: %d values, want %d", i, len(tp.Values), len(want))
		}
		for rank, v := range want {
			got, ok := tp.Get(ids[rank])
			if !ok || !got.Equal(v) {
				t.Fatalf("tuple %d rank %d: %v vs %v", i, rank, got, v)
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueriesFollowData(t *testing.T) {
	pool := storage.NewPool(0, 4<<20)
	cat := table.NewCatalog()
	tbl, _ := table.New(storage.NewFile(pool, storage.NewMemDevice()), cat)
	g := New(Config{Tuples: 400, TextAttrs: 40, NumAttrs: 8, Seed: 13})
	ids, err := g.Populate(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, nvals := range []int{1, 3, 5} {
		qs, warm := g.Queries(QueryConfig{Values: nvals, K: 10, Count: 50, Seed: 1}, ids)
		if len(qs) != 50 || warm != 10 {
			t.Fatalf("nvals=%d: %d queries, warm %d", nvals, len(qs), warm)
		}
		for qi, q := range qs {
			if err := q.Validate(); err != nil {
				t.Fatalf("query %d invalid: %v", qi, err)
			}
			if len(q.Terms) != nvals {
				t.Fatalf("query %d has %d terms, want %d", qi, len(q.Terms), nvals)
			}
		}
	}
	// Deterministic given the seed.
	qs1, _ := g.Queries(QueryConfig{Values: 3, Seed: 9}, ids)
	qs2, _ := g.Queries(QueryConfig{Values: 3, Seed: 9}, ids)
	for i := range qs1 {
		if len(qs1[i].Terms) != len(qs2[i].Terms) {
			t.Fatal("query sets not deterministic")
		}
		for j := range qs1[i].Terms {
			if qs1[i].Terms[j] != qs2[i].Terms[j] {
				t.Fatal("query terms not deterministic")
			}
		}
	}
}

func TestVocabWordDeterministic(t *testing.T) {
	g := New(Config{Tuples: 1, Seed: 21})
	if g.VocabWord(3, 5) != g.VocabWord(3, 5) {
		t.Fatal("VocabWord not deterministic")
	}
	if g.VocabWord(3, 5) == g.VocabWord(3, 6) {
		t.Fatal("distinct vocab entries identical")
	}
	if len(g.VocabWord(0, 0)) > model.MaxStringLen {
		t.Fatal("vocab word exceeds max string length")
	}
}
