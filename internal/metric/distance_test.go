package metric

import (
	"math"
	"testing"

	"github.com/sparsewide/iva/internal/model"
)

func exampleTuple() *model.Tuple {
	tp := model.NewTuple(1)
	tp.Set(0, model.Text("canon", "cannon"))
	tp.Set(1, model.Num(230))
	return tp
}

func TestTermDiffText(t *testing.T) {
	m := Default()
	tp := exampleTuple()
	// min edit distance over the value's strings: ed(canon, canon) = 0.
	d := m.TermDiff(model.QueryTerm{Attr: 0, Kind: model.KindText, Str: "canon"}, tp)
	if d != 0 {
		t.Fatalf("exact match diff = %v", d)
	}
	// ed(cano, canon) = 1; ed(cano, cannon) = 2 → min 1.
	d = m.TermDiff(model.QueryTerm{Attr: 0, Kind: model.KindText, Str: "cano"}, tp)
	if d != 1 {
		t.Fatalf("near match diff = %v", d)
	}
}

func TestTermDiffNumeric(t *testing.T) {
	m := Default()
	tp := exampleTuple()
	d := m.TermDiff(model.QueryTerm{Attr: 1, Kind: model.KindNumeric, Num: 200}, tp)
	if d != 30 {
		t.Fatalf("numeric diff = %v", d)
	}
}

func TestTermDiffNDF(t *testing.T) {
	m := Default()
	tp := exampleTuple()
	// Undefined attribute → penalty.
	d := m.TermDiff(model.QueryTerm{Attr: 9, Kind: model.KindText, Str: "x"}, tp)
	if d != m.NDFPenalty {
		t.Fatalf("ndf diff = %v, want %v", d, m.NDFPenalty)
	}
	// Kind mismatch (text query on a numeric cell) also counts as ndf.
	d = m.TermDiff(model.QueryTerm{Attr: 1, Kind: model.KindText, Str: "x"}, tp)
	if d != m.NDFPenalty {
		t.Fatalf("kind-mismatch diff = %v, want %v", d, m.NDFPenalty)
	}
}

func TestTupleDistance(t *testing.T) {
	m := New(L1{}, Equal{})
	tp := exampleTuple()
	q := (&model.Query{K: 1}).
		TextTerm(0, "cano"). // diff 1
		NumTerm(1, 235)      // diff 5
	if d := m.TupleDistance(q, tp); d != 6 {
		t.Fatalf("L1 distance = %v, want 6", d)
	}
}

func TestAllNDFDistance(t *testing.T) {
	q := (&model.Query{K: 1}).TextTerm(0, "a").NumTerm(1, 2).TextTerm(2, "c")
	m := New(L2{}, Equal{})
	want := math.Sqrt(3 * m.NDFPenalty * m.NDFPenalty)
	if d := m.AllNDFDistance(q); math.Abs(d-want) > 1e-12 {
		t.Fatalf("all-ndf L2 = %v, want %v", d, want)
	}
	mInf := New(LInf{}, Equal{})
	if d := mInf.AllNDFDistance(q); d != mInf.NDFPenalty {
		t.Fatalf("all-ndf Linf = %v", d)
	}
}

// TestAllNDFIsUpperBoundForUndefined checks the invariant the SII baseline
// relies on: a tuple defining none of the query attributes has exactly the
// all-ndf distance.
func TestAllNDFIsExactForUndefinedTuple(t *testing.T) {
	tp := model.NewTuple(5)
	tp.Set(42, model.Num(1)) // defines only an unrelated attribute
	q := (&model.Query{K: 1}).TextTerm(0, "a").NumTerm(1, 2)
	for _, m := range []*Metric{New(L1{}, Equal{}), New(L2{}, Equal{}), New(LInf{}, Equal{})} {
		if got, want := m.TupleDistance(q, tp), m.AllNDFDistance(q); got != want {
			t.Fatalf("%s: %v != %v", m.Name(), got, want)
		}
	}
}
