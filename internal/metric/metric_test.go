package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sparsewide/iva/internal/model"
)

func TestCombinersKnownValues(t *testing.T) {
	w := []float64{3, 4}
	if got := (L1{}).Combine(w); got != 7 {
		t.Errorf("L1 = %v", got)
	}
	if got := (L2{}).Combine(w); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %v", got)
	}
	if got := (LInf{}).Combine(w); got != 4 {
		t.Errorf("Linf = %v", got)
	}
}

func TestCombinersEmpty(t *testing.T) {
	for _, c := range []Combiner{L1{}, L2{}, LInf{}} {
		if got := c.Combine(nil); got != 0 {
			t.Errorf("%s(nil) = %v", c.Name(), got)
		}
	}
}

// TestMonotonousProperty verifies Property 3.1 for all three combiners:
// increasing any per-attribute difference never decreases the distance.
func TestMonotonousProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []Combiner{L1{}, L2{}, LInf{}} {
		for trial := 0; trial < 2000; trial++ {
			n := 1 + rng.Intn(6)
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				a[i] = rng.Float64() * 50
				b[i] = a[i] + rng.Float64()*20 // b >= a component-wise
			}
			if c.Combine(b) < c.Combine(a)-1e-9 {
				t.Fatalf("%s violates monotonicity: f(%v)=%v < f(%v)=%v",
					c.Name(), b, c.Combine(b), a, c.Combine(a))
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"L1", "L2", "Linf"} {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%s) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("L3"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestITFWeights(t *testing.T) {
	df := map[model.AttrID]int64{0: 999, 1: 9}
	w := NewITF(func() int64 { return 999 }, func(a model.AttrID) int64 { return df[a] })
	// Attribute defined everywhere: ln(1000/1000) = 0.
	if got := w.Weight(0); math.Abs(got) > 1e-12 {
		t.Errorf("ubiquitous attr weight = %v, want 0", got)
	}
	// Rare attribute: ln(1000/10) = ln(100).
	if got := w.Weight(1); math.Abs(got-math.Log(100)) > 1e-12 {
		t.Errorf("rare attr weight = %v, want ln(100)", got)
	}
	if w.Weight(1) <= w.Weight(0) {
		t.Error("rarer attribute must weigh more")
	}
}

func TestMetricDistanceAndTermWeight(t *testing.T) {
	m := Default()
	terms := []model.QueryTerm{
		{Attr: 0, Kind: model.KindNumeric},
		{Attr: 1, Kind: model.KindText, Weight: 2},
	}
	// diffs (3,4); weights (1,2) -> weighted (3,8) -> L2 = sqrt(73).
	got := m.Distance(terms, []float64{3, 4})
	if math.Abs(got-math.Sqrt(73)) > 1e-12 {
		t.Fatalf("Distance = %v", got)
	}
	if m.Name() != "EQU+L2" {
		t.Fatalf("Name = %s", m.Name())
	}
}

// TestLowerBoundPreservation is the property the whole filter step rests on:
// if every diff lower-bounds the true diff, the combined distance
// lower-bounds the true distance.
func TestLowerBoundPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		lo := make([]float64, n)
		hi := make([]float64, n)
		terms := make([]model.QueryTerm, n)
		for i := range lo {
			hi[i] = rng.Float64() * 100
			lo[i] = hi[i] * rng.Float64()
			terms[i] = model.QueryTerm{Attr: model.AttrID(i)}
		}
		for _, c := range []Combiner{L1{}, L2{}, LInf{}} {
			m := New(c, Equal{})
			if m.Distance(terms, lo) > m.Distance(terms, hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
