// Package metric implements the similarity-distance side of §III-A: the
// per-attribute differences d[A](T,Q), importance weights λ, and the
// monotone combining function f. The iVA-file is metric-oblivious — it only
// relies on f satisfying the monotonous property (Property 3.1: growing any
// per-attribute difference cannot shrink the distance) — so metrics are an
// interface and the paper's six evaluation settings ({EQU,ITF}×{L1,L2,L∞})
// are provided implementations.
package metric

import (
	"fmt"
	"math"

	"github.com/sparsewide/iva/internal/gram"
	"github.com/sparsewide/iva/internal/model"
)

// DefaultNDFPenalty is the predefined constant difference between a defined
// query value and an undefined data value (the paper's example uses 20).
const DefaultNDFPenalty = 20.0

// Combiner is the monotone function f over the weighted per-attribute
// differences λi·di. Implementations must satisfy Property 3.1.
type Combiner interface {
	// Combine folds the weighted differences into a similarity distance.
	Combine(weighted []float64) float64
	// Name identifies the metric in experiment output.
	Name() string
}

// L1 is the weighted Manhattan metric: Σ λi·di.
type L1 struct{}

// Combine implements Combiner.
func (L1) Combine(w []float64) float64 {
	sum := 0.0
	for _, d := range w {
		sum += d
	}
	return sum
}

// Name implements Combiner.
func (L1) Name() string { return "L1" }

// L2 is the weighted Euclidean metric: sqrt(Σ (λi·di)²). This is the
// paper's default (Table I).
type L2 struct{}

// Combine implements Combiner.
func (L2) Combine(w []float64) float64 {
	sum := 0.0
	for _, d := range w {
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Name implements Combiner.
func (L2) Name() string { return "L2" }

// LInf is the weighted Chebyshev metric: max λi·di.
type LInf struct{}

// Combine implements Combiner.
func (LInf) Combine(w []float64) float64 {
	m := 0.0
	for _, d := range w {
		if d > m {
			m = d
		}
	}
	return m
}

// Name implements Combiner.
func (LInf) Name() string { return "Linf" }

// ByName returns the combiner named "L1", "L2" or "Linf".
func ByName(name string) (Combiner, error) {
	switch name {
	case "L1":
		return L1{}, nil
	case "L2":
		return L2{}, nil
	case "Linf", "L∞":
		return LInf{}, nil
	default:
		return nil, fmt.Errorf("metric: unknown combiner %q", name)
	}
}

// Weighter assigns the importance weight λ of an attribute.
type Weighter interface {
	Weight(a model.AttrID) float64
	Name() string
}

// Equal weights every attribute 1 (the paper's EQU setting).
type Equal struct{}

// Weight implements Weighter.
func (Equal) Weight(model.AttrID) float64 { return 1 }

// Name implements Weighter.
func (Equal) Name() string { return "EQU" }

// ITF is the inverse-tuple-frequency weighting of §V-B.3:
//
//	λ(A) = ln((1+|T|)/(1+|T|_A))
//
// where |T|_A is the number of tuples defining A. Attributes defined
// everywhere weigh ~0; rare attributes weigh more.
type ITF struct {
	total func() int64
	df    func(model.AttrID) int64
}

// NewITF builds an ITF weighter from a live-tuple-count source and a
// per-attribute df lookup (typically backed by the table and its catalog).
// Both are functions so the weights track inserts and deletes.
func NewITF(total func() int64, df func(model.AttrID) int64) *ITF {
	return &ITF{total: total, df: df}
}

// Weight implements Weighter.
func (w *ITF) Weight(a model.AttrID) float64 {
	return math.Log(float64(1+w.total()) / float64(1+w.df(a)))
}

// Name implements Weighter.
func (w *ITF) Name() string { return "ITF" }

// Metric bundles a combiner, a weighter and the ndf penalty into the
// D(T,Q) evaluator used by both the filter and refine steps.
type Metric struct {
	Combiner   Combiner
	Weighter   Weighter
	NDFPenalty float64
}

// New returns a metric with the default ndf penalty.
func New(c Combiner, w Weighter) *Metric {
	return &Metric{Combiner: c, Weighter: w, NDFPenalty: DefaultNDFPenalty}
}

// Default returns the paper's Table I setting: Euclidean with equal weights.
func Default() *Metric { return New(L2{}, Equal{}) }

// Distance combines raw per-attribute differences (parallel to terms) into
// the similarity distance, applying term or scheme weights.
func (m *Metric) Distance(terms []model.QueryTerm, diffs []float64) float64 {
	weighted := make([]float64, len(diffs))
	for i, d := range diffs {
		weighted[i] = m.TermWeight(terms[i]) * d
	}
	return m.Combiner.Combine(weighted)
}

// TermWeight resolves the λ of one query term: an explicit positive term
// weight wins, otherwise the weighting scheme applies.
func (m *Metric) TermWeight(t model.QueryTerm) float64 {
	if t.Weight > 0 {
		return t.Weight
	}
	return m.Weighter.Weight(t.Attr)
}

// Name returns a label like "EQU+L2" matching the paper's S1..S6 naming.
func (m *Metric) Name() string {
	return m.Weighter.Name() + "+" + m.Combiner.Name()
}

// TermDiff computes the exact per-attribute difference d[A](T,Q) of §III-A
// for one query term against a fetched tuple: the smallest edit distance to
// any data string for text, |Δ| for numeric, and the ndf penalty when the
// tuple does not define the attribute or defines it with the other kind.
func (m *Metric) TermDiff(term model.QueryTerm, tp *model.Tuple) float64 {
	v, ok := tp.Get(term.Attr)
	if !ok || v.Kind != term.Kind {
		return m.NDFPenalty
	}
	switch term.Kind {
	case model.KindNumeric:
		return math.Abs(term.Num - v.Num)
	case model.KindText:
		best := math.Inf(1)
		for _, s := range v.Strs {
			if d := float64(gram.EditDistance(term.Str, s)); d < best {
				best = d
			}
		}
		return best
	}
	return m.NDFPenalty
}

// TupleDistance evaluates the exact similarity distance D(T,Q) used by the
// refine step and by the DST baseline.
func (m *Metric) TupleDistance(q *model.Query, tp *model.Tuple) float64 {
	diffs := make([]float64, len(q.Terms))
	for i, term := range q.Terms {
		diffs[i] = m.TermDiff(term, tp)
	}
	return m.Distance(q.Terms, diffs)
}

// AllNDFDistance returns the distance of a tuple that defines none of the
// query's attributes: every difference is the ndf penalty. It is exact
// without fetching the tuple, which the SII baseline exploits.
func (m *Metric) AllNDFDistance(q *model.Query) float64 {
	diffs := make([]float64, len(q.Terms))
	for i := range diffs {
		diffs[i] = m.NDFPenalty
	}
	return m.Distance(q.Terms, diffs)
}
