package storage

import (
	"math/rand"
	"testing"
)

// TestTrackDeviceCoalesce pins the merge behavior: overlapping and adjacent
// writes coalesce, disjoint writes stay separate, and TakeDirty resets.
func TestTrackDeviceCoalesce(t *testing.T) {
	d := NewTrackDevice(NewMemDevice())
	d.Arm()
	w := func(off, n int64) {
		if _, err := d.WriteAt(make([]byte, n), off); err != nil {
			t.Fatal(err)
		}
	}
	w(100, 10) // [100,110)
	w(0, 4)    // [0,4)
	w(110, 5)  // adjacent: [100,115)
	w(98, 4)   // overlapping: [98,115)
	w(200, 1)  // disjoint
	got := d.TakeDirty()
	want := []Range{{0, 4}, {98, 17}, {200, 1}}
	if len(got) != len(want) {
		t.Fatalf("ranges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranges = %v, want %v", got, want)
		}
	}
	if len(d.TakeDirty()) != 0 {
		t.Fatal("TakeDirty must reset the set")
	}

	// A write bridging two tracked ranges merges them.
	w(0, 4)
	w(10, 4)
	w(3, 8) // bridges into [0,14)
	got = d.TakeDirty()
	if len(got) != 1 || got[0] != (Range{0, 14}) {
		t.Fatalf("ranges = %v, want [{0 14}]", got)
	}
}

// TestTrackDeviceDisarmedAndTruncate checks that a disarmed tracker records
// nothing and that a shrink clips tracked ranges.
func TestTrackDeviceDisarmedAndTruncate(t *testing.T) {
	d := NewTrackDevice(NewMemDevice())
	if _, err := d.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if got := d.TakeDirty(); len(got) != 0 {
		t.Fatalf("disarmed tracker recorded %v", got)
	}
	d.Arm()
	if _, err := d.WriteAt(make([]byte, 100), 50); err != nil {
		t.Fatal(err)
	}
	if err := d.Truncate(80); err != nil {
		t.Fatal(err)
	}
	got := d.TakeDirty()
	if len(got) != 1 || got[0] != (Range{50, 30}) {
		t.Fatalf("ranges after shrink = %v, want [{50 30}]", got)
	}
}

// TestTrackDeviceRandomized cross-checks the coalescing set against a naive
// byte bitmap over random writes.
func TestTrackDeviceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		d := NewTrackDevice(NewMemDevice())
		d.Arm()
		const size = 4096
		dirty := make([]bool, size)
		for i := 0; i < 100; i++ {
			off := rng.Int63n(size - 64)
			n := 1 + rng.Int63n(64)
			if _, err := d.WriteAt(make([]byte, n), off); err != nil {
				t.Fatal(err)
			}
			for b := off; b < off+n; b++ {
				dirty[b] = true
			}
		}
		covered := make([]bool, size)
		prevEnd := int64(-1)
		for _, r := range d.TakeDirty() {
			if r.Off <= prevEnd {
				t.Fatalf("iter %d: ranges not disjoint/sorted at %v", iter, r)
			}
			prevEnd = r.Off + r.Len
			for b := r.Off; b < r.Off+r.Len; b++ {
				covered[b] = true
			}
		}
		for b := 0; b < size; b++ {
			if dirty[b] && !covered[b] {
				t.Fatalf("iter %d: written byte %d not covered", iter, b)
			}
		}
	}
}
