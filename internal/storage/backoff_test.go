package storage

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"
)

// TestBackoffDelaySchedule pins the jitter ceilings: with a deterministic
// Rand returning the ceiling itself, Delay must follow base<<k capped at Max.
func TestBackoffDelaySchedule(t *testing.T) {
	b := NewBackoff(time.Millisecond, 8*time.Millisecond, 0)
	b.Rand = func(n int64) int64 { return n - 1 } // the ceiling
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
		8 * time.Millisecond,
	}
	for k, w := range want {
		if got := b.Delay(k); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", k, got, w)
		}
	}
	b.Rand = func(n int64) int64 { return 0 }
	if got := b.Delay(3); got != 0 {
		t.Fatalf("full jitter must reach 0, got %v", got)
	}
}

// TestBackoffRetryClockInjected drives Retry with an injected clock: the
// sleeps requested must follow the jittered schedule and no wall time may
// pass.
func TestBackoffRetryClockInjected(t *testing.T) {
	var slept []time.Duration
	b := NewBackoff(time.Millisecond, 4*time.Millisecond, 4)
	b.Rand = func(n int64) int64 { return n - 1 }
	b.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	calls := 0
	err := b.Retry(context.Background(), nil, func() error {
		calls++
		return errors.New("always fails")
	})
	if err == nil || err.Error() != "always fails" {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4 (the attempt budget)", calls)
	}
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestBackoffRetryHonorsContext asserts cancellation both between attempts
// and mid-sleep.
func TestBackoffRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBackoff(time.Millisecond, time.Millisecond, 0) // unbounded attempts
	b.Sleep = func(ctx context.Context, _ time.Duration) error {
		cancel() // cancel during the first backoff wait
		return ctx.Err()
	}
	calls := 0
	err := b.Retry(ctx, nil, func() error { calls++; return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancellation)", calls)
	}

	// Already-cancelled context: no attempt at all.
	calls = 0
	err = b.Retry(ctx, nil, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err = %v calls = %d, want immediate cancellation", err, calls)
	}
}

// TestBackoffRetryPermanentError stops on the first non-retryable failure.
func TestBackoffRetryPermanentError(t *testing.T) {
	b := NewBackoff(time.Millisecond, time.Millisecond, 10)
	b.Sleep = func(context.Context, time.Duration) error { return nil }
	perm := errors.New("permanent")
	calls := 0
	err := b.Retry(nil, func(err error) bool { return !errors.Is(err, perm) }, func() error {
		calls++
		if calls < 3 {
			return syscall.EINTR
		}
		return perm
	})
	if !errors.Is(err, perm) || calls != 3 {
		t.Fatalf("err = %v calls = %d, want permanent error after 3 calls", err, calls)
	}
}

// flakyDevice fails ReadAt with EINTR a fixed number of times, then works.
type flakyDevice struct {
	Device
	fails int
}

func (d *flakyDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.fails > 0 {
		d.fails--
		return 0, syscall.EINTR
	}
	return d.Device.ReadAt(p, off)
}

// TestRetryDeviceBackoffAndCancel exercises RetryDevice over the injected
// clock: transient errors retry on the shared schedule, and a cancelled
// bound context aborts the backoff wait, surfacing the transient error.
func TestRetryDeviceBackoffAndCancel(t *testing.T) {
	mem := NewMemDevice()
	if _, err := mem.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}

	var slept []time.Duration
	rd := NewRetryDevice(&flakyDevice{Device: mem, fails: 2})
	b := NewBackoff(time.Millisecond, 4*time.Millisecond, 3)
	b.Rand = func(n int64) int64 { return n - 1 }
	b.Sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	rd.SetBackoff(b)
	buf := make([]byte, 5)
	if _, err := rd.ReadAt(buf, 0); err != nil {
		t.Fatalf("read after transient failures: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if rd.Retries() != 2 || len(slept) != 2 {
		t.Fatalf("retries = %d sleeps = %v, want 2 retries with sleeps", rd.Retries(), slept)
	}
	if slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("sleeps = %v, want the exponential schedule", slept)
	}

	// Cancelled bound context: the transient error surfaces without retries.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rd2 := NewRetryDevice(&flakyDevice{Device: mem, fails: 100})
	b2 := NewBackoff(time.Millisecond, 4*time.Millisecond, 3)
	b2.Sleep = func(ctx context.Context, _ time.Duration) error {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	rd2.SetBackoff(b2)
	rd2.Bind(ctx)
	if _, err := rd2.ReadAt(buf, 0); !errors.Is(err, syscall.EINTR) {
		t.Fatalf("err = %v, want the EINTR surfaced (no hang, no retry)", err)
	}
	if rd2.Retries() != 0 {
		t.Fatalf("retries = %d, want 0 after cancellation", rd2.Retries())
	}
}
