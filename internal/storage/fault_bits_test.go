package storage

import (
	"errors"
	"math/rand"
	"testing"
)

func TestWriteBitsAtOverwritesInPlace(t *testing.T) {
	pool := NewPool(256, 1<<20)
	s, _ := NewSegStore(NewFile(pool, NewMemDevice()), 0, 64)
	c, _ := s.Create()
	// Lay down 100 13-bit fields.
	var bw bitWriter
	for i := 0; i < 100; i++ {
		bw.writeBits(uint64(i), 13)
	}
	bitLen, err := AppendBits(s, c, 0, bw.buf, bw.n)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite field 37 (the tombstone pattern of the tuple list).
	if err := WriteBitsAt(s, c, 37*13, 0x1FFF, 13); err != nil {
		t.Fatal(err)
	}
	// And field 0 with zero.
	if err := WriteBitsAt(s, c, 0, 0, 13); err != nil {
		t.Fatal(err)
	}
	r := NewChainBitReader(s, c, bitLen)
	for i := 0; i < 100; i++ {
		got, err := r.ReadBits(13)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(i)
		switch i {
		case 37:
			want = 0x1FFF
		case 0:
			want = 0
		}
		if got != want {
			t.Fatalf("field %d = %x, want %x", i, got, want)
		}
	}
}

func TestWriteBitsAtRandomized(t *testing.T) {
	pool := NewPool(256, 1<<20)
	s, _ := NewSegStore(NewFile(pool, NewMemDevice()), 0, 64)
	c, _ := s.Create()
	rng := rand.New(rand.NewSource(55))
	const fields, width = 200, 11
	vals := make([]uint64, fields)
	var bw bitWriter
	for i := range vals {
		vals[i] = rng.Uint64() & (1<<width - 1)
		bw.writeBits(vals[i], width)
	}
	bitLen, err := AppendBits(s, c, 0, bw.buf, bw.n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(fields)
		vals[i] = rng.Uint64() & (1<<width - 1)
		if err := WriteBitsAt(s, c, int64(i*width), vals[i], width); err != nil {
			t.Fatal(err)
		}
	}
	r := NewChainBitReader(s, c, bitLen)
	for i, want := range vals {
		got, err := r.ReadBits(width)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("field %d = %x, want %x", i, got, want)
		}
	}
}

func TestWriteBitsAtValidation(t *testing.T) {
	pool := NewPool(256, 1<<20)
	s, _ := NewSegStore(NewFile(pool, NewMemDevice()), 0, 64)
	c, _ := s.Create()
	if err := WriteBitsAt(s, c, 0, 0, 65); err == nil {
		t.Fatal("width 65 accepted")
	}
}

func TestFaultDevice(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(), 2)
	if _, err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 1)
	if _, err := d.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("budget exhausted but err = %v", err)
	}
	d.Reset(-1)
	if _, err := d.ReadAt(p, 0); err != nil {
		t.Fatalf("unlimited budget failed: %v", err)
	}
	d.Trip()
	if err := d.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("tripped Sync err = %v", err)
	}
	if err := d.Truncate(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("tripped Truncate err = %v", err)
	}
	if d.Size() != 1 {
		t.Fatalf("Size = %d", d.Size())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBitsEmpty(t *testing.T) {
	pool := NewPool(256, 1<<20)
	s, _ := NewSegStore(NewFile(pool, NewMemDevice()), 0, 64)
	c, _ := s.Create()
	n, err := AppendBits(s, c, 123, nil, 0)
	if err != nil || n != 123 {
		t.Fatalf("empty append: n=%d err=%v", n, err)
	}
}
