package storage

import (
	"context"
	"errors"
	"sync/atomic"
	"syscall"
	"time"
)

// retryAttempts is the total number of tries per operation (1 initial + 2
// retries); retryBaseDelay/retryMaxDelay bound the full-jitter backoff.
const (
	retryAttempts  = 3
	retryBaseDelay = 500 * time.Microsecond
	retryMaxDelay  = 20 * time.Millisecond
)

// RetryDevice wraps a Device and retries operations that fail with
// transient, kernel-signalled errors (EINTR/EAGAIN class) using the shared
// Backoff policy (capped exponential with full jitter). Persistent errors —
// corruption, ENOSPC, injected faults — pass through on the first failure.
// The Store wraps its FileDevices with it so a signal landing mid-pread does
// not fail a query. A bound context (Bind) aborts in-flight backoff sleeps
// and stops further retries when the owning store shuts down.
type RetryDevice struct {
	inner   Device
	retries atomic.Int64
	onRetry atomic.Pointer[func()]
	ctx     atomic.Pointer[context.Context] // nil means never cancelled
	backoff Backoff
}

// NewRetryDevice wraps inner with transient-error retries.
func NewRetryDevice(inner Device) *RetryDevice {
	return &RetryDevice{
		inner:   inner,
		backoff: NewBackoff(retryBaseDelay, retryMaxDelay, retryAttempts),
	}
}

// OnRetry installs a callback invoked once per retried operation (after the
// backoff sleep, before the retry). Used to feed iva_device_retries_total.
func (d *RetryDevice) OnRetry(fn func()) { d.onRetry.Store(&fn) }

// Bind attaches a context: once it cancels, backoff sleeps abort and no
// further retries run (the operation's transient error surfaces instead, so
// a store being closed does not hang on a flapping device).
func (d *RetryDevice) Bind(ctx context.Context) { d.ctx.Store(&ctx) }

// SetBackoff overrides the retry policy (test seam: inject a recording
// Sleep/Rand to assert the schedule without wall-clock sleeps).
func (d *RetryDevice) SetBackoff(b Backoff) { d.backoff = b }

// Retries returns the number of retries performed so far.
func (d *RetryDevice) Retries() int64 { return d.retries.Load() }

// transientError reports whether err is worth retrying: an interrupted or
// would-block syscall, not a persistent failure.
func transientError(err error) bool {
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

func (d *RetryDevice) do(op func() error) error {
	var ctx context.Context
	if p := d.ctx.Load(); p != nil {
		ctx = *p
	}
	attempts := d.backoff.Attempts
	if attempts <= 0 {
		attempts = retryAttempts
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if err = op(); err == nil || !transientError(err) {
			return err
		}
		if attempt == attempts-1 {
			break
		}
		if werr := d.backoff.Wait(ctx, attempt); werr != nil {
			return err // shutting down: surface the transient error as-is
		}
		d.retries.Add(1)
		if fn := d.onRetry.Load(); fn != nil {
			(*fn)()
		}
	}
	return err
}

// ReadAt implements Device.
func (d *RetryDevice) ReadAt(p []byte, off int64) (int, error) {
	var n int
	err := d.do(func() (e error) { n, e = d.inner.ReadAt(p, off); return })
	return n, err
}

// WriteAt implements Device.
func (d *RetryDevice) WriteAt(p []byte, off int64) (int, error) {
	var n int
	err := d.do(func() (e error) { n, e = d.inner.WriteAt(p, off); return })
	return n, err
}

// Size implements Device.
func (d *RetryDevice) Size() int64 { return d.inner.Size() }

// Truncate implements Device.
func (d *RetryDevice) Truncate(size int64) error {
	return d.do(func() error { return d.inner.Truncate(size) })
}

// Sync implements Device.
func (d *RetryDevice) Sync() error {
	return d.do(func() error { return d.inner.Sync() })
}

// Close implements Device.
func (d *RetryDevice) Close() error { return d.inner.Close() }
