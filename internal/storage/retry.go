package storage

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"syscall"
	"time"
)

// retryAttempts is the total number of tries per operation (1 initial + 2
// retries); retryBaseDelay/retryMaxDelay bound the full-jitter backoff.
const (
	retryAttempts  = 3
	retryBaseDelay = 500 * time.Microsecond
	retryMaxDelay  = 20 * time.Millisecond
)

// RetryDevice wraps a Device and retries operations that fail with
// transient, kernel-signalled errors (EINTR/EAGAIN class) using capped
// exponential backoff with full jitter. Persistent errors — corruption,
// ENOSPC, injected faults — pass through on the first failure. The Store
// wraps its FileDevices with it so a signal landing mid-pread does not fail
// a query.
type RetryDevice struct {
	inner   Device
	retries atomic.Int64
	onRetry atomic.Pointer[func()]
	sleep   func(time.Duration) // test seam; nil means time.Sleep
}

// NewRetryDevice wraps inner with transient-error retries.
func NewRetryDevice(inner Device) *RetryDevice { return &RetryDevice{inner: inner} }

// OnRetry installs a callback invoked once per retried operation (after the
// backoff sleep, before the retry). Used to feed iva_device_retries_total.
func (d *RetryDevice) OnRetry(fn func()) { d.onRetry.Store(&fn) }

// Retries returns the number of retries performed so far.
func (d *RetryDevice) Retries() int64 { return d.retries.Load() }

// transientError reports whether err is worth retrying: an interrupted or
// would-block syscall, not a persistent failure.
func transientError(err error) bool {
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

func (d *RetryDevice) do(op func() error) error {
	var err error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if err = op(); err == nil || !transientError(err) {
			return err
		}
		if attempt == retryAttempts-1 {
			break
		}
		// Full jitter: uniform in [0, base<<attempt], capped.
		ceil := retryBaseDelay << attempt
		if ceil > retryMaxDelay {
			ceil = retryMaxDelay
		}
		delay := time.Duration(rand.Int63n(int64(ceil) + 1))
		if d.sleep != nil {
			d.sleep(delay)
		} else {
			time.Sleep(delay)
		}
		d.retries.Add(1)
		if fn := d.onRetry.Load(); fn != nil {
			(*fn)()
		}
	}
	return err
}

// ReadAt implements Device.
func (d *RetryDevice) ReadAt(p []byte, off int64) (int, error) {
	var n int
	err := d.do(func() (e error) { n, e = d.inner.ReadAt(p, off); return })
	return n, err
}

// WriteAt implements Device.
func (d *RetryDevice) WriteAt(p []byte, off int64) (int, error) {
	var n int
	err := d.do(func() (e error) { n, e = d.inner.WriteAt(p, off); return })
	return n, err
}

// Size implements Device.
func (d *RetryDevice) Size() int64 { return d.inner.Size() }

// Truncate implements Device.
func (d *RetryDevice) Truncate(size int64) error {
	return d.do(func() error { return d.inner.Truncate(size) })
}

// Sync implements Device.
func (d *RetryDevice) Sync() error {
	return d.do(func() error { return d.inner.Sync() })
}

// Close implements Device.
func (d *RetryDevice) Close() error { return d.inner.Close() }
