package storage

import (
	"fmt"
	"sync/atomic"

	"github.com/sparsewide/iva/internal/obs"
)

// Stats accumulates physical I/O counters for a buffer pool or a single file
// attached to one. The paper's evaluation reasons about two classes of disk
// work — sequential scanning of index lists and random accesses into the
// table file — so physical page reads are classified by whether they continue
// the previous read position of the same file.
//
// All counters are atomics: parallel filter workers read pages concurrently,
// and query plans snapshot per-file counters before and after each phase to
// attribute I/O without stopping the world.
type Stats struct {
	physReads  atomic.Int64 // pages read from the device
	physWrites atomic.Int64 // pages written to the device
	cacheHits  atomic.Int64 // page requests served by the pool
	seqReads   atomic.Int64 // physical reads continuing the previous page+1
	nearReads  atomic.Int64 // short forward jumps (track-to-track, no full seek)
	randReads  atomic.Int64 // physical reads requiring a full positioning seek
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	PhysReads  int64
	PhysWrites int64
	CacheHits  int64
	SeqReads   int64
	NearReads  int64
	RandReads  int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		PhysReads:  s.physReads.Load(),
		PhysWrites: s.physWrites.Load(),
		CacheHits:  s.cacheHits.Load(),
		SeqReads:   s.seqReads.Load(),
		NearReads:  s.nearReads.Load(),
		RandReads:  s.randReads.Load(),
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.physReads.Store(0)
	s.physWrites.Store(0)
	s.cacheHits.Store(0)
	s.seqReads.Store(0)
	s.nearReads.Store(0)
	s.randReads.Store(0)
}

// readClass classifies a physical read by its distance from the previous
// physical read of the same file.
type readClass uint8

const (
	readSeq readClass = iota
	readNear
	readRand
)

// nearWindow is the forward distance (in pages) still priced as a short
// positioning move rather than a full average seek. 256 pages = 1 MiB at
// the default page size, roughly one 2009-era disk track group.
const nearWindow = 256

func classifyRead(lastPage, page int64) readClass {
	switch d := page - lastPage; {
	case d == 1:
		return readSeq
	case d > 1 && d <= nearWindow:
		return readNear
	default:
		return readRand
	}
}

func (s *Stats) recordRead(c readClass) {
	s.physReads.Add(1)
	switch c {
	case readSeq:
		s.seqReads.Add(1)
	case readNear:
		s.nearReads.Add(1)
	default:
		s.randReads.Add(1)
	}
}

func (s *Stats) recordWrite() { s.physWrites.Add(1) }

func (s *Stats) recordHit() { s.cacheHits.Add(1) }

// Sub returns the delta a−b, counter-wise.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		PhysReads:  a.PhysReads - b.PhysReads,
		PhysWrites: a.PhysWrites - b.PhysWrites,
		CacheHits:  a.CacheHits - b.CacheHits,
		SeqReads:   a.SeqReads - b.SeqReads,
		NearReads:  a.NearReads - b.NearReads,
		RandReads:  a.RandReads - b.RandReads,
	}
}

// HitRate returns the fraction of page requests served by the cache.
func (a Snapshot) HitRate() float64 {
	total := a.CacheHits + a.PhysReads
	if total == 0 {
		return 0
	}
	return float64(a.CacheHits) / float64(total)
}

// Add returns the counter-wise sum a+b.
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		PhysReads:  a.PhysReads + b.PhysReads,
		PhysWrites: a.PhysWrites + b.PhysWrites,
		CacheHits:  a.CacheHits + b.CacheHits,
		SeqReads:   a.SeqReads + b.SeqReads,
		NearReads:  a.NearReads + b.NearReads,
		RandReads:  a.RandReads + b.RandReads,
	}
}

func (a Snapshot) String() string {
	return fmt.Sprintf("reads=%d (seq=%d near=%d rand=%d) writes=%d hits=%d",
		a.PhysReads, a.SeqReads, a.NearReads, a.RandReads, a.PhysWrites, a.CacheHits)
}

// DiskModel prices physical I/O so that experiments report times with the
// shape of the paper's 2009 HDD testbed regardless of the machine the
// reproduction runs on. A random page read pays a full positioning cost, a
// near read (short forward jump, e.g. the next tuple a few pages ahead
// during a tid-ordered fetch run) pays a track-to-track move, and a
// sequential page read pays only the transfer.
type DiskModel struct {
	RandomMS   float64 // full positioning + transfer
	NearMS     float64 // short forward move + transfer
	SeqMS      float64 // transfer only
	WriteMS    float64 // cost per page write
	CacheHitMS float64 // in-memory page lookup cost (usually ~0)
}

// DefaultDiskModel approximates a 2009-era 7200 rpm disk: ~8 ms average
// positioning, ~1 ms track-to-track, ~80 MB/s sequential transfer
// (≈0.05 ms per 4 KiB page).
func DefaultDiskModel() DiskModel {
	return DiskModel{RandomMS: 8.0, NearMS: 1.0, SeqMS: 0.05, WriteMS: 0.1, CacheHitMS: 0}
}

// CostMS returns the modeled milliseconds for the I/O in the snapshot.
func (m DiskModel) CostMS(s Snapshot) float64 {
	return float64(s.RandReads)*m.RandomMS +
		float64(s.NearReads)*m.NearMS +
		float64(s.SeqReads)*m.SeqMS +
		float64(s.PhysWrites)*m.WriteMS +
		float64(s.CacheHits)*m.CacheHitMS
}

// RegisterPoolMetrics exposes a pool's I/O counters in a metrics registry:
// physical reads broken down by the paper's seq/near/rand access classes,
// writes, cache hits, the derived hit ratio, resident pages, and the modeled
// disk cost of all I/O so far under m. Counters are read live at exposition
// time.
func (p *Pool) RegisterPoolMetrics(r *obs.Registry, labels obs.Labels, m DiskModel) {
	st := p.Stats()
	r.CounterFunc("iva_io_phys_reads_total", "Physical page reads from the device.",
		labels, func() float64 { return float64(st.Snapshot().PhysReads) })
	r.CounterFunc("iva_io_phys_writes_total", "Physical page writes to the device.",
		labels, func() float64 { return float64(st.Snapshot().PhysWrites) })
	r.CounterFunc("iva_io_cache_hits_total", "Page requests served by the buffer pool.",
		labels, func() float64 { return float64(st.Snapshot().CacheHits) })
	for class, get := range map[string]func(Snapshot) int64{
		"seq":  func(s Snapshot) int64 { return s.SeqReads },
		"near": func(s Snapshot) int64 { return s.NearReads },
		"rand": func(s Snapshot) int64 { return s.RandReads },
	} {
		get := get
		r.CounterFunc("iva_io_reads_total", "Physical reads by access class (seq, near, rand).",
			obs.With(labels, "class", class), func() float64 { return float64(get(st.Snapshot())) })
	}
	r.GaugeFunc("iva_io_cache_hit_ratio", "Fraction of page requests served by the buffer pool.",
		labels, func() float64 { return st.Snapshot().HitRate() })
	r.GaugeFunc("iva_io_modeled_cost_ms", "Modeled disk milliseconds of all I/O so far (2009-HDD cost model).",
		labels, func() float64 { return m.CostMS(st.Snapshot()) })
	r.GaugeFunc("iva_pool_cached_pages", "Pages resident in the buffer pool.",
		labels, func() float64 { return float64(p.CachedPages()) })
	r.CounterFunc("iva_pool_shard_lock_wait_total", "Contended shard-lock acquisitions (striping effectiveness).",
		labels, func() float64 { return float64(p.LockWaits()) })
	r.GaugeFunc("iva_pool_shards", "Lock stripes in the buffer pool.",
		labels, func() float64 { return float64(p.ShardCount()) })
	r.GaugeFunc("iva_pool_pinned_frames", "Outstanding page pins; nonzero at quiesce is a pin leak.",
		labels, func() float64 { return float64(p.PinnedFrames()) })
	r.GaugeFunc("iva_pool_overflow_pages", "Pages held beyond the byte budget because pins block eviction.",
		labels, func() float64 { return float64(p.OverflowPages()) })
	for i := 0; i < p.ShardCount(); i++ {
		i := i
		r.GaugeFunc("iva_pool_shard_resident_pages", "Pages resident per pool shard.",
			obs.With(labels, "pool_shard", fmt.Sprint(i)), func() float64 { return float64(p.ShardResident(i)) })
	}
}
