// Package storage provides the paged storage substrate shared by the table
// file and the index files: block devices (in-memory and OS-file backed), a
// shared LRU buffer pool with physical-I/O accounting (the paper evaluates
// with a single 10 MB file cache over both the index and the table file), a
// 2009-HDD disk cost model used to report paper-shaped query times, and
// segmented (extent-chain) files so that per-attribute vector lists can grow
// at the tail between rebuilds, as §IV-B's insertion path requires.
package storage

import (
	"fmt"
	"os"
	"sync"
)

// Device is a random-access block of bytes. It is the lowest layer; all
// access above it goes through a File and the shared buffer pool.
type Device interface {
	// ReadAt reads len(p) bytes at offset off. Reads beyond the current
	// size return zero bytes for the missing tail (devices are sparse).
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes len(p) bytes at offset off, growing the device.
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the current device size in bytes.
	Size() int64
	// Truncate resizes the device.
	Truncate(size int64) error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases the device.
	Close() error
}

// MemDevice is an in-memory Device. The zero value is an empty device.
type MemDevice struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	if off < int64(len(d.buf)) {
		n = copy(p, d.buf[off:])
	}
	clear(p[n:]) // only the sparse tail, not the whole buffer twice
	return len(p), nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(d.buf)) {
		if end > int64(cap(d.buf)) {
			nb := make([]byte, end, end+end/2)
			copy(nb, d.buf)
			d.buf = nb
		} else {
			d.buf = d.buf[:end]
		}
	}
	copy(d.buf[off:], p)
	return len(p), nil
}

// Size implements Device.
func (d *MemDevice) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.buf))
}

// Truncate implements Device.
func (d *MemDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("storage: negative truncate %d", size)
	}
	if size <= int64(len(d.buf)) {
		d.buf = d.buf[:size]
		return nil
	}
	nb := make([]byte, size)
	copy(nb, d.buf)
	d.buf = nb
	return nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error { return nil }

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// FileDevice is an OS-file backed Device.
type FileDevice struct {
	f    *os.File
	mu   sync.Mutex
	size int64
}

// OpenFileDevice opens (creating if necessary) the file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	return &FileDevice{f: f, size: st.Size()}, nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	size := d.size
	d.mu.Unlock()
	if off >= size {
		clear(p)
		return len(p), nil
	}
	n := len(p)
	if off+int64(n) > size {
		n = int(size - off)
	}
	if _, err := d.f.ReadAt(p[:n], off); err != nil {
		return 0, fmt.Errorf("storage: read: %w", err)
	}
	clear(p[n:])
	return len(p), nil
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) {
	n, err := d.f.WriteAt(p, off)
	if err != nil {
		return n, fmt.Errorf("storage: write: %w", err)
	}
	d.mu.Lock()
	if end := off + int64(n); end > d.size {
		d.size = end
	}
	d.mu.Unlock()
	return n, nil
}

// Size implements Device.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Truncate implements Device.
func (d *FileDevice) Truncate(size int64) error {
	if err := d.f.Truncate(size); err != nil {
		return fmt.Errorf("storage: truncate: %w", err)
	}
	d.mu.Lock()
	d.size = size
	d.mu.Unlock()
	return nil
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }
