package storage

import (
	"context"
	"math/rand"
	"time"
)

// Backoff is a reusable capped-exponential-backoff policy with full jitter:
// attempt k sleeps a uniform duration in [0, min(Base<<k, Max)]. It backs
// both RetryDevice's transient-error retries and the replication follower's
// delta poll loop, so every retry path in the system shares one tested
// policy. The zero value is unusable; use NewBackoff for sane defaults.
type Backoff struct {
	// Base is the jitter ceiling of the first retry; Max caps the ceiling's
	// exponential growth.
	Base time.Duration
	Max  time.Duration
	// Attempts bounds the total tries (initial + retries) a Retry loop
	// performs; <= 0 means unbounded.
	Attempts int

	// Rand draws the jitter, uniform in [0, n]; nil uses math/rand. Sleep
	// performs the wait; nil uses a timer honoring ctx. Both are test seams
	// so backoff schedules can be asserted without wall-clock sleeps.
	Rand  func(n int64) int64
	Sleep func(ctx context.Context, d time.Duration) error
}

// NewBackoff returns a policy with the given shape and default seams.
func NewBackoff(base, max time.Duration, attempts int) Backoff {
	return Backoff{Base: base, Max: max, Attempts: attempts}
}

// Delay returns the jittered sleep before retry `attempt` (0-based: the
// delay between the first failure and the second try is Delay(0)).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	ceil := b.Base
	for i := 0; i < attempt; i++ {
		ceil <<= 1
		if ceil >= b.Max && b.Max > 0 {
			ceil = b.Max
			break
		}
	}
	if b.Max > 0 && ceil > b.Max {
		ceil = b.Max
	}
	draw := b.Rand
	if draw == nil {
		draw = rand.Int63n
	}
	return time.Duration(draw(int64(ceil) + 1))
}

// Wait sleeps the jittered delay for retry `attempt`, returning early with
// ctx.Err() on cancellation. A nil ctx never cancels.
func (b Backoff) Wait(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if b.Sleep != nil {
		return b.Sleep(ctx, d)
	}
	if d <= 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry runs op until it succeeds, fails permanently (retryable returns
// false), the attempt budget runs out, or ctx cancels. The last error is
// returned; cancellation mid-wait returns ctx.Err().
func (b Backoff) Retry(ctx context.Context, retryable func(error) bool, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if err = op(); err == nil || (retryable != nil && !retryable(err)) {
			return err
		}
		if b.Attempts > 0 && attempt >= b.Attempts-1 {
			return err
		}
		if werr := b.Wait(ctx, attempt); werr != nil {
			return werr
		}
	}
}
