package storage

import "sync"

// Range is one byte span of a device, [Off, Off+Len).
type Range struct {
	Off int64
	Len int64
}

// TrackDevice wraps a Device and records which byte ranges have been written
// since the last TakeDirty, coalescing adjacent and overlapping spans. The
// replication primary wraps its store devices with it: the set of ranges
// written between two Syncs, read back after the second Sync commits, IS the
// synced-prefix delta the v3/v4 crash-atomic format makes well-defined.
// Tracking is disarmed until Arm is called, so non-replicating stores pay
// only an atomic load per write.
type TrackDevice struct {
	inner Device

	mu     sync.Mutex
	armed  bool
	ranges []Range // sorted by Off, non-overlapping, non-adjacent
}

// NewTrackDevice wraps inner with (disarmed) write tracking.
func NewTrackDevice(inner Device) *TrackDevice { return &TrackDevice{inner: inner} }

// Arm starts recording writes. Idempotent.
func (d *TrackDevice) Arm() {
	d.mu.Lock()
	d.armed = true
	d.mu.Unlock()
}

// Armed reports whether writes are being recorded.
func (d *TrackDevice) Armed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.armed
}

// TakeDirty returns the coalesced ranges written since the last call and
// resets the set. The caller snapshots range contents from the device itself
// (write-through caching keeps device bytes current).
func (d *TrackDevice) TakeDirty() []Range {
	d.mu.Lock()
	out := d.ranges
	d.ranges = nil
	d.mu.Unlock()
	return out
}

// record merges [off, off+n) into the sorted range set.
func (d *TrackDevice) record(off, n int64) {
	if n <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.armed {
		return
	}
	end := off + n
	// Binary search for the first range that could touch [off, end).
	lo, hi := 0, len(d.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.ranges[mid].Off+d.ranges[mid].Len < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Merge every range overlapping or adjacent to the new span.
	j := lo
	for j < len(d.ranges) && d.ranges[j].Off <= end {
		if d.ranges[j].Off < off {
			off = d.ranges[j].Off
		}
		if e := d.ranges[j].Off + d.ranges[j].Len; e > end {
			end = e
		}
		j++
	}
	merged := Range{Off: off, Len: end - off}
	d.ranges = append(d.ranges[:lo], append([]Range{merged}, d.ranges[j:]...)...)
}

// ReadAt implements Device.
func (d *TrackDevice) ReadAt(p []byte, off int64) (int, error) { return d.inner.ReadAt(p, off) }

// WriteAt implements Device.
func (d *TrackDevice) WriteAt(p []byte, off int64) (int, error) {
	n, err := d.inner.WriteAt(p, off)
	if n > 0 {
		d.record(off, int64(n))
	}
	return n, err
}

// Size implements Device.
func (d *TrackDevice) Size() int64 { return d.inner.Size() }

// Truncate implements Device. A shrink drops tracked ranges beyond the new
// size (those bytes no longer exist to ship); the new size itself travels in
// the delta header, not as a range.
func (d *TrackDevice) Truncate(size int64) error {
	if err := d.inner.Truncate(size); err != nil {
		return err
	}
	d.mu.Lock()
	if d.armed {
		out := d.ranges[:0]
		for _, r := range d.ranges {
			if r.Off >= size {
				continue
			}
			if r.Off+r.Len > size {
				r.Len = size - r.Off
			}
			out = append(out, r)
		}
		d.ranges = out
	}
	d.mu.Unlock()
	return nil
}

// Sync implements Device.
func (d *TrackDevice) Sync() error { return d.inner.Sync() }

// Close implements Device.
func (d *TrackDevice) Close() error { return d.inner.Close() }
