package storage

import (
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC32C polynomial table. Castagnoli is the checksum the
// format-v4 trailers use everywhere: the Go runtime dispatches it to the
// SSE4.2 / ARMv8 CRC instructions, so verifying a 4 KiB segment costs well
// under a microsecond and can sit on the buffer-pool miss path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// ChecksumUpdate continues a running CRC32C over p.
func ChecksumUpdate(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// NoCorruptSegment is the CorruptionError.Segment value for damage outside
// the index segment array (table records, the catalog, the superblock).
const NoCorruptSegment = uint32(0xFFFFFFFF)

// CorruptionError reports a checksum mismatch: the bytes at File/Offset do
// not match the CRC32C trailer the committed format-v4 metadata records for
// them. Under Options.Integrity = Strict it fails the operation; under
// DegradeReads a corrupt vector-list segment merely widens that segment's
// lower bounds to zero (see DESIGN.md §3.8), while corrupt table records and
// tuple-list segments still fail the query because refinement cannot run
// without them.
type CorruptionError struct {
	// File is the store-relative file name ("iva.idx", "table.swt",
	// "catalog.bin").
	File string
	// Offset is the byte offset of the damaged region within File.
	Offset int64
	// Segment is the index segment id, or NoCorruptSegment when the damage
	// is not inside the segment array.
	Segment uint32
	// Detail names the structure that failed verification.
	Detail string
}

func (e *CorruptionError) Error() string {
	if e.Segment != NoCorruptSegment {
		return fmt.Sprintf("storage: corruption in %s at offset %d (segment %d): %s",
			e.File, e.Offset, e.Segment, e.Detail)
	}
	return fmt.Sprintf("storage: corruption in %s at offset %d: %s", e.File, e.Offset, e.Detail)
}
