package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultPageSize is the page size used when a Pool is created with size 0.
const DefaultPageSize = 4096

// Pool is a shared LRU buffer pool over one or more paged files. The paper's
// experiments run with one 10 MB cache shared by the index file and the
// table file; a single Pool instance plays that role here.
//
// Pages are write-through: WritePage updates both the cached copy and the
// device, so a crash between Sync calls loses no committed page (the store
// above provides checkpoint consistency, not WAL recovery; see DESIGN.md §6).
type Pool struct {
	pageSize int
	capPages int
	stats    *Stats

	mu    sync.Mutex
	lru   *list.List // of *poolPage, front = most recent
	pages map[pageKey]*list.Element
	files map[uint32]*fileState
	next  uint32
}

type pageKey struct {
	file uint32
	page int64
}

type poolPage struct {
	key  pageKey
	data []byte
}

type fileState struct {
	dev      Device
	lastRead int64 // last physically read page, -1 initially
	stats    *Stats
}

// NewPool returns a pool with the given page size and total cache capacity
// in bytes. Zero values select DefaultPageSize and 10 MiB.
func NewPool(pageSize int, capBytes int64) *Pool {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if capBytes <= 0 {
		capBytes = 10 << 20
	}
	capPages := int(capBytes / int64(pageSize))
	if capPages < 4 {
		capPages = 4
	}
	return &Pool{
		pageSize: pageSize,
		capPages: capPages,
		stats:    &Stats{},
		lru:      list.New(),
		pages:    make(map[pageKey]*list.Element),
		files:    make(map[uint32]*fileState),
	}
}

// PageSize returns the pool's page size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// Stats returns the pool's I/O counters.
func (p *Pool) Stats() *Stats { return p.stats }

// Register attaches a device to the pool and returns its file handle id.
func (p *Pool) Register(dev Device) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.next
	p.next++
	p.files[id] = &fileState{dev: dev, lastRead: -1, stats: &Stats{}}
	return id
}

// FileStats returns the per-file I/O counters of a registered file, or nil if
// the id is unknown. The pointer stays valid (and frozen) after Unregister.
// Query plans use per-file deltas to attribute filter I/O (index file) and
// refine I/O (table file) exactly, even with several workers reading pages
// concurrently.
func (p *Pool) FileStats(id uint32) *Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fs, ok := p.files[id]; ok {
		return fs.stats
	}
	return nil
}

// Unregister detaches a device, dropping its cached pages. The device is not
// closed.
func (p *Pool) Unregister(id uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.files, id)
	for e := p.lru.Front(); e != nil; {
		next := e.Next()
		pg := e.Value.(*poolPage)
		if pg.key.file == id {
			p.lru.Remove(e)
			delete(p.pages, pg.key)
		}
		e = next
	}
}

// readPageLocked returns the contents of page `page` of file `id`, loading it
// from the device on a miss. The caller must hold p.mu; the returned slice is
// the cached page and is only valid while the lock is held (writePage mutates
// it in place).
func (p *Pool) readPageLocked(id uint32, page int64) ([]byte, error) {
	fs, ok := p.files[id]
	if !ok {
		return nil, fmt.Errorf("storage: unknown file %d", id)
	}
	key := pageKey{id, page}
	if e, ok := p.pages[key]; ok {
		p.lru.MoveToFront(e)
		p.stats.recordHit()
		fs.stats.recordHit()
		return e.Value.(*poolPage).data, nil
	}
	data := make([]byte, p.pageSize)
	if _, err := fs.dev.ReadAt(data, page*int64(p.pageSize)); err != nil {
		return nil, err
	}
	c := classifyRead(fs.lastRead, page)
	p.stats.recordRead(c)
	fs.stats.recordRead(c)
	fs.lastRead = page
	p.insert(key, data)
	return data, nil
}

// readInto copies the bytes of page `page` of file `id` starting at in-page
// offset `in` into dst, returning the number of bytes copied. The copy runs
// under the pool lock so a concurrent writePage to the same page can never
// tear it — this is what makes Search safe against concurrent updates.
func (p *Pool) readInto(id uint32, page int64, in int, dst []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	data, err := p.readPageLocked(id, page)
	if err != nil {
		return 0, err
	}
	return copy(dst, data[in:]), nil
}

// writePage stores data as page `page` of file `id` and writes it through to
// the device. len(data) must equal the page size.
func (p *Pool) writePage(id uint32, page int64, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("storage: writePage with %d bytes, page size %d", len(data), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fs, ok := p.files[id]
	if !ok {
		return fmt.Errorf("storage: unknown file %d", id)
	}
	if _, err := fs.dev.WriteAt(data, page*int64(p.pageSize)); err != nil {
		return err
	}
	p.stats.recordWrite()
	fs.stats.recordWrite()
	key := pageKey{id, page}
	if e, ok := p.pages[key]; ok {
		copy(e.Value.(*poolPage).data, data)
		p.lru.MoveToFront(e)
		return nil
	}
	cp := make([]byte, p.pageSize)
	copy(cp, data)
	p.insert(key, cp)
	return nil
}

// insert adds a page, evicting the LRU page if at capacity. Caller holds mu.
func (p *Pool) insert(key pageKey, data []byte) {
	for p.lru.Len() >= p.capPages {
		back := p.lru.Back()
		pg := back.Value.(*poolPage)
		p.lru.Remove(back)
		delete(p.pages, pg.key)
	}
	p.pages[key] = p.lru.PushFront(&poolPage{key: key, data: data})
}

// InvalidateFile drops all cached pages of the file (used after rebuilds
// that rewrite a device wholesale).
func (p *Pool) InvalidateFile(id uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e := p.lru.Front(); e != nil; {
		next := e.Next()
		pg := e.Value.(*poolPage)
		if pg.key.file == id {
			p.lru.Remove(e)
			delete(p.pages, pg.key)
		}
		e = next
	}
	if fs, ok := p.files[id]; ok {
		fs.lastRead = -1
	}
}

// CachedPages reports the number of pages currently resident.
func (p *Pool) CachedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
