package storage

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used when a Pool is created with size 0.
const DefaultPageSize = 4096

// minShardQuota is the smallest per-shard page quota worth striping for.
// Pools too small to give every shard this many pages collapse to fewer
// shards (down to one), so tiny test pools keep exact single-ring semantics.
const minShardQuota = 8

// Pool is a shared buffer pool over one or more paged files. The paper's
// experiments run with one 10 MB cache shared by the index file and the
// table file; a single Pool instance plays that role here.
//
// Internally the pool is striped: pages hash onto nextPow2(GOMAXPROCS×4)
// shards, each with its own lock and a CLOCK (second-chance) eviction ring,
// so parallel filter workers never serialize on one mutex (the PR-2 striped
// search made the old global-mutex LRU the scalability ceiling). The
// pool-wide byte budget is kept as per-shard page quotas; the remainder of
// the division, plus any pages a shard is forced to hold beyond its quota
// because every resident frame is pinned, are tracked in small atomic
// counters (spare / overflow).
//
// Pages are write-through: writePage updates both the device and the cached
// frame, so a crash between Sync calls loses no committed page (the store
// above provides checkpoint consistency, not WAL recovery; see DESIGN.md §6).
//
// Frames can be pinned (Get / Frame.Release): a pinned frame is never
// evicted and its bytes never change — a write to a pinned page detaches the
// old frame (copy-on-write) and installs a fresh one, so pinned readers keep
// a page-consistent snapshot. ChainBitReader decodes straight from pinned
// frames instead of copying every window.
type Pool struct {
	pageSize int
	capPages int
	stats    *Stats

	shards []*poolShard
	mask   uint64 // len(shards)-1; shard count is a power of two

	filesMu sync.RWMutex
	files   map[uint32]*fileState
	next    uint32

	spare    atomic.Int64 // unassigned page quota shards may claim
	overflow atomic.Int64 // resident ring pages beyond the byte budget
	detached atomic.Int64 // live copy-on-write / invalidated frames still pinned
	pinned   atomic.Int64 // outstanding pins (a quiesced pool must read 0)
	lockWait atomic.Int64 // contended shard-lock acquisitions
}

type pageKey struct {
	file uint32
	page int64
}

// Frame is one pinned buffer-pool page. Data stays valid and immutable until
// Release: writers never mutate a pinned frame in place (copy-on-write), and
// a pinned frame is exempt from eviction.
type Frame struct {
	key   pageKey
	shard *poolShard
	data  []byte

	// Guarded by shard.mu.
	pins  int32
	ref   bool // CLOCK reference bit
	stale bool // detached from the shard (evict-on-release)
}

// Data returns the frame's page bytes. Valid until Release.
func (f *Frame) Data() []byte { return f.data }

// Release unpins the frame. The frame's bytes must not be used afterwards.
func (f *Frame) Release() {
	sh := f.shard
	p := sh.pool
	sh.lock()
	f.pins--
	if f.pins < 0 {
		sh.unlock()
		panic("storage: Frame released more times than pinned")
	}
	p.pinned.Add(-1)
	if f.pins == 0 {
		if f.stale {
			p.detached.Add(-1)
		} else if sh.over > 0 {
			// The shard ran past its quota while this pin blocked eviction;
			// shrink back toward budget now that a frame is evictable.
			sh.reclaimLocked()
		}
	}
	sh.unlock()
}

type poolShard struct {
	pool  *Pool
	quota int // base page quota from the pool budget

	mu     sync.Mutex
	frames map[pageKey]*Frame
	ring   []*Frame // CLOCK ring; hand walks it circularly
	hand   int
	extra  int // pages claimed from pool.spare
	over   int // resident pages beyond quota+extra (pin-forced)
}

// lock acquires the shard mutex, counting contended acquisitions so the
// iva_pool_shard_lock_wait_total metric tracks striping effectiveness.
func (sh *poolShard) lock() {
	if sh.mu.TryLock() {
		return
	}
	sh.pool.lockWait.Add(1)
	sh.mu.Lock()
}

func (sh *poolShard) unlock() { sh.mu.Unlock() }

type fileState struct {
	dev      Device
	lastRead atomic.Int64 // last physically read page, -1 initially
	gone     atomic.Bool  // set by Unregister; bars late inserts
	stats    *Stats
}

// NewPool returns a pool with the given page size and total cache capacity
// in bytes. Zero values select DefaultPageSize and 10 MiB. The shard count
// is nextPow2(GOMAXPROCS×4), lowered until every shard owns at least
// minShardQuota pages.
func NewPool(pageSize int, capBytes int64) *Pool {
	return NewPoolShards(pageSize, capBytes, 0)
}

// NewPoolShards is NewPool with an explicit shard count (rounded up to a
// power of two; 0 selects the automatic count). A single shard reproduces
// the old global-lock pool's behavior exactly — benchmarks use it as the
// contention baseline.
func NewPoolShards(pageSize int, capBytes int64, shards int) *Pool {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if capBytes <= 0 {
		capBytes = 10 << 20
	}
	capPages := int(capBytes / int64(pageSize))
	if capPages < 4 {
		capPages = 4
	}
	n := shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0) * 4
	}
	n = nextPow2(n)
	for n > 1 && capPages/n < minShardQuota {
		n >>= 1
	}
	p := &Pool{
		pageSize: pageSize,
		capPages: capPages,
		stats:    &Stats{},
		shards:   make([]*poolShard, n),
		mask:     uint64(n - 1),
		files:    make(map[uint32]*fileState),
	}
	quota := capPages / n
	p.spare.Store(int64(capPages - quota*n))
	for i := range p.shards {
		p.shards[i] = &poolShard{
			pool:   p,
			quota:  quota,
			frames: make(map[pageKey]*Frame),
		}
	}
	return p
}

// nextPow2 returns the smallest power of two ≥ n (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardOf maps a page key onto its shard with a splitmix-style mix so that
// sequential pages of one file spread across shards.
func (p *Pool) shardOf(key pageKey) *poolShard {
	h := uint64(key.page)*0xBF58476D1CE4E5B9 ^ (uint64(key.file)+1)*0x94D049BB133111EB
	h ^= h >> 31
	return p.shards[h&p.mask]
}

// PageSize returns the pool's page size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// CapPages returns the pool's byte budget in pages.
func (p *Pool) CapPages() int { return p.capPages }

// ShardCount returns the number of lock stripes.
func (p *Pool) ShardCount() int { return len(p.shards) }

// Stats returns the pool's I/O counters.
func (p *Pool) Stats() *Stats { return p.stats }

// Register attaches a device to the pool and returns its file handle id.
func (p *Pool) Register(dev Device) uint32 {
	p.filesMu.Lock()
	defer p.filesMu.Unlock()
	id := p.next
	p.next++
	fs := &fileState{dev: dev, stats: &Stats{}}
	fs.lastRead.Store(-1)
	p.files[id] = fs
	return id
}

// fileState resolves a registered file, or nil.
func (p *Pool) fileState(id uint32) *fileState {
	p.filesMu.RLock()
	defer p.filesMu.RUnlock()
	return p.files[id]
}

// FileStats returns the per-file I/O counters of a registered file, or nil if
// the id is unknown. The pointer stays valid (and frozen) after Unregister.
// Query plans use per-file deltas to attribute filter I/O (index file) and
// refine I/O (table file) exactly, even with several workers reading pages
// concurrently.
func (p *Pool) FileStats(id uint32) *Stats {
	if fs := p.fileState(id); fs != nil {
		return fs.stats
	}
	return nil
}

// Unregister detaches a device, dropping its cached pages across all shards.
// The device is not closed. Pinned frames of the file are detached, not
// freed: their readers keep a stable snapshot until Release.
func (p *Pool) Unregister(id uint32) {
	p.filesMu.Lock()
	fs := p.files[id]
	delete(p.files, id)
	p.filesMu.Unlock()
	if fs != nil {
		fs.gone.Store(true)
	}
	p.dropFilePages(id)
}

// InvalidateFile drops all cached pages of the file (used after rebuilds
// that rewrite a device wholesale).
func (p *Pool) InvalidateFile(id uint32) {
	p.dropFilePages(id)
	if fs := p.fileState(id); fs != nil {
		fs.lastRead.Store(-1)
	}
}

// dropFilePages sweeps every shard, removing the file's frames. Shards are
// locked one at a time; the pool never holds two shard locks at once.
func (p *Pool) dropFilePages(id uint32) {
	for _, sh := range p.shards {
		sh.lock()
		for key, fr := range sh.frames {
			if key.file != id {
				continue
			}
			sh.detachLocked(fr)
		}
		sh.syncOverLocked()
		sh.unlock()
	}
}

// detachLocked removes a frame from the shard's map and ring. A pinned frame
// stays alive (stale, counted in detached) until its last Release.
func (sh *poolShard) detachLocked(fr *Frame) {
	delete(sh.frames, fr.key)
	sh.ringRemoveLocked(fr)
	if fr.pins > 0 {
		fr.stale = true
		sh.pool.detached.Add(1)
	}
}

func (sh *poolShard) ringRemoveLocked(fr *Frame) {
	for i, g := range sh.ring {
		if g == fr {
			last := len(sh.ring) - 1
			sh.ring[i] = sh.ring[last]
			sh.ring[last] = nil
			sh.ring = sh.ring[:last]
			if sh.hand >= len(sh.ring) {
				sh.hand = 0
			}
			return
		}
	}
}

// syncOverLocked reconciles the shard's over-budget count (and the pool's
// atomic overflow total) with the current ring occupancy.
func (sh *poolShard) syncOverLocked() {
	over := len(sh.ring) - (sh.quota + sh.extra)
	if over < 0 {
		over = 0
	}
	if over != sh.over {
		sh.pool.overflow.Add(int64(over - sh.over))
		sh.over = over
	}
}

// evictOneLocked runs the CLOCK hand: skip pinned frames, give referenced
// frames a second chance, evict the first unpinned unreferenced frame. Two
// full sweeps guarantee progress when any frame is evictable.
func (sh *poolShard) evictOneLocked() bool {
	n := len(sh.ring)
	for i := 0; i < 2*n; i++ {
		fr := sh.ring[sh.hand]
		if fr.pins > 0 {
			sh.hand = (sh.hand + 1) % len(sh.ring)
			continue
		}
		if fr.ref {
			fr.ref = false
			sh.hand = (sh.hand + 1) % len(sh.ring)
			continue
		}
		delete(sh.frames, fr.key)
		sh.ringRemoveLocked(fr)
		return true
	}
	return false
}

// ensureRoomLocked makes space for one more resident page: evict if
// possible, claim a spare quota page otherwise, and as a last resort (every
// frame pinned) run over budget, counted in the overflow gauge.
func (sh *poolShard) ensureRoomLocked() {
	for len(sh.ring) >= sh.quota+sh.extra {
		if sh.evictOneLocked() {
			continue
		}
		if sh.pool.takeSpare() {
			sh.extra++
			continue
		}
		break // pin-forced overflow; syncOverLocked accounts for it
	}
}

// reclaimLocked evicts back down to quota after pin-forced overflow.
func (sh *poolShard) reclaimLocked() {
	for len(sh.ring) > sh.quota+sh.extra {
		if !sh.evictOneLocked() {
			break
		}
	}
	sh.syncOverLocked()
}

func (p *Pool) takeSpare() bool {
	for {
		v := p.spare.Load()
		if v <= 0 {
			return false
		}
		if p.spare.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// loadLocked reads page `key.page` from the device straight into a fresh
// frame and installs it. On a failed device read nothing changes: no frame
// is inserted, no counter moves, and the file's read-position is not
// advanced (a failed miss must not promote the key or skew the seq/near/rand
// classification — see TestPoolFailedRead*).
func (sh *poolShard) loadLocked(fs *fileState, key pageKey) (*Frame, error) {
	p := sh.pool
	data := make([]byte, p.pageSize)
	if _, err := fs.dev.ReadAt(data, key.page*int64(p.pageSize)); err != nil {
		return nil, err
	}
	if fs.gone.Load() {
		// Unregistered while we were reading: serve nothing rather than
		// resurrect a page the sweep may already have dropped.
		return nil, fmt.Errorf("storage: unknown file %d", key.file)
	}
	c := classifyRead(fs.lastRead.Swap(key.page), key.page)
	p.stats.recordRead(c)
	fs.stats.recordRead(c)
	fr := &Frame{key: key, shard: sh, data: data, ref: true}
	sh.ensureRoomLocked()
	sh.frames[key] = fr
	sh.ring = append(sh.ring, fr)
	sh.syncOverLocked()
	return fr, nil
}

// Get returns the frame of page `page` of file `id`, pinned. The caller must
// Release it; until then the frame's bytes are stable (writes to the page
// install a fresh frame instead of mutating a pinned one) and the frame is
// exempt from eviction.
func (p *Pool) Get(id uint32, page int64) (*Frame, error) {
	fs := p.fileState(id)
	if fs == nil {
		return nil, fmt.Errorf("storage: unknown file %d", id)
	}
	key := pageKey{id, page}
	sh := p.shardOf(key)
	sh.lock()
	fr, ok := sh.frames[key]
	if ok {
		p.stats.recordHit()
		fs.stats.recordHit()
	} else {
		var err error
		if fr, err = sh.loadLocked(fs, key); err != nil {
			sh.unlock()
			return nil, err
		}
	}
	fr.pins++
	fr.ref = true
	p.pinned.Add(1)
	sh.unlock()
	return fr, nil
}

// readInto copies the bytes of page `page` of file `id` starting at in-page
// offset `in` into dst, returning the number of bytes copied. The single
// copy runs under the page's shard lock, so a concurrent writePage to the
// same page can never tear it — this is what makes Search safe against
// concurrent updates. (On a miss the device reads directly into the frame
// that will be cached; the old pool staged misses through a scratch buffer,
// copying every missed page twice.)
func (p *Pool) readInto(id uint32, page int64, in int, dst []byte) (int, error) {
	fs := p.fileState(id)
	if fs == nil {
		return 0, fmt.Errorf("storage: unknown file %d", id)
	}
	key := pageKey{id, page}
	sh := p.shardOf(key)
	sh.lock()
	fr, ok := sh.frames[key]
	if ok {
		p.stats.recordHit()
		fs.stats.recordHit()
		fr.ref = true
	} else {
		var err error
		if fr, err = sh.loadLocked(fs, key); err != nil {
			sh.unlock()
			return 0, err
		}
	}
	n := copy(dst, fr.data[in:])
	sh.unlock()
	return n, nil
}

// writePage stores data as page `page` of file `id` and writes it through to
// the device. len(data) must equal the page size. If the resident frame is
// pinned, it is detached and a fresh frame installed (copy-on-write), so
// pinned readers keep their snapshot; an unpinned frame is updated in place.
func (p *Pool) writePage(id uint32, page int64, data []byte) error {
	if len(data) != p.pageSize {
		return fmt.Errorf("storage: writePage with %d bytes, page size %d", len(data), p.pageSize)
	}
	fs := p.fileState(id)
	if fs == nil {
		return fmt.Errorf("storage: unknown file %d", id)
	}
	key := pageKey{id, page}
	sh := p.shardOf(key)
	sh.lock()
	defer sh.unlock()
	// Device first, under the shard lock: a failed write leaves the cache
	// untouched, and two racing writers cannot publish device and cache
	// states in opposite orders.
	if _, err := fs.dev.WriteAt(data, page*int64(p.pageSize)); err != nil {
		return err
	}
	p.stats.recordWrite()
	fs.stats.recordWrite()
	if fr, ok := sh.frames[key]; ok {
		if fr.pins == 0 {
			copy(fr.data, data)
			fr.ref = true
			return nil
		}
		sh.detachLocked(fr)
	}
	cp := make([]byte, p.pageSize)
	copy(cp, data)
	fr := &Frame{key: key, shard: sh, data: cp, ref: true}
	sh.ensureRoomLocked()
	sh.frames[key] = fr
	sh.ring = append(sh.ring, fr)
	sh.syncOverLocked()
	return nil
}

// CachedPages reports the number of pages currently resident in rings
// (detached pinned frames excluded).
func (p *Pool) CachedPages() int {
	n := 0
	for _, sh := range p.shards {
		sh.lock()
		n += len(sh.ring)
		sh.unlock()
	}
	return n
}

// ShardResident reports the resident page count of one shard.
func (p *Pool) ShardResident(i int) int {
	sh := p.shards[i]
	sh.lock()
	defer sh.unlock()
	return len(sh.ring)
}

// PinnedFrames reports the number of outstanding pins. A quiesced pool must
// read 0; a stuck nonzero value is a pin leak.
func (p *Pool) PinnedFrames() int64 { return p.pinned.Load() }

// OverflowPages reports how many pages the pool holds beyond its byte
// budget: ring pages pins forced past the quota, plus detached
// (copy-on-write or invalidated) frames still held by pinned readers. It is
// bounded by the number of outstanding pins and returns to 0 as they are
// released.
func (p *Pool) OverflowPages() int64 { return p.overflow.Load() + p.detached.Load() }

// LockWaits reports how many shard-lock acquisitions found the lock already
// held — the pool's contention signal.
func (p *Pool) LockWaits() int64 { return p.lockWait.Load() }
