package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// The iVA-file keeps one vector list per attribute plus a tuple list, and
// §IV-B appends new elements at each list's tail. A flat file cannot grow
// more than one region at its end, so lists are stored as chains of
// fixed-size segments (extents): each segment carries a header pointing to
// the next segment of the same chain, and a chain exposes its payload bytes
// as one contiguous logical stream.

// SegID identifies a segment within a SegStore. Segment 0 is valid; the
// sentinel NoSegment terminates a chain.
type SegID uint32

// NoSegment is the nil segment pointer.
const NoSegment SegID = 0xFFFFFFFF

// ChainID names a chain by its head segment.
type ChainID = SegID

const segHeaderLen = 8 // next SegID (4 bytes) + magic/reserved (4 bytes)

const segMagic = 0x53474D54 // "SGMT"

// SegStore allocates fixed-size segments inside a File and stitches them
// into independently growable chains.
type SegStore struct {
	f       *File
	segSize int // total segment size including header
	base    int64

	mu     sync.Mutex
	nseg   int64               // segments allocated (derived from file size)
	chains map[ChainID][]SegID // lazily loaded chain → ordered segments
	tails  map[ChainID]SegID   // chain → last segment

	// onWrite, when set, observes every segment whose payload bytes are
	// written. The index integrity layer uses it to mark segments dirty so
	// the next Sync recomputes their CRC32C words.
	onWrite func(SegID)
}

// NewSegStore lays segments of segSize bytes inside f starting at byte
// offset base (the region before base is the caller's superblock).
// segSize must exceed the header length; typical values are 16–64 KiB.
func NewSegStore(f *File, base int64, segSize int) (*SegStore, error) {
	if segSize <= segHeaderLen+8 {
		return nil, fmt.Errorf("storage: segment size %d too small", segSize)
	}
	s := &SegStore{
		f:       f,
		segSize: segSize,
		base:    base,
		chains:  make(map[ChainID][]SegID),
		tails:   make(map[ChainID]SegID),
	}
	if sz := f.Size(); sz > base {
		s.nseg = (sz - base + int64(segSize) - 1) / int64(segSize)
	}
	return s, nil
}

// PayloadSize returns the usable bytes per segment.
func (s *SegStore) PayloadSize() int { return s.segSize - segHeaderLen }

// File returns the file the segments live in (for per-file I/O attribution).
func (s *SegStore) File() *File { return s.f }

// SegmentSize returns the full segment size including its header.
func (s *SegStore) SegmentSize() int { return s.segSize }

// Segments returns the number of segments allocated so far.
func (s *SegStore) Segments() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nseg
}

// SetWriteObserver installs fn to be called with the id of every segment
// whose payload bytes are subsequently written. Pass nil to remove it.
func (s *SegStore) SetWriteObserver(fn func(SegID)) {
	s.mu.Lock()
	s.onWrite = fn
	s.mu.Unlock()
}

// ChainSegments returns chain c's segments in logical order. The returned
// slice is shared with the store's cache and must not be modified; it is
// stable for as long as the caller prevents concurrent appends (the index
// holds its own lock across a query).
func (s *SegStore) ChainSegments(c ChainID) ([]SegID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked(c)
}

// SegmentOffset returns the file byte offset of segment id's header.
func (s *SegStore) SegmentOffset(id SegID) int64 { return s.segOffset(id) }

// ReadSegmentPayload reads the first len(p) payload bytes of segment id,
// regardless of which chain it belongs to. The integrity layer uses it to
// recompute and verify per-segment checksums.
func (s *SegStore) ReadSegmentPayload(id SegID, p []byte) error {
	if len(p) > s.PayloadSize() {
		return fmt.Errorf("storage: payload read of %d exceeds segment size", len(p))
	}
	return s.f.ReadAt(p, s.segOffset(id)+segHeaderLen)
}

func (s *SegStore) segOffset(id SegID) int64 {
	return s.base + int64(id)*int64(s.segSize)
}

// allocLocked appends a fresh segment with no successor. Caller holds mu.
func (s *SegStore) allocLocked() (SegID, error) {
	id := SegID(s.nseg)
	if id >= NoSegment {
		return 0, fmt.Errorf("storage: segment space exhausted")
	}
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(NoSegment))
	binary.LittleEndian.PutUint32(hdr[4:8], segMagic)
	if err := s.f.WriteAt(hdr[:], s.segOffset(id)); err != nil {
		return 0, err
	}
	s.nseg++
	return id, nil
}

func (s *SegStore) readNext(id SegID) (SegID, error) {
	var hdr [segHeaderLen]byte
	if err := s.f.ReadAt(hdr[:], s.segOffset(id)); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[4:8]) != segMagic {
		return 0, fmt.Errorf("storage: segment %d has bad magic", id)
	}
	return SegID(binary.LittleEndian.Uint32(hdr[0:4])), nil
}

func (s *SegStore) writeNext(id, next SegID) error {
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(next))
	binary.LittleEndian.PutUint32(hdr[4:8], segMagic)
	return s.f.WriteAt(hdr[:], s.segOffset(id))
}

// Create starts a new chain and returns its id.
func (s *SegStore) Create() (ChainID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.allocLocked()
	if err != nil {
		return 0, err
	}
	s.chains[id] = []SegID{id}
	s.tails[id] = id
	return id, nil
}

// loadLocked materializes the segment list of chain c. Caller holds mu.
func (s *SegStore) loadLocked(c ChainID) ([]SegID, error) {
	if segs, ok := s.chains[c]; ok {
		return segs, nil
	}
	var segs []SegID
	for cur := c; cur != NoSegment; {
		segs = append(segs, cur)
		next, err := s.readNext(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	s.chains[c] = segs
	s.tails[c] = segs[len(segs)-1]
	return segs, nil
}

// Len returns the allocated payload capacity of chain c in bytes.
func (s *SegStore) Len(c ChainID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := s.loadLocked(c)
	if err != nil {
		return 0, err
	}
	return int64(len(segs)) * int64(s.PayloadSize()), nil
}

// ReadAt fills p from chain c's logical payload stream starting at off.
// Reading past the allocated capacity is an error.
func (s *SegStore) ReadAt(c ChainID, p []byte, off int64) error {
	s.mu.Lock()
	segs, err := s.loadLocked(c)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	pay := int64(s.PayloadSize())
	for len(p) > 0 {
		idx := off / pay
		if idx >= int64(len(segs)) {
			return fmt.Errorf("storage: read past chain %d capacity", c)
		}
		in := off % pay
		n := int(pay - in)
		if n > len(p) {
			n = len(p)
		}
		at := s.segOffset(segs[idx]) + segHeaderLen + in
		if err := s.f.ReadAt(p[:n], at); err != nil {
			return err
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// PinView pins the page under logical payload offset off of chain c and
// returns the contiguous run of payload bytes starting there — bounded by
// the end of the segment and the end of the page — plus the pinned frame.
// The caller must Release the frame when done with the bytes.
func (s *SegStore) PinView(c ChainID, off int64) (*Frame, []byte, error) {
	s.mu.Lock()
	segs, err := s.loadLocked(c)
	s.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	pay := int64(s.PayloadSize())
	idx := off / pay
	if idx >= int64(len(segs)) {
		return nil, nil, fmt.Errorf("storage: pin past chain %d capacity", c)
	}
	in := off % pay
	fr, b, err := s.f.PinPage(s.segOffset(segs[idx]) + segHeaderLen + in)
	if err != nil {
		return nil, nil, err
	}
	if run := pay - in; int64(len(b)) > run {
		b = b[:run]
	}
	return fr, b, nil
}

// WriteAt writes p into chain c's logical payload stream at off, extending
// the chain with fresh segments as needed.
func (s *SegStore) WriteAt(c ChainID, p []byte, off int64) error {
	s.mu.Lock()
	segs, err := s.loadLocked(c)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	pay := int64(s.PayloadSize())
	need := (off + int64(len(p)) + pay - 1) / pay
	for int64(len(segs)) < need {
		ns, err := s.allocLocked()
		if err != nil {
			s.mu.Unlock()
			return err
		}
		tail := segs[len(segs)-1]
		if err := s.writeNext(tail, ns); err != nil {
			s.mu.Unlock()
			return err
		}
		segs = append(segs, ns)
	}
	s.chains[c] = segs
	s.tails[c] = segs[len(segs)-1]
	obs := s.onWrite
	s.mu.Unlock()

	for len(p) > 0 {
		idx := off / pay
		in := off % pay
		n := int(pay - in)
		if n > len(p) {
			n = len(p)
		}
		at := s.segOffset(segs[idx]) + segHeaderLen + in
		if err := s.f.WriteAt(p[:n], at); err != nil {
			return err
		}
		if obs != nil {
			obs(segs[idx])
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// Forget drops in-memory chain caches (used after a rebuild replaces the
// underlying file contents).
func (s *SegStore) Forget() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chains = make(map[ChainID][]SegID)
	s.tails = make(map[ChainID]SegID)
	if sz := s.f.Size(); sz > s.base {
		s.nseg = (sz - s.base + int64(s.segSize) - 1) / int64(s.segSize)
	} else {
		s.nseg = 0
	}
}
