package storage

import (
	"encoding/binary"
	"fmt"
)

// ChainBitReader reads a bit-packed stream stored in a segment chain. Its
// window is normally a pinned buffer-pool frame: the reader decodes straight
// from the cached page with zero copies, and the pin guarantees the bytes
// stay stable (writers copy-on-write around pinned frames). Near segment or
// page seams, where the contiguous run is too short to be worth pinning, it
// falls back to copying a small stitch buffer.
type ChainBitReader struct {
	s      *SegStore
	c      ChainID
	bitLen int64 // total readable bits

	buf      []byte // current window: pinned page view or own[:n]
	bufStart int64  // logical byte offset of buf[0]; -1 when empty
	pin      *Frame // non-nil while buf aliases a pinned frame
	own      []byte // lazily allocated seam-stitching buffer
	pos      int64  // current bit position

	// verify, when set, is called before a fresh window over logical bytes
	// [off, off+n) is handed to the decoder. The index integrity layer hooks
	// it to checksum each segment on first touch; a non-nil return aborts
	// the read with that error (typically a *CorruptionError).
	verify func(off, n int64) error
}

// minPinRun is the shortest contiguous run worth pinning as a window; any
// shorter remainder before a segment/page seam is stitched through `own`.
const minPinRun = 64

// stitchWindow is the size of the copying fallback window at seams.
const stitchWindow = 256

// NewChainBitReader returns a reader over the first bitLen bits of chain c.
// Callers must Close the reader (or Reset it away) to release its pinned
// window; an abandoned reader holds one page pinned until then.
func NewChainBitReader(s *SegStore, c ChainID, bitLen int64) *ChainBitReader {
	return &ChainBitReader{s: s, c: c, bitLen: bitLen, bufStart: -1}
}

// Reset rebinds the reader to a (possibly different) chain at bit position 0,
// releasing the current window pin but keeping the stitch buffer. Parallel
// scan workers use it to reopen cursors at stripe checkpoints without
// reallocating.
func (r *ChainBitReader) Reset(s *SegStore, c ChainID, bitLen int64) {
	r.drop()
	r.s, r.c, r.bitLen = s, c, bitLen
	r.pos = 0
}

// Close releases the reader's pinned window. The reader stays usable (the
// next read re-pins), so pooled readers Close between queries to avoid
// holding pages pinned while idle.
func (r *ChainBitReader) Close() { r.drop() }

// SetVerify installs (or clears) the window-verification hook.
func (r *ChainBitReader) SetVerify(fn func(off, n int64) error) { r.verify = fn }

func (r *ChainBitReader) drop() {
	if r.pin != nil {
		r.pin.Release()
		r.pin = nil
	}
	r.buf, r.bufStart = nil, -1
}

// refill positions the window at byteOff: pin the page under it when the
// contiguous run is long enough, otherwise stitch across the seam by
// copying.
func (r *ChainBitReader) refill(byteOff int64) error {
	capBytes, err := r.s.Len(r.c)
	if err != nil {
		return err
	}
	if byteOff >= capBytes {
		return fmt.Errorf("storage: bit read past chain capacity")
	}
	r.drop()
	fr, view, err := r.s.PinView(r.c, byteOff)
	if err != nil {
		return err
	}
	if len(view) >= minPinRun || int64(len(view)) >= capBytes-byteOff {
		if r.verify != nil {
			if err := r.verify(byteOff, int64(len(view))); err != nil {
				fr.Release()
				return err
			}
		}
		r.pin, r.buf, r.bufStart = fr, view, byteOff
		return nil
	}
	fr.Release()
	if r.own == nil {
		r.own = make([]byte, stitchWindow)
	}
	want := int64(len(r.own))
	if want > capBytes-byteOff {
		want = capBytes - byteOff
	}
	if r.verify != nil {
		if err := r.verify(byteOff, want); err != nil {
			return err
		}
	}
	if err := r.s.ReadAt(r.c, r.own[:want], byteOff); err != nil {
		return err
	}
	r.buf, r.bufStart = r.own[:want], byteOff
	return nil
}

// BitLen returns the stream length in bits.
func (r *ChainBitReader) BitLen() int64 { return r.bitLen }

// Pos returns the current bit position.
func (r *ChainBitReader) Pos() int64 { return r.pos }

// Remaining returns the unread bit count.
func (r *ChainBitReader) Remaining() int64 { return r.bitLen - r.pos }

// SeekBit positions the reader at the absolute bit offset.
func (r *ChainBitReader) SeekBit(off int64) error {
	if off < 0 || off > r.bitLen {
		return fmt.Errorf("storage: bit seek %d outside [0,%d]", off, r.bitLen)
	}
	r.pos = off
	return nil
}

// SkipBits advances the position.
func (r *ChainBitReader) SkipBits(n int64) error {
	return r.SeekBit(r.pos + n)
}

func (r *ChainBitReader) byteAt(byteOff int64) (byte, error) {
	if r.bufStart < 0 || byteOff < r.bufStart || byteOff >= r.bufStart+int64(len(r.buf)) {
		if err := r.refill(byteOff); err != nil {
			return 0, err
		}
	}
	return r.buf[byteOff-r.bufStart], nil
}

// ReadBits reads width (≤64) bits MSB-first.
//
// When the buffered window holds the next 9 bytes, the value is assembled
// with one unaligned-safe 64-bit load instead of the per-byte loop — the
// word-at-a-time fast path the tuple-list and vector-list scans live on.
func (r *ChainBitReader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("storage: invalid bit width %d", width))
	}
	if r.pos+int64(width) > r.bitLen {
		return 0, fmt.Errorf("storage: bit read past end (pos=%d width=%d len=%d)", r.pos, width, r.bitLen)
	}
	if byteOff := r.pos >> 3; r.bufStart >= 0 && byteOff >= r.bufStart &&
		byteOff+9 <= r.bufStart+int64(len(r.buf)) {
		b := r.buf[byteOff-r.bufStart:]
		x := binary.BigEndian.Uint64(b)
		if off := r.pos & 7; off > 0 {
			x = x<<off | uint64(b[8])>>(8-off)
		}
		r.pos += int64(width)
		return x >> (64 - uint(width)), nil
	}
	var v uint64
	for width > 0 {
		b, err := r.byteAt(r.pos >> 3)
		if err != nil {
			return 0, err
		}
		off := int(r.pos & 7)
		room := 8 - off
		take := width
		if take > room {
			take = room
		}
		chunk := (b >> (room - take)) & (1<<take - 1)
		v = v<<take | uint64(chunk)
		r.pos += int64(take)
		width -= take
	}
	return v, nil
}

// ReadWords reads width bits into dst using the bitio word layout (bit i of
// the stream is bit 63-i%64 of dst[i/64]).
func (r *ChainBitReader) ReadWords(dst []uint64, width int) error {
	i := 0
	for width >= 64 {
		v, err := r.ReadBits(64)
		if err != nil {
			return err
		}
		dst[i] = v
		i++
		width -= 64
	}
	if width > 0 {
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		dst[i] = v << (64 - width)
	}
	return nil
}

// SetBitLen grows the readable region (after a tail append).
func (r *ChainBitReader) SetBitLen(n int64) { r.bitLen = n }

// WriteBitsAt overwrites `width` bits (≤64) of chain c at absolute bit
// offset off with the low bits of v (MSB-first). The chain must already
// cover the range. Used to tombstone tuple-list ptrs in place (§IV-B
// deletion).
func WriteBitsAt(s *SegStore, c ChainID, off int64, v uint64, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("storage: invalid width %d", width)
	}
	startByte := off >> 3
	endByte := (off + int64(width) + 7) >> 3
	buf := make([]byte, endByte-startByte)
	if err := s.ReadAt(c, buf, startByte); err != nil {
		return err
	}
	for i := 0; i < width; i++ {
		p := int(off&7) + i
		bit := (v >> uint(width-1-i)) & 1
		mask := byte(1) << (7 - uint(p&7))
		if bit != 0 {
			buf[p>>3] |= mask
		} else {
			buf[p>>3] &^= mask
		}
	}
	return s.WriteAt(c, buf, startByte)
}

// AppendBits appends the first nbits of src (a bitio.Writer buffer) to chain
// c whose current bit length is bitLen, and returns the new bit length. The
// first appended byte is merged with the stream's trailing partial byte.
func AppendBits(s *SegStore, c ChainID, bitLen int64, src []byte, nbits int) (int64, error) {
	if nbits == 0 {
		return bitLen, nil
	}
	startByte := bitLen >> 3
	rem := int(bitLen & 7)
	if rem == 0 {
		// Byte-aligned: write src directly.
		n := (nbits + 7) / 8
		if err := s.WriteAt(c, src[:n], startByte); err != nil {
			return 0, err
		}
		return bitLen + int64(nbits), nil
	}
	// Merge: shift src right by rem bits and OR into the trailing byte.
	var last [1]byte
	if err := s.ReadAt(c, last[:], startByte); err != nil {
		return 0, err
	}
	total := rem + nbits
	out := make([]byte, (total+7)/8)
	out[0] = last[0] & (0xFF << (8 - rem)) // keep existing high bits
	for i := 0; i < nbits; i++ {
		bit := (src[i>>3] >> (7 - uint(i&7))) & 1
		if bit != 0 {
			p := rem + i
			out[p>>3] |= 1 << (7 - uint(p&7))
		}
	}
	if err := s.WriteAt(c, out, startByte); err != nil {
		return 0, err
	}
	return bitLen + int64(nbits), nil
}
