package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestMemDeviceReadBeyondSize(t *testing.T) {
	d := NewMemDevice()
	if _, err := d.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 8)
	if _, err := d.ReadAt(p, 1); err != nil {
		t.Fatal(err)
	}
	want := []byte{2, 3, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(p, want) {
		t.Fatalf("got %v want %v", p, want)
	}
}

func TestMemDeviceSparseWrite(t *testing.T) {
	d := NewMemDevice()
	if _, err := d.WriteAt([]byte{9}, 100); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 101 {
		t.Fatalf("Size = %d, want 101", d.Size())
	}
	p := make([]byte, 2)
	d.ReadAt(p, 99)
	if p[0] != 0 || p[1] != 9 {
		t.Fatalf("got %v", p)
	}
}

func TestMemDeviceTruncate(t *testing.T) {
	d := NewMemDevice()
	d.WriteAt([]byte{1, 2, 3, 4}, 0)
	if err := d.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if err := d.Truncate(4); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 4)
	d.ReadAt(p, 0)
	if !bytes.Equal(p, []byte{1, 2, 0, 0}) {
		t.Fatalf("got %v", p)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.bin")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.WriteAt([]byte("hello world"), 3); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 16)
	if _, err := d.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if string(p[3:14]) != "hello world" {
		t.Fatalf("got %q", p)
	}
	if d.Size() != 14 {
		t.Fatalf("Size = %d, want 14", d.Size())
	}
}

func TestFileDeviceReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.bin")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	d.WriteAt([]byte{7, 8, 9}, 0)
	d.Close()
	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Size() != 3 {
		t.Fatalf("reopened Size = %d", d2.Size())
	}
	p := make([]byte, 3)
	d2.ReadAt(p, 0)
	if !bytes.Equal(p, []byte{7, 8, 9}) {
		t.Fatalf("got %v", p)
	}
}

func TestPoolCachingAndStats(t *testing.T) {
	pool := NewPool(64, 64*8)
	dev := NewMemDevice()
	f := NewFile(pool, dev)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	pool.Stats().Reset()
	p := make([]byte, 256)
	if err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data) {
		t.Fatal("read mismatch")
	}
	s := pool.Stats().Snapshot()
	// All 4 pages were cached by the write-through, so reads must be hits.
	if s.PhysReads != 0 || s.CacheHits != 4 {
		t.Fatalf("stats = %+v, want 0 physical reads, 4 hits", s)
	}
}

func TestPoolEvictionLRU(t *testing.T) {
	pool := NewPool(64, 64*4) // capacity: 4 pages
	dev := NewMemDevice()
	f := NewFile(pool, dev)
	data := make([]byte, 64*8)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if pool.CachedPages() != 4 {
		t.Fatalf("CachedPages = %d, want 4", pool.CachedPages())
	}
	pool.Stats().Reset()
	// Page 0 was evicted; reading it must be a physical read.
	p := make([]byte, 64)
	if err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	s := pool.Stats().Snapshot()
	if s.PhysReads != 1 {
		t.Fatalf("PhysReads = %d, want 1", s.PhysReads)
	}
	if !bytes.Equal(p, data[:64]) {
		t.Fatal("evicted page content wrong after reload")
	}
}

func TestSequentialVsRandomClassification(t *testing.T) {
	pool := NewPool(64, 64*2) // tiny cache to force physical reads
	dev := NewMemDevice()
	f := NewFile(pool, dev)
	f.WriteAt(make([]byte, 64*10), 0)
	pool.InvalidateFile(f.id)
	pool.Stats().Reset()

	p := make([]byte, 64)
	// Sequential: pages 0,1,2,3.
	for page := int64(0); page < 4; page++ {
		f.ReadAt(p, page*64)
	}
	s := pool.Stats().Snapshot()
	// First read (page 0 after lastRead=-1) is sequential (0 == -1+1).
	if s.SeqReads != 4 || s.RandReads != 0 {
		t.Fatalf("sequential run: %+v", s)
	}
	pool.Stats().Reset()
	f.ReadAt(p, 9*64) // short forward jump: near
	f.ReadAt(p, 5*64) // backward jump: random
	s = pool.Stats().Snapshot()
	if s.NearReads != 1 || s.RandReads != 1 {
		t.Fatalf("jump run: %+v", s)
	}
}

func TestClassifyRead(t *testing.T) {
	cases := []struct {
		last, page int64
		want       readClass
	}{
		{-1, 0, readSeq},
		{10, 11, readSeq},
		{10, 12, readNear},
		{10, 10 + nearWindow, readNear},
		{10, 11 + nearWindow, readRand},
		{10, 10, readRand}, // reread after eviction: rotational wait
		{10, 3, readRand},  // backward
	}
	for _, c := range cases {
		if got := classifyRead(c.last, c.page); got != c.want {
			t.Errorf("classifyRead(%d,%d) = %d, want %d", c.last, c.page, got, c.want)
		}
	}
}

func TestFilePartialPageWrite(t *testing.T) {
	pool := NewPool(64, 1<<16)
	f := NewFile(pool, NewMemDevice())
	f.WriteAt([]byte("aaaaaaaa"), 0)
	f.WriteAt([]byte("bb"), 3)
	p := make([]byte, 8)
	f.ReadAt(p, 0)
	if string(p) != "aaabbaaa" {
		t.Fatalf("got %q", p)
	}
}

func TestFileAppend(t *testing.T) {
	pool := NewPool(64, 1<<16)
	f := NewFile(pool, NewMemDevice())
	off1, err := f.Append([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	off2, err := f.Append([]byte("defg"))
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 || off2 != 3 {
		t.Fatalf("offsets %d,%d", off1, off2)
	}
	if f.Size() != 7 {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestSegStoreChains(t *testing.T) {
	pool := NewPool(256, 1<<20)
	f := NewFile(pool, NewMemDevice())
	s, err := NewSegStore(f, 0, 64) // payload 56
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.Create()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Create()
	if err != nil {
		t.Fatal(err)
	}
	// Interleave writes so the chains' segments interleave in the file.
	d1 := make([]byte, 200)
	d2 := make([]byte, 150)
	for i := range d1 {
		d1[i] = byte(i)
	}
	for i := range d2 {
		d2[i] = byte(255 - i)
	}
	if err := s.WriteAt(c1, d1[:100], 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(c2, d2[:100], 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(c1, d1[100:], 100); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(c2, d2[100:], 100); err != nil {
		t.Fatal(err)
	}
	got1 := make([]byte, 200)
	got2 := make([]byte, 150)
	if err := s.ReadAt(c1, got1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(c2, got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, d1) || !bytes.Equal(got2, d2) {
		t.Fatal("interleaved chain content mismatch")
	}
}

func TestSegStoreReload(t *testing.T) {
	pool := NewPool(256, 1<<20)
	dev := NewMemDevice()
	f := NewFile(pool, dev)
	s, _ := NewSegStore(f, 0, 64)
	c, _ := s.Create()
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly and at length")
	if err := s.WriteAt(c, data, 0); err != nil {
		t.Fatal(err)
	}
	// Re-open: a fresh SegStore over the same file must walk the chain.
	s2, _ := NewSegStore(f, 0, 64)
	got := make([]byte, len(data))
	if err := s2.ReadAt(c, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if s2.Segments() != s.Segments() {
		t.Fatalf("segment counts differ: %d vs %d", s2.Segments(), s.Segments())
	}
}

func TestSegStoreReadPastCapacity(t *testing.T) {
	pool := NewPool(256, 1<<20)
	s, _ := NewSegStore(NewFile(pool, NewMemDevice()), 0, 64)
	c, _ := s.Create()
	p := make([]byte, 100)
	if err := s.ReadAt(c, p, 0); err == nil {
		t.Fatal("read past capacity succeeded")
	}
}

func TestChainBitRoundTrip(t *testing.T) {
	pool := NewPool(256, 1<<20)
	s, _ := NewSegStore(NewFile(pool, NewMemDevice()), 0, 64)
	c, _ := s.Create()

	rng := rand.New(rand.NewSource(42))
	type field struct {
		v     uint64
		width int
	}
	var fields []field
	var bitLen int64
	// Append in several batches to exercise partial-byte merging.
	for batch := 0; batch < 20; batch++ {
		var buf []byte
		var nbits int
		var bw bitWriter
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			width := 1 + rng.Intn(64)
			v := rng.Uint64()
			if width < 64 {
				v &= 1<<width - 1
			}
			fields = append(fields, field{v, width})
			bw.writeBits(v, width)
		}
		buf, nbits = bw.buf, bw.n
		var err error
		bitLen, err = AppendBits(s, c, bitLen, buf, nbits)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	r := NewChainBitReader(s, c, bitLen)
	for i, fd := range fields {
		got, err := r.ReadBits(fd.width)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if got != fd.v {
			t.Fatalf("field %d: got %x want %x (width %d)", i, got, fd.v, fd.width)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits remain", r.Remaining())
	}
}

func TestChainBitReaderSeek(t *testing.T) {
	pool := NewPool(256, 1<<20)
	s, _ := NewSegStore(NewFile(pool, NewMemDevice()), 0, 64)
	c, _ := s.Create()
	var bw bitWriter
	for i := 0; i < 100; i++ {
		bw.writeBits(uint64(i), 13)
	}
	bitLen, err := AppendBits(s, c, 0, bw.buf, bw.n)
	if err != nil {
		t.Fatal(err)
	}
	r := NewChainBitReader(s, c, bitLen)
	if err := r.SeekBit(13 * 57); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(13)
	if err != nil || v != 57 {
		t.Fatalf("v=%d err=%v, want 57", v, err)
	}
}

// bitWriter is a minimal MSB-first writer local to the tests (mirrors
// bitio.Writer without importing it, keeping this package's tests
// self-contained).
type bitWriter struct {
	buf []byte
	n   int
}

func (w *bitWriter) writeBits(v uint64, width int) {
	for i := width - 1; i >= 0; i-- {
		if w.n&7 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v>>uint(i)&1 != 0 {
			w.buf[len(w.buf)-1] |= 1 << (7 - uint(w.n&7))
		}
		w.n++
	}
}

func TestDiskModelCost(t *testing.T) {
	m := DefaultDiskModel()
	s := Snapshot{RandReads: 2, NearReads: 10, SeqReads: 100, PhysWrites: 1}
	got := m.CostMS(s)
	want := 2*8.0 + 10*1.0 + 100*0.05 + 1*0.1
	if got != want {
		t.Fatalf("CostMS = %v, want %v", got, want)
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Snapshot{PhysReads: 10, SeqReads: 5, NearReads: 1, RandReads: 4, PhysWrites: 2, CacheHits: 100}
	b := Snapshot{PhysReads: 3, SeqReads: 2, RandReads: 1, PhysWrites: 1, CacheHits: 40}
	d := a.Sub(b)
	if d.PhysReads != 7 || d.SeqReads != 3 || d.NearReads != 1 || d.RandReads != 3 || d.PhysWrites != 1 || d.CacheHits != 60 {
		t.Fatalf("Sub = %+v", d)
	}
	if got := d.Add(b); got != a {
		t.Fatalf("Add = %+v, want %+v", got, a)
	}
}

func TestPoolUnregisterDropsPages(t *testing.T) {
	pool := NewPool(64, 1<<16)
	f := NewFile(pool, NewMemDevice())
	f.WriteAt(make([]byte, 256), 0)
	if pool.CachedPages() == 0 {
		t.Fatal("expected cached pages")
	}
	pool.Unregister(f.id)
	if pool.CachedPages() != 0 {
		t.Fatalf("CachedPages = %d after Unregister", pool.CachedPages())
	}
}

func TestTruncateInvalidates(t *testing.T) {
	pool := NewPool(64, 1<<16)
	f := NewFile(pool, NewMemDevice())
	f.WriteAt(bytes.Repeat([]byte{0xEE}, 128), 0)
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 64)
	if err := f.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range p {
		if b != 0 {
			t.Fatal("stale cached page after truncate")
		}
	}
}
