package storage

import (
	"fmt"
	"sync"
)

// File is a byte-addressable view of a device routed through the shared
// buffer pool. All reads and writes above the device layer use File so that
// every experiment's I/O is counted and cached uniformly.
type File struct {
	pool  *Pool
	dev   Device
	id    uint32
	stats *Stats // this file's share of the pool counters

	mu   sync.Mutex
	size int64 // logical size in bytes (may trail the device page tail)
}

// NewFile attaches dev to pool and returns a File over it. The logical size
// starts at the device size.
func NewFile(pool *Pool, dev Device) *File {
	id := pool.Register(dev)
	return &File{pool: pool, dev: dev, id: id, stats: pool.FileStats(id), size: dev.Size()}
}

// Pool returns the buffer pool the file is attached to.
func (f *File) Pool() *Pool { return f.pool }

// IOStats returns the I/O counters attributed to this file alone. Query
// plans snapshot these around the filter and refine phases; because the
// counters are per-file and atomic, the attribution stays exact with any
// number of concurrent readers.
func (f *File) IOStats() *Stats { return f.stats }

// Size returns the logical file size in bytes.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// SetSize overrides the logical size (used when a header records the true
// size of a file whose device is page-padded).
func (f *File) SetSize(n int64) {
	f.mu.Lock()
	f.size = n
	f.mu.Unlock()
}

// PinPage pins the page containing byte offset off and returns the frame
// plus the page's bytes from off to the page end. The caller must Release
// the frame; until then the bytes are stable against concurrent writes
// (copy-on-write) and the page cannot be evicted. This is the zero-copy path
// ChainBitReader decodes from.
func (f *File) PinPage(off int64) (*Frame, []byte, error) {
	if off < 0 {
		return nil, nil, fmt.Errorf("storage: negative pin offset %d", off)
	}
	ps := int64(f.pool.PageSize())
	fr, err := f.pool.Get(f.id, off/ps)
	if err != nil {
		return nil, nil, err
	}
	return fr, fr.Data()[off%ps:], nil
}

// ReadAt reads len(p) bytes at offset off through the buffer pool. Reads
// beyond the logical size return zeros (the caller is expected to stay
// within structures it wrote).
func (f *File) ReadAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative read offset %d", off)
	}
	ps := int64(f.pool.PageSize())
	for len(p) > 0 {
		page := off / ps
		in := off % ps
		n, err := f.pool.readInto(f.id, page, int(in), p)
		if err != nil {
			return err
		}
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt writes p at offset off through the buffer pool (read-modify-write
// on partial pages), growing the logical size as needed.
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("storage: negative write offset %d", off)
	}
	end := off + int64(len(p))
	ps := int64(f.pool.PageSize())
	for len(p) > 0 {
		page := off / ps
		in := off % ps
		n := int(ps - in)
		if n > len(p) {
			n = len(p)
		}
		var buf []byte
		if in == 0 && n == int(ps) {
			buf = p[:n]
		} else {
			buf = make([]byte, ps)
			if _, err := f.pool.readInto(f.id, page, 0, buf); err != nil {
				return err
			}
			copy(buf[in:], p[:n])
		}
		if err := f.pool.writePage(f.id, page, buf[:ps:ps]); err != nil {
			return err
		}
		p = p[n:]
		off += int64(n)
	}
	f.mu.Lock()
	if end > f.size {
		f.size = end
	}
	f.mu.Unlock()
	return nil
}

// Append writes p at the logical end of the file and returns the offset the
// data was written at.
func (f *File) Append(p []byte) (int64, error) {
	f.mu.Lock()
	off := f.size
	f.mu.Unlock()
	if err := f.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

// Truncate resets the file to the given size, invalidating cached pages.
func (f *File) Truncate(size int64) error {
	ps := int64(f.pool.PageSize())
	devSize := (size + ps - 1) / ps * ps
	if err := f.dev.Truncate(devSize); err != nil {
		return err
	}
	f.pool.InvalidateFile(f.id)
	f.mu.Lock()
	f.size = size
	f.mu.Unlock()
	return nil
}

// Sync flushes the underlying device.
func (f *File) Sync() error { return f.dev.Sync() }

// Close detaches from the pool and closes the device.
func (f *File) Close() error {
	f.pool.Unregister(f.id)
	return f.dev.Close()
}
