package storage

import (
	"errors"
	"sync"
)

// ErrInjected is the error produced by a tripped FaultDevice.
var ErrInjected = errors.New("storage: injected fault")

// FaultDevice wraps a Device and starts failing every operation after a
// configurable number of successful calls. It exists for failure-injection
// tests: upper layers must propagate storage errors instead of corrupting
// state or panicking.
type FaultDevice struct {
	inner Device

	mu        sync.Mutex
	remaining int64 // successful ops left; <0 means unlimited
	tripped   bool
	torn      bool // when tripping on a WriteAt, persist a prefix first
}

// NewFaultDevice wraps inner, allowing `ops` successful operations before
// every subsequent call fails with ErrInjected.
func NewFaultDevice(inner Device, ops int64) *FaultDevice {
	return &FaultDevice{inner: inner, remaining: ops}
}

// Trip makes every subsequent operation fail immediately.
func (d *FaultDevice) Trip() {
	d.mu.Lock()
	d.tripped = true
	d.mu.Unlock()
}

// Tripped reports whether the device has started injecting failures. A
// fault-sweep driver uses it to detect that a budget exceeded the script's
// total operation count, i.e. the sweep is complete.
func (d *FaultDevice) Tripped() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tripped
}

// Reset re-arms the device with a fresh budget.
func (d *FaultDevice) Reset(ops int64) {
	d.mu.Lock()
	d.remaining, d.tripped = ops, false
	d.mu.Unlock()
}

// SetTornWrites toggles torn-write mode: when the budget trips on a WriteAt,
// the first half of the buffer is persisted before the call fails. This
// models a power cut mid-write — the failure the format-v4 checksums must
// detect rather than a clean all-or-nothing device error.
func (d *FaultDevice) SetTornWrites(on bool) {
	d.mu.Lock()
	d.torn = on
	d.mu.Unlock()
}

// CorruptBitFlip flips one bit of the underlying device in place, bypassing
// the operation budget. It models silent media corruption: no error at write
// time, wrong bytes at read time.
func (d *FaultDevice) CorruptBitFlip(off int64, bit uint) error {
	var b [1]byte
	if _, err := d.inner.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err := d.inner.WriteAt(b[:], off)
	return err
}

func (d *FaultDevice) step() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.tripped {
		return ErrInjected
	}
	if d.remaining == 0 {
		d.tripped = true
		return ErrInjected
	}
	if d.remaining > 0 {
		d.remaining--
	}
	return nil
}

// ReadAt implements Device.
func (d *FaultDevice) ReadAt(p []byte, off int64) (int, error) {
	if err := d.step(); err != nil {
		return 0, err
	}
	return d.inner.ReadAt(p, off)
}

// WriteAt implements Device.
func (d *FaultDevice) WriteAt(p []byte, off int64) (int, error) {
	if err := d.step(); err != nil {
		d.mu.Lock()
		torn := d.torn
		d.mu.Unlock()
		if torn && len(p) > 1 {
			d.inner.WriteAt(p[:len(p)/2], off)
		}
		return 0, err
	}
	return d.inner.WriteAt(p, off)
}

// Size implements Device.
func (d *FaultDevice) Size() int64 { return d.inner.Size() }

// Truncate implements Device.
func (d *FaultDevice) Truncate(size int64) error {
	if err := d.step(); err != nil {
		return err
	}
	return d.inner.Truncate(size)
}

// Sync implements Device.
func (d *FaultDevice) Sync() error {
	if err := d.step(); err != nil {
		return err
	}
	return d.inner.Sync()
}

// Close implements Device.
func (d *FaultDevice) Close() error { return d.inner.Close() }
