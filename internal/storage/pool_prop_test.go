package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The pool invariant battery. A randomized concurrent workload (Get/Release,
// readInto, writePage, InvalidateFile, Unregister) runs against a model kept
// in plain Go maps, asserting the pool's contract the whole time:
//
//   - the byte budget is never exceeded beyond what outstanding pins force;
//   - a pinned frame's bytes never change (copy-on-write on writes);
//   - no read ever observes a torn page or a version the model never wrote;
//   - after Unregister, no page of the file is served;
//   - every pin is returned (PinnedFrames ends at 0) and the pool shrinks
//     back to budget (OverflowPages ends at 0);
//   - cache hits + physical reads add up to exactly the successful request
//     count — the accounting the query planner's I/O attribution rests on.
//
// Failures reproduce from one line, like the differential oracle:
//
//	go test ./internal/storage -run TestPoolInvariantProperty -pool.seed=N -pool.ops=M
var (
	poolSeed = flag.Int64("pool.seed", 0x9a7e5, "pool property workload seed to replay")
	poolOps  = flag.Int("pool.ops", 0, "pool property ops per worker (0 = default)")
)

const (
	propPageSize = 64
	propCapPages = 32
	propFiles    = 3
	propPages    = 96 // per file; 3× the budget so eviction never stops
)

func poolRepro(run string, ops int) string {
	return fmt.Sprintf("repro: go test ./internal/storage -run %s -pool.seed=%d -pool.ops=%d",
		run, *poolSeed, ops)
}

// fillPropPage writes the deterministic content of (file, page, ver): the
// version in the first 8 bytes, a splitmix stream keyed by all three after.
// Any mix of two versions in one page fails verification — that is the torn-
// read detector.
func fillPropPage(buf []byte, file uint32, page, ver int64) {
	binary.LittleEndian.PutUint64(buf, uint64(ver))
	seed := uint64(file+1)*0x9E3779B97F4A7C15 ^ uint64(page)*0xBF58476D1CE4E5B9 ^ uint64(ver)*0x94D049BB133111EB
	for i := 8; i < len(buf); i++ {
		x := seed + uint64(i)*0x2545F4914F6CDD1D
		x ^= x >> 29
		x *= 0xBF58476D1CE4E5B9
		buf[i] = byte(x >> 56)
	}
}

// checkPropPage verifies buf is exactly one committed version of the page
// (whichever version its header claims), i.e. untorn.
func checkPropPage(buf []byte, file uint32, page int64) error {
	ver := int64(binary.LittleEndian.Uint64(buf))
	want := make([]byte, len(buf))
	fillPropPage(want, file, page, ver)
	if !bytes.Equal(buf, want) {
		return fmt.Errorf("file %d page %d: torn or corrupt content (header claims ver %d)", file, page, ver)
	}
	return nil
}

// propModel is the reference state: the committed version of every page,
// guarded per page so writers serialize with the verified-read op without
// serializing the whole workload.
type propModel struct {
	pages [propFiles][propPages]struct {
		mu  sync.Mutex
		ver int64
	}
}

type poolPropConfig struct {
	seed     int64
	opsPer   int // per worker; 0 with a deadline means run until deadline
	workers  int
	deadline time.Duration // 0 = ops-bounded
	faults   bool          // wrap devices in FaultDevice and cycle budgets
	run      string        // test name for the repro line
}

// firstErr records the first failure from any goroutine.
type firstErr struct {
	once sync.Once
	err  atomic.Pointer[error]
}

func (f *firstErr) set(err error) {
	f.once.Do(func() { f.err.Store(&err) })
}

func (f *firstErr) get() error {
	if p := f.err.Load(); p != nil {
		return *p
	}
	return nil
}

func runPoolProp(t *testing.T, cfg poolPropConfig) {
	t.Helper()
	p := NewPoolShards(propPageSize, propPageSize*propCapPages, 4)
	if p.ShardCount() != 4 {
		t.Fatalf("want 4 shards for the property pool, got %d", p.ShardCount())
	}

	mems := make([]*MemDevice, propFiles)
	faults := make([]*FaultDevice, propFiles)
	ids := make([]uint32, propFiles)
	model := &propModel{}
	buf := make([]byte, propPageSize)
	for f := 0; f < propFiles; f++ {
		mems[f] = NewMemDevice()
		for pg := int64(0); pg < propPages; pg++ {
			fillPropPage(buf, uint32(f), pg, 0)
			if _, err := mems[f].WriteAt(buf, pg*propPageSize); err != nil {
				t.Fatal(err)
			}
		}
		var dev Device = mems[f]
		if cfg.faults {
			faults[f] = NewFaultDevice(mems[f], -1)
			dev = faults[f]
		}
		ids[f] = p.Register(dev)
		if ids[f] != uint32(f) {
			t.Fatalf("file ids not dense: got %d want %d", ids[f], f)
		}
	}

	var (
		fail     firstErr
		requests atomic.Int64 // successful Get/readInto calls
		done     = make(chan struct{})
		deadline time.Time
	)
	if cfg.deadline > 0 {
		deadline = time.Now().Add(cfg.deadline)
	}

	// Budget sampler: the ring population may exceed the page budget only by
	// what pins force (≤ one pin per worker at a time), plus sampling skew
	// from reading the shards one lock at a time.
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		limit := p.CapPages() + 2*cfg.workers + 2
		for {
			select {
			case <-done:
				return
			default:
			}
			if n := p.CachedPages(); n > limit {
				fail.set(fmt.Errorf("budget invariant: %d resident pages, limit %d (cap %d, %d workers)",
					n, limit, p.CapPages(), cfg.workers))
				return
			}
			runtime.Gosched()
		}
	}()

	worker := func(w int) error {
		r := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
		scratch := make([]byte, propPageSize)
		for op := 0; ; op++ {
			if cfg.opsPer > 0 && op >= cfg.opsPer {
				return nil
			}
			if cfg.opsPer == 0 && (op&63) == 0 && time.Now().After(deadline) {
				return nil
			}
			if fail.get() != nil {
				return nil
			}
			f := r.Intn(propFiles)
			pg := int64(r.Intn(propPages))
			switch c := r.Intn(100); {
			case c < 40: // pinned read: verify untorn, prove snapshot immutability
				fr, err := p.Get(ids[f], pg)
				if err != nil {
					if cfg.faults && errors.Is(err, ErrInjected) {
						continue
					}
					return fmt.Errorf("op %d Get(%d,%d): %v", op, f, pg, err)
				}
				requests.Add(1)
				if err := checkPropPage(fr.Data(), uint32(f), pg); err != nil {
					fr.Release()
					return fmt.Errorf("op %d: %v", op, err)
				}
				if c < 8 { // hold the pin across scheduling points
					copy(scratch, fr.Data())
					runtime.Gosched()
					runtime.Gosched()
					if !bytes.Equal(scratch, fr.Data()) {
						fr.Release()
						return fmt.Errorf("op %d: pinned frame of file %d page %d mutated under the pin", op, f, pg)
					}
				}
				fr.Release()
			case c < 60: // copying read
				n, err := p.readInto(ids[f], pg, 0, scratch)
				if err != nil {
					if cfg.faults && errors.Is(err, ErrInjected) {
						continue
					}
					return fmt.Errorf("op %d readInto(%d,%d): %v", op, f, pg, err)
				}
				requests.Add(1)
				if n != propPageSize {
					return fmt.Errorf("op %d readInto(%d,%d): short copy %d", op, f, pg, n)
				}
				if err := checkPropPage(scratch, uint32(f), pg); err != nil {
					return fmt.Errorf("op %d: %v", op, err)
				}
			case c < 80: // write next version
				slot := &model.pages[f][pg]
				slot.mu.Lock()
				next := slot.ver + 1
				data := make([]byte, propPageSize)
				fillPropPage(data, uint32(f), pg, next)
				err := p.writePage(ids[f], pg, data)
				if err == nil {
					slot.ver = next
				}
				slot.mu.Unlock()
				if err != nil && !(cfg.faults && errors.Is(err, ErrInjected)) {
					return fmt.Errorf("op %d writePage(%d,%d): %v", op, f, pg, err)
				}
			case c < 95: // read-your-writes: under the page lock, the exact model version
				slot := &model.pages[f][pg]
				slot.mu.Lock()
				fr, err := p.Get(ids[f], pg)
				if err == nil {
					requests.Add(1)
					if got := int64(binary.LittleEndian.Uint64(fr.Data())); got != slot.ver {
						err = fmt.Errorf("op %d: file %d page %d served ver %d, model has %d", op, f, pg, got, slot.ver)
						fr.Release()
						slot.mu.Unlock()
						return err
					}
					fr.Release()
				}
				slot.mu.Unlock()
				if err != nil && !(cfg.faults && errors.Is(err, ErrInjected)) {
					return fmt.Errorf("op %d Get(%d,%d): %v", op, f, pg, err)
				}
			default: // drop the file's cache; later reads must reload from the device
				p.InvalidateFile(ids[f])
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := worker(w); err != nil {
				fail.set(err)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	samplerWG.Wait()

	ops := cfg.opsPer
	if err := fail.get(); err != nil {
		t.Fatalf("%v\n  %s", err, poolRepro(cfg.run, ops))
	}
	if cfg.faults {
		for _, fd := range faults {
			fd.Reset(-1)
		}
	}

	// Quiesced invariants.
	if n := p.PinnedFrames(); n != 0 {
		t.Fatalf("pin leak: %d frames still pinned after the workload\n  %s", n, poolRepro(cfg.run, ops))
	}
	if n := p.OverflowPages(); n != 0 {
		t.Fatalf("%d overflow pages with no pins outstanding\n  %s", n, poolRepro(cfg.run, ops))
	}
	if n := p.CachedPages(); n > p.CapPages() {
		t.Fatalf("quiesced pool holds %d pages, budget %d\n  %s", n, p.CapPages(), poolRepro(cfg.run, ops))
	}
	snap := p.Stats().Snapshot()
	if snap.CacheHits+snap.PhysReads != requests.Load() {
		t.Fatalf("accounting drift: %d hits + %d physical reads != %d successful requests\n  %s",
			snap.CacheHits, snap.PhysReads, requests.Load(), poolRepro(cfg.run, ops))
	}
	if snap.SeqReads+snap.NearReads+snap.RandReads != snap.PhysReads {
		t.Fatalf("read classes sum to %d, physical reads %d\n  %s",
			snap.SeqReads+snap.NearReads+snap.RandReads, snap.PhysReads, poolRepro(cfg.run, ops))
	}

	// Every page must have converged to its committed model version.
	for f := 0; f < propFiles; f++ {
		for pg := int64(0); pg < propPages; pg++ {
			fr, err := p.Get(ids[f], pg)
			if err != nil {
				t.Fatalf("final verify Get(%d,%d): %v\n  %s", f, pg, err, poolRepro(cfg.run, ops))
			}
			got := int64(binary.LittleEndian.Uint64(fr.Data()))
			if want := model.pages[f][pg].ver; got != want {
				fr.Release()
				t.Fatalf("final verify: file %d page %d at ver %d, model committed %d\n  %s",
					f, pg, got, want, poolRepro(cfg.run, ops))
			}
			if err := checkPropPage(fr.Data(), uint32(f), pg); err != nil {
				fr.Release()
				t.Fatalf("final verify: %v\n  %s", err, poolRepro(cfg.run, ops))
			}
			fr.Release()
		}
	}

	// Unregister: the file disappears atomically; its stats pointer stays
	// valid but frozen.
	frozen := p.FileStats(ids[0]).Snapshot()
	p.Unregister(ids[0])
	if _, err := p.Get(ids[0], 0); err == nil {
		t.Fatalf("Get served a page of an unregistered file\n  %s", poolRepro(cfg.run, ops))
	}
	if got := p.FileStats(ids[0]); got != nil {
		t.Fatalf("FileStats of an unregistered file should be nil, got %+v", got.Snapshot())
	}
	_ = frozen
	if n := p.PinnedFrames(); n != 0 {
		t.Fatalf("pins after unregister: %d", n)
	}
}

func propOps(def int) int {
	if *poolOps > 0 {
		return *poolOps
	}
	if testing.Short() {
		return def / 4
	}
	return def
}

func TestPoolInvariantProperty(t *testing.T) {
	runPoolProp(t, poolPropConfig{
		seed:    *poolSeed,
		opsPer:  propOps(4000),
		workers: 8,
		run:     "TestPoolInvariantProperty",
	})
}

// TestPoolSoak is the time-bounded variant for -race CI runs: duration comes
// from IVA_POOL_SOAK_MS (default 1s, 250ms under -short).
func TestPoolSoak(t *testing.T) {
	ms := 1000
	if testing.Short() {
		ms = 250
	}
	if v := os.Getenv("IVA_POOL_SOAK_MS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("IVA_POOL_SOAK_MS=%q: %v", v, err)
		}
		ms = n
	}
	runPoolProp(t, poolPropConfig{
		seed:     *poolSeed + 1,
		workers:  8,
		deadline: time.Duration(ms) * time.Millisecond,
		run:      "TestPoolSoak",
	})
}

// TestPoolFaultSoak interleaves injected device failures with the concurrent
// workload: a chaos goroutine keeps re-arming every device with small random
// budgets, so misses and write-throughs fail mid-flight while other workers
// evict, pin and invalidate. The pool must degrade to clean errors — no torn
// pages, no phantom cache entries, every invariant of the quiesced pool
// intact once the devices are healed.
func TestPoolFaultSoak(t *testing.T) {
	runPoolProp(t, poolPropConfig{
		seed:    *poolSeed + 2,
		opsPer:  propOps(3000),
		workers: 8,
		faults:  true,
		run:     "TestPoolFaultSoak",
	})
}

// captureDevice records the destination buffer of the last ReadAt, so a test
// can prove the pool reads misses straight into the cached frame.
type captureDevice struct {
	*MemDevice
	last []byte
}

func (d *captureDevice) ReadAt(p []byte, off int64) (int, error) {
	d.last = p
	return d.MemDevice.ReadAt(p, off)
}

// TestPoolMissReadsIntoFrame pins the regression fix for the miss double
// copy: the buffer handed to the device IS the frame that gets cached and
// pinned, with no staging copy in between.
func TestPoolMissReadsIntoFrame(t *testing.T) {
	dev := &captureDevice{MemDevice: NewMemDevice()}
	data := bytes.Repeat([]byte{0xAB}, 128)
	if _, err := dev.MemDevice.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	p := NewPoolShards(128, 128*4, 1)
	id := p.Register(dev)
	fr, err := p.Get(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Release()
	if dev.last == nil {
		t.Fatal("device never saw a read")
	}
	if &fr.Data()[0] != &dev.last[0] {
		t.Fatal("miss was staged through a scratch buffer instead of reading into the frame")
	}
}

// TestPoolFailedReadNoSideEffects pins the failed-read regression: an
// errored miss must not cache a frame, must not move any counter, and must
// not advance the file's read position — the old pool "promoted" the failed
// page, so the next successful read was misclassified as random.
func TestPoolFailedReadNoSideEffects(t *testing.T) {
	mem := NewMemDevice()
	buf := make([]byte, 64)
	for pg := int64(0); pg < 16; pg++ {
		fillPropPage(buf, 0, pg, 0)
		if _, err := mem.WriteAt(buf, pg*64); err != nil {
			t.Fatal(err)
		}
	}
	fd := NewFaultDevice(mem, -1)
	p := NewPoolShards(64, 64*8, 1)
	id := p.Register(fd)

	// Establish a read position: pages 0 then 1 (the second is sequential).
	for pg := int64(0); pg <= 1; pg++ {
		fr, err := p.Get(id, pg)
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}
	before := p.Stats().Snapshot()
	cached := p.CachedPages()

	fd.Trip()
	if _, err := p.Get(id, 9); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get on a tripped device: err=%v, want ErrInjected", err)
	}
	if _, err := p.readInto(id, 10, 0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("readInto on a tripped device: err=%v, want ErrInjected", err)
	}
	after := p.Stats().Snapshot()
	if after != before {
		t.Fatalf("failed reads moved counters: before %+v, after %+v", before, after)
	}
	if got := p.CachedPages(); got != cached {
		t.Fatalf("failed reads changed residency: %d -> %d pages", cached, got)
	}

	// The read position must still be page 1: page 2 is a sequential read.
	// Had the failed page 9 been promoted, this would classify as random.
	fd.Reset(-1)
	fr, err := p.Get(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
	final := p.Stats().Snapshot()
	if final.SeqReads != before.SeqReads+1 {
		t.Fatalf("read after failure classified wrong: seq %d -> %d (rand %d -> %d); failed read promoted the position",
			before.SeqReads, final.SeqReads, before.RandReads, final.RandReads)
	}
}

// TestPoolWriteCopyOnWrite: writing a pinned page must leave the pinned
// snapshot untouched and serve the new bytes to the next reader; writing an
// unpinned page updates the frame in place without a device read.
func TestPoolWriteCopyOnWrite(t *testing.T) {
	mem := NewMemDevice()
	old := bytes.Repeat([]byte{0x11}, 64)
	if _, err := mem.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	p := NewPoolShards(64, 64*4, 1)
	id := p.Register(mem)

	fr, err := p.Get(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), fr.Data()...)

	neu := bytes.Repeat([]byte{0x22}, 64)
	if err := p.writePage(id, 0, neu); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Data(), snapshot) {
		t.Fatal("write mutated a pinned frame in place")
	}
	if p.OverflowPages() != 1 {
		t.Fatalf("detached frame not counted: OverflowPages=%d, want 1", p.OverflowPages())
	}

	fr2, err := p.Get(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr2.Data(), neu) {
		t.Fatal("reader after the write still sees the old bytes")
	}
	readsAfterCOW := p.Stats().Snapshot().PhysReads
	fr.Release()
	if p.OverflowPages() != 0 {
		t.Fatalf("OverflowPages=%d after releasing the stale pin, want 0", p.OverflowPages())
	}

	// Unpinned in-place update: no new frame, no device read.
	fr2.Release()
	neu2 := bytes.Repeat([]byte{0x33}, 64)
	if err := p.writePage(id, 0, neu2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr2.Data(), neu2) {
		t.Fatal("unpinned write did not update the resident frame in place")
	}
	fr3, err := p.Get(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fr3.Release()
	if !bytes.Equal(fr3.Data(), neu2) {
		t.Fatal("read after in-place write sees stale bytes")
	}
	if got := p.Stats().Snapshot().PhysReads; got != readsAfterCOW {
		t.Fatalf("in-place write path touched the device for reads: %d -> %d", readsAfterCOW, got)
	}
}

// TestPoolPinForcedOverflow: when every resident frame is pinned the pool
// must keep serving (running over budget, visibly in OverflowPages) and
// shrink back once pins are released.
func TestPoolPinForcedOverflow(t *testing.T) {
	mem := NewMemDevice()
	if _, err := mem.WriteAt(make([]byte, 64*16), 0); err != nil {
		t.Fatal(err)
	}
	p := NewPoolShards(64, 64*4, 1)
	id := p.Register(mem)

	var frames []*Frame
	for pg := int64(0); pg < 6; pg++ { // 2 past the 4-page budget
		fr, err := p.Get(id, pg)
		if err != nil {
			t.Fatalf("page %d with all frames pinned: %v", pg, err)
		}
		frames = append(frames, fr)
	}
	if got := p.CachedPages(); got != 6 {
		t.Fatalf("resident %d, want 6 (pins must force overflow, not eviction)", got)
	}
	if got := p.OverflowPages(); got != 2 {
		t.Fatalf("OverflowPages=%d, want 2", got)
	}
	for _, fr := range frames {
		fr.Release()
	}
	if got := p.OverflowPages(); got != 0 {
		t.Fatalf("OverflowPages=%d after releasing all pins, want 0", got)
	}
	if got := p.CachedPages(); got > p.CapPages() {
		t.Fatalf("resident %d after release, budget %d", got, p.CapPages())
	}
	if got := p.PinnedFrames(); got != 0 {
		t.Fatalf("PinnedFrames=%d, want 0", got)
	}
}

// TestPoolShardSpread sanity-checks the shard hash: sequential pages of one
// file must not all land in one stripe.
func TestPoolShardSpread(t *testing.T) {
	p := NewPoolShards(DefaultPageSize, int64(DefaultPageSize)*minShardQuota*4, 4)
	if p.ShardCount() != 4 {
		t.Skipf("pool collapsed to %d shards", p.ShardCount())
	}
	counts := make(map[*poolShard]int)
	for pg := int64(0); pg < 64; pg++ {
		counts[p.shardOf(pageKey{file: 0, page: pg})]++
	}
	for sh, n := range counts {
		if n > 32 {
			t.Fatalf("shard %p took %d of 64 sequential pages", sh, n)
		}
	}
	if len(counts) < 3 {
		t.Fatalf("64 sequential pages hit only %d shards", len(counts))
	}
}
