package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/sparsewide/iva"
)

// Request-size and query-shape bounds. The decoder is the service's outermost
// trust boundary: everything beyond it (the query planner, the bit readers)
// assumes well-formed input, so every limit is enforced here, before any
// index work happens. FuzzSearchRequest holds this file to "malformed input
// never panics, never queries".
const (
	// DefaultMaxBodyBytes bounds a /v1/search request body.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxK caps the requested top-k.
	DefaultMaxK = 1000
	// DefaultMaxTerms caps the number of query terms.
	DefaultMaxTerms = 64
	// maxAttrLen matches the catalog's attribute-name limit.
	maxAttrLen = 255
	// maxTextLen matches model.Text's per-string limit.
	maxTextLen = 255
)

// SearchTerm is one term of a /v1/search request. Exactly one of Num and
// Text must be present — the pointer distinguishes "num": 0 from an absent
// field.
type SearchTerm struct {
	Attr string   `json:"attr"`
	Num  *float64 `json:"num,omitempty"`
	Text *string  `json:"text,omitempty"`
	// Weight is the optional explicit importance λ > 0 for this term,
	// overriding the store's weighting scheme; 0 or absent uses the scheme.
	Weight float64 `json:"weight,omitempty"`
}

// SearchRequest is the body of POST /v1/search.
type SearchRequest struct {
	K     int          `json:"k"`
	Terms []SearchTerm `json:"terms"`
	// TimeoutMS is the client's end-to-end deadline for the query in
	// milliseconds; 0 or absent selects the server's default. The server
	// clamps it to its configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DecodeSearchRequest reads and validates one search request from r,
// enforcing the body-size bound (maxBytes <= 0 selects DefaultMaxBodyBytes).
// Unknown fields and trailing data are rejected, so a request that decodes
// is exactly the documented shape.
func DecodeSearchRequest(r io.Reader, maxBytes int64, maxK, maxTerms int) (*SearchRequest, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	dec := json.NewDecoder(io.LimitReader(r, maxBytes+1))
	dec.DisallowUnknownFields()
	var req SearchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	// A second Decode must see EOF: anything else is trailing garbage (or a
	// body that overflowed the limit mid-value).
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, errors.New("trailing data after request object")
	}
	if err := req.validate(maxK, maxTerms); err != nil {
		return nil, err
	}
	return &req, nil
}

func (req *SearchRequest) validate(maxK, maxTerms int) error {
	if maxK <= 0 {
		maxK = DefaultMaxK
	}
	if maxTerms <= 0 {
		maxTerms = DefaultMaxTerms
	}
	if req.K <= 0 {
		return fmt.Errorf("k must be positive, got %d", req.K)
	}
	if req.K > maxK {
		return fmt.Errorf("k %d exceeds the maximum %d", req.K, maxK)
	}
	if req.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be non-negative, got %d", req.TimeoutMS)
	}
	if len(req.Terms) == 0 {
		return errors.New("at least one term is required")
	}
	if len(req.Terms) > maxTerms {
		return fmt.Errorf("%d terms exceed the maximum %d", len(req.Terms), maxTerms)
	}
	seen := make(map[string]bool, len(req.Terms))
	for i, t := range req.Terms {
		if t.Attr == "" {
			return fmt.Errorf("term %d: attr is required", i)
		}
		if seen[t.Attr] {
			// The engine rejects duplicate query attributes; catching it here
			// turns a 500 into a 400 with the offending term named.
			return fmt.Errorf("term %d: duplicate attr %q", i, t.Attr)
		}
		seen[t.Attr] = true
		if len(t.Attr) > maxAttrLen {
			return fmt.Errorf("term %d: attr exceeds %d bytes", i, maxAttrLen)
		}
		switch {
		case t.Num != nil && t.Text != nil:
			return fmt.Errorf("term %d: num and text are mutually exclusive", i)
		case t.Num == nil && t.Text == nil:
			return fmt.Errorf("term %d: one of num or text is required", i)
		case t.Num != nil:
			if math.IsNaN(*t.Num) || math.IsInf(*t.Num, 0) {
				return fmt.Errorf("term %d: num must be finite", i)
			}
		case t.Text != nil:
			if *t.Text == "" {
				return fmt.Errorf("term %d: text must be non-empty", i)
			}
			if len(*t.Text) > maxTextLen {
				return fmt.Errorf("term %d: text exceeds %d bytes", i, maxTextLen)
			}
		}
		if t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return fmt.Errorf("term %d: weight must be a finite non-negative number", i)
		}
	}
	return nil
}

// Query converts a validated request into the engine's query form. The term
// order is preserved, so an HTTP request and the equivalent in-process
// NewQuery chain build identical plans.
func (req *SearchRequest) Query() *iva.Query {
	q := iva.NewQuery(req.K)
	for _, t := range req.Terms {
		switch {
		case t.Num != nil && t.Weight > 0:
			q.WhereNumWeighted(t.Attr, *t.Num, t.Weight)
		case t.Num != nil:
			q.WhereNum(t.Attr, *t.Num)
		case t.Weight > 0:
			q.WhereTextWeighted(t.Attr, *t.Text, t.Weight)
		default:
			q.WhereText(t.Attr, *t.Text)
		}
	}
	return q
}

// SearchResult is one element of a search response, mirroring iva.Result.
type SearchResult struct {
	TID  iva.TID `json:"tid"`
	Dist float64 `json:"dist"`
}

// SearchStats is the per-query work summary included in every search
// response (the network rendering of iva.QueryStats).
type SearchStats struct {
	Scanned          int64 `json:"scanned"`
	TableAccesses    int64 `json:"table_accesses"`
	CacheHits        int64 `json:"cache_hits"`
	PhysReads        int64 `json:"phys_reads"`
	Workers          int   `json:"workers"`
	DegradedSegments int   `json:"degraded_segments,omitempty"`
}

// SearchResponse is the body of a successful /v1/search answer.
type SearchResponse struct {
	TraceID string         `json:"trace_id,omitempty"`
	Results []SearchResult `json:"results"`
	Stats   SearchStats    `json:"stats"`
}

// Results converts engine results into their wire form. Kept in one place so
// the equivalence battery can render in-process answers through the exact
// encoder the server uses and compare bytes.
func Results(res []iva.Result) []SearchResult {
	out := make([]SearchResult, len(res))
	for i, r := range res {
		out[i] = SearchResult{TID: r.TID, Dist: r.Dist}
	}
	return out
}
