package server

import (
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestServerMetricsDocumented holds OBSERVABILITY.md to the iva_server_*
// surface the same way the root package's TestMetricsDocumented holds it to
// the store's: every family the server exposes after real traffic must
// appear (backticked) in the doc. The server registers into its own
// registry, so this runs here rather than widening the root test.
func TestServerMetricsDocumented(t *testing.T) {
	be := &stubBackend{}
	srv, ts := newTestServer(t, be, Config{QPS: 1000})

	// Materialize the lazily registered families: a success, a client error,
	// and the other endpoints.
	doSearch(t, ts, "", validBody)
	doSearch(t, ts, "", []byte(`{`))
	ts.Client().Get(ts.URL + "/v1/get?tid=1")
	ts.Client().Get(ts.URL + "/v1/stats")

	text := srv.MetricsText()
	re := regexp.MustCompile(`(?m)^# TYPE (\S+)`)
	families := re.FindAllStringSubmatch(text, -1)
	if len(families) < 8 {
		t.Fatalf("server exposes only %d families — registration is broken", len(families))
	}
	doc, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range families {
		fam := m[1]
		if !strings.Contains(string(doc), "`"+fam+"`") {
			t.Errorf("metric family %s is not documented in OBSERVABILITY.md", fam)
		}
	}
}

// TestServerEndpointsDocumented keeps README's serve section honest: every
// mounted /v1 endpoint must be named there.
func TestServerEndpointsDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	New(&stubBackend{}, nil, Config{}).Register(mux)
	for _, ep := range []string{"/v1/search", "/v1/get", "/v1/stats"} {
		if r, _ := http.NewRequest(http.MethodGet, ep, nil); func() bool {
			_, pattern := mux.Handler(r)
			return pattern == ""
		}() {
			t.Errorf("endpoint %s is not mounted", ep)
		}
		if !strings.Contains(string(readme), ep) {
			t.Errorf("endpoint %s is not documented in README.md", ep)
		}
	}
	if !strings.Contains(string(readme), TenantHeader) {
		t.Errorf("tenant header %s is not documented in README.md", TenantHeader)
	}
}
