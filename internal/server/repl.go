package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/repl"
)

// ReplSource is the store surface the replication endpoints serve from;
// *iva.Store satisfies it. Every response body is already CRC-framed by the
// store (deltas and snapshots) or re-verified by the fetching side against
// its own committed checksums (file ranges), so these handlers move opaque
// bytes and map errors to status codes — nothing more.
type ReplSource interface {
	ReplSnapshot() ([]byte, error)
	ReplDeltas(epoch, from uint64) ([]byte, error)
	ReplFileRange(file string, off, n int64) ([]byte, error)
}

// RegisterRepl mounts the replication endpoints on mux:
//
//	GET /v1/repl/snapshot                     — full-state snapshot (encoded Full delta)
//	GET /v1/repl/deltas?epoch=E&from=G       — encoded batch of deltas following gen G
//	GET /v1/repl/segment?file=F&off=O&len=N  — raw file bytes (read-repair fetch)
//
// Replication traffic bypasses tenant admission (it is peer traffic, not
// query traffic) and keeps flowing through a drain, like /v1/stats, so a
// primary being rolled does not stall its followers. A follower losing
// incremental continuity gets 410 Gone, the signal to take a snapshot.
func (s *Server) RegisterRepl(mux *http.ServeMux, src ReplSource) {
	mux.HandleFunc("/v1/repl/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s.serveRepl(w, r, func() ([]byte, error) { return src.ReplSnapshot() })
	})
	mux.HandleFunc("/v1/repl/deltas", func(w http.ResponseWriter, r *http.Request) {
		epoch, err1 := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
		from, err2 := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if err1 != nil || err2 != nil {
			s.writeError(w, "repl", http.StatusBadRequest, "", "epoch and from must be unsigned integers")
			return
		}
		s.serveRepl(w, r, func() ([]byte, error) { return src.ReplDeltas(epoch, from) })
	})
	mux.HandleFunc("/v1/repl/segment", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		off, err1 := strconv.ParseInt(q.Get("off"), 10, 64)
		n, err2 := strconv.ParseInt(q.Get("len"), 10, 64)
		if err1 != nil || err2 != nil {
			s.writeError(w, "repl", http.StatusBadRequest, "", "off and len must be integers")
			return
		}
		s.serveRepl(w, r, func() ([]byte, error) { return src.ReplFileRange(q.Get("file"), off, n) })
	})
}

// serveRepl runs one replication fetch and writes the blob or the mapped
// error status.
func (s *Server) serveRepl(w http.ResponseWriter, r *http.Request, fetch func() ([]byte, error)) {
	const ep = "repl"
	start := time.Now()
	defer func() { s.dur[ep].Observe(time.Since(start).Seconds()) }()
	if r.Method != http.MethodGet {
		s.writeError(w, ep, http.StatusMethodNotAllowed, "", "GET required")
		return
	}
	blob, err := fetch()
	if err != nil {
		switch {
		case errors.Is(err, repl.ErrResync):
			s.writeError(w, ep, http.StatusGone, "resync", err.Error())
		case errors.Is(err, iva.ErrNotReplicating):
			s.writeError(w, ep, http.StatusServiceUnavailable, "not_replicating", err.Error())
		default:
			s.writeError(w, ep, http.StatusInternalServerError, "", err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	_, _ = w.Write(blob)
	s.countRequest(ep, http.StatusOK)
}
