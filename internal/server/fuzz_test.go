package server

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzSearchRequest holds the request decoder — the service's outermost
// trust boundary — to its contract: arbitrary bytes never panic, and
// anything that decodes successfully is a fully validated request that
// builds a well-formed engine query. (The complementary handler-level
// property, "a rejected body never reaches the backend", is
// TestBadRequestNeverQueries.)
func FuzzSearchRequest(f *testing.F) {
	seeds := []string{
		`{"k":5,"terms":[{"attr":"price","num":120}]}`,
		`{"k":3,"terms":[{"attr":"type","text":"camera","weight":1.5}],"timeout_ms":250}`,
		`{"k":12,"terms":[{"attr":"price","num":-3.25},{"attr":"city","text":"berlin"}]}`,
		`{"k":0,"terms":[{"attr":"a","num":1}]}`,
		`{"k":3,"terms":[]}`,
		`{"k":3,"terms":[{"attr":"","num":1}]}`,
		`{"k":3,"terms":[{"attr":"a"}]}`,
		`{"k":3,"terms":[{"attr":"a","num":1,"text":"b"}]}`,
		`{"k":3,"terms":[{"attr":"a","num":1},{"attr":"a","num":2}]}`,
		`{"k":3,"terms":[{"attr":"a","text":""}]}`,
		`{"k":3,"terms":[{"attr":"a","num":1,"weight":-1}]}`,
		`{"k":3,"terms":[{"attr":"a","num":1e999}]}`,
		`{"k":2147483647,"terms":[{"attr":"a","num":1}]}`,
		`{"k":3,"timeout_ms":-5,"terms":[{"attr":"a","num":1}]}`,
		`{"k":3,"terms":[{"attr":"a","num":1}],"extra":true}`,
		`{"k":3,"terms":[{"attr":"a","num":1}]} trailing`,
		`{"k":3,"terms":[{"attr":"` + strings.Repeat("x", 300) + `","num":1}]}`,
		`{"k":3,"terms":[{"attr":"a","text":"` + strings.Repeat("y", 300) + `"}]}`,
		`[1,2,3]`,
		`null`,
		`{}`,
		``,
		`{"k":`,
		"{\"k\":3,\"terms\":[{\"attr\":\"\xff\xfe\",\"num\":1}]}",
		strings.Repeat(`{"terms":`, 200),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSearchRequest(bytes.NewReader(data), 1<<16, 0, 0)
		if err != nil {
			if req != nil {
				t.Fatalf("error %v returned alongside a request", err)
			}
			return
		}
		// Decoded ⇒ validated: the request must survive re-validation under
		// the same (default) bounds and convert to a query whose shape
		// matches — this is what the handler hands to SearchContext.
		if err := req.validate(0, 0); err != nil {
			t.Fatalf("decoded request fails re-validation: %v\n  input: %q", err, data)
		}
		q := req.Query()
		if q == nil {
			t.Fatalf("validated request produced a nil query: %q", data)
		}
		if q.K() != req.K || q.Len() != len(req.Terms) {
			t.Fatalf("query shape (k=%d, %d terms) diverges from request (k=%d, %d terms): %q",
				q.K(), q.Len(), req.K, len(req.Terms), data)
		}
	})
}
