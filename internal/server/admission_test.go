package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sparsewide/iva"
)

// stubBackend is a controllable Backend for admission tests: it counts calls
// (so sheds can prove "no index work happened") and can block inside
// SearchContext until released or cancelled.
type stubBackend struct {
	calls   atomic.Int64
	started chan struct{} // when non-nil, receives one token as a call begins
	release chan struct{} // when non-nil, calls block on it (or ctx)
}

func (b *stubBackend) SearchContext(ctx context.Context, q *iva.Query) ([]iva.Result, iva.QueryStats, error) {
	b.calls.Add(1)
	if b.started != nil {
		b.started <- struct{}{}
	}
	if b.release != nil {
		select {
		case <-b.release:
		case <-ctx.Done():
			return nil, iva.QueryStats{}, ctx.Err()
		}
	}
	return []iva.Result{{TID: 7, Dist: 1.5}}, iva.QueryStats{}, nil
}

func (b *stubBackend) Get(iva.TID) (iva.Row, error) { return nil, iva.ErrNotFound }
func (b *stubBackend) Stats() iva.StoreStats        { return iva.StoreStats{} }

// fakeClock is a manually advanced Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestServer(t *testing.T, be Backend, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(be, nil, cfg)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return srv, ts
}

var validBody = []byte(`{"k":3,"terms":[{"attr":"price","num":120}]}`)

// trySearch is doSearch without test plumbing, safe to call from helper
// goroutines; a transport failure returns 0.
func trySearch(ts *httptest.Server, tenantName string, body []byte) int {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	if tenantName != "" {
		req.Header.Set(TenantHeader, tenantName)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func doSearch(t *testing.T, ts *httptest.Server, tenantName string, body []byte) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenantName != "" {
		req.Header.Set(TenantHeader, tenantName)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

// metricValue scrapes one sample from a Prometheus text exposition: the first
// line whose name matches and whose label block contains every given
// `k="v"` fragment.
func metricValue(t *testing.T, text, family string, labelFragments ...string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		ok := true
		for _, frag := range labelFragments {
			if !strings.Contains(rest, frag) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("metric %s: bad sample line %q", family, line)
		}
		return v
	}
	return 0
}

// TestAdmissionQuota: exhausting a tenant's token bucket answers 429 with a
// Retry-After hint and touches no index work; the bucket refills with time,
// and other tenants are unaffected.
func TestAdmissionQuota(t *testing.T) {
	be := &stubBackend{}
	clock := newFakeClock()
	srv, ts := newTestServer(t, be, Config{QPS: 1, Burst: 2, Now: clock.now})

	for i := 0; i < 2; i++ {
		if resp, body := doSearch(t, ts, "", validBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := doSearch(t, ts, "", validBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: HTTP %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("over quota: Retry-After = %q, want a positive hint", ra)
	}
	if !strings.Contains(body, ShedQuota) {
		t.Fatalf("over quota: body %q does not name the %q reason", body, ShedQuota)
	}
	if got := be.calls.Load(); got != 2 {
		t.Fatalf("backend saw %d calls, want 2 (shed request must not reach the index)", got)
	}

	// Another tenant has its own bucket.
	if resp, body := doSearch(t, ts, "other", validBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: HTTP %d: %s", resp.StatusCode, body)
	}

	// One second refills one token.
	clock.advance(time.Second)
	if resp, body := doSearch(t, ts, "", validBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("after refill: HTTP %d: %s", resp.StatusCode, body)
	}

	text := srv.MetricsText()
	if v := metricValue(t, text, "iva_server_shed_total", `tenant="default"`, `reason="quota"`); v != 1 {
		t.Fatalf("iva_server_shed_total{quota} = %v, want 1", v)
	}
	if v := metricValue(t, text, "iva_server_admitted_total", `tenant="default"`); v != 3 {
		t.Fatalf("iva_server_admitted_total = %v, want 3", v)
	}
}

// TestAdmissionConcurrencyFlood: with all execution slots busy and the
// admission queue full, a flood of further requests sheds immediately with
// 429/queue_full and zero backend calls; queued requests complete once slots
// free, and the inflight/queue gauges return to zero (no leaked admissions).
func TestAdmissionConcurrencyFlood(t *testing.T) {
	be := &stubBackend{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	srv, ts := newTestServer(t, be, Config{
		MaxConcurrent:  2,
		MaxQueue:       2,
		DefaultTimeout: 30 * time.Second,
	})

	// Fill both execution slots.
	results := make(chan int, 4)
	for i := 0; i < 2; i++ {
		go func() { results <- trySearch(ts, "", validBody) }()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-be.started:
		case <-time.After(5 * time.Second):
			t.Fatal("backend never saw the slot-filling calls")
		}
	}

	// Fill the admission queue behind them.
	for i := 0; i < 2; i++ {
		go func() { results <- trySearch(ts, "", validBody) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		depth := metricValue(t, srv.MetricsText(), "iva_server_queue_depth", `tenant="default"`)
		if depth == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %v, want 2", depth)
		}
		time.Sleep(time.Millisecond)
	}

	// Flood: every further arrival must shed synchronously without touching
	// the backend.
	callsBefore := be.calls.Load()
	for i := 0; i < 25; i++ {
		resp, body := doSearch(t, ts, "", validBody)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("flood request %d: HTTP %d, want 429: %s", i, resp.StatusCode, body)
		}
		if !strings.Contains(body, ShedQueueFull) {
			t.Fatalf("flood request %d: body %q does not name %q", i, body, ShedQueueFull)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("flood request %d: missing Retry-After", i)
		}
	}
	if got := be.calls.Load(); got != callsBefore {
		t.Fatalf("flood reached the backend: %d calls, want %d", got, callsBefore)
	}

	// Release: the two executing and two queued requests all complete.
	close(be.release)
	for i := 0; i < 4; i++ {
		select {
		case code := <-results:
			if code != http.StatusOK {
				t.Fatalf("blocked request finished with HTTP %d", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked requests never completed after release")
		}
	}
	if got := be.calls.Load(); got != 4 {
		t.Fatalf("backend calls = %d, want 4", got)
	}

	// No leaked admissions: gauges settle back to zero.
	deadline = time.Now().Add(5 * time.Second)
	for {
		text := srv.MetricsText()
		inflight := metricValue(t, text, "iva_server_inflight", `tenant="default"`)
		depth := metricValue(t, text, "iva_server_queue_depth", `tenant="default"`)
		if inflight == 0 && depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges leaked: inflight=%v queue=%v", inflight, depth)
		}
		time.Sleep(time.Millisecond)
	}
	if v := metricValue(t, srv.MetricsText(), "iva_server_shed_total", `tenant="default"`, `reason="queue_full"`); v != 25 {
		t.Fatalf("iva_server_shed_total{queue_full} = %v, want 25", v)
	}
}

// TestAdmissionExpiredDeadline: a request whose deadline has already passed
// is shed at admission — before consuming a slot, a queue place, or any
// index work.
func TestAdmissionExpiredDeadline(t *testing.T) {
	be := &stubBackend{}
	srv := New(be, nil, Config{})
	tn := srv.tenantFor("")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release, shed := srv.admit(ctx, tn)
	if release != nil || shed == nil || shed.reason != ShedExpired {
		t.Fatalf("admit(expired ctx) = (release=%v, %+v), want (nil, %s)", release != nil, shed, ShedExpired)
	}
	if got := tn.queued.Load(); got != 0 {
		t.Fatalf("expired request consumed a queue place: %d", got)
	}
	if len(tn.slots) != 0 {
		t.Fatalf("expired request consumed a slot")
	}
	if v := metricValue(t, srv.MetricsText(), "iva_server_admitted_total", `tenant="default"`); v != 0 {
		t.Fatalf("expired request counted as admitted")
	}
	if be.calls.Load() != 0 {
		t.Fatal("expired request reached the backend")
	}
}

// TestAdmissionDeadlineWhileQueued: a queued request whose deadline expires
// before a slot frees is shed with the deadline reason, and its queue place
// is returned.
func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	srv := New(&stubBackend{}, nil, Config{MaxConcurrent: 1, MaxQueue: 4})
	tn := srv.tenantFor("")
	tn.slots <- struct{}{} // occupy the only slot

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	release, shed := srv.admit(ctx, tn)
	if release != nil || shed == nil || shed.reason != ShedDeadline {
		t.Fatalf("admit(queued, expiring) = (release=%v, %+v), want (nil, %s)", release != nil, shed, ShedDeadline)
	}
	if got := tn.queued.Load(); got != 0 {
		t.Fatalf("shed request kept its queue place: %d", got)
	}
	if v := metricValue(t, srv.MetricsText(), "iva_server_queue_depth", `tenant="default"`); v != 0 {
		t.Fatalf("queue gauge leaked: %v", v)
	}
}

// TestGracefulDrain: Drain lets in-flight queries finish while shedding new
// arrivals with 503 + Retry-After, then returns; a drain that cannot finish
// in time reports the stuck count.
func TestGracefulDrain(t *testing.T) {
	be := &stubBackend{
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	srv, ts := newTestServer(t, be, Config{DefaultTimeout: 30 * time.Second})

	inFlight := make(chan int, 1)
	go func() { inFlight <- trySearch(ts, "", validBody) }()
	select {
	case <-be.started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never started")
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}

	// New arrivals shed with 503.
	resp, body := doSearch(t, ts, "", validBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request while draining: HTTP %d, want 503: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, ShedDraining) || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining shed lacks reason/Retry-After: %s", body)
	}
	if got := be.calls.Load(); got != 1 {
		t.Fatalf("draining request reached the backend (%d calls)", got)
	}

	// The in-flight query completes, then Drain returns.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the in-flight query finished", err)
	default:
	}
	close(be.release)
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight request finished with HTTP %d during drain", code)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned")
	}
}

// TestDrainTimeout: a drain whose context expires while a query is stuck
// reports the in-flight count instead of hanging.
func TestDrainTimeout(t *testing.T) {
	be := &stubBackend{
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	srv, ts := newTestServer(t, be, Config{DefaultTimeout: 30 * time.Second})
	go trySearch(ts, "", validBody)
	select {
	case <-be.started:
	case <-time.After(5 * time.Second):
		t.Fatal("request never started")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil with a query still in flight")
	}
	close(be.release)
}

// TestBadRequestNeverQueries: malformed or invalid bodies answer 400 and
// never reach the backend (nor debit admission state).
func TestBadRequestNeverQueries(t *testing.T) {
	be := &stubBackend{}
	srv, ts := newTestServer(t, be, Config{})
	bad := [][]byte{
		nil,
		[]byte(`{`),
		[]byte(`[]`),
		[]byte(`{"k":0,"terms":[{"attr":"a","num":1}]}`),
		[]byte(`{"k":3,"terms":[]}`),
		[]byte(`{"k":3,"terms":[{"attr":"a"}]}`),
		[]byte(`{"k":3,"terms":[{"attr":"a","num":1,"text":"b"}]}`),
		[]byte(`{"k":3,"terms":[{"attr":"a","num":1}],"unknown":true}`),
		[]byte(`{"k":3,"terms":[{"attr":"a","num":1}]} trailing`),
		[]byte(`{"k":3,"terms":[{"attr":"a","num":1},{"attr":"a","num":2}]}`),
	}
	for i, body := range bad {
		resp, got := doSearch(t, ts, "", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %d: HTTP %d, want 400: %s", i, resp.StatusCode, got)
		}
	}
	if got := be.calls.Load(); got != 0 {
		t.Fatalf("bad requests reached the backend: %d calls", got)
	}
	if v := metricValue(t, srv.MetricsText(), "iva_server_admitted_total", `tenant="default"`); v != 0 {
		t.Fatalf("bad requests counted as admitted: %v", v)
	}
	if resp, _ := ts.Client().Get(ts.URL + "/v1/search"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestFloodRealStore floods a real disk-backed store through HTTP with a
// tight concurrency cap, then proves the serving layer leaked nothing: the
// pool-pin gauge reads zero, the admission gauges read zero, and a final
// query still answers byte-identically to the in-process path.
func TestFloodRealStore(t *testing.T) {
	s, err := iva.Create(t.TempDir(), iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seedStore(t, 21, 300, s.Insert, s.Sync)

	srv, ts := newTestServer(t, s, Config{
		MaxConcurrent:  2,
		MaxQueue:       4,
		DefaultTimeout: 5 * time.Second,
	})

	var wg sync.WaitGroup
	var ok, shed, other atomic.Int64
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf(`{"k":5,"terms":[{"attr":"price","num":%d}]}`, 50+i))
			switch trySearch(ts, "", body) {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("flood produced unexpected statuses (ok=%d shed=%d other=%d)", ok.Load(), shed.Load(), other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("flood: no request succeeded")
	}

	// Pool pins must all be returned once the flood settles — a pinned frame
	// held past its query would starve the CLOCK pool permanently.
	pinRe := regexp.MustCompile(`(?m)^iva_pool_pinned_frames(?:\{[^}]*\})? (\S+)$`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		for _, m := range pinRe.FindAllStringSubmatch(s.MetricsText(), -1) {
			if m[1] != "0" {
				clean = false
			}
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool pins leaked after flood:\n%s", pinRe.FindAllString(s.MetricsText(), -1))
		}
		time.Sleep(time.Millisecond)
	}
	text := srv.MetricsText()
	if v := metricValue(t, text, "iva_server_inflight", `tenant="default"`); v != 0 {
		t.Fatalf("inflight gauge leaked: %v", v)
	}
	if v := metricValue(t, text, "iva_server_queue_depth", `tenant="default"`); v != 0 {
		t.Fatalf("queue gauge leaked: %v", v)
	}

	// The store still serves byte-identical answers.
	checkEquivalence(t, s, 22, 5)
}
