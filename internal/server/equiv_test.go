package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/workload"
)

// ivaRow converts a generated workload row to the public insert form.
func ivaRow(wr workload.Row) iva.Row {
	row := make(iva.Row, len(wr))
	for _, c := range wr {
		if c.Val.Kind == model.KindNumeric {
			row[c.Name] = iva.Num(c.Val.Num)
		} else {
			row[c.Name] = iva.Strings(c.Val.Strs...)
		}
	}
	return row
}

// requestFromSpec renders a generated query as the wire request, dropping
// duplicate attributes (the generator's ghost terms can collide, and both
// the engine and the decoder reject duplicates).
func requestFromSpec(spec workload.QuerySpec) *SearchRequest {
	req := &SearchRequest{K: spec.K}
	seen := make(map[string]bool, len(spec.Terms))
	for _, t := range spec.Terms {
		if seen[t.Name] {
			continue
		}
		seen[t.Name] = true
		st := SearchTerm{Attr: t.Name, Weight: t.Weight}
		if t.Kind == model.KindNumeric {
			n := t.Num
			st.Num = &n
		} else {
			s := t.Str
			st.Text = &s
		}
		req.Terms = append(req.Terms, st)
	}
	return req
}

// seedStore fills be with nrows generated rows and syncs. The backend must
// be freshly created.
func seedStore(t *testing.T, seed uint64, nrows int, insert func(iva.Row) (iva.TID, error), sync func() error) []iva.TID {
	t.Helper()
	g := workload.New(seed)
	tids := make([]iva.TID, 0, nrows)
	for i := 0; i < nrows; i++ {
		tid, err := insert(ivaRow(g.Row()))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		tids = append(tids, tid)
	}
	if err := sync(); err != nil {
		t.Fatal(err)
	}
	return tids
}

// postSearch round-trips one request through the real HTTP path.
func postSearch(t *testing.T, client *http.Client, url string, req *SearchRequest, tenantName string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenantName != "" {
		hr.Header.Set(TenantHeader, tenantName)
	}
	resp, err := client.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// checkEquivalence drives nq generated queries through the HTTP path and the
// in-process path and demands byte-identical answers: the decoded results
// must match element-wise (tid and bit-equal distance), and both rendered
// through the server's encoder must serialize to the same bytes.
func checkEquivalence(t *testing.T, be Backend, seed uint64, nq int) {
	t.Helper()
	srv := New(be, nil, Config{})
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	g := workload.New(seed)
	for i := 0; i < nq; i++ {
		req := requestFromSpec(g.Query())
		resp, raw := postSearch(t, ts.Client(), ts.URL, req, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: HTTP %d: %s", i, resp.StatusCode, raw)
		}
		var got SearchResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("query %d: decode response: %v", i, err)
		}
		want, _, err := be.SearchContext(context.Background(), req.Query())
		if err != nil {
			t.Fatalf("query %d: in-process search: %v", i, err)
		}
		if len(got.Results) != len(want) {
			t.Fatalf("query %d: HTTP returned %d results, in-process %d\n  http: %v\n  in-proc: %v",
				i, len(got.Results), len(want), got.Results, want)
		}
		for j := range want {
			if got.Results[j].TID != want[j].TID || got.Results[j].Dist != want[j].Dist {
				t.Fatalf("query %d result %d: HTTP (tid %d, %v), in-process (tid %d, %v)",
					i, j, got.Results[j].TID, got.Results[j].Dist, want[j].TID, want[j].Dist)
			}
		}
		// Bit-identical on the wire: both answers rendered through the same
		// encoder must produce the same bytes (float64 survives a JSON
		// round-trip exactly, so any drift is a real divergence).
		httpBytes, err := json.Marshal(got.Results)
		if err != nil {
			t.Fatal(err)
		}
		inprocBytes, err := json.Marshal(Results(want))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(httpBytes, inprocBytes) {
			t.Fatalf("query %d: wire bytes diverge\n  http:    %s\n  in-proc: %s", i, httpBytes, inprocBytes)
		}
	}
}

// TestServerEquivalence is the battery's core: over a seeded randomized
// workload, every HTTP answer is byte-identical to the in-process answer, at
// sequential and full parallelism, with zone maps on and off, on a single
// store and on a sharded one. (The degraded-read configuration lives in the
// root package's TestServerEquivalenceDegraded, which needs fault-injection
// access to the index file.)
func TestServerEquivalence(t *testing.T) {
	const (
		seed  = 7331
		nrows = 500
		nq    = 80
	)
	cases := []struct {
		name   string
		opts   iva.Options
		shards int
	}{
		{"sequential", iva.Options{SearchParallelism: 1}, 0},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), iva.Options{SearchParallelism: 0}, 0},
		{"zonemaps-off", iva.Options{DisableZoneMaps: true}, 0},
		{"sharded", iva.Options{}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var be Backend
			if tc.shards > 0 {
				s, err := iva.CreateSharded(dir, tc.shards, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				seedStore(t, seed, nrows, s.Insert, s.Sync)
				be = s
			} else {
				s, err := iva.Create(dir, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				seedStore(t, seed, nrows, s.Insert, s.Sync)
				be = s
			}
			checkEquivalence(t, be, seed+1, nq)
		})
	}
}

// TestGetEndpoint round-trips /v1/get against a real store: a live tuple
// comes back with its full row, a dead tid is 404, a malformed tid is 400.
func TestGetEndpoint(t *testing.T) {
	s, err := iva.Create(t.TempDir(), iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tids := seedStore(t, 99, 50, s.Insert, s.Sync)

	srv := New(s, nil, Config{})
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, raw
	}

	tid := tids[13]
	resp, raw := get(fmt.Sprintf("/v1/get?tid=%d", tid))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: HTTP %d: %s", resp.StatusCode, raw)
	}
	var gr GetResponse
	if err := json.Unmarshal(raw, &gr); err != nil {
		t.Fatal(err)
	}
	want, err := s.Get(tid)
	if err != nil {
		t.Fatal(err)
	}
	if gr.TID != tid || len(gr.Row) != len(want) {
		t.Fatalf("get: got tid %d with %d attrs, want tid %d with %d", gr.TID, len(gr.Row), tid, len(want))
	}
	for name, v := range want {
		gv, ok := gr.Row[name]
		if !ok {
			t.Fatalf("get: attribute %q missing from response", name)
		}
		if v.Kind() == iva.Numeric {
			if gv.Num == nil || *gv.Num != v.Float() {
				t.Fatalf("get: attr %q = %v, want num %v", name, gv, v.Float())
			}
		} else if len(gv.Strs) != len(v.Texts()) {
			t.Fatalf("get: attr %q = %v, want strs %v", name, gv, v.Texts())
		}
	}

	if resp, _ = get("/v1/get?tid=999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dead tid: HTTP %d, want 404", resp.StatusCode)
	}
	if resp, _ = get("/v1/get?tid=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad tid: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, _ = get("/v1/get"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing tid: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestStatsEndpoint sanity-checks /v1/stats shape over a live store.
func TestStatsEndpoint(t *testing.T) {
	s, err := iva.Create(t.TempDir(), iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seedStore(t, 5, 30, s.Insert, s.Sync)

	srv := New(s, nil, Config{})
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: HTTP %d", resp.StatusCode)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Store.Tuples != 30 {
		t.Fatalf("stats: tuples = %d, want 30", sr.Store.Tuples)
	}
	if sr.Server.Tenants < 1 || sr.Server.Draining {
		t.Fatalf("stats: unexpected server block %+v", sr.Server)
	}
}
