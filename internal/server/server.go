// Package server is the network query service over an iVA-file store: an
// HTTP JSON search API (POST /v1/search, /v1/get, /v1/stats) running over
// Store or Sharded through the SearchContext/QueryTimeout lifecycle, with
// per-tenant admission control in front — token-bucket quotas, concurrency
// limits, a bounded deadline-aware admission queue that sheds with 429 +
// Retry-After, and graceful drain for shutdown.
//
// The serving-path contract is the equivalence battery's invariant: an
// answer served over HTTP is byte-identical to the same query's in-process
// Search answer, whatever the admission configuration — admission only
// decides WHETHER a query runs, never WHAT it returns.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/obs"
)

// Backend is the store surface the server runs over; *iva.Store and
// *iva.Sharded both satisfy it.
type Backend interface {
	SearchContext(ctx context.Context, q *iva.Query) ([]iva.Result, iva.QueryStats, error)
	Get(tid iva.TID) (iva.Row, error)
	Stats() iva.StoreStats
}

// TenantHeader names the request header carrying the tenant id. Requests
// without it belong to the default tenant.
const TenantHeader = "X-Iva-Tenant"

// Config tunes the server's admission control and request bounds. The zero
// value serves with no quotas, a 2×GOMAXPROCS concurrency cap per tenant and
// sane deadlines.
type Config struct {
	// DefaultTenant names the tenant of requests without a tenant header.
	// Default "default".
	DefaultTenant string
	// QPS is each tenant's sustained request quota (token-bucket refill
	// rate); Burst is the bucket capacity. QPS 0 disables quotas; Burst 0
	// defaults to max(1, ceil(QPS)).
	QPS   float64
	Burst int
	// MaxConcurrent caps each tenant's concurrently executing searches.
	// Default 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds each tenant's admission queue: searches beyond the
	// concurrency cap wait here until a slot frees or their deadline
	// expires; arrivals past the bound shed immediately. Default
	// 4×MaxConcurrent.
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the client sets no
	// timeout_ms (default 2s); MaxTimeout clamps client-requested deadlines
	// (default 30s). The deadline composes with Options.QueryTimeout — the
	// earlier wins.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes, MaxK and MaxTerms bound request decoding (defaults
	// DefaultMaxBodyBytes/DefaultMaxK/DefaultMaxTerms).
	MaxBodyBytes int64
	MaxK         int
	MaxTerms     int
	// Now overrides the clock, for tests and benches. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.DefaultTenant == "" {
		c.DefaultTenant = "default"
	}
	if c.Burst <= 0 && c.QPS > 0 {
		c.Burst = int(c.QPS + 0.999)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxK <= 0 {
		c.MaxK = DefaultMaxK
	}
	if c.MaxTerms <= 0 {
		c.MaxTerms = DefaultMaxTerms
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the query service: mount it with Register, drain it with Drain.
type Server struct {
	be  Backend
	cfg Config
	reg *obs.Registry

	now func() time.Time

	tmu     sync.Mutex
	tenants map[string]*tenant

	draining atomic.Bool
	active   atomic.Int64 // data-plane requests currently inside a handler

	dur   map[string]*obs.Histogram // per endpoint
	cmu   sync.Mutex
	codes map[string]*obs.Counter // endpoint+code → requests counter
}

// New builds a server over be. Server metric families register into reg; a
// nil reg gets a private registry (exposed by WriteMetrics either way).
func New(be Backend, reg *obs.Registry, cfg Config) *Server {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		be:      be,
		cfg:     cfg.withDefaults(),
		reg:     reg,
		tenants: make(map[string]*tenant),
		codes:   make(map[string]*obs.Counter),
		dur:     make(map[string]*obs.Histogram, 3),
	}
	s.now = s.cfg.Now
	for _, ep := range []string{"search", "get", "stats", "repl"} {
		s.dur[ep] = reg.Histogram("iva_server_request_duration_seconds",
			"End-to-end request latency at the HTTP surface, by endpoint.",
			obs.Labels{"endpoint": ep}, nil)
	}
	reg.GaugeFunc("iva_server_tenants", "Tenants seen since startup.", nil, func() float64 {
		s.tmu.Lock()
		defer s.tmu.Unlock()
		return float64(len(s.tenants))
	})
	reg.GaugeFunc("iva_server_draining", "1 while the server drains for shutdown (new data-plane requests shed with 503).", nil, func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("iva_server_active_requests", "Data-plane requests currently inside a handler (executing or queued).", nil, func() float64 {
		return float64(s.active.Load())
	})
	// Materialize the default tenant so its families expose from the start.
	s.tenantFor(s.cfg.DefaultTenant)
	return s
}

func (s *Server) countRequest(endpoint string, code int) {
	key := endpoint + " " + strconv.Itoa(code)
	s.cmu.Lock()
	c, ok := s.codes[key]
	if !ok {
		c = s.reg.Counter("iva_server_requests_total", "Requests served at the HTTP surface, by endpoint and status code.",
			obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(code)})
		s.codes[key] = c
	}
	s.cmu.Unlock()
	c.Inc()
}

// Register mounts the service's endpoints on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/search", s.handleSearch)
	mux.HandleFunc("/v1/get", s.handleGet)
	mux.HandleFunc("/v1/stats", s.handleStats)
}

// WriteMetrics serializes the server's metric families in the Prometheus
// text exposition format. When the server shares the store's registry this
// duplicates the store families; with a private registry, append it to the
// store's exposition (families are disjoint, so concatenation is valid).
func (s *Server) WriteMetrics(w io.Writer) error { return s.reg.WritePrometheus(w) }

// MetricsText returns WriteMetrics output as a string.
func (s *Server) MetricsText() string { return s.reg.Text() }

// Drain sheds all new data-plane requests (503 + Retry-After) and blocks
// until in-flight ones — executing or queued — have completed, or ctx
// expires. Safe to call more than once. `ivatool serve` calls it on
// SIGTERM/SIGINT before closing the listener, so a rolling restart never
// cuts a query mid-flight.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.active.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d requests still in flight: %w", s.active.Load(), ctx.Err())
		case <-tick.C:
		}
	}
	return nil
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// errorBody is the JSON shape of every non-200 answer.
type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, code int, reason, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, Reason: reason})
	s.countRequest(endpoint, code)
}

func (s *Server) writeShed(w http.ResponseWriter, endpoint string, shed *shedError) {
	code := http.StatusTooManyRequests
	if shed.reason == ShedDraining {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Retry-After", strconv.Itoa(shed.retryAfterSeconds()))
	s.writeError(w, endpoint, code, shed.reason, "request shed: "+shed.reason)
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are out; nothing sound to do but count it.
		s.countRequest(endpoint, http.StatusInternalServerError)
		return
	}
	s.countRequest(endpoint, http.StatusOK)
}

// timeout resolves a request's deadline from its timeout_ms.
func (s *Server) timeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// handleSearch answers POST /v1/search: decode → admission → SearchContext.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	const ep = "search"
	start := time.Now()
	defer func() { s.dur[ep].Observe(time.Since(start).Seconds()) }()
	if r.Method != http.MethodPost {
		s.writeError(w, ep, http.StatusMethodNotAllowed, "", "POST required")
		return
	}
	s.active.Add(1)
	defer s.active.Add(-1)

	tn := s.tenantFor(r.Header.Get(TenantHeader))
	tn.requests.Inc()
	req, err := DecodeSearchRequest(r.Body, s.cfg.MaxBodyBytes, s.cfg.MaxK, s.cfg.MaxTerms)
	if err != nil {
		s.writeError(w, ep, http.StatusBadRequest, "", err.Error())
		return
	}
	// The request context cancels on client disconnect; the resolved
	// timeout caps the whole wait-plus-execute path, and composes with the
	// store's own Options.QueryTimeout (the earlier deadline wins).
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	release, shed := s.admit(ctx, tn)
	if shed != nil {
		s.writeShed(w, ep, shed)
		return
	}
	defer release()

	res, stats, err := s.be.SearchContext(ctx, req.Query())
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The deadline expired mid-query (admission already sheds
			// pre-expired ones): the work is lost, report it as a timeout
			// rather than a shed.
			s.writeError(w, ep, http.StatusGatewayTimeout, "timeout", err.Error())
			return
		}
		s.writeError(w, ep, http.StatusInternalServerError, "", err.Error())
		return
	}
	s.writeJSON(w, ep, SearchResponse{
		TraceID: stats.TraceID,
		Results: Results(res),
		Stats: SearchStats{
			Scanned:          stats.Scanned,
			TableAccesses:    stats.TableAccesses,
			CacheHits:        stats.CacheHits,
			PhysReads:        stats.PhysReads,
			Workers:          stats.Workers,
			DegradedSegments: stats.DegradedSegments,
		},
	})
}

// GetResponse is the body of a successful /v1/get answer. Values render as
// {"num": x} or {"strs": [...]} per attribute.
type GetResponse struct {
	TID iva.TID             `json:"tid"`
	Row map[string]GetValue `json:"row"`
}

// GetValue is one attribute value of a /v1/get answer.
type GetValue struct {
	Num  *float64 `json:"num,omitempty"`
	Strs []string `json:"strs,omitempty"`
}

// handleGet answers GET /v1/get?tid=N: a primary-key row fetch. Get requests
// debit the tenant's quota but skip the concurrency queue — they are point
// reads, far cheaper than a search.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	const ep = "get"
	start := time.Now()
	defer func() { s.dur[ep].Observe(time.Since(start).Seconds()) }()
	if r.Method != http.MethodGet {
		s.writeError(w, ep, http.StatusMethodNotAllowed, "", "GET required")
		return
	}
	s.active.Add(1)
	defer s.active.Add(-1)
	tn := s.tenantFor(r.Header.Get(TenantHeader))
	tn.requests.Inc()
	if s.draining.Load() {
		s.writeShed(w, ep, tn.shedAs(ShedDraining, time.Second))
		return
	}
	if ok, wait := tn.takeToken(s.now(), s.cfg.QPS, s.cfg.Burst); !ok {
		s.writeShed(w, ep, tn.shedAs(ShedQuota, wait))
		return
	}
	tidStr := r.URL.Query().Get("tid")
	tid64, err := strconv.ParseUint(tidStr, 10, 32)
	if err != nil {
		s.writeError(w, ep, http.StatusBadRequest, "", fmt.Sprintf("bad tid %q", tidStr))
		return
	}
	row, err := s.be.Get(iva.TID(tid64))
	if err != nil {
		if errors.Is(err, iva.ErrNotFound) {
			s.writeError(w, ep, http.StatusNotFound, "", err.Error())
			return
		}
		s.writeError(w, ep, http.StatusInternalServerError, "", err.Error())
		return
	}
	out := GetResponse{TID: iva.TID(tid64), Row: make(map[string]GetValue, len(row))}
	for name, v := range row {
		if v.Kind() == iva.Numeric {
			f := v.Float()
			out.Row[name] = GetValue{Num: &f}
		} else {
			out.Row[name] = GetValue{Strs: v.Texts()}
		}
	}
	s.writeJSON(w, ep, out)
}

// StatsResponse is the body of /v1/stats: the store's shape plus the
// server's own serving state.
type StatsResponse struct {
	Store  iva.StoreStats `json:"store"`
	Server struct {
		Tenants  int   `json:"tenants"`
		Draining bool  `json:"draining"`
		Active   int64 `json:"active_requests"`
	} `json:"server"`
	// Repl is present when the backend replicates (as primary or follower);
	// followers expose their lag here.
	Repl *iva.ReplStatus `json:"repl,omitempty"`
}

// handleStats answers GET /v1/stats. Stats stay served while draining so
// operators can watch a drain complete.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	const ep = "stats"
	start := time.Now()
	defer func() { s.dur[ep].Observe(time.Since(start).Seconds()) }()
	if r.Method != http.MethodGet {
		s.writeError(w, ep, http.StatusMethodNotAllowed, "", "GET required")
		return
	}
	var out StatsResponse
	out.Store = s.be.Stats()
	if rb, ok := s.be.(interface{ ReplStatus() iva.ReplStatus }); ok {
		if rs := rb.ReplStatus(); rs.Role != "none" {
			out.Repl = &rs
		}
	}
	s.tmu.Lock()
	out.Server.Tenants = len(s.tenants)
	s.tmu.Unlock()
	out.Server.Draining = s.draining.Load()
	out.Server.Active = s.active.Load()
	s.writeJSON(w, ep, out)
}
