package server

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparsewide/iva/internal/obs"
)

// Shed reasons, the `reason` label of iva_server_shed_total. Every shed
// answers 429 (503 while draining) with a Retry-After header, before any
// index work happens.
const (
	// ShedQuota: the tenant's token bucket is empty.
	ShedQuota = "quota"
	// ShedQueueFull: the tenant's admission queue is at capacity.
	ShedQueueFull = "queue_full"
	// ShedExpired: the request's deadline had already passed at admission.
	ShedExpired = "expired"
	// ShedDeadline: the deadline expired while waiting for an execution slot
	// — the request could not meet it, so no index work was started.
	ShedDeadline = "deadline"
	// ShedDraining: the server is draining for shutdown.
	ShedDraining = "draining"
)

// shedError describes one load-shedding decision.
type shedError struct {
	reason     string
	retryAfter time.Duration // rounded up to whole seconds on the wire
}

// tenant is one tenant's admission state: a token-bucket quota and a
// concurrency limit with a bounded FIFO-ish wait queue. Tenants are created
// on first use and live for the server's lifetime.
type tenant struct {
	name string

	// Token bucket (quota). Guarded by mu; tokens refill lazily at qps up to
	// burst. qps <= 0 disables the quota.
	mu     sync.Mutex
	tokens float64
	last   time.Time

	// Concurrency limit: slots is a semaphore of capacity MaxConcurrent;
	// queued bounds the waiters (admission queue depth).
	slots  chan struct{}
	queued atomic.Int64

	inflight *obs.Gauge
	queueGa  *obs.Gauge
	admitted *obs.Counter
	shed     map[string]*obs.Counter
	requests *obs.Counter
}

func (s *Server) newTenant(name string) *tenant {
	labels := obs.Labels{"tenant": name}
	tn := &tenant{
		name:     name,
		tokens:   float64(s.cfg.Burst),
		last:     s.now(),
		slots:    make(chan struct{}, s.cfg.MaxConcurrent),
		inflight: s.reg.Gauge("iva_server_inflight", "Searches currently executing, per tenant.", labels),
		queueGa:  s.reg.Gauge("iva_server_queue_depth", "Searches waiting in the admission queue, per tenant.", labels),
		admitted: s.reg.Counter("iva_server_admitted_total", "Searches admitted past quota, queue and deadline checks, per tenant.", labels),
		requests: s.reg.Counter("iva_server_tenant_requests_total", "Data-plane requests received, per tenant.", labels),
		shed:     make(map[string]*obs.Counter, 5),
	}
	for _, reason := range []string{ShedQuota, ShedQueueFull, ShedExpired, ShedDeadline, ShedDraining} {
		tn.shed[reason] = s.reg.Counter("iva_server_shed_total",
			"Requests shed by admission control before any index work, by tenant and reason.",
			obs.With(labels, "reason", reason))
	}
	return tn
}

// tenantFor returns the tenant for the given name, creating it on first use.
func (s *Server) tenantFor(name string) *tenant {
	if name == "" {
		name = s.cfg.DefaultTenant
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	tn, ok := s.tenants[name]
	if !ok {
		tn = s.newTenant(name)
		s.tenants[name] = tn
	}
	return tn
}

// takeToken debits one token from the tenant's bucket, or reports how long
// until one will be available. A zero-or-negative QPS disables the quota.
func (tn *tenant) takeToken(now time.Time, qps float64, burst int) (ok bool, retryAfter time.Duration) {
	if qps <= 0 {
		return true, 0
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	elapsed := now.Sub(tn.last).Seconds()
	if elapsed > 0 {
		tn.tokens = math.Min(float64(burst), tn.tokens+elapsed*qps)
		tn.last = now
	}
	if tn.tokens >= 1 {
		tn.tokens--
		return true, 0
	}
	return false, time.Duration((1 - tn.tokens) / qps * float64(time.Second))
}

// admit runs the full admission pipeline for one search: drain check, quota,
// deadline, bounded queue, concurrency slot. On success it returns a release
// function the caller must invoke when the query finishes. On shedding it
// returns a non-nil shedError and records the decision in the tenant's shed
// counters.
func (s *Server) admit(ctx context.Context, tn *tenant) (release func(), shed *shedError) {
	if s.draining.Load() {
		return nil, tn.shedAs(ShedDraining, time.Second)
	}
	if ok, wait := tn.takeToken(s.now(), s.cfg.QPS, s.cfg.Burst); !ok {
		return nil, tn.shedAs(ShedQuota, wait)
	}
	// A request whose deadline has already passed can never be answered in
	// time: shed it before it costs a queue slot or any index work.
	if ctx.Err() != nil {
		return nil, tn.shedAs(ShedExpired, 0)
	}
	select {
	case tn.slots <- struct{}{}: // free slot, no queueing
	default:
		// All slots busy: wait in the bounded queue until a slot frees or
		// the deadline decides the request cannot be met.
		if tn.queued.Add(1) > int64(s.cfg.MaxQueue) {
			tn.queued.Add(-1)
			return nil, tn.shedAs(ShedQueueFull, time.Second)
		}
		tn.queueGa.Add(1)
		select {
		case tn.slots <- struct{}{}:
			tn.queued.Add(-1)
			tn.queueGa.Add(-1)
		case <-ctx.Done():
			tn.queued.Add(-1)
			tn.queueGa.Add(-1)
			return nil, tn.shedAs(ShedDeadline, time.Second)
		}
	}
	tn.admitted.Inc()
	tn.inflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			tn.inflight.Add(-1)
			<-tn.slots
		})
	}, nil
}

func (tn *tenant) shedAs(reason string, retryAfter time.Duration) *shedError {
	tn.shed[reason].Inc()
	return &shedError{reason: reason, retryAfter: retryAfter}
}

// retryAfterSeconds renders a shed's backoff hint as whole seconds for the
// Retry-After header: sub-second waits round up to 1 so clients always back
// off a little; an expired-deadline shed may retry immediately (0).
func (e *shedError) retryAfterSeconds() int {
	if e.retryAfter <= 0 {
		return 0
	}
	secs := int(math.Ceil(e.retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
