package oracle

import (
	"flag"
	"testing"
)

// Reproduction flags: a failure prints the exact invocation that replays it.
var (
	flagSeed  = flag.Uint64("oracle.seed", 0x1fa5eed, "workload seed to replay")
	flagOps   = flag.Int("oracle.ops", 0, "schedule length (0 = build-dependent default)")
	flagCache = flag.Int64("oracle.cache", 0, "iVA buffer-pool bytes (0 = 8 MiB default)")
)

func ops(t *testing.T, def int) int {
	if *flagOps > 0 {
		return *flagOps
	}
	if testing.Short() {
		return shortOps
	}
	return def
}

// TestDifferential is the in-memory differential soak: iVA-file vs SII vs
// DST vs brute force over one seeded schedule.
func TestDifferential(t *testing.T) {
	res, err := Run(Options{Seed: *flagSeed, Ops: ops(t, defaultOps), CacheBytes: *flagCache, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle: %+v", res)
	if res.Searches == 0 || res.Deletes == 0 || res.Reopens == 0 || res.Rebuilds == 0 {
		t.Fatalf("schedule did not exercise all op kinds: %+v", res)
	}
	if res.CorruptionChecks == 0 || res.ZoneCorruptionChecks == 0 {
		t.Fatalf("run skipped a seeded corruption sweep: %+v", res)
	}
	if res.ZonePrunes == 0 {
		t.Fatalf("zone-map pruning never engaged during the soak: %+v", res)
	}
}

// TestDifferentialSmallPool replays the soak with a 4-page buffer pool: every
// filter scan and refine fetch goes through CLOCK eviction and pinned-window
// reloads, and the results must stay bit-identical to the reference engines
// across the whole parallelism grid.
func TestDifferentialSmallPool(t *testing.T) {
	n := ops(t, defaultOps) / 4
	if n < 300 {
		n = 300
	}
	res, err := Run(Options{Seed: *flagSeed + 2, Ops: n, CacheBytes: 16 << 10, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle (small pool): %+v", res)
}

// TestDifferentialCodec is the format-v6 codec differential: a second
// iVA-file built with the packed block codec rides the full op mix —
// inserts, deletes, updates, syncs, reopens, rebuilds — and every answer it
// gives must be byte-identical to the reference across the parallelism grid.
func TestDifferentialCodec(t *testing.T) {
	n := ops(t, defaultOps) / 4
	if n < 300 {
		n = 300
	}
	res, err := Run(Options{Seed: *flagSeed + 3, Ops: n, CacheBytes: *flagCache, CodecMirror: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle (codec): %+v", res)
	if res.CodecComparisons == 0 {
		t.Fatalf("the packed mirror was never compared: %+v", res)
	}
	if res.Rebuilds == 0 {
		t.Fatalf("schedule never rebuilt, so no list could adopt the packed codec: %+v", res)
	}
	if res.PackedLists == 0 {
		t.Fatalf("the packed mirror never held a packed list — the differential was vacuous: %+v", res)
	}
}

// TestDifferentialOnDisk repeats a shorter run against real files, covering
// the FileDevice reopen paths.
func TestDifferentialOnDisk(t *testing.T) {
	n := ops(t, defaultOps) / 8
	if n < 300 {
		n = 300
	}
	res, err := Run(Options{Seed: *flagSeed + 1, Ops: n, Dir: t.TempDir(), CacheBytes: *flagCache, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle (disk): %+v", res)
}
