package oracle

import (
	"errors"
	"fmt"
	"os"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// readByte/writeByte touch the raw device under a handle, for fault
// injection. The caller must have closed the handle's File first so no
// cached page masks (or later overwrites) the flip.
func (hd *handle) readByte(off int64) (byte, error) {
	var b [1]byte
	if hd.dir == "" {
		_, err := hd.mem.ReadAt(b[:], off)
		return b[0], err
	}
	f, err := os.Open(hd.path())
	if err != nil {
		return 0, err
	}
	defer f.Close()
	_, err = f.ReadAt(b[:], off)
	return b[0], err
}

func (hd *handle) writeByte(off int64, v byte) error {
	if hd.dir == "" {
		_, err := hd.mem.WriteAt([]byte{v}, off)
		return err
	}
	f, err := os.OpenFile(hd.path(), os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte{v}, off); err != nil {
		return err
	}
	return f.Sync()
}

// splitmix64 is the seeded choice generator for the corruption step —
// deterministic from the workload seed, so every failure reproduces.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// corruptionSweep closes a run by proving the end-to-end corruption
// contract on real data: one seeded bit is flipped inside a committed
// vector-list extent of the iVA index, and then
//
//   - under IntegrityDegrade every grid query must return bit-identical
//     top-k to the brute-force reference (degradation routes the damaged
//     segment's tuples to refine, which recomputes exact distances from
//     the table file), and Scrub must report the damage;
//   - under IntegrityStrict every grid query either fails with a
//     *storage.CorruptionError or — if it never touches the damaged
//     segment — returns the identical top-k; Scrub must still report it.
//
// The flip is then reverted and the index reopened clean.
func (h *harness) corruptionSweep() error {
	if err := h.syncAll(); err != nil {
		return err
	}
	extents := h.iva.ix.VectorExtents()
	if len(extents) == 0 {
		return nil // nothing committed to corrupt (degenerate run)
	}
	r := splitmix64(h.opt.Seed)
	ext := extents[r%uint64(len(extents))]
	off := ext.Offset + int64(splitmix64(r)%uint64(ext.Len))
	bit := uint(splitmix64(r+1) % 8)

	// Pre-generate the grid queries so both phases see the same workload
	// state and reference answers.
	queries := make([]*model.Query, 0, len(combos))
	wants := make([][]model.Result, 0, len(combos))
	for _, c := range combos {
		q, err := h.resolveQuery(h.gen.Query())
		if err != nil {
			return err
		}
		_, _, _, refM := h.metricsFor(c)
		queries = append(queries, q)
		wants = append(wants, h.bruteForce(q, refM))
	}

	if err := h.closeIVA(); err != nil {
		return err
	}
	orig, err := h.iva.ixH.readByte(off)
	if err != nil {
		return h.failf("corruption: read byte %d: %v", off, err)
	}
	if err := h.iva.ixH.writeByte(off, orig^(1<<bit)); err != nil {
		return h.failf("corruption: flip byte %d: %v", off, err)
	}

	// Phase 1: DegradeReads — exact answers through the damage.
	opts := coreOpts()
	if err := h.corruptionPhase("degrade", opts, queries, wants, false); err != nil {
		return err
	}
	// Phase 2: Strict — fail fast, or untouched-and-exact.
	if err := h.closeIVA(); err != nil {
		return err
	}
	opts.Integrity = core.IntegrityStrict
	if err := h.corruptionPhase("strict", opts, queries, wants, true); err != nil {
		return err
	}

	// Revert and verify the store is whole again.
	if err := h.closeIVA(); err != nil {
		return err
	}
	if err := h.iva.ixH.writeByte(off, orig); err != nil {
		return h.failf("corruption: revert byte %d: %v", off, err)
	}
	if err := h.openIVA(coreOpts()); err != nil {
		return err
	}
	rep, err := h.iva.ix.Scrub()
	if err != nil {
		return h.failf("corruption: clean scrub: %v", err)
	}
	if !rep.Clean() {
		return h.failf("corruption: scrub still dirty after revert: %v", rep.Problems)
	}
	h.res.CorruptionChecks++
	return h.zoneCorruptionSweep()
}

// zoneCorruptionSweep proves the corruption contract for the zone-map chain
// (format v5): one seeded bit flipped inside a committed zone extent must
// never change answers. Under DegradeReads the open drops every zone record
// — pruning turns off, the grid queries stay bit-identical, and Scrub
// reports the drop. Under Strict the open itself must refuse the file with
// a *storage.CorruptionError (zone records verify at open, not lazily).
// The flip is then reverted and the index reopened clean.
func (h *harness) zoneCorruptionSweep() error {
	extents := h.iva.ix.ZoneExtents()
	if len(extents) == 0 {
		return nil // no sealed zone records committed (degenerate run)
	}
	r := splitmix64(h.opt.Seed ^ 0x7a6e6d61) // a distinct stream from the vector sweep
	ext := extents[r%uint64(len(extents))]
	off := ext.Offset + int64(splitmix64(r)%uint64(ext.Len))
	bit := uint(splitmix64(r+1) % 8)

	queries := make([]*model.Query, 0, len(combos))
	wants := make([][]model.Result, 0, len(combos))
	for _, c := range combos {
		q, err := h.resolveQuery(h.gen.Query())
		if err != nil {
			return err
		}
		_, _, _, refM := h.metricsFor(c)
		queries = append(queries, q)
		wants = append(wants, h.bruteForce(q, refM))
	}

	if err := h.closeIVA(); err != nil {
		return err
	}
	orig, err := h.iva.ixH.readByte(off)
	if err != nil {
		return h.failf("zone corruption: read byte %d: %v", off, err)
	}
	if err := h.iva.ixH.writeByte(off, orig^(1<<bit)); err != nil {
		return h.failf("zone corruption: flip byte %d: %v", off, err)
	}

	// Phase 1: DegradeReads — the open drops the zone records, pruning is
	// off, and the now-unpruned queries are still bit-identical.
	if err := h.openIVA(coreOpts()); err != nil {
		return err
	}
	if h.iva.ix.DroppedZones() == 0 {
		return h.failf("zone corruption: degraded open dropped no zone records")
	}
	if h.iva.ix.ZoneMapsOn() {
		return h.failf("zone corruption: pruning still on after zone damage")
	}
	for i, q := range queries {
		c := combos[i]
		ivaM, _, _, _ := h.metricsFor(c)
		for _, par := range parGrid {
			h.iva.ix.SetSearchParallelism(par)
			got, st, err := h.iva.ix.Search(q, ivaM)
			if err != nil {
				return h.failf("zone corruption degrade %s par=%d: %v", c.name, par, err)
			}
			if st.StripesZonePruned != 0 {
				return h.failf("zone corruption degrade %s par=%d: pruned %d stripes from dropped zones",
					c.name, par, st.StripesZonePruned)
			}
			if err := h.diff(fmt.Sprintf("zone corruption degrade %s par=%d", c.name, par), wants[i], got); err != nil {
				return err
			}
		}
	}
	rep, err := h.iva.ix.Scrub()
	if err != nil {
		return h.failf("zone corruption: degrade scrub: %v", err)
	}
	if rep.Clean() {
		return h.failf("zone corruption: scrub missed the flipped zone byte")
	}

	// Phase 2: Strict — the open must fail outright.
	if err := h.closeIVA(); err != nil {
		return err
	}
	if err := h.strictOpenMustFail(); err != nil {
		return err
	}

	// Revert and verify the store is whole again.
	if err := h.iva.ixH.writeByte(off, orig); err != nil {
		return h.failf("zone corruption: revert byte %d: %v", off, err)
	}
	if err := h.openIVA(coreOpts()); err != nil {
		return err
	}
	if rep, err = h.iva.ix.Scrub(); err != nil {
		return h.failf("zone corruption: clean scrub: %v", err)
	}
	if !rep.Clean() {
		return h.failf("zone corruption: scrub still dirty after revert: %v", rep.Problems)
	}
	h.res.ZoneCorruptionChecks++
	return nil
}

// strictOpenMustFail reopens the (flipped, closed) index files under
// IntegrityStrict and requires core.Open itself to fail with a
// *storage.CorruptionError, leaving the files closed again afterwards.
func (h *harness) strictOpenMustFail() error {
	cat, err := table.DecodeCatalog(h.iva.cat.Encode())
	if err != nil {
		return h.failf("zone corruption: catalog decode: %v", err)
	}
	if err := h.iva.tblH.open(); err != nil {
		return h.failf("zone corruption: table open: %v", err)
	}
	if err := h.iva.ixH.open(); err != nil {
		return h.failf("zone corruption: index open: %v", err)
	}
	tbl, err := table.Open(h.iva.tblH.f, cat)
	if err != nil {
		return h.failf("zone corruption: table decode: %v", err)
	}
	opts := coreOpts()
	opts.Integrity = core.IntegrityStrict
	if _, err = core.Open(h.iva.ixH.f, tbl, opts); err == nil {
		return h.failf("zone corruption: strict open accepted a flipped zone byte")
	}
	var ce *storage.CorruptionError
	if !errors.As(err, &ce) {
		return h.failf("zone corruption: strict open failed with a non-corruption error: %v", err)
	}
	return h.closeIVA()
}

// corruptionPhase opens the (already flipped, already closed) iVA files
// under opts and runs the query grid plus a scrub. strict selects the
// Strict-mode acceptance rule.
func (h *harness) corruptionPhase(label string, opts core.Options, queries []*model.Query, wants [][]model.Result, strict bool) error {
	if err := h.openIVA(opts); err != nil {
		return err
	}
	for i, q := range queries {
		c := combos[i]
		ivaM, _, _, _ := h.metricsFor(c)
		for _, par := range parGrid {
			h.iva.ix.SetSearchParallelism(par)
			got, st, err := h.iva.ix.Search(q, ivaM)
			if err != nil {
				if !strict {
					return h.failf("corruption %s %s par=%d: degraded read failed: %v", label, c.name, par, err)
				}
				var ce *storage.CorruptionError
				if !errors.As(err, &ce) {
					return h.failf("corruption %s %s par=%d: non-corruption error: %v", label, c.name, par, err)
				}
				continue
			}
			if err := h.diff(fmt.Sprintf("corruption %s %s par=%d", label, c.name, par), wants[i], got); err != nil {
				return err
			}
			if !strict {
				h.res.DegradedReads += st.DegradedSegments
			}
		}
	}
	rep, err := h.iva.ix.Scrub()
	if err != nil {
		return h.failf("corruption %s scrub: %v", label, err)
	}
	if rep.Clean() {
		return h.failf("corruption %s: scrub missed an injected flip", label)
	}
	return nil
}

// closeIVA releases the iVA engine's files so fault injection (or a mode
// change) can touch the raw devices without cached pages in the way.
func (h *harness) closeIVA() error {
	if err := h.iva.tblH.f.Close(); err != nil {
		return h.failf("corruption: close table: %v", err)
	}
	if err := h.iva.ixH.f.Close(); err != nil {
		return h.failf("corruption: close index: %v", err)
	}
	return nil
}

// openIVA reopens the iVA engine from its (closed) files under opts,
// mirroring reopenOp's sequence.
func (h *harness) openIVA(opts core.Options) error {
	cat, err := table.DecodeCatalog(h.iva.cat.Encode())
	if err != nil {
		return h.failf("corruption: catalog decode: %v", err)
	}
	if err := h.iva.tblH.open(); err != nil {
		return h.failf("corruption: table open: %v", err)
	}
	if err := h.iva.ixH.open(); err != nil {
		return h.failf("corruption: index open: %v", err)
	}
	tbl, err := table.Open(h.iva.tblH.f, cat)
	if err != nil {
		return h.failf("corruption: table decode: %v", err)
	}
	ix, err := core.Open(h.iva.ixH.f, tbl, opts)
	if err != nil {
		return h.failf("corruption: index decode: %v", err)
	}
	h.iva.cat, h.iva.tbl, h.iva.ix = cat, tbl, ix
	return nil
}
