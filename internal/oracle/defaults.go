//go:build !race

package oracle

// Default schedule lengths. The race detector slows the engines roughly an
// order of magnitude, so the race build (defaults_race.go) trims these; CI's
// nightly soak overrides both with -oracle.ops.
const (
	defaultOps = 10000
	shortOps   = 2500
)
