//go:build race

package oracle

// Race-build schedule lengths; see defaults.go.
const (
	defaultOps = 2500
	shortOps   = 1000
)
