// Package oracle is the differential correctness harness: it replays one
// seeded workload (internal/workload) simultaneously against the three
// engines of the paper's evaluation — the iVA-file (internal/core), the
// sparse inverted index SII (internal/invidx) and the direct scan DST
// (internal/scan) — plus a brute-force in-memory reference, and fails on the
// first divergence.
//
// Because the iVA-file's estimates are true lower bounds and every engine
// breaks distance ties by tid, all four must return *identical* top-k lists
// (same tids, bit-equal distances) for every query, every metric
// (L1/L2/L∞ × EQU/ITF), and every SearchParallelism. On top of the exact
// checks the harness asserts metamorphic invariants: growing k preserves the
// k-prefix, an insert→delete pair is a no-op for search results, results
// survive sync+reopen, and ExplainSearch's per-term tightness never exceeds
// 1 (an estimate above the true difference would break the no-false-negative
// guarantee).
//
// Every failure message carries the seed and op number, so any bug found by
// the soak reproduces from one line:
//
//	go test ./internal/oracle -run TestDifferential -oracle.seed=N -oracle.ops=M
package oracle

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/invidx"
	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/scan"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/workload"
)

// Options configure one oracle run.
type Options struct {
	// Seed selects the workload; equal seeds replay identical runs.
	Seed uint64
	// Ops is the schedule length (0 = 10000).
	Ops int
	// Dir, when non-empty, backs every engine with real files under it;
	// empty runs fully in memory.
	Dir string
	// CacheBytes sizes the iVA engine's buffer pool (0 = 8 MiB). A few-page
	// pool makes the soak run entirely through CLOCK eviction and pinned-
	// window reloads, which the roomy default never touches.
	CacheBytes int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
	// CodecMirror, when true, runs a fourth engine: a second iVA-file built
	// with the packed block codec (format v6 codec 1). It sees every
	// mutation, sync, reopen, and rebuild the raw iVA engine sees, and its
	// answers must stay byte-identical across the whole parallelism grid —
	// the codec differential of the v6 format.
	CodecMirror bool
}

// Result counts what a run exercised.
type Result struct {
	Ops         int
	Searches    int
	Comparisons int // engine-result lists compared against the reference
	Inserts     int
	Updates     int
	Deletes     int
	Syncs       int
	Reopens     int
	Rebuilds    int // forced + overflow-triggered, summed over engines
	RoundTrips  int
	MaxLive     int
	// CorruptionChecks counts completed seeded bit-flip sweeps (0 or 1 per
	// run); DegradedReads sums the corrupt segments queries degraded past
	// during them (0 when the seeded queries never touched the flipped
	// attribute — detection then came from Scrub).
	CorruptionChecks int
	DegradedReads    int
	// ZonePrunes sums the stripes skipped on their zone bound across the
	// zones-on search passes (0 when the workload's bars never beat a
	// stripe's best case); ZoneCorruptionChecks counts completed zone-chain
	// bit-flip sweeps (0 or 1 per run).
	ZonePrunes           int
	ZoneCorruptionChecks int
	// CodecComparisons counts result lists from the packed-codec mirror
	// engine diffed against the reference; PackedLists is the largest number
	// of vector lists observed stored under the packed codec on the mirror
	// (fresh attributes stay raw until a rebuild re-runs layout selection,
	// so this only rises once the workload has forced a rebuild).
	CodecComparisons int
	PackedLists      int
}

// combo is one point of the metric grid.
type combo struct {
	name string
	comb metric.Combiner
	itf  bool
}

var combos = []combo{
	{"L1/EQU", metric.L1{}, false},
	{"L2/EQU", metric.L2{}, false},
	{"Linf/EQU", metric.LInf{}, false},
	{"L1/ITF", metric.L1{}, true},
	{"L2/ITF", metric.L2{}, true},
	{"Linf/ITF", metric.LInf{}, true},
}

// parGrid is the SearchParallelism sweep for the iVA engine: sequential,
// two workers, and GOMAXPROCS (0).
var parGrid = []int{1, 2, 0}

// handle owns one engine file and can survive reopens and rebuild
// generations. In-memory mode keeps the MemDevice across File closes (its
// Close is a no-op); on-disk mode reopens the path.
type handle struct {
	pool *storage.Pool
	dir  string
	base string
	gen  int
	mem  *storage.MemDevice
	f    *storage.File
}

func (hd *handle) path() string {
	name := hd.base
	if hd.gen > 0 {
		name = fmt.Sprintf("%s.g%d", hd.base, hd.gen)
	}
	return filepath.Join(hd.dir, name)
}

func (hd *handle) open() error {
	if hd.dir == "" {
		if hd.mem == nil {
			hd.mem = storage.NewMemDevice()
		}
		hd.f = storage.NewFile(hd.pool, hd.mem)
		return nil
	}
	dev, err := storage.OpenFileDevice(hd.path())
	if err != nil {
		return err
	}
	hd.f = storage.NewFile(hd.pool, dev)
	return nil
}

func (hd *handle) reopen() error {
	if err := hd.f.Close(); err != nil {
		return err
	}
	return hd.open()
}

// fresh returns a handle on the next generation's (empty) device, for
// rebuilds: table.Rebuild needs source and destination alive at once.
func (hd *handle) fresh() (*handle, error) {
	nh := &handle{pool: hd.pool, dir: hd.dir, base: hd.base, gen: hd.gen + 1}
	return nh, nh.open()
}

// engine is the per-method state; ix/sii/sc discriminate the kind.
type ivaEngine struct {
	tblH, ixH *handle
	cat       *table.Catalog
	tbl       *table.Table
	ix        *core.Index
}

type siiEngine struct {
	tblH, ixH *handle
	cat       *table.Catalog
	tbl       *table.Table
	ix        *invidx.Index
}

type dstEngine struct {
	tblH *handle
	cat  *table.Catalog
	tbl  *table.Table
	sc   *scan.Scanner
}

type harness struct {
	opt Options
	gen *workload.Gen

	pool *storage.Pool
	iva  ivaEngine
	sii  siiEngine
	dst  dstEngine
	// iva2 is the packed-codec mirror engine (Options.CodecMirror); nil when
	// the mirror is off.
	iva2 *ivaEngine

	// In-memory reference: the ground truth every engine is diffed against.
	ref      map[model.TID]*model.Tuple
	liveTIDs []model.TID // deterministic victim order (swap-remove)
	refDF    map[model.AttrID]int64

	metricIdx int
	opIndex   int
	curOp     workload.OpKind
	res       Result
}

// failf wraps a divergence with the one-line repro recipe.
func (h *harness) failf(format string, args ...interface{}) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("oracle: seed=%d op=%d(%s): %s\n  repro: go test ./internal/oracle -run TestDifferential -oracle.seed=%d -oracle.ops=%d",
		h.opt.Seed, h.opIndex, h.curOp, msg, h.opt.Seed, h.opt.Ops)
}

// coreOpts deliberately picks small limits: CheckpointEvery 64 engages the
// striped parallel plan after ~128 entries, and TIDHeadroom 256 forces
// several ErrNeedsRebuild overflows per run so rebuild paths are exercised.
func coreOpts() core.Options {
	return core.Options{CheckpointEvery: 64, TIDHeadroom: 256}
}

func siiOpts() invidx.Options { return invidx.Options{TIDHeadroom: 256} }

// mirrorOpts is coreOpts with the packed block codec switched on.
func mirrorOpts() core.Options {
	o := coreOpts()
	o.Codec = 1
	return o
}

// Run replays opt.Ops workload steps and returns the first divergence as an
// error carrying its repro seed.
func Run(opt Options) (Result, error) {
	if opt.Ops <= 0 {
		opt.Ops = 10000
	}
	h, err := newHarness(opt)
	if err != nil {
		return Result{}, err
	}
	defer h.close()
	for h.opIndex = 0; h.opIndex < opt.Ops; h.opIndex++ {
		op := h.gen.NextOp(len(h.liveTIDs))
		if err := h.step(op); err != nil {
			return h.res, err
		}
		if n := len(h.liveTIDs); n > h.res.MaxLive {
			h.res.MaxLive = n
		}
		h.res.Ops++
		if h.opt.Logf != nil && (h.opIndex+1)%2000 == 0 {
			h.opt.Logf("oracle: %d/%d ops, live=%d, searches=%d",
				h.opIndex+1, opt.Ops, len(h.liveTIDs), h.res.Searches)
		}
	}
	if err := h.finalSweep(); err != nil {
		return h.res, err
	}
	return h.res, nil
}

func newHarness(opt Options) (*harness, error) {
	cache := opt.CacheBytes
	if cache <= 0 {
		cache = 8 << 20
	}
	h := &harness{
		opt:   opt,
		gen:   workload.New(opt.Seed),
		pool:  storage.NewPool(0, cache),
		ref:   make(map[model.TID]*model.Tuple),
		refDF: make(map[model.AttrID]int64),
	}
	newH := func(base string) (*handle, error) {
		hd := &handle{pool: h.pool, dir: opt.Dir, base: base}
		return hd, hd.open()
	}
	var err error
	if h.iva.tblH, err = newH("iva.tbl"); err != nil {
		return nil, err
	}
	if h.iva.ixH, err = newH("iva.idx"); err != nil {
		return nil, err
	}
	if h.sii.tblH, err = newH("sii.tbl"); err != nil {
		return nil, err
	}
	if h.sii.ixH, err = newH("sii.idx"); err != nil {
		return nil, err
	}
	if h.dst.tblH, err = newH("dst.tbl"); err != nil {
		return nil, err
	}
	h.iva.cat, h.sii.cat, h.dst.cat = table.NewCatalog(), table.NewCatalog(), table.NewCatalog()
	if h.iva.tbl, err = table.New(h.iva.tblH.f, h.iva.cat); err != nil {
		return nil, err
	}
	if h.sii.tbl, err = table.New(h.sii.tblH.f, h.sii.cat); err != nil {
		return nil, err
	}
	if h.dst.tbl, err = table.New(h.dst.tblH.f, h.dst.cat); err != nil {
		return nil, err
	}
	if h.iva.ix, err = core.Build(h.iva.tbl, h.iva.ixH.f, coreOpts()); err != nil {
		return nil, err
	}
	if h.sii.ix, err = invidx.Build(h.sii.tbl, h.sii.ixH.f, siiOpts()); err != nil {
		return nil, err
	}
	if h.dst.sc, err = scan.New(h.dst.tbl); err != nil {
		return nil, err
	}
	if opt.CodecMirror {
		h.iva2 = &ivaEngine{cat: table.NewCatalog()}
		if h.iva2.tblH, err = newH("iva2.tbl"); err != nil {
			return nil, err
		}
		if h.iva2.ixH, err = newH("iva2.idx"); err != nil {
			return nil, err
		}
		if h.iva2.tbl, err = table.New(h.iva2.tblH.f, h.iva2.cat); err != nil {
			return nil, err
		}
		if h.iva2.ix, err = core.Build(h.iva2.tbl, h.iva2.ixH.f, mirrorOpts()); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (h *harness) close() {
	handles := []*handle{h.iva.tblH, h.iva.ixH, h.sii.tblH, h.sii.ixH, h.dst.tblH}
	if h.iva2 != nil {
		handles = append(handles, h.iva2.tblH, h.iva2.ixH)
	}
	for _, hd := range handles {
		if hd != nil && hd.f != nil {
			hd.f.Close()
		}
	}
}

// attrID registers name on all three catalogs and checks the assigned ids
// agree — they must, since every engine sees the identical append sequence.
func (h *harness) attrID(name string, kind model.Kind) (model.AttrID, error) {
	a, err := h.iva.cat.AddAttr(name, kind)
	if err != nil {
		return 0, h.failf("iva catalog: %v", err)
	}
	b, err := h.sii.cat.AddAttr(name, kind)
	if err != nil {
		return 0, h.failf("sii catalog: %v", err)
	}
	c, err := h.dst.cat.AddAttr(name, kind)
	if err != nil {
		return 0, h.failf("dst catalog: %v", err)
	}
	if a != b || a != c {
		return 0, h.failf("catalog id divergence for %q: iva=%d sii=%d dst=%d", name, a, b, c)
	}
	if h.iva2 != nil {
		d, err := h.iva2.cat.AddAttr(name, kind)
		if err != nil {
			return 0, h.failf("iva2 catalog: %v", err)
		}
		if d != a {
			return 0, h.failf("catalog id divergence for %q: iva=%d iva2=%d", name, a, d)
		}
	}
	return a, nil
}

func (h *harness) resolveRow(row workload.Row) (map[model.AttrID]model.Value, error) {
	vals := make(map[model.AttrID]model.Value, len(row))
	for _, cell := range row {
		id, err := h.attrID(cell.Name, cell.Val.Kind)
		if err != nil {
			return nil, err
		}
		vals[id] = cell.Val
	}
	return vals, nil
}

// resolveQuery maps a QuerySpec to a model.Query, dropping duplicate
// attributes (the generator's ghost terms can collide; Query.Validate
// rejects duplicates).
func (h *harness) resolveQuery(spec workload.QuerySpec) (*model.Query, error) {
	q := &model.Query{K: spec.K}
	seen := make(map[string]bool, len(spec.Terms))
	for _, t := range spec.Terms {
		if seen[t.Name] {
			continue
		}
		seen[t.Name] = true
		id, err := h.attrID(t.Name, t.Kind)
		if err != nil {
			return nil, err
		}
		q.Terms = append(q.Terms, model.QueryTerm{
			Attr: id, Kind: t.Kind, Num: t.Num, Str: t.Str, Weight: t.Weight,
		})
	}
	return q, nil
}

// metricsFor builds the four metric instances of one grid point. The ITF
// closures read the harness fields at call time, so the same logic stays
// correct across reopens and rebuilds (which swap tbl/cat pointers).
func (h *harness) metricsFor(c combo) (iva, sii, dst, ref *metric.Metric) {
	if !c.itf {
		m := metric.New(c.comb, metric.Equal{})
		return m, m, m, m
	}
	catDF := func(cat func() *table.Catalog) func(model.AttrID) int64 {
		return func(a model.AttrID) int64 {
			info, err := cat().Info(a)
			if err != nil {
				return 0
			}
			return info.DF
		}
	}
	iva = metric.New(c.comb, metric.NewITF(
		func() int64 { return h.iva.tbl.Live() },
		catDF(func() *table.Catalog { return h.iva.cat })))
	sii = metric.New(c.comb, metric.NewITF(
		func() int64 { return h.sii.tbl.Live() },
		catDF(func() *table.Catalog { return h.sii.cat })))
	dst = metric.New(c.comb, metric.NewITF(
		func() int64 { return h.dst.tbl.Live() },
		catDF(func() *table.Catalog { return h.dst.cat })))
	ref = metric.New(c.comb, metric.NewITF(
		func() int64 { return int64(len(h.ref)) },
		func(a model.AttrID) int64 { return h.refDF[a] }))
	return iva, sii, dst, ref
}

// mirrorMetric builds the packed mirror's metric for one grid point; its ITF
// closures read the mirror's own table and catalog so the statistics match
// across reopens and rebuilds.
func (h *harness) mirrorMetric(c combo) *metric.Metric {
	if !c.itf {
		return metric.New(c.comb, metric.Equal{})
	}
	return metric.New(c.comb, metric.NewITF(
		func() int64 { return h.iva2.tbl.Live() },
		func(a model.AttrID) int64 {
			info, err := h.iva2.cat.Info(a)
			if err != nil {
				return 0
			}
			return info.DF
		}))
}

// mirrorDiff runs one query against the packed mirror across the whole
// parallelism grid and demands byte-identical answers.
func (h *harness) mirrorDiff(label string, q *model.Query, c combo, want []model.Result) error {
	m := h.mirrorMetric(c)
	for _, par := range parGrid {
		h.iva2.ix.SetSearchParallelism(par)
		got, _, err := h.iva2.ix.Search(q, m)
		if err != nil {
			return h.failf("%s packed search par=%d: %v", label, par, err)
		}
		h.res.CodecComparisons++
		if err := h.diff(fmt.Sprintf("%s packed %s par=%d", label, c.name, par), want, got); err != nil {
			return err
		}
	}
	return nil
}

// nextCombo cycles the metric grid deterministically.
func (h *harness) nextCombo() combo {
	c := combos[h.metricIdx%len(combos)]
	h.metricIdx++
	return c
}

// bruteForce computes the exact answer: every live tuple's distance, sorted
// by the lexicographic (dist, tid) total order, truncated to K.
func (h *harness) bruteForce(q *model.Query, m *metric.Metric) []model.Result {
	out := make([]model.Result, 0, len(h.liveTIDs))
	for _, tid := range h.liveTIDs {
		out = append(out, model.Result{TID: tid, Dist: m.TupleDistance(q, h.ref[tid])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].TID < out[j].TID
	})
	if len(out) > q.K {
		out = out[:q.K]
	}
	return out
}

// diff demands exact equality: same tids, bit-equal distances.
func (h *harness) diff(label string, want, got []model.Result) error {
	h.res.Comparisons++
	if len(want) != len(got) {
		return h.failf("%s: got %d results, want %d\n  got:  %v\n  want: %v",
			label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i].TID != got[i].TID || want[i].Dist != got[i].Dist {
			return h.failf("%s: result %d = (tid %d, %v), want (tid %d, %v)\n  got:  %v\n  want: %v",
				label, i, got[i].TID, got[i].Dist, want[i].TID, want[i].Dist, got, want)
		}
	}
	return nil
}

func (h *harness) step(op workload.OpKind) error {
	h.curOp = op
	switch op {
	case workload.OpInsert:
		return h.insertOp()
	case workload.OpUpdate:
		return h.updateOp()
	case workload.OpDelete:
		return h.deleteOp()
	case workload.OpSearch:
		return h.searchOp()
	case workload.OpSync:
		h.res.Syncs++
		return h.syncAll()
	case workload.OpReopen:
		return h.reopenOp()
	case workload.OpRebuild:
		h.res.Rebuilds += 3
		if err := h.rebuildIVA(); err != nil {
			return err
		}
		if err := h.rebuildSII(); err != nil {
			return err
		}
		if err := h.rebuildDST(); err != nil {
			return err
		}
		if h.iva2 != nil {
			h.res.Rebuilds++
			return h.rebuildIVA2()
		}
		return nil
	case workload.OpRoundTrip:
		return h.roundTripOp()
	default:
		return h.failf("unknown op %v", op)
	}
}

// --- mutation ops ------------------------------------------------------

// insertTuple pushes vals into all engines and the reference, transparently
// rebuilding an engine whose packed tid width overflows. The engines must
// assign the same tid: they see identical append sequences and rebuilds
// preserve nextTID.
func (h *harness) insertTuple(vals map[model.AttrID]model.Value) (model.TID, error) {
	tidIVA, err := h.iva.ix.Insert(vals)
	if errors.Is(err, core.ErrNeedsRebuild) {
		h.res.Rebuilds++
		if err = h.rebuildIVA(); err != nil {
			return 0, err
		}
		tidIVA, err = h.iva.ix.Insert(vals)
	}
	if err != nil {
		return 0, h.failf("iva insert: %v", err)
	}
	tidSII, err := h.sii.ix.Insert(vals)
	if errors.Is(err, invidx.ErrNeedsRebuild) {
		h.res.Rebuilds++
		if err = h.rebuildSII(); err != nil {
			return 0, err
		}
		tidSII, err = h.sii.ix.Insert(vals)
	}
	if err != nil {
		return 0, h.failf("sii insert: %v", err)
	}
	tidDST, err := h.dst.sc.Insert(vals)
	if err != nil {
		return 0, h.failf("dst insert: %v", err)
	}
	if tidIVA != tidSII || tidIVA != tidDST {
		return 0, h.failf("tid divergence: iva=%d sii=%d dst=%d", tidIVA, tidSII, tidDST)
	}
	if h.iva2 != nil {
		tid2, err := h.iva2.ix.Insert(vals)
		if errors.Is(err, core.ErrNeedsRebuild) {
			h.res.Rebuilds++
			if err = h.rebuildIVA2(); err != nil {
				return 0, err
			}
			tid2, err = h.iva2.ix.Insert(vals)
		}
		if err != nil {
			return 0, h.failf("iva2 insert: %v", err)
		}
		if tid2 != tidIVA {
			return 0, h.failf("codec mirror tid divergence: iva=%d iva2=%d", tidIVA, tid2)
		}
	}
	h.ref[tidIVA] = &model.Tuple{TID: tidIVA, Values: vals}
	h.liveTIDs = append(h.liveTIDs, tidIVA)
	for a := range vals {
		h.refDF[a]++
	}
	return tidIVA, nil
}

// dropRef removes liveTIDs[i] from the reference *before* the engines
// tombstone it, so that a rebuild triggered mid-operation (whose keep set is
// ref membership) cannot resurrect the victim.
func (h *harness) dropRef(i int) model.TID {
	tid := h.liveTIDs[i]
	for a := range h.ref[tid].Values {
		h.refDF[a]--
	}
	delete(h.ref, tid)
	h.liveTIDs[i] = h.liveTIDs[len(h.liveTIDs)-1]
	h.liveTIDs = h.liveTIDs[:len(h.liveTIDs)-1]
	return tid
}

func (h *harness) deleteTuple(tid model.TID) error {
	if err := h.iva.ix.Delete(tid); err != nil {
		return h.failf("iva delete %d: %v", tid, err)
	}
	if err := h.sii.ix.Delete(tid); err != nil {
		return h.failf("sii delete %d: %v", tid, err)
	}
	if err := h.dst.sc.Delete(tid); err != nil {
		return h.failf("dst delete %d: %v", tid, err)
	}
	if h.iva2 != nil {
		if err := h.iva2.ix.Delete(tid); err != nil {
			return h.failf("iva2 delete %d: %v", tid, err)
		}
	}
	return nil
}

func (h *harness) insertOp() error {
	vals, err := h.resolveRow(h.gen.Row())
	if err != nil {
		return err
	}
	if _, err := h.insertTuple(vals); err != nil {
		return err
	}
	h.res.Inserts++
	return nil
}

func (h *harness) deleteOp() error {
	tid := h.dropRef(h.gen.PickLive(len(h.liveTIDs)))
	if err := h.deleteTuple(tid); err != nil {
		return err
	}
	h.res.Deletes++
	return nil
}

// updateOp exercises the engines' Update (delete + fresh-tid insert, §IV-B).
// When the insert half overflows the packed tid width the engine reports
// ErrNeedsRebuild with the delete half already applied; the harness then
// rebuilds and completes with a plain insert.
func (h *harness) updateOp() error {
	old := h.dropRef(h.gen.PickLive(len(h.liveTIDs)))
	vals, err := h.resolveRow(h.gen.Row())
	if err != nil {
		return err
	}
	tidIVA, err := h.iva.ix.Update(old, vals)
	if errors.Is(err, core.ErrNeedsRebuild) {
		h.res.Rebuilds++
		if err = h.rebuildIVA(); err != nil {
			return err
		}
		tidIVA, err = h.iva.ix.Insert(vals)
	}
	if err != nil {
		return h.failf("iva update %d: %v", old, err)
	}
	tidSII, err := h.sii.ix.Update(old, vals)
	if errors.Is(err, invidx.ErrNeedsRebuild) {
		h.res.Rebuilds++
		if err = h.rebuildSII(); err != nil {
			return err
		}
		tidSII, err = h.sii.ix.Insert(vals)
	}
	if err != nil {
		return h.failf("sii update %d: %v", old, err)
	}
	tidDST, err := h.dst.sc.Update(old, vals)
	if err != nil {
		return h.failf("dst update %d: %v", old, err)
	}
	if tidIVA != tidSII || tidIVA != tidDST {
		return h.failf("update tid divergence: iva=%d sii=%d dst=%d", tidIVA, tidSII, tidDST)
	}
	if h.iva2 != nil {
		tid2, err := h.iva2.ix.Update(old, vals)
		if errors.Is(err, core.ErrNeedsRebuild) {
			h.res.Rebuilds++
			if err = h.rebuildIVA2(); err != nil {
				return err
			}
			tid2, err = h.iva2.ix.Insert(vals)
		}
		if err != nil {
			return h.failf("iva2 update %d: %v", old, err)
		}
		if tid2 != tidIVA {
			return h.failf("codec mirror update tid divergence: iva=%d iva2=%d", tidIVA, tid2)
		}
	}
	h.ref[tidIVA] = &model.Tuple{TID: tidIVA, Values: vals}
	h.liveTIDs = append(h.liveTIDs, tidIVA)
	for a := range vals {
		h.refDF[a]++
	}
	h.res.Updates++
	return nil
}

// --- rebuilds ----------------------------------------------------------

func (h *harness) refKeep(tid model.TID) bool {
	_, ok := h.ref[tid]
	return ok
}

func (h *harness) rebuildIVA() error {
	newTblH, err := h.iva.tblH.fresh()
	if err != nil {
		return h.failf("iva rebuild: %v", err)
	}
	newTbl, _, err := h.iva.tbl.Rebuild(newTblH.f, h.refKeep)
	if err != nil {
		return h.failf("iva rebuild: %v", err)
	}
	newIxH, err := h.iva.ixH.fresh()
	if err != nil {
		return h.failf("iva rebuild: %v", err)
	}
	newIx, err := core.Build(newTbl, newIxH.f, coreOpts())
	if err != nil {
		return h.failf("iva rebuild: %v", err)
	}
	h.iva.tblH.f.Close()
	h.iva.ixH.f.Close()
	h.iva.tblH, h.iva.ixH = newTblH, newIxH
	h.iva.tbl, h.iva.ix = newTbl, newIx
	return nil
}

func (h *harness) rebuildSII() error {
	newTblH, err := h.sii.tblH.fresh()
	if err != nil {
		return h.failf("sii rebuild: %v", err)
	}
	newTbl, _, err := h.sii.tbl.Rebuild(newTblH.f, h.refKeep)
	if err != nil {
		return h.failf("sii rebuild: %v", err)
	}
	newIxH, err := h.sii.ixH.fresh()
	if err != nil {
		return h.failf("sii rebuild: %v", err)
	}
	newIx, err := invidx.Build(newTbl, newIxH.f, siiOpts())
	if err != nil {
		return h.failf("sii rebuild: %v", err)
	}
	h.sii.tblH.f.Close()
	h.sii.ixH.f.Close()
	h.sii.tblH, h.sii.ixH = newTblH, newIxH
	h.sii.tbl, h.sii.ix = newTbl, newIx
	return nil
}

// rebuildIVA2 regenerates the packed mirror. Rebuilds are where the mirror
// earns its keep: core.Build re-runs layout selection over real data, so
// this is the moment lists actually adopt the packed codec.
func (h *harness) rebuildIVA2() error {
	newTblH, err := h.iva2.tblH.fresh()
	if err != nil {
		return h.failf("iva2 rebuild: %v", err)
	}
	newTbl, _, err := h.iva2.tbl.Rebuild(newTblH.f, h.refKeep)
	if err != nil {
		return h.failf("iva2 rebuild: %v", err)
	}
	newIxH, err := h.iva2.ixH.fresh()
	if err != nil {
		return h.failf("iva2 rebuild: %v", err)
	}
	newIx, err := core.Build(newTbl, newIxH.f, mirrorOpts())
	if err != nil {
		return h.failf("iva2 rebuild: %v", err)
	}
	h.iva2.tblH.f.Close()
	h.iva2.ixH.f.Close()
	h.iva2.tblH, h.iva2.ixH = newTblH, newIxH
	h.iva2.tbl, h.iva2.ix = newTbl, newIx
	h.notePackedLists()
	return nil
}

// notePackedLists tracks the high-water count of packed lists on the mirror,
// so the test entry can assert the differential was not vacuous.
func (h *harness) notePackedLists() {
	packed := 0
	for _, r := range h.iva2.ix.Attrs() {
		if r.CodedBlocks > 0 {
			packed++
		}
	}
	if packed > h.res.PackedLists {
		h.res.PackedLists = packed
	}
}

func (h *harness) rebuildDST() error {
	newTblH, err := h.dst.tblH.fresh()
	if err != nil {
		return h.failf("dst rebuild: %v", err)
	}
	newTbl, _, err := h.dst.tbl.Rebuild(newTblH.f, h.refKeep)
	if err != nil {
		return h.failf("dst rebuild: %v", err)
	}
	newSc, err := scan.New(newTbl)
	if err != nil {
		return h.failf("dst rebuild: %v", err)
	}
	h.dst.tblH.f.Close()
	h.dst.tblH, h.dst.tbl, h.dst.sc = newTblH, newTbl, newSc
	return nil
}

// --- durability ops ----------------------------------------------------

func (h *harness) syncAll() error {
	for _, s := range []struct {
		name string
		fn   func() error
	}{
		{"iva table", h.iva.tbl.Sync}, {"iva index", h.iva.ix.Sync},
		{"sii table", h.sii.tbl.Sync}, {"sii index", h.sii.ix.Sync},
		{"dst table", h.dst.tbl.Sync},
	} {
		if err := s.fn(); err != nil {
			return h.failf("%s sync: %v", s.name, err)
		}
	}
	if h.iva2 != nil {
		if err := h.iva2.tbl.Sync(); err != nil {
			return h.failf("iva2 table sync: %v", err)
		}
		if err := h.iva2.ix.Sync(); err != nil {
			return h.failf("iva2 index sync: %v", err)
		}
	}
	return nil
}

// reopenOp asserts the results-invariant-under-reopen metamorphic property:
// search, sync, close and reopen every engine from its (synced) files, search
// again — the answers must be identical, and the reopened iVA-file must pass
// its full integrity check.
func (h *harness) reopenOp() error {
	q, err := h.resolveQuery(h.gen.Query())
	if err != nil {
		return err
	}
	c := h.nextCombo()
	ivaM, siiM, dstM, refM := h.metricsFor(c)
	want := h.bruteForce(q, refM)
	h.iva.ix.SetSearchParallelism(0)
	pre, _, err := h.iva.ix.Search(q, ivaM)
	if err != nil {
		return h.failf("iva pre-reopen search: %v", err)
	}
	if err := h.diff("iva pre-reopen ("+c.name+")", want, pre); err != nil {
		return err
	}
	if err := h.syncAll(); err != nil {
		return err
	}

	// iVA-file.
	cat, err := table.DecodeCatalog(h.iva.cat.Encode())
	if err != nil {
		return h.failf("iva catalog decode: %v", err)
	}
	if err := h.iva.tblH.reopen(); err != nil {
		return h.failf("iva table reopen: %v", err)
	}
	if err := h.iva.ixH.reopen(); err != nil {
		return h.failf("iva index reopen: %v", err)
	}
	tbl, err := table.Open(h.iva.tblH.f, cat)
	if err != nil {
		return h.failf("iva table open: %v", err)
	}
	ix, err := core.Open(h.iva.ixH.f, tbl, coreOpts())
	if err != nil {
		return h.failf("iva index open: %v", err)
	}
	h.iva.cat, h.iva.tbl, h.iva.ix = cat, tbl, ix

	// SII.
	if cat, err = table.DecodeCatalog(h.sii.cat.Encode()); err != nil {
		return h.failf("sii catalog decode: %v", err)
	}
	if err := h.sii.tblH.reopen(); err != nil {
		return h.failf("sii table reopen: %v", err)
	}
	if err := h.sii.ixH.reopen(); err != nil {
		return h.failf("sii index reopen: %v", err)
	}
	if tbl, err = table.Open(h.sii.tblH.f, cat); err != nil {
		return h.failf("sii table open: %v", err)
	}
	six, err := invidx.Open(h.sii.ixH.f, tbl, siiOpts())
	if err != nil {
		return h.failf("sii index open: %v", err)
	}
	h.sii.cat, h.sii.tbl, h.sii.ix = cat, tbl, six

	// DST: no index file; the tombstone set is rebuilt from the driving
	// workload (here, reference membership).
	if cat, err = table.DecodeCatalog(h.dst.cat.Encode()); err != nil {
		return h.failf("dst catalog decode: %v", err)
	}
	if err := h.dst.tblH.reopen(); err != nil {
		return h.failf("dst table reopen: %v", err)
	}
	if tbl, err = table.Open(h.dst.tblH.f, cat); err != nil {
		return h.failf("dst table open: %v", err)
	}
	sc, err := scan.New(tbl)
	if err != nil {
		return h.failf("dst scanner: %v", err)
	}
	err = tbl.Scan(func(_ int64, tp *model.Tuple) error {
		if _, live := h.ref[tp.TID]; !live {
			sc.MarkDeleted(tp.TID)
		}
		return nil
	})
	if err != nil {
		return h.failf("dst tombstone rebuild: %v", err)
	}
	h.dst.cat, h.dst.tbl, h.dst.sc = cat, tbl, sc

	// Post-reopen: identical answers from every engine, clean fsck.
	ivaM, siiM, dstM, _ = h.metricsFor(c)
	h.iva.ix.SetSearchParallelism(0)
	post, _, err := h.iva.ix.Search(q, ivaM)
	if err != nil {
		return h.failf("iva post-reopen search: %v", err)
	}
	if err := h.diff("iva post-reopen ("+c.name+")", want, post); err != nil {
		return err
	}
	siiRes, _, err := h.sii.ix.Search(q, siiM)
	if err != nil {
		return h.failf("sii post-reopen search: %v", err)
	}
	if err := h.diff("sii post-reopen ("+c.name+")", want, siiRes); err != nil {
		return err
	}
	dstRes, _, err := h.dst.sc.Search(q, dstM)
	if err != nil {
		return h.failf("dst post-reopen search: %v", err)
	}
	if err := h.diff("dst post-reopen ("+c.name+")", want, dstRes); err != nil {
		return err
	}
	rep, err := h.iva.ix.Check()
	if err != nil {
		return h.failf("iva check: %v", err)
	}
	if !rep.Ok() {
		return h.failf("iva check after reopen: %v", rep.Problems)
	}

	// Packed mirror: same reopen, same invariant. The v6 open path — codec
	// bytes in the attribute elements, the block-directory walk — must
	// reproduce byte-identical answers and a clean fsck.
	if h.iva2 != nil {
		cat, err := table.DecodeCatalog(h.iva2.cat.Encode())
		if err != nil {
			return h.failf("iva2 catalog decode: %v", err)
		}
		if err := h.iva2.tblH.reopen(); err != nil {
			return h.failf("iva2 table reopen: %v", err)
		}
		if err := h.iva2.ixH.reopen(); err != nil {
			return h.failf("iva2 index reopen: %v", err)
		}
		tbl, err := table.Open(h.iva2.tblH.f, cat)
		if err != nil {
			return h.failf("iva2 table open: %v", err)
		}
		ix, err := core.Open(h.iva2.ixH.f, tbl, mirrorOpts())
		if err != nil {
			return h.failf("iva2 index open: %v", err)
		}
		h.iva2.cat, h.iva2.tbl, h.iva2.ix = cat, tbl, ix
		if err := h.mirrorDiff("post-reopen", q, c, want); err != nil {
			return err
		}
		rep, err := h.iva2.ix.Check()
		if err != nil {
			return h.failf("iva2 check: %v", err)
		}
		if !rep.Ok() {
			return h.failf("iva2 check after reopen: %v", rep.Problems)
		}
		h.notePackedLists()
	}
	h.res.Reopens++
	return nil
}

// --- search ops --------------------------------------------------------

// searchOp is the core differential check: one generated query, one metric
// grid point, compared across engine × parallelism, plus the k-prefix
// metamorphic assertion and (periodically) the estimate-tightness audit.
func (h *harness) searchOp() error {
	q, err := h.resolveQuery(h.gen.Query())
	if err != nil {
		return err
	}
	c := h.nextCombo()
	ivaM, siiM, dstM, refM := h.metricsFor(c)
	want := h.bruteForce(q, refM)

	for _, par := range parGrid {
		h.iva.ix.SetSearchParallelism(par)
		got, st, err := h.iva.ix.Search(q, ivaM)
		if err != nil {
			return h.failf("iva search par=%d: %v", par, err)
		}
		if par == 1 && st.Workers != 1 {
			return h.failf("iva par=1 reported %d workers", st.Workers)
		}
		if st.StripesZonePruned > st.StripesZoneChecked {
			return h.failf("iva par=%d pruned %d stripes but only checked %d",
				par, st.StripesZonePruned, st.StripesZoneChecked)
		}
		h.res.ZonePrunes += st.StripesZonePruned
		if err := h.diff(fmt.Sprintf("iva %s par=%d", c.name, par), want, got); err != nil {
			return err
		}
	}

	// Zone-map differential: the same query with stripe pruning disabled
	// must stay bit-identical at every parallelism — the bound proof, not
	// trust, is what lets the pruned plan skip whole stripes. This runs
	// mid-workload, so it straddles deletes, reopens, and rebuilds.
	h.iva.ix.SetZoneMaps(false)
	for _, par := range parGrid {
		h.iva.ix.SetSearchParallelism(par)
		got, st, err := h.iva.ix.Search(q, ivaM)
		if err != nil {
			return h.failf("iva zones-off search par=%d: %v", par, err)
		}
		if st.StripesZonePruned != 0 {
			return h.failf("iva zones-off par=%d still pruned %d stripes", par, st.StripesZonePruned)
		}
		if err := h.diff(fmt.Sprintf("iva zones-off %s par=%d", c.name, par), want, got); err != nil {
			return err
		}
	}
	h.iva.ix.SetZoneMaps(true)

	// Codec differential: the packed mirror must answer byte-identically at
	// every parallelism, mid-workload — straddling deletes, reopens, and
	// rebuilds.
	if h.iva2 != nil {
		if err := h.mirrorDiff("search", q, c, want); err != nil {
			return err
		}
	}
	got, _, err := h.sii.ix.Search(q, siiM)
	if err != nil {
		return h.failf("sii search: %v", err)
	}
	if err := h.diff("sii "+c.name, want, got); err != nil {
		return err
	}
	if got, _, err = h.dst.sc.Search(q, dstM); err != nil {
		return h.failf("dst search: %v", err)
	}
	if err := h.diff("dst "+c.name, want, got); err != nil {
		return err
	}

	// Metamorphic: growing k must preserve the k-prefix (the lexicographic
	// order is total, so the first k of top-(k+3) is exactly top-k).
	wide := *q
	wide.K = q.K + 3
	gotWide, _, err := h.iva.ix.Search(&wide, ivaM)
	if err != nil {
		return h.failf("iva k+3 search: %v", err)
	}
	if len(gotWide) < len(want) {
		return h.failf("iva k+3 returned %d < %d results", len(gotWide), len(want))
	}
	if err := h.diff("iva k-prefix "+c.name, want, gotWide[:len(want)]); err != nil {
		return err
	}

	if h.res.Searches%16 == 0 {
		if err := h.explainCheck(q, ivaM, want, c); err != nil {
			return err
		}
	}
	h.res.Searches++
	return nil
}

// explainCheck audits the filter's lower bounds through ExplainSearch: a
// per-term tightness above 1 would mean an estimate exceeded the true
// difference — a false-negative risk — and negative estimates are nonsense.
func (h *harness) explainCheck(q *model.Query, m *metric.Metric, want []model.Result, c combo) error {
	ex, err := h.iva.ix.ExplainSearch(q, m)
	if err != nil {
		return h.failf("iva explain: %v", err)
	}
	if err := h.diff("iva explain "+c.name, want, ex.Results); err != nil {
		return err
	}
	for _, te := range ex.Terms {
		if te.Tightness > 1+1e-9 {
			return h.failf("attr %d (%s): tightness %v > 1: estimate exceeded true difference",
				te.Attr, c.name, te.Tightness)
		}
		if te.MinEst < 0 {
			return h.failf("attr %d (%s): negative estimate %v", te.Attr, c.name, te.MinEst)
		}
	}
	return nil
}

// roundTripOp asserts that an insert immediately followed by deleting the
// same tuple is a no-op for search results on every engine.
func (h *harness) roundTripOp() error {
	q, err := h.resolveQuery(h.gen.Query())
	if err != nil {
		return err
	}
	c := h.nextCombo()
	ivaM, siiM, dstM, _ := h.metricsFor(c)
	h.iva.ix.SetSearchParallelism(0)
	search := func(phase string) (iva, sii, dst []model.Result, err error) {
		if iva, _, err = h.iva.ix.Search(q, ivaM); err != nil {
			return nil, nil, nil, h.failf("iva %s search: %v", phase, err)
		}
		if sii, _, err = h.sii.ix.Search(q, siiM); err != nil {
			return nil, nil, nil, h.failf("sii %s search: %v", phase, err)
		}
		if dst, _, err = h.dst.sc.Search(q, dstM); err != nil {
			return nil, nil, nil, h.failf("dst %s search: %v", phase, err)
		}
		return iva, sii, dst, nil
	}
	preIVA, preSII, preDST, err := search("pre-roundtrip")
	if err != nil {
		return err
	}
	vals, err := h.resolveRow(h.gen.Row())
	if err != nil {
		return err
	}
	tid, err := h.insertTuple(vals)
	if err != nil {
		return err
	}
	h.dropRef(len(h.liveTIDs) - 1) // the tuple just appended
	if err := h.deleteTuple(tid); err != nil {
		return err
	}
	postIVA, postSII, postDST, err := search("post-roundtrip")
	if err != nil {
		return err
	}
	if err := h.diff("iva roundtrip "+c.name, preIVA, postIVA); err != nil {
		return err
	}
	if h.iva2 != nil {
		// The mirror saw the same insert→delete pair (via insertTuple /
		// deleteTuple); its post state must match the raw engine's.
		h.iva2.ix.SetSearchParallelism(0)
		got, _, err := h.iva2.ix.Search(q, h.mirrorMetric(c))
		if err != nil {
			return h.failf("iva2 post-roundtrip search: %v", err)
		}
		h.res.CodecComparisons++
		if err := h.diff("iva2 roundtrip "+c.name, postIVA, got); err != nil {
			return err
		}
	}
	if err := h.diff("sii roundtrip "+c.name, preSII, postSII); err != nil {
		return err
	}
	if err := h.diff("dst roundtrip "+c.name, preDST, postDST); err != nil {
		return err
	}
	h.res.RoundTrips++
	return nil
}

// finalSweep closes a run: every metric grid point × every parallelism is
// diffed once more against the reference on the final store state, and the
// iVA-file passes a last full integrity check.
func (h *harness) finalSweep() error {
	h.curOp = workload.OpSearch
	for _, c := range combos {
		q, err := h.resolveQuery(h.gen.Query())
		if err != nil {
			return err
		}
		ivaM, siiM, dstM, refM := h.metricsFor(c)
		want := h.bruteForce(q, refM)
		for _, par := range parGrid {
			h.iva.ix.SetSearchParallelism(par)
			got, _, err := h.iva.ix.Search(q, ivaM)
			if err != nil {
				return h.failf("final iva %s par=%d: %v", c.name, par, err)
			}
			if err := h.diff(fmt.Sprintf("final iva %s par=%d", c.name, par), want, got); err != nil {
				return err
			}
		}
		if h.iva2 != nil {
			if err := h.mirrorDiff("final", q, c, want); err != nil {
				return err
			}
		}
		got, _, err := h.sii.ix.Search(q, siiM)
		if err != nil {
			return h.failf("final sii %s: %v", c.name, err)
		}
		if err := h.diff("final sii "+c.name, want, got); err != nil {
			return err
		}
		if got, _, err = h.dst.sc.Search(q, dstM); err != nil {
			return h.failf("final dst %s: %v", c.name, err)
		}
		if err := h.diff("final dst "+c.name, want, got); err != nil {
			return err
		}
		h.res.Searches++
	}
	rep, err := h.iva.ix.Check()
	if err != nil {
		return h.failf("final iva check: %v", err)
	}
	if !rep.Ok() {
		return h.failf("final iva check: %v", rep.Problems)
	}
	if h.iva2 != nil {
		h.notePackedLists()
		rep, err := h.iva2.ix.Check()
		if err != nil {
			return h.failf("final iva2 check: %v", err)
		}
		if !rep.Ok() {
			return h.failf("final iva2 check: %v", rep.Problems)
		}
	}
	return h.corruptionSweep()
}
