package table

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
)

// ErrNotFound is returned by lookups for tuple ids that are not live.
var ErrNotFound = errors.New("table: tuple not found")

// Table is the sparse wide table: a catalog plus a row-wise heap file of
// self-describing records. The paper's indexes point into it with byte
// offsets (the ptr of a tuple-list element), and its random-access fetch
// count is the "table file accesses" metric of Fig. 8.
type Table struct {
	f   *storage.File
	cat *Catalog

	mu       sync.Mutex
	nextTID  model.TID
	live     int64        // live (non-deleted) tuples
	total    int64        // records present in the file, incl. deleted
	dataEnd  int64        // next append offset
	crcStart int64        // records at ptr >= crcStart carry a CRC32C trailer
	upgraded bool         // header flags bit 0 was unset when the file was opened
	accesses atomic.Int64 // random tuple fetches (Fig. 8 metric)
}

const (
	tableMagic   = 0x53575442 // "SWTB"
	headerSize   = 64
	maxRecordLen = 1 << 24

	// flagRecordCRC marks a header whose crcStart watermark is valid: every
	// record appended at or beyond it ends in a CRC32C trailer (format v4).
	flagRecordCRC = 1 << 0

	recordTrailerLen = 4
)

// New creates an empty table over f. Existing file contents are discarded.
func New(f *storage.File, cat *Catalog) (*Table, error) {
	if err := f.Truncate(0); err != nil {
		return nil, err
	}
	t := &Table{f: f, cat: cat, dataEnd: headerSize, crcStart: headerSize}
	if err := t.writeHeader(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to a table previously written to f with the given catalog.
func Open(f *storage.File, cat *Catalog) (*Table, error) {
	var hdr [headerSize]byte
	if err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != tableMagic {
		return nil, fmt.Errorf("table: bad magic")
	}
	t := &Table{
		f:       f,
		cat:     cat,
		nextTID: model.TID(binary.LittleEndian.Uint32(hdr[4:8])),
		live:    int64(binary.LittleEndian.Uint64(hdr[8:16])),
		total:   int64(binary.LittleEndian.Uint64(hdr[16:24])),
		dataEnd: int64(binary.LittleEndian.Uint64(hdr[24:32])),
	}
	if binary.LittleEndian.Uint32(hdr[32:36])&flagRecordCRC != 0 {
		t.crcStart = int64(binary.LittleEndian.Uint64(hdr[36:44]))
	} else {
		// Pre-v4 file: existing records stay trailer-free, but everything
		// appended from here on is covered. The watermark equals the
		// committed dataEnd, so a crash before the next Sync (which persists
		// the upgraded header) rolls both back together.
		t.crcStart = t.dataEnd
		t.upgraded = true
	}
	return t, nil
}

func (t *Table) writeHeader() error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], tableMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(t.nextTID))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(t.live))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(t.total))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(t.dataEnd))
	binary.LittleEndian.PutUint32(hdr[32:36], flagRecordCRC)
	binary.LittleEndian.PutUint64(hdr[36:44], uint64(t.crcStart))
	return t.f.WriteAt(hdr[:], 0)
}

// Sync persists the header and flushes the device.
func (t *Table) Sync() error {
	t.mu.Lock()
	err := t.writeHeader()
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.f.Sync()
}

// Catalog returns the table's catalog.
func (t *Table) Catalog() *Catalog { return t.cat }

// Live returns the number of live tuples (|T| in the paper).
func (t *Table) Live() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.live
}

// Total returns the number of records in the file including deleted ones.
func (t *Table) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// NextTID returns the id the next inserted tuple will receive.
func (t *Table) NextTID() model.TID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextTID
}

// Bytes returns the table file's logical size.
func (t *Table) Bytes() int64 { return t.f.Size() }

// IOStats returns the I/O counters of the table's file. Query plans take
// per-file deltas around the refine phase so that table-file I/O is
// attributed exactly even when several workers fetch concurrently.
func (t *Table) IOStats() *storage.Stats { return t.f.IOStats() }

// Accesses returns the number of random tuple fetches since the last reset.
func (t *Table) Accesses() int64 { return t.accesses.Load() }

// CRCStart returns the watermark from which records carry CRC32C trailers.
// Records before it (written by a pre-v4 store) are read unverified until a
// rebuild rewrites them.
func (t *Table) CRCStart() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crcStart
}

// Legacy reports whether the file holds any trailer-free pre-v4 records.
func (t *Table) Legacy() bool { return t.CRCStart() > headerSize }

// recordCRC returns the trailer value for a record (length word + body) at
// ptr. The offset is mixed in so a record read from the wrong place — a
// misdirected I/O — fails verification even if its bytes are intact.
func recordCRC(rec []byte, ptr int64) uint32 {
	var off [8]byte
	binary.LittleEndian.PutUint64(off[:], uint64(ptr))
	return storage.ChecksumUpdate(storage.Checksum(rec), off[:])
}

// ResetAccesses zeroes the fetch counter.
func (t *Table) ResetAccesses() { t.accesses.Store(0) }

// encodeRecord serializes a tuple. Layout (little-endian):
//
//	u32 bodyLen | u32 tid | u16 nattrs |
//	repeat: u32 attrID, u8 kind, payload
//	  numeric payload: f64 bits
//	  text payload:    u8 nstrs, repeat (u8 len, bytes)
func encodeRecord(tid model.TID, values map[model.AttrID]model.Value) ([]byte, error) {
	if len(values) > math.MaxUint16 {
		return nil, fmt.Errorf("table: tuple with %d attributes", len(values))
	}
	buf := make([]byte, 4, 64+16*len(values))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(tid))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(values)))
	for _, a := range sortedAttrs(values) {
		v := values[a]
		if err := v.Validate(); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case model.KindNumeric:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Num))
		case model.KindText:
			if len(v.Strs) > 255 {
				return nil, fmt.Errorf("table: text value with %d strings exceeds 255", len(v.Strs))
			}
			buf = append(buf, byte(len(v.Strs)))
			for _, s := range v.Strs {
				buf = append(buf, byte(len(s)))
				buf = append(buf, s...)
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-4))
	return buf, nil
}

func sortedAttrs(values map[model.AttrID]model.Value) []model.AttrID {
	t := model.Tuple{Values: values}
	return t.Attrs()
}

func decodeRecord(buf []byte) (*model.Tuple, error) {
	if len(buf) < 6 {
		return nil, fmt.Errorf("table: truncated record")
	}
	tid := model.TID(binary.LittleEndian.Uint32(buf[0:4]))
	n := int(binary.LittleEndian.Uint16(buf[4:6]))
	p := 6
	tp := model.NewTuple(tid)
	for i := 0; i < n; i++ {
		if p+5 > len(buf) {
			return nil, fmt.Errorf("table: truncated attribute %d", i)
		}
		a := model.AttrID(binary.LittleEndian.Uint32(buf[p:]))
		kind := model.Kind(buf[p+4])
		p += 5
		switch kind {
		case model.KindNumeric:
			if p+8 > len(buf) {
				return nil, fmt.Errorf("table: truncated numeric value")
			}
			tp.Set(a, model.Num(math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))))
			p += 8
		case model.KindText:
			if p >= len(buf) {
				return nil, fmt.Errorf("table: truncated text value")
			}
			ns := int(buf[p])
			p++
			strs := make([]string, 0, ns)
			for j := 0; j < ns; j++ {
				if p >= len(buf) {
					return nil, fmt.Errorf("table: truncated string header")
				}
				sl := int(buf[p])
				p++
				if p+sl > len(buf) {
					return nil, fmt.Errorf("table: truncated string body")
				}
				strs = append(strs, string(buf[p:p+sl]))
				p += sl
			}
			tp.Set(a, model.Text(strs...))
		default:
			return nil, fmt.Errorf("table: unknown value kind %d", kind)
		}
	}
	return tp, nil
}

// Append inserts a tuple, assigning it the next tid, and returns the tid and
// the record's byte offset (the tuple-list ptr). Catalog statistics are
// updated.
func (t *Table) Append(values map[model.AttrID]model.Value) (model.TID, int64, error) {
	t.mu.Lock()
	tid := t.nextTID
	t.mu.Unlock()
	ptr, err := t.AppendWithTID(tid, values)
	if err != nil {
		return 0, 0, err
	}
	return tid, ptr, nil
}

// AppendWithTID inserts a tuple with an explicit tid (used by Rebuild to
// preserve ids). The table's next tid advances past it.
func (t *Table) AppendWithTID(tid model.TID, values map[model.AttrID]model.Value) (int64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("table: empty tuple")
	}
	rec, err := encodeRecord(tid, values)
	if err != nil {
		return 0, err
	}
	for a, v := range values {
		if err := t.cat.noteValue(a, v, +1); err != nil {
			return 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ptr := t.dataEnd
	rec = binary.LittleEndian.AppendUint32(rec, recordCRC(rec, ptr))
	if err := t.f.WriteAt(rec, ptr); err != nil {
		return 0, err
	}
	t.dataEnd += int64(len(rec))
	t.total++
	t.live++
	if tid >= t.nextTID {
		t.nextTID = tid + 1
	}
	return ptr, nil
}

// NoteDelete subtracts a deleted tuple's values from the catalog statistics
// and decrements the live count. The record itself stays until Rebuild.
func (t *Table) NoteDelete(values map[model.AttrID]model.Value) error {
	for a, v := range values {
		if err := t.cat.noteValue(a, v, -1); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.live--
	t.mu.Unlock()
	return nil
}

// Fetch reads the tuple stored at ptr. Every call counts as one random
// table-file access.
func (t *Table) Fetch(ptr int64) (*model.Tuple, error) {
	t.accesses.Add(1)
	return t.readAt(ptr)
}

func (t *Table) readAt(ptr int64) (*model.Tuple, error) {
	var lenBuf [4]byte
	if err := t.f.ReadAt(lenBuf[:], ptr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxRecordLen {
		if ptr >= t.CRCStart() {
			return nil, &storage.CorruptionError{File: "table.swt", Offset: ptr,
				Segment: storage.NoCorruptSegment, Detail: fmt.Sprintf("bad record length %d", n)}
		}
		return nil, fmt.Errorf("table: bad record length %d at %d", n, ptr)
	}
	covered := ptr >= t.CRCStart()
	body := make([]byte, n, n+recordTrailerLen)
	if covered {
		body = body[:n+recordTrailerLen]
	}
	if err := t.f.ReadAt(body, ptr+4); err != nil {
		return nil, err
	}
	if covered {
		want := binary.LittleEndian.Uint32(body[n:])
		body = body[:n]
		var off [8]byte
		binary.LittleEndian.PutUint64(off[:], uint64(ptr))
		crc := storage.ChecksumUpdate(storage.ChecksumUpdate(storage.Checksum(lenBuf[:]), body), off[:])
		if crc != want {
			return nil, &storage.CorruptionError{File: "table.swt", Offset: ptr,
				Segment: storage.NoCorruptSegment, Detail: "record checksum mismatch"}
		}
	}
	return decodeRecord(body)
}

// Scan iterates every record in file order (including records of deleted
// tuples; the caller filters with its tombstone set). Scanning is sequential
// and does not count as random table accesses.
func (t *Table) Scan(fn func(ptr int64, tp *model.Tuple) error) error {
	t.mu.Lock()
	end := t.dataEnd
	t.mu.Unlock()
	for ptr := int64(headerSize); ptr < end; {
		tp, next, err := t.scanOne(ptr)
		if err != nil {
			return err
		}
		if err := fn(ptr, tp); err != nil {
			return err
		}
		ptr = next
	}
	return nil
}

// scanOne reads, verifies and decodes the record at ptr, returning the
// decoded tuple and the offset of the next record.
func (t *Table) scanOne(ptr int64) (*model.Tuple, int64, error) {
	tp, err := t.readAt(ptr)
	if err != nil {
		return nil, 0, err
	}
	var lenBuf [4]byte
	if err := t.f.ReadAt(lenBuf[:], ptr); err != nil {
		return nil, 0, err
	}
	next := ptr + 4 + int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if ptr >= t.CRCStart() {
		next += recordTrailerLen
	}
	return tp, next, nil
}

// ScrubReport summarizes a table checksum sweep.
type ScrubReport struct {
	Records int // records swept
	Covered int // records carrying a CRC32C trailer
	Legacy  int // pre-v4 records with no trailer (unverifiable)
	Corrupt int // records whose trailer or structure failed verification
	// Problems holds one message per corrupt record (capped at 50).
	Problems []string
}

// Clean reports whether the sweep found no corruption.
func (r *ScrubReport) Clean() bool { return r.Corrupt == 0 }

// Scrub sweeps every record up to the committed dataEnd, verifying the
// CRC32C trailer and decodability of each. A corrupt record ends the sweep
// for the rest of the file (record framing cannot be trusted past it).
func (t *Table) Scrub() ScrubReport { return t.ScrubYield(nil) }

// ScrubYield is Scrub with a pacing hook: a non-nil yield is called once per
// swept record, letting a background scrubber time-slice and I/O-throttle
// the sweep (see the iva package's scrub scheduler).
func (t *Table) ScrubYield(yield func()) ScrubReport {
	t.mu.Lock()
	end := t.dataEnd
	crcStart := t.crcStart
	t.mu.Unlock()
	var rep ScrubReport
	for ptr := int64(headerSize); ptr < end; {
		_, next, err := t.scanOne(ptr)
		if err != nil {
			rep.Corrupt++
			if len(rep.Problems) < 50 {
				rep.Problems = append(rep.Problems, err.Error())
			}
			return rep
		}
		rep.Records++
		if ptr >= crcStart {
			rep.Covered++
		} else {
			rep.Legacy++
		}
		ptr = next
		if yield != nil {
			yield()
		}
	}
	return rep
}

// Rebuild rewrites the table into dst keeping only tuples for which keep
// returns true, preserving tids, and returns the new table plus the mapping
// tid → new ptr. Catalog statistics (including numeric relative domains) are
// recomputed from the surviving data, as §III-C and §IV-B prescribe.
func (t *Table) Rebuild(dst *storage.File, keep func(model.TID) bool) (*Table, map[model.TID]int64, error) {
	t.cat.ResetStats()
	nt, err := New(dst, t.cat)
	if err != nil {
		return nil, nil, err
	}
	ptrs := make(map[model.TID]int64)
	maxTID := model.TID(0)
	err = t.Scan(func(_ int64, tp *model.Tuple) error {
		if !keep(tp.TID) {
			return nil
		}
		ptr, err := nt.AppendWithTID(tp.TID, tp.Values)
		if err != nil {
			return err
		}
		ptrs[tp.TID] = ptr
		if tp.TID > maxTID {
			maxTID = tp.TID
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Keep the id space monotone across rebuilds.
	nt.mu.Lock()
	if t.nextTID > nt.nextTID {
		nt.nextTID = t.nextTID
	}
	nt.mu.Unlock()
	if err := nt.Sync(); err != nil {
		return nil, nil, err
	}
	return nt, ptrs, nil
}
