package table

import (
	"testing"

	"github.com/sparsewide/iva/internal/model"
)

// FuzzDecodeRecord feeds arbitrary bytes to the record decoder: it must
// either parse or error, never panic or over-read.
func FuzzDecodeRecord(f *testing.F) {
	rec, err := encodeRecord(7, map[model.AttrID]model.Value{
		0: model.Text("canon", "cannon"),
		3: model.Num(230),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec[4:]) // body without the length prefix
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 255, 255}) // huge claimed attr count
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, err := decodeRecord(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode without error (the decoder
		// only accepts well-formed values).
		if _, err := encodeRecord(tp.TID, tp.Values); err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks the inverse direction with
// fuzzer-chosen scalar inputs.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint32(1), "hello", 3.14, uint8(2))
	f.Fuzz(func(t *testing.T, tid uint32, s string, num float64, reps uint8) {
		if len(s) == 0 || len(s) > model.MaxStringLen {
			return
		}
		strs := make([]string, 1+int(reps)%3)
		for i := range strs {
			strs[i] = s
		}
		vals := map[model.AttrID]model.Value{
			0: model.Text(strs...),
			1: model.Num(num),
		}
		rec, err := encodeRecord(model.TID(tid), vals)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := decodeRecord(rec[4:])
		if err != nil {
			t.Fatal(err)
		}
		if tp.TID != model.TID(tid) {
			t.Fatalf("tid %d != %d", tp.TID, tid)
		}
		for a, want := range vals {
			got, ok := tp.Get(a)
			if !ok || !got.Equal(want) {
				t.Fatalf("attr %d: %v != %v", a, got, want)
			}
		}
	})
}
