package table

import (
	"math/rand"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
)

func newTestTable(t *testing.T) (*Table, *Catalog, *storage.Pool) {
	t.Helper()
	pool := storage.NewPool(0, 1<<20)
	cat := NewCatalog()
	tb, err := New(storage.NewFile(pool, storage.NewMemDevice()), cat)
	if err != nil {
		t.Fatal(err)
	}
	return tb, cat, pool
}

func TestCatalogAddLookup(t *testing.T) {
	c := NewCatalog()
	id1, err := c.AddAttr("Price", model.KindNumeric)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.AddAttr("Company", model.KindText)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate ids")
	}
	if got, ok := c.Lookup("Price"); !ok || got != id1 {
		t.Fatalf("Lookup(Price) = %d,%v", got, ok)
	}
	// Idempotent re-add.
	again, err := c.AddAttr("Price", model.KindNumeric)
	if err != nil || again != id1 {
		t.Fatalf("re-add: %d, %v", again, err)
	}
	// Kind conflict.
	if _, err := c.AddAttr("Price", model.KindText); err == nil {
		t.Fatal("kind conflict accepted")
	}
	if _, err := c.AddAttr("", model.KindText); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestCatalogStats(t *testing.T) {
	c := NewCatalog()
	price, _ := c.AddAttr("Price", model.KindNumeric)
	brand, _ := c.AddAttr("Brand", model.KindText)

	c.noteValue(price, model.Num(230), +1)
	c.noteValue(price, model.Num(990), +1)
	c.noteValue(brand, model.Text("Canon", "Cannon"), +1)

	pi, _ := c.Info(price)
	if pi.DF != 2 || !pi.HasDomain || pi.Min != 230 || pi.Max != 990 {
		t.Fatalf("price info = %+v", pi)
	}
	bi, _ := c.Info(brand)
	if bi.DF != 1 || bi.Str != 2 {
		t.Fatalf("brand info = %+v", bi)
	}

	c.noteValue(brand, model.Text("Canon", "Cannon"), -1)
	bi, _ = c.Info(brand)
	if bi.DF != 0 || bi.Str != 0 {
		t.Fatalf("after delete: %+v", bi)
	}
}

func TestCatalogKindMismatchOnValue(t *testing.T) {
	c := NewCatalog()
	price, _ := c.AddAttr("Price", model.KindNumeric)
	if err := c.noteValue(price, model.Text("oops"), +1); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestCatalogEncodeDecode(t *testing.T) {
	c := NewCatalog()
	price, _ := c.AddAttr("Price", model.KindNumeric)
	c.AddAttr("Brand", model.KindText)
	c.noteValue(price, model.Num(-12.5), +1)
	c.noteValue(price, model.Num(99.25), +1)

	blob := c.Encode()
	c2, err := DecodeCatalog(blob)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumAttrs() != 2 {
		t.Fatalf("NumAttrs = %d", c2.NumAttrs())
	}
	pi, _ := c2.Info(price)
	if pi.Name != "Price" || pi.DF != 2 || pi.Min != -12.5 || pi.Max != 99.25 {
		t.Fatalf("decoded price = %+v", pi)
	}
	if _, ok := c2.Lookup("Brand"); !ok {
		t.Fatal("Brand lost in round trip")
	}
	if _, err := DecodeCatalog([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAppendFetchRoundTrip(t *testing.T) {
	tb, cat, _ := newTestTable(t)
	brand, _ := cat.AddAttr("Brand", model.KindText)
	price, _ := cat.AddAttr("Price", model.KindNumeric)

	vals := map[model.AttrID]model.Value{
		brand: model.Text("Canon"),
		price: model.Num(230),
	}
	tid, ptr, err := tb.Append(vals)
	if err != nil {
		t.Fatal(err)
	}
	if tid != 0 {
		t.Fatalf("first tid = %d", tid)
	}
	got, err := tb.Fetch(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if got.TID != tid {
		t.Fatalf("fetched tid = %d", got.TID)
	}
	if v, ok := got.Get(brand); !ok || !v.Equal(model.Text("Canon")) {
		t.Fatalf("brand = %v,%v", v, ok)
	}
	if v, ok := got.Get(price); !ok || v.Num != 230 {
		t.Fatalf("price = %v,%v", v, ok)
	}
	if tb.Accesses() != 1 {
		t.Fatalf("Accesses = %d, want 1", tb.Accesses())
	}
}

func TestAppendMultiStringText(t *testing.T) {
	tb, cat, _ := newTestTable(t)
	ind, _ := cat.AddAttr("Industry", model.KindText)
	_, ptr, err := tb.Append(map[model.AttrID]model.Value{
		ind: model.Text("Computer", "Software"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Fetch(ptr)
	v, _ := got.Get(ind)
	if len(v.Strs) != 2 || v.Strs[0] != "Computer" || v.Strs[1] != "Software" {
		t.Fatalf("strs = %v", v.Strs)
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	tb, cat, _ := newTestTable(t)
	a, _ := cat.AddAttr("A", model.KindText)
	if _, _, err := tb.Append(map[model.AttrID]model.Value{a: model.Text()}); err == nil {
		t.Fatal("empty text set accepted")
	}
	if _, _, err := tb.Append(nil); err == nil {
		t.Fatal("empty tuple accepted")
	}
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	if _, _, err := tb.Append(map[model.AttrID]model.Value{a: model.Text(string(long))}); err == nil {
		t.Fatal("overlong string accepted")
	}
}

func TestScanOrderAndContent(t *testing.T) {
	tb, cat, _ := newTestTable(t)
	a, _ := cat.AddAttr("A", model.KindNumeric)
	var ptrs []int64
	for i := 0; i < 10; i++ {
		_, ptr, err := tb.Append(map[model.AttrID]model.Value{a: model.Num(float64(i))})
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	var seen int
	err := tb.Scan(func(ptr int64, tp *model.Tuple) error {
		if ptr != ptrs[seen] {
			t.Fatalf("record %d at %d, want %d", seen, ptr, ptrs[seen])
		}
		if v, _ := tp.Get(a); v.Num != float64(seen) {
			t.Fatalf("record %d value %v", seen, v.Num)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Fatalf("scanned %d records", seen)
	}
}

func TestHeaderPersistence(t *testing.T) {
	pool := storage.NewPool(0, 1<<20)
	dev := storage.NewMemDevice()
	cat := NewCatalog()
	a, _ := cat.AddAttr("A", model.KindNumeric)

	f := storage.NewFile(pool, dev)
	tb, err := New(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	var lastPtr int64
	for i := 0; i < 5; i++ {
		_, lastPtr, err = tb.Append(map[model.AttrID]model.Value{a: model.Num(float64(i))})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Sync(); err != nil {
		t.Fatal(err)
	}

	tb2, err := Open(storage.NewFile(pool, dev), cat)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Live() != 5 || tb2.NextTID() != 5 {
		t.Fatalf("reopened: live=%d next=%d", tb2.Live(), tb2.NextTID())
	}
	got, err := tb2.Fetch(lastPtr)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get(a); v.Num != 4 {
		t.Fatalf("value = %v", v.Num)
	}
	// Appending after reopen lands after the old data.
	_, _, err = tb2.Append(map[model.AttrID]model.Value{a: model.Num(99)})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	tb2.Scan(func(int64, *model.Tuple) error { count++; return nil })
	if count != 6 {
		t.Fatalf("scanned %d records after reopen-append", count)
	}
}

func TestNoteDelete(t *testing.T) {
	tb, cat, _ := newTestTable(t)
	a, _ := cat.AddAttr("A", model.KindText)
	vals := map[model.AttrID]model.Value{a: model.Text("x", "y")}
	tb.Append(vals)
	tb.Append(map[model.AttrID]model.Value{a: model.Text("z")})
	if err := tb.NoteDelete(vals); err != nil {
		t.Fatal(err)
	}
	if tb.Live() != 1 || tb.Total() != 2 {
		t.Fatalf("live=%d total=%d", tb.Live(), tb.Total())
	}
	info, _ := cat.Info(a)
	if info.DF != 1 || info.Str != 1 {
		t.Fatalf("stats after delete: %+v", info)
	}
}

func TestRebuildDropsDeleted(t *testing.T) {
	tb, cat, pool := newTestTable(t)
	a, _ := cat.AddAttr("A", model.KindNumeric)
	deleted := map[model.TID]bool{}
	for i := 0; i < 20; i++ {
		tid, _, err := tb.Append(map[model.AttrID]model.Value{a: model.Num(float64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			deleted[tid] = true
		}
	}
	for tid := range deleted {
		tb.NoteDelete(map[model.AttrID]model.Value{a: model.Num(float64(tid))})
	}
	nt, ptrs, err := tb.Rebuild(storage.NewFile(pool, storage.NewMemDevice()),
		func(tid model.TID) bool { return !deleted[tid] })
	if err != nil {
		t.Fatal(err)
	}
	if int(nt.Live()) != 20-len(deleted) {
		t.Fatalf("rebuilt live = %d", nt.Live())
	}
	if nt.NextTID() != 20 {
		t.Fatalf("rebuilt nextTID = %d, want 20", nt.NextTID())
	}
	for tid, ptr := range ptrs {
		got, err := nt.Fetch(ptr)
		if err != nil {
			t.Fatal(err)
		}
		if got.TID != tid {
			t.Fatalf("ptr map wrong: fetched %d via %d's ptr", got.TID, tid)
		}
		if v, _ := got.Get(a); v.Num != float64(tid) {
			t.Fatalf("tid %d value %v", tid, v.Num)
		}
	}
	// Catalog domain recomputed over survivors only.
	info, _ := cat.Info(a)
	if info.DF != int64(20-len(deleted)) {
		t.Fatalf("rebuilt DF = %d", info.DF)
	}
	if deleted[0] && info.Min == 0 {
		t.Fatal("domain not recomputed: still includes deleted minimum")
	}
}

func TestRandomTuplesRoundTrip(t *testing.T) {
	tb, cat, _ := newTestTable(t)
	var attrs []model.AttrID
	for i := 0; i < 30; i++ {
		kind := model.KindText
		if i%2 == 0 {
			kind = model.KindNumeric
		}
		id, _ := cat.AddAttr(attrName(i), kind)
		attrs = append(attrs, id)
	}
	rng := rand.New(rand.NewSource(21))
	type stored struct {
		ptr  int64
		vals map[model.AttrID]model.Value
	}
	var all []stored
	for i := 0; i < 200; i++ {
		vals := make(map[model.AttrID]model.Value)
		n := 1 + rng.Intn(8)
		for j := 0; j < n; j++ {
			id := attrs[rng.Intn(len(attrs))]
			info, _ := cat.Info(id)
			if info.Kind == model.KindNumeric {
				vals[id] = model.Num(rng.NormFloat64() * 100)
			} else {
				k := 1 + rng.Intn(3)
				strs := make([]string, k)
				for s := 0; s < k; s++ {
					strs[s] = randString(rng)
				}
				vals[id] = model.Text(strs...)
			}
		}
		_, ptr, err := tb.Append(vals)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, stored{ptr, vals})
	}
	for i, st := range all {
		got, err := tb.Fetch(st.ptr)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if len(got.Values) != len(st.vals) {
			t.Fatalf("tuple %d: %d values, want %d", i, len(got.Values), len(st.vals))
		}
		for a, want := range st.vals {
			gotV, ok := got.Get(a)
			if !ok || !gotV.Equal(want) {
				t.Fatalf("tuple %d attr %d: got %v want %v", i, a, gotV, want)
			}
		}
	}
}

func attrName(i int) string {
	return string(rune('A'+i%26)) + string(rune('a'+i/26))
}

func randString(rng *rand.Rand) string {
	n := 1 + rng.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
