// Package table implements the sparse-wide-table storage substrate the
// iVA-file indexes: a catalog of attributes and a row-wise heap file in the
// interpreted-schema style of Beckmann et al. (the paper's assumed layout).
// Each record is self-describing — it stores only its defined
// (attribute id, value) pairs — so a tuple with 16 of 1,147 attributes costs
// 16 cells, not 1,147.
package table

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
)

// AttrInfo is the catalog entry of one attribute. DF, Str and the numeric
// relative domain drive vector-list type selection and quantizer
// construction in the index layer.
type AttrInfo struct {
	Name string
	Kind model.Kind

	DF      int64 // number of live tuples defining the attribute
	Str     int64 // total number of strings over all live tuples (text only)
	MaxStrs int64 // largest string count in one value ever seen (text only)

	// Relative numeric domain (§III-C). The domain only widens between
	// rebuilds; Rebuild re-derives it from live data.
	HasDomain bool
	Min, Max  float64
}

// Catalog maps attribute names to dense ids and maintains per-attribute
// statistics. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	attrs  []AttrInfo
	byName map[string]model.AttrID
	legacy bool // decoded from a pre-v4 "CTLG" blob (no trailer to verify)
}

// Legacy reports whether the catalog was decoded from a pre-v4 blob that
// carried no checksum. The next Sync rewrites it in v4 form.
func (c *Catalog) Legacy() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.legacy
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]model.AttrID)}
}

// AddAttr registers an attribute, returning its id. Registering an existing
// name with the same kind returns the existing id; a kind conflict errors.
func (c *Catalog) AddAttr(name string, kind model.Kind) (model.AttrID, error) {
	if name == "" {
		return 0, fmt.Errorf("table: empty attribute name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.byName[name]; ok {
		if c.attrs[id].Kind != kind {
			return 0, fmt.Errorf("table: attribute %q is %v, not %v", name, c.attrs[id].Kind, kind)
		}
		return id, nil
	}
	id := model.AttrID(len(c.attrs))
	c.attrs = append(c.attrs, AttrInfo{Name: name, Kind: kind})
	c.byName[name] = id
	return id, nil
}

// Lookup returns the id of a named attribute.
func (c *Catalog) Lookup(name string) (model.AttrID, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.byName[name]
	return id, ok
}

// Info returns a copy of the catalog entry for id.
func (c *Catalog) Info(id model.AttrID) (AttrInfo, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if int(id) >= len(c.attrs) {
		return AttrInfo{}, fmt.Errorf("table: unknown attribute %d", id)
	}
	return c.attrs[id], nil
}

// NumAttrs returns the number of registered attributes.
func (c *Catalog) NumAttrs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.attrs)
}

// noteValue folds one defined value into the statistics (sign=+1 on insert,
// −1 on delete). Numeric deletes do not shrink the domain; Rebuild does.
func (c *Catalog) noteValue(id model.AttrID, v model.Value, sign int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(id) >= len(c.attrs) {
		return fmt.Errorf("table: unknown attribute %d", id)
	}
	a := &c.attrs[id]
	if a.Kind != v.Kind {
		return fmt.Errorf("table: attribute %q is %v, value is %v", a.Name, a.Kind, v.Kind)
	}
	a.DF += sign
	switch v.Kind {
	case model.KindText:
		a.Str += sign * int64(len(v.Strs))
		if sign > 0 && int64(len(v.Strs)) > a.MaxStrs {
			a.MaxStrs = int64(len(v.Strs))
		}
	case model.KindNumeric:
		if sign > 0 {
			if !a.HasDomain {
				a.HasDomain, a.Min, a.Max = true, v.Num, v.Num
			} else {
				if v.Num < a.Min {
					a.Min = v.Num
				}
				if v.Num > a.Max {
					a.Max = v.Num
				}
			}
		}
	}
	return nil
}

// ResetStats zeroes DF/Str/domain for every attribute (used by Rebuild
// before re-inserting live tuples).
func (c *Catalog) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.attrs {
		c.attrs[i].DF, c.attrs[i].Str, c.attrs[i].MaxStrs = 0, 0, 0
		c.attrs[i].HasDomain, c.attrs[i].Min, c.attrs[i].Max = false, 0, 0
	}
}

// Encode serializes the catalog to a self-describing binary blob ending in
// a CRC32C trailer over everything before it (format v4, magic "CTL4").
func (c *Catalog) Encode() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, catalogMagicV4)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.attrs)))
	for _, a := range c.attrs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a.Name)))
		buf = append(buf, a.Name...)
		buf = append(buf, byte(a.Kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.DF))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.Str))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.MaxStrs))
		flag := byte(0)
		if a.HasDomain {
			flag = 1
		}
		buf = append(buf, flag)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Min))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Max))
	}
	return binary.LittleEndian.AppendUint32(buf, storage.Checksum(buf))
}

const (
	catalogMagic   = 0x43544C47 // "CTLG" — pre-v4, no trailer
	catalogMagicV4 = 0x43544C34 // "CTL4" — ends in a CRC32C trailer
)

// DecodeCatalog parses a blob produced by Encode. A "CTL4" blob is verified
// against its CRC32C trailer; a legacy "CTLG" blob is accepted unverified
// (Legacy() reports which was seen) and upgrades on the next Sync.
func DecodeCatalog(buf []byte) (*Catalog, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("table: bad catalog magic")
	}
	legacy := false
	switch binary.LittleEndian.Uint32(buf) {
	case catalogMagicV4:
		if len(buf) < 12 {
			return nil, fmt.Errorf("table: truncated catalog")
		}
		body, trailer := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
		if storage.Checksum(body) != trailer {
			return nil, &storage.CorruptionError{File: "catalog.bin", Offset: 0,
				Segment: storage.NoCorruptSegment, Detail: "catalog checksum mismatch"}
		}
		buf = body
	case catalogMagic:
		legacy = true
	default:
		return nil, fmt.Errorf("table: bad catalog magic")
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	p := 8
	c := NewCatalog()
	c.legacy = legacy
	for i := 0; i < n; i++ {
		if p+2 > len(buf) {
			return nil, fmt.Errorf("table: truncated catalog")
		}
		nameLen := int(binary.LittleEndian.Uint16(buf[p:]))
		p += 2
		if p+nameLen+1+8+8+8+1+16 > len(buf) {
			return nil, fmt.Errorf("table: truncated catalog entry %d", i)
		}
		a := AttrInfo{Name: string(buf[p : p+nameLen])}
		p += nameLen
		a.Kind = model.Kind(buf[p])
		p++
		a.DF = int64(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		a.Str = int64(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		a.MaxStrs = int64(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		a.HasDomain = buf[p] == 1
		p++
		a.Min = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		a.Max = math.Float64frombits(binary.LittleEndian.Uint64(buf[p:]))
		p += 8
		c.byName[a.Name] = model.AttrID(len(c.attrs))
		c.attrs = append(c.attrs, a)
	}
	return c, nil
}

// Attrs returns a copy of all catalog entries, indexed by AttrID.
func (c *Catalog) Attrs() []AttrInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]AttrInfo, len(c.attrs))
	copy(out, c.attrs)
	return out
}
