package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// ErrResync is returned by Deltas when the primary cannot serve an
// incremental continuation — the requested generation fell off the retained
// log, or the primary restarted under a new epoch. The follower must fall
// back to a full snapshot.
var ErrResync = errors.New("repl: primary cannot continue incrementally; full resync required")

// Client fetches replication state from a primary's /v1/repl endpoints.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
}

// NewClient builds a client for the primary at base (e.g.
// "http://10.0.0.1:9090"). Every request carries a deadline (default 30s)
// on top of whatever context the caller passes.
func NewClient(base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Client{base: base, hc: &http.Client{}, timeout: timeout}
}

// get fetches one URL, bounding the request with the client deadline and
// capping the response size.
func (c *Client) get(ctx context.Context, path string, maxBytes int64) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxBytes))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return blob, resp.StatusCode, nil
}

// maxReplBody caps fetched replication bodies (a snapshot ships whole store
// files, so the cap is generous).
const maxReplBody = 4 << 30

// Snapshot fetches a full-state snapshot: a Full delta at the primary's
// current generation, wire-verified before return.
func (c *Client) Snapshot(ctx context.Context) (*Delta, error) {
	blob, code, err := c.get(ctx, "/v1/repl/snapshot", maxReplBody)
	if err != nil {
		return nil, fmt.Errorf("repl: snapshot: %w", err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("repl: snapshot: HTTP %d: %s", code, firstLine(blob))
	}
	d, err := DecodeDelta(blob)
	if err != nil {
		return nil, err
	}
	if !d.Full {
		return nil, fmt.Errorf("%w: snapshot delta not marked full", ErrCorruptDelta)
	}
	return d, nil
}

// Deltas fetches the deltas following generation `from` under `epoch`,
// wire-verified before return. ErrResync means the follower must snapshot.
func (c *Client) Deltas(ctx context.Context, epoch, from uint64) (*Batch, error) {
	path := "/v1/repl/deltas?epoch=" + strconv.FormatUint(epoch, 10) +
		"&from=" + strconv.FormatUint(from, 10)
	blob, code, err := c.get(ctx, path, maxReplBody)
	if err != nil {
		return nil, fmt.Errorf("repl: deltas: %w", err)
	}
	switch code {
	case http.StatusOK:
		return DecodeBatch(blob)
	case http.StatusGone:
		return nil, ErrResync
	default:
		return nil, fmt.Errorf("repl: deltas: HTTP %d: %s", code, firstLine(blob))
	}
}

// FetchFileRange fetches raw bytes [off, off+n) of a primary store file —
// the read-repair path. The caller verifies the bytes against its own
// committed checksum word; the wire adds no trust of its own.
func (c *Client) FetchFileRange(ctx context.Context, file string, off, n int64) ([]byte, error) {
	path := "/v1/repl/segment?file=" + url.QueryEscape(file) +
		"&off=" + strconv.FormatInt(off, 10) + "&len=" + strconv.FormatInt(n, 10)
	blob, code, err := c.get(ctx, path, n+1)
	if err != nil {
		return nil, fmt.Errorf("repl: segment: %w", err)
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("repl: segment: HTTP %d: %s", code, firstLine(blob))
	}
	if int64(len(blob)) != n {
		return nil, fmt.Errorf("repl: segment: got %d bytes, want %d", len(blob), n)
	}
	return blob, nil
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' || i >= 200 {
			return string(b[:i])
		}
	}
	return string(b)
}
