package repl

import (
	"bytes"
	"testing"

	"github.com/sparsewide/iva/internal/storage"
)

func mkRange(off int64, data []byte) Range {
	return Range{Off: off, CRC: storage.Checksum(data), Data: data}
}

func sampleDelta() *Delta {
	return &Delta{
		Epoch: 0xfeedface12345678,
		Gen:   42,
		Files: []FileDelta{
			{ID: FileTable, Size: 8192, Ranges: []Range{
				mkRange(0, []byte("table header bytes")),
				mkRange(4096, bytes.Repeat([]byte{0xAB}, 512)),
			}},
			{ID: FileIndex, Size: 65536, Ranges: []Range{
				mkRange(0, bytes.Repeat([]byte{7}, 4096)),
				mkRange(8192, []byte{1, 2, 3}),
			}},
			{ID: FileCatalog, Size: 5, Ranges: []Range{mkRange(0, []byte("hello"))}},
		},
	}
}

// TestDeltaRoundTrip pins encode→decode fidelity.
func TestDeltaRoundTrip(t *testing.T) {
	d := sampleDelta()
	got, err := DecodeDelta(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != d.Epoch || got.Gen != d.Gen || got.Full != d.Full {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Files) != len(d.Files) {
		t.Fatalf("files = %d, want %d", len(got.Files), len(d.Files))
	}
	for i, f := range d.Files {
		g := got.Files[i]
		if g.ID != f.ID || g.Size != f.Size || len(g.Ranges) != len(f.Ranges) {
			t.Fatalf("file %d mismatch: %+v vs %+v", i, g, f)
		}
		for j, r := range f.Ranges {
			if g.Ranges[j].Off != r.Off || !bytes.Equal(g.Ranges[j].Data, r.Data) {
				t.Fatalf("file %d range %d mismatch", i, j)
			}
		}
	}
	if d.Bytes() != 18+512+4096+3+5 {
		t.Fatalf("Bytes() = %d", d.Bytes())
	}
}

// TestDeltaBitFlipDetected flips every byte position (and one bit within)
// of an encoded delta and asserts decode always fails: no single-byte
// corruption may pass wire verification.
func TestDeltaBitFlipDetected(t *testing.T) {
	blob := sampleDelta().Encode()
	for off := 0; off < len(blob); off++ {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 1 << (off % 8)
		if _, err := DecodeDelta(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", off)
		}
	}
	// Truncations must fail too.
	for _, cut := range []int{1, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeDelta(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
}

// TestBatchRoundTrip pins the batch framing.
func TestBatchRoundTrip(t *testing.T) {
	d1 := sampleDelta()
	d2 := sampleDelta()
	d2.Gen = 43
	d2.Full = true
	b := &Batch{Epoch: d1.Epoch, PrimaryGen: 43, Deltas: []*Delta{d1, d2}}
	got, err := DecodeBatch(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != b.Epoch || got.PrimaryGen != 43 || len(got.Deltas) != 2 {
		t.Fatalf("batch mismatch: %+v", got)
	}
	if got.Deltas[0].Gen != 42 || got.Deltas[1].Gen != 43 || !got.Deltas[1].Full {
		t.Fatalf("member deltas mismatch")
	}

	// Empty batch (follower caught up) round-trips.
	empty := &Batch{Epoch: 7, PrimaryGen: 9}
	got, err = DecodeBatch(empty.Encode())
	if err != nil || len(got.Deltas) != 0 || got.PrimaryGen != 9 {
		t.Fatalf("empty batch: %v %+v", err, got)
	}

	// A corrupted member delta fails the whole batch.
	blob := b.Encode()
	blob[len(blob)-10] ^= 0xFF
	if _, err := DecodeBatch(blob); err == nil {
		t.Fatal("corrupt member decoded cleanly")
	}
}
