package repl

import (
	"bytes"
	"testing"
)

// FuzzReplDelta throws arbitrary bytes at the delta decoder. The decoder
// must never panic, and anything it accepts must re-encode byte-identically
// (the decode is a bijection on valid blobs — nothing silently normalized).
func FuzzReplDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add(sampleDelta().Encode())
	full := sampleDelta()
	full.Full = true
	f.Add(full.Encode())
	empty := &Delta{Epoch: 1, Gen: 1}
	f.Add(empty.Encode())
	b := &Batch{Epoch: 1, PrimaryGen: 2, Deltas: []*Delta{sampleDelta()}}
	f.Add(b.Encode())
	trunc := sampleDelta().Encode()
	f.Add(trunc[:len(trunc)/2])

	f.Fuzz(func(t *testing.T, blob []byte) {
		if d, err := DecodeDelta(blob); err == nil {
			re := d.Encode()
			if !bytes.Equal(re, blob) {
				t.Fatalf("accepted blob does not re-encode identically (%d vs %d bytes)", len(re), len(blob))
			}
		}
		if bt, err := DecodeBatch(blob); err == nil {
			re := bt.Encode()
			if !bytes.Equal(re, blob) {
				t.Fatalf("accepted batch does not re-encode identically")
			}
		}
	})
}
