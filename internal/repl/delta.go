// Package repl defines the replication wire format and HTTP client of the
// iVA-file store: log-shipped synced-prefix deltas.
//
// The v3+ crash-atomic commit makes "what changed between two Syncs" a
// well-defined set of byte ranges per store file: every non-superblock write
// is invisible until the superblock page commits it, so shipping the written
// ranges (bytes snapshotted after the Sync) and applying them with the
// superblock page last reproduces a committed state byte-for-byte. A Delta
// carries those ranges for one generation; a Full delta carries whole files
// (bootstrap snapshots and post-rebuild states, where in-place ranges are
// meaningless because the files were replaced).
//
// Every range carries a CRC32C over its bytes and the whole blob a trailing
// CRC32C, so a follower verifies every byte it is about to apply — and every
// byte it re-reads after applying — against checksums computed on the
// primary. A follower never commits bytes that fail verification.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/sparsewide/iva/internal/storage"
)

// File IDs name the store files inside a delta.
const (
	FileTable   = 0 // table.swt
	FileIndex   = 1 // iva.idx
	FileCatalog = 2 // catalog.bin (always shipped whole)
)

// FileName maps a file ID to the store file name it addresses.
func FileName(id uint8) string {
	switch id {
	case FileTable:
		return "table.swt"
	case FileIndex:
		return "iva.idx"
	case FileCatalog:
		return "catalog.bin"
	}
	return fmt.Sprintf("file-%d", id)
}

const (
	deltaMagic   = 0x44525669 // "iVRD" little-endian
	batchMagic   = 0x42525669 // "iVRB"
	wireVersion  = 1
	maxFiles     = 8
	maxRanges    = 1 << 20
	maxRangeLen  = 1 << 31
	maxBatchSize = 1 << 16
)

// ErrCorruptDelta reports a delta blob that failed structural or checksum
// verification on decode: it must be discarded, never applied.
var ErrCorruptDelta = errors.New("repl: corrupt delta")

// Range is one contiguous byte span of a file with its content checksum.
type Range struct {
	Off  int64
	CRC  uint32 // CRC32C over Data
	Data []byte
}

// FileDelta is every changed range of one store file plus its final size.
type FileDelta struct {
	ID     uint8
	Size   int64 // file size after applying (shrinks apply as a truncate)
	Ranges []Range
}

// Delta is one generation step: applying it to a follower at generation
// Gen-1 (or to anything, when Full) produces the primary's committed state
// at generation Gen of epoch Epoch.
type Delta struct {
	Epoch uint64
	Gen   uint64
	Full  bool
	Files []FileDelta
}

// Bytes returns the total payload bytes the delta carries.
func (d *Delta) Bytes() int64 {
	var n int64
	for _, f := range d.Files {
		for _, r := range f.Ranges {
			n += int64(len(r.Data))
		}
	}
	return n
}

// File returns the FileDelta with the given ID, or nil.
func (d *Delta) File(id uint8) *FileDelta {
	for i := range d.Files {
		if d.Files[i].ID == id {
			return &d.Files[i]
		}
	}
	return nil
}

// Encode serializes the delta with per-range and whole-blob CRC32C.
func (d *Delta) Encode() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, deltaMagic)
	b = binary.LittleEndian.AppendUint32(b, wireVersion)
	b = binary.LittleEndian.AppendUint64(b, d.Epoch)
	b = binary.LittleEndian.AppendUint64(b, d.Gen)
	full := byte(0)
	if d.Full {
		full = 1
	}
	b = append(b, full, byte(len(d.Files)))
	for _, f := range d.Files {
		b = append(b, f.ID)
		b = binary.LittleEndian.AppendUint64(b, uint64(f.Size))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Ranges)))
		for _, r := range f.Ranges {
			b = binary.LittleEndian.AppendUint64(b, uint64(r.Off))
			b = binary.LittleEndian.AppendUint64(b, uint64(len(r.Data)))
			b = binary.LittleEndian.AppendUint32(b, r.CRC)
			b = append(b, r.Data...)
		}
	}
	return binary.LittleEndian.AppendUint32(b, storage.Checksum(b))
}

// DecodeDelta parses and fully verifies a delta blob: structure, the trailing
// whole-blob CRC, and every range's CRC over its carried bytes. Any mismatch
// returns ErrCorruptDelta (wrapped with detail); a decoded delta is therefore
// safe to apply as far as wire integrity goes.
func DecodeDelta(blob []byte) (*Delta, error) {
	corrupt := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s", ErrCorruptDelta, fmt.Sprintf(format, args...))
	}
	if len(blob) < 4+4+8+8+2+4 {
		return nil, corrupt("short blob (%d bytes)", len(blob))
	}
	body, trailer := blob[:len(blob)-4], blob[len(blob)-4:]
	if storage.Checksum(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, corrupt("blob checksum mismatch")
	}
	if binary.LittleEndian.Uint32(body[0:4]) != deltaMagic {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != wireVersion {
		return nil, corrupt("unsupported wire version %d", v)
	}
	d := &Delta{
		Epoch: binary.LittleEndian.Uint64(body[8:16]),
		Gen:   binary.LittleEndian.Uint64(body[16:24]),
	}
	pos := 24
	switch body[pos] {
	case 0:
	case 1:
		d.Full = true
	default:
		return nil, corrupt("bad full flag %d", body[pos])
	}
	pos++
	nfiles := int(body[pos])
	pos++
	if nfiles > maxFiles {
		return nil, corrupt("too many files (%d)", nfiles)
	}
	need := func(n int) bool { return pos+n <= len(body) }
	for i := 0; i < nfiles; i++ {
		if !need(1 + 8 + 4) {
			return nil, corrupt("truncated file header")
		}
		f := FileDelta{ID: body[pos]}
		pos++
		f.Size = int64(binary.LittleEndian.Uint64(body[pos:]))
		pos += 8
		nranges := int(binary.LittleEndian.Uint32(body[pos:]))
		pos += 4
		if f.Size < 0 || nranges > maxRanges {
			return nil, corrupt("file %d: bad size/range count", f.ID)
		}
		for j := 0; j < nranges; j++ {
			if !need(8 + 8 + 4) {
				return nil, corrupt("truncated range header")
			}
			off := int64(binary.LittleEndian.Uint64(body[pos:]))
			pos += 8
			n := int64(binary.LittleEndian.Uint64(body[pos:]))
			pos += 8
			crc := binary.LittleEndian.Uint32(body[pos:])
			pos += 4
			if off < 0 || n < 0 || n > maxRangeLen || !need(int(n)) {
				return nil, corrupt("file %d range %d: bad span", f.ID, j)
			}
			data := body[pos : pos+int(n)]
			pos += int(n)
			if storage.Checksum(data) != crc {
				return nil, corrupt("file %d range [%d,+%d): range checksum mismatch", f.ID, off, n)
			}
			f.Ranges = append(f.Ranges, Range{Off: off, CRC: crc, Data: data})
		}
		d.Files = append(d.Files, f)
	}
	if pos != len(body) {
		return nil, corrupt("%d trailing bytes", len(body)-pos)
	}
	return d, nil
}

// Batch is the /v1/repl/deltas response: zero or more consecutive deltas
// plus the primary's current generation (so an up-to-date follower still
// learns its lag).
type Batch struct {
	Epoch      uint64
	PrimaryGen uint64
	Deltas     []*Delta
}

// Encode serializes the batch; each member delta keeps its own CRC framing.
func (b *Batch) Encode() []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, batchMagic)
	out = binary.LittleEndian.AppendUint32(out, wireVersion)
	out = binary.LittleEndian.AppendUint64(out, b.Epoch)
	out = binary.LittleEndian.AppendUint64(out, b.PrimaryGen)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Deltas)))
	for _, d := range b.Deltas {
		blob := d.Encode()
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out
}

// EncodeBatchRaw frames already-encoded delta blobs into a batch without
// decoding them — the primary's delta log stores encoded blobs, and their
// internal CRC framing travels as-is.
func EncodeBatchRaw(epoch, primaryGen uint64, blobs [][]byte) []byte {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, batchMagic)
	out = binary.LittleEndian.AppendUint32(out, wireVersion)
	out = binary.LittleEndian.AppendUint64(out, epoch)
	out = binary.LittleEndian.AppendUint64(out, primaryGen)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blobs)))
	for _, blob := range blobs {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out
}

// DecodeBatch parses a batch, fully verifying every member delta.
func DecodeBatch(blob []byte) (*Batch, error) {
	corrupt := func(msg string) error { return fmt.Errorf("%w: batch %s", ErrCorruptDelta, msg) }
	if len(blob) < 4+4+8+8+4 {
		return nil, corrupt("short")
	}
	if binary.LittleEndian.Uint32(blob[0:4]) != batchMagic {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(blob[4:8]); v != wireVersion {
		return nil, corrupt("bad version")
	}
	b := &Batch{
		Epoch:      binary.LittleEndian.Uint64(blob[8:16]),
		PrimaryGen: binary.LittleEndian.Uint64(blob[16:24]),
	}
	count := int(binary.LittleEndian.Uint32(blob[24:28]))
	if count > maxBatchSize {
		return nil, corrupt("too many deltas")
	}
	pos := 28
	for i := 0; i < count; i++ {
		if pos+4 > len(blob) {
			return nil, corrupt("truncated")
		}
		n := int(binary.LittleEndian.Uint32(blob[pos:]))
		pos += 4
		if n < 0 || pos+n > len(blob) {
			return nil, corrupt("truncated delta")
		}
		d, err := DecodeDelta(blob[pos : pos+n])
		if err != nil {
			return nil, err
		}
		pos += n
		b.Deltas = append(b.Deltas, d)
	}
	if pos != len(blob) {
		return nil, corrupt("trailing bytes")
	}
	return b, nil
}
