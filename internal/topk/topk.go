// Package topk implements the temporary result pool of §IV-A: a bounded
// max-heap of at most k (tid, distance) pairs supporting the three
// operations Algorithm 1 needs — Size, MaxDist and Insert — plus an ordered
// extraction for the final answer.
//
// The pool orders pairs by the total lexicographic order (dist, tid):
// distance ties are broken toward the smaller tid in admission and eviction
// alike. A full pool therefore holds exactly the k lex-smallest pairs ever
// inserted, independent of insertion order — the invariant that makes the
// parallel filter plan's merge byte-identical to the sequential scan.
package topk

import (
	"container/heap"
	"math"
	"sort"

	"github.com/sparsewide/iva/internal/model"
)

// Pool holds the k best candidates seen so far.
type Pool struct {
	k int
	h resultHeap
}

// New returns an empty pool of capacity k (k ≥ 1).
func New(k int) *Pool {
	if k < 1 {
		k = 1
	}
	return &Pool{k: k}
}

// K returns the pool capacity.
func (p *Pool) K() int { return p.k }

// Size returns the number of stored results.
func (p *Pool) Size() int { return len(p.h) }

// Full reports whether the pool holds k results.
func (p *Pool) Full() bool { return len(p.h) >= p.k }

// MaxDist returns the largest stored distance, or +Inf when the pool is not
// yet full (so any candidate qualifies, matching Algorithm 1's
// "pool.Size() < k or dist < pool.MaxDist()" guard when used alone).
func (p *Pool) MaxDist() float64 {
	if !p.Full() {
		return math.Inf(1)
	}
	return p.h[0].Dist
}

// Admits reports whether a tuple whose (estimated or actual) distance is d
// could still enter the pool under some tid: true when d is at or below the
// pool maximum, since a distance tie can be won on the tid tie-break.
func (p *Pool) Admits(d float64) bool {
	return !p.Full() || d <= p.h[0].Dist
}

// AdmitsPair reports whether the exact pair (tid, d) would enter the pool —
// the tid-aware form of Admits. Gating a fetch on a lower bound with
// AdmitsPair is safe: if (est, tid) does not lex-beat the pool maximum then
// (actual, tid) with actual ≥ est cannot either.
func (p *Pool) AdmitsPair(tid model.TID, d float64) bool {
	if !p.Full() {
		return true
	}
	if d != p.h[0].Dist {
		return d < p.h[0].Dist
	}
	return tid < p.h[0].TID
}

// Insert offers a result. If the pool is full and (dist, tid) does not
// lexicographically beat the current maximum pair, the pool is unchanged and
// Insert reports false.
func (p *Pool) Insert(tid model.TID, dist float64) bool {
	if p.Full() {
		if !p.AdmitsPair(tid, dist) {
			return false
		}
		p.h[0] = model.Result{TID: tid, Dist: dist}
		heap.Fix(&p.h, 0)
		return true
	}
	heap.Push(&p.h, model.Result{TID: tid, Dist: dist})
	return true
}

// Results returns the stored results ordered by increasing distance
// (ties by tid for determinism). The pool is left intact.
func (p *Pool) Results() []model.Result {
	out := make([]model.Result, len(p.h))
	copy(out, p.h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// resultHeap is a max-heap on the lexicographic (Dist, TID) order, so the
// root is the pair any new candidate must beat.
type resultHeap []model.Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].TID > h[j].TID
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(model.Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
