package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/sparsewide/iva/internal/model"
)

func TestEmptyPool(t *testing.T) {
	p := New(3)
	if p.Size() != 0 || p.Full() {
		t.Fatal("new pool not empty")
	}
	if !math.IsInf(p.MaxDist(), 1) {
		t.Fatalf("MaxDist of non-full pool = %v, want +Inf", p.MaxDist())
	}
	if !p.Admits(1e18) {
		t.Fatal("non-full pool must admit anything")
	}
}

func TestInsertReplacesMax(t *testing.T) {
	p := New(2)
	p.Insert(1, 10)
	p.Insert(2, 20)
	if p.MaxDist() != 20 {
		t.Fatalf("MaxDist = %v", p.MaxDist())
	}
	if !p.Insert(3, 5) {
		t.Fatal("better result rejected")
	}
	if p.MaxDist() != 10 {
		t.Fatalf("MaxDist after replace = %v", p.MaxDist())
	}
	if p.Insert(4, 10) {
		t.Fatal("equal-distance result accepted into full pool")
	}
	res := p.Results()
	if res[0].TID != 3 || res[1].TID != 1 {
		t.Fatalf("results = %v", res)
	}
}

func TestKOne(t *testing.T) {
	p := New(1)
	p.Insert(7, 3)
	p.Insert(8, 1)
	p.Insert(9, 2)
	res := p.Results()
	if len(res) != 1 || res[0].TID != 8 {
		t.Fatalf("results = %v", res)
	}
}

func TestInvalidK(t *testing.T) {
	p := New(0)
	if p.K() != 1 {
		t.Fatalf("K = %d, want clamped to 1", p.K())
	}
}

func TestAgainstSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(20)
		n := rng.Intn(200)
		p := New(k)
		var all []model.Result
		for i := 0; i < n; i++ {
			r := model.Result{TID: model.TID(i), Dist: float64(rng.Intn(50))}
			all = append(all, r)
			p.Insert(r.TID, r.Dist)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
		want := k
		if n < k {
			want = n
		}
		got := p.Results()
		if len(got) != want {
			t.Fatalf("trial %d: size %d, want %d", trial, len(got), want)
		}
		// The distance multiset must match the reference top-k exactly.
		for i := range got {
			if got[i].Dist != all[i].Dist {
				t.Fatalf("trial %d pos %d: dist %v, want %v", trial, i, got[i].Dist, all[i].Dist)
			}
		}
		// Results must be sorted.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("trial %d: results unsorted", trial)
			}
		}
	}
}

func TestAdmitsMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := New(5)
	for i := 0; i < 500; i++ {
		d := rng.Float64() * 100
		admits := p.Admits(d)
		inserted := p.Insert(model.TID(i), d)
		if admits != inserted {
			t.Fatalf("step %d: Admits=%v but Insert=%v (d=%v)", i, admits, inserted, d)
		}
	}
}
