package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/sparsewide/iva/internal/model"
)

func TestEmptyPool(t *testing.T) {
	p := New(3)
	if p.Size() != 0 || p.Full() {
		t.Fatal("new pool not empty")
	}
	if !math.IsInf(p.MaxDist(), 1) {
		t.Fatalf("MaxDist of non-full pool = %v, want +Inf", p.MaxDist())
	}
	if !p.Admits(1e18) {
		t.Fatal("non-full pool must admit anything")
	}
}

func TestInsertReplacesMax(t *testing.T) {
	p := New(2)
	p.Insert(1, 10)
	p.Insert(2, 20)
	if p.MaxDist() != 20 {
		t.Fatalf("MaxDist = %v", p.MaxDist())
	}
	if !p.Insert(3, 5) {
		t.Fatal("better result rejected")
	}
	if p.MaxDist() != 10 {
		t.Fatalf("MaxDist after replace = %v", p.MaxDist())
	}
	if p.Insert(4, 10) {
		t.Fatal("equal-distance result accepted into full pool")
	}
	res := p.Results()
	if res[0].TID != 3 || res[1].TID != 1 {
		t.Fatalf("results = %v", res)
	}
}

func TestKOne(t *testing.T) {
	p := New(1)
	p.Insert(7, 3)
	p.Insert(8, 1)
	p.Insert(9, 2)
	res := p.Results()
	if len(res) != 1 || res[0].TID != 8 {
		t.Fatalf("results = %v", res)
	}
}

func TestInvalidK(t *testing.T) {
	p := New(0)
	if p.K() != 1 {
		t.Fatalf("K = %d, want clamped to 1", p.K())
	}
}

func TestAgainstSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(20)
		n := rng.Intn(200)
		p := New(k)
		var all []model.Result
		for i := 0; i < n; i++ {
			r := model.Result{TID: model.TID(i), Dist: float64(rng.Intn(50))}
			all = append(all, r)
			p.Insert(r.TID, r.Dist)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
		want := k
		if n < k {
			want = n
		}
		got := p.Results()
		if len(got) != want {
			t.Fatalf("trial %d: size %d, want %d", trial, len(got), want)
		}
		// The distance multiset must match the reference top-k exactly.
		for i := range got {
			if got[i].Dist != all[i].Dist {
				t.Fatalf("trial %d pos %d: dist %v, want %v", trial, i, got[i].Dist, all[i].Dist)
			}
		}
		// Results must be sorted.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatalf("trial %d: results unsorted", trial)
			}
		}
	}
}

func TestAdmitsMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := New(5)
	for i := 0; i < 500; i++ {
		d := rng.Float64() * 100
		admits := p.Admits(d)
		inserted := p.Insert(model.TID(i), d)
		if admits != inserted {
			t.Fatalf("step %d: Admits=%v but Insert=%v (d=%v)", i, admits, inserted, d)
		}
	}
}

func TestLexTieBreaks(t *testing.T) {
	// Distance ties resolve toward the smaller tid in every operation, and
	// the retained set is order-independent.
	p := New(2)
	p.Insert(10, 5)
	p.Insert(20, 5)
	if p.Insert(30, 5) {
		t.Fatal("lex-larger tie accepted")
	}
	if !p.AdmitsPair(5, 5) {
		t.Fatal("lex-smaller tie rejected by AdmitsPair")
	}
	if !p.Admits(5) || p.Admits(5.1) {
		t.Fatal("Admits must be d <= max")
	}
	if !p.Insert(5, 5) {
		t.Fatal("lex-smaller tie rejected by Insert")
	}
	res := p.Results()
	if len(res) != 2 || res[0].TID != 5 || res[1].TID != 10 {
		t.Fatalf("results = %v, want tids 5,10", res)
	}

	// Same pairs in every insertion order must retain the same set.
	pairs := []model.Result{{TID: 4, Dist: 7}, {TID: 9, Dist: 7}, {TID: 1, Dist: 7}, {TID: 6, Dist: 3}, {TID: 2, Dist: 9}}
	var want []model.Result
	for perm := 0; perm < 20; perm++ {
		rng := rand.New(rand.NewSource(int64(perm)))
		order := rng.Perm(len(pairs))
		q := New(3)
		for _, i := range order {
			q.Insert(pairs[i].TID, pairs[i].Dist)
		}
		got := q.Results()
		if perm == 0 {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("perm %d: %v, want %v", perm, got, want)
			}
		}
	}
}
