package topk

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/sparsewide/iva/internal/model"
)

// lexLess is the (dist, tid) total order the pool documents.
func lexLess(a, b model.Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.TID < b.TID
}

// TestPoolLexOrderProperty checks the pool's core contract on random offer
// sequences: a full pool holds exactly the k lex-smallest (dist, tid) pairs
// of the offered multiset, regardless of offer order, with AdmitsPair and
// Insert's return value agreeing at every step. Heavy distance ties (few
// distinct values, many tids) make the tid tie-break load-bearing.
func TestPoolLexOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x70c0))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(12)
		n := rng.Intn(80)
		distinct := 1 + rng.Intn(5) // few values → many exact ties
		offers := make([]model.Result, n)
		for i := range offers {
			offers[i] = model.Result{
				TID:  model.TID(rng.Intn(40)),
				Dist: float64(rng.Intn(distinct)) * 1.25,
			}
		}

		p := New(k)
		for i, o := range offers {
			admits := p.AdmitsPair(o.TID, o.Dist)
			ins := p.Insert(o.TID, o.Dist)
			if admits != ins {
				t.Fatalf("trial %d offer %d (%d,%.2f): AdmitsPair=%v Insert=%v",
					trial, i, o.TID, o.Dist, admits, ins)
			}
			if p.Admits(o.Dist) != (!p.Full() || o.Dist <= p.MaxDist()) {
				t.Fatalf("trial %d offer %d: Admits disagrees with MaxDist", trial, i)
			}
		}

		// Model: lex-sort all offers and take the first k. Note the pool may
		// hold duplicate (tid, dist) pairs if offered twice — the model must
		// keep duplicates too, hence a multiset sort, not a dedup.
		want := append([]model.Result(nil), offers...)
		sort.SliceStable(want, func(i, j int) bool { return lexLess(want[i], want[j]) })
		if len(want) > k {
			want = want[:k]
		}
		got := p.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: pool holds %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %+v, want %+v (offers %v)",
					trial, i, got[i], want[i], offers)
			}
		}
		if p.Full() && p.MaxDist() != got[len(got)-1].Dist {
			t.Fatalf("trial %d: MaxDist %v, want %v", trial, p.MaxDist(), got[len(got)-1].Dist)
		}

		// Order independence: re-offer in a different permutation.
		p2 := New(k)
		for _, i := range rng.Perm(n) {
			p2.Insert(offers[i].TID, offers[i].Dist)
		}
		got2 := p2.Results()
		for i := range got {
			if got2[i] != got[i] {
				t.Fatalf("trial %d: permuted offers changed result %d: %+v vs %+v",
					trial, i, got2[i], got[i])
			}
		}
	}
}
