package signature

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sparsewide/iva/internal/gram"
)

func mustCodec(t testing.TB, n int, alpha float64) *Codec {
	t.Helper()
	c, err := NewCodec(n, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(0, 0.2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewCodec(2, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewCodec(2, 1.5); err == nil {
		t.Error("alpha=1.5 accepted")
	}
	if _, err := NewCodec(2, 0.2); err != nil {
		t.Errorf("valid codec rejected: %v", err)
	}
}

func TestSigBits(t *testing.T) {
	c := mustCodec(t, 2, 0.2)
	// |s|=17, n=2: m=18, ceil(0.2*18)=4 bytes = 32 bits.
	if got := c.SigBits(17); got != 32 {
		t.Fatalf("SigBits(17) = %d, want 32", got)
	}
	// Floor: one byte minimum.
	if got := c.SigBits(1); got != 8 {
		t.Fatalf("SigBits(1) = %d, want 8", got)
	}
	if got := c.TotalBits(17); got != 32+LenBits {
		t.Fatalf("TotalBits(17) = %d", got)
	}
}

func TestExpectedErrorMonotoneInL(t *testing.T) {
	// Larger l must not increase the minimal expected error (§III-B.3:
	// "Larger l will necessarily result in lower ê").
	m := 18
	prev := math.Inf(1)
	for _, l := range []int{8, 16, 32, 64, 128} {
		best := math.Inf(1)
		for tt := 1; tt < l; tt++ {
			if e := ExpectedError(m, l, tt); e < best {
				best = e
			}
		}
		if best > prev+1e-12 {
			t.Fatalf("minimal error grew from %v to %v at l=%d", prev, best, l)
		}
		prev = best
	}
}

func TestOptimalTRange(t *testing.T) {
	c := mustCodec(t, 2, 0.2)
	for m := 1; m <= 64; m++ {
		for _, l := range []int{8, 16, 32, 64} {
			tt := c.OptimalT(m, l)
			if tt < 1 || tt >= l {
				t.Fatalf("OptimalT(%d,%d) = %d out of range", m, l, tt)
			}
		}
	}
	// Memoized second call must agree.
	if a, b := c.OptimalT(18, 32), c.OptimalT(18, 32); a != b {
		t.Fatal("memoization changed result")
	}
}

func TestSelfHitProperty(t *testing.T) {
	// Property 3.2: every n-gram of sd is a hit in c(sd); hence a query
	// identical to the data string estimates distance 0.
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 3} {
		for _, alpha := range []float64{0.1, 0.2, 0.3} {
			c := mustCodec(t, n, alpha)
			for trial := 0; trial < 300; trial++ {
				s := randomString(rng, 30)
				sig := c.Encode(s)
				q := c.NewQueryString(s)
				if got := q.Est(sig); got != 0 {
					t.Fatalf("Est(s,c(s)) = %v for %q (n=%d, α=%v), want 0", got, s, n, alpha)
				}
				// Hits must cover the full gram multiset.
				if hits := q.Hits(sig); hits < len(s)+n-1 {
					t.Fatalf("Hits = %d < %d grams for %q", hits, len(s)+n-1, s)
				}
			}
		}
	}
}

func TestNoFalseNegatives(t *testing.T) {
	// Proposition 3.3: est(sq, c(sd)) <= ed(sq, sd) for every pair.
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 3, 4} {
		for _, alpha := range []float64{0.1, 0.2, 0.3} {
			c := mustCodec(t, n, alpha)
			for trial := 0; trial < 500; trial++ {
				sd := randomString(rng, 25)
				sq := randomString(rng, 25)
				sig := c.Encode(sd)
				q := c.NewQueryString(sq)
				est := q.Est(sig)
				ed := float64(gram.EditDistance(sq, sd))
				if est > ed {
					t.Fatalf("est(%q, c(%q)) = %v > ed = %v (n=%d, α=%v)", sq, sd, est, ed, n, alpha)
				}
				// est must also never exceed est' (hits >= common grams).
				if ep := gram.EstPrime(sq, sd, n); est > ep+1e-9 {
					t.Fatalf("est = %v > est' = %v for (%q,%q)", est, ep, sq, sd)
				}
			}
		}
	}
}

func TestEstDeterministic(t *testing.T) {
	c := mustCodec(t, 2, 0.2)
	sig1 := c.Encode("digital camera")
	sig2 := c.Encode("digital camera")
	if sig1.Len != sig2.Len || len(sig1.H) != len(sig2.H) {
		t.Fatal("signature shape not deterministic")
	}
	for i := range sig1.H {
		if sig1.H[i] != sig2.H[i] {
			t.Fatal("signature bits not deterministic")
		}
	}
}

func TestEstDiscriminates(t *testing.T) {
	// A signature should usually distinguish a far string from a near one.
	c := mustCodec(t, 2, 0.3)
	sig := c.Encode("digital camera")
	near := c.NewQueryString("digital camera")
	far := c.NewQueryString("zzzzqqqqwwww")
	if e := near.Est(sig); e != 0 {
		t.Fatalf("near est = %v", e)
	}
	if e := far.Est(sig); e <= 0 {
		t.Fatalf("far est = %v, want > 0 (signature has no filtering power)", e)
	}
}

func TestHashMaskExactlyTBits(t *testing.T) {
	for _, l := range []int{8, 16, 32, 64, 96} {
		for _, tt := range []int{1, 2, 3, l / 2} {
			if tt < 1 || tt >= l {
				continue
			}
			m := hashMask("ab", l, tt)
			n := 0
			for _, w := range m {
				n += popcount(w)
			}
			if n != tt {
				t.Fatalf("hashMask set %d bits, want %d (l=%d)", n, tt, l)
			}
			// No bits outside l.
			if rem := l % 64; rem != 0 {
				if m[len(m)-1]&(^uint64(0)>>uint(rem)) != 0 {
					t.Fatalf("bits set beyond l=%d", l)
				}
			}
		}
	}
}

func TestMaskSubset(t *testing.T) {
	sig := []uint64{0b1101 << 60}
	if !maskSubset([]uint64{0b1100 << 60}, sig) {
		t.Fatal("subset rejected")
	}
	if maskSubset([]uint64{0b0010 << 60}, sig) {
		t.Fatal("non-subset accepted")
	}
}

func TestSaturatedSignatureStillSafe(t *testing.T) {
	// With tiny l and a long string the signature saturates; estimates
	// degrade to 0 but must never go negative or exceed ed.
	c := mustCodec(t, 2, 0.01) // floor: l = 8 bits for any length
	sd := "a very long data string that will saturate eight bits easily"
	sig := c.Encode(sd)
	q := c.NewQueryString("completely different")
	est := q.Est(sig)
	if est < 0 {
		t.Fatalf("est = %v < 0", est)
	}
	if ed := float64(gram.EditDistance(q.Str(), sd)); est > ed {
		t.Fatalf("est %v > ed %v on saturated signature", est, ed)
	}
}

func TestPaperExampleEstimateShape(t *testing.T) {
	// Example 3.4 shape: query "oh" against data "ok" with n=2 estimates
	// at most ed("oh","ok") = 1.
	c := mustCodec(t, 2, 0.5)
	sig := c.Encode("ok")
	q := c.NewQueryString("oh")
	if est := q.Est(sig); est > 1 {
		t.Fatalf("est(oh, c(ok)) = %v > 1", est)
	}
}

func randomString(rng *rand.Rand, maxLen int) string {
	n := 1 + rng.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(8))
	}
	return string(b)
}

func BenchmarkEncode(b *testing.B) {
	c := mustCodec(b, 2, 0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode("digital camera")
	}
}

func BenchmarkEst(b *testing.B) {
	c := mustCodec(b, 2, 0.2)
	sig := c.Encode("digital camera")
	q := c.NewQueryString("digtal camrea")
	q.Est(sig) // warm mask cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Est(sig)
	}
}
