// Package signature implements the nG-signature of §III-B: the approximation
// vector that represents a data string in the iVA-file.
//
// A signature c(s) has two parts: the low bits cL(s) record the string
// length (one byte here; the table layer caps strings at 255 bytes), and the
// high bits cH[l,t](s) are the bitwise OR of h[l,t](ω) over all n-grams ω of
// s, where h[l,t] hashes a gram to an l-bit vector with exactly t one bits.
//
// Given a query string sq, the hit-gram count |hg(sq,c(sd))| (Def. 3.3)
// estimates the common-gram count, and Eq. 3 turns it into an edit-distance
// estimate that never exceeds the true edit distance (Prop. 3.3), so
// filtering with it produces no false negatives.
//
// The signature width follows the paper's relative-vector-length parameter:
// cH takes ⌈α·(|s|+n−1)⌉ bytes, and t is chosen per (m=|s|+n−1, l) to
// minimize the expected relative error ê = (1−(1−t/l)^m)^t (Eq. 5); the
// chosen values are memoized in an in-memory table, as §III-B.3 suggests.
package signature

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/sparsewide/iva/internal/gram"
)

// Sig is an encoded nG-signature. H packs the cH bits in the bitio word
// layout: stream bit i is bit 63−(i mod 64) of H[i/64].
type Sig struct {
	Len int      // string length in bytes (the cL part)
	H   []uint64 // cH[l,t] bits
}

// Codec encodes strings into nG-signatures for a fixed gram length n and
// relative vector length α.
type Codec struct {
	n     int
	alpha float64

	mu sync.RWMutex
	tc map[tKey]int // (m,l) → optimal t
}

type tKey struct{ m, l int }

// NewCodec returns a codec. n must be ≥ 1 and α in (0, 1].
func NewCodec(n int, alpha float64) (*Codec, error) {
	if n < 1 {
		return nil, fmt.Errorf("signature: n = %d, want >= 1", n)
	}
	if !(alpha > 0 && alpha <= 1) { // rejects NaN too
		return nil, fmt.Errorf("signature: alpha = %v, want in (0,1]", alpha)
	}
	return &Codec{n: n, alpha: alpha, tc: make(map[tKey]int)}, nil
}

// N returns the gram length.
func (c *Codec) N() int { return c.n }

// Alpha returns the relative vector length.
func (c *Codec) Alpha() float64 { return c.alpha }

// LenBits is the width of the cL length field.
const LenBits = 8

// SigBits returns the cH width in bits for a data string of the given byte
// length: 8·⌈α·(len+n−1)⌉, with a one-byte floor.
func (c *Codec) SigBits(strLen int) int {
	m := strLen + c.n - 1
	b := int(math.Ceil(c.alpha * float64(m)))
	if b < 1 {
		b = 1
	}
	return 8 * b
}

// TotalBits returns the full signature width (cL + cH) for a string length.
func (c *Codec) TotalBits(strLen int) int { return LenBits + c.SigBits(strLen) }

// OptimalT returns the t ∈ [1, l−1] minimizing the expected relative error
// ê = (1−(1−t/l)^m)^t for m grams hashed into l bits. Results are memoized.
func (c *Codec) OptimalT(m, l int) int {
	key := tKey{m, l}
	c.mu.RLock()
	t, ok := c.tc[key]
	c.mu.RUnlock()
	if ok {
		return t
	}
	best, bestErr := 1, math.Inf(1)
	for cand := 1; cand < l; cand++ {
		e := ExpectedError(m, l, cand)
		if e < bestErr {
			best, bestErr = cand, e
		}
	}
	c.mu.Lock()
	c.tc[key] = best
	c.mu.Unlock()
	return best
}

// ExpectedError evaluates ê = (1−(1−t/l)^m)^t (Eq. 5): the expected relative
// error of est against est' caused by false hits.
func ExpectedError(m, l, t int) float64 {
	p := 1 - math.Pow(1-float64(t)/float64(l), float64(m))
	return math.Pow(p, float64(t))
}

// Encode returns the nG-signature of data string s.
func (c *Codec) Encode(s string) Sig {
	l := c.SigBits(len(s))
	m := len(s) + c.n - 1
	t := c.OptimalT(m, l)
	h := make([]uint64, (l+63)/64)
	for _, g := range gram.Grams(s, c.n) {
		orMask(h, g, l, t)
	}
	return Sig{Len: len(s), H: h}
}

// orMask ORs h[l,t](g) into dst.
func orMask(dst []uint64, g string, l, t int) {
	seed := fnv64(g)
	set := 0
	for i := uint64(0); set < t; i++ {
		pos := int(splitmix64(seed+i) % uint64(l))
		w, b := pos/64, 63-pos%64
		bit := uint64(1) << uint(b)
		if dst[w]&bit == 0 {
			dst[w] |= bit
			set++
		} else if wordsFull(dst, l, t-set) {
			// All l bits already set (possible for tiny l): nothing to add.
			break
		}
	}
}

// hashMask returns h[l,t](g) as a fresh word slice.
func hashMask(g string, l, t int) []uint64 {
	h := make([]uint64, (l+63)/64)
	orMask(h, g, l, t)
	return h
}

// wordsFull reports whether all l bits of dst are set (guard against an
// infinite loop when t approaches l on a saturated signature).
func wordsFull(dst []uint64, l, _ int) bool {
	full := 0
	for _, w := range dst {
		full += popcount(w)
	}
	return full >= l
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// fnv64 is FNV-1a over the gram bytes.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 scrambles x into a well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// maskSubset reports whether every set bit of mask is set in sig
// (h[l,t](ω) AND cH == h[l,t](ω), Def. 3.1).
func maskSubset(mask, sig []uint64) bool {
	for i, m := range mask {
		if sig[i]&m != m {
			return false
		}
	}
	return true
}

// QueryString pre-processes a query string so that estimating against many
// signatures is cheap. Signatures of different data-string lengths use
// different (l,t) hash parameters, so per-(l,t) gram masks are cached
// lazily as the scan encounters them. The cache is copy-on-write so that
// concurrent stripe workers estimate lock-free once it is warm.
type QueryString struct {
	codec *Codec
	str   string
	grams []gramCount

	mu    sync.Mutex                          // serializes cache growth
	masks atomic.Pointer[map[tKey][][]uint64] // (l,t) → mask per gram (parallel to grams)
}

type gramCount struct {
	g     string
	count int
}

// NewQueryString prepares sq for estimation under the codec.
func (c *Codec) NewQueryString(sq string) *QueryString {
	set := gram.NewSet(sq, c.n)
	grams := make([]gramCount, 0, len(set))
	for g, a := range set {
		grams = append(grams, gramCount{g, a})
	}
	q := &QueryString{codec: c, str: sq, grams: grams}
	empty := make(map[tKey][][]uint64)
	q.masks.Store(&empty)
	return q
}

// Str returns the query string.
func (q *QueryString) Str() string { return q.str }

func (q *QueryString) masksFor(l, t int) [][]uint64 {
	key := tKey{l, t}
	if ms, ok := (*q.masks.Load())[key]; ok {
		return ms
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	cur := *q.masks.Load()
	if ms, ok := cur[key]; ok {
		return ms
	}
	ms := make([][]uint64, len(q.grams))
	for i, gc := range q.grams {
		ms[i] = hashMask(gc.g, l, t)
	}
	next := make(map[tKey][][]uint64, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = ms
	q.masks.Store(&next)
	return ms
}

// Hits returns |hg(sq, c(sd))|: the total count of query grams that hit the
// signature (Def. 3.3).
func (q *QueryString) Hits(sig Sig) int {
	l := q.codec.SigBits(sig.Len)
	m := sig.Len + q.codec.n - 1
	t := q.codec.OptimalT(m, l)
	masks := q.masksFor(l, t)
	hits := 0
	for i, gc := range q.grams {
		if maskSubset(masks[i], sig.H) {
			hits += gc.count
		}
	}
	return hits
}

// Est returns est(sq, c(sd)) (Eq. 3): a lower bound of ed(sq, sd).
func (q *QueryString) Est(sig Sig) float64 {
	return gram.EstFromCommon(len(q.str), sig.Len, q.Hits(sig), q.codec.n)
}

// MinEstLenRange returns the smallest value Est can produce against any
// signature whose data-string length lies in [minLen, maxLen]. Hits is at
// most the query's total gram count regardless of the signature bits, and
// EstFromCommon grows with max(|sq|, |sd|), so the best case assumes every
// query gram hits a string of the length closest to |sq| the range allows.
// Stripe zone maps use this as a per-stripe lower bound: it never exceeds
// Est for any signature actually stored in the stripe.
func (q *QueryString) MinEstLenRange(minLen, maxLen int) float64 {
	total := 0
	for _, gc := range q.grams {
		total += gc.count
	}
	ld := len(q.str)
	if ld < minLen {
		ld = minLen
	}
	if ld > maxLen {
		ld = maxLen
	}
	return gram.EstFromCommon(len(q.str), ld, total, q.codec.n)
}
