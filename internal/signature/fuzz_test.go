package signature

import (
	"testing"

	"github.com/sparsewide/iva/internal/gram"
)

// FuzzNoFalseNegatives is the fuzz form of Proposition 3.3: for any pair of
// strings and any legal (n, α), est(sq, c(sd)) must never exceed the true
// edit distance.
func FuzzNoFalseNegatives(f *testing.F) {
	f.Add("canon", "cannon", 2, 20)
	f.Add("ok", "oh", 2, 50)
	f.Add("a", "completely different thing", 3, 10)
	f.Fuzz(func(t *testing.T, sd, sq string, n, alphaPct int) {
		if len(sd) == 0 || len(sq) == 0 || len(sd) > 80 || len(sq) > 80 {
			return
		}
		if n < 0 {
			n = -n
		}
		if alphaPct < 0 {
			alphaPct = -alphaPct
		}
		n = n%5 + 1
		alphaPct = alphaPct%100 + 1
		codec, err := NewCodec(n, float64(alphaPct)/100)
		if err != nil {
			t.Fatal(err)
		}
		sig := codec.Encode(sd)
		est := codec.NewQueryString(sq).Est(sig)
		if ed := float64(gram.EditDistance(sq, sd)); est > ed {
			t.Fatalf("est(%q, c(%q)) = %v > ed %v (n=%d α=%d%%)", sq, sd, est, ed, n, alphaPct)
		}
		// Self-hit: the data string estimates itself at 0.
		if self := codec.NewQueryString(sd).Est(sig); self != 0 {
			t.Fatalf("est(%q, c(%q)) = %v, want 0", sd, sd, self)
		}
	})
}
