package bench

import (
	"strconv"
	"strings"
	"testing"
)

// small test configuration: enough data for the shapes to emerge, small
// enough for CI.
func testCfg() Config {
	return Config{Tuples: 4000, TextAttrs: 120, NumAttrs: 12, Seed: 7}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig8Shape(t *testing.T) {
	r, err := Run("fig8", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	if len(r.Rows) != len(valueSweep) {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		iva, sii := parse(t, row[1]), parse(t, row[2])
		if iva >= sii {
			t.Fatalf("values=%s: iVA accesses %v not below SII %v", row[0], iva, sii)
		}
		// Paper: iVA at 1.5–22% of SII. Allow a wider band at small scale.
		if ratio := iva / sii; ratio > 0.5 {
			t.Errorf("values=%s: access ratio %.2f too high", row[0], ratio)
		}
	}
}

func TestDefaultsExperiment(t *testing.T) {
	r, err := Run("defaults", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	vals := map[string]string{}
	for _, row := range r.Rows {
		vals[row[0]] = row[1]
	}
	if vals["alpha"] != "20.0%" || vals["n"] != "2" {
		t.Fatalf("Table I defaults wrong: %v", vals)
	}
	mean := parse(t, vals["mean attrs/tuple"])
	if mean < 13 || mean > 20 {
		t.Errorf("mean attrs/tuple = %v, want ≈16.3", mean)
	}
	// iVA must beat both baselines at any scale. (SII < DST only emerges
	// above ~10k tuples — DST grows with |T| while SII grows with the
	// queried attributes' df — so that ordering is asserted by the
	// 60k run recorded in EXPERIMENTS.md, not at this test scale.)
	iva := parse(t, vals["iVA query (model ms)"])
	sii := parse(t, vals["SII query (model ms)"])
	dst := parse(t, vals["DST query (model ms)"])
	if iva >= sii || iva >= dst {
		t.Errorf("iVA not fastest: iVA %v, SII %v, DST %v", iva, sii, dst)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Run("fig9", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	for _, row := range r.Rows {
		ivaFilter, siiFilter := parse(t, row[1]), parse(t, row[2])
		ivaRefine, siiRefine := parse(t, row[3]), parse(t, row[4])
		// The paper's trade-off: iVA pays more filtering (it scans content,
		// not just tids) and gains much lower refining.
		if ivaFilter <= siiFilter {
			t.Errorf("values=%s: iVA filter %v not above SII %v", row[0], ivaFilter, siiFilter)
		}
		if ivaRefine >= siiRefine {
			t.Errorf("values=%s: iVA refine %v not below SII %v", row[0], ivaRefine, siiRefine)
		}
	}
}

func TestSizesShape(t *testing.T) {
	r, err := Run("sizes", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	table := parse(t, r.Rows[0][1])
	sii := parse(t, r.Rows[1][1])
	if sii <= 0 || sii >= table {
		t.Errorf("SII size %v not in (0, table %v)", sii, table)
	}
	// iVA size must grow with alpha (non-decreasing per step — the printed
	// megabytes are rounded — and strictly from the smallest alpha to the
	// largest).
	prev := 0.0
	for _, row := range r.Rows[2:] {
		mb := parse(t, row[1])
		if mb < prev {
			t.Errorf("iVA size shrank with alpha: %v after %v", mb, prev)
		}
		prev = mb
	}
	if first, last := parse(t, r.Rows[2][1]), prev; last <= first {
		t.Errorf("iVA size flat across the whole alpha sweep: %v .. %v", first, last)
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Run("fig10", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	for _, row := range r.Rows {
		iva, sii := parse(t, row[1]), parse(t, row[2])
		if iva >= sii {
			t.Errorf("values=%s: iVA %v not faster than SII %v (model ms)", row[0], iva, sii)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Run("fig12", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	for _, row := range r.Rows {
		if parse(t, row[1]) >= parse(t, row[2]) {
			t.Errorf("k=%s: iVA not below SII", row[0])
		}
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Run("fig13", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	if len(r.Rows) != 6 {
		t.Fatalf("%d settings", len(r.Rows))
	}
	for _, row := range r.Rows {
		if parse(t, row[1]) >= parse(t, row[2]) {
			t.Errorf("%s: iVA not faster than SII", row[0])
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Run("fig15", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	// The paper's trade-off in machine-independent terms: longer vectors
	// mean more index pages scanned (filter work grows) and fewer table
	// accesses (refine work shrinks). The count columns are deterministic,
	// unlike the modeled ms which include measured CPU time.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if parse(t, last[3]) <= parse(t, first[3]) {
		t.Errorf("filter pages did not grow with alpha: %s -> %s", first[3], last[3])
	}
	if parse(t, last[4]) >= parse(t, first[4]) {
		t.Errorf("table accesses did not shrink with alpha: %s -> %s", first[4], last[4])
	}
}

func TestFig17Shape(t *testing.T) {
	cfg := testCfg()
	cfg.Tuples = 2000
	r, err := Run("fig17", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	// Update time decreases as beta grows, for every engine.
	betaRows := r.Rows[:5]
	for col := 1; col <= 3; col++ {
		if parse(t, betaRows[0][col]) <= parse(t, betaRows[4][col]) {
			t.Errorf("col %d: update time did not fall from beta=1%% to 5%%", col)
		}
	}
}

func TestAblateDomainsShape(t *testing.T) {
	r, err := Run("ablate-domains", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	rel, abs := parse(t, r.Rows[0][1]), parse(t, r.Rows[1][1])
	if rel >= abs {
		t.Errorf("relative domain accesses %v not below absolute %v", rel, abs)
	}
}

func TestAblatePlanShape(t *testing.T) {
	r, err := Run("ablate-plan", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	// Mixed queries: the sequential plan keeps most of the table as
	// candidates; the parallel plan fetches far fewer.
	mixedSeq, mixedPar := parse(t, r.Rows[0][2]), parse(t, r.Rows[0][3])
	scanned := parse(t, r.Rows[0][1])
	if mixedSeq < 0.5*scanned {
		t.Errorf("sequential candidates %v < half of scanned %v on text queries", mixedSeq, scanned)
	}
	if mixedPar >= mixedSeq {
		t.Errorf("parallel fetches %v not below sequential candidates %v", mixedPar, mixedSeq)
	}
	// Numeric-only queries: the sequential plan prunes meaningfully.
	numSeq := parse(t, r.Rows[1][2])
	if numSeq >= parse(t, r.Rows[1][1]) {
		t.Errorf("numeric-only sequential plan did not prune at all")
	}
}

func TestAblateSignatureShape(t *testing.T) {
	r, err := Run("ablate-signature", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	if len(r.Rows) < 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Measured error falls with alpha.
	if parse(t, r.Rows[0][2]) < parse(t, r.Rows[len(r.Rows)-1][2]) {
		t.Errorf("measured error grew with alpha")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", testCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	r := Result{
		Name:   "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	if !strings.Contains(r.Render(), "== x ==") {
		t.Error("Render missing header")
	}
	md := r.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "> n") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
}
