package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// The stripe zone-map selectivity benchmark (`ivabench -zonemap`). Zone-map
// pruning pays off exactly when the data's stripe layout is selective: a
// stripe whose per-attribute value range is narrow gets a tight best-case
// bound, and a low k keeps the admission bar tight. The sweep therefore
// crosses two layouts — "skewed" (values correlate with insertion order, the
// timestamp/auto-increment shape common in feeds) and "uniform" (values
// shuffled, every stripe spans the whole domain) — with a low and a high k,
// running every query twice, zones on and off, over the same index. Results
// must match exactly; the artifact (BENCH_zonemap.json) records the pruning
// rate and the filter-phase physical-read and wall-time deltas.

// ZoneMapBenchPoint is one (layout, k) measurement over Queries queries.
type ZoneMapBenchPoint struct {
	Layout  string `json:"layout"` // "skewed" or "uniform"
	K       int    `json:"k"`
	Queries int    `json:"queries"`
	Stripes int    `json:"stripes"` // sealed stripes in the index

	ZoneChecked int64   `json:"zone_checked"` // stripe bounds consulted (on-pass)
	ZonePruned  int64   `json:"zone_pruned"`  // stripes skipped whole
	PruneRatio  float64 `json:"prune_ratio"`  // pruned/checked

	ScannedOn  int64 `json:"scanned_on"` // tuples filtered with zones on
	ScannedOff int64 `json:"scanned_off"`

	FilterReadsOn  int64 `json:"filter_reads_on"` // physical page reads, filter phase
	FilterReadsOff int64 `json:"filter_reads_off"`

	WallOnMS  float64 `json:"wall_on_ms"`
	WallOffMS float64 `json:"wall_off_ms"`

	// ReadsSaved is 1 - on/off for the filter phase (0 when off is 0);
	// Speedup is off/on wall time.
	ReadsSaved float64 `json:"reads_saved"`
	Speedup    float64 `json:"speedup"`

	ResultsMatch bool `json:"results_match"`
}

// ZoneMapBenchResult is the full artifact written to BENCH_zonemap.json.
type ZoneMapBenchResult struct {
	Tuples          int   `json:"tuples"`
	CheckpointEvery int   `json:"checkpoint_every"`
	Parallelism     int   `json:"parallelism"`
	CacheBytes      int64 `json:"cache_bytes"`
	Seed            int64 `json:"seed"`

	Points []ZoneMapBenchPoint `json:"points"`
}

// zoneMapEnv is one built layout: a table with a numeric "ts" attribute and a
// sparsely-defined text "tag", indexed with small stripes so a bench-scale
// run still has a meaningful stripe count.
func zoneMapEnv(layout string, tuples, par int, cacheBytes int64, seed int64) (*core.Index, *metric.Metric, model.AttrID, error) {
	pool := storage.NewPool(4096, cacheBytes)
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(pool, storage.NewMemDevice()), cat)
	if err != nil {
		return nil, nil, 0, err
	}
	tsID, err := cat.AddAttr("ts", model.KindNumeric)
	if err != nil {
		return nil, nil, 0, err
	}
	tagID, err := cat.AddAttr("tag", model.KindText)
	if err != nil {
		return nil, nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, tuples)
	for i := range vals {
		vals[i] = float64(i) // skewed: value tracks insertion order
	}
	if layout == "uniform" {
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	}
	tags := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < tuples; i++ {
		row := map[model.AttrID]model.Value{tsID: model.Num(vals[i])}
		if i%3 == 0 { // sparse: ~1/3 defined, the rest exercise the ndf path
			row[tagID] = model.Text(tags[i%len(tags)])
		}
		if _, _, err := tbl.Append(row); err != nil {
			return nil, nil, 0, err
		}
	}
	ix, err := core.Build(tbl, storage.NewFile(pool, storage.NewMemDevice()), core.Options{
		SearchParallelism: par,
		CheckpointEvery:   256,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	comb, err := metric.ByName("L2")
	if err != nil {
		return nil, nil, 0, err
	}
	m := &metric.Metric{Combiner: comb, Weighter: metric.Equal{}, NDFPenalty: metric.DefaultNDFPenalty}
	return ix, m, tsID, nil
}

// zoneMapPoint measures one (layout, k) cell: the same query set with zones
// on and off, verifying byte-identical results.
func zoneMapPoint(layout string, tuples, k, queries, par int, cacheBytes int64, seed int64) (ZoneMapBenchPoint, error) {
	ix, m, tsID, err := zoneMapEnv(layout, tuples, par, cacheBytes, seed)
	if err != nil {
		return ZoneMapBenchPoint{}, err
	}
	_, stripes := ix.ZoneMapCoverage()
	pt := ZoneMapBenchPoint{Layout: layout, K: k, Queries: queries, Stripes: stripes, ResultsMatch: true}

	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	targets := make([]float64, queries)
	for i := range targets {
		targets[i] = rng.Float64() * float64(tuples)
	}
	run := func(zones bool) (results [][]model.Result, scanned, filterReads int64, wall time.Duration, checked, pruned int64, err error) {
		ix.SetZoneMaps(zones)
		for _, target := range targets {
			q := &model.Query{K: k, Terms: []model.QueryTerm{{Attr: tsID, Kind: model.KindNumeric, Num: target}}}
			res, st, serr := ix.Search(q, m)
			if serr != nil {
				return nil, 0, 0, 0, 0, 0, serr
			}
			results = append(results, res)
			scanned += st.Scanned
			filterReads += st.FilterIO.PhysReads
			wall += st.Total()
			checked += int64(st.StripesZoneChecked)
			pruned += int64(st.StripesZonePruned)
		}
		return results, scanned, filterReads, wall, checked, pruned, nil
	}

	// Off first, then on: the on-pass runs against a warmer cache, so the
	// measured read delta understates (never overstates) the saving.
	resOff, scannedOff, readsOff, wallOff, _, _, err := run(false)
	if err != nil {
		return pt, err
	}
	resOn, scannedOn, readsOn, wallOn, checked, pruned, err := run(true)
	if err != nil {
		return pt, err
	}
	for i := range resOn {
		if len(resOn[i]) != len(resOff[i]) {
			pt.ResultsMatch = false
			break
		}
		for j := range resOn[i] {
			if resOn[i][j] != resOff[i][j] {
				pt.ResultsMatch = false
			}
		}
	}
	pt.ZoneChecked, pt.ZonePruned = checked, pruned
	if checked > 0 {
		pt.PruneRatio = float64(pruned) / float64(checked)
	}
	pt.ScannedOn, pt.ScannedOff = scannedOn, scannedOff
	pt.FilterReadsOn, pt.FilterReadsOff = readsOn, readsOff
	pt.WallOnMS = float64(wallOn.Nanoseconds()) / 1e6
	pt.WallOffMS = float64(wallOff.Nanoseconds()) / 1e6
	if readsOff > 0 {
		pt.ReadsSaved = 1 - float64(readsOn)/float64(readsOff)
	}
	if wallOn > 0 {
		pt.Speedup = float64(wallOff) / float64(wallOn)
	}
	return pt, nil
}

// RunZoneMapBench sweeps {skewed, uniform} × {low k, high k}. The cache is
// kept deliberately small relative to the index so the filter phase actually
// touches the device and the read delta is visible.
func RunZoneMapBench(tuples, par int, seed int64) (*ZoneMapBenchResult, error) {
	if tuples <= 0 {
		tuples = 40000
	}
	if par <= 0 {
		par = 1
	}
	const cacheBytes = 256 << 10
	const queries = 40
	res := &ZoneMapBenchResult{
		Tuples:          tuples,
		CheckpointEvery: 256,
		Parallelism:     par,
		CacheBytes:      cacheBytes,
		Seed:            seed,
	}
	for _, layout := range []string{"skewed", "uniform"} {
		for _, k := range []int{1, 100} {
			pt, err := zoneMapPoint(layout, tuples, k, queries, par, cacheBytes, seed)
			if err != nil {
				return nil, fmt.Errorf("bench: zonemap %s k=%d: %w", layout, k, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// JSON renders the artifact for BENCH_zonemap.json.
func (r *ZoneMapBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
