package bench

import (
	"math"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	samples := []sample{
		{accesses: 10, scanned: 100, filterPages: 4, filterMS: 1, refineMS: 3, filterWall: 0.1, refineWall: 0.3},
		{accesses: 20, scanned: 100, filterPages: 6, filterMS: 3, refineMS: 5, filterWall: 0.3, refineWall: 0.5},
	}
	s := aggregate(samples)
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
	if s.MeanTableAccesses != 15 || s.MeanScanned != 100 || s.MeanFilterPages != 5 {
		t.Fatalf("means: %+v", s)
	}
	if s.FilterModelMS != 2 || s.RefineModelMS != 4 || s.TotalModelMS != 6 {
		t.Fatalf("model ms: %+v", s)
	}
	// Totals are 4 and 8 → stddev = 2 (population, n=2).
	if math.Abs(s.StdDevModelMS-2) > 1e-9 {
		t.Fatalf("StdDevModelMS = %v", s.StdDevModelMS)
	}
	if got := aggregate(nil); got.Queries != 0 {
		t.Fatalf("empty aggregate: %+v", got)
	}
}

func TestStddev(t *testing.T) {
	if got := stddev([]float64{5}); got != 0 {
		t.Fatalf("single sample stddev = %v", got)
	}
	if got := stddev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("constant stddev = %v", got)
	}
	if got := stddev([]float64{1, 3}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("stddev = %v, want 1", got)
	}
}

func TestUpdateMSFormula(t *testing.T) {
	u := updateCosts{
		tdModelMS: 4, tiModelMS: 6, trModelMS: 10000,
		tdWallMS: 1, tiWallMS: 2, trWallMS: 1000,
		tuples: 1000,
	}
	// model: 4 + 6 + 10000/(0.01*1000) = 10 + 1000 = 1010.
	if got := u.updateMS(0.01, true); math.Abs(got-1010) > 1e-9 {
		t.Fatalf("model updateMS = %v", got)
	}
	// wall: 1 + 2 + 1000/(0.05*1000) = 3 + 20 = 23.
	if got := u.updateMS(0.05, false); math.Abs(got-23) > 1e-9 {
		t.Fatalf("wall updateMS = %v", got)
	}
	// Strictly decreasing in beta.
	if u.updateMS(0.01, true) <= u.updateMS(0.05, true) {
		t.Fatal("updateMS not decreasing in beta")
	}
}

func TestRenderAlignment(t *testing.T) {
	r := Result{
		Name:   "t",
		Title:  "title",
		Header: []string{"col", "x"},
		Rows:   [][]string{{"longvalue", "1"}, {"s", "22"}},
	}
	out := r.Render()
	lines := strings.Split(out, "\n")
	// Find the header line and check that columns align.
	var header, row1 string
	for i, l := range lines {
		if strings.HasPrefix(l, "col") {
			header = l
			row1 = lines[i+2]
			break
		}
	}
	if header == "" {
		t.Fatalf("header not found in:\n%s", out)
	}
	if strings.Index(header, "x") != strings.Index(row1, "1") {
		t.Fatalf("columns misaligned:\n%q\n%q", header, row1)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Tuples != 60000 || c.Alpha != 0.20 || c.N != 2 || c.CacheBytes != 10<<20 {
		t.Fatalf("defaults: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Tuples: 5, Alpha: 0.5}.withDefaults()
	if c2.Tuples != 5 || c2.Alpha != 0.5 {
		t.Fatalf("overrides lost: %+v", c2)
	}
}
