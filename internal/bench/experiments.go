package bench

import (
	"fmt"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/model"
)

// Result is one experiment's printable output: a header row, data rows and
// free-form notes (the comparison claims the paper makes about the figure).
type Result struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// queryCount and warmCount mirror §V-A: 50 queries, 10 for warming.
const (
	queryCount = 50
	warmCount  = 10
)

// valueSweep is Fig. 8–11's x-axis: defined values per query.
var valueSweep = []int{1, 3, 5, 7, 9}

// ExpDefaults reports the Table I settings, the dataset statistics against
// the paper's, and file sizes (§V-A prose: table 355.7 MB, SII 101.5 MB,
// iVA 82.7–116.7 MB at full scale).
func ExpDefaults(e *Env) (Result, error) {
	r := Result{
		Name:   "defaults",
		Title:  "Table I & §V-A setup: defaults, dataset statistics, file sizes",
		Header: []string{"parameter", "value", "paper"},
	}
	cfg := e.Cfg
	// Dataset statistics.
	tuples := e.Tbl.Live()
	attrs := e.Tbl.Catalog().NumAttrs()
	var defined, strs, strBytes int64
	for _, info := range e.Tbl.Catalog().Attrs() {
		defined += info.DF
		strs += info.Str
	}
	for i := 0; i < min(cfg.Tuples, 2000); i++ {
		for _, v := range e.Gen.Values(i) {
			for _, s := range v.Strs {
				strBytes += int64(len(s))
				_ = s
			}
		}
	}
	var sampleStrs int64
	for i := 0; i < min(cfg.Tuples, 2000); i++ {
		for _, v := range e.Gen.Values(i) {
			sampleStrs += int64(len(v.Strs))
		}
	}
	meanLen := 0.0
	if sampleStrs > 0 {
		meanLen = float64(strBytes) / float64(sampleStrs)
	}
	r.Rows = append(r.Rows,
		[]string{"defined values per query", "3", "3"},
		[]string{"k", "10", "10"},
		[]string{"distance metric", "Euclidean (L2)", "Euclidean"},
		[]string{"attribute weight", "EQU", "Equal"},
		[]string{"alpha", pct(cfg.Alpha), "20%"},
		[]string{"n", fmt.Sprint(cfg.N), "2"},
		[]string{"file cache", fmt.Sprintf("%d MiB", cfg.CacheBytes>>20), "10 MB"},
		[]string{"tuples", fmt.Sprint(tuples), "779,019"},
		[]string{"attributes", fmt.Sprint(attrs), "1,147 (1,081 text)"},
		[]string{"mean attrs/tuple", f1(float64(defined) / float64(tuples)), "16.3"},
		[]string{"mean string bytes", f1(meanLen), "16.8"},
		[]string{"table file MB", f1(float64(e.Tbl.Bytes()) / 1e6), "355.7 (at 779k)"},
		[]string{"SII file MB", f1(float64(e.SII.SizeBytes()) / 1e6), "101.5 (at 779k)"},
		[]string{"iVA file MB", f1(float64(e.IVA.SizeBytes()) / 1e6), "82.7–116.7 (at 779k)"},
	)

	// One default query run, all three engines.
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	qs, warm := e.Queries(3, 10, queryCount, 1)
	iva, err := e.RunIVA(qs, warm, m)
	if err != nil {
		return r, err
	}
	sii, err := e.RunSII(qs, warm, m)
	if err != nil {
		return r, err
	}
	dstQs := qs[:warm+5] // DST is slow and constant; 5 measured queries suffice
	dst, err := e.RunDST(dstQs, warm, m)
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows,
		[]string{"iVA query (model ms)", f1(iva.TotalModelMS), "~2,000"},
		[]string{"SII query (model ms)", f1(sii.TotalModelMS), "~4,000"},
		[]string{"DST query (model ms)", f1(dst.TotalModelMS), "~30,000"},
	)
	r.Notes = append(r.Notes,
		"Paper-scale absolute values shrink with the scaled-down tuple count; the ordering iVA < SII << DST is the reproduced claim.")
	return r, nil
}

// ExpFig8 reproduces Fig. 8: table-file accesses per query vs. the number
// of defined values per query, iVA vs. SII.
func ExpFig8(e *Env) (Result, error) {
	r := Result{
		Name:   "fig8",
		Title:  "Fig. 8: table file accesses per query vs. defined values per query",
		Header: []string{"values/query", "iVA accesses", "SII accesses", "iVA/SII"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	for _, nv := range valueSweep {
		qs, warm := e.Queries(nv, 10, queryCount, nv)
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		sii, err := e.RunSII(qs, warm, m)
		if err != nil {
			return r, err
		}
		ratio := 0.0
		if sii.MeanTableAccesses > 0 {
			ratio = iva.MeanTableAccesses / sii.MeanTableAccesses
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(nv), f1(iva.MeanTableAccesses), f1(sii.MeanTableAccesses), pct(ratio),
		})
	}
	r.Notes = append(r.Notes,
		"Paper: iVA accesses are ~1.5–22% of SII's and do not grow steadily with query width.")
	return r, nil
}

// ExpFig9 reproduces Fig. 9: filtering and refining time per query.
func ExpFig9(e *Env) (Result, error) {
	r := Result{
		Name:  "fig9",
		Title: "Fig. 9: filtering and refining time per query (model ms)",
		Header: []string{"values/query", "iVA filter", "SII filter",
			"iVA refine", "SII refine"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	for _, nv := range valueSweep {
		qs, warm := e.Queries(nv, 10, queryCount, nv)
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		sii, err := e.RunSII(qs, warm, m)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(nv),
			f1(iva.FilterModelMS), f1(sii.FilterModelMS),
			f1(iva.RefineModelMS), f1(sii.RefineModelMS),
		})
	}
	r.Notes = append(r.Notes,
		"Paper: iVA sacrifices filtering time (it scans vectors, not just tids) and gains much lower refining time.")
	return r, nil
}

// ExpFig10 reproduces Fig. 10: overall query time per query.
func ExpFig10(e *Env) (Result, error) {
	r := Result{
		Name:   "fig10",
		Title:  "Fig. 10: overall query time per query (model ms)",
		Header: []string{"values/query", "iVA", "SII", "SII/iVA speedup"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	for _, nv := range valueSweep {
		qs, warm := e.Queries(nv, 10, queryCount, nv)
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		sii, err := e.RunSII(qs, warm, m)
		if err != nil {
			return r, err
		}
		sp := 0.0
		if iva.TotalModelMS > 0 {
			sp = sii.TotalModelMS / iva.TotalModelMS
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(nv), f1(iva.TotalModelMS), f1(sii.TotalModelMS), f2(sp) + "x",
		})
	}
	r.Notes = append(r.Notes, "Paper: iVA is usually about twice as fast as SII.")
	return r, nil
}

// ExpFig11 reproduces Fig. 11: standard deviation of single-query time.
func ExpFig11(e *Env) (Result, error) {
	r := Result{
		Name:   "fig11",
		Title:  "Fig. 11: standard deviation of query time (model ms)",
		Header: []string{"values/query", "iVA stddev", "SII stddev"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	for _, nv := range valueSweep {
		qs, warm := e.Queries(nv, 10, queryCount, nv)
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		sii, err := e.RunSII(qs, warm, m)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(nv), f1(iva.StdDevModelMS), f1(sii.StdDevModelMS),
		})
	}
	r.Notes = append(r.Notes,
		"Paper: the iVA-file significantly improves the stability of single-query time.")
	return r, nil
}

// ExpFig12 reproduces Fig. 12: query time vs. k.
func ExpFig12(e *Env) (Result, error) {
	r := Result{
		Name:   "fig12",
		Title:  "Fig. 12: query time vs. k (model ms)",
		Header: []string{"k", "iVA", "SII"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	// One workload; only k varies (the paper compares the same queries
	// under different k).
	base, warm := e.Queries(3, 10, queryCount, 12)
	for _, k := range []int{5, 10, 15, 20, 25} {
		qs := make([]*model.Query, len(base))
		for i, q := range base {
			cp := *q
			cp.K = k
			qs[i] = &cp
		}
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		sii, err := e.RunSII(qs, warm, m)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(k), f1(iva.TotalModelMS), f1(sii.TotalModelMS)})
	}
	r.Notes = append(r.Notes,
		"Paper: iVA beats SII for all k, with a flatter slope as k grows.")
	return r, nil
}

// ExpFig13 reproduces Fig. 13: the six metric/weight settings S1..S6.
func ExpFig13(e *Env) (Result, error) {
	r := Result{
		Name:   "fig13",
		Title:  "Fig. 13: distance metrics and attribute weights S1–S6 (model ms)",
		Header: []string{"setting", "iVA", "SII"},
	}
	settings := []struct {
		label, weights, comb string
	}{
		{"S1 EQU+L1", "EQU", "L1"},
		{"S2 EQU+L2", "EQU", "L2"},
		{"S3 EQU+Linf", "EQU", "Linf"},
		{"S4 ITF+L1", "ITF", "L1"},
		{"S5 ITF+L2", "ITF", "L2"},
		{"S6 ITF+Linf", "ITF", "Linf"},
	}
	qs, warm := e.Queries(3, 10, queryCount, 13)
	for _, s := range settings {
		m, err := e.Metric(s.weights, s.comb)
		if err != nil {
			return r, err
		}
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		sii, err := e.RunSII(qs, warm, m)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{s.label, f1(iva.TotalModelMS), f1(sii.TotalModelMS)})
	}
	r.Notes = append(r.Notes,
		"Paper: the iVA-file outperforms SII significantly under all six settings.")
	return r, nil
}

// alphaSweep is Fig. 14/15's x-axis.
var alphaSweep = []float64{0.10, 0.15, 0.20, 0.25, 0.30}

// ExpFig14 reproduces Fig. 14: iVA query time vs. relative vector length α.
func ExpFig14(e *Env) (Result, error) {
	r := Result{
		Name:   "fig14",
		Title:  "Fig. 14: effect of relative vector length alpha on iVA query time (model ms)",
		Header: []string{"alpha", "iVA total", "index MB"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	qs, warm := e.Queries(3, 10, queryCount, 14)
	for _, a := range alphaSweep {
		if err := e.RebuildIVA(core.Options{Alpha: a, N: e.Cfg.N}); err != nil {
			return r, err
		}
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{
			pct(a), f1(iva.TotalModelMS), f1(float64(e.IVA.SizeBytes()) / 1e6),
		})
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	r.Notes = append(r.Notes,
		"Paper: query time is U-shaped in alpha with the best value around 20%.")
	return r, nil
}

// ExpFig15 reproduces Fig. 15: filter/refine split vs. α.
func ExpFig15(e *Env) (Result, error) {
	r := Result{
		Name:  "fig15",
		Title: "Fig. 15: iVA filtering and refining time vs. alpha (model ms)",
		Header: []string{"alpha", "filter", "refine",
			"filter pages", "table accesses"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	qs, warm := e.Queries(3, 10, queryCount, 15)
	for _, a := range alphaSweep {
		if err := e.RebuildIVA(core.Options{Alpha: a, N: e.Cfg.N}); err != nil {
			return r, err
		}
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{
			pct(a), f1(iva.FilterModelMS), f1(iva.RefineModelMS),
			f1(iva.MeanFilterPages), f1(iva.MeanTableAccesses),
		})
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	r.Notes = append(r.Notes,
		"Paper: filtering time keeps growing with longer vectors while refining time drops steadily.")
	return r, nil
}

// ExpFig16 reproduces Fig. 16: iVA query time vs. gram length n.
func ExpFig16(e *Env) (Result, error) {
	r := Result{
		Name:   "fig16",
		Title:  "Fig. 16: effect of n-gram length on iVA query time (model ms)",
		Header: []string{"n", "iVA total"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	qs, warm := e.Queries(3, 10, queryCount, 16)
	for _, n := range []int{2, 3, 4, 5} {
		if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: n}); err != nil {
			return r, err
		}
		iva, err := e.RunIVA(qs, warm, m)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprint(n), f1(iva.TotalModelMS)})
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	r.Notes = append(r.Notes,
		"Paper: average query time keeps growing with n; n = 2 is the good choice for short text.")
	return r, nil
}
