package bench

import (
	"os"
	"testing"
	"time"
)

// TestServeBenchSmoke runs the HTTP traffic harness at toy scale so the
// tier-1 suite exercises the full path (seeded store, TCP listener, zipf
// clients, open-loop shedding) on every run.
func TestServeBenchSmoke(t *testing.T) {
	r, err := RunServeBench(1500, 7, 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("%d points, want 4 (3 closed + 1 open)", len(r.Points))
	}
	for i, pt := range r.Points[:3] {
		if pt.Mode != "closed" {
			t.Errorf("point %d mode %q, want closed", i, pt.Mode)
		}
		if pt.OK == 0 || pt.Errors > 0 {
			t.Errorf("closed point %d: ok=%d shed=%d errors=%d", i, pt.OK, pt.Shed, pt.Errors)
		}
		if pt.P99MS <= 0 || pt.P50MS > pt.P99MS {
			t.Errorf("closed point %d: p50=%.3fms p99=%.3fms", i, pt.P50MS, pt.P99MS)
		}
	}
	open := r.Points[3]
	if open.Mode != "open" || open.QuotaQPS <= 0 {
		t.Fatalf("open point = %+v", open)
	}
	if open.Errors > 0 {
		t.Errorf("open loop errors: %+v", open)
	}
	// The quota is half the offered rate, so the bucket must have shed.
	if open.Shed == 0 {
		t.Errorf("open loop at 2x quota shed nothing: %+v", open)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestServeSoak is the nightly closed-loop soak: the harness hammers the
// real HTTP stack under -race for the configured duration. Gated by
// IVA_SERVE_SOAK (a duration, e.g. "60s").
func TestServeSoak(t *testing.T) {
	env := os.Getenv("IVA_SERVE_SOAK")
	if env == "" {
		t.Skip("set IVA_SERVE_SOAK=<duration> to run the serve soak")
	}
	dur, err := time.ParseDuration(env)
	if err != nil {
		t.Fatalf("IVA_SERVE_SOAK=%q: %v", env, err)
	}
	// Four points share the budget; the open-loop point gets the same slice.
	r, err := RunServeBench(20000, 42, dur/4)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		if pt.Errors > 0 {
			t.Errorf("%s/%d clients: %d errors (%d requests)", pt.Mode, pt.Clients, pt.Errors, pt.Requests)
		}
		t.Logf("%s clients=%d offered=%.0f: %d req, %.0f qps, shed %.1f%%, p50 %.2fms p99 %.2fms",
			pt.Mode, pt.Clients, pt.OfferedQPS, pt.Requests, pt.ThroughputQPS, 100*pt.ShedRate, pt.P50MS, pt.P99MS)
	}
}
