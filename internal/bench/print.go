package bench

import (
	"fmt"
	"strings"
)

// Render formats a Result as an aligned text table.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n%s\n\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Markdown formats a Result as a GitHub-flavored markdown table (used to
// regenerate EXPERIMENTS.md).
func (r Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.Name, r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Experiments lists every runnable experiment in presentation order.
var Experiments = []string{
	"defaults", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
	"fig14", "fig15", "fig16", "fig17", "sizes",
	"ablate-listtypes", "ablate-domains", "ablate-plan", "ablate-signature",
}

// Run executes one named experiment under cfg. Query experiments share a
// cached environment; the update experiment (fig17) builds private ones.
func Run(name string, cfg Config) (Result, error) {
	if name == "fig17" {
		return ExpFig17(cfg)
	}
	e, err := SharedEnv(cfg)
	if err != nil {
		return Result{}, err
	}
	switch name {
	case "defaults":
		return ExpDefaults(e)
	case "fig8":
		return ExpFig8(e)
	case "fig9":
		return ExpFig9(e)
	case "fig10":
		return ExpFig10(e)
	case "fig11":
		return ExpFig11(e)
	case "fig12":
		return ExpFig12(e)
	case "fig13":
		return ExpFig13(e)
	case "fig14":
		return ExpFig14(e)
	case "fig15":
		return ExpFig15(e)
	case "fig16":
		return ExpFig16(e)
	case "sizes":
		return ExpSizes(e)
	case "ablate-listtypes":
		return ExpAblateListTypes(e)
	case "ablate-domains":
		return ExpAblateDomains(e)
	case "ablate-plan":
		return ExpAblatePlan(e)
	case "ablate-signature":
		return ExpAblateSignature(e)
	default:
		return Result{}, fmt.Errorf("bench: unknown experiment %q (known: %s)",
			name, strings.Join(Experiments, ", "))
	}
}
