package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// The block-codec benchmark (`ivabench -codec`). The packed codec's delta
// transform rewrites tid-bearing vector lists as per-stripe blocks whose
// tuple ids are gap-coded, so sparse Type I/II lists shrink well below their
// raw bit-packed size; the filter phase then touches fewer pages for the
// same logical scan. The sweep builds the same table twice — codec 0 (raw,
// v5-compatible) and codec 1 (packed) — over skewed and uniform value
// layouts, runs an identical query set on both, and demands byte-identical
// answers in every cell. The artifact (BENCH_codec.json) records on-disk
// index size, filter-phase physical reads, and full-walk decode throughput
// for both codecs.

// CodecBenchPoint is one (layout, k) measurement over Queries queries.
type CodecBenchPoint struct {
	Layout  string `json:"layout"` // "skewed" or "uniform"
	K       int    `json:"k"`
	Queries int    `json:"queries"`

	// PackedLists is the number of vector lists the codec-1 build stored as
	// blocks (the rest stayed raw by layout type).
	PackedLists  int `json:"packed_lists"`
	PackedBlocks int `json:"packed_blocks"`

	DiskBytesRaw    int64   `json:"disk_bytes_raw"` // committed index file size
	DiskBytesPacked int64   `json:"disk_bytes_packed"`
	DiskSaved       float64 `json:"disk_saved"` // 1 - packed/raw

	FilterReadBytesRaw    int64   `json:"filter_read_bytes_raw"` // filter-phase physical reads
	FilterReadBytesPacked int64   `json:"filter_read_bytes_packed"`
	FilterReadSaved       float64 `json:"filter_read_saved"` // 1 - packed/raw

	// Decode throughput: logical vector-list megabytes decoded per second by
	// a full end-to-end walk of every list (the integrity check's cursor
	// pass). Both codecs decode the same logical stream, so the ratio
	// isolates the codec's read-path cost.
	DecodeRawMBps    float64 `json:"decode_raw_mbps"`
	DecodePackedMBps float64 `json:"decode_packed_mbps"`
	DecodeSpeedup    float64 `json:"decode_speedup"` // packed/raw

	WallRawMS    float64 `json:"wall_raw_ms"` // query wall time, whole set
	WallPackedMS float64 `json:"wall_packed_ms"`

	ResultsMatch bool `json:"results_match"`
}

// CodecBenchResult is the full artifact written to BENCH_codec.json.
type CodecBenchResult struct {
	Tuples          int   `json:"tuples"`
	CheckpointEvery int   `json:"checkpoint_every"`
	Parallelism     int   `json:"parallelism"`
	CacheBytes      int64 `json:"cache_bytes"`
	Seed            int64 `json:"seed"`

	Points []CodecBenchPoint `json:"points"`
}

// codecBenchAttrs is the width of the sparse slice a query touches. The
// workload is the paper's: a wide table whose rows each define a few of many
// attributes, and a similarity query spanning all of them. Each attribute
// lands on 2/5 of the rows — dense enough that the §III-D cost model still
// picks the tid-bearing Type I organization, sparse enough that the tid
// stream is a large share of every list — so the filter phase's bytes are
// dominated by exactly the lists the packed codec rewrites.
const codecBenchAttrs = 8

// codecBenchStripe is the build's CheckpointEvery. Packed blocks seal one
// per stripe, so wide stripes amortize the 4-word block header to a few
// percent of the payload.
const codecBenchStripe = 1024

// codecEnv builds one (layout, codec) index: codecBenchAttrs sparse numeric
// attributes with staggered coverage (attribute j is defined on rows where
// (i+j)%5 < 2, so every row holds at least two values) plus a sparse text
// "tag" on every 8th row. The index file lives on its own MemDevice so the
// committed size can be read back.
func codecEnv(layout string, codec, tuples, par int, cacheBytes int64, seed int64) (*core.Index, *storage.MemDevice, *metric.Metric, []model.AttrID, error) {
	pool := storage.NewPool(4096, cacheBytes)
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(pool, storage.NewMemDevice()), cat)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	attrs := make([]model.AttrID, codecBenchAttrs)
	for j := range attrs {
		id, err := cat.AddAttr(fmt.Sprintf("f%d", j), model.KindNumeric)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		attrs[j] = id
	}
	tagID, err := cat.AddAttr("tag", model.KindText)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, tuples)
	for i := range vals {
		// Skewed: value tracks insertion order. The jitter keeps values off
		// exact quantizer slice edges (a boundary value's float error would
		// trip the integrity check's slice containment) without breaking
		// monotonicity.
		vals[i] = float64(i) + rng.Float64()
	}
	if layout == "uniform" {
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	}
	tags := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < tuples; i++ {
		row := map[model.AttrID]model.Value{}
		for j, id := range attrs {
			if (i+j)%5 < 2 {
				row[id] = model.Num(vals[i])
			}
		}
		if i%8 == 0 {
			row[tagID] = model.Text(tags[i%len(tags)])
		}
		if _, _, err := tbl.Append(row); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	idxDev := storage.NewMemDevice()
	ix, err := core.Build(tbl, storage.NewFile(pool, idxDev), core.Options{
		SearchParallelism: par,
		CheckpointEvery:   codecBenchStripe,
		Codec:             codec,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if err := ix.Sync(); err != nil {
		return nil, nil, nil, nil, err
	}
	comb, err := metric.ByName("L2")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	m := &metric.Metric{Combiner: comb, Weighter: metric.Equal{}, NDFPenalty: metric.DefaultNDFPenalty}
	return ix, idxDev, m, attrs, nil
}

// codecRun drives one codec's half of a cell: the query set, then a timed
// full-list walk for decode throughput.
type codecRun struct {
	results     [][]model.Result
	filterReads int64
	wall        time.Duration
	diskBytes   int64
	packedLists int
	packedBlks  int
	logicalBits int64
	walk        time.Duration
}

func runCodec(layout string, codec, tuples, k, queries, par int, cacheBytes int64, seed int64) (*codecRun, error) {
	ix, idxDev, m, attrs, err := codecEnv(layout, codec, tuples, par, cacheBytes, seed)
	if err != nil {
		return nil, err
	}
	r := &codecRun{diskBytes: idxDev.Size()}
	for _, a := range ix.Attrs() {
		r.logicalBits += a.BitLen
		if a.CodedBlocks > 0 {
			r.packedLists++
			r.packedBlks += a.CodedBlocks
		}
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	targets := make([]float64, queries)
	for i := range targets {
		targets[i] = rng.Float64() * float64(tuples)
	}
	for _, target := range targets {
		// The wide query: one numeric term per sparse attribute, all at
		// the same target, so the filter phase scans every packed list.
		q := &model.Query{K: k}
		for _, id := range attrs {
			q.Terms = append(q.Terms, model.QueryTerm{Attr: id, Kind: model.KindNumeric, Num: target})
		}
		res, st, err := ix.Search(q, m)
		if err != nil {
			return nil, err
		}
		r.results = append(r.results, res)
		r.filterReads += st.FilterIO.PhysReads
		r.wall += st.Total()
	}
	// Decode throughput: the integrity check's second pass walks every
	// vector list end to end through the codec read path.
	start := time.Now()
	rep, err := ix.Check()
	if err != nil {
		return nil, err
	}
	if !rep.Ok() {
		return nil, fmt.Errorf("bench: codec %d %s check: %v", codec, layout, rep.Problems)
	}
	r.walk = time.Since(start)
	return r, nil
}

// codecPoint measures one (layout, k) cell: the same data and query set
// under codec 0 and codec 1, byte-identical answers required.
func codecPoint(layout string, tuples, k, queries, par int, cacheBytes int64, seed int64) (CodecBenchPoint, error) {
	const pageBytes = 4096
	raw, err := runCodec(layout, 0, tuples, k, queries, par, cacheBytes, seed)
	if err != nil {
		return CodecBenchPoint{}, err
	}
	packed, err := runCodec(layout, 1, tuples, k, queries, par, cacheBytes, seed)
	if err != nil {
		return CodecBenchPoint{}, err
	}
	pt := CodecBenchPoint{
		Layout: layout, K: k, Queries: queries,
		PackedLists: packed.packedLists, PackedBlocks: packed.packedBlks,
		DiskBytesRaw: raw.diskBytes, DiskBytesPacked: packed.diskBytes,
		FilterReadBytesRaw:    raw.filterReads * pageBytes,
		FilterReadBytesPacked: packed.filterReads * pageBytes,
		WallRawMS:             float64(raw.wall.Nanoseconds()) / 1e6,
		WallPackedMS:          float64(packed.wall.Nanoseconds()) / 1e6,
		ResultsMatch:          true,
	}
	for i := range raw.results {
		if len(raw.results[i]) != len(packed.results[i]) {
			pt.ResultsMatch = false
			break
		}
		for j := range raw.results[i] {
			if raw.results[i][j] != packed.results[i][j] {
				pt.ResultsMatch = false
			}
		}
	}
	if raw.diskBytes > 0 {
		pt.DiskSaved = 1 - float64(packed.diskBytes)/float64(raw.diskBytes)
	}
	if raw.filterReads > 0 {
		pt.FilterReadSaved = 1 - float64(packed.filterReads)/float64(raw.filterReads)
	}
	mbps := func(bits int64, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return (float64(bits) / 8 / 1e6) / d.Seconds()
	}
	pt.DecodeRawMBps = mbps(raw.logicalBits, raw.walk)
	pt.DecodePackedMBps = mbps(packed.logicalBits, packed.walk)
	if pt.DecodeRawMBps > 0 {
		pt.DecodeSpeedup = pt.DecodePackedMBps / pt.DecodeRawMBps
	}
	return pt, nil
}

// RunCodecBench sweeps {skewed, uniform} × {low k, high k}. The cache is
// kept small relative to the index so the filter phase actually touches the
// device and the physical-read delta is visible.
func RunCodecBench(tuples, par int, seed int64) (*CodecBenchResult, error) {
	if tuples <= 0 {
		tuples = 40000
	}
	if par <= 0 {
		par = 1
	}
	const cacheBytes = 256 << 10
	const queries = 40
	res := &CodecBenchResult{
		Tuples:          tuples,
		CheckpointEvery: codecBenchStripe,
		Parallelism:     par,
		CacheBytes:      cacheBytes,
		Seed:            seed,
	}
	for _, layout := range []string{"skewed", "uniform"} {
		for _, k := range []int{1, 100} {
			pt, err := codecPoint(layout, tuples, k, queries, par, cacheBytes, seed)
			if err != nil {
				return nil, fmt.Errorf("bench: codec %s k=%d: %w", layout, k, err)
			}
			if !pt.ResultsMatch {
				return nil, fmt.Errorf("bench: codec %s k=%d: answers diverged between codecs", layout, k)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// JSON renders the artifact for BENCH_codec.json.
func (r *CodecBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
