package bench

import (
	"math"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/obs"
)

// CPUFactor scales measured CPU time into the modeled milliseconds: the
// paper's testbed is a 1.8 GHz Core2 from 2009, roughly an order of
// magnitude slower per thread than current hardware on this workload.
// Only the modeled columns use it; wall columns stay raw.
const CPUFactor = 10.0

// EngineStats aggregates a measured query set for one engine. Modeled times
// are disk-model I/O milliseconds plus CPUFactor× measured CPU
// milliseconds; wall times are raw measurements on the current machine.
type EngineStats struct {
	Queries int

	MeanTableAccesses float64
	MeanCandidates    float64 // SII only
	MeanScanned       float64
	MeanFilterPages   float64 // page requests during filtering (phys + hits)

	FilterModelMS float64
	RefineModelMS float64
	TotalModelMS  float64
	StdDevModelMS float64

	FilterWallMS float64
	RefineWallMS float64
	TotalWallMS  float64
	StdDevWallMS float64
}

type sample struct {
	accesses    int64
	candidates  int64
	scanned     int64
	filterPages int64
	filterMS    float64
	refineMS    float64
	filterWall  float64
	refineWall  float64
}

func aggregate(samples []sample) EngineStats {
	var s EngineStats
	s.Queries = len(samples)
	if s.Queries == 0 {
		return s
	}
	totalsModel := make([]float64, len(samples))
	totalsWall := make([]float64, len(samples))
	for i, sm := range samples {
		s.MeanTableAccesses += float64(sm.accesses)
		s.MeanCandidates += float64(sm.candidates)
		s.MeanScanned += float64(sm.scanned)
		s.MeanFilterPages += float64(sm.filterPages)
		s.FilterModelMS += sm.filterMS
		s.RefineModelMS += sm.refineMS
		s.FilterWallMS += sm.filterWall
		s.RefineWallMS += sm.refineWall
		totalsModel[i] = sm.filterMS + sm.refineMS
		totalsWall[i] = sm.filterWall + sm.refineWall
	}
	n := float64(s.Queries)
	s.MeanTableAccesses /= n
	s.MeanCandidates /= n
	s.MeanScanned /= n
	s.MeanFilterPages /= n
	s.FilterModelMS /= n
	s.RefineModelMS /= n
	s.FilterWallMS /= n
	s.RefineWallMS /= n
	s.TotalModelMS = s.FilterModelMS + s.RefineModelMS
	s.TotalWallMS = s.FilterWallMS + s.RefineWallMS
	s.StdDevModelMS = stddev(totalsModel)
	s.StdDevWallMS = stddev(totalsWall)
	return s
}

// observe publishes one measured query into the harness registry so bench
// runs expose the same counter surface as a live store: per-engine query
// counts, wall-latency histograms, and the scanned/accessed totals that
// previously lived only in ad-hoc per-run aggregates.
func (e *Env) observe(engine string, sm sample) {
	labels := obs.With(e.labels, "engine", engine)
	Reg.Counter("bench_queries_total", "Queries measured per engine.", labels).Inc()
	Reg.Counter("bench_scanned_tuples_total", "Tuples filtered across measured queries.", labels).Add(sm.scanned)
	Reg.Counter("bench_table_accesses_total", "Random table accesses across measured queries.", labels).Add(sm.accesses)
	Reg.Histogram("bench_query_duration_seconds", "Measured wall latency per engine.", labels, nil).
		Observe((sm.filterWall + sm.refineWall) / 1000)
	Reg.Histogram("bench_query_modeled_ms", "Modeled (2009-HDD) latency per engine.",
		labels, []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}).
		Observe(sm.filterMS + sm.refineMS)
}

// MetricsText renders the harness registry in Prometheus text format.
func MetricsText() string { return Reg.Text() }

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// RunIVA measures the iVA-file on a query set; the first `warm` queries
// prime the file cache and are not measured (§V-A).
func (e *Env) RunIVA(queries []*model.Query, warm int, m *metric.Metric) (EngineStats, error) {
	var samples []sample
	for i, q := range queries {
		_, st, err := e.IVA.Search(q, m)
		if err != nil {
			return EngineStats{}, err
		}
		if i < warm {
			continue
		}
		sm := sample{
			accesses:    st.TableAccesses,
			scanned:     st.Scanned,
			filterPages: st.FilterIO.PhysReads + st.FilterIO.CacheHits,
			filterMS:    e.Disk.CostMS(st.FilterIO) + CPUFactor*float64(st.FilterWall.Microseconds())/1000,
			refineMS:    e.Disk.CostMS(st.RefineIO) + CPUFactor*float64(st.RefineWall.Microseconds())/1000,
			filterWall:  float64(st.FilterWall.Microseconds()) / 1000,
			refineWall:  float64(st.RefineWall.Microseconds()) / 1000,
		}
		e.observe("iva", sm)
		samples = append(samples, sm)
	}
	return aggregate(samples), nil
}

// RunSII measures the inverted-index baseline on a query set.
func (e *Env) RunSII(queries []*model.Query, warm int, m *metric.Metric) (EngineStats, error) {
	var samples []sample
	for i, q := range queries {
		_, st, err := e.SII.Search(q, m)
		if err != nil {
			return EngineStats{}, err
		}
		if i < warm {
			continue
		}
		sm := sample{
			accesses:   st.TableAccesses,
			candidates: st.Candidates,
			scanned:    st.Scanned,
			filterMS:   e.Disk.CostMS(st.FilterIO) + CPUFactor*float64(st.FilterWall.Microseconds())/1000,
			refineMS:   e.Disk.CostMS(st.RefineIO) + CPUFactor*float64(st.RefineWall.Microseconds())/1000,
			filterWall: float64(st.FilterWall.Microseconds()) / 1000,
			refineWall: float64(st.RefineWall.Microseconds()) / 1000,
		}
		e.observe("sii", sm)
		samples = append(samples, sm)
	}
	return aggregate(samples), nil
}

// RunDST measures the direct table scan on a query set.
func (e *Env) RunDST(queries []*model.Query, warm int, m *metric.Metric) (EngineStats, error) {
	pstats := e.Pool.Stats()
	var samples []sample
	for i, q := range queries {
		before := pstats.Snapshot()
		_, st, err := e.DST.Search(q, m)
		if err != nil {
			return EngineStats{}, err
		}
		if i < warm {
			continue
		}
		io := pstats.Snapshot().Sub(before)
		wall := float64(st.Wall.Microseconds()) / 1000
		sm := sample{
			scanned:    st.Scanned,
			filterMS:   e.Disk.CostMS(io) + CPUFactor*wall,
			filterWall: wall,
		}
		e.observe("dst", sm)
		samples = append(samples, sm)
	}
	return aggregate(samples), nil
}
