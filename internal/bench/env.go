// Package bench is the experiment harness: it rebuilds the paper's
// evaluation (§V, Table I and Figures 8–17) over the synthetic Google-Base
// workload, driving the iVA-file, the SII inverted-index baseline, and the
// DST direct scan side by side.
//
// Two time measurements are reported for every experiment: raw wall time on
// the current machine, and modeled milliseconds from the storage layer's
// physical-I/O counts priced with a 2009-HDD cost model (DESIGN.md §3.5).
// Counts (table-file accesses, Fig. 8) are machine-independent.
package bench

import (
	"fmt"
	"sync"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/dataset"
	"github.com/sparsewide/iva/internal/invidx"
	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/obs"
	"github.com/sparsewide/iva/internal/scan"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// Reg is the harness's process-wide metrics registry: every environment's
// pool I/O counters (labeled by configuration) and the per-engine query
// histograms land here, so a bench run can be scraped or dumped the same
// way a live store is (ivabench -metrics).
var Reg = obs.NewRegistry()

// Config fixes one experimental environment. The zero value selects the
// paper's Table I defaults at a laptop-scale tuple count.
type Config struct {
	Tuples     int     // dataset scale; default 60,000 (paper: 779,019)
	TextAttrs  int     // default 1081
	NumAttrs   int     // default 66
	CacheBytes int64   // shared file cache; default 10 MiB (paper setup)
	PageSize   int     // default 4096
	Alpha      float64 // default 0.20
	N          int     // default 2
	Seed       int64   // default 42
	// Parallelism is the iVA-file's SearchParallelism: 0 uses all cores,
	// 1 forces the sequential plan (the paper's single-threaded setup).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Tuples == 0 {
		c.Tuples = 60000
	}
	if c.TextAttrs == 0 {
		c.TextAttrs = 1081
	}
	if c.NumAttrs == 0 {
		c.NumAttrs = 66
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 10 << 20
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.Alpha == 0 {
		c.Alpha = 0.20
	}
	if c.N == 0 {
		c.N = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	// The paper's experiments are single-threaded; defaulting to the
	// sequential plan keeps the machine-independent counts (Fig. 8)
	// stable across hosts. ivabench -parallelism opts in.
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	return c
}

// DefaultConfig returns the paper's Table I defaults (scaled tuple count).
func DefaultConfig() Config { return Config{}.withDefaults() }

// Env is one built environment: dataset, table, and the three engines over
// a shared buffer pool.
type Env struct {
	Cfg    Config
	Pool   *storage.Pool
	Gen    *dataset.Generator
	IDs    []model.AttrID
	Tbl    *table.Table
	IVA    *core.Index
	SII    *invidx.Index
	DST    *scan.Scanner
	Disk   storage.DiskModel
	labels obs.Labels
}

// NewEnv generates the dataset and builds the table and all three engines.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	e := &Env{
		Cfg:  cfg,
		Pool: storage.NewPool(cfg.PageSize, cfg.CacheBytes),
		Disk: storage.DefaultDiskModel(),
	}
	e.labels = obs.Labels{"env": fmt.Sprintf("t%d-s%d-a%g-n%d-p%d", cfg.Tuples, cfg.Seed, cfg.Alpha, cfg.N, cfg.Parallelism)}
	e.Pool.RegisterPoolMetrics(Reg, e.labels, e.Disk)
	e.Gen = dataset.New(dataset.Config{
		Tuples:    cfg.Tuples,
		TextAttrs: cfg.TextAttrs,
		NumAttrs:  cfg.NumAttrs,
		Seed:      cfg.Seed,
	})
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(e.Pool, storage.NewMemDevice()), cat)
	if err != nil {
		return nil, err
	}
	e.Tbl = tbl
	if e.IDs, err = e.Gen.Populate(tbl); err != nil {
		return nil, err
	}
	if e.IVA, err = core.Build(tbl, storage.NewFile(e.Pool, storage.NewMemDevice()),
		core.Options{Alpha: cfg.Alpha, N: cfg.N, SearchParallelism: cfg.Parallelism}); err != nil {
		return nil, err
	}
	if e.SII, err = invidx.Build(tbl, storage.NewFile(e.Pool, storage.NewMemDevice()),
		invidx.Options{}); err != nil {
		return nil, err
	}
	if e.DST, err = scan.New(tbl); err != nil {
		return nil, err
	}
	return e, nil
}

// RebuildIVA replaces the iVA-file with one built under different options
// (α and n sweeps reuse the same table and dataset).
func (e *Env) RebuildIVA(opts core.Options) error {
	if opts.SearchParallelism == 0 {
		opts.SearchParallelism = e.Cfg.Parallelism
	}
	ix, err := core.Build(e.Tbl, storage.NewFile(e.Pool, storage.NewMemDevice()), opts)
	if err != nil {
		return err
	}
	e.IVA = ix
	return nil
}

// Metric builds the evaluation metric by name pair, e.g. ("EQU", "L2").
func (e *Env) Metric(weights, combiner string) (*metric.Metric, error) {
	c, err := metric.ByName(combiner)
	if err != nil {
		return nil, err
	}
	var w metric.Weighter
	switch weights {
	case "EQU":
		w = metric.Equal{}
	case "ITF":
		cat := e.Tbl.Catalog()
		w = metric.NewITF(e.Tbl.Live, func(a model.AttrID) int64 {
			info, err := cat.Info(a)
			if err != nil {
				return 0
			}
			return info.DF
		})
	default:
		return nil, fmt.Errorf("bench: unknown weights %q", weights)
	}
	return &metric.Metric{Combiner: c, Weighter: w, NDFPenalty: metric.DefaultNDFPenalty}, nil
}

// Queries builds a query set per §V-A.
func (e *Env) Queries(values, k, count, seed int) ([]*model.Query, int) {
	return e.Gen.Queries(dataset.QueryConfig{
		Values: values, K: k, Count: count, Seed: int64(seed),
	}, e.IDs)
}

// envCache shares built environments across benchmarks in one process:
// building a 60k-tuple environment is far more expensive than any single
// measurement.
var (
	envMu    sync.Mutex
	envCache = map[Config]*Env{}
)

// SharedEnv returns a cached environment for cfg, building it on first use.
// Callers must not mutate the returned environment's data (update
// experiments build private environments instead).
func SharedEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[cfg]; ok {
		return e, nil
	}
	e, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	envCache[cfg] = e
	return e, nil
}
