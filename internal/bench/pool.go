package bench

import (
	"encoding/json"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparsewide/iva/internal/storage"
)

// The buffer-pool contention benchmark (`ivabench -pool`). It measures raw
// page-read throughput — Get, verify-free, Release — under a zipf page-access
// pattern at increasing reader counts, once against a single-shard pool (the
// old global-mutex arrangement: every page request serializes on one lock)
// and once against the default sharded pool. The emitted BENCH_pool.json is
// the perf trajectory's baseline artifact; EXPERIMENTS.md records the
// before/after numbers.

// PoolBenchPoint is one (pool variant, reader count) measurement.
type PoolBenchPoint struct {
	Readers   int     `json:"readers"`
	Shards    int     `json:"shards"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	HitRate   float64 `json:"hit_rate"`
	LockWaits int64   `json:"lock_waits"`
}

// PoolBenchResult is the full artifact written to BENCH_pool.json.
type PoolBenchResult struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	PageSize   int     `json:"page_size"`
	CapPages   int     `json:"cap_pages"`
	FilePages  int     `json:"file_pages"`
	ZipfS      float64 `json:"zipf_s"`
	PointMS    int     `json:"point_ms"` // measured duration per point
	Seed       int64   `json:"seed"`

	Global  []PoolBenchPoint `json:"global"`  // 1 shard: the old global-lock pool
	Sharded []PoolBenchPoint `json:"sharded"` // default shard count

	// SpeedupAtMax is sharded/global ops-per-second at the highest reader
	// count — the acceptance headline.
	SpeedupAtMax float64 `json:"speedup_at_max"`
}

// poolBenchPoint drives `readers` goroutines over one freshly-built pool for
// roughly `dur`, drawing pages from a zipf distribution so a hot head stays
// cached while the tail churns through eviction.
func poolBenchPoint(shards, readers, pageSize, capPages, filePages int, zipfS float64, seed int64, dur time.Duration) (PoolBenchPoint, error) {
	pool := storage.NewPoolShards(pageSize, int64(pageSize)*int64(capPages), shards)
	dev := storage.NewMemDevice()
	page := make([]byte, pageSize)
	for i := range page {
		page[i] = byte(i)
	}
	for pg := 0; pg < filePages; pg++ {
		if _, err := dev.WriteAt(page, int64(pg)*int64(pageSize)); err != nil {
			return PoolBenchPoint{}, err
		}
	}
	id := pool.Register(dev)

	var (
		stop atomic.Bool
		ops  atomic.Int64
		wg   sync.WaitGroup
		errc = make(chan error, readers)
	)
	start := time.Now()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(w)*104729))
			zipf := rand.NewZipf(r, zipfS, 1, uint64(filePages-1))
			n := int64(0)
			for !stop.Load() {
				fr, err := pool.Get(id, int64(zipf.Uint64()))
				if err != nil {
					errc <- err
					return
				}
				_ = fr.Data()[0]
				fr.Release()
				n++
			}
			ops.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return PoolBenchPoint{}, err
	default:
	}

	snap := pool.Stats().Snapshot()
	pt := PoolBenchPoint{
		Readers:   readers,
		Shards:    pool.ShardCount(),
		Ops:       ops.Load(),
		OpsPerSec: float64(ops.Load()) / elapsed.Seconds(),
		LockWaits: pool.LockWaits(),
	}
	if total := snap.CacheHits + snap.PhysReads; total > 0 {
		pt.HitRate = float64(snap.CacheHits) / float64(total)
	}
	return pt, nil
}

// RunPoolBench measures both pool variants across reader counts 1, 2, 4, …
// up to max(GOMAXPROCS, 4), so the artifact carries multi-reader points even
// on single-core runners (clearly labeled with the recorded GOMAXPROCS).
func RunPoolBench(seed int64, pointDur time.Duration) (*PoolBenchResult, error) {
	const (
		pageSize  = 4096
		capPages  = 1024 // 4 MiB pool
		filePages = 4096 // 4× the budget: the zipf tail must evict
		zipfS     = 1.1
	)
	if pointDur <= 0 {
		pointDur = 300 * time.Millisecond
	}
	maxReaders := runtime.GOMAXPROCS(0)
	if maxReaders < 4 {
		maxReaders = 4
	}
	res := &PoolBenchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PageSize:   pageSize,
		CapPages:   capPages,
		FilePages:  filePages,
		ZipfS:      zipfS,
		PointMS:    int(pointDur.Milliseconds()),
		Seed:       seed,
	}
	for readers := 1; readers <= maxReaders; readers *= 2 {
		g, err := poolBenchPoint(1, readers, pageSize, capPages, filePages, zipfS, seed, pointDur)
		if err != nil {
			return nil, err
		}
		s, err := poolBenchPoint(0, readers, pageSize, capPages, filePages, zipfS, seed, pointDur)
		if err != nil {
			return nil, err
		}
		res.Global = append(res.Global, g)
		res.Sharded = append(res.Sharded, s)
	}
	last := len(res.Global) - 1
	if res.Global[last].OpsPerSec > 0 {
		res.SpeedupAtMax = res.Sharded[last].OpsPerSec / res.Global[last].OpsPerSec
	}
	return res, nil
}

// JSON renders the artifact for BENCH_pool.json.
func (r *PoolBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
