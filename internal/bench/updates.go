package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/invidx"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
)

// updateCosts are the measured primitives of §V-C: td (per deletion), ti
// (per insertion) and tr (rebuilding the table file and the index file to
// clean deleted data). The paper's amortized costs follow as
// td + tr/(β·|T|), ti + tr/(β·|T|) and td + ti + tr/(β·|T|).
type updateCosts struct {
	tdModelMS, tdWallMS float64
	tiModelMS, tiWallMS float64
	trModelMS, trWallMS float64
	tuples              int64
}

func (u updateCosts) updateMS(beta float64, model bool) float64 {
	amort := u.trModelMS
	td, ti := u.tdModelMS, u.tiModelMS
	if !model {
		amort = u.trWallMS
		td, ti = u.tdWallMS, u.tiWallMS
	}
	return td + ti + amort/(beta*float64(u.tuples))
}

// updateOps abstracts the per-engine mutation primitives.
type updateOps struct {
	insert  func(map[model.AttrID]model.Value) error
	delete  func(model.TID) error
	rebuild func() error
}

// TupleValues maps generated tuple i's rank-keyed values to catalog ids.
func (e *Env) TupleValues(i int) map[model.AttrID]model.Value {
	vals := e.Gen.Values(i)
	out := make(map[model.AttrID]model.Value, len(vals))
	for rank, v := range vals {
		out[e.IDs[rank]] = v
	}
	return out
}

// measureUpdates drives nOps deletions and insertions plus one rebuild.
func measureUpdates(e *Env, ops updateOps, live []model.TID, nOps int) (updateCosts, error) {
	var u updateCosts
	u.tuples = e.Tbl.Live()
	pstats := e.Pool.Stats()
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 99))

	// Deletions of random live tuples.
	perm := rng.Perm(len(live))
	if nOps > len(perm) {
		nOps = len(perm)
	}
	before := pstats.Snapshot()
	start := time.Now()
	for i := 0; i < nOps; i++ {
		if err := ops.delete(live[perm[i]]); err != nil {
			return u, fmt.Errorf("delete: %w", err)
		}
	}
	u.tdWallMS = float64(time.Since(start).Microseconds()) / 1000 / float64(nOps)
	u.tdModelMS = (e.Disk.CostMS(pstats.Snapshot().Sub(before)))/float64(nOps) + CPUFactor*u.tdWallMS

	// Insertions of fresh tuples.
	before = pstats.Snapshot()
	start = time.Now()
	for i := 0; i < nOps; i++ {
		if err := ops.insert(e.TupleValues(e.Cfg.Tuples + i)); err != nil {
			return u, fmt.Errorf("insert: %w", err)
		}
	}
	u.tiWallMS = float64(time.Since(start).Microseconds()) / 1000 / float64(nOps)
	u.tiModelMS = (e.Disk.CostMS(pstats.Snapshot().Sub(before)))/float64(nOps) + CPUFactor*u.tiWallMS

	// One full rebuild (the cleaning run amortized over β·|T| updates).
	before = pstats.Snapshot()
	start = time.Now()
	if err := ops.rebuild(); err != nil {
		return u, fmt.Errorf("rebuild: %w", err)
	}
	u.trWallMS = float64(time.Since(start).Microseconds()) / 1000
	u.trModelMS = e.Disk.CostMS(pstats.Snapshot().Sub(before)) + CPUFactor*u.trWallMS
	return u, nil
}

func measureIVA(cfg Config, nOps int) (updateCosts, error) {
	e, err := NewEnv(cfg)
	if err != nil {
		return updateCosts{}, err
	}
	ops := updateOps{
		insert: func(v map[model.AttrID]model.Value) error { _, err := e.IVA.Insert(v); return err },
		delete: e.IVA.Delete,
		rebuild: func() error {
			newTbl, _, err := e.Tbl.Rebuild(storage.NewFile(e.Pool, storage.NewMemDevice()), e.IVA.Live)
			if err != nil {
				return err
			}
			_, err = core.Build(newTbl, storage.NewFile(e.Pool, storage.NewMemDevice()),
				core.Options{Alpha: cfg.Alpha, N: cfg.N})
			return err
		},
	}
	return measureUpdates(e, ops, e.IVA.LiveTIDs(), nOps)
}

func measureSII(cfg Config, nOps int) (updateCosts, error) {
	e, err := NewEnv(cfg)
	if err != nil {
		return updateCosts{}, err
	}
	live := e.IVA.LiveTIDs()
	ops := updateOps{
		insert: func(v map[model.AttrID]model.Value) error { _, err := e.SII.Insert(v); return err },
		delete: e.SII.Delete,
		rebuild: func() error {
			keep := make(map[model.TID]bool)
			for _, tid := range live {
				keep[tid] = true
			}
			newTbl, _, err := e.Tbl.Rebuild(storage.NewFile(e.Pool, storage.NewMemDevice()),
				func(t model.TID) bool { return keep[t] })
			if err != nil {
				return err
			}
			_, err = invidx.Build(newTbl, storage.NewFile(e.Pool, storage.NewMemDevice()), invidx.Options{})
			return err
		},
	}
	return measureUpdates(e, ops, live, nOps)
}

func measureDST(cfg Config, nOps int) (updateCosts, error) {
	e, err := NewEnv(cfg)
	if err != nil {
		return updateCosts{}, err
	}
	live := e.IVA.LiveTIDs()
	ops := updateOps{
		insert: func(v map[model.AttrID]model.Value) error { _, err := e.DST.Insert(v); return err },
		delete: e.DST.Delete,
		rebuild: func() error {
			// DST maintains no index: cleaning rebuilds only the table file.
			keep := make(map[model.TID]bool)
			for _, tid := range live {
				keep[tid] = true
			}
			_, _, err := e.Tbl.Rebuild(storage.NewFile(e.Pool, storage.NewMemDevice()),
				func(t model.TID) bool { return keep[t] })
			return err
		},
	}
	return measureUpdates(e, ops, live, nOps)
}

// ExpFig17 reproduces Fig. 17: average update time under cleaning trigger
// thresholds β = 1%..5% for iVA, SII and DST. Each engine runs on a private
// environment so mutations do not interfere.
func ExpFig17(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	r := Result{
		Name:   "fig17",
		Title:  "Fig. 17: average update time vs. cleaning trigger threshold beta (model ms)",
		Header: []string{"beta", "iVA", "SII", "DST"},
	}
	const nOps = 300
	iva, err := measureIVA(cfg, nOps)
	if err != nil {
		return r, err
	}
	sii, err := measureSII(cfg, nOps)
	if err != nil {
		return r, err
	}
	dst, err := measureDST(cfg, nOps)
	if err != nil {
		return r, err
	}
	for _, beta := range []float64{0.01, 0.02, 0.03, 0.04, 0.05} {
		r.Rows = append(r.Rows, []string{
			pct(beta),
			f2(iva.updateMS(beta, true)),
			f2(sii.updateMS(beta, true)),
			f2(dst.updateMS(beta, true)),
		})
	}
	r.Rows = append(r.Rows,
		[]string{"td (per delete)", f2(iva.tdModelMS), f2(sii.tdModelMS), f2(dst.tdModelMS)},
		[]string{"ti (per insert)", f2(iva.tiModelMS), f2(sii.tiModelMS), f2(dst.tiModelMS)},
		[]string{"tr (rebuild)", f1(iva.trModelMS), f1(sii.trModelMS), f1(dst.trModelMS)},
	)
	r.Notes = append(r.Notes,
		"Paper: update time falls as beta grows; the three methods stay close (iVA sacrifices little update speed) and updates are ~100x faster than queries.")
	return r, nil
}
