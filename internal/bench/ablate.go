package bench

import (
	"fmt"
	"math/rand"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/gram"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/vector"
)

// ExpSizes reports index-size behavior across α, the quantity behind the
// §V-A prose range ("82.7 MB to 116.7 MB") and the observation that some
// iVA-files are smaller than the SII file thanks to list-type selection.
func ExpSizes(e *Env) (Result, error) {
	r := Result{
		Name:   "sizes",
		Title:  "Index and table file sizes (see §V-A prose)",
		Header: []string{"file", "MB"},
	}
	r.Rows = append(r.Rows,
		[]string{"table (interpreted schema)", f1(float64(e.Tbl.Bytes()) / 1e6)},
		[]string{"SII", f1(float64(e.SII.SizeBytes()) / 1e6)},
	)
	for _, a := range alphaSweep {
		if err := e.RebuildIVA(core.Options{Alpha: a, N: e.Cfg.N}); err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("iVA (alpha=%s)", pct(a)), f1(float64(e.IVA.SizeBytes()) / 1e6),
		})
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	r.Notes = append(r.Notes,
		"Paper: iVA sizes range around the SII size; small alphas undercut it.")
	return r, nil
}

// ExpAblateListTypes quantifies §III-D's multi-type list selection: the
// automatic choice vs. forcing Type I everywhere.
func ExpAblateListTypes(e *Env) (Result, error) {
	r := Result{
		Name:   "ablate-listtypes",
		Title:  "Ablation: automatic list-type selection vs. Type I everywhere",
		Header: []string{"variant", "index MB", "query model ms"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	qs, warm := e.Queries(3, 10, queryCount, 21)

	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	auto, err := e.RunIVA(qs, warm, m)
	if err != nil {
		return r, err
	}
	autoMB := float64(e.IVA.SizeBytes()) / 1e6
	counts := map[vector.ListType]int{}
	for id := 0; id < e.Tbl.Catalog().NumAttrs(); id++ {
		if lt, ok := e.IVA.ListType(model.AttrID(id)); ok {
			counts[lt]++
		}
	}

	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N, ForceType: vector.TypeI}); err != nil {
		return r, err
	}
	forced, err := e.RunIVA(qs, warm, m)
	if err != nil {
		return r, err
	}
	forcedMB := float64(e.IVA.SizeBytes()) / 1e6
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}

	r.Rows = append(r.Rows,
		[]string{"automatic (I/II/III/IV)", f1(autoMB), f1(auto.TotalModelMS)},
		[]string{"forced Type I", f1(forcedMB), f1(forced.TotalModelMS)},
	)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"Automatic selection chose: I=%d II=%d III=%d IV=%d over %d attributes.",
		counts[vector.TypeI], counts[vector.TypeII], counts[vector.TypeIII], counts[vector.TypeIV],
		e.Tbl.Catalog().NumAttrs()))
	return r, nil
}

// ExpAblateDomains quantifies §III-C's relative-domain encoding against the
// original VA-file absolute-domain scheme.
func ExpAblateDomains(e *Env) (Result, error) {
	r := Result{
		Name:   "ablate-domains",
		Title:  "Ablation: relative vs. absolute numeric domains (§III-C)",
		Header: []string{"variant", "table accesses/query", "query model ms"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	// Numeric-only queries isolate the quantizer's filtering power.
	qs, warm := numericQueries(e, 2, 10, queryCount, 22)

	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	rel, err := e.RunIVA(qs, warm, m)
	if err != nil {
		return r, err
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N, AbsoluteDomains: true}); err != nil {
		return r, err
	}
	abs, err := e.RunIVA(qs, warm, m)
	if err != nil {
		return r, err
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	r.Rows = append(r.Rows,
		[]string{"relative domain (paper)", f1(rel.MeanTableAccesses), f1(rel.TotalModelMS)},
		[]string{"absolute domain (VA-file)", f1(abs.MeanTableAccesses), f1(abs.TotalModelMS)},
	)
	r.Notes = append(r.Notes,
		"Paper's claim: shorter relative-domain codes reach the precision absolute-domain codes cannot; expect far fewer accesses for the relative variant.")
	return r, nil
}

// numericQueries builds queries over numeric attributes only.
func numericQueries(e *Env, values, k, count, seed int) ([]*model.Query, int) {
	rng := rand.New(rand.NewSource(int64(seed)))
	var numeric []int
	for r := 0; r < e.Gen.NumAttrsTotal(); r++ {
		if e.Gen.AttrKind(r) == model.KindNumeric {
			numeric = append(numeric, r)
		}
	}
	var qs []*model.Query
	for len(qs) < count {
		ti := rng.Intn(e.Cfg.Tuples)
		vals := e.Gen.Values(ti)
		q := &model.Query{K: k}
		for _, r := range numeric {
			if v, ok := vals[r]; ok && v.Kind == model.KindNumeric {
				q.NumTerm(e.IDs[r], v.Num)
				if len(q.Terms) >= values {
					break
				}
			}
		}
		// Top up with popular numeric attributes when the tuple is short.
		for _, r := range numeric {
			if len(q.Terms) >= values {
				break
			}
			dup := false
			for _, t := range q.Terms {
				if t.Attr == e.IDs[r] {
					dup = true
				}
			}
			if !dup {
				q.NumTerm(e.IDs[r], float64(rng.Intn(1000)))
			}
		}
		if len(q.Terms) >= 1 {
			qs = append(qs, q)
		}
	}
	warm := warmCount
	if warm > len(qs)/2 {
		warm = len(qs) / 2
	}
	return qs, warm
}

// ExpAblatePlan reproduces the §IV-A argument for the parallel plan: the
// classic VA-file two-phase (sequential) plan needs per-tuple upper bounds,
// which string signatures cannot provide, so on text queries its candidate
// set degenerates to the whole table, while Algorithm 1 keeps fetching
// bounded. Numeric-only queries, where slice codes do bound from above, are
// shown for contrast.
func ExpAblatePlan(e *Env) (Result, error) {
	r := Result{
		Name:  "ablate-plan",
		Title: "Ablation: VA-file sequential plan vs. Algorithm 1's parallel plan (candidates per query)",
		Header: []string{"workload", "scanned", "sequential candidates",
			"parallel fetches"},
	}
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		return r, err
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		return r, err
	}
	run := func(label string, qs []*model.Query, warm int) error {
		var scanned, seq, par float64
		n := 0
		for i, q := range qs {
			ps, err := e.IVA.SequentialPlanStats(q, m)
			if err != nil {
				return err
			}
			if i < warm {
				continue
			}
			scanned += float64(ps.Scanned)
			seq += float64(ps.SequentialCandidates)
			par += float64(ps.ParallelFetches)
			n++
		}
		r.Rows = append(r.Rows, []string{
			label, f1(scanned / float64(n)), f1(seq / float64(n)), f1(par / float64(n)),
		})
		return nil
	}
	// Standard mixed workload: queries contain text terms.
	qs, warm := e.Queries(3, 10, 20, 31)
	if err := run("mixed text+numeric", qs, warm); err != nil {
		return r, err
	}
	nqs, nwarm := numericQueries(e, 2, 10, 20, 32)
	if err := run("numeric only", nqs, nwarm); err != nil {
		return r, err
	}
	r.Notes = append(r.Notes,
		"Paper §IV-A: a limited-length vector cannot upper-bound unlimited-length strings, so the sequential plan's candidate set is the whole table on text queries; the parallel plan interleaves refinement and stays bounded.")
	return r, nil
}

// ExpAblateSignature measures the signature's expected relative error ê
// (Eq. 5) against the observed error over sampled vocabulary strings, for
// the α sweep — the empirical check of the Appendix analysis.
func ExpAblateSignature(e *Env) (Result, error) {
	r := Result{
		Name:   "ablate-signature",
		Title:  "Signature error: predicted ê (Eq. 5) vs. measured mean relative error",
		Header: []string{"alpha", "predicted e", "measured e"},
	}
	rng := rand.New(rand.NewSource(23))
	// Sample data/query string pairs from the generator's vocabulary.
	type pair struct{ sq, sd string }
	var pairs []pair
	for i := 0; i < 400; i++ {
		rank := rng.Intn(e.Gen.NumAttrsTotal())
		if e.Gen.AttrKind(rank) != model.KindText {
			continue
		}
		sd := e.Gen.VocabWord(rank, rng.Intn(64))
		sq := e.Gen.VocabWord(rank, rng.Intn(64))
		pairs = append(pairs, pair{sq, sd})
	}
	for _, a := range alphaSweep {
		codec, err := signature.NewCodec(e.Cfg.N, a)
		if err != nil {
			return r, err
		}
		var measured, predicted float64
		var count int
		for _, p := range pairs {
			estPrime := gram.EstPrime(p.sq, p.sd, e.Cfg.N)
			if estPrime <= 0 {
				continue
			}
			sig := codec.Encode(p.sd)
			est := codec.NewQueryString(p.sq).Est(sig)
			measured += (estPrime - est) / estPrime
			mGrams := len(p.sd) + e.Cfg.N - 1
			l := codec.SigBits(len(p.sd))
			t := codec.OptimalT(mGrams, l)
			predicted += signature.ExpectedError(mGrams, l, t)
			count++
		}
		if count == 0 {
			continue
		}
		r.Rows = append(r.Rows, []string{
			pct(a), f2(predicted / float64(count)), f2(measured / float64(count)),
		})
	}
	r.Notes = append(r.Notes,
		"Both errors must fall as alpha (hence l) grows; the prediction should track the measurement's order of magnitude.")
	return r, nil
}
