package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/server"
	"github.com/sparsewide/iva/internal/workload"
)

// The network query-service benchmark (`ivabench -serve`). Unlike the paper
// experiments, which measure the index in-process, this harness drives the
// real HTTP path — JSON decode, admission control, SearchContext, JSON encode
// — through a TCP listener, the same stack `ivatool serve` mounts.
//
// Two traffic shapes:
//
//   - closed loop: N clients, each issuing its next query the moment the
//     previous answer returns. Sweeping N (1, GOMAXPROCS, 4×GOMAXPROCS)
//     measures service capacity and queueing latency with no quota.
//   - open loop: arrivals at a fixed offered rate regardless of completions,
//     against a server whose per-tenant token-bucket quota is set to half the
//     offered rate. Overload is shed with 429 before it reaches the index;
//     the artifact records the shed rate and the latency of admitted work.
//
// The query mix is Zipf-skewed over a fixed template set (s=1.2), so a few
// hot attribute combinations dominate — the cache-friendly skew real services
// see. Results go to BENCH_serve.json.

// ServeBenchPoint is one measured traffic point.
type ServeBenchPoint struct {
	Mode    string `json:"mode"`    // "closed" or "open"
	Clients int    `json:"clients"` // closed loop: concurrent clients

	OfferedQPS float64 `json:"offered_qps,omitempty"` // open loop: arrival rate
	QuotaQPS   float64 `json:"quota_qps,omitempty"`   // open loop: token-bucket rate

	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`   // 429 responses
	Errors   int64 `json:"errors"` // anything else

	ShedRate      float64 `json:"shed_rate"`
	ThroughputQPS float64 `json:"throughput_qps"` // completed 200s per second

	P50MS float64 `json:"p50_ms"` // latency of 200 responses
	P99MS float64 `json:"p99_ms"`
}

// ServeBenchResult is the artifact written to BENCH_serve.json.
type ServeBenchResult struct {
	Tuples     int   `json:"tuples"`
	Seed       int64 `json:"seed"`
	Templates  int   `json:"templates"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	PointMS    int   `json:"point_ms"`

	Points []ServeBenchPoint `json:"points"`
}

// JSON renders the artifact for BENCH_serve.json.
func (r *ServeBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// serveBenchTenants spread closed-loop traffic over several tenants so the
// per-tenant admission structures (buckets, slot semaphores, metric series)
// are on the hot path, as they would be in production.
var serveBenchTenants = []string{"alpha", "beta", "gamma"}

// serveTemplates pre-renders nt query bodies from the workload generator.
// Rendering once up front keeps request marshalling off the measured path.
func serveTemplates(seed uint64, nt int) [][]byte {
	g := workload.New(seed)
	out := make([][]byte, 0, nt)
	for len(out) < nt {
		spec := g.Query()
		req := server.SearchRequest{K: spec.K}
		seen := make(map[string]bool, len(spec.Terms))
		for _, t := range spec.Terms {
			if seen[t.Name] {
				continue // ghost terms can collide; the decoder rejects dups
			}
			seen[t.Name] = true
			st := server.SearchTerm{Attr: t.Name, Weight: t.Weight}
			if t.Kind == model.KindNumeric {
				n := t.Num
				st.Num = &n
			} else {
				s := t.Str
				st.Text = &s
			}
			req.Terms = append(req.Terms, st)
		}
		body, err := json.Marshal(req)
		if err != nil {
			continue // cannot happen; skip rather than fail the bench
		}
		out = append(out, body)
	}
	return out
}

// serveBenchEnv builds a seeded store and serves it over a real TCP listener
// with the given admission config. The returned stop func shuts everything
// down; base is the http://host:port prefix.
func serveBenchEnv(dir string, tuples int, seed int64, cfg server.Config) (base string, stop func(), err error) {
	st, err := iva.Create(dir, iva.Options{})
	if err != nil {
		return "", nil, err
	}
	g := workload.New(uint64(seed))
	for i := 0; i < tuples; i++ {
		row := make(iva.Row)
		for _, c := range g.Row() {
			if c.Val.Kind == model.KindNumeric {
				row[c.Name] = iva.Num(c.Val.Num)
			} else {
				row[c.Name] = iva.Strings(c.Val.Strs...)
			}
		}
		if _, err := st.Insert(row); err != nil {
			st.Close()
			return "", nil, err
		}
	}
	if err := st.Sync(); err != nil {
		st.Close()
		return "", nil, err
	}
	api := server.New(st, nil, cfg)
	mux := http.NewServeMux()
	api.Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	stop = func() {
		hs.Close()
		st.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// serveClient issues one pre-rendered request and classifies the response.
func serveClient(client *http.Client, base, tenant string, body []byte) (code int, lat time.Duration, err error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.TenantHeader, tenant)
	start := time.Now()
	resp, err := client.Do(req)
	lat = time.Since(start)
	if err != nil {
		return 0, lat, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, lat, nil
}

// tally accumulates per-point outcomes from many client goroutines.
type tally struct {
	mu   sync.Mutex
	ok   int64
	shed int64
	errs int64
	lats []time.Duration // 200s only
}

func (tl *tally) record(code int, lat time.Duration, err error) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	switch {
	case err != nil:
		tl.errs++
	case code == http.StatusOK:
		tl.ok++
		tl.lats = append(tl.lats, lat)
	case code == http.StatusTooManyRequests:
		tl.shed++
	default:
		tl.errs++
	}
}

func (tl *tally) point(elapsed time.Duration) ServeBenchPoint {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	pt := ServeBenchPoint{
		Requests: tl.ok + tl.shed + tl.errs,
		OK:       tl.ok,
		Shed:     tl.shed,
		Errors:   tl.errs,
	}
	if pt.Requests > 0 {
		pt.ShedRate = float64(pt.Shed) / float64(pt.Requests)
	}
	if elapsed > 0 {
		pt.ThroughputQPS = float64(pt.OK) / elapsed.Seconds()
	}
	sort.Slice(tl.lats, func(i, j int) bool { return tl.lats[i] < tl.lats[j] })
	pt.P50MS = percentileMS(tl.lats, 0.50)
	pt.P99MS = percentileMS(tl.lats, 0.99)
	return pt
}

func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e6
}

// benchHTTPClient returns a client sized for the fan-out: without a large
// idle pool, closed connections churn ephemeral ports and the measurement
// becomes a TIME_WAIT benchmark.
func benchHTTPClient() *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
		IdleConnTimeout:     30 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// closedLoopPoint runs nclients synchronous clients for dur against base.
// Each client draws templates through its own Zipf sampler so the hot-key
// skew is identical run to run.
func closedLoopPoint(base string, templates [][]byte, nclients int, seed int64, dur time.Duration) ServeBenchPoint {
	client := benchHTTPClient()
	var tl tally
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for c := 0; c < nclients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(templates)-1))
			tenant := serveBenchTenants[id%len(serveBenchTenants)]
			for time.Now().Before(deadline) {
				body := templates[zipf.Uint64()]
				tl.record(serveClient(client, base, tenant, body))
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	pt := tl.point(time.Since(start))
	pt.Mode, pt.Clients = "closed", nclients
	return pt
}

// openLoopPoint fires arrivals at offered QPS for dur, regardless of how fast
// the server answers — the overload shape a closed loop can never produce.
func openLoopPoint(base string, templates [][]byte, offered float64, seed int64, dur time.Duration) ServeBenchPoint {
	client := benchHTTPClient()
	var tl tally
	rng := rand.New(rand.NewSource(seed ^ 0x0bea))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(templates)-1))
	interval := time.Duration(float64(time.Second) / offered)
	var wg sync.WaitGroup
	var fired atomic.Int64
	start := time.Now()
	for time.Since(start) < dur {
		body := templates[zipf.Uint64()]
		tenant := serveBenchTenants[int(fired.Add(1))%len(serveBenchTenants)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl.record(serveClient(client, base, tenant, body))
		}()
		// Sleep to the next arrival slot; a busy scheduler makes the real
		// offered rate slightly lower, never higher.
		next := start.Add(time.Duration(fired.Load()) * interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	wg.Wait()
	pt := tl.point(time.Since(start))
	pt.Mode, pt.OfferedQPS = "open", offered
	return pt
}

// RunServeBench measures the HTTP query service end to end: a closed-loop
// client sweep with admission wide open, then an open-loop overload point
// with the token-bucket quota set to half the offered rate so roughly half
// the arrivals shed with 429. pointDur is the measured wall time per point.
func RunServeBench(tuples int, seed int64, pointDur time.Duration) (*ServeBenchResult, error) {
	if tuples <= 0 {
		tuples = 20000
	}
	if pointDur <= 0 {
		pointDur = 300 * time.Millisecond
	}
	const nTemplates = 64
	procs := runtime.GOMAXPROCS(0)
	res := &ServeBenchResult{
		Tuples:     tuples,
		Seed:       seed,
		Templates:  nTemplates,
		GOMAXPROCS: procs,
		PointMS:    int(pointDur.Milliseconds()),
	}
	templates := serveTemplates(uint64(seed)^0x7e71, nTemplates)

	dir, err := os.MkdirTemp("", "iva-serve-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Closed loop: no quota, default concurrency limits.
	base, stop, err := serveBenchEnv(dir+"/closed", tuples, seed, server.Config{})
	if err != nil {
		return nil, fmt.Errorf("bench: serve closed-loop env: %w", err)
	}
	clientCounts := []int{1, procs, 4 * procs}
	var capacity float64
	for _, n := range clientCounts {
		pt := closedLoopPoint(base, templates, n, seed, pointDur)
		if pt.ThroughputQPS > capacity {
			capacity = pt.ThroughputQPS
		}
		res.Points = append(res.Points, pt)
	}
	stop()

	// Open loop: offer near measured capacity (bounded so the arrival
	// generator itself stays honest) with the quota at half that, so the
	// bucket — not the queue — does the shedding and the 429s are cheap.
	offered := capacity
	if offered > 2000 {
		offered = 2000
	}
	if offered < 50 {
		offered = 50
	}
	quota := offered / 2
	base, stop, err = serveBenchEnv(dir+"/open", tuples, seed, server.Config{
		QPS:   quota / float64(len(serveBenchTenants)),
		Burst: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: serve open-loop env: %w", err)
	}
	pt := openLoopPoint(base, templates, offered, seed, pointDur)
	pt.QuotaQPS = quota
	res.Points = append(res.Points, pt)
	stop()

	return res, nil
}
