package core

import (
	"fmt"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/vector"
)

// flushThreshold is the pending-bit budget per attribute before a partial
// flush to the attribute's chain during Build.
const flushThreshold = 64 << 10 * 8 // 64 KiB in bits

// Build constructs an iVA-file over every record of tbl into f (whose
// previous contents are discarded). Records must be stored in increasing
// tid order, which the table guarantees for append-only and rebuilt files.
func Build(tbl *table.Table, f *storage.File, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	codec, err := signature.NewCodec(opts.N, opts.Alpha)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(0); err != nil {
		return nil, err
	}
	segs, err := storage.NewSegStore(f, superblockSize, opts.SegmentSize)
	if err != nil {
		return nil, err
	}

	// Packed tid width: current id space plus headroom for future inserts.
	headroom := opts.TIDHeadroom
	if headroom <= 0 {
		headroom = tbl.Total() / 4
		if headroom < 1024 {
			headroom = 1024
		}
	}
	ltid := bitio.BitsFor(uint64(tbl.NextTID()) + uint64(headroom))
	if ltid > 32 {
		ltid = 32
	}

	ix := &Index{
		opts:     opts,
		f:        f,
		segs:     segs,
		codec:    codec,
		tbl:      tbl,
		ltid:     ltid,
		posByTID: make(map[model.TID]int64),
		// A fresh build writes the current format directly: Sync must not take
		// its upgrade path (which would allocate a second checkpoint chain).
		version:   indexVersion,
		imode:     opts.Integrity,
		crcChainA: storage.NoSegment,
		crcChainB: storage.NoSegment,
	}
	// Arm checksum tracking before any chain is written; the full-map flag
	// makes Build's final Sync compute every covered segment's word.
	ix.initIntegrity(true)
	if ix.tupleChain, err = segs.Create(); err != nil {
		return nil, err
	}
	if ix.attrChain, err = segs.Create(); err != nil {
		return nil, err
	}
	if ix.attrChainB, err = segs.Create(); err != nil {
		return nil, err
	}
	// Build's final Sync is the file's first commit; start on slot B so it
	// targets slot A (see Sync's ping-pong rule).
	ix.attrSlot = 1
	if ix.ckptChain, err = segs.Create(); err != nil {
		return nil, err
	}
	ix.ckptEvery = opts.CheckpointEvery
	if ix.zoneChain, err = segs.Create(); err != nil {
		return nil, err
	}
	ix.zoneOff = opts.DisableZoneMaps
	// A fresh build observes every tuple from position 0, so every sealed
	// stripe gets a known zone record.
	ix.zacc.reset(true)

	// Lay out one vector list per attribute.
	infos := tbl.Catalog().Attrs()
	tupleEntries := tbl.Total()
	builders := make([]*listBuilder, len(infos))
	var positional []model.AttrID
	for id, info := range infos {
		attrCodec := codec
		alpha := opts.Alpha
		if o, ok := opts.AlphaOverride[model.AttrID(id)]; ok {
			if attrCodec, err = signature.NewCodec(opts.N, o); err != nil {
				return nil, fmt.Errorf("core: attribute %q: %w", info.Name, err)
			}
			alpha = o
		}
		layout, quant, err := chooseLayout(opts, attrCodec, info, ltid, tupleEntries)
		if err != nil {
			return nil, fmt.Errorf("core: attribute %q: %w", info.Name, err)
		}
		chain, err := segs.Create()
		if err != nil {
			return nil, err
		}
		st := attrState{layout: layout, chain: chain, alpha: alpha, quant: quant, exists: true}
		// Only tid-bearing organizations benefit from the packed codec's
		// delta transform; positional lists stay raw (codec 0) so their
		// absolute-seek reads keep costing nothing.
		if opts.Codec == int(vector.CodecPacked) &&
			(layout.Type == vector.TypeI || layout.Type == vector.TypeII) {
			st.codecID = vector.CodecPacked
		}
		ix.attrs = append(ix.attrs, st)
		b, err := newListBuilder(ix, model.AttrID(id))
		if err != nil {
			return nil, err
		}
		builders[id] = b
		if layout.Type == vector.TypeIII || layout.Type == vector.TypeIV {
			positional = append(positional, model.AttrID(id))
		}
	}

	// Single pass over the table: emit tuple-list elements and vector-list
	// elements in tuple order.
	var tupleW bitio.Writer
	lastTID := model.TID(0)
	first := true
	err = tbl.Scan(func(ptr int64, tp *model.Tuple) error {
		if !first && tp.TID <= lastTID {
			return fmt.Errorf("core: table not in tid order (%d after %d)", tp.TID, lastTID)
		}
		first, lastTID = false, tp.TID
		if tp.TID > ix.maxTID() {
			return fmt.Errorf("core: tid %d exceeds packed width %d bits", tp.TID, ix.ltid)
		}
		if uint64(ptr) >= tombstonePtr {
			return fmt.Errorf("core: table offset %d exceeds %d ptr bits", ptr, ptrBits)
		}
		pos := int64(len(ix.entries))
		if pos%ix.ckptEvery == 0 {
			// Stripe boundary: packed lists seal the finished stripe into a
			// block container first (after which their buffers are empty and
			// bitLen covers the stripe), then each attribute's next element
			// header sits at its flushed length plus whatever the builder
			// still buffers.
			for _, b := range builders {
				if err := b.sealStripe(); err != nil {
					return err
				}
			}
			ix.recordCheckpoint(pos, ix.currentAttrOffsets(func(a int) int64 {
				return int64(builders[a].w.Len())
			}))
		}
		tupleW.WriteBits(uint64(tp.TID), ix.ltid)
		tupleW.WriteBits(uint64(ptr), ptrBits)
		if tupleW.Len() >= flushThreshold {
			if err := ix.flushTupleList(&tupleW); err != nil {
				return err
			}
		}
		ix.entries = append(ix.entries, tupleEntry{tid: tp.TID, ptr: ptr})
		ix.posByTID[tp.TID] = pos
		ix.zoneObserve(tp.Values)

		// Defined attributes.
		for _, a := range tp.Attrs() {
			if err := builders[a].add(tp.TID, tp.Values[a]); err != nil {
				return err
			}
		}
		// Positional lists need explicit ndf elements for this tuple.
		for _, a := range positional {
			if _, ok := tp.Values[a]; ok {
				continue
			}
			if err := builders[a].addNDF(tp.TID); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := ix.flushTupleList(&tupleW); err != nil {
		return nil, err
	}
	for _, b := range builders {
		if err := b.flush(); err != nil {
			return nil, err
		}
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}
	return ix, nil
}

func (ix *Index) flushTupleList(w *bitio.Writer) error {
	if w.Len() == 0 {
		return nil
	}
	n, err := storage.AppendBits(ix.segs, ix.tupleChain, ix.tupleBits, w.Bytes(), w.Len())
	if err != nil {
		return err
	}
	ix.tupleBits = n
	w.Reset()
	return nil
}

// listBuilder accumulates one attribute's vector list during Build and
// flushes it to the attribute's chain in batches.
type listBuilder struct {
	ix   *Index
	attr model.AttrID
	enc  *vector.Encoder
	w    bitio.Writer
}

func newListBuilder(ix *Index, attr model.AttrID) (*listBuilder, error) {
	enc, err := vector.NewEncoder(ix.attrs[attr].layout)
	if err != nil {
		return nil, err
	}
	return &listBuilder{ix: ix, attr: attr, enc: enc}, nil
}

// add appends the element(s) for one defined value.
func (b *listBuilder) add(tid model.TID, v model.Value) error {
	st := &b.ix.attrs[b.attr]
	switch st.layout.Kind {
	case model.KindText:
		sigs := make([]signature.Sig, len(v.Strs))
		for i, s := range v.Strs {
			sigs[i] = st.layout.Codec.Encode(s)
		}
		if err := b.enc.EncodeText(&b.w, tid, sigs); err != nil {
			return err
		}
	case model.KindNumeric:
		if err := b.enc.EncodeNumeric(&b.w, tid, st.quant.Encode(v.Num), false); err != nil {
			return err
		}
	}
	return b.maybeFlush()
}

// addNDF appends an explicit ndf element (positional lists only).
func (b *listBuilder) addNDF(tid model.TID) error {
	st := &b.ix.attrs[b.attr]
	var err error
	if st.layout.Kind == model.KindText {
		err = b.enc.EncodeText(&b.w, tid, nil)
	} else {
		err = b.enc.EncodeNumeric(&b.w, tid, 0, true)
	}
	if err != nil {
		return err
	}
	return b.maybeFlush()
}

func (b *listBuilder) maybeFlush() error {
	// Packed lists must buffer whole stripes: sealStripe flushes them at
	// each checkpoint boundary instead of at a byte budget.
	if b.ix.attrs[b.attr].codecID != vector.CodecRaw {
		return nil
	}
	if b.w.Len() < flushThreshold {
		return nil
	}
	return b.flush()
}

func (b *listBuilder) flush() error {
	st := &b.ix.attrs[b.attr]
	if st.codecID != vector.CodecRaw {
		// The final partial stripe seals like a full one, so a fresh build
		// leaves no raw tail at all.
		return b.sealStripe()
	}
	if b.w.Len() == 0 {
		return nil
	}
	n, err := storage.AppendBits(b.ix.segs, st.chain, st.bitLen, b.w.Bytes(), b.w.Len())
	if err != nil {
		return err
	}
	st.bitLen = n
	b.w.Reset()
	return nil
}

// sealStripe transcodes the buffered stripe of a packed attribute into one
// self-describing block container and appends it word-aligned behind the
// coded region. No-op for codec-0 attributes and empty buffers. During
// Build the tail is always empty, so physBits() is exactly codedWords*64
// and blocks stay word-aligned in the physical stream.
func (b *listBuilder) sealStripe() error {
	st := &b.ix.attrs[b.attr]
	if st.codecID == vector.CodecRaw || b.w.Len() == 0 {
		return nil
	}
	cdc, ok := vector.CodecByID(st.codecID)
	if !ok {
		return fmt.Errorf("core: attr %d: unknown codec %d", b.attr, st.codecID)
	}
	words, err := cdc.Seal(st.layout, b.w.Bytes(), int64(b.w.Len()))
	if err != nil {
		return err
	}
	var pw bitio.Writer
	for _, x := range words {
		pw.WriteBits(x, 64)
	}
	if _, err := storage.AppendBits(b.ix.segs, st.chain, st.physBits(), pw.Bytes(), pw.Len()); err != nil {
		return err
	}
	st.dir = append(st.dir, vector.BlockMeta{
		PhysWord: st.codedWords, LogicalStart: st.codedLogical, LogicalBits: int64(b.w.Len()),
	})
	st.codedWords += int64(len(words))
	st.codedLogical += int64(b.w.Len())
	st.bitLen += int64(b.w.Len())
	b.w.Reset()
	return nil
}
