package core

import (
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
)

func TestInsertBatchMatchesSingleInserts(t *testing.T) {
	a := newFixture(t, 80, Options{}, 701)
	b := newFixture(t, 80, Options{}, 701) // identical twin

	var batch []map[model.AttrID]model.Value
	for i := 0; i < 50; i++ {
		batch = append(batch, a.randValues())
	}
	tids, err := a.ix.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 50 || tids[0] != 80 || tids[49] != 129 {
		t.Fatalf("tids = %v...%v (%d)", tids[0], tids[len(tids)-1], len(tids))
	}
	for _, vals := range batch {
		if _, err := b.ix.Insert(vals); err != nil {
			t.Fatal(err)
		}
	}

	m := metric.Default()
	for trial := 0; trial < 12; trial++ {
		q := a.randQuery(t, 2, 8)
		ra, _, err := a.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDistances(ra, rb) {
			t.Fatalf("trial %d: batch and single inserts diverge\n%v\n%v", trial, ra, rb)
		}
	}
	// And the batched index passes its own fsck.
	rep, err := a.ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("batched index inconsistent: %v", rep.Problems)
	}
}

func TestInsertBatchEmptyAndErrors(t *testing.T) {
	fx := newFixture(t, 10, Options{}, 702)
	if tids, err := fx.ix.InsertBatch(nil); err != nil || tids != nil {
		t.Fatalf("empty batch: %v %v", tids, err)
	}
	if _, err := fx.ix.InsertBatch([]map[model.AttrID]model.Value{{}}); err == nil {
		t.Fatal("empty tuple accepted")
	}
	// Overflow reported with nothing inserted.
	small := newFixture(t, 10, Options{TIDHeadroom: 4}, 703)
	before := small.ix.Entries()
	var big []map[model.AttrID]model.Value
	for i := 0; i < 50; i++ {
		big = append(big, small.randValues())
	}
	if _, err := small.ix.InsertBatch(big); err != ErrNeedsRebuild {
		t.Fatalf("err = %v, want ErrNeedsRebuild", err)
	}
	if small.ix.Entries() != before {
		t.Fatal("failed batch mutated the index")
	}
}

func BenchmarkInsertBatch100(b *testing.B) {
	fx := newFixture(b, 100, Options{TIDHeadroom: 1 << 26}, 704)
	batch := make([]map[model.AttrID]model.Value, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = fx.randValues()
		}
		if _, err := fx.ix.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
