package core

import (
	"math"
	"sort"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/vector"
)

// PlanStats compares the VA-file's two-phase sequential plan against the
// iVA-file's parallel plan on one query (§IV-A). The sequential plan scans
// the whole index first, keeps every tuple whose lower-bound distance is at
// most the k-th smallest upper-bound distance, and only then fetches the
// candidates. It requires a meaningful *upper* bound per tuple — available
// for numeric slices, impossible for unlimited-length strings, which is why
// the paper replaces it with the parallel plan.
type PlanStats struct {
	Scanned int64
	// SequentialCandidates is the fetch set the two-phase plan would check.
	SequentialCandidates int64
	// KthUpperBound is the pruning bar of the sequential plan (+Inf when
	// any text term makes upper bounds vacuous).
	KthUpperBound float64
	// ParallelFetches is what Algorithm 1 actually fetched on the same
	// query (from a normal Search run).
	ParallelFetches int64
}

// SequentialPlanStats runs the filter pass of the classic VA-file plan and
// reports the resulting candidate-set size next to the parallel plan's
// fetch count. It performs no refinement fetches of its own.
func (ix *Index) SequentialPlanStats(q *model.Query, m *metric.Metric) (PlanStats, error) {
	var ps PlanStats
	if err := q.Validate(); err != nil {
		return ps, err
	}
	if m == nil {
		m = metric.Default()
	}
	// Parallel-plan reference.
	_, sstats, err := ix.Search(q, m)
	if err != nil {
		return ps, err
	}
	ps.ParallelFetches = sstats.TableAccesses

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var rds readerSet
	defer rds.close()
	terms := make([]termState, len(q.Terms))
	for i, term := range q.Terms {
		ts := termState{term: term}
		if int(term.Attr) < len(ix.attrs) && ix.attrs[term.Attr].exists {
			st := &ix.attrs[term.Attr]
			src, err := ix.termSource(st, rds.open(ix, st.chain, st.physBits()))
			if err != nil {
				return ps, err
			}
			cur, err := vector.NewCursor(st.layout, src)
			if err != nil {
				return ps, err
			}
			ts.st, ts.cursor = st, cur
		}
		if term.Kind == model.KindText {
			codec := ix.codec
			if ts.st != nil && ts.st.layout.Codec != nil {
				codec = ts.st.layout.Codec
			}
			ts.qs = codec.NewQueryString(term.Str)
		}
		terms[i] = ts
	}

	lowers := make([]float64, 0, len(ix.entries))
	uppers := make([]float64, 0, len(ix.entries))
	lo := make([]float64, len(terms))
	hi := make([]float64, len(terms))
	tr := rds.open(ix, ix.tupleChain, ix.tupleBits)
	for pos := int64(0); pos < int64(len(ix.entries)); pos++ {
		tidBits, err := tr.ReadBits(ix.ltid)
		if err != nil {
			return ps, err
		}
		ptr, err := tr.ReadBits(ptrBits)
		if err != nil {
			return ps, err
		}
		if ptr == tombstonePtr {
			continue
		}
		ps.Scanned++
		tid := model.TID(tidBits)
		for i := range terms {
			l, u, err := terms[i].bounds(m, tid, pos)
			if err != nil {
				return ps, err
			}
			lo[i], hi[i] = l, u
		}
		lowers = append(lowers, m.Distance(q.Terms, lo))
		uppers = append(uppers, m.Distance(q.Terms, hi))
	}

	// Pruning bar: k-th smallest upper bound.
	k := q.K
	if k > len(uppers) {
		k = len(uppers)
	}
	if k == 0 {
		return ps, nil
	}
	sort.Float64s(uppers)
	ps.KthUpperBound = uppers[k-1]
	for _, l := range lowers {
		if l <= ps.KthUpperBound {
			ps.SequentialCandidates++
		}
	}
	return ps, nil
}

// bounds returns the per-term lower and upper bound of d[A](T,Q) from the
// tuple's approximation vector. Text values have no finite upper bound (an
// unlimited number of strings share any signature); ndf is exact on both
// sides.
func (ts *termState) bounds(m *metric.Metric, tid model.TID, pos int64) (lower, upper float64, err error) {
	if ts.cursor == nil {
		return m.NDFPenalty, m.NDFPenalty, nil
	}
	e, err := ts.cursor.MoveTo(tid, pos)
	if err != nil {
		return 0, 0, err
	}
	if e.NDF {
		return m.NDFPenalty, m.NDFPenalty, nil
	}
	switch ts.term.Kind {
	case model.KindText:
		best := math.Inf(1)
		for i := range e.Sigs {
			if d := ts.qs.Est(e.Sigs[i]); d < best {
				best = d
			}
		}
		return best, math.Inf(1), nil
	case model.KindNumeric:
		return ts.st.quant.MinDist(ts.term.Num, e.Code),
			ts.st.quant.MaxDist(ts.term.Num, e.Code), nil
	}
	return m.NDFPenalty, m.NDFPenalty, nil
}
