package core

import (
	"encoding/binary"
	"fmt"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
)

// Stripe zone maps (format v5). Every sealed stripe — a full run of
// ckptEvery tuple-list entries — carries one zone record summarizing, per
// attribute, the information needed to lower-bound the estimated distance of
// ANY tuple in the stripe for an arbitrary query:
//
//   - numeric attributes: the min/max quantizer code observed, so
//     vaq.MinDistRange bounds every per-tuple MinDist from below;
//   - text attributes: the min/max data-string length observed, so
//     signature.MinEstLenRange (every query gram assumed to hit) bounds
//     every per-tuple Est from below;
//   - whether any tuple in the stripe is ndf on the attribute (the bound
//     must then also admit the constant ndf penalty);
//   - the stripe's live (non-tombstoned) tuple count.
//
// Both query plans consult the record at stripe-claim time: combining the
// per-term minima through the (monotone) metric yields a distance no tuple
// in the stripe can beat, and when even that exceeds the shared admission
// bar — the existing strict est > bar rule — the whole stripe is skipped
// without opening a cursor. Every skipped tuple would have been pruned (or
// refined into a pool slot it cannot win: its exact distance is above a full
// pool's bar), so results stay byte-identical; only the I/O disappears.
//
// Records live in their own segment chain, whole-chain rewritten by Sync
// (deletes mutate live counts, so unlike checkpoints the chain is not
// append-stable; the authoritative count is in the superblock). Tombstones
// are written through to the tuple list immediately, so a live count from an
// older commit only over-counts — conservative in the safe direction. Each
// record carries a CRC32C trailer folded with its index; damage found at
// open drops all zone records under DegradeReads (pruning disabled, answers
// unchanged) and fails the open under Strict. Stripes whose summary was
// never observed (the accumulator was cold after a mid-stripe reopen) seal
// as explicit "unknown" records so record s always describes stripe s.

// zoneAttr is one attribute's summary inside a sealed stripe's zone record.
type zoneAttr struct {
	defined bool // some live-at-seal tuple defines the attribute
	anyNDF  bool // some tuple in the stripe is ndf on it
	numeric bool // payload is a code range; otherwise a string-length range
	minCode uint64
	maxCode uint64
	minLen  uint8
	maxLen  uint8
}

// zoneRec summarizes one sealed stripe.
type zoneRec struct {
	known bool
	live  int64 // decremented in memory by deletes, persisted next Sync
	attrs []zoneAttr
}

// zoneAttrAcc accumulates one attribute's summary for the open stripe.
type zoneAttrAcc struct {
	defined int64
	minCode uint64
	maxCode uint64
	minLen  int
	maxLen  int
}

// zoneAcc accumulates the open (not yet sealed) stripe. valid is false when
// some of the stripe's entries predate this Index instance (reopened mid-
// stripe): the stripe then seals as an unknown record.
type zoneAcc struct {
	valid bool
	count int64
	live  int64
	attrs []zoneAttrAcc
}

func (z *zoneAcc) reset(valid bool) {
	z.valid = valid
	z.count = 0
	z.live = 0
	z.attrs = z.attrs[:0]
}

// zonesEnabled reports whether this index records zone maps (false for
// pre-v5 files until their upgrade Sync, and after zone damage was degraded
// around at open).
func (ix *Index) zonesEnabled() bool { return ix.zoneChain != storage.NoSegment }

// zonePruneEligible reports whether stripe-claim pruning can run right now.
func (ix *Index) zonePruneEligible() bool {
	return !ix.zoneOff && len(ix.zones) > 0
}

// SetZoneMaps toggles zone-map stripe pruning at runtime. Results are
// byte-identical either way (the differential oracle proves it); recording
// is unaffected, so re-enabling restores full pruning.
func (ix *Index) SetZoneMaps(enabled bool) {
	ix.mu.Lock()
	ix.zoneOff = !enabled
	ix.opts.DisableZoneMaps = !enabled
	ix.mu.Unlock()
}

// ZoneMapsOn reports whether stripe pruning is enabled (it still needs
// sealed zone records to have any effect).
func (ix *Index) ZoneMapsOn() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return !ix.zoneOff && ix.zonesEnabled()
}

// ZoneMapCoverage reports how many stripes carry a usable (known) zone
// record out of the sealed stripes the tuple list implies. A freshly built
// index covers everything; upgraded pre-v5 files start at zero and grow as
// new stripes seal (a rebuild covers the backlog).
func (ix *Index) ZoneMapCoverage() (known, sealed int) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.ckptEvery > 0 {
		sealed = int(int64(len(ix.entries)) / ix.ckptEvery)
	}
	for i := range ix.zones {
		if ix.zones[i].known {
			known++
		}
	}
	return known, sealed
}

// DroppedZones returns the number of zone records discarded at open because
// their CRC trailer failed (DegradeReads only).
func (ix *Index) DroppedZones() int {
	it := &ix.integ
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.droppedZones
}

// --- recording -------------------------------------------------------------

// zoneObserve folds the values of the entry just appended at the tail into
// the open stripe's accumulator, sealing a zone record when the stripe
// fills. Caller holds ix.mu and has already appended to ix.entries.
func (ix *Index) zoneObserve(values map[model.AttrID]model.Value) {
	if !ix.zonesEnabled() {
		return
	}
	acc := &ix.zacc
	acc.count++
	acc.live++
	if acc.valid {
		for len(acc.attrs) < len(ix.attrs) {
			acc.attrs = append(acc.attrs, zoneAttrAcc{})
		}
		for a, v := range values {
			if int(a) >= len(acc.attrs) {
				continue
			}
			za := &acc.attrs[a]
			switch ix.attrs[a].layout.Kind {
			case model.KindNumeric:
				if q := ix.attrs[a].quant; q != nil {
					code := q.Encode(v.Num)
					if za.defined == 0 || code < za.minCode {
						za.minCode = code
					}
					if za.defined == 0 || code > za.maxCode {
						za.maxCode = code
					}
					za.defined++
				}
			case model.KindText:
				if len(v.Strs) == 0 {
					continue // no strings: indistinguishable from ndf
				}
				for _, s := range v.Strs {
					if za.defined == 0 && za.minLen == 0 && za.maxLen == 0 {
						za.minLen, za.maxLen = len(s), len(s)
						continue
					}
					if len(s) < za.minLen {
						za.minLen = len(s)
					}
					if len(s) > za.maxLen {
						za.maxLen = len(s)
					}
				}
				za.defined++
			}
		}
	}
	// Seal on the entry count, not the accumulator count: after a mid-stripe
	// upgrade the accumulator starts cold partway through a stripe and its
	// count never equals the stripe width at the boundary.
	if int64(len(ix.entries))%ix.ckptEvery == 0 {
		ix.zoneSeal()
	}
}

// zoneSeal converts the accumulator into the zone record of the stripe that
// just filled and resets the accumulator for the next one.
func (ix *Index) zoneSeal() {
	acc := &ix.zacc
	want := int64(len(ix.entries))/ix.ckptEvery - 1
	if int64(len(ix.zones)) != want {
		// Defensive, mirroring recordCheckpoint: a gap would make record s
		// describe the wrong stripe. Disable zone maps rather than prune on
		// wrong bounds; the next rebuild re-records a full set.
		ix.zoneChain = storage.NoSegment
		ix.zones = nil
		acc.reset(false)
		return
	}
	rec := zoneRec{known: acc.valid, live: acc.live}
	if acc.valid {
		rec.attrs = make([]zoneAttr, len(ix.attrs))
		for a := range rec.attrs {
			var za zoneAttrAcc
			if a < len(acc.attrs) {
				za = acc.attrs[a]
			}
			rec.attrs[a] = zoneAttr{
				defined: za.defined > 0,
				anyNDF:  za.defined < acc.count,
				numeric: ix.attrs[a].exists && ix.attrs[a].layout.Kind == model.KindNumeric,
				minCode: za.minCode,
				maxCode: za.maxCode,
				minLen:  uint8(za.minLen),
				maxLen:  uint8(za.maxLen),
			}
		}
	}
	ix.zones = append(ix.zones, rec)
	acc.reset(true)
}

// zoneNoteDelete lowers the live count of the stripe holding pos. The
// min/max summaries keep describing a superset of the survivors — still a
// valid lower bound — and a stripe whose live count reaches zero is skipped
// unconditionally.
func (ix *Index) zoneNoteDelete(pos int64) {
	if !ix.zonesEnabled() {
		return
	}
	if s := pos / ix.ckptEvery; s < int64(len(ix.zones)) {
		if ix.zones[s].known && ix.zones[s].live > 0 {
			ix.zones[s].live--
		}
	} else if ix.zacc.live > 0 {
		ix.zacc.live--
	}
}

// --- query-time bound ------------------------------------------------------

// zoneBound computes the minimum estimated distance any live tuple in stripe
// s can have for this query: per term the best case the zone record allows,
// combined through the metric (monotone in every coordinate). ok is false
// when no usable record exists (unsealed tail stripe, unknown record, zone
// maps off); empty marks a stripe with no live tuples, skippable regardless
// of the bar. diffs is caller-provided scratch of len(terms).
func (ix *Index) zoneBound(s int64, terms []termState, q *model.Query, m *metric.Metric, diffs []float64) (est float64, empty, ok bool) {
	if !ix.zonePruneEligible() || s >= int64(len(ix.zones)) {
		return 0, false, false
	}
	rec := &ix.zones[s]
	if !rec.known {
		return 0, false, false
	}
	if rec.live <= 0 {
		return 0, true, true
	}
	for i := range terms {
		ts := &terms[i]
		if ts.st == nil {
			// Attribute unknown to the index: every tuple is ndf on it, so
			// the penalty is the exact per-tuple difference, not a bound.
			diffs[i] = m.NDFPenalty
			continue
		}
		a := int(ts.term.Attr)
		if a >= len(rec.attrs) {
			// Attribute registered after the stripe sealed: none of its
			// tuples can define it.
			diffs[i] = m.NDFPenalty
			continue
		}
		za := &rec.attrs[a]
		if !za.defined {
			diffs[i] = m.NDFPenalty
			continue
		}
		var best float64
		switch {
		case za.numeric && ts.term.Kind == model.KindNumeric && ts.st.quant != nil:
			best = ts.st.quant.MinDistRange(ts.term.Num, za.minCode, za.maxCode)
		case !za.numeric && ts.term.Kind == model.KindText && ts.qs != nil:
			best = ts.qs.MinEstLenRange(int(za.minLen), int(za.maxLen))
		default:
			// Record kind disagrees with the live layout (stale or hostile
			// bytes that still passed CRC): no usable summary — a zero bound
			// never prunes on this term.
			best = 0
		}
		if za.anyNDF && m.NDFPenalty < best {
			best = m.NDFPenalty
		}
		diffs[i] = best
	}
	return m.Distance(q.Terms, diffs), false, true
}

// --- persistence -----------------------------------------------------------

// Zone chain layout (little-endian, byte-aligned):
//
//	u32 count
//	count × record:
//	  u8 flags (bit0 = known)
//	  known records add: u32 live | u32 nattrs | nattrs × attr
//	    attr: u8 aflags (bit0 defined, bit1 anyNDF, bit2 numeric)
//	          numeric: u64 minCode | u64 maxCode
//	          text:    u8 minLen | u8 maxLen
//	  u32 crc (CRC32C of the record bytes folded with the record index)
//
// The per-attr payload width is self-described by aflags bit2 so records
// parse without the attribute list; a disagreement with the live layout is
// handled at query time (the term contributes a zero bound, never a prune).
const zoneTrailerLen = 4

// zoneRecordCRC folds a serialized zone record with its index — the same
// position-binding rule as checkpoint records.
func zoneRecordCRC(rec []byte, index int) uint32 { return ckptRecordCRC(rec, index) }

// appendZoneRec serializes one record (without its trailer) onto blob.
func appendZoneRec(blob []byte, z *zoneRec) []byte {
	if !z.known {
		return append(blob, 0)
	}
	blob = append(blob, 1)
	live := z.live
	if live < 0 {
		live = 0
	}
	blob = binary.LittleEndian.AppendUint32(blob, uint32(live))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(z.attrs)))
	for i := range z.attrs {
		za := &z.attrs[i]
		var fl byte
		if za.defined {
			fl |= 1
		}
		if za.anyNDF {
			fl |= 2
		}
		if za.numeric {
			fl |= 4
		}
		blob = append(blob, fl)
		if za.numeric {
			blob = binary.LittleEndian.AppendUint64(blob, za.minCode)
			blob = binary.LittleEndian.AppendUint64(blob, za.maxCode)
		} else {
			blob = append(blob, za.minLen, za.maxLen)
		}
	}
	return blob
}

// writeZones serializes the whole zone chain. Called by Sync before the
// superblock commit; the committed count rides in the superblock.
func (ix *Index) writeZones() error {
	if !ix.zonesEnabled() {
		return nil
	}
	blob := binary.LittleEndian.AppendUint32(nil, uint32(len(ix.zones)))
	for i := range ix.zones {
		start := len(blob)
		blob = appendZoneRec(blob, &ix.zones[i])
		blob = binary.LittleEndian.AppendUint32(blob, zoneRecordCRC(blob[start:], i))
	}
	if err := ix.segs.WriteAt(ix.zoneChain, blob, 0); err != nil {
		return err
	}
	ix.zoneDiskRecs = len(ix.zones)
	return nil
}

// readZoneRec parses the record at off, returning the record, the bytes
// consumed (including the trailer), and whether it verified. Used by both
// readZones and scrubZones.
func (ix *Index) readZoneRec(off int64, index int) (zoneRec, int64, bool, error) {
	var rec []byte
	pos := off
	read := func(n int) ([]byte, bool) {
		p := make([]byte, n)
		if err := ix.segs.ReadAt(ix.zoneChain, p, pos); err != nil {
			return nil, false
		}
		pos += int64(n)
		rec = append(rec, p...)
		return p, true
	}
	fl, ok := read(1)
	if !ok {
		return zoneRec{}, 0, false, nil
	}
	var z zoneRec
	if fl[0]&1 != 0 {
		z.known = true
		hdr, ok := read(8)
		if !ok {
			return zoneRec{}, 0, false, nil
		}
		z.live = int64(binary.LittleEndian.Uint32(hdr[0:4]))
		nattrs := int(binary.LittleEndian.Uint32(hdr[4:8]))
		if nattrs > len(ix.attrs) {
			// Implausible count: the attrs word is inside the damage the
			// trailer would have caught — treat as a failed record.
			return zoneRec{}, 0, false, nil
		}
		z.attrs = make([]zoneAttr, nattrs)
		for a := 0; a < nattrs; a++ {
			af, ok := read(1)
			if !ok {
				return zoneRec{}, 0, false, nil
			}
			za := &z.attrs[a]
			za.defined = af[0]&1 != 0
			za.anyNDF = af[0]&2 != 0
			za.numeric = af[0]&4 != 0
			if za.numeric {
				p, ok := read(16)
				if !ok {
					return zoneRec{}, 0, false, nil
				}
				za.minCode = binary.LittleEndian.Uint64(p[0:8])
				za.maxCode = binary.LittleEndian.Uint64(p[8:16])
			} else {
				p, ok := read(2)
				if !ok {
					return zoneRec{}, 0, false, nil
				}
				za.minLen, za.maxLen = p[0], p[1]
			}
		}
	}
	var tr [zoneTrailerLen]byte
	if err := ix.segs.ReadAt(ix.zoneChain, tr[:], pos); err != nil {
		return zoneRec{}, 0, false, nil
	}
	pos += zoneTrailerLen
	if binary.LittleEndian.Uint32(tr[:]) != zoneRecordCRC(rec, index) {
		return zoneRec{}, 0, false, nil
	}
	return z, pos - off, true, nil
}

// readZones loads the committed zone records at open. count comes from the
// superblock (v5); it is clamped to the sealed stripes the committed entry
// count implies, bounding allocation against hostile counts.
func (ix *Index) readZones(count int) error {
	if !ix.zonesEnabled() {
		return nil
	}
	if max := int(int64(len(ix.entries)) / ix.ckptEvery); count > max {
		count = max
	}
	if count < 0 {
		count = 0
	}
	ix.zones = make([]zoneRec, 0, count)
	off := int64(4)
	for i := 0; i < count; i++ {
		z, n, okRec, err := ix.readZoneRec(off, i)
		if err != nil {
			return err
		}
		if !okRec {
			return ix.corruptZone(i, count)
		}
		off += n
		ix.zones = append(ix.zones, z)
	}
	ix.zoneDiskRecs = len(ix.zones)
	return nil
}

// corruptZone handles a zone record that failed verification at open. Strict
// fails the open. DegradeReads drops every record — framing past the damage
// is untrustworthy, and a truncated set would break the record-per-stripe
// alignment future seals rely on — so zone maps are disabled in-memory:
// queries simply stop pruning (answers unchanged) until the next rebuild
// re-records a full set. droppedZones counts the discarded records.
func (ix *Index) corruptZone(i, count int) error {
	if ix.imode == IntegrityStrict {
		return &storage.CorruptionError{File: "iva.idx",
			Offset: ix.segs.SegmentOffset(ix.zoneChain), Segment: uint32(ix.zoneChain),
			Detail: fmt.Sprintf("zone-map record %d checksum mismatch", i)}
	}
	it := &ix.integ
	it.mu.Lock()
	it.droppedZones = count - i
	it.mu.Unlock()
	ix.zoneChain = storage.NoSegment
	ix.zones = nil
	ix.zoneDiskRecs = 0
	ix.zacc.reset(false)
	return nil
}

// scrubZones re-reads the committed zone records, verifying each trailer.
// Framing past a damaged record is untrustworthy, so the remainder is
// counted corrupt and the sweep stops — the same rule as scrubCheckpoints.
func (ix *Index) scrubZones(count int, yield func()) (checked, bad int, err error) {
	off := int64(4)
	for i := 0; i < count; i++ {
		if yield != nil {
			yield()
		}
		_, n, okRec, err := ix.readZoneRec(off, i)
		if err != nil {
			return checked, count - i, nil
		}
		if !okRec {
			return checked, count - i, nil
		}
		off += n
		checked++
	}
	return checked, 0, nil
}

// ZoneExtents lists the committed byte spans of the zone-map chain in the
// index file, for fault-injection harnesses: a flip inside these spans must
// be detected (open under Strict, or scrub) and must only ever disable
// pruning, never change answers.
func (ix *Index) ZoneExtents() []VectorExtent {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.zonesEnabled() || ix.zoneDiskRecs == 0 {
		return nil
	}
	// Record sizes depend only on the known flag and the attr kinds, which
	// never mutate after sealing — so the committed blob length is computable
	// from the in-memory records even after deletes changed live counts.
	size := int64(4)
	for i := 0; i < ix.zoneDiskRecs && i < len(ix.zones); i++ {
		size += int64(len(appendZoneRec(nil, &ix.zones[i]))) + zoneTrailerLen
	}
	ids, err := ix.segs.ChainSegments(ix.zoneChain)
	if err != nil {
		return nil
	}
	pay := int64(ix.segs.PayloadSize())
	var out []VectorExtent
	for k, id := range ids {
		lo, hi := int64(k)*pay, int64(k+1)*pay
		if hi > size {
			hi = size
		}
		if lo < 4 {
			// The chain's count header is excluded: the authoritative count is
			// in the superblock, so those 4 bytes are never read back and carry
			// no CRC — a flip there must not be "expected detected".
			lo = 4
		}
		if hi <= lo {
			continue
		}
		out = append(out, VectorExtent{Offset: ix.segs.SegmentOffset(id) + 8 + (lo - int64(k)*pay), Len: hi - lo})
	}
	return out
}
