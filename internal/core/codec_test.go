package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/vector"
)

// codecPair builds the SAME table twice — once per codec — so every check
// can diff the packed engine against the raw reference byte-for-byte. The
// attribute mix covers the packed cases: a sparse text attribute (Type I/II
// text), a sparse numeric one (tid-bearing numeric list), and a dense
// numeric one that typically lands positional and must stay raw.
type codecPair struct {
	devs [2]struct {
		tblDev, idxDev *storage.MemDevice
	}
	// One catalog per engine: the catalog accumulates df counters as rows
	// are appended, so sharing one would double every count.
	cats           [2]*table.Catalog
	tbls           [2]*table.Table
	ixs            [2]*Index // [0] codec 0, [1] codec 1
	num, spn, txt  model.AttrID
	rows           int
	ckptEvery      int64
	closers        []func()
}

func (p *codecPair) close() {
	for _, c := range p.closers {
		c()
	}
}

func (p *codecPair) row(i int) map[model.AttrID]model.Value {
	vals := map[model.AttrID]model.Value{p.num: model.Num(float64(i%41) * 2)}
	if i%4 == 0 {
		vals[p.spn] = model.Num(float64(i % 17))
	}
	if i%3 == 0 {
		vals[p.txt] = model.Text(fmt.Sprintf("widget model %d", i%11))
	}
	return vals
}

func buildCodecPair(t *testing.T, rows int) *codecPair {
	t.Helper()
	p := &codecPair{rows: rows, ckptEvery: 8}
	for c := 0; c < 2; c++ {
		p.cats[c] = table.NewCatalog()
		var err error
		if p.num, err = p.cats[c].AddAttr("ts", model.KindNumeric); err != nil {
			t.Fatal(err)
		}
		if p.spn, err = p.cats[c].AddAttr("score", model.KindNumeric); err != nil {
			t.Fatal(err)
		}
		if p.txt, err = p.cats[c].AddAttr("tag", model.KindText); err != nil {
			t.Fatal(err)
		}
		pool := storage.NewPool(0, 1<<20)
		p.devs[c].tblDev, p.devs[c].idxDev = storage.NewMemDevice(), storage.NewMemDevice()
		tblF := storage.NewFile(pool, p.devs[c].tblDev)
		idxF := storage.NewFile(pool, p.devs[c].idxDev)
		p.closers = append(p.closers, func() { tblF.Close(); idxF.Close() })
		if p.tbls[c], err = table.New(tblF, p.cats[c]); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if _, _, err := p.tbls[c].Append(p.row(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.tbls[c].Sync(); err != nil {
			t.Fatal(err)
		}
		if p.ixs[c], err = Build(p.tbls[c], idxF, Options{CheckpointEvery: p.ckptEvery, Codec: c}); err != nil {
			t.Fatal(err)
		}
	}
	// The packed build must actually pack something, or every test here is
	// vacuous; and the raw build must carry no blocks at all.
	packed, blocks := 0, 0
	for i := range p.ixs[1].attrs {
		st := &p.ixs[1].attrs[i]
		if st.codecID == vector.CodecPacked {
			packed++
			blocks += len(st.dir)
			if st.physBits()%64 != 0 {
				t.Fatalf("attr %d: fresh packed build left an unaligned tail (%d phys bits)",
					i, st.physBits())
			}
		}
	}
	if packed == 0 || blocks == 0 {
		t.Fatalf("codec-1 build packed nothing (%d attrs, %d blocks)", packed, blocks)
	}
	for i := range p.ixs[0].attrs {
		st := &p.ixs[0].attrs[i]
		if st.codecID != vector.CodecRaw || len(st.dir) != 0 || st.physBits() != st.bitLen {
			t.Fatalf("codec-0 build attr %d carries codec state", i)
		}
	}
	return p
}

func (p *codecPair) queries() []*model.Query {
	qs := []*model.Query{}
	for _, k := range []int{1, 5} {
		qn := &model.Query{K: k}
		qn.NumTerm(p.spn, 9)
		qt := &model.Query{K: k}
		qt.TextTerm(p.txt, "widget model 7")
		qb := &model.Query{K: k}
		qb.NumTerm(p.num, 40)
		qb.TextTerm(p.txt, "widget model 3")
		qs = append(qs, qn, qt, qb)
	}
	return qs
}

// diffSearches runs every query against both engines at both plans and
// demands byte-identical results.
func (p *codecPair) diffSearches(t *testing.T, stage string) {
	t.Helper()
	for _, par := range []int{1, 2} {
		p.ixs[0].SetSearchParallelism(par)
		p.ixs[1].SetSearchParallelism(par)
		for qi, q := range p.queries() {
			want, _, err := p.ixs[0].Search(q, nil)
			if err != nil {
				t.Fatalf("%s: raw search q%d par%d: %v", stage, qi, par, err)
			}
			got, _, err := p.ixs[1].Search(q, nil)
			if err != nil {
				t.Fatalf("%s: packed search q%d par%d: %v", stage, qi, par, err)
			}
			requireSameResults(t, fmt.Sprintf("%s q%d par%d", stage, qi, par), want, got)
		}
	}
}

// TestCodecByteIdenticalSearch is the tentpole acceptance check at the core
// layer: the packed engine answers every query byte-identically to the raw
// one, at both plans, with zone pruning on and off.
func TestCodecByteIdenticalSearch(t *testing.T) {
	p := buildCodecPair(t, 256)
	defer p.close()
	p.diffSearches(t, "fresh")
	p.ixs[0].SetZoneMaps(false)
	p.ixs[1].SetZoneMaps(false)
	p.diffSearches(t, "zones-off")
	p.ixs[0].SetZoneMaps(true)
	p.ixs[1].SetZoneMaps(true)

	for c := 0; c < 2; c++ {
		rep, err := p.ixs[c].Check()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("codec %d check: %v", c, rep.Problems)
		}
	}
	// Explain and the sequential-plan baseline run the packed read path too.
	q := (&model.Query{K: 3}).TextTerm(p.txt, "widget model 5")
	exRaw, err := p.ixs[0].ExplainSearch(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	exPacked, err := p.ixs[1].ExplainSearch(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "explain", exRaw.Results, exPacked.Results)
	if exRaw.Scanned != exPacked.Scanned || exRaw.Fetched != exPacked.Fetched {
		t.Fatalf("explain counters diverged: %+v vs %+v", exRaw, exPacked)
	}
}

// TestCodecTailAndReopen drives the straddling cases: inserts append to the
// raw tail behind sealed blocks, deletes tombstone across both, and a
// Sync+reopen (the v6 open path: attr codec bytes, block-directory walk)
// must reproduce everything byte-identically.
func TestCodecTailAndReopen(t *testing.T) {
	p := buildCodecPair(t, 200)
	defer p.close()

	// Mirrored mutations: inserts land in the raw tail (and seal further
	// stripes as boundaries pass), deletes straddle sealed blocks.
	for i := 0; i < 48; i++ {
		vals := p.row(p.rows + i)
		for c := 0; c < 2; c++ {
			if _, err := p.ixs[c].Insert(vals); err != nil {
				t.Fatalf("codec %d insert %d: %v", c, i, err)
			}
		}
	}
	for _, pos := range []int{3, 50, 97, 201, 210} {
		for c := 0; c < 2; c++ {
			tid := p.ixs[c].entries[pos].tid
			if err := p.ixs[c].Delete(tid); err != nil {
				t.Fatalf("codec %d delete pos %d: %v", c, pos, err)
			}
		}
	}
	p.diffSearches(t, "mutated")

	// Sync, drop everything, reopen from disk — the packed index must come
	// back through readAttrList's codec bytes and the block-directory walk.
	for c := 0; c < 2; c++ {
		if err := p.tbls[c].Sync(); err != nil {
			t.Fatal(err)
		}
		if err := p.ixs[c].Sync(); err != nil {
			t.Fatal(err)
		}
	}
	p.close()
	p.closers = nil
	for c := 0; c < 2; c++ {
		pool := storage.NewPool(0, 1<<20)
		tblF := storage.NewFile(pool, p.devs[c].tblDev)
		idxF := storage.NewFile(pool, p.devs[c].idxDev)
		p.closers = append(p.closers, func() { tblF.Close(); idxF.Close() })
		tb, err := table.Open(tblF, p.cats[c])
		if err != nil {
			t.Fatal(err)
		}
		if p.ixs[c], err = Open(idxF, tb, Options{Codec: c}); err != nil {
			t.Fatalf("codec %d reopen: %v", c, err)
		}
		p.tbls[c] = tb
	}
	reopened := p.ixs[1]
	packed := 0
	for i := range reopened.attrs {
		if reopened.attrs[i].codecID == vector.CodecPacked && len(reopened.attrs[i].dir) > 0 {
			packed++
		}
	}
	if packed == 0 {
		t.Fatal("reopen lost the packed block directories")
	}
	p.diffSearches(t, "reopened")
	for c := 0; c < 2; c++ {
		rep, err := p.ixs[c].Check()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("codec %d reopened check: %v", c, rep.Problems)
		}
	}
}

// TestCodecDirBrokenDegrade stomps a committed packed block and proves the
// open-time contract: DegradeReads drops the block directory (scrub reports
// it), queries stay byte-identical via zero bounds, and writes demand a
// rebuild; Strict refuses the open with a typed corruption error.
func TestCodecDirBrokenDegrade(t *testing.T) {
	p := buildCodecPair(t, 200)
	defer p.close()
	if err := p.ixs[1].Sync(); err != nil {
		t.Fatal(err)
	}
	baseline := map[int][]model.Result{}
	for qi, q := range p.queries() {
		res, _, err := p.ixs[1].Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		baseline[qi] = res
	}
	// Stomp the first committed byte of a packed attribute's first block.
	var target *attrState
	targetAttr := model.AttrID(0)
	for i := range p.ixs[1].attrs {
		if p.ixs[1].attrs[i].codecID == vector.CodecPacked && len(p.ixs[1].attrs[i].dir) > 0 {
			target = &p.ixs[1].attrs[i]
			targetAttr = model.AttrID(i)
			break
		}
	}
	ids, err := p.ixs[1].segs.ChainSegments(target.chain)
	if err != nil {
		t.Fatal(err)
	}
	off := p.ixs[1].segs.SegmentOffset(ids[0]) + 8
	var b [1]byte
	if _, err := p.devs[1].idxDev.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if _, err := p.devs[1].idxDev.WriteAt([]byte{b[0] ^ 0x20}, off); err != nil {
		t.Fatal(err)
	}

	reopen := func(stage string, mode IntegrityMode) (*Index, error) {
		pool := storage.NewPool(0, 1<<20)
		tblF := storage.NewFile(pool, p.devs[1].tblDev)
		idxF := storage.NewFile(pool, p.devs[1].idxDev)
		p.closers = append(p.closers, func() { tblF.Close(); idxF.Close() })
		tb, err := table.Open(tblF, p.cats[1])
		if err != nil {
			t.Fatalf("%s: table open: %v", stage, err)
		}
		return Open(idxF, tb, Options{Integrity: mode})
	}

	ix, err := reopen("degrade", IntegrityDegrade)
	if err != nil {
		t.Fatalf("degrade open rejected block damage: %v", err)
	}
	if ix.DroppedCodecDirs() == 0 {
		t.Fatal("degrade open dropped no block directory")
	}
	degraded := 0
	for qi, q := range p.queries() {
		res, stats, err := ix.Search(q, nil)
		if err != nil {
			t.Fatalf("degraded search q%d: %v", qi, err)
		}
		touches := false
		for _, term := range q.Terms {
			touches = touches || term.Attr == targetAttr
		}
		if touches && stats.DegradedSegments == 0 {
			t.Fatalf("q%d read the dropped-directory list without degrading", qi)
		}
		degraded += stats.DegradedSegments
		requireSameResults(t, fmt.Sprintf("degraded q%d", qi), baseline[qi], res)
	}
	if degraded == 0 {
		t.Fatal("no query exercised the dropped directory")
	}
	// Row 996 carries every attribute, so the insert definitely touches the
	// dropped-directory list.
	if _, err := ix.Insert(p.row(996)); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("insert on dropped directory: %v, want ErrNeedsRebuild", err)
	}
	if _, err := ix.InsertBatch([]map[model.AttrID]model.Value{p.row(996)}); !errors.Is(err, ErrNeedsRebuild) {
		t.Fatalf("batch insert on dropped directory: %v, want ErrNeedsRebuild", err)
	}
	rep, err := ix.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.DroppedCodecDirs == 0 {
		t.Fatalf("scrub missed the dropped block directory: %+v", rep)
	}

	if _, err := reopen("strict", IntegrityStrict); err == nil {
		t.Fatal("strict open accepted a stomped packed block")
	} else {
		var ce *storage.CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("strict open failed untyped: %v", err)
		}
	}
}

// TestCodecTortureSweep reruns the bit-flip torture sweep over an index whose
// vector lists are stored packed: flips land in v6 block headers and delta
// payloads, and the contract is unchanged — typed failure or the exact clean
// answer, never silence.
func TestCodecTortureSweep(t *testing.T) {
	cf := buildCorruptionFixtureWith(t, Options{CheckpointEvery: 16, Codec: 1}, true)
	if cf.packedAttrs == 0 {
		t.Fatal("codec torture fixture packed no attribute")
	}
	stride := int64(211)
	if testing.Short() {
		stride = 1777
	}
	degradedTotal := 0
	for _, mode := range []IntegrityMode{IntegrityDegrade, IntegrityStrict} {
		for off := int64(0); off < int64(len(cf.snapshot)); off += stride {
			bit := uint(off % 8)
			cf.restore(t)
			cf.flip(t, off, bit)
			detected := cf.runOnce(t, mode, off, &degradedTotal)
			if cf.committed[off] && !detected {
				t.Fatalf("mode=%v flip at %d (bit %d): corruption of a checksummed byte was not detected",
					mode, off, bit)
			}
		}
	}
	cf.restore(t)
	if degradedTotal == 0 {
		t.Fatal("sweep never exercised the degraded-read path")
	}
}

// TestCodecValidate pins the Options.Codec contract: unknown ids are
// rejected before any build work happens.
func TestCodecValidate(t *testing.T) {
	if err := (Options{Codec: 2}.withDefaults()).Validate(); err == nil {
		t.Fatal("codec 2 validated")
	}
	if err := (Options{Codec: -1}.withDefaults()).Validate(); err == nil {
		t.Fatal("codec -1 validated")
	}
	for c := 0; c < 2; c++ {
		if err := (Options{Codec: c}.withDefaults()).Validate(); err != nil {
			t.Fatalf("codec %d rejected: %v", c, err)
		}
	}
}
