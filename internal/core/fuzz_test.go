package core

import (
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// FuzzSuperblock builds a small real store, stomps the fuzzer's bytes over
// the head of the index device — superblock first, then segment metadata —
// and re-opens it. Open must either fail with an error or hand back an index
// whose accessors, Search and Check run without panicking or unbounded
// allocation: a corrupt or hostile file may be rejected, never trusted.
func FuzzSuperblock(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Version field (offset 4) raised past the supported range.
	f.Add([]byte{'i', 'V', 'A', 'f', 0x7f, 0x00, 0x00, 0x00})
	// Plausible magic with hostile counters behind it.
	f.Add(append([]byte{'i', 'V', 'A', 'f', 0x03}, make([]byte, 90)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 4096 {
			return
		}
		pool := storage.NewPool(0, 1<<20)
		tblDev, idxDev := storage.NewMemDevice(), storage.NewMemDevice()
		tblF := storage.NewFile(pool, tblDev)
		idxF := storage.NewFile(pool, idxDev)
		cat := table.NewCatalog()
		num, err := cat.AddAttr("n", model.KindNumeric)
		if err != nil {
			t.Fatal(err)
		}
		txt, err := cat.AddAttr("s", model.KindText)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := table.New(tblF, cat)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			vals := map[model.AttrID]model.Value{num: model.Num(float64(i))}
			if i%2 == 0 {
				vals[txt] = model.Text(fmt.Sprintf("v%d", i), "fuzz")
			}
			if _, _, err := tbl.Append(vals); err != nil {
				t.Fatal(err)
			}
		}
		if err := tbl.Sync(); err != nil {
			t.Fatal(err)
		}
		ix, err := Build(tbl, idxF, Options{CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		_ = ix
		tblF.Close()
		idxF.Close()

		// Corrupt the head of the index file and reopen through fresh caches.
		if _, err := idxDev.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		pool2 := storage.NewPool(0, 1<<20)
		tblF2 := storage.NewFile(pool2, tblDev)
		idxF2 := storage.NewFile(pool2, idxDev)
		defer tblF2.Close()
		defer idxF2.Close()
		tbl2, err := table.Open(tblF2, cat)
		if err != nil {
			t.Fatal(err) // table device was not touched
		}
		ix2, err := Open(idxF2, tbl2, Options{})
		if err != nil {
			return // graceful rejection is a correct outcome
		}
		// The corruption happened to parse: every read path must still be
		// panic-free. Errors are acceptable, wrong-but-clean results are
		// acceptable for a corrupted file; crashes are not.
		_ = ix2.Entries()
		_ = ix2.Deleted()
		q := &model.Query{K: 3}
		q.NumTerm(num, 5)
		_, _, _ = ix2.Search(q, nil)
		_, _ = ix2.Check()
	})
}
