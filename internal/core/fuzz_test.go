package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// FuzzSuperblock builds a small real store, stomps the fuzzer's bytes over
// the head of the index device — superblock first, then segment metadata —
// and re-opens it. Open must either fail with an error or hand back an index
// whose accessors, Search and Check run without panicking or unbounded
// allocation: a corrupt or hostile file may be rejected, never trusted.
func FuzzSuperblock(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Version field (offset 4) raised past the supported range.
	f.Add([]byte{'i', 'V', 'A', 'f', 0x7f, 0x00, 0x00, 0x00})
	// Plausible magic with hostile counters behind it.
	f.Add(append([]byte{'i', 'V', 'A', 'f', 0x03}, make([]byte, 90)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 4096 {
			return
		}
		pool := storage.NewPool(0, 1<<20)
		tblDev, idxDev := storage.NewMemDevice(), storage.NewMemDevice()
		tblF := storage.NewFile(pool, tblDev)
		idxF := storage.NewFile(pool, idxDev)
		cat := table.NewCatalog()
		num, err := cat.AddAttr("n", model.KindNumeric)
		if err != nil {
			t.Fatal(err)
		}
		txt, err := cat.AddAttr("s", model.KindText)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := table.New(tblF, cat)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			vals := map[model.AttrID]model.Value{num: model.Num(float64(i))}
			if i%2 == 0 {
				vals[txt] = model.Text(fmt.Sprintf("v%d", i), "fuzz")
			}
			if _, _, err := tbl.Append(vals); err != nil {
				t.Fatal(err)
			}
		}
		if err := tbl.Sync(); err != nil {
			t.Fatal(err)
		}
		ix, err := Build(tbl, idxF, Options{CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		_ = ix
		tblF.Close()
		idxF.Close()

		// Corrupt the head of the index file and reopen through fresh caches.
		if _, err := idxDev.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		pool2 := storage.NewPool(0, 1<<20)
		tblF2 := storage.NewFile(pool2, tblDev)
		idxF2 := storage.NewFile(pool2, idxDev)
		defer tblF2.Close()
		defer idxF2.Close()
		tbl2, err := table.Open(tblF2, cat)
		if err != nil {
			t.Fatal(err) // table device was not touched
		}
		ix2, err := Open(idxF2, tbl2, Options{})
		if err != nil {
			return // graceful rejection is a correct outcome
		}
		// The corruption happened to parse: every read path must still be
		// panic-free. Errors are acceptable, wrong-but-clean results are
		// acceptable for a corrupted file; crashes are not.
		_ = ix2.Entries()
		_ = ix2.Deleted()
		q := &model.Query{K: 3}
		q.NumTerm(num, 5)
		_, _, _ = ix2.Search(q, nil)
		_, _ = ix2.Check()
	})
}

// FuzzZoneMap stomps the fuzzer's bytes inside the committed zone-map chain
// of a small real store and re-opens it both ways. Zone records are pure
// pruning hints, so the contract is absolute: under DegradeReads the open
// must succeed and every query must return results byte-identical to the
// clean baseline (damage may only disable pruning); under Strict the open
// must either fail with a *storage.CorruptionError or — when the stomp was
// byte-neutral — behave exactly like the clean file. Panics are never
// acceptable.
func FuzzZoneMap(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0xff})
	f.Add([]byte{1, 9, 0, 0x00, 0xff, 0x55})
	f.Add([]byte{0xff, 0xff, 0xff, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 512 {
			return
		}
		pool := storage.NewPool(0, 1<<20)
		tblDev, idxDev := storage.NewMemDevice(), storage.NewMemDevice()
		tblF := storage.NewFile(pool, tblDev)
		idxF := storage.NewFile(pool, idxDev)
		cat := table.NewCatalog()
		num, err := cat.AddAttr("n", model.KindNumeric)
		if err != nil {
			t.Fatal(err)
		}
		txt, err := cat.AddAttr("s", model.KindText)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := table.New(tblF, cat)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			vals := map[model.AttrID]model.Value{num: model.Num(float64(i))}
			if i%2 == 0 {
				vals[txt] = model.Text(fmt.Sprintf("v%d", i), "fuzz")
			}
			if _, _, err := tbl.Append(vals); err != nil {
				t.Fatal(err)
			}
		}
		if err := tbl.Sync(); err != nil {
			t.Fatal(err)
		}
		ix, err := Build(tbl, idxF, Options{CheckpointEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		queries := []*model.Query{
			(&model.Query{K: 3}).NumTerm(num, 5),
			(&model.Query{K: 4}).TextTerm(txt, "v8"),
			(&model.Query{K: 2}).NumTerm(num, 20).TextTerm(txt, "fuzz"),
		}
		baseline := make([][]model.Result, len(queries))
		for i, q := range queries {
			if baseline[i], _, err = ix.Search(q, nil); err != nil {
				t.Fatal(err)
			}
		}
		exts := ix.ZoneExtents()
		if len(exts) == 0 {
			t.Fatal("built index committed no zone extents")
		}
		tblF.Close()
		idxF.Close()

		// The input picks the extent, the offset inside it, and the bytes to
		// stomp (clipped to the extent so the damage stays inside the chain).
		ext := exts[int(data[0])%len(exts)]
		off := ext.Offset + int64(binary.LittleEndian.Uint16(data[1:3]))%ext.Len
		payload := data[3:]
		if max := ext.Offset + ext.Len - off; int64(len(payload)) > max {
			payload = payload[:max]
		}
		if _, err := idxDev.WriteAt(payload, off); err != nil {
			t.Fatal(err)
		}

		sameResults := func(ix2 *Index) {
			t.Helper()
			for i, q := range queries {
				got, _, err := ix2.Search(q, nil)
				if err != nil {
					t.Fatalf("query %d after zone stomp: %v", i, err)
				}
				if len(got) != len(baseline[i]) {
					t.Fatalf("query %d: %d results, baseline %d", i, len(got), len(baseline[i]))
				}
				for j := range got {
					if got[j] != baseline[i][j] {
						t.Fatalf("query %d result %d diverged: %+v vs %+v", i, j, got[j], baseline[i][j])
					}
				}
			}
		}

		// DegradeReads: the open absorbs any zone damage and answers are
		// bit-identical with pruning (at worst) disabled.
		pool2 := storage.NewPool(0, 1<<20)
		tblF2 := storage.NewFile(pool2, tblDev)
		idxF2 := storage.NewFile(pool2, idxDev)
		tbl2, err := table.Open(tblF2, cat)
		if err != nil {
			t.Fatal(err)
		}
		ix2, err := Open(idxF2, tbl2, Options{CheckpointEvery: 4})
		if err != nil {
			t.Fatalf("degrade open rejected zone-chain damage: %v", err)
		}
		sameResults(ix2)
		tblF2.Close()
		idxF2.Close()

		// Strict: fail fast with a typed corruption error, or (byte-neutral
		// stomp) behave exactly like the clean file.
		pool3 := storage.NewPool(0, 1<<20)
		tblF3 := storage.NewFile(pool3, tblDev)
		idxF3 := storage.NewFile(pool3, idxDev)
		defer tblF3.Close()
		defer idxF3.Close()
		tbl3, err := table.Open(tblF3, cat)
		if err != nil {
			t.Fatal(err)
		}
		ix3, err := Open(idxF3, tbl3, Options{CheckpointEvery: 4, Integrity: IntegrityStrict})
		if err != nil {
			var ce *storage.CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("strict open failed with a non-corruption error: %v", err)
			}
			return
		}
		sameResults(ix3)
	})
}
