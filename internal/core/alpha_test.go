package core

import (
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
)

// TestPerAttributeAlpha exercises §III-D's per-attribute relative vector
// length: one attribute indexed with long signatures, another with short
// ones, correctness unchanged and persistence intact.
func TestPerAttributeAlpha(t *testing.T) {
	fx := newFixture(t, 120, Options{
		AlphaOverride: map[model.AttrID]float64{
			0: 0.50, // textAttrs[0]
			2: 0.05, // textAttrs[2]
		},
	}, 301)
	m := metric.Default()

	// Layouts must reflect the overrides.
	if got := fx.ix.attrs[0].alpha; got != 0.50 {
		t.Fatalf("attr 0 alpha = %v", got)
	}
	if got := fx.ix.attrs[2].alpha; got != 0.05 {
		t.Fatalf("attr 2 alpha = %v", got)
	}
	if fx.ix.attrs[0].layout.Codec.Alpha() != 0.50 {
		t.Fatal("attr 0 codec not overridden")
	}
	if fx.ix.attrs[1].layout.Codec.Alpha() != 0.20 {
		t.Fatal("attr 1 lost the default alpha")
	}

	// Queries on overridden and default attributes stay exact.
	for trial := 0; trial < 15; trial++ {
		q := fx.randQuery(t, 2, 6)
		got, _, err := fx.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDistances(got, bruteForce(t, fx, q, m)) {
			t.Fatalf("trial %d: override broke exactness", trial)
		}
	}

	// Inserts must encode under the per-attribute codecs too.
	if _, err := fx.ix.Insert(map[model.AttrID]model.Value{
		fx.textAttrs[0]: model.Text("override check"),
		fx.textAttrs[2]: model.Text("short sig"),
	}); err != nil {
		t.Fatal(err)
	}
	q := (&model.Query{K: 1}).TextTerm(fx.textAttrs[2], "short sig")
	res, _, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Dist != 0 {
		t.Fatalf("inserted value not found at 0: %v", res)
	}
}

func TestPerAttributeAlphaPersists(t *testing.T) {
	pool := storage.NewPool(0, 10<<20)
	fxOpts := Options{AlphaOverride: map[model.AttrID]float64{0: 0.40}}
	fx := newFixture(t, 60, fxOpts, 302)
	if err := fx.ix.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = pool
	// Reopen from the same devices via the fixture's pool.
	ix2, err := Open(fx.ix.f, fx.tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix2.attrs[0].alpha; got != 0.40 {
		t.Fatalf("reopened attr 0 alpha = %v", got)
	}
	if ix2.attrs[0].layout.Codec.Alpha() != 0.40 {
		t.Fatal("reopened codec wrong")
	}
	m := metric.Default()
	q := fx.randQuery(t, 2, 5)
	got, _, err := ix2.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDistances(got, bruteForce(t, fx, q, m)) {
		t.Fatal("reopened override index differs from brute force")
	}
}
