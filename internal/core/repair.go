package core

import (
	"fmt"

	"github.com/sparsewide/iva/internal/storage"
)

// Read-repair primitives. A corrupt vector-list segment detected at query
// time (DegradeReads) or by a scrub can be healed in place from a replication
// peer: the peer serves the raw committed payload bytes, and RepairSegment
// accepts them only if they match THIS index's committed checksum word — the
// local checksum map is the ground truth, the wire adds no trust of its own.
// A peer at a different committed generation simply fails the check and the
// segment stays degraded until a matching peer (or a rebuild) comes along.

// SegmentSpan returns the file-byte span of segment seg's committed payload
// in iva.idx: the offset of the first payload byte and the committed length.
// ok is false when the segment is not covered by the committed checksum map,
// holds unsynced writes (dirty — its word is stale by design), or the file
// predates v4. The caller fetches exactly [off, off+n) from the peer's
// iva.idx and hands the bytes to RepairSegment.
func (ix *Index) SegmentSpan(seg uint32) (off, n int64, ok bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	it := &ix.integ
	it.mu.Lock()
	e, covered := it.words[storage.SegID(seg)]
	_, dirty := it.dirty[storage.SegID(seg)]
	it.mu.Unlock()
	if !it.enabled || !covered || dirty || e.n == 0 {
		return 0, 0, false
	}
	hdr := int64(ix.segs.SegmentSize() - ix.segs.PayloadSize())
	return ix.segs.SegmentOffset(storage.SegID(seg)) + hdr, int64(e.n), true
}

// RepairSegment overwrites segment seg's committed payload with a clean copy
// fetched from a peer, verifying the bytes against the LOCAL committed
// checksum word before any write reaches the file. It refuses dirty and
// uncovered segments. On success the segment is marked verified, so the next
// read serves it without degrading. The write bypasses the dirty-marking
// observer deliberately: it restores the committed bytes the word already
// describes, so the word must stay authoritative.
func (ix *Index) RepairSegment(seg uint32, payload []byte) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := storage.SegID(seg)
	it := &ix.integ
	it.mu.Lock()
	enabled := it.enabled
	e, covered := it.words[id]
	_, dirty := it.dirty[id]
	it.mu.Unlock()
	if !enabled || !covered {
		return fmt.Errorf("core: repair segment %d: not covered by the committed checksum map", seg)
	}
	if dirty {
		return fmt.Errorf("core: repair segment %d: has unsynced writes", seg)
	}
	if len(payload) != e.n {
		return fmt.Errorf("core: repair segment %d: got %d bytes, committed span is %d", seg, len(payload), e.n)
	}
	masked := append([]byte(nil), payload...)
	maskTail(masked, e.mask)
	if storage.Checksum(masked) != e.crc {
		return fmt.Errorf("core: repair segment %d: peer bytes fail the committed checksum (peer at a different generation?)", seg)
	}
	// Write the masked copy: uncommitted low bits of a partial final byte are
	// zeroed rather than trusting the peer's, matching what verification reads.
	hdr := int64(ix.segs.SegmentSize() - ix.segs.PayloadSize())
	if err := ix.f.WriteAt(masked, ix.segs.SegmentOffset(id)+hdr); err != nil {
		return fmt.Errorf("core: repair segment %d: %w", seg, err)
	}
	if err := ix.f.Sync(); err != nil {
		return fmt.Errorf("core: repair segment %d: %w", seg, err)
	}
	it.mu.Lock()
	// Only mark verified if the word was not replaced while we wrote (it
	// cannot be — we hold ix.mu — but stay defensive about future callers).
	if cur, ok := it.words[id]; ok && cur == e {
		it.verified[id] = struct{}{}
	}
	it.mu.Unlock()
	return nil
}
