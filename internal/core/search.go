package core

import (
	"fmt"
	"math"
	"time"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/obs"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/topk"
	"github.com/sparsewide/iva/internal/vector"
)

// SearchStats reports where one query's work went, matching the paper's
// filtering/refining decomposition (Figs. 9 and 15).
type SearchStats struct {
	// Scanned is the number of live tuple-list entries filtered.
	Scanned int64
	// TableAccesses is the number of random table-file fetches (Fig. 8).
	TableAccesses int64
	// FilterWall and RefineWall split the measured wall time.
	FilterWall time.Duration
	RefineWall time.Duration
	// FilterIO and RefineIO split the physical page I/O.
	FilterIO storage.Snapshot
	RefineIO storage.Snapshot
}

// Total returns the query's full wall time.
func (s SearchStats) Total() time.Duration { return s.FilterWall + s.RefineWall }

// termState is one query term prepared for scanning.
type termState struct {
	term   model.QueryTerm
	st     *attrState             // nil when the attribute has no vector list
	cursor *vector.Cursor         // nil when st == nil
	qs     *signature.QueryString // text terms

	// Per-term trace annotations accumulated during the scan.
	defined int64 // tuples with an indexed value on the attribute
	ndf     int64 // tuples undefined on it (charged the ndf penalty)
	pruned  int64 // pruned tuples where this term's bound was the largest
}

// Search answers a top-k structured similarity query with Algorithm 1: the
// tuple list and the vector lists of the queried attributes are scanned in a
// synchronized pass; each tuple's estimated distance (a lower bound, by
// Prop. 3.3 and §III-C) gates a random access to the table file where the
// exact distance is computed against the temporary result pool.
func (ix *Index) Search(q *model.Query, m *metric.Metric) ([]model.Result, SearchStats, error) {
	return ix.SearchTraced(q, m, nil)
}

// SearchTraced is Search with per-query tracing: when parent is non-nil, the
// query's phases are recorded as child spans —
//
//	filter            scanned/pruned counts and filter-phase I/O
//	  term:<name>     per-term defined/ndf/pruned annotations (duration 0)
//	refine            exact-distance work on fetched candidates
//	  fetch           time spent in random table-file reads
//
// A nil parent makes tracing free (no spans are allocated).
func (ix *Index) SearchTraced(q *model.Query, m *metric.Metric, parent *obs.Span) ([]model.Result, SearchStats, error) {
	var stats SearchStats
	if err := q.Validate(); err != nil {
		return nil, stats, err
	}
	if m == nil {
		m = metric.Default()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	pstats := ix.f.Pool().Stats()
	startIO := pstats.Snapshot()
	startAccesses := ix.tbl.Accesses()
	wallStart := time.Now()

	terms := make([]termState, len(q.Terms))
	for i, term := range q.Terms {
		ts := termState{term: term}
		if int(term.Attr) < len(ix.attrs) && ix.attrs[term.Attr].exists {
			st := &ix.attrs[term.Attr]
			if st.layout.Kind != term.Kind {
				return nil, stats, fmt.Errorf("core: query term on attribute %d is %v, attribute is %v",
					term.Attr, term.Kind, st.layout.Kind)
			}
			cur, err := vector.NewCursor(st.layout, storage.NewChainBitReader(ix.segs, st.chain, st.bitLen))
			if err != nil {
				return nil, stats, err
			}
			ts.st, ts.cursor = st, cur
		}
		if term.Kind == model.KindText {
			// Per-attribute α overrides give attributes their own codecs;
			// the query string must hash grams under the same parameters
			// the data strings were encoded with.
			codec := ix.codec
			if ts.st != nil && ts.st.layout.Codec != nil {
				codec = ts.st.layout.Codec
			}
			ts.qs = codec.NewQueryString(term.Str)
		}
		terms[i] = ts
	}

	pool := topk.New(q.K)
	diffs := make([]float64, len(terms))
	var refineWall, fetchWall time.Duration
	var refineIO storage.Snapshot
	var fetched int64

	tr := storage.NewChainBitReader(ix.segs, ix.tupleChain, ix.tupleBits)
	for pos := int64(0); pos < int64(len(ix.entries)); pos++ {
		tidBits, err := tr.ReadBits(ix.ltid)
		if err != nil {
			return nil, stats, err
		}
		ptrBitsVal, err := tr.ReadBits(ptrBits)
		if err != nil {
			return nil, stats, err
		}
		if ptrBitsVal == tombstonePtr {
			continue // deleted tuple: no filtering, cursors skip in passing
		}
		tid := model.TID(tidBits)
		stats.Scanned++

		for i := range terms {
			d, ndf, err := terms[i].estimateInfo(m, tid, pos)
			if err != nil {
				return nil, stats, err
			}
			if ndf {
				terms[i].ndf++
			} else {
				terms[i].defined++
			}
			diffs[i] = d
		}
		estDist := m.Distance(q.Terms, diffs)
		if !pool.Admits(estDist) {
			// Credit the prune to the term with the largest lower bound:
			// the combiners are monotone, so that term alone pushed the
			// estimate hardest toward the pool bar.
			if len(terms) > 0 {
				argmax := 0
				for i := 1; i < len(diffs); i++ {
					if diffs[i] > diffs[argmax] {
						argmax = i
					}
				}
				terms[argmax].pruned++
			}
			continue
		}

		// Refine: random access to the table file, exact distance.
		rStart := time.Now()
		rIO := pstats.Snapshot()
		tp, err := ix.tbl.Fetch(int64(ptrBitsVal))
		if err != nil {
			return nil, stats, err
		}
		fetchWall += time.Since(rStart)
		fetched++
		actual := m.TupleDistance(q, tp)
		pool.Insert(tid, actual)
		refineIO = refineIO.Add(pstats.Snapshot().Sub(rIO))
		refineWall += time.Since(rStart)
	}

	total := time.Since(wallStart)
	stats.TableAccesses = ix.tbl.Accesses() - startAccesses
	stats.RefineWall = refineWall
	stats.FilterWall = total - refineWall
	stats.RefineIO = refineIO
	stats.FilterIO = pstats.Snapshot().Sub(startIO).Sub(refineIO)
	if parent != nil {
		ix.traceSearch(parent, terms, stats, fetched, fetchWall)
	}
	return pool.Results(), stats, nil
}

// traceSearch attaches the filter/refine/fetch span hierarchy for one
// finished query to parent. The phases interleave in the scan loop, so the
// spans carry the accumulated phase durations rather than start-to-end
// times; per-term spans are pure annotation carriers (duration 0).
func (ix *Index) traceSearch(parent *obs.Span, terms []termState, stats SearchStats, fetched int64, fetchWall time.Duration) {
	fsp := parent.Child("filter")
	fsp.SetInt("scanned", stats.Scanned)
	fsp.SetInt("pruned", stats.Scanned-fetched)
	fsp.SetInt("phys_reads", stats.FilterIO.PhysReads)
	fsp.SetInt("cache_hits", stats.FilterIO.CacheHits)
	cat := ix.tbl.Catalog()
	for i := range terms {
		name := fmt.Sprintf("attr%d", terms[i].term.Attr)
		if info, err := cat.Info(terms[i].term.Attr); err == nil {
			name = info.Name
		}
		tsp := fsp.Child("term:" + name)
		tsp.SetStr("kind", terms[i].term.Kind.String())
		tsp.SetInt("scanned", stats.Scanned)
		tsp.SetInt("defined", terms[i].defined)
		tsp.SetInt("ndf", terms[i].ndf)
		tsp.SetInt("pruned", terms[i].pruned)
		tsp.EndAt(0)
	}
	fsp.EndAt(stats.FilterWall)

	rsp := parent.Child("refine")
	rsp.SetInt("fetched", fetched)
	rsp.SetInt("table_accesses", stats.TableAccesses)
	rsp.SetInt("phys_reads", stats.RefineIO.PhysReads)
	rsp.SetInt("cache_hits", stats.RefineIO.CacheHits)
	fetch := rsp.Child("fetch")
	fetch.SetInt("reads", stats.RefineIO.PhysReads)
	fetch.EndAt(fetchWall)
	rsp.EndAt(stats.RefineWall)
}

// estimateInfo computes the lower-bound difference for one term on the tuple
// at (tid, pos) — est over signatures for text, slice distance for numbers,
// and the ndf penalty when the element is absent — plus whether the tuple
// was ndf on the attribute (for trace and Explain instrumentation).
func (ts *termState) estimateInfo(m *metric.Metric, tid model.TID, pos int64) (float64, bool, error) {
	if ts.cursor == nil {
		// Attribute unknown to the index: every tuple is ndf on it.
		return m.NDFPenalty, true, nil
	}
	e, err := ts.cursor.MoveTo(tid, pos)
	if err != nil {
		return 0, false, err
	}
	if e.NDF {
		return m.NDFPenalty, true, nil
	}
	switch ts.term.Kind {
	case model.KindText:
		best := math.Inf(1)
		for i := range e.Sigs {
			if d := ts.qs.Est(e.Sigs[i]); d < best {
				best = d
			}
			if best == 0 {
				break
			}
		}
		return best, false, nil
	case model.KindNumeric:
		return ts.st.quant.MinDist(ts.term.Num, e.Code), false, nil
	}
	return m.NDFPenalty, true, nil
}
