package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"time"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/obs"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/topk"
	"github.com/sparsewide/iva/internal/vector"
)

// SearchStats reports where one query's work went, matching the paper's
// filtering/refining decomposition (Figs. 9 and 15).
type SearchStats struct {
	// Scanned is the number of live tuple-list entries filtered.
	Scanned int64
	// TableAccesses is the number of random table-file fetches (Fig. 8).
	TableAccesses int64
	// FilterWall, RefineWall and MergeWall split the measured wall time
	// between scanning the index, checking candidates in the table file, and
	// the deterministic (dist, tid) top-k merge; they sum to the plan's wall
	// clock.
	FilterWall time.Duration
	RefineWall time.Duration
	MergeWall  time.Duration
	// FilterIO and RefineIO split the physical page I/O.
	FilterIO storage.Snapshot
	RefineIO storage.Snapshot
	// Workers is the number of filter workers the executed plan ran with
	// (1 for the sequential plan).
	Workers int
	// StripesTotal is the number of stripes the plan covered (1 for the
	// sequential plan); StripesSkipped counts stripes never claimed because
	// the plan aborted early (cancellation or an error).
	StripesTotal   int
	StripesSkipped int
	// StripesZoneChecked counts stripes whose zone record produced a usable
	// lower bound at claim time; StripesZonePruned of them were skipped
	// without opening a cursor because that proven minimum was strictly
	// above the admission bar (or the stripe had no live tuples). Pruning
	// never changes results. Both plans report these; the sequential plan
	// keeps StripesTotal = 1 (its historical meaning) and counts its
	// internal stripe boundaries here instead.
	StripesZoneChecked int
	StripesZonePruned  int
	// WorkerProfiles breaks the filter work down per worker: stripes
	// claimed, tuples scanned, candidates fetched, and busy wall time. One
	// entry for the sequential plan.
	WorkerProfiles []WorkerStats
	// DegradedSegments is the number of distinct corrupt vector-list
	// segments the query read past under DegradeReads (each forced its
	// term's lower bound to zero, sending the affected tuples to refine).
	DegradedSegments int
	// DegradedSegIDs lists those segments' IDs in ascending order — the
	// read-repair hook uses them to fetch clean copies from a peer.
	DegradedSegIDs []uint32
}

// WorkerStats is one filter worker's share of a query (SearchStats).
type WorkerStats struct {
	Stripes    int64 // stripes claimed from the shared counter
	ZonePruned int64 // claimed stripes skipped whole by their zone bound
	Scanned    int64
	Fetched    int64
	Busy       time.Duration
}

// Total returns the query's full wall time.
func (s SearchStats) Total() time.Duration { return s.FilterWall + s.RefineWall + s.MergeWall }

// sortedSegIDs flattens a degraded-segment set into a sorted slice (nil when
// empty, keeping the common clean path allocation-free).
func sortedSegIDs(m map[uint32]struct{}) []uint32 {
	if len(m) == 0 {
		return nil
	}
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// readerSet tracks the ChainBitReaders one scan pass opens so their pinned
// buffer-pool windows are released when the pass ends (a dropped reader
// would hold one page pinned — a leak the iva_pool_pinned_frames gauge
// exists to catch).
type readerSet []*storage.ChainBitReader

func (rs *readerSet) open(ix *Index, c storage.ChainID, bits int64) *storage.ChainBitReader {
	r := storage.NewChainBitReader(ix.segs, c, bits)
	ix.attachVerify(r, c)
	*rs = append(*rs, r)
	return r
}

// close must have a pointer receiver: `defer rds.close()` evaluates the
// receiver at defer time, and a value receiver would snapshot the empty
// slice before any open() appended to it — leaking every pin.
func (rs *readerSet) close() {
	for _, r := range *rs {
		r.Close()
	}
}

// termState is one query term prepared for scanning.
type termState struct {
	term   model.QueryTerm
	st     *attrState             // nil when the attribute has no vector list
	cursor *vector.Cursor         // nil when st == nil
	qs     *signature.QueryString // text terms

	// Per-term trace annotations accumulated during the scan.
	defined int64 // tuples with an indexed value on the attribute
	ndf     int64 // tuples undefined on it (charged the ndf penalty)
	pruned  int64 // pruned tuples where this term's bound was the largest

	// degraded marks a term whose vector list hit a checksum mismatch under
	// DegradeReads: for the rest of the scan unit it contributes a zero
	// lower bound — always ≤ the true difference, so no false negatives —
	// and every tuple it would have pruned goes to refine instead. The
	// parallel plan clears it per stripe (each stripe reopens cursors from
	// a checkpoint, resynchronizing past the damage).
	degraded bool
}

// boundWithPolicy is estimateInfo under the read-integrity policy: a
// *storage.CorruptionError from the term's vector list degrades the term
// when the index allows it (noting the segment in deg), every other error —
// and every error under IntegrityStrict — fails the query.
func (ts *termState) boundWithPolicy(ix *Index, m *metric.Metric, tid model.TID, pos int64, deg map[uint32]struct{}) (float64, bool, error) {
	if ts.degraded {
		return 0, false, nil
	}
	d, ndf, err := ts.estimateInfo(m, tid, pos)
	if err != nil {
		if !ix.degradeTerm(ts, err, deg) {
			return 0, false, err
		}
		return 0, false, nil
	}
	return d, ndf, nil
}

// degradeTerm applies the DegradeReads policy to an error from a term's
// vector list, reporting whether it was absorbed.
func (ix *Index) degradeTerm(ts *termState, err error, deg map[uint32]struct{}) bool {
	if ix.imode != IntegrityDegrade {
		return false
	}
	var ce *storage.CorruptionError
	if !errors.As(err, &ce) {
		return false
	}
	ts.degraded = true
	deg[ce.Segment] = struct{}{}
	return true
}

// Search answers a top-k structured similarity query with Algorithm 1: the
// tuple list and the vector lists of the queried attributes are scanned in a
// synchronized pass; each tuple's estimated distance (a lower bound, by
// Prop. 3.3 and §III-C) gates a random access to the table file where the
// exact distance is computed against the temporary result pool.
func (ix *Index) Search(q *model.Query, m *metric.Metric) ([]model.Result, SearchStats, error) {
	return ix.SearchTracedContext(context.Background(), q, m, nil)
}

// SearchContext is Search under a context: cancellation and deadlines are
// honored at stripe boundaries in the filter phase and before each refine
// fetch, returning ctx.Err() with the stats accumulated so far. An already-
// expired context fails before any device read.
func (ix *Index) SearchContext(ctx context.Context, q *model.Query, m *metric.Metric) ([]model.Result, SearchStats, error) {
	return ix.SearchTracedContext(ctx, q, m, nil)
}

// SearchTraced is Search with per-query tracing: when parent is non-nil, the
// query's phases are recorded as child spans —
//
//	filter            scanned/pruned counts and filter-phase I/O
//	  term:<name>     per-term defined/ndf/pruned annotations (duration 0)
//	refine            exact-distance work on fetched candidates
//	  fetch           time spent in random table-file reads
//
// A nil parent makes tracing free (no spans are allocated).
func (ix *Index) SearchTraced(q *model.Query, m *metric.Metric, parent *obs.Span) ([]model.Result, SearchStats, error) {
	return ix.SearchTracedContext(context.Background(), q, m, parent)
}

// SearchTracedContext is SearchTraced under a context (see SearchContext).
func (ix *Index) SearchTracedContext(ctx context.Context, q *model.Query, m *metric.Metric, parent *obs.Span) ([]model.Result, SearchStats, error) {
	if err := q.Validate(); err != nil {
		return nil, SearchStats{}, err
	}
	if err := ctx.Err(); err != nil {
		// Expired before dispatch: fail without touching the device.
		return nil, SearchStats{}, err
	}
	if m == nil {
		m = metric.Default()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if par := ix.effectiveParallelism(); par > 1 && ix.parallelEligible() {
		return ix.searchParallel(ctx, q, m, parent, par)
	}
	return ix.searchSequential(ctx, q, m, parent)
}

// effectiveParallelism resolves Options.SearchParallelism (0 = all cores).
func (ix *Index) effectiveParallelism() int {
	if p := ix.opts.SearchParallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SearchWorkers reports how many workers a search dispatched right now would
// run with: 1 while the index is too small for the striped plan (or it is
// disabled), the effective parallelism otherwise. It backs the
// iva_search_workers gauge.
func (ix *Index) SearchWorkers() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	par := ix.effectiveParallelism()
	if par <= 1 || !ix.parallelEligible() {
		return 1
	}
	if n := len(ix.ckpts); par > n {
		par = n
	}
	return par
}

// parallelEligible reports whether the striped plan can run: checkpoints
// must exist (v2 index) and the tuple list must span at least two full
// stripes, otherwise the sequential plan is at least as fast.
func (ix *Index) parallelEligible() bool {
	return ix.checkpointsEnabled() && len(ix.ckpts) >= 2 &&
		int64(len(ix.entries)) >= 2*ix.ckptEvery
}

// prepareTerms resolves the query terms against the attribute list and
// builds the shared per-term query state (codecs, query strings). Cursors
// are not opened here: the sequential plan opens one per term, the parallel
// plan one per term per stripe. Caller holds ix.mu.RLock.
func (ix *Index) prepareTerms(q *model.Query) ([]termState, error) {
	terms := make([]termState, len(q.Terms))
	for i, term := range q.Terms {
		ts := termState{term: term}
		if int(term.Attr) < len(ix.attrs) && ix.attrs[term.Attr].exists {
			st := &ix.attrs[term.Attr]
			if st.layout.Kind != term.Kind {
				return nil, fmt.Errorf("core: query term on attribute %d is %v, attribute is %v",
					term.Attr, term.Kind, st.layout.Kind)
			}
			ts.st = st
		}
		if term.Kind == model.KindText {
			// Per-attribute α overrides give attributes their own codecs;
			// the query string must hash grams under the same parameters
			// the data strings were encoded with. QueryString's mask cache
			// is copy-on-write, so stripe workers share it without locking.
			codec := ix.codec
			if ts.st != nil && ts.st.layout.Codec != nil {
				codec = ts.st.layout.Codec
			}
			ts.qs = codec.NewQueryString(term.Str)
		}
		terms[i] = ts
	}
	return terms, nil
}

// searchSequential is the single-goroutine Algorithm 1 pass. It remains the
// plan for small indexes, v1 index files (no checkpoints), SearchParallelism
// = 1, and the instrumented Explain path. Caller holds ix.mu.RLock.
// The stats return is named so the deferred DegradedSegments assignment below
// reaches the caller on every return path, including early errors.
func (ix *Index) searchSequential(ctx context.Context, q *model.Query, m *metric.Metric, parent *obs.Span) (_ []model.Result, stats SearchStats, _ error) {
	stats.Workers = 1
	stats.StripesTotal = 1
	idxIO := ix.segs.File().IOStats()
	tblIO := ix.tbl.IOStats()
	startIdx, startTbl := idxIO.Snapshot(), tblIO.Snapshot()
	wallStart := time.Now()

	terms, err := ix.prepareTerms(q)
	if err != nil {
		return nil, stats, err
	}
	degSegs := make(map[uint32]struct{})
	defer func() {
		stats.DegradedSegments = len(degSegs)
		stats.DegradedSegIDs = sortedSegIDs(degSegs)
	}()
	var rds readerSet
	defer rds.close()
	// Term sources are kept by index so a zone-pruned stripe can reseat the
	// cursors from the next checkpoint instead of reopening readers. Each
	// reader spans the attribute's PHYSICAL stream; termSource wraps it so
	// cursors see logical element bits regardless of codec.
	termSrcs := make([]vector.BitSource, len(terms))
	for i := range terms {
		if terms[i].st == nil {
			continue
		}
		st := terms[i].st
		src, err := ix.termSource(st, rds.open(ix, st.chain, st.physBits()))
		if err == nil {
			var cur *vector.Cursor
			if cur, err = vector.NewCursor(st.layout, src); err == nil {
				cur.EnableScratch()
				termSrcs[i] = src
				terms[i].cursor = cur
				continue
			}
		}
		if ix.degradeTerm(&terms[i], err, degSegs) {
			continue
		}
		return nil, stats, err
	}

	pool := topk.New(q.K)
	// The local bar mirrors the parallel plan's shared bar on this single
	// worker: +Inf until the pool fills, then the pool's k-th (max) exact
	// distance. Between inserts it equals pool.MaxDist(), so gating on it is
	// the same admission rule AdmitsPair already applies — the bar exists so
	// the stripe zone gate and the per-tuple check share one prune rule.
	var bar distBar
	bar.init()
	diffs := make([]float64, len(terms))
	var refineWall, fetchWall time.Duration
	var fetched int64

	tr := rds.open(ix, ix.tupleChain, ix.tupleBits)
	n := int64(len(ix.entries))
	for pos := int64(0); pos < n; {
		if pos%ix.ckptEvery == 0 {
			// Stripe boundary: if the stripe's zone record proves no tuple
			// in it can beat the bar, skip it whole. The skip needs a resume
			// point — the next stripe's checkpoint — unless the stripe is
			// the last, where the scan just ends. A sealed stripe is always
			// full, so the zone record existing implies pos+ckptEvery ≤ n.
			s := pos / ix.ckptEvery
			if est, empty, ok := ix.zoneBound(s, terms, q, m, diffs); ok {
				stats.StripesZoneChecked++
				if empty || barExceeded(&bar, est) {
					next := pos + ix.ckptEvery
					if next >= n {
						stats.StripesZonePruned++
						break
					}
					if ix.checkpointsEnabled() && s+1 < int64(len(ix.ckpts)) {
						if err := ix.seqReseat(terms, termSrcs, tr, next, ix.ckpts[s+1], degSegs); err != nil {
							return nil, stats, err
						}
						stats.StripesZonePruned++
						pos = next
						continue
					}
				}
			}
		}
		if pos&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		tidBits, err := tr.ReadBits(ix.ltid)
		if err != nil {
			return nil, stats, err
		}
		ptrBitsVal, err := tr.ReadBits(ptrBits)
		if err != nil {
			return nil, stats, err
		}
		if ptrBitsVal == tombstonePtr {
			pos++
			continue // deleted tuple: no filtering, cursors skip in passing
		}
		tid := model.TID(tidBits)
		pos++
		stats.Scanned++

		for i := range terms {
			d, ndf, err := terms[i].boundWithPolicy(ix, m, tid, pos-1, degSegs)
			if err != nil {
				return nil, stats, err
			}
			if ndf {
				terms[i].ndf++
			} else {
				terms[i].defined++
			}
			diffs[i] = d
		}
		estDist := m.Distance(q.Terms, diffs)
		if !admitsEst(pool, &bar, tid, estDist) {
			// Credit the prune to the term with the largest lower bound:
			// the combiners are monotone, so that term alone pushed the
			// estimate hardest toward the pool bar.
			if len(terms) > 0 {
				argmax := 0
				for i := 1; i < len(diffs); i++ {
					if diffs[i] > diffs[argmax] {
						argmax = i
					}
				}
				terms[argmax].pruned++
			}
			continue
		}

		// Refine: random access to the table file, exact distance.
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		rStart := time.Now()
		tp, err := ix.tbl.Fetch(int64(ptrBitsVal))
		if err != nil {
			return nil, stats, err
		}
		fetchWall += time.Since(rStart)
		fetched++
		actual := m.TupleDistance(q, tp)
		pool.Insert(tid, actual)
		if pool.Full() {
			bar.lower(pool.MaxDist())
		}
		refineWall += time.Since(rStart)
	}

	mergeStart := time.Now()
	results := pool.Results()
	stats.MergeWall = time.Since(mergeStart)
	total := time.Since(wallStart)
	stats.TableAccesses = fetched
	stats.RefineWall = refineWall
	stats.FilterWall = total - refineWall - stats.MergeWall
	// Per-file attribution: the filter phase reads only the index file, the
	// refine phase only the table file.
	stats.FilterIO = idxIO.Snapshot().Sub(startIdx)
	stats.RefineIO = tblIO.Snapshot().Sub(startTbl)
	stats.WorkerProfiles = []WorkerStats{{
		Stripes: 1, ZonePruned: int64(stats.StripesZonePruned),
		Scanned: stats.Scanned, Fetched: fetched, Busy: total,
	}}
	if parent != nil {
		ix.traceSearch(parent, terms, stats, fetched, fetchWall, 1, 1)
	}
	return results, stats, nil
}

// seqReseat advances the sequential scan past a zone-pruned stripe: the
// tuple reader seeks to position next, and every usable term cursor reopens
// on its existing source at ck — the checkpoint of the stripe starting at
// next. Checkpoint offsets are logical, which is exactly the coordinate a
// term source's SeekBit speaks. Terms already degraded stay degraded
// (sequential semantics: a degraded term contributes a zero bound for the
// rest of the scan).
func (ix *Index) seqReseat(terms []termState, termSrcs []vector.BitSource, tr *storage.ChainBitReader, next int64, ck checkpoint, degSegs map[uint32]struct{}) error {
	if err := tr.SeekBit(next * int64(ix.elemBits())); err != nil {
		return err
	}
	for i := range terms {
		ts := &terms[i]
		if ts.st == nil || ts.cursor == nil || ts.degraded {
			continue
		}
		cur, err := vector.NewCursorAt(ts.st.layout, termSrcs[i], ck.attrOffset(int(ts.term.Attr)), next)
		if err != nil {
			if ix.degradeTerm(ts, err, degSegs) {
				continue
			}
			return err
		}
		cur.EnableScratch()
		ts.cursor = cur
	}
	return nil
}

// traceSearch attaches the filter/refine/fetch span hierarchy for one
// finished query to parent. The phases interleave in the scan loop, so the
// spans carry the accumulated phase durations rather than start-to-end
// times; per-term spans are pure annotation carriers (duration 0). For the
// parallel plan, terms carry the counters merged across all workers and
// workers/stripes describe the executed plan shape.
func (ix *Index) traceSearch(parent *obs.Span, terms []termState, stats SearchStats, fetched int64, fetchWall time.Duration, workers, stripes int) {
	fsp := parent.Child("filter")
	fsp.SetInt("scanned", stats.Scanned)
	fsp.SetInt("pruned", stats.Scanned-fetched)
	fsp.SetInt("phys_reads", stats.FilterIO.PhysReads)
	fsp.SetInt("cache_hits", stats.FilterIO.CacheHits)
	fsp.SetInt("workers", int64(workers))
	fsp.SetInt("stripes", int64(stripes))
	cat := ix.tbl.Catalog()
	for i := range terms {
		name := fmt.Sprintf("attr%d", terms[i].term.Attr)
		if info, err := cat.Info(terms[i].term.Attr); err == nil {
			name = info.Name
		}
		tsp := fsp.Child("term:" + name)
		tsp.SetStr("kind", terms[i].term.Kind.String())
		// The term's own scan outcome, not the parent span's total: every
		// scanned tuple is either defined on the attribute or charged ndf.
		tsp.SetInt("scanned", terms[i].defined+terms[i].ndf)
		tsp.SetInt("defined", terms[i].defined)
		tsp.SetInt("ndf", terms[i].ndf)
		tsp.SetInt("pruned", terms[i].pruned)
		tsp.EndAt(0)
	}
	fsp.EndAt(stats.FilterWall)

	rsp := parent.Child("refine")
	rsp.SetInt("fetched", fetched)
	rsp.SetInt("table_accesses", stats.TableAccesses)
	rsp.SetInt("phys_reads", stats.RefineIO.PhysReads)
	rsp.SetInt("cache_hits", stats.RefineIO.CacheHits)
	fetch := rsp.Child("fetch")
	fetch.SetInt("reads", stats.RefineIO.PhysReads)
	fetch.EndAt(fetchWall)
	rsp.EndAt(stats.RefineWall)

	msp := parent.Child("merge")
	msp.SetInt("pools", int64(workers))
	msp.EndAt(stats.MergeWall)
}

// estimateInfo computes the lower-bound difference for one term on the tuple
// at (tid, pos) — est over signatures for text, slice distance for numbers,
// and the ndf penalty when the element is absent — plus whether the tuple
// was ndf on the attribute (for trace and Explain instrumentation).
func (ts *termState) estimateInfo(m *metric.Metric, tid model.TID, pos int64) (float64, bool, error) {
	if ts.cursor == nil {
		// Attribute unknown to the index: every tuple is ndf on it.
		return m.NDFPenalty, true, nil
	}
	e, err := ts.cursor.MoveTo(tid, pos)
	if err != nil {
		return 0, false, err
	}
	if e.NDF {
		return m.NDFPenalty, true, nil
	}
	switch ts.term.Kind {
	case model.KindText:
		best := math.Inf(1)
		for i := range e.Sigs {
			if d := ts.qs.Est(e.Sigs[i]); d < best {
				best = d
			}
			if best == 0 {
				break
			}
		}
		return best, false, nil
	case model.KindNumeric:
		return ts.st.quant.MinDist(ts.term.Num, e.Code), false, nil
	}
	return m.NDFPenalty, true, nil
}
