package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// buildOnFaulty builds a small table+index where the index device fails
// after `ops` operations.
func buildOnFaulty(t *testing.T, ops int64) (*table.Table, *storage.FaultDevice, *storage.Pool) {
	t.Helper()
	pool := storage.NewPool(0, 1<<20)
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(pool, storage.NewMemDevice()), cat)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cat.AddAttr("a", model.KindText)
	b, _ := cat.AddAttr("b", model.KindNumeric)
	for i := 0; i < 50; i++ {
		_, _, err := tbl.Append(map[model.AttrID]model.Value{
			a: model.Text(fmt.Sprintf("value %d", i)),
			b: model.Num(float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl, storage.NewFaultDevice(storage.NewMemDevice(), ops), pool
}

func TestBuildPropagatesDeviceErrors(t *testing.T) {
	// Whatever the budget, Build must either succeed or return the injected
	// error — never panic or mis-build.
	for ops := int64(0); ops < 400; ops += 13 {
		tbl, dev, pool := buildOnFaulty(t, ops)
		ix, err := Build(tbl, storage.NewFile(pool, dev), Options{})
		if err != nil {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("ops=%d: unexpected error %v", ops, err)
			}
			continue
		}
		// A successful build on a still-armed device must answer queries.
		q := (&model.Query{K: 3}).TextTerm(0, "value 7")
		if _, _, err := ix.Search(q, metric.Default()); err != nil && !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("ops=%d: search error %v", ops, err)
		}
	}
}

func TestSearchPropagatesDeviceErrors(t *testing.T) {
	tbl, dev, pool := buildOnFaulty(t, -1) // unlimited during build
	ix, err := Build(tbl, storage.NewFile(pool, dev), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool.InvalidateFile(1) // force physical reads on the index device
	dev.Trip()
	q := (&model.Query{K: 3}).TextTerm(0, "value 7")
	if _, _, err := ix.Search(q, metric.Default()); err == nil {
		t.Fatal("search on tripped device succeeded")
	} else if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestInsertPropagatesDeviceErrors(t *testing.T) {
	tbl, dev, pool := buildOnFaulty(t, -1)
	ix, err := Build(tbl, storage.NewFile(pool, dev), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev.Trip()
	_, err = ix.Insert(map[model.AttrID]model.Value{0: model.Text("new")})
	if err == nil {
		t.Fatal("insert on tripped device succeeded")
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("unexpected error %v", err)
	}
}
