package core

import (
	"encoding/binary"
	"fmt"

	"github.com/sparsewide/iva/internal/storage"
)

// Stripe checkpoints cut the tuple list into fixed-width stripes so that the
// parallel filter plan can open cursors in the middle of every list. A
// checkpoint for tuple-list position P records, per attribute, the bit
// offset of the next unconsumed element header in that attribute's vector
// list — the "normalized" resume point: never mid-element, and never a
// frozen read-ahead header, so a fresh cursor seeked there decodes exactly
// the elements belonging to positions ≥ P. The tuple list itself needs no
// recorded offset: its elements are fixed-width, so position P lives at bit
// P·(ltid+ptrBits).
//
// Checkpoints are recorded while lists are written (Build, Insert,
// InsertBatch) and persisted in their own segment chain (see FORMAT.md §
// checkpoint chain); deletions tombstone in place and leave them intact.

// defaultCheckpointEvery is the stripe width in tuple-list entries. At the
// paper's scales a stripe is a few hundred KiB of vector-list bits — coarse
// enough that checkpoint storage is negligible, fine enough that any worker
// pool load-balances well.
const defaultCheckpointEvery = 2048

// checkpoint is the resume state for one stripe boundary.
type checkpoint struct {
	// attrOff[a] is the bit offset of the next unconsumed element header in
	// attribute a's vector list. Attributes registered after the checkpoint
	// was recorded are absent (treated as offset 0, correct because their
	// lists hold only later tuples' elements).
	attrOff []int64
}

// attrOffset returns the resume offset of attribute a at this checkpoint.
func (c checkpoint) attrOffset(a int) int64 {
	if a < len(c.attrOff) {
		return c.attrOff[a]
	}
	return 0
}

// checkpointsEnabled reports whether this index records checkpoints (false
// for indexes opened from a v1 file, until their next rebuild).
func (ix *Index) checkpointsEnabled() bool { return ix.ckptChain != storage.NoSegment }

// recordCheckpoint appends the checkpoint for the stripe starting at the
// given tuple-list position. offs must be the per-attribute normalized
// offsets at that boundary. Caller holds ix.mu.
func (ix *Index) recordCheckpoint(pos int64, offs []int64) {
	if !ix.checkpointsEnabled() {
		return
	}
	if want := pos / ix.ckptEvery; int64(len(ix.ckpts)) != want {
		// Defensive: a gap would make stripe s resolve to the wrong record.
		// Disable the parallel plan rather than scan from wrong offsets.
		ix.ckptChain = storage.NoSegment
		ix.ckpts = nil
		return
	}
	ix.ckpts = append(ix.ckpts, checkpoint{attrOff: offs})
}

// currentAttrOffsets snapshots each attribute's committed bit length — the
// normalized resume offsets at the current tail. extra(a) adds the bits an
// in-flight writer holds for attribute a beyond the committed length; nil
// means no pending bits.
func (ix *Index) currentAttrOffsets(extra func(a int) int64) []int64 {
	offs := make([]int64, len(ix.attrs))
	for a := range ix.attrs {
		offs[a] = ix.attrs[a].bitLen
		if extra != nil {
			offs[a] += extra(a)
		}
	}
	return offs
}

// --- persistence -----------------------------------------------------------

// Checkpoint chain layout (little-endian, byte-aligned):
//
//	u32 count
//	count × record: u32 nattrs | nattrs × u64 attrOff | u32 crc   (v4)
//
// The per-record CRC32C trailer covers the record bytes folded with the
// record's index, so a record that is bit-perfect but sitting at the wrong
// position still fails verification. Trailers are deterministic, which keeps
// the chain append-stable (old records re-serialize to identical bytes).
// Pre-v4 chains carry no trailers; Sync migrates them to a fresh chain.
const ckptTrailerLen = 4

// ckptRecordCRC folds a serialized record (nattrs word + offsets) with its
// index.
func ckptRecordCRC(rec []byte, index int) uint32 {
	var idx [4]byte
	binary.LittleEndian.PutUint32(idx[:], uint32(index))
	return storage.ChecksumUpdate(storage.Checksum(rec), idx[:])
}

func (ix *Index) writeCheckpoints() error {
	if !ix.checkpointsEnabled() {
		return nil
	}
	size := 4
	for _, c := range ix.ckpts {
		size += 4 + 8*len(c.attrOff) + ckptTrailerLen
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(ix.ckpts)))
	p := 4
	for i, c := range ix.ckpts {
		start := p
		binary.LittleEndian.PutUint32(buf[p:], uint32(len(c.attrOff)))
		p += 4
		for _, off := range c.attrOff {
			binary.LittleEndian.PutUint64(buf[p:], uint64(off))
			p += 8
		}
		binary.LittleEndian.PutUint32(buf[p:], ckptRecordCRC(buf[start:p], i))
		p += ckptTrailerLen
	}
	return ix.segs.WriteAt(ix.ckptChain, buf, 0)
}

// readCheckpoints loads the checkpoint records. count is the committed
// record count from a v3 superblock; pass -1 for older files, which keep the
// count in the chain header. Either way the count is clamped to the stripes
// the (committed) entry count implies: a torn pre-v3 sync, or a corrupt
// file, can present a larger chain-header count, and the excess records
// describe stripes beyond the synced prefix. Records inside the clamp are
// trustworthy because the chain is append-stable — a rewrite re-serializes
// old stripes to identical bytes at identical offsets.
func (ix *Index) readCheckpoints(count int) error {
	if !ix.checkpointsEnabled() {
		return nil
	}
	if count < 0 {
		var hdr [4]byte
		if err := ix.segs.ReadAt(ix.ckptChain, hdr[:], 0); err != nil {
			return err
		}
		count = int(binary.LittleEndian.Uint32(hdr[:]))
	}
	// One checkpoint per reached stripe boundary; the clamp also bounds the
	// pre-allocation below against hostile counts.
	if maxCkpts := int64(len(ix.entries))/ix.ckptEvery + 1; int64(count) > maxCkpts {
		count = int(maxCkpts)
	}
	ix.ckpts = make([]checkpoint, 0, count)
	off := int64(4)
	for i := 0; i < count; i++ {
		var nb [4]byte
		if err := ix.segs.ReadAt(ix.ckptChain, nb[:], off); err != nil {
			return err
		}
		nattrs := int(binary.LittleEndian.Uint32(nb[:]))
		if nattrs > len(ix.attrs) {
			if ix.version >= 4 {
				// An implausible count in a v4 chain is corruption (the nattrs
				// word is covered by the record trailer it ruins).
				return ix.corruptCheckpoint(i, count)
			}
			return fmt.Errorf("core: checkpoint %d references %d attrs, index has %d", i, nattrs, len(ix.attrs))
		}
		rec := make([]byte, 4+8*nattrs)
		if err := ix.segs.ReadAt(ix.ckptChain, rec, off); err != nil {
			return err
		}
		off += int64(len(rec))
		if ix.version >= 4 {
			var tr [ckptTrailerLen]byte
			if err := ix.segs.ReadAt(ix.ckptChain, tr[:], off); err != nil {
				return err
			}
			off += ckptTrailerLen
			if binary.LittleEndian.Uint32(tr[:]) != ckptRecordCRC(rec, i) {
				return ix.corruptCheckpoint(i, count)
			}
		}
		offs := make([]int64, nattrs)
		for a := 0; a < nattrs; a++ {
			offs[a] = int64(binary.LittleEndian.Uint64(rec[4+a*8:]))
		}
		ix.ckpts = append(ix.ckpts, checkpoint{attrOff: offs})
	}
	return nil
}

// corruptCheckpoint handles a checkpoint record whose CRC trailer failed at
// open. Strict fails the open. DegradeReads drops the damaged record and
// everything after it — but a truncated checkpoint list cannot drive the
// striped plan (stripe s resumes from record s, and missing tail records
// would silently skip the tuples they cover), so checkpointing is disabled
// in-memory: searches fall back to the sequential plan and the next rebuild
// re-records a full set. droppedCkpts counts the discarded records.
func (ix *Index) corruptCheckpoint(i, count int) error {
	if ix.imode == IntegrityStrict {
		return &storage.CorruptionError{File: "iva.idx",
			Offset: ix.segs.SegmentOffset(ix.ckptChain), Segment: uint32(ix.ckptChain),
			Detail: fmt.Sprintf("checkpoint record %d checksum mismatch", i)}
	}
	it := &ix.integ
	it.mu.Lock()
	it.droppedCkpts = count - i
	it.mu.Unlock()
	ix.ckptChain = storage.NoSegment
	ix.ckpts = nil
	return nil
}
