package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/topk"
)

// fixture is a small random SWT with its index.
type fixture struct {
	pool *storage.Pool
	tbl  *table.Table
	ix   *Index

	textAttrs []model.AttrID
	numAttrs  []model.AttrID
	rng       *rand.Rand
}

func newFixture(t testing.TB, tuples int, opts Options, seed int64) *fixture {
	t.Helper()
	fx := &fixture{
		pool: storage.NewPool(0, 10<<20),
		rng:  rand.New(rand.NewSource(seed)),
	}
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(fx.pool, storage.NewMemDevice()), cat)
	if err != nil {
		t.Fatal(err)
	}
	fx.tbl = tbl
	for i := 0; i < 12; i++ {
		id, err := cat.AddAttr(fmt.Sprintf("text%d", i), model.KindText)
		if err != nil {
			t.Fatal(err)
		}
		fx.textAttrs = append(fx.textAttrs, id)
	}
	for i := 0; i < 4; i++ {
		id, err := cat.AddAttr(fmt.Sprintf("num%d", i), model.KindNumeric)
		if err != nil {
			t.Fatal(err)
		}
		fx.numAttrs = append(fx.numAttrs, id)
	}
	for i := 0; i < tuples; i++ {
		if _, _, err := tbl.Append(fx.randValues()); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(tbl, storage.NewFile(fx.pool, storage.NewMemDevice()), opts)
	if err != nil {
		t.Fatal(err)
	}
	fx.ix = ix
	return fx
}

func (fx *fixture) randValues() map[model.AttrID]model.Value {
	vals := make(map[model.AttrID]model.Value)
	n := 1 + fx.rng.Intn(5)
	for j := 0; j < n; j++ {
		if fx.rng.Intn(3) == 0 {
			a := fx.numAttrs[fx.rng.Intn(len(fx.numAttrs))]
			vals[a] = model.Num(float64(fx.rng.Intn(2000)) - 1000)
		} else {
			a := fx.textAttrs[fx.rng.Intn(len(fx.textAttrs))]
			k := 1 + fx.rng.Intn(2)
			strs := make([]string, k)
			for s := range strs {
				strs[s] = fx.randWord()
			}
			vals[a] = model.Text(strs...)
		}
	}
	// Make the first text attribute dense so some list becomes Type III.
	vals[fx.textAttrs[0]] = model.Text(fx.randWord())
	// And the first numeric attribute dense for Type IV.
	vals[fx.numAttrs[0]] = model.Num(float64(fx.rng.Intn(500)))
	return vals
}

var words = []string{
	"digital camera", "job position", "music album", "canon", "sony",
	"google", "computer", "software", "wide-angle", "telephoto",
	"michael jackson", "red", "white", "brown", "benz", "apple",
}

func (fx *fixture) randWord() string {
	w := words[fx.rng.Intn(len(words))]
	if fx.rng.Intn(4) == 0 { // typo
		b := []byte(w)
		p := fx.rng.Intn(len(b))
		b[p] = byte('a' + fx.rng.Intn(26))
		w = string(b)
	}
	return w
}

// randQuery samples values from stored tuples so the query distribution
// follows the data distribution (§V-A).
func (fx *fixture) randQuery(t testing.TB, nvals, k int) *model.Query {
	t.Helper()
	q := &model.Query{K: k}
	seen := map[model.AttrID]bool{}
	for len(q.Terms) < nvals {
		tid := model.TID(fx.rng.Intn(int(fx.tbl.NextTID())))
		pos, ok := fx.ix.posByTID[tid]
		if !ok {
			continue
		}
		tp, err := fx.tbl.Fetch(fx.ix.entries[pos].ptr)
		if err != nil {
			t.Fatal(err)
		}
		attrs := tp.Attrs()
		a := attrs[fx.rng.Intn(len(attrs))]
		if seen[a] {
			continue
		}
		seen[a] = true
		v := tp.Values[a]
		if v.Kind == model.KindNumeric {
			q.NumTerm(a, v.Num)
		} else {
			q.TextTerm(a, v.Strs[fx.rng.Intn(len(v.Strs))])
		}
	}
	return q
}

// bruteForce computes the exact top-k by scanning live tuples.
func bruteForce(t testing.TB, fx *fixture, q *model.Query, m *metric.Metric) []model.Result {
	t.Helper()
	pool := topk.New(q.K)
	for _, e := range fx.ix.entries {
		if e.deleted {
			continue
		}
		tp, err := fx.tbl.Fetch(e.ptr)
		if err != nil {
			t.Fatal(err)
		}
		pool.Insert(e.tid, m.TupleDistance(q, tp))
	}
	return pool.Results()
}

func sameDistances(a, b []model.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func TestSearchMatchesBruteForce(t *testing.T) {
	fx := newFixture(t, 400, Options{}, 101)
	for _, m := range []*metric.Metric{
		metric.New(metric.L1{}, metric.Equal{}),
		metric.New(metric.L2{}, metric.Equal{}),
		metric.New(metric.LInf{}, metric.Equal{}),
	} {
		for trial := 0; trial < 25; trial++ {
			q := fx.randQuery(t, 1+fx.rng.Intn(3), 1+fx.rng.Intn(10))
			got, _, err := fx.ix.Search(q, m)
			if err != nil {
				t.Fatalf("%s trial %d: %v", m.Name(), trial, err)
			}
			want := bruteForce(t, fx, q, m)
			if !sameDistances(got, want) {
				t.Fatalf("%s trial %d: distances differ\n got %v\nwant %v\nquery %+v",
					m.Name(), trial, got, want, q)
			}
		}
	}
}

func TestSearchAcrossParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep")
	}
	for _, alpha := range []float64{0.10, 0.30} {
		for _, n := range []int{2, 3} {
			fx := newFixture(t, 200, Options{Alpha: alpha, N: n}, int64(n)*1000+int64(alpha*100))
			m := metric.Default()
			for trial := 0; trial < 10; trial++ {
				q := fx.randQuery(t, 2, 5)
				got, _, err := fx.ix.Search(q, m)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForce(t, fx, q, m)
				if !sameDistances(got, want) {
					t.Fatalf("α=%v n=%d trial %d: mismatch", alpha, n, trial)
				}
			}
		}
	}
}

func TestSearchFiltersFetches(t *testing.T) {
	fx := newFixture(t, 500, Options{}, 103)
	m := metric.Default()
	q := fx.randQuery(t, 3, 10)
	_, stats, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != fx.tbl.Live() {
		t.Fatalf("scanned %d of %d live tuples", stats.Scanned, fx.tbl.Live())
	}
	if stats.TableAccesses >= stats.Scanned {
		t.Fatalf("no filtering: %d accesses for %d scanned", stats.TableAccesses, stats.Scanned)
	}
	if stats.TableAccesses < int64(q.K) {
		t.Fatalf("accesses %d < k; pool cannot be full", stats.TableAccesses)
	}
}

func TestInsertThenSearch(t *testing.T) {
	fx := newFixture(t, 150, Options{}, 104)
	m := metric.Default()
	// Insert new tuples through the index (§IV-B tail appends).
	for i := 0; i < 60; i++ {
		if _, err := fx.ix.Insert(fx.randValues()); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 15; trial++ {
		q := fx.randQuery(t, 2, 8)
		got, _, err := fx.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, fx, q, m)
		if !sameDistances(got, want) {
			t.Fatalf("trial %d after inserts: mismatch\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestDeleteThenSearch(t *testing.T) {
	fx := newFixture(t, 200, Options{}, 105)
	m := metric.Default()
	for i := 0; i < 50; i++ {
		tid := model.TID(fx.rng.Intn(200))
		err := fx.ix.Delete(tid)
		if err != nil && err != ErrNotFound {
			t.Fatal(err)
		}
	}
	if fx.ix.Deleted() == 0 {
		t.Fatal("no deletions registered")
	}
	for trial := 0; trial < 15; trial++ {
		q := fx.randQuery(t, 2, 8)
		got, _, err := fx.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, fx, q, m)
		if !sameDistances(got, want) {
			t.Fatalf("trial %d after deletes: mismatch", trial)
		}
		for _, r := range got {
			if _, live := fx.ix.posByTID[r.TID]; !live {
				t.Fatalf("deleted tuple %d in results", r.TID)
			}
		}
	}
}

func TestUpdateAssignsNewTID(t *testing.T) {
	fx := newFixture(t, 50, Options{}, 106)
	vals := fx.randValues()
	newTID, err := fx.ix.Update(7, vals)
	if err != nil {
		t.Fatal(err)
	}
	if newTID < 50 {
		t.Fatalf("updated tuple kept old id space: %d", newTID)
	}
	if err := fx.ix.Delete(7); err != ErrNotFound {
		t.Fatalf("old tid still live: %v", err)
	}
	tp, err := fx.ix.Fetch(newTID)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Values) != len(vals) {
		t.Fatal("updated values lost")
	}
}

func TestDeleteUnknown(t *testing.T) {
	fx := newFixture(t, 10, Options{}, 107)
	if err := fx.ix.Delete(999); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	pool := storage.NewPool(0, 10<<20)
	cat := table.NewCatalog()
	tblDev := storage.NewMemDevice()
	idxDev := storage.NewMemDevice()
	tbl, _ := table.New(storage.NewFile(pool, tblDev), cat)
	a, _ := cat.AddAttr("name", model.KindText)
	b, _ := cat.AddAttr("price", model.KindNumeric)
	for i := 0; i < 40; i++ {
		tbl.Append(map[model.AttrID]model.Value{
			a: model.Text(words[i%len(words)]),
			b: model.Num(float64(i * 10)),
		})
	}
	ix, err := Build(tbl, storage.NewFile(pool, idxDev), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	m := metric.Default()
	q := (&model.Query{K: 5}).TextTerm(a, "canon").NumTerm(b, 100)
	want, _, err := ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}

	// Reopen both files.
	tbl2, err := table.Open(storage.NewFile(pool, tblDev), cat)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(storage.NewFile(pool, idxDev), tbl2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix2.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDistances(got, want) {
		t.Fatalf("reopened index differs: %v vs %v", got, want)
	}
	if ix2.Entries() != ix.Entries() {
		t.Fatalf("entries: %d vs %d", ix2.Entries(), ix.Entries())
	}
	// And it still accepts updates.
	if _, err := ix2.Insert(map[model.AttrID]model.Value{a: model.Text("sony")}); err != nil {
		t.Fatal(err)
	}
}

func TestForceTypeAblation(t *testing.T) {
	// Forcing Type I must preserve correctness (it is always legal).
	fx := newFixture(t, 150, Options{ForceType: 1}, 108)
	m := metric.Default()
	for trial := 0; trial < 10; trial++ {
		q := fx.randQuery(t, 2, 5)
		got, _, err := fx.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDistances(got, bruteForce(t, fx, q, m)) {
			t.Fatalf("trial %d: forced Type I mismatch", trial)
		}
	}
}

func TestListTypeSelectionPicksPositionalForDense(t *testing.T) {
	fx := newFixture(t, 300, Options{}, 109)
	// textAttrs[0] and numAttrs[0] are defined in every tuple; with 300
	// tuples the positional types win their formulas.
	if lt, ok := fx.ix.ListType(fx.textAttrs[0]); !ok || lt.String() != "III" {
		t.Fatalf("dense text attr list type = %v (ok=%v), want III", lt, ok)
	}
	if lt, ok := fx.ix.ListType(fx.numAttrs[0]); !ok || lt.String() != "IV" {
		t.Fatalf("dense numeric attr list type = %v (ok=%v), want IV", lt, ok)
	}
	// A sparse attribute should not be positional.
	if lt, ok := fx.ix.ListType(fx.textAttrs[5]); ok && (lt.String() == "III") {
		t.Fatalf("sparse text attr got positional type %v", lt)
	}
}

func TestQueryOnPostBuildAttribute(t *testing.T) {
	fx := newFixture(t, 60, Options{}, 110)
	newAttr, err := fx.tbl.Catalog().AddAttr("brand-new", model.KindText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.ix.Insert(map[model.AttrID]model.Value{newAttr: model.Text("fresh value")}); err != nil {
		t.Fatal(err)
	}
	m := metric.Default()
	q := (&model.Query{K: 3}).TextTerm(newAttr, "fresh value")
	got, _, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(t, fx, q, m)
	if !sameDistances(got, want) {
		t.Fatalf("post-build attribute query mismatch: %v vs %v", got, want)
	}
	if got[0].Dist != 0 {
		t.Fatalf("exact match not at distance 0: %v", got[0])
	}
}

func TestSearchValidation(t *testing.T) {
	fx := newFixture(t, 20, Options{}, 111)
	m := metric.Default()
	if _, _, err := fx.ix.Search(&model.Query{K: 0}, m); err == nil {
		t.Fatal("k=0 accepted")
	}
	// Kind mismatch: text query on numeric attribute.
	q := (&model.Query{K: 1}).TextTerm(fx.numAttrs[0], "oops")
	if _, _, err := fx.ix.Search(q, m); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestTIDOverflowTriggersRebuildError(t *testing.T) {
	fx := newFixture(t, 20, Options{TIDHeadroom: 4}, 112)
	var sawRebuild bool
	for i := 0; i < 40; i++ {
		_, err := fx.ix.Insert(fx.randValues())
		if err == ErrNeedsRebuild {
			sawRebuild = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawRebuild {
		t.Fatal("tid overflow never reported ErrNeedsRebuild")
	}
}

func TestITFWeightedSearch(t *testing.T) {
	fx := newFixture(t, 200, Options{}, 113)
	cat := fx.tbl.Catalog()
	itf := metric.NewITF(fx.tbl.Live, func(a model.AttrID) int64 {
		info, _ := cat.Info(a)
		return info.DF
	})
	m := metric.New(metric.L2{}, itf)
	for trial := 0; trial < 10; trial++ {
		q := fx.randQuery(t, 3, 10)
		got, _, err := fx.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDistances(got, bruteForce(t, fx, q, m)) {
			t.Fatalf("ITF trial %d: mismatch", trial)
		}
	}
}

func BenchmarkSearch3Terms(b *testing.B) {
	fx := newFixture(b, 2000, Options{}, 200)
	m := metric.Default()
	queries := make([]*model.Query, 16)
	for i := range queries {
		queries[i] = fx.randQuery(b, 3, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fx.ix.Search(queries[i%len(queries)], m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	fx := newFixture(b, 100, Options{TIDHeadroom: 1 << 24}, 201)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.ix.Insert(fx.randValues()); err != nil {
			b.Fatal(err)
		}
	}
}
