package core

import (
	"context"
	"math"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/vector"
)

// TermExplain describes how one query term filtered during an explained
// search: how often its attribute was defined, how its lower bounds were
// distributed, and how tight the bounds were against the exact differences
// of the tuples that were fetched.
type TermExplain struct {
	Attr     model.AttrID
	Kind     model.Kind
	ListType vector.ListType
	Alpha    float64

	Defined int64 // tuples with a vector element (non-ndf)
	NDF     int64 // tuples estimated at the ndf penalty

	MeanEst float64 // mean lower bound over defined tuples
	MinEst  float64
	MaxEst  float64

	// Tightness compares bounds with truth on fetched tuples:
	// mean(est / exact) over fetched tuples with exact > 0 (1 = perfect).
	Tightness float64
	tightN    int64
}

// Explain reports what a query would do: the result, plus per-term bound
// statistics and the filter outcome. It runs the same Algorithm 1 pass as
// Search with instrumentation, so it is slower; use it for tuning α and n
// on real workloads, not on the hot path.
type Explain struct {
	Results []model.Result
	Scanned int64
	Fetched int64 // table accesses
	// PoolMaxFinal is the k-th distance at the end of the scan: the bar a
	// tuple's estimate had to beat to be fetched.
	PoolMaxFinal float64
	Terms        []TermExplain
}

// ExplainSearch runs q with instrumentation (see Explain). Both passes use
// the sequential plan: Explain's counters describe the canonical Algorithm 1
// admission sequence, which the parallel plan only has to match in results.
func (ix *Index) ExplainSearch(q *model.Query, m *metric.Metric) (*Explain, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		m = metric.Default()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	res, stats, err := ix.searchSequential(context.Background(), q, m, nil) // warm pass for the result itself
	if err != nil {
		return nil, err
	}
	ex := &Explain{Results: res, Scanned: stats.Scanned, Fetched: stats.TableAccesses}
	if len(res) > 0 {
		ex.PoolMaxFinal = res[len(res)-1].Dist
	}

	var rds readerSet
	defer rds.close()
	terms := make([]termState, len(q.Terms))
	ex.Terms = make([]TermExplain, len(q.Terms))
	for i, term := range q.Terms {
		ts := termState{term: term}
		te := TermExplain{Attr: term.Attr, Kind: term.Kind, MinEst: math.Inf(1)}
		if int(term.Attr) < len(ix.attrs) && ix.attrs[term.Attr].exists {
			st := &ix.attrs[term.Attr]
			src, err := ix.termSource(st, rds.open(ix, st.chain, st.physBits()))
			if err != nil {
				return nil, err
			}
			cur, err := vector.NewCursor(st.layout, src)
			if err != nil {
				return nil, err
			}
			ts.st, ts.cursor = st, cur
			te.ListType = st.layout.Type
			te.Alpha = st.alpha
		}
		if term.Kind == model.KindText {
			codec := ix.codec
			if ts.st != nil && ts.st.layout.Codec != nil {
				codec = ts.st.layout.Codec
			}
			ts.qs = codec.NewQueryString(term.Str)
		}
		terms[i] = ts
		ex.Terms[i] = te
	}

	tr := rds.open(ix, ix.tupleChain, ix.tupleBits)
	diffs := make([]float64, len(terms))
	for pos := int64(0); pos < int64(len(ix.entries)); pos++ {
		tidBits, err := tr.ReadBits(ix.ltid)
		if err != nil {
			return nil, err
		}
		ptr, err := tr.ReadBits(ptrBits)
		if err != nil {
			return nil, err
		}
		if ptr == tombstonePtr {
			continue
		}
		tid := model.TID(tidBits)
		ndfHere := make([]bool, len(terms))
		for i := range terms {
			d, ndf, err := terms[i].estimateInfo(m, tid, pos)
			if err != nil {
				return nil, err
			}
			diffs[i] = d
			te := &ex.Terms[i]
			if ndf {
				te.NDF++
				ndfHere[i] = true
				continue
			}
			te.Defined++
			te.MeanEst += d
			if d < te.MinEst {
				te.MinEst = d
			}
			if d > te.MaxEst {
				te.MaxEst = d
			}
		}
		// Tightness sample: compare bounds to exact diffs on tuples the
		// real search would fetch (estimate below the final pool bar).
		if m.Distance(q.Terms, diffs) < ex.PoolMaxFinal {
			tp, err := ix.tbl.Fetch(int64(ptr))
			if err != nil {
				return nil, err
			}
			for i, term := range q.Terms {
				if ndfHere[i] {
					continue
				}
				exact := m.TermDiff(term, tp)
				if exact > 0 {
					ex.Terms[i].Tightness += diffs[i] / exact
					ex.Terms[i].tightN++
				}
			}
		}
	}
	for i := range ex.Terms {
		te := &ex.Terms[i]
		if te.Defined > 0 {
			te.MeanEst /= float64(te.Defined)
		} else {
			te.MinEst = 0
		}
		if te.tightN > 0 {
			te.Tightness /= float64(te.tightN)
		}
	}
	return ex, nil
}
