package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// The fault-point torture sweep: one scripted Build → Insert → Sync sequence
// is replayed with a FaultDevice armed to fail after every possible number
// of successful device operations (budget 0, 1, 2, … until a run completes
// without tripping), once with the index device armed and once with the
// table device armed. Every crash point must leave a state from which a
// fresh process — new page pool, no in-memory leftovers — recovers exactly
// the last synced prefix: some sync-time snapshot opens cleanly, no acked
// entry is lost, the full integrity check passes, and the store resumes
// inserts and syncs.
//
// Deletes are deliberately absent from the script: tombstoning overwrites a
// tuple-list ptr in place (§IV-B), so a tombstone can be durable before the
// Sync that acknowledges it — the synced-prefix framing used here would call
// that state "too new". The recovery properties for deletes are covered by
// the differential oracle's reopen checks instead.

// tortureOpts uses a tiny stripe width so the script's handful of syncs
// exercise checkpoint persistence too.
func tortureOpts() Options { return Options{CheckpointEvery: 8} }

const tortureSeedRows = 24

// tortureSnapshot is a recovery candidate: the entry count and catalog as
// they stood immediately before a sync attempt (equivalently: as committed
// if that attempt fully succeeds).
type tortureSnapshot struct {
	entries int64
	cat     []byte
}

type tortureState struct {
	tblDev, idxDev storage.Device // armed or raw
	fd             *storage.FaultDevice
	poolBytes      int64

	pool       *storage.Pool
	tblF, idxF *storage.File
	cat        *table.Catalog
	tbl        *table.Table
	ix         *Index
	num, txt   model.AttrID

	rows       int // rows generated so far (deterministic values)
	built      bool
	candidates []tortureSnapshot
	acked      int64 // entries at the last fully acknowledged sync; -1 before
}

func newTortureState(t *testing.T, armTable bool, budget, poolBytes int64) *tortureState {
	t.Helper()
	s := &tortureState{acked: -1, poolBytes: poolBytes}
	tblMem, idxMem := storage.NewMemDevice(), storage.NewMemDevice()
	s.tblDev, s.idxDev = storage.Device(tblMem), storage.Device(idxMem)
	if armTable {
		s.fd = storage.NewFaultDevice(tblMem, budget)
		s.tblDev = s.fd
	} else {
		s.fd = storage.NewFaultDevice(idxMem, budget)
		s.idxDev = s.fd
	}
	s.pool = storage.NewPool(0, s.poolBytes)
	s.tblF = storage.NewFile(s.pool, s.tblDev)
	s.idxF = storage.NewFile(s.pool, s.idxDev)
	s.cat = table.NewCatalog()
	var err error
	if s.num, err = s.cat.AddAttr("price", model.KindNumeric); err != nil {
		t.Fatal(err)
	}
	if s.txt, err = s.cat.AddAttr("title", model.KindText); err != nil {
		t.Fatal(err)
	}
	return s
}

func (s *tortureState) row() map[model.AttrID]model.Value {
	s.rows++
	vals := map[model.AttrID]model.Value{
		s.num: model.Num(float64(s.rows)*7.25 + 3),
	}
	if s.rows%2 == 0 {
		vals[s.txt] = model.Text(fmt.Sprintf("item-%d", s.rows), "torture")
	}
	return vals
}

func (s *tortureState) record() {
	s.candidates = append(s.candidates, tortureSnapshot{
		entries: s.ix.Entries(),
		cat:     s.cat.Encode(),
	})
}

// script is the faulted sequence. Any returned error must be the injected
// one; the driver asserts that.
func (s *tortureState) script() error {
	var err error
	if s.tbl, err = table.New(s.tblF, s.cat); err != nil {
		return err
	}
	for i := 0; i < tortureSeedRows; i++ {
		if _, _, err := s.tbl.Append(s.row()); err != nil {
			return err
		}
	}
	if err := s.tbl.Sync(); err != nil {
		return err
	}
	if s.ix, err = Build(s.tbl, s.idxF, tortureOpts()); err != nil {
		return err
	}
	// Build ends with a successful Sync: the first committed state.
	s.built = true
	s.record()
	s.acked = s.ix.Entries()
	for i := 0; i < 12; i++ {
		if _, err := s.ix.Insert(s.row()); err != nil {
			return err
		}
		if (i+1)%3 == 0 {
			s.record()
			// Table before index: the index's synced prefix must never
			// reference records beyond the table's synced prefix.
			if err := s.tbl.Sync(); err != nil {
				return err
			}
			if err := s.ix.Sync(); err != nil {
				return err
			}
			s.acked = s.ix.Entries()
		}
	}
	return nil
}

func (s *tortureState) close() {
	s.tblF.Close()
	s.idxF.Close()
}

// searchAssert runs one query and checks the result count.
func searchAssert(t *testing.T, budget int64, ix *Index, num model.AttrID) {
	t.Helper()
	q := &model.Query{K: 5}
	q.NumTerm(num, 50)
	res, _, err := ix.Search(q, nil)
	if err != nil {
		t.Fatalf("budget %d: post-recovery search: %v", budget, err)
	}
	want := 5
	if live := int(ix.Entries() - ix.Deleted()); live < want {
		want = live
	}
	if len(res) != want {
		t.Fatalf("budget %d: post-recovery search returned %d results, want %d", budget, len(res), want)
	}
}

// resumeAssert proves the recovered store is fully operational: inserts,
// a full sync, a clean integrity check and a search.
func resumeAssert(t *testing.T, budget int64, s *tortureState, tbl *table.Table, ix *Index) {
	t.Helper()
	for j := 0; j < 4; j++ {
		if _, err := ix.Insert(s.row()); err != nil {
			t.Fatalf("budget %d: resumed insert: %v", budget, err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatalf("budget %d: resumed table sync: %v", budget, err)
	}
	if err := ix.Sync(); err != nil {
		t.Fatalf("budget %d: resumed index sync: %v", budget, err)
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatalf("budget %d: post-resume check: %v", budget, err)
	}
	if !rep.Ok() {
		t.Fatalf("budget %d: post-resume check: %v", budget, rep.Problems)
	}
	searchAssert(t, budget, ix, s.num)
}

// recover simulates the process restart: the fault is disarmed (the "disk"
// keeps whatever writes succeeded), all caches are dropped, and the store is
// reopened from one of the sync-time candidates.
func (s *tortureState) recover(t *testing.T, budget int64) {
	t.Helper()
	s.fd.Reset(-1)
	pool := storage.NewPool(0, s.poolBytes)
	tblF := storage.NewFile(pool, s.tblDev)
	idxF := storage.NewFile(pool, s.idxDev)

	if !s.built {
		// Crash before Build committed: there is no index to salvage (the
		// file has no valid superblock yet); recovery is re-running the
		// setup, which overwrites both files from scratch.
		cat := table.NewCatalog()
		var err error
		if s.num, err = cat.AddAttr("price", model.KindNumeric); err != nil {
			t.Fatal(err)
		}
		if s.txt, err = cat.AddAttr("title", model.KindText); err != nil {
			t.Fatal(err)
		}
		s.cat, s.rows = cat, 0
		tbl, err := table.New(tblF, cat)
		if err != nil {
			t.Fatalf("budget %d: rebuild table: %v", budget, err)
		}
		for i := 0; i < tortureSeedRows; i++ {
			if _, _, err := tbl.Append(s.row()); err != nil {
				t.Fatalf("budget %d: rebuild append: %v", budget, err)
			}
		}
		if err := tbl.Sync(); err != nil {
			t.Fatalf("budget %d: rebuild table sync: %v", budget, err)
		}
		ix, err := Build(tbl, idxF, tortureOpts())
		if err != nil {
			t.Fatalf("budget %d: rebuild: %v", budget, err)
		}
		rep, err := ix.Check()
		if err != nil || !rep.Ok() {
			t.Fatalf("budget %d: rebuild check: %v %v", budget, err, rep.Problems)
		}
		resumeAssert(t, budget, s, tbl, ix)
		return
	}

	// Crash after Build: exactly one candidate matches the committed
	// superblock (entry counts are strictly increasing across snapshots).
	var (
		ix2  *Index
		tbl2 *table.Table
	)
	for i := len(s.candidates) - 1; i >= 0; i-- {
		cand := s.candidates[i]
		cat2, err := table.DecodeCatalog(cand.cat)
		if err != nil {
			t.Fatalf("budget %d: candidate %d decode: %v", budget, i, err)
		}
		tb, err := table.Open(tblF, cat2)
		if err != nil {
			continue
		}
		x, err := Open(idxF, tb, tortureOpts())
		if err != nil {
			continue
		}
		if x.Entries() != cand.entries {
			continue
		}
		ix2, tbl2 = x, tb
		s.cat = cat2
		break
	}
	if ix2 == nil {
		t.Fatalf("budget %d: no sync candidate recovered (acked %d entries)", budget, s.acked)
	}
	if ix2.Entries() < s.acked {
		t.Fatalf("budget %d: recovered %d entries, lost acked prefix of %d", budget, ix2.Entries(), s.acked)
	}
	rep, err := ix2.Check()
	if err != nil {
		t.Fatalf("budget %d: recovered check: %v", budget, err)
	}
	if !rep.Ok() {
		t.Fatalf("budget %d: recovered state inconsistent: %v", budget, rep.Problems)
	}
	searchAssert(t, budget, ix2, s.num)
	resumeAssert(t, budget, s, tbl2, ix2)
}

// runTortureSweep enumerates fault budgets until the script completes with
// the armed device never tripping — i.e. every injection site was covered.
// poolBytes sizes the page pool: the 1 MiB default holds the whole working
// set, while the tiny-pool variant forces CLOCK eviction between the crash
// point and recovery, so fault handling is exercised with pages constantly
// leaving and re-entering the cache.
func runTortureSweep(t *testing.T, armTable bool, poolBytes int64) {
	step := int64(1)
	if testing.Short() {
		step = 7
	}
	crashes := 0
	for budget := int64(0); ; budget += step {
		s := newTortureState(t, armTable, budget, poolBytes)
		err := s.script()
		if err == nil {
			s.close()
			if s.fd.Tripped() {
				t.Fatalf("budget %d: script succeeded past an injected fault", budget)
			}
			t.Logf("sweep done: %d crash points recovered, script uses <%d device ops", crashes, budget)
			return
		}
		if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("budget %d: crash surfaced a non-injected error: %v", budget, err)
		}
		crashes++
		s.recover(t, budget)
		s.close()
	}
}

func TestTortureSweepIndexDevice(t *testing.T) { runTortureSweep(t, false, 1<<20) }

func TestTortureSweepTableDevice(t *testing.T) { runTortureSweep(t, true, 1<<20) }

// The tiny-pool sweeps rerun the same crash script with a 4-page cache, so
// every list scan and recovery pass evicts concurrently with the armed
// device: crash points now land while the CLOCK hand is moving and while
// pinned reader windows force copy-on-write, which the roomy default pool
// never exercises.
func TestTortureSweepIndexDeviceTinyPool(t *testing.T) { runTortureSweep(t, false, 16<<10) }

func TestTortureSweepTableDeviceTinyPool(t *testing.T) { runTortureSweep(t, true, 16<<10) }
