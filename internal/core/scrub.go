package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/sparsewide/iva/internal/storage"
)

// ScrubReport is the machine-readable outcome of one index scrub pass.
type ScrubReport struct {
	// FormatVersion is the committed on-disk version; Legacy marks pre-v4
	// files, which carry no checksums to verify.
	FormatVersion int
	Legacy        bool

	// Segments is the number of covered index segments swept;
	// CorruptSegments of them failed their committed CRC32C word, and
	// DirtySegments were skipped because they hold unsynced writes (their
	// words are recomputed by the next Sync).
	Segments        int
	CorruptSegments int
	DirtySegments   int

	// CorruptSegIDs lists the segment IDs behind CorruptSegments in
	// ascending sweep order — read-repair uses them to fetch clean copies
	// from a replication peer.
	CorruptSegIDs []uint32

	// Checkpoints is the number of committed checkpoint records swept;
	// CorruptCheckpoints failed their record trailer. DroppedCheckpoints
	// were already discarded when the index was opened (DegradeReads).
	Checkpoints        int
	CorruptCheckpoints int
	DroppedCheckpoints int

	// Zones / CorruptZones / DroppedZones are the same sweep over the
	// committed zone-map records (v5). Zone damage only ever disables
	// stripe pruning, never changes answers, but it is still damage.
	Zones        int
	CorruptZones int
	DroppedZones int

	// DroppedCodecDirs counts packed vector lists (v6) whose block
	// directory failed its header walk at open: under DegradeReads their
	// terms degrade to zero bounds (answers stay exact, filtering does
	// not), and writes demand a rebuild.
	DroppedCodecDirs int

	// SuperblockOK reports the superblock trailer check; MapDropped that the
	// committed checksum map was unreadable at open (or is now) and segment
	// coverage is degraded until the next Sync.
	SuperblockOK bool
	MapDropped   bool

	// Problems holds one line per damaged structure.
	Problems []string
}

// Clean reports whether the sweep found no damage. A legacy (pre-v4) file is
// clean by definition — there is nothing to check against — but Legacy is
// set so callers can surface the reduced assurance.
func (r *ScrubReport) Clean() bool {
	return r.CorruptSegments == 0 && r.CorruptCheckpoints == 0 &&
		r.DroppedCheckpoints == 0 && r.CorruptZones == 0 && r.DroppedZones == 0 &&
		r.DroppedCodecDirs == 0 &&
		r.SuperblockOK && !r.MapDropped && len(r.Problems) == 0
}

func (r *ScrubReport) addProblem(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Scrub sweeps the whole index file verifying every committed checksum: the
// superblock trailer, each covered segment against its checksum-map word,
// and each committed checkpoint record against its trailer. Unlike query-time
// verification it ignores the first-touch cache — every covered byte is
// re-read — and it never degrades: damage is reported, not worked around.
// Read-only; safe to run on a live index.
func (ix *Index) Scrub() (*ScrubReport, error) { return ix.ScrubYield(nil) }

// ScrubYield is Scrub with a pacing hook: a non-nil yield is called once per
// verified unit (segment or checkpoint record), letting a background scrubber
// time-slice and I/O-throttle the sweep. Note the index read lock is held for
// the whole pass, so yields should stay short.
func (ix *Index) ScrubYield(yield func()) (*ScrubReport, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rep := &ScrubReport{FormatVersion: int(ix.version), SuperblockOK: true}
	if ix.version < 4 {
		rep.Legacy = true
		return rep, nil
	}

	// Superblock trailer.
	var b [superblockSize]byte
	if err := ix.f.ReadAt(b[:], 0); err != nil {
		return nil, err
	}
	// The committed trailer sits where the committed version put it (v4
	// trailers predate the v5 zone fields).
	crcAt := sbCRCOffFor(ix.version)
	if storage.Checksum(b[:crcAt]) != binary.LittleEndian.Uint32(b[crcAt:]) {
		rep.SuperblockOK = false
		rep.addProblem("superblock checksum mismatch")
	}

	// Covered segments, straight from the committed map words.
	it := &ix.integ
	for _, cov := range ix.coveredChains(ix.slotChain(ix.attrSlot)) {
		ids, err := ix.segs.ChainSegments(cov.chain)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			it.mu.Lock()
			e, ok := it.words[id]
			_, dirty := it.dirty[id]
			it.mu.Unlock()
			if !ok {
				continue // beyond the committed prefix (fresh segment)
			}
			rep.Segments++
			if yield != nil {
				yield()
			}
			if dirty {
				rep.DirtySegments++
				continue
			}
			if err := ix.checkWord(id, e); err != nil {
				var ce *storage.CorruptionError
				if !errors.As(err, &ce) {
					return nil, err
				}
				rep.CorruptSegments++
				rep.CorruptSegIDs = append(rep.CorruptSegIDs, uint32(id))
				rep.addProblem("%v", ce)
				continue
			}
			it.mu.Lock()
			it.verified[id] = struct{}{}
			it.mu.Unlock()
		}
	}

	// Committed checkpoint records. The committed count is the superblock's,
	// not the in-memory tail (records appended since the last Sync are not on
	// disk yet).
	it.mu.Lock()
	rep.DroppedCheckpoints = it.droppedCkpts
	rep.MapDropped = it.mapDropped
	it.mu.Unlock()
	if rep.DroppedCheckpoints > 0 {
		rep.addProblem("%d checkpoint records dropped at open", rep.DroppedCheckpoints)
	}
	if rep.MapDropped {
		rep.addProblem("checksum map unreadable; segment coverage degraded until next sync")
	}
	if ix.checkpointsEnabled() {
		count := int(binary.LittleEndian.Uint32(b[84:]))
		if n, bad, err := ix.scrubCheckpoints(count, yield); err != nil {
			return nil, err
		} else {
			rep.Checkpoints = n
			rep.CorruptCheckpoints = bad
			if bad > 0 {
				rep.addProblem("%d of %d checkpoint records failed verification", bad, count)
			}
		}
	}

	// Committed zone-map records, count from the superblock (v5).
	it.mu.Lock()
	rep.DroppedZones = it.droppedZones
	it.mu.Unlock()
	if rep.DroppedZones > 0 {
		rep.addProblem("%d zone-map records dropped at open", rep.DroppedZones)
	}
	it.mu.Lock()
	rep.DroppedCodecDirs = it.droppedCodecDirs
	it.mu.Unlock()
	if rep.DroppedCodecDirs > 0 {
		rep.addProblem("%d packed vector-list block directories dropped at open", rep.DroppedCodecDirs)
	}
	if ix.version >= 5 && ix.zonesEnabled() {
		count := int(binary.LittleEndian.Uint32(b[sbZoneCountOff:]))
		if n, bad, err := ix.scrubZones(count, yield); err != nil {
			return nil, err
		} else {
			rep.Zones = n
			rep.CorruptZones = bad
			if bad > 0 {
				rep.addProblem("%d of %d zone-map records failed verification", bad, count)
			}
		}
	}
	return rep, nil
}

// VectorExtent is one committed, checksummed byte span of a vector list in
// the index file. Fault-injection harnesses corrupt inside these spans when
// they expect detection plus exact results under IntegrityDegrade — vector
// lists are the only structures queries can degrade around.
type VectorExtent struct{ Offset, Len int64 }

// VectorExtents lists the committed spans of every attribute's vector list.
// Segments with unsynced writes are excluded (their words are stale by
// design until the next Sync); pre-v4 files have no committed spans.
func (ix *Index) VectorExtents() []VectorExtent {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.version < 4 {
		return nil
	}
	it := &ix.integ
	var out []VectorExtent
	for i := range ix.attrs {
		st := &ix.attrs[i]
		if !st.exists || st.chain == storage.NoSegment {
			continue
		}
		ids, err := ix.segs.ChainSegments(st.chain)
		if err != nil {
			continue
		}
		for _, id := range ids {
			it.mu.Lock()
			e, ok := it.words[id]
			_, dirty := it.dirty[id]
			it.mu.Unlock()
			if !ok || dirty {
				continue
			}
			n := int64(e.n)
			if e.mask != 0 && n > 0 {
				n-- // final byte is partially committed
			}
			if n > 0 {
				out = append(out, VectorExtent{Offset: ix.segs.SegmentOffset(id) + 8, Len: n})
			}
		}
	}
	return out
}

// scrubCheckpoints re-reads the committed checkpoint records, verifying each
// trailer. Framing past a damaged record is untrustworthy (the length prefix
// is inside the damage), so the remainder is counted corrupt and the sweep
// stops.
func (ix *Index) scrubCheckpoints(count int, yield func()) (checked, bad int, err error) {
	off := int64(4)
	for i := 0; i < count; i++ {
		if yield != nil {
			yield()
		}
		var nb [4]byte
		if err := ix.segs.ReadAt(ix.ckptChain, nb[:], off); err != nil {
			return checked, count - i, nil // truncated chain: rest unverifiable
		}
		nattrs := int(binary.LittleEndian.Uint32(nb[:]))
		if nattrs > len(ix.attrs) {
			return checked, count - i, nil
		}
		rec := make([]byte, 4+8*nattrs)
		if err := ix.segs.ReadAt(ix.ckptChain, rec, off); err != nil {
			return checked, count - i, nil
		}
		off += int64(len(rec))
		var tr [ckptTrailerLen]byte
		if err := ix.segs.ReadAt(ix.ckptChain, tr[:], off); err != nil {
			return checked, count - i, nil
		}
		off += ckptTrailerLen
		if binary.LittleEndian.Uint32(tr[:]) != ckptRecordCRC(rec, i) {
			return checked, count - i, nil
		}
		checked++
	}
	return checked, 0, nil
}
