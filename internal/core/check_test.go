package core

import (
	"strings"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
)

func TestCheckCleanIndex(t *testing.T) {
	fx := newFixture(t, 150, Options{}, 401)
	rep, err := fx.ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("clean index reported problems: %v", rep.Problems)
	}
	if rep.Live != 150 || rep.Entries != 150 {
		t.Fatalf("live=%d entries=%d", rep.Live, rep.Entries)
	}
	if rep.VectorElems == 0 {
		t.Fatal("no vector elements verified")
	}
}

func TestCheckAfterChurn(t *testing.T) {
	fx := newFixture(t, 100, Options{}, 402)
	for i := 0; i < 30; i++ {
		if _, err := fx.ix.Insert(fx.randValues()); err != nil {
			t.Fatal(err)
		}
	}
	for tid := model.TID(0); tid < 40; tid += 3 {
		if err := fx.ix.Delete(tid); err != nil && err != ErrNotFound {
			t.Fatal(err)
		}
	}
	rep, err := fx.ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("churned index reported problems: %v", rep.Problems)
	}
	if rep.Live >= rep.Entries {
		t.Fatal("tombstones not reflected")
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	fx := newFixture(t, 60, Options{}, 403)
	// Corrupt one live tuple-list ptr to point at a wrong (valid) record.
	var pos int64 = -1
	for p, e := range fx.ix.entries {
		if !e.deleted && p > 0 {
			pos = int64(p)
			break
		}
	}
	if pos < 0 {
		t.Fatal("no live entry")
	}
	wrongPtr := uint64(fx.ix.entries[0].ptr)
	bitOff := pos*int64(fx.ix.elemBits()) + int64(fx.ix.ltid)
	if err := storage.WriteBitsAt(fx.ix.segs, fx.ix.tupleChain, bitOff, wrongPtr, ptrBits); err != nil {
		t.Fatal(err)
	}
	rep, err := fx.ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("corrupted ptr not detected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "tuple list says") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected problem set: %v", rep.Problems)
	}
}

func TestAttrsReport(t *testing.T) {
	fx := newFixture(t, 120, Options{}, 404)
	reports := fx.ix.Attrs()
	if len(reports) != fx.tbl.Catalog().NumAttrs() {
		t.Fatalf("%d reports for %d attrs", len(reports), fx.tbl.Catalog().NumAttrs())
	}
	for _, r := range reports {
		if r.Name == "" {
			t.Fatalf("attr %d missing name", r.ID)
		}
		if r.Alpha != 0.20 {
			t.Fatalf("attr %s alpha %v", r.Name, r.Alpha)
		}
		if r.DF > 0 && r.BitLen == 0 && r.ListType.String() == "I" {
			t.Fatalf("attr %s has df %d but an empty Type I list", r.Name, r.DF)
		}
	}
}
