package core

import (
	"math"
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
)

// TestSequentialPlanExplodesOnText reproduces the §IV-A argument for the
// parallel plan: with a text term in the query, signature vectors admit no
// upper bound, the sequential plan's pruning bar is +Inf, and every live
// tuple becomes a candidate — while Algorithm 1 fetches far fewer.
func TestSequentialPlanExplodesOnText(t *testing.T) {
	fx := newFixture(t, 300, Options{}, 601)
	m := metric.Default()
	q := fx.randQuery(t, 3, 10)
	hasText := false
	for _, term := range q.Terms {
		if term.Kind == model.KindText {
			hasText = true
		}
	}
	for !hasText {
		q = fx.randQuery(t, 3, 10)
		for _, term := range q.Terms {
			if term.Kind == model.KindText {
				hasText = true
			}
		}
	}
	ps, err := fx.ix.SequentialPlanStats(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ps.KthUpperBound, 1) {
		t.Fatalf("pruning bar = %v, want +Inf for a text query", ps.KthUpperBound)
	}
	if ps.SequentialCandidates != ps.Scanned {
		t.Fatalf("sequential candidates %d != scanned %d: text filtering should fail",
			ps.SequentialCandidates, ps.Scanned)
	}
	if ps.ParallelFetches >= ps.SequentialCandidates {
		t.Fatalf("parallel plan fetched %d, not fewer than sequential %d",
			ps.ParallelFetches, ps.SequentialCandidates)
	}
}

// TestSequentialPlanWorksOnNumeric shows the flip side: for numeric-only
// queries, slice codes do have upper bounds and the classic plan prunes.
func TestSequentialPlanWorksOnNumeric(t *testing.T) {
	fx := newFixture(t, 300, Options{}, 602)
	m := metric.Default()
	// Query the dense numeric attribute (numAttrs[0] is defined everywhere).
	q := (&model.Query{K: 10}).NumTerm(fx.numAttrs[0], 250)
	ps, err := fx.ix.SequentialPlanStats(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ps.KthUpperBound, 1) {
		t.Fatalf("numeric-only query has infinite pruning bar")
	}
	if ps.SequentialCandidates >= ps.Scanned {
		t.Fatalf("no pruning: %d of %d", ps.SequentialCandidates, ps.Scanned)
	}
	// The candidate set must still contain every true top-k member: the
	// parallel plan's results all have lower bounds <= their exact
	// distances <= the k-th upper bound. Sanity: candidates >= k.
	if ps.SequentialCandidates < int64(q.K) {
		t.Fatalf("sequential candidates %d < k", ps.SequentialCandidates)
	}
}
