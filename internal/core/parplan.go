package core

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/obs"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/topk"
	"github.com/sparsewide/iva/internal/vector"
)

// The striped filter plan. The tuple list is cut into stripes of ckptEvery
// entries; workers claim stripes from a shared counter, open their own
// cursors at the stripe's checkpoint, scan with a private top-k pool and do
// their own refine fetches. A shared admission bar (the smallest full-pool
// max distance published by any worker) lets one stripe's tight bound prune
// the others.
//
// Determinism: the result is byte-identical to the sequential plan under any
// worker count and scheduling. The top-k pool orders pairs by the total
// lexicographic (dist, tid) order — admission, eviction and the tid-aware
// fetch gate (AdmitsPair) all use it — so a pool holds exactly the k
// lex-smallest pairs of whatever subset was offered to it, independent of
// offer order: a candidate rejected at scan time was lex-beaten by k pool
// members at that moment, and the pool's k-th bound only tightens afterward.
// Each worker's pool is thus the exact top-k of its stripes, the global k
// smallest pairs are contained in the union of the local pools, and the lex
// merge reproduces the sequential answer. The shared bar prunes only on
// est > bar (strictly): such a tuple's exact distance exceeds the max of some
// full pool, i.e. k pairs of strictly smaller distance exist, so it can never
// appear in the answer regardless of tid ties. See DESIGN.md.

// distBar is an atomic global admission bar over float64 distances.
type distBar struct{ bits atomic.Uint64 }

func (b *distBar) init()         { b.bits.Store(math.Float64bits(math.Inf(1))) }
func (b *distBar) load() float64 { return math.Float64frombits(b.bits.Load()) }

// lower CAS-min-publishes d.
func (b *distBar) lower(d float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(d)) {
			return
		}
	}
}

// barExceeded is the strict admission-bar prune rule, shared by the
// per-tuple checks of both plans and the stripe zone gate so the three call
// sites cannot drift: an estimate strictly above the bar belongs to a tuple
// whose exact distance exceeds the max of some full pool — k strictly
// smaller pairs exist, so it can never reach the answer, tid ties included.
func barExceeded(bar *distBar, est float64) bool { return est > bar.load() }

// admitsEst is the full per-tuple admission rule of Algorithm 1: the
// candidate must beat the worker's local pool (lexicographically, via
// AdmitsPair) and must not be strictly above the shared bar.
func admitsEst(pool *topk.Pool, bar *distBar, tid model.TID, est float64) bool {
	return pool.AdmitsPair(tid, est) && !barExceeded(bar, est)
}

// workerScratch holds the allocation-heavy per-worker state reused across
// queries via a sync.Pool: readers, their seam-stitch buffers, and the
// per-term diff slice, which dominate a worker's setup cost.
type workerScratch struct {
	tupleRd *storage.ChainBitReader
	termRds []*storage.ChainBitReader
	diffs   []float64
}

var scratchPool = sync.Pool{New: func() interface{} { return &workerScratch{} }}

// stripeWorker is one goroutine of the parallel plan.
type stripeWorker struct {
	ix    *Index
	ctx   context.Context
	q     *model.Query
	m     *metric.Metric
	terms []termState // private copies: counters and cursors are per-worker
	pool  *topk.Pool
	bar   *distBar
	next  *atomic.Int64 // shared stripe claim counter
	abort *atomic.Bool

	// degSegs collects the distinct corrupt vector-list segments this worker
	// degraded past (DegradeReads); merged into SearchStats at the end.
	degSegs map[uint32]struct{}

	scratch *workerScratch

	stripes     int64 // stripes claimed from the shared counter
	zoneChecked int64 // claimed stripes with a usable zone bound
	zonePruned  int64 // of those, skipped whole without opening a cursor
	scanned     int64
	fetched     int64
	refineWall  time.Duration
	fetchWall   time.Duration
	busyWall    time.Duration
	err         error
}

// searchParallel executes the striped plan with par workers. Caller holds
// ix.mu.RLock and has verified parallelEligible.
func (ix *Index) searchParallel(ctx context.Context, q *model.Query, m *metric.Metric, parent *obs.Span, par int) ([]model.Result, SearchStats, error) {
	var stats SearchStats
	nstripes := len(ix.ckpts)
	if par > nstripes {
		par = nstripes
	}
	stats.Workers = par
	stats.StripesTotal = nstripes
	idxIO := ix.segs.File().IOStats()
	tblIO := ix.tbl.IOStats()
	startIdx, startTbl := idxIO.Snapshot(), tblIO.Snapshot()
	wallStart := time.Now()

	shared, err := ix.prepareTerms(q)
	if err != nil {
		return nil, stats, err
	}

	var bar distBar
	bar.init()
	var next atomic.Int64
	var abort atomic.Bool
	workers := make([]*stripeWorker, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		terms := make([]termState, len(shared))
		copy(terms, shared) // st and qs shared, counters/cursor per worker
		sw := &stripeWorker{
			ix: ix, ctx: ctx, q: q, m: m, terms: terms,
			pool: topk.New(q.K), bar: &bar, next: &next, abort: &abort,
			degSegs: make(map[uint32]struct{}),
			scratch: scratchPool.Get().(*workerScratch),
		}
		workers[w] = sw
		wg.Add(1)
		go func() {
			defer wg.Done()
			sw.run(nstripes)
		}()
	}
	wg.Wait()

	merged := make([]termState, len(shared))
	copy(merged, shared)
	allDeg := make(map[uint32]struct{})
	var sumBusy, sumRefine, sumFetch time.Duration
	var claimed int64
	stats.WorkerProfiles = make([]WorkerStats, len(workers))
	for w, sw := range workers {
		sw.scratch.release()
		if sw.err != nil && err == nil {
			err = sw.err
		}
		stats.Scanned += sw.scanned
		stats.TableAccesses += sw.fetched
		sumBusy += sw.busyWall
		sumRefine += sw.refineWall
		sumFetch += sw.fetchWall
		claimed += sw.stripes
		stats.StripesZoneChecked += int(sw.zoneChecked)
		stats.StripesZonePruned += int(sw.zonePruned)
		stats.WorkerProfiles[w] = WorkerStats{
			Stripes: sw.stripes, ZonePruned: sw.zonePruned,
			Scanned: sw.scanned, Fetched: sw.fetched, Busy: sw.busyWall,
		}
		for id := range sw.degSegs {
			allDeg[id] = struct{}{}
		}
		for i := range merged {
			merged[i].defined += sw.terms[i].defined
			merged[i].ndf += sw.terms[i].ndf
			merged[i].pruned += sw.terms[i].pruned
		}
	}
	stats.DegradedSegments = len(allDeg)
	stats.DegradedSegIDs = sortedSegIDs(allDeg)
	if n := int64(nstripes) - claimed; n > 0 {
		stats.StripesSkipped = int(n) // the plan aborted before covering them
	}
	if err != nil {
		return nil, stats, err
	}

	mergeStart := time.Now()
	results := mergeWorkerPools(workers, q.K)
	stats.MergeWall = time.Since(mergeStart)
	total := time.Since(wallStart)
	// Workers overlap in real time, so their phase durations are CPU sums;
	// apportion the elapsed pre-merge wall by the refine share of total busy
	// time so that FilterWall + RefineWall + MergeWall still equals the
	// query's wall clock.
	if sumBusy > 0 {
		stats.RefineWall = time.Duration(float64(total-stats.MergeWall) * float64(sumRefine) / float64(sumBusy))
	}
	stats.FilterWall = total - stats.RefineWall - stats.MergeWall
	stats.FilterIO = idxIO.Snapshot().Sub(startIdx)
	stats.RefineIO = tblIO.Snapshot().Sub(startTbl)
	if parent != nil {
		fetchWall := stats.RefineWall
		if sumRefine > 0 {
			fetchWall = time.Duration(float64(stats.RefineWall) * float64(sumFetch) / float64(sumRefine))
		}
		ix.traceSearch(parent, merged, stats, stats.TableAccesses, fetchWall, par, nstripes)
	}
	return results, stats, nil
}

// mergeWorkerPools concatenates the per-worker pools and keeps the k
// lexicographically-smallest (dist, tid) pairs — the deterministic merge.
func mergeWorkerPools(workers []*stripeWorker, k int) []model.Result {
	var all []model.Result
	for _, sw := range workers {
		all = append(all, sw.pool.Results()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].TID < all[j].TID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func (sw *stripeWorker) run(nstripes int) {
	start := time.Now()
	defer func() { sw.busyWall = time.Since(start) }()
	for {
		s := sw.next.Add(1) - 1
		if s >= int64(nstripes) || sw.abort.Load() {
			return
		}
		// Stripe boundaries are the cancellation points of the parallel
		// filter phase: one worker observing an expired context aborts the
		// other workers' next claims too.
		if err := sw.ctx.Err(); err != nil {
			sw.err = err
			sw.abort.Store(true)
			return
		}
		sw.stripes++
		// Zone gate: when the stripe's zone record proves even its best
		// tuple cannot beat the current shared bar (or the stripe holds no
		// live tuples), release the worker to the next claim without
		// opening a cursor. The bar only tightens over time, so a bound
		// computed now remains disqualifying for the rest of the query.
		if cap(sw.scratch.diffs) < len(sw.terms) {
			sw.scratch.diffs = make([]float64, len(sw.terms))
		}
		if est, empty, ok := sw.ix.zoneBound(s, sw.terms, sw.q, sw.m, sw.scratch.diffs[:len(sw.terms)]); ok {
			sw.zoneChecked++
			if empty || barExceeded(sw.bar, est) {
				sw.zonePruned++
				continue
			}
		}
		if err := sw.scanStripe(s); err != nil {
			sw.err = err
			sw.abort.Store(true)
			return
		}
	}
}

// scanStripe runs the Algorithm 1 loop over stripe s, resuming every cursor
// from the stripe's checkpoint.
func (sw *stripeWorker) scanStripe(s int64) error {
	ix := sw.ix
	startPos := s * ix.ckptEvery
	endPos := startPos + ix.ckptEvery
	if n := int64(len(ix.entries)); endPos > n {
		endPos = n
	}
	ck := ix.ckpts[s]

	sc := sw.scratch
	if sc.tupleRd == nil {
		sc.tupleRd = storage.NewChainBitReader(ix.segs, ix.tupleChain, ix.tupleBits)
	} else {
		sc.tupleRd.Reset(ix.segs, ix.tupleChain, ix.tupleBits)
	}
	tr := sc.tupleRd
	// Readers come from the scratch pool, so the verify hook must be
	// re-attached after every Reset (the pooled reader may have been bound to
	// another index, or to nothing).
	ix.attachVerify(tr, ix.tupleChain)
	if err := tr.SeekBit(startPos * int64(ix.elemBits())); err != nil {
		return err
	}
	for i := range sw.terms {
		ts := &sw.terms[i]
		if ts.st == nil {
			continue
		}
		// Each stripe reopens cursors from its checkpoint, so a term degraded
		// in an earlier stripe resynchronizes here: degradation is scoped to
		// the stripe that read the corrupt segment.
		ts.degraded = false
		for len(sc.termRds) <= i {
			sc.termRds = append(sc.termRds, nil)
		}
		if sc.termRds[i] == nil {
			sc.termRds[i] = storage.NewChainBitReader(ix.segs, ts.st.chain, ts.st.physBits())
		} else {
			sc.termRds[i].Reset(ix.segs, ts.st.chain, ts.st.physBits())
		}
		ix.attachVerify(sc.termRds[i], ts.st.chain)
		// A fresh logical source per stripe per term: for packed lists the
		// BlockSource decodes blocks on demand, and checkpoint offsets — which
		// are logical — seek straight through it.
		src, err := ix.termSource(ts.st, sc.termRds[i])
		if err == nil {
			var cur *vector.Cursor
			if cur, err = vector.NewCursorAt(ts.st.layout, src,
				ck.attrOffset(int(ts.term.Attr)), startPos); err == nil {
				cur.EnableScratch()
				ts.cursor = cur
				continue
			}
		}
		if ix.degradeTerm(ts, err, sw.degSegs) {
			continue
		}
		return err
	}
	if cap(sc.diffs) < len(sw.terms) {
		sc.diffs = make([]float64, len(sw.terms))
	}
	diffs := sc.diffs[:len(sw.terms)]

	m, q, pool := sw.m, sw.q, sw.pool
	for pos := startPos; pos < endPos; pos++ {
		tidBits, err := tr.ReadBits(ix.ltid)
		if err != nil {
			return err
		}
		ptrBitsVal, err := tr.ReadBits(ptrBits)
		if err != nil {
			return err
		}
		if ptrBitsVal == tombstonePtr {
			continue
		}
		tid := model.TID(tidBits)
		sw.scanned++

		for i := range sw.terms {
			d, ndf, err := sw.terms[i].boundWithPolicy(ix, m, tid, pos, sw.degSegs)
			if err != nil {
				return err
			}
			if ndf {
				sw.terms[i].ndf++
			} else {
				sw.terms[i].defined++
			}
			diffs[i] = d
		}
		estDist := m.Distance(q.Terms, diffs)
		// Local pool first (the sequential admission rule on this worker's
		// subset), then the shared bar — strictly, so a distance tie can
		// still be resolved by tid at the merge.
		if !admitsEst(pool, sw.bar, tid, estDist) {
			if len(sw.terms) > 0 {
				argmax := 0
				for i := 1; i < len(diffs); i++ {
					if diffs[i] > diffs[argmax] {
						argmax = i
					}
				}
				sw.terms[argmax].pruned++
			}
			continue
		}

		if err := sw.ctx.Err(); err != nil {
			return err
		}
		rStart := time.Now()
		tp, err := ix.tbl.Fetch(int64(ptrBitsVal))
		if err != nil {
			return err
		}
		sw.fetchWall += time.Since(rStart)
		sw.fetched++
		actual := m.TupleDistance(q, tp)
		pool.Insert(tid, actual)
		if pool.Full() {
			sw.bar.lower(pool.MaxDist())
		}
		sw.refineWall += time.Since(rStart)
	}
	return nil
}

// release closes the readers — their windows are pinned buffer-pool frames,
// and an idle pin would block eviction between queries — then returns the
// scratch (readers, stitch buffers, diff slice) to the pool for reuse.
func (sc *workerScratch) release() {
	if sc.tupleRd != nil {
		sc.tupleRd.Close()
	}
	for _, r := range sc.termRds {
		if r != nil {
			r.Close()
		}
	}
	scratchPool.Put(sc)
}
