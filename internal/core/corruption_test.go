package core

import (
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/vector"
)

// corruptionFixture is a small store on raw MemDevices so the sweep can flip
// bits in the committed index image and reopen it.
type corruptionFixture struct {
	tblDev, idxDev *storage.MemDevice
	cat            *table.Catalog
	queries        []*model.Query
	baseline       [][]model.Result
	snapshot       []byte // committed index image
	// committed[off] marks index-file bytes whose corruption MUST be
	// detected: the superblock prefix and every fully-committed byte of a
	// checksum-covered segment.
	committed map[int64]bool
	// packedAttrs counts vector lists stored under a block codec, so sweeps
	// that exist to torture v6 blocks can assert they are not vacuous.
	packedAttrs int
}

func buildCorruptionFixture(t *testing.T) *corruptionFixture {
	t.Helper()
	return buildCorruptionFixtureWith(t, Options{CheckpointEvery: 16}, false)
}

// buildCorruptionFixtureWith builds the fixture under explicit options, so
// the sweep can rerun against packed vector lists (format v6 codec 1).
// sparse switches to a low-density population: the cost-based layout chooser
// only assigns the tid-bearing Types I/II — the ones the packed codec
// applies to — when attributes are sparse enough to beat positional storage.
func buildCorruptionFixtureWith(t *testing.T, opts Options, sparse bool) *corruptionFixture {
	t.Helper()
	cf := &corruptionFixture{
		tblDev:    storage.NewMemDevice(),
		idxDev:    storage.NewMemDevice(),
		cat:       table.NewCatalog(),
		committed: make(map[int64]bool),
	}
	pool := storage.NewPool(0, 1<<20)
	tblF := storage.NewFile(pool, cf.tblDev)
	idxF := storage.NewFile(pool, cf.idxDev)
	num, err := cf.cat.AddAttr("price", model.KindNumeric)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := cf.cat.AddAttr("title", model.KindText)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := table.New(tblF, cf.cat)
	if err != nil {
		t.Fatal(err)
	}
	txtEvery := 2
	if sparse {
		// Sparse enough that the text list goes tid-bearing (and packed under
		// codec 1); the dense numeric stays positional/raw, so the sweep
		// tortures packed blocks and a raw list side by side.
		txtEvery = 11
	}
	for i := 0; i < 160; i++ {
		vals := map[model.AttrID]model.Value{num: model.Num(float64(i%37) * 3)}
		if i%txtEvery == 0 {
			vals[txt] = model.Text(fmt.Sprintf("camera model %d", i%23))
		}
		if _, _, err := tbl.Append(vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(tbl, idxF, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.parallelEligible() {
		t.Fatal("fixture not parallel-eligible")
	}
	for i := range ix.attrs {
		if ix.attrs[i].codecID != vector.CodecRaw {
			cf.packedAttrs++
		}
	}

	qn := &model.Query{K: 5}
	qn.NumTerm(num, 42)
	qt := &model.Query{K: 5}
	qt.TextTerm(txt, "camera model 7")
	qb := &model.Query{K: 5}
	qb.NumTerm(num, 60)
	qb.TextTerm(txt, "camera model 3")
	cf.queries = []*model.Query{qn, qt, qb}
	for _, q := range cf.queries {
		res, _, err := ix.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		cf.baseline = append(cf.baseline, res)
	}

	// Record the byte ranges whose corruption the format promises to detect:
	// the checksummed superblock prefix and the committed span of every
	// covered segment (minus a partially-committed final byte, whose free low
	// bits are legitimately ignored).
	for off := int64(0); off < sbCRCOff+4; off++ {
		cf.committed[off] = true
	}
	it := &ix.integ
	it.mu.Lock()
	for id, e := range it.words {
		base := ix.segs.SegmentOffset(id) + 8 // past the segment header
		n := int64(e.n)
		if e.mask != 0 && n > 0 {
			n-- // final byte is partial
		}
		for off := base; off < base+n; off++ {
			cf.committed[off] = true
		}
	}
	it.mu.Unlock()

	tblF.Close()
	idxF.Close()
	cf.snapshot = make([]byte, cf.idxDev.Size())
	if _, err := cf.idxDev.ReadAt(cf.snapshot, 0); err != nil {
		t.Fatal(err)
	}
	return cf
}

func (cf *corruptionFixture) restore(t *testing.T) {
	t.Helper()
	if err := cf.idxDev.Truncate(int64(len(cf.snapshot))); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.idxDev.WriteAt(cf.snapshot, 0); err != nil {
		t.Fatal(err)
	}
}

func (cf *corruptionFixture) flip(t *testing.T, off int64, bit uint) {
	t.Helper()
	var b [1]byte
	if _, err := cf.idxDev.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 1 << bit
	if _, err := cf.idxDev.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func sameResults(a, b []model.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCorruptionTortureSweep flips one bit at a stride of byte offsets across
// the committed index image, reopens the store in both integrity modes, and
// asserts the contract the format makes: a query either fails with an error
// or returns the exact clean top-k — never a silently different answer — and
// every flip landing in checksummed bytes is detected by at least one of
// open, query (DegradedSegments > 0), or Scrub.
func TestCorruptionTortureSweep(t *testing.T) {
	cf := buildCorruptionFixture(t)
	stride := int64(211)
	if testing.Short() {
		stride = 1777
	}
	degradedTotal := 0
	for _, mode := range []IntegrityMode{IntegrityDegrade, IntegrityStrict} {
		for off := int64(0); off < int64(len(cf.snapshot)); off += stride {
			bit := uint(off % 8)
			cf.restore(t)
			cf.flip(t, off, bit)
			detected := cf.runOnce(t, mode, off, &degradedTotal)
			if cf.committed[off] && !detected {
				t.Fatalf("mode=%v flip at %d (bit %d): corruption of a checksummed byte was not detected",
					mode, off, bit)
			}
		}
	}
	cf.restore(t)
	if degradedTotal == 0 {
		t.Fatal("sweep never exercised the degraded-read path")
	}
}

// runOnce opens the flipped image and runs every query, enforcing the
// never-silently-wrong invariant. It reports whether the flip was detected.
func (cf *corruptionFixture) runOnce(t *testing.T, mode IntegrityMode, off int64, degradedTotal *int) bool {
	t.Helper()
	pool := storage.NewPool(0, 1<<20)
	tblF := storage.NewFile(pool, cf.tblDev)
	idxF := storage.NewFile(pool, cf.idxDev)
	defer tblF.Close()
	defer idxF.Close()
	tbl, err := table.Open(tblF, cf.cat)
	if err != nil {
		t.Fatalf("flip at %d: table open: %v", off, err)
	}
	ix, err := Open(idxF, tbl, Options{Integrity: mode})
	if err != nil {
		return true // detected at open
	}
	detected := false
	for qi, q := range cf.queries {
		res, stats, err := ix.Search(q, nil)
		if err != nil {
			detected = true // detected at query time
			continue
		}
		if !sameResults(res, cf.baseline[qi]) {
			t.Fatalf("mode=%v flip at %d: query %d returned silently different results", mode, off, qi)
		}
		if stats.DegradedSegments > 0 {
			*degradedTotal += stats.DegradedSegments
			detected = true
		}
	}
	if detected {
		return true
	}
	rep, err := ix.Scrub()
	if err != nil {
		return true
	}
	if rep.Legacy {
		t.Fatalf("flip at %d: v4 store scrubbed as legacy", off)
	}
	return !rep.Clean()
}
