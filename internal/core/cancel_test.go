package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// trippingCtx reports context.Canceled after its Err method has been polled
// threshold times — a deterministic stand-in for a context cancelled
// mid-query, independent of scheduler timing.
type trippingCtx struct {
	context.Context
	polls     atomic.Int64
	threshold int64
}

func (c *trippingCtx) Err() error {
	if c.polls.Add(1) > c.threshold {
		return context.Canceled
	}
	return nil
}

// TestSearchContextCancellation covers the query-lifecycle contract: an
// already-expired context fails before any device read, a context cancelled
// mid-scan stops the query with ctx.Err() at every parallelism, and neither
// path leaks a pinned buffer-pool frame.
func TestSearchContextCancellation(t *testing.T) {
	cf := buildCorruptionFixture(t)
	cf.restore(t)
	pool := storage.NewPool(0, 1<<20)
	tblF := storage.NewFile(pool, cf.tblDev)
	idxF := storage.NewFile(pool, cf.idxDev)
	defer tblF.Close()
	defer idxF.Close()
	tbl, err := table.Open(tblF, cf.cat)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(idxF, tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := cf.queries[0]

	// Pre-expired: the pre-dispatch check must fire before any page is
	// requested from the pool.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	before := pool.Stats().Snapshot()
	if _, _, err := ix.SearchContext(expired, q, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx: got %v, want context.Canceled", err)
	}
	after := pool.Stats().Snapshot()
	if after.PhysReads != before.PhysReads || after.CacheHits != before.CacheHits {
		t.Fatalf("expired ctx touched the device: %+v -> %+v", before, after)
	}
	if n := pool.PinnedFrames(); n != 0 {
		t.Fatalf("expired ctx leaked %d pins", n)
	}

	// Mid-query: trip after a few polls so the cancellation lands inside
	// the scan (sequential plan polls per 1024 positions and per refine
	// fetch; stripe workers poll at every stripe claim).
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		ix.SetSearchParallelism(par)
		for _, threshold := range []int64{1, 2, 4} {
			ctx := &trippingCtx{Context: context.Background(), threshold: threshold}
			_, _, err := ix.SearchContext(ctx, q, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("par=%d threshold=%d: got %v, want context.Canceled", par, threshold, err)
			}
			if n := pool.PinnedFrames(); n != 0 {
				t.Fatalf("par=%d threshold=%d: cancellation leaked %d pins", par, threshold, n)
			}
		}
	}

	// Sanity: with no cancellation the same index still answers.
	ix.SetSearchParallelism(0)
	res, _, err := ix.SearchContext(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(res, cf.baseline[0]) {
		t.Fatal("post-cancellation search diverged from baseline")
	}
	if n := pool.PinnedFrames(); n != 0 {
		t.Fatalf("clean search leaked %d pins", n)
	}
}

// TestCorruptionReleasesPins asserts that queries failing (Strict) or
// degrading (default) on checksum mismatches release every pinned frame, at
// every parallelism.
func TestCorruptionReleasesPins(t *testing.T) {
	cf := buildCorruptionFixture(t)
	// Locate a committed vector-list byte from a clean open: corruption
	// there is degradable, so both modes run their full query grid.
	cf.restore(t)
	probePool := storage.NewPool(0, 1<<20)
	probeTblF := storage.NewFile(probePool, cf.tblDev)
	probeIdxF := storage.NewFile(probePool, cf.idxDev)
	probeTbl, err := table.Open(probeTblF, cf.cat)
	if err != nil {
		t.Fatal(err)
	}
	probeIx, err := Open(probeIdxF, probeTbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exts := probeIx.VectorExtents()
	if len(exts) == 0 {
		t.Fatal("fixture has no committed vector extents")
	}
	off := exts[0].Offset + exts[0].Len/2
	probeTblF.Close()
	probeIdxF.Close()

	for _, mode := range []IntegrityMode{IntegrityDegrade, IntegrityStrict} {
		cf.restore(t)
		cf.flip(t, off, 3)
		pool := storage.NewPool(0, 1<<20)
		tblF := storage.NewFile(pool, cf.tblDev)
		idxF := storage.NewFile(pool, cf.idxDev)
		tbl, err := table.Open(tblF, cf.cat)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Open(idxF, tbl, Options{Integrity: mode})
		if err == nil {
			for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				ix.SetSearchParallelism(par)
				for qi, q := range cf.queries {
					res, _, err := ix.Search(q, nil)
					if mode == IntegrityStrict && err != nil {
						var ce *storage.CorruptionError
						if !errors.As(err, &ce) {
							t.Fatalf("strict par=%d: non-corruption error %v", par, err)
						}
					}
					if err == nil && !sameResults(res, cf.baseline[qi]) {
						t.Fatalf("mode=%v par=%d query %d: silently different results", mode, par, qi)
					}
					if n := pool.PinnedFrames(); n != 0 {
						t.Fatalf("mode=%v par=%d query %d leaked %d pins", mode, par, qi, n)
					}
				}
			}
		}
		tblF.Close()
		idxF.Close()
		if n := pool.PinnedFrames(); n != 0 {
			t.Fatalf("mode=%v: close left %d pins", mode, n)
		}
	}
	cf.restore(t)
}
