package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// skewedZoneStore builds a store whose numeric attribute tracks insertion
// order — the layout where stripe zone maps are maximally selective — over
// devices the caller keeps, so the files can be closed, damaged, and
// reopened. ckptEvery 8 over 256 rows seals 32 stripes.
func skewedZoneStore(t *testing.T) (tblDev, idxDev *storage.MemDevice, cat *table.Catalog, tbl *table.Table, ix *Index, num, txt model.AttrID, tids []model.TID) {
	t.Helper()
	pool := storage.NewPool(0, 1<<20)
	tblDev, idxDev = storage.NewMemDevice(), storage.NewMemDevice()
	cat = table.NewCatalog()
	var err error
	if num, err = cat.AddAttr("ts", model.KindNumeric); err != nil {
		t.Fatal(err)
	}
	if txt, err = cat.AddAttr("tag", model.KindText); err != nil {
		t.Fatal(err)
	}
	if tbl, err = table.New(storage.NewFile(pool, tblDev), cat); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		vals := map[model.AttrID]model.Value{num: model.Num(float64(i))}
		if i%3 == 0 {
			vals[txt] = model.Text(fmt.Sprintf("tag-%d", i%7))
		}
		tid, _, err := tbl.Append(vals)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	if ix, err = Build(tbl, storage.NewFile(pool, idxDev), Options{CheckpointEvery: 8}); err != nil {
		t.Fatal(err)
	}
	return
}

func requireSameResults(t *testing.T, stage string, want, got []model.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", stage, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", stage, i, got[i], want[i])
		}
	}
}

// TestZoneMapPruningByteIdentical is the core acceptance check: a selective
// query over the skewed layout must actually prune stripes, and the pruned
// answer must be byte-identical to the unpruned one at both plans.
func TestZoneMapPruningByteIdentical(t *testing.T) {
	_, _, _, _, ix, num, _, _ := skewedZoneStore(t)
	if known, sealed := ix.ZoneMapCoverage(); known != 32 || sealed != 32 {
		t.Fatalf("coverage %d/%d, want 32/32", known, sealed)
	}
	for _, par := range []int{1, 2} {
		ix.SetSearchParallelism(par)
		for _, k := range []int{1, 5} {
			q := (&model.Query{K: k}).NumTerm(num, 3)
			on, st, err := ix.Search(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if st.StripesZonePruned == 0 {
				t.Fatalf("par=%d k=%d: selective query pruned no stripes (%+v)", par, k, st)
			}
			if st.StripesZonePruned > st.StripesZoneChecked {
				t.Fatalf("par=%d k=%d: pruned %d > checked %d", par, k, st.StripesZonePruned, st.StripesZoneChecked)
			}
			ix.SetZoneMaps(false)
			off, stOff, err := ix.Search(q, nil)
			ix.SetZoneMaps(true)
			if err != nil {
				t.Fatal(err)
			}
			if stOff.StripesZonePruned != 0 || stOff.StripesZoneChecked != 0 {
				t.Fatalf("par=%d k=%d: zones-off still touched zone maps (%+v)", par, k, stOff)
			}
			requireSameResults(t, fmt.Sprintf("par=%d k=%d", par, k), off, on)
			if stOff.Scanned <= st.Scanned {
				t.Fatalf("par=%d k=%d: pruning did not reduce scanned tuples (%d vs %d)",
					par, k, st.Scanned, stOff.Scanned)
			}
		}
	}
}

// TestZoneMapEmptyStripeSkipped deletes every tuple of one sealed stripe:
// its live count reaches zero, so the stripe is skipped unconditionally —
// regardless of the bar — with answers unchanged.
func TestZoneMapEmptyStripeSkipped(t *testing.T) {
	_, _, _, _, ix, num, _, tids := skewedZoneStore(t)
	for _, tid := range tids[8:16] { // stripe 1 (ckptEvery 8)
		if err := ix.Delete(tid); err != nil {
			t.Fatal(err)
		}
	}
	// A query centered on the deleted stripe's values: zones on must still
	// answer from the neighbors, identically to zones off.
	q := (&model.Query{K: 4}).NumTerm(num, 11)
	on, st, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.StripesZonePruned == 0 {
		t.Fatalf("emptied stripe was not skipped (%+v)", st)
	}
	ix.SetZoneMaps(false)
	off, _, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "empty stripe", off, on)
	for _, r := range on {
		if r.TID >= tids[8] && r.TID <= tids[15] {
			t.Fatalf("deleted tuple %d resurfaced", r.TID)
		}
	}
}

// TestZoneMapCorruption flips one committed zone byte and proves the
// degradation contract directly: DegradeReads drops the records and answers
// are unchanged with pruning off (scrub stays dirty until rebuild); Strict
// refuses the open with a typed corruption error.
func TestZoneMapCorruption(t *testing.T) {
	tblDev, idxDev, cat, _, ix, num, _, _ := skewedZoneStore(t)
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	q := (&model.Query{K: 3}).NumTerm(num, 100)
	want, _, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	exts := ix.ZoneExtents()
	if len(exts) == 0 {
		t.Fatal("no committed zone extents")
	}
	off := exts[0].Offset + exts[0].Len/2
	var b [1]byte
	if _, err := idxDev.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if _, err := idxDev.WriteAt([]byte{b[0] ^ 0x40}, off); err != nil {
		t.Fatal(err)
	}

	reopen := func(stage string, opts Options) (*Index, error) {
		p := storage.NewPool(0, 1<<20)
		tb, err := table.Open(storage.NewFile(p, tblDev), cat)
		if err != nil {
			t.Fatalf("%s: table open: %v", stage, err)
		}
		return Open(storage.NewFile(p, idxDev), tb, opts)
	}

	ix2, err := reopen("degrade", Options{CheckpointEvery: 8})
	if err != nil {
		t.Fatalf("degrade open rejected zone damage: %v", err)
	}
	if ix2.DroppedZones() == 0 {
		t.Fatal("degrade open dropped no zone records")
	}
	if ix2.ZoneMapsOn() {
		t.Fatal("pruning still on after zone damage")
	}
	got, st, err := ix2.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.StripesZonePruned != 0 {
		t.Fatalf("pruned %d stripes from dropped zone maps", st.StripesZonePruned)
	}
	requireSameResults(t, "degrade", want, got)
	rep, err := ix2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("scrub missed the flipped zone byte")
	}
	if rep.DroppedZones == 0 {
		t.Fatalf("scrub did not report the dropped zone records: %+v", rep)
	}

	if _, err := reopen("strict", Options{CheckpointEvery: 8, Integrity: IntegrityStrict}); err == nil {
		t.Fatal("strict open accepted a flipped zone byte")
	} else {
		var ce *storage.CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("strict open failed with a non-corruption error: %v", err)
		}
	}
}

// TestZoneMapDisableOption proves the A/B escape hatch: an index opened with
// DisableZoneMaps answers identically and never consults a zone record, while
// still recording summaries for when pruning is re-enabled.
func TestZoneMapDisableOption(t *testing.T) {
	_, _, _, _, ix, num, _, _ := skewedZoneStore(t)
	q := (&model.Query{K: 2}).NumTerm(num, 9)
	on, stOn, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stOn.StripesZonePruned == 0 {
		t.Fatalf("baseline query pruned nothing (%+v)", stOn)
	}
	ix.SetZoneMaps(false)
	if ix.ZoneMapsOn() {
		t.Fatal("ZoneMapsOn after SetZoneMaps(false)")
	}
	off, stOff, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stOff.StripesZoneChecked != 0 {
		t.Fatalf("disabled index consulted %d zone records", stOff.StripesZoneChecked)
	}
	requireSameResults(t, "disabled", on, off)
	// Recording continued: re-enabling restores pruning immediately.
	ix.SetZoneMaps(true)
	again, stAgain, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stAgain.StripesZonePruned == 0 {
		t.Fatal("re-enabled index no longer prunes")
	}
	requireSameResults(t, "re-enabled", on, again)
}
