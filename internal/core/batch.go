package core

import (
	"fmt"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/vector"
)

// InsertBatch inserts several tuples in one critical section, appending to
// each affected vector list once instead of once per tuple — the bulk-feed
// ingestion path of a community system. Tuples receive consecutive ids,
// returned in order. On ErrNeedsRebuild nothing has been inserted.
func (ix *Index) InsertBatch(batch []map[model.AttrID]model.Value) ([]model.TID, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	firstTID := ix.tbl.NextTID()
	lastTID := firstTID + model.TID(len(batch)) - 1
	if lastTID > ix.maxTID() || lastTID < firstTID {
		return nil, ErrNeedsRebuild
	}
	if n := ix.tbl.Catalog().NumAttrs(); n > len(ix.attrs) {
		if err := ix.growAttrs(n); err != nil {
			return nil, err
		}
	}

	// Encode everything per attribute before mutating any state.
	writers := make(map[model.AttrID]*bitio.Writer)
	encoders := make(map[model.AttrID]*vector.Encoder)
	writerFor := func(a model.AttrID) (*bitio.Writer, *vector.Encoder, error) {
		if w, ok := writers[a]; ok {
			return w, encoders[a], nil
		}
		if ix.attrs[a].dirBroken {
			// No known tail position on a packed list whose block directory
			// was dropped; the rebuild path recreates it (see Insert).
			return nil, nil, ErrNeedsRebuild
		}
		enc, err := vector.NewEncoder(ix.attrs[a].layout)
		if err != nil {
			return nil, nil, err
		}
		w := &bitio.Writer{}
		writers[a], encoders[a] = w, enc
		return w, enc, nil
	}
	var positional []model.AttrID
	for id := range ix.attrs {
		t := ix.attrs[id].layout.Type
		if t == vector.TypeIII || t == vector.TypeIV {
			positional = append(positional, model.AttrID(id))
		}
	}
	encodeOne := func(tid model.TID, a model.AttrID, v model.Value, ndf bool) error {
		st := &ix.attrs[a]
		w, enc, err := writerFor(a)
		if err != nil {
			return err
		}
		if ndf {
			if st.layout.Kind == model.KindText {
				err = enc.EncodeText(w, tid, nil)
			} else {
				err = enc.EncodeNumeric(w, tid, 0, true)
			}
		} else {
			switch st.layout.Kind {
			case model.KindText:
				sigs := make([]signature.Sig, len(v.Strs))
				for i, s := range v.Strs {
					sigs[i] = st.layout.Codec.Encode(s)
				}
				err = enc.EncodeText(w, tid, sigs)
			case model.KindNumeric:
				err = enc.EncodeNumeric(w, tid, st.quant.Encode(v.Num), false)
			}
		}
		if err == vector.ErrWidthOverflow {
			return ErrNeedsRebuild
		}
		return err
	}
	// Stripe boundaries crossed by the batch: snapshot resume offsets while
	// encoding, since each attribute's offset at a boundary is its committed
	// length plus the bits encoded for earlier tuples of this batch.
	startPos := int64(len(ix.entries))
	type ckptSnap struct {
		pos  int64
		offs []int64
	}
	var snaps []ckptSnap
	for i, values := range batch {
		if len(values) == 0 {
			return nil, fmt.Errorf("core: empty tuple at batch index %d", i)
		}
		if pos := startPos + int64(i); pos%ix.ckptEvery == 0 && ix.checkpointsEnabled() {
			snaps = append(snaps, ckptSnap{pos, ix.currentAttrOffsets(func(a int) int64 {
				if w, ok := writers[model.AttrID(a)]; ok {
					return int64(w.Len())
				}
				return 0
			})})
		}
		tid := firstTID + model.TID(i)
		for a, v := range values {
			if int(a) >= len(ix.attrs) {
				return nil, fmt.Errorf("core: value on unregistered attribute %d", a)
			}
			if ix.attrs[a].layout.Kind != v.Kind {
				return nil, fmt.Errorf("core: attribute %d is %v, value is %v",
					a, ix.attrs[a].layout.Kind, v.Kind)
			}
			if err := encodeOne(tid, a, v, false); err != nil {
				return nil, err
			}
		}
		for _, a := range positional {
			if _, ok := values[a]; ok {
				continue
			}
			if err := encodeOne(tid, a, model.Value{}, true); err != nil {
				return nil, err
			}
		}
	}

	// Commit: table records first, then the index tails, each once.
	tids := make([]model.TID, len(batch))
	var tw bitio.Writer
	type entryAdd struct {
		tid model.TID
		ptr int64
	}
	adds := make([]entryAdd, 0, len(batch))
	for i, values := range batch {
		tid := firstTID + model.TID(i)
		gotTID, ptr, err := ix.tbl.Append(values)
		if err != nil {
			return nil, err
		}
		if gotTID != tid {
			return nil, fmt.Errorf("core: tid raced in batch: %d vs %d", tid, gotTID)
		}
		if uint64(ptr) >= tombstonePtr {
			return nil, ErrNeedsRebuild
		}
		tw.WriteBits(uint64(tid), ix.ltid)
		tw.WriteBits(uint64(ptr), ptrBits)
		adds = append(adds, entryAdd{tid, ptr})
		tids[i] = tid
	}
	var err error
	if ix.tupleBits, err = storage.AppendBits(ix.segs, ix.tupleChain, ix.tupleBits, tw.Bytes(), tw.Len()); err != nil {
		return nil, err
	}
	for i, a := range adds {
		ix.entries = append(ix.entries, tupleEntry{tid: a.tid, ptr: a.ptr})
		ix.posByTID[a.tid] = startPos + int64(i)
		ix.zoneObserve(batch[i])
	}
	for a, w := range writers {
		if w.Len() == 0 {
			continue
		}
		if err := ix.appendList(&ix.attrs[a], w.Bytes(), w.Len()); err != nil {
			return nil, err
		}
	}
	for _, s := range snaps {
		ix.recordCheckpoint(s.pos, s.offs)
	}
	return tids, nil
}
