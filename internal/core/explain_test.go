package core

import (
	"math"
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
)

func TestExplainSearch(t *testing.T) {
	fx := newFixture(t, 200, Options{}, 501)
	m := metric.Default()
	q := fx.randQuery(t, 3, 10)
	ex, err := fx.ix.ExplainSearch(q, m)
	if err != nil {
		t.Fatal(err)
	}
	// Results must equal a plain search.
	plain, _, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Results) != len(plain) {
		t.Fatalf("%d vs %d results", len(ex.Results), len(plain))
	}
	for i := range plain {
		if math.Abs(ex.Results[i].Dist-plain[i].Dist) > 1e-9 {
			t.Fatalf("result %d: %v vs %v", i, ex.Results[i].Dist, plain[i].Dist)
		}
	}
	if ex.Scanned != fx.tbl.Live() {
		t.Fatalf("scanned %d of %d", ex.Scanned, fx.tbl.Live())
	}
	if len(ex.Terms) != len(q.Terms) {
		t.Fatalf("%d term explains", len(ex.Terms))
	}
	for i, te := range ex.Terms {
		if te.Defined+te.NDF != ex.Scanned {
			t.Fatalf("term %d: defined %d + ndf %d != scanned %d", i, te.Defined, te.NDF, ex.Scanned)
		}
		if te.Defined > 0 {
			if te.MinEst < 0 || te.MeanEst < te.MinEst || te.MeanEst > te.MaxEst {
				t.Fatalf("term %d: est stats inconsistent: min %v mean %v max %v",
					i, te.MinEst, te.MeanEst, te.MaxEst)
			}
			// Tightness is a mean of (lower bound / exact) over fetched
			// tuples, so it must land in [0, 1+ε].
			if te.Tightness < 0 || te.Tightness > 1+1e-9 {
				t.Fatalf("term %d: tightness %v outside [0,1]", i, te.Tightness)
			}
		}
		if te.Alpha == 0 {
			t.Fatalf("term %d: alpha missing", i)
		}
	}
	if ex.PoolMaxFinal <= 0 && len(ex.Results) > 0 && ex.Results[len(ex.Results)-1].Dist > 0 {
		t.Fatal("PoolMaxFinal not recorded")
	}
}

func TestExplainUnknownAttribute(t *testing.T) {
	fx := newFixture(t, 30, Options{}, 502)
	newAttr, _ := fx.tbl.Catalog().AddAttr("phantom", model.KindText)
	m := metric.Default()
	q := (&model.Query{K: 3}).TextTerm(newAttr, "nothing")
	ex, err := fx.ix.ExplainSearch(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Terms[0].NDF != ex.Scanned || ex.Terms[0].Defined != 0 {
		t.Fatalf("phantom attribute explain: %+v", ex.Terms[0])
	}
}
