package core

import (
	"fmt"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/vector"
)

// Insert adds a tuple to the table and appends the corresponding elements to
// the tail of the tuple list and of every affected vector list (§IV-B).
// Attributes registered in the catalog after the last build get fresh Type I
// lists lazily. ErrNeedsRebuild is returned — before any state changes —
// when a packed field can no longer represent the new element.
func (ix *Index) Insert(values map[model.AttrID]model.Value) (model.TID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()

	tid := ix.tbl.NextTID()
	if tid > ix.maxTID() {
		return 0, ErrNeedsRebuild
	}
	// Grow the attribute-state table for catalog attributes added after the
	// last build.
	if n := ix.tbl.Catalog().NumAttrs(); n > len(ix.attrs) {
		if err := ix.growAttrs(n); err != nil {
			return 0, err
		}
	}
	// Pre-encode everything so nothing is mutated on overflow. Positional
	// lists need elements even for undefined attributes.
	type pendingWrite struct {
		attr model.AttrID
		w    *bitio.Writer
	}
	var writes []pendingWrite
	touched := make(map[model.AttrID]bool, len(values))
	encodeFor := func(a model.AttrID, v model.Value, ndf bool) error {
		st := &ix.attrs[a]
		if st.dirBroken {
			// A packed list whose block directory was dropped at open has no
			// known tail position; appending would corrupt it further. The
			// rebuild path recreates the list from the table.
			return ErrNeedsRebuild
		}
		enc, err := vector.NewEncoder(st.layout)
		if err != nil {
			return err
		}
		w := &bitio.Writer{}
		if ndf {
			if st.layout.Kind == model.KindText {
				err = enc.EncodeText(w, tid, nil)
			} else {
				err = enc.EncodeNumeric(w, tid, 0, true)
			}
		} else {
			switch st.layout.Kind {
			case model.KindText:
				sigs := make([]signature.Sig, len(v.Strs))
				for i, s := range v.Strs {
					sigs[i] = st.layout.Codec.Encode(s)
				}
				err = enc.EncodeText(w, tid, sigs)
			case model.KindNumeric:
				err = enc.EncodeNumeric(w, tid, st.quant.Encode(v.Num), false)
			}
		}
		if err == vector.ErrWidthOverflow {
			return ErrNeedsRebuild
		}
		if err != nil {
			return err
		}
		writes = append(writes, pendingWrite{a, w})
		return nil
	}
	for a, v := range values {
		if int(a) >= len(ix.attrs) {
			return 0, fmt.Errorf("core: value on unregistered attribute %d", a)
		}
		if ix.attrs[a].layout.Kind != v.Kind {
			return 0, fmt.Errorf("core: attribute %d is %v, value is %v", a, ix.attrs[a].layout.Kind, v.Kind)
		}
		if err := encodeFor(a, v, false); err != nil {
			return 0, err
		}
		touched[a] = true
	}
	for id := range ix.attrs {
		a := model.AttrID(id)
		if touched[a] {
			continue
		}
		t := ix.attrs[a].layout.Type
		if t == vector.TypeIII || t == vector.TypeIV {
			if err := encodeFor(a, model.Value{}, true); err != nil {
				return 0, err
			}
		}
	}

	// Commit: table record first, then the index tails.
	gotTID, ptr, err := ix.tbl.Append(values)
	if err != nil {
		return 0, err
	}
	if gotTID != tid {
		return 0, fmt.Errorf("core: tid raced: expected %d, table assigned %d", tid, gotTID)
	}
	if uint64(ptr) >= tombstonePtr {
		return 0, ErrNeedsRebuild
	}
	var tw bitio.Writer
	tw.WriteBits(uint64(tid), ix.ltid)
	tw.WriteBits(uint64(ptr), ptrBits)
	if ix.tupleBits, err = storage.AppendBits(ix.segs, ix.tupleChain, ix.tupleBits, tw.Bytes(), tw.Len()); err != nil {
		return 0, err
	}
	pos := int64(len(ix.entries))
	if pos%ix.ckptEvery == 0 {
		// Stripe boundary at this tuple: the vector-list tails, captured
		// before this tuple's elements land, are the resume offsets.
		ix.recordCheckpoint(pos, ix.currentAttrOffsets(nil))
	}
	ix.entries = append(ix.entries, tupleEntry{tid: tid, ptr: ptr})
	ix.posByTID[tid] = pos
	ix.zoneObserve(values)
	for _, pw := range writes {
		if err := ix.appendList(&ix.attrs[pw.attr], pw.w.Bytes(), pw.w.Len()); err != nil {
			return 0, err
		}
	}
	return tid, nil
}

// appendList appends nbits of encoded elements at an attribute's physical
// tail and advances its logical length. Under codec 0 the two coincide;
// under codec 1 the raw tail starts word-aligned behind the sealed blocks.
func (ix *Index) appendList(st *attrState, src []byte, nbits int) error {
	if _, err := storage.AppendBits(ix.segs, st.chain, st.physBits(), src, nbits); err != nil {
		return err
	}
	st.bitLen += int64(nbits)
	return nil
}

// growAttrs creates lazy Type I lists for newly registered attributes.
func (ix *Index) growAttrs(n int) error {
	for id := len(ix.attrs); id < n; id++ {
		info, err := ix.tbl.Catalog().Info(model.AttrID(id))
		if err != nil {
			return err
		}
		// A post-build attribute starts empty: sparse Type I is optimal and
		// stays legal for both kinds.
		forced := ix.opts
		forced.ForceType = vector.TypeI
		alpha := ix.opts.Alpha
		if o, ok := ix.opts.AlphaOverride[model.AttrID(id)]; ok {
			alpha = o
		}
		codec, err := ix.codecFor(alpha)
		if err != nil {
			return err
		}
		layout, quant, err := chooseLayout(forced, codec, table.AttrInfo{
			Name: info.Name, Kind: info.Kind,
			HasDomain: info.HasDomain, Min: info.Min, Max: info.Max,
			MaxStrs: info.MaxStrs,
		}, ix.ltid, int64(len(ix.entries)))
		if err != nil {
			return err
		}
		chain, err := ix.segs.Create()
		if err != nil {
			return err
		}
		ix.attrs = append(ix.attrs, attrState{layout: layout, chain: chain, alpha: alpha, quant: quant, exists: true})
	}
	return nil
}

// Delete tombstones a tuple: its tuple-list ptr is overwritten with the
// all-ones marker, the catalog statistics shed its values, and the record
// stays in the table file until the next rebuild (§IV-B).
func (ix *Index) Delete(tid model.TID) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	pos, ok := ix.posByTID[tid]
	if !ok {
		return ErrNotFound
	}
	tp, err := ix.tbl.Fetch(ix.entries[pos].ptr)
	if err != nil {
		return err
	}
	bitOff := pos*int64(ix.elemBits()) + int64(ix.ltid)
	if err := storage.WriteBitsAt(ix.segs, ix.tupleChain, bitOff, tombstonePtr, ptrBits); err != nil {
		return err
	}
	// The tombstone mutates committed bytes in place, so the committed
	// checksum map must be written through (see crcRepairRange).
	if err := ix.crcRepairRange(ix.tupleChain, bitOff, ptrBits); err != nil {
		return err
	}
	if err := ix.tbl.NoteDelete(tp.Values); err != nil {
		return err
	}
	ix.entries[pos].deleted = true
	ix.zoneNoteDelete(pos)
	delete(ix.posByTID, tid)
	ix.deleted++
	return nil
}

// Update replaces a tuple: §IV-B breaks it into a deletion and an insertion
// under a fresh tid, which is returned.
func (ix *Index) Update(tid model.TID, values map[model.AttrID]model.Value) (model.TID, error) {
	if err := ix.Delete(tid); err != nil {
		return 0, err
	}
	return ix.Insert(values)
}

// Fetch returns a live tuple by id (one random table access).
func (ix *Index) Fetch(tid model.TID) (*model.Tuple, error) {
	ix.mu.RLock()
	pos, ok := ix.posByTID[tid]
	var ptr int64
	if ok {
		ptr = ix.entries[pos].ptr
	}
	ix.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return ix.tbl.Fetch(ptr)
}
