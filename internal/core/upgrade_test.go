package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/vector"
)

// TestOpenV2Upgrade walks the in-place v2→v3 upgrade. A v2 superblock is
// synthesized by downgrading a freshly built file: the version word drops to
// 2 and the v3 fields (attrChainB, attrSlot, ckptCount) are zeroed. That is
// a faithful v2 image — Build's first Sync commits the attribute list to
// slot 0 (attrChain), exactly where a v2 reader looks, and the checkpoint
// chain still carries its in-chain count word. The file must open, answer
// queries, then upgrade to v3 on its first Sync (lazily allocating the
// shadow slot) and keep working across a further reopen.
func TestOpenV2Upgrade(t *testing.T) {
	pool := storage.NewPool(0, 1<<20)
	tblDev, idxDev := storage.NewMemDevice(), storage.NewMemDevice()
	tblF := storage.NewFile(pool, tblDev)
	idxF := storage.NewFile(pool, idxDev)
	cat := table.NewCatalog()
	num, err := cat.AddAttr("price", model.KindNumeric)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := cat.AddAttr("title", model.KindText)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := table.New(tblF, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		vals := map[model.AttrID]model.Value{num: model.Num(float64(i * 3))}
		if i%2 == 0 {
			vals[txt] = model.Text(fmt.Sprintf("row-%d", i), "upgrade")
		}
		if _, _, err := tbl.Append(vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(tbl, idxF, Options{CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := &model.Query{K: 4}
	q.NumTerm(num, 30)
	want, _, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the checkpoint chain in the legacy trailer-free v2 record
	// layout, so the downgraded image below is faithful byte-for-byte (v4
	// records carry CRC trailers a v2 reader would misparse).
	legacy := binary.LittleEndian.AppendUint32(nil, uint32(len(ix.ckpts)))
	for _, c := range ix.ckpts {
		legacy = binary.LittleEndian.AppendUint32(legacy, uint32(len(c.attrOff)))
		for _, off := range c.attrOff {
			legacy = binary.LittleEndian.AppendUint64(legacy, uint64(off))
		}
	}
	if err := ix.segs.WriteAt(ix.ckptChain, legacy, 0); err != nil {
		t.Fatal(err)
	}
	tblF.Close()
	idxF.Close()

	// Downgrade the superblock to version 2.
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], 2)
	if _, err := idxDev.WriteAt(ver[:], 4); err != nil {
		t.Fatal(err)
	}
	if _, err := idxDev.WriteAt(make([]byte, 12), 76); err != nil {
		t.Fatal(err)
	}

	reopen := func(stage string) (*table.Table, *Index, func()) {
		p := storage.NewPool(0, 1<<20)
		tf := storage.NewFile(p, tblDev)
		xf := storage.NewFile(p, idxDev)
		tb, err := table.Open(tf, cat)
		if err != nil {
			t.Fatalf("%s: table open: %v", stage, err)
		}
		x, err := Open(xf, tb, Options{})
		if err != nil {
			t.Fatalf("%s: index open: %v", stage, err)
		}
		return tb, x, func() { tf.Close(); xf.Close() }
	}
	checkSearch := func(stage string, x *Index) {
		got, _, err := x.Search(q, nil)
		if err != nil {
			t.Fatalf("%s: search: %v", stage, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", stage, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", stage, i, got[i], want[i])
			}
		}
		rep, err := x.Check()
		if err != nil {
			t.Fatalf("%s: check: %v", stage, err)
		}
		if !rep.Ok() {
			t.Fatalf("%s: check problems: %v", stage, rep.Problems)
		}
	}

	tb2, ix2, close2 := reopen("v2 open")
	if ix2.attrChainB != storage.NoSegment || ix2.attrSlot != 0 {
		t.Fatalf("v2 open: attrChainB=%d attrSlot=%d, want shadow slot unset",
			ix2.attrChainB, ix2.attrSlot)
	}
	if len(ix2.ckpts) == 0 {
		t.Fatal("v2 open: in-chain checkpoint count was not honored")
	}
	checkSearch("v2 open", ix2)

	// First write + Sync performs the upgrade.
	if _, err := ix2.Insert(map[model.AttrID]model.Value{
		num: model.Num(100), txt: model.Text("post-upgrade", "upgrade"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tb2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Sync(); err != nil {
		t.Fatal(err)
	}
	if ix2.attrChainB == storage.NoSegment {
		t.Fatal("upgrade sync did not allocate the shadow attribute slot")
	}
	close2()

	_, ix3, close3 := reopen("v3 reopen")
	defer close3()
	if ix3.attrChainB == storage.NoSegment {
		t.Fatal("v3 reopen: shadow slot missing from committed superblock")
	}
	if ix3.Entries() != 21 {
		t.Fatalf("v3 reopen: %d entries, want 21", ix3.Entries())
	}
	checkSearch("v3 reopen", ix3)
}

// TestOpenV4Upgrade walks the in-place v4→v5 upgrade. A v4 superblock is
// synthesized by downgrading a freshly built v5 file: the version word drops
// to 4, the zone fields (zoneChain, zoneCount) vanish, and the CRC trailer
// moves back to its v4 offset — exactly the image a v4 writer would have
// committed (the now-unreferenced zone chain just leaks, like any upgrade
// leftovers, until a rebuild). The file must open with zone maps disabled,
// answer identically, then upgrade to v5 on its first Sync — backfilling
// explicit "unknown" records for the already-sealed stripes so record s
// keeps describing stripe s — and start pruning again as new stripes seal.
func TestOpenV4Upgrade(t *testing.T) {
	pool := storage.NewPool(0, 1<<20)
	tblDev, idxDev := storage.NewMemDevice(), storage.NewMemDevice()
	tblF := storage.NewFile(pool, tblDev)
	idxF := storage.NewFile(pool, idxDev)
	cat := table.NewCatalog()
	num, err := cat.AddAttr("price", model.KindNumeric)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := cat.AddAttr("title", model.KindText)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := table.New(tblF, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		vals := map[model.AttrID]model.Value{num: model.Num(float64(i * 3))}
		if i%2 == 0 {
			vals[txt] = model.Text(fmt.Sprintf("row-%d", i), "upgrade")
		}
		if _, _, err := tbl.Append(vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(tbl, idxF, Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := &model.Query{K: 4}
	q.NumTerm(num, 30)
	want, _, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	tblF.Close()
	idxF.Close()

	// Downgrade the superblock: version 4, no zone fields, CRC at the v4
	// offset covering [0, sbCRCOffV4).
	sb := make([]byte, superblockSize)
	if _, err := idxDev.ReadAt(sb, 0); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(sb[4:], 4)
	for i := sbCRCOffV4; i < sbCRCOff+4; i++ {
		sb[i] = 0
	}
	binary.LittleEndian.PutUint32(sb[sbCRCOffV4:], storage.Checksum(sb[:sbCRCOffV4]))
	if _, err := idxDev.WriteAt(sb, 0); err != nil {
		t.Fatal(err)
	}

	reopen := func(stage string) (*table.Table, *Index, func()) {
		p := storage.NewPool(0, 1<<20)
		tf := storage.NewFile(p, tblDev)
		xf := storage.NewFile(p, idxDev)
		tb, err := table.Open(tf, cat)
		if err != nil {
			t.Fatalf("%s: table open: %v", stage, err)
		}
		x, err := Open(xf, tb, Options{})
		if err != nil {
			t.Fatalf("%s: index open: %v", stage, err)
		}
		return tb, x, func() { tf.Close(); xf.Close() }
	}
	checkSearch := func(stage string, x *Index, want []model.Result) {
		t.Helper()
		got, _, err := x.Search(q, nil)
		if err != nil {
			t.Fatalf("%s: search: %v", stage, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", stage, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", stage, i, got[i], want[i])
			}
		}
		rep, err := x.Check()
		if err != nil {
			t.Fatalf("%s: check: %v", stage, err)
		}
		if !rep.Ok() {
			t.Fatalf("%s: check problems: %v", stage, rep.Problems)
		}
	}

	tb2, ix2, close2 := reopen("v4 open")
	if ix2.version != 4 {
		t.Fatalf("v4 open: version %d, want 4", ix2.version)
	}
	if ix2.zonesEnabled() || ix2.ZoneMapsOn() {
		t.Fatal("v4 open: zone maps unexpectedly enabled")
	}
	checkSearch("v4 open", ix2, want)

	// First write + Sync performs the upgrade: the zone chain is allocated
	// and the 6 already-sealed stripes backfill as unknown records.
	if _, err := ix2.Insert(map[model.AttrID]model.Value{
		num: model.Num(1000), txt: model.Text("post-upgrade", "upgrade"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tb2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Sync(); err != nil {
		t.Fatal(err)
	}
	if !ix2.zonesEnabled() {
		t.Fatal("upgrade sync did not allocate the zone chain")
	}
	if known, sealed := ix2.ZoneMapCoverage(); known != 0 || sealed != 6 {
		t.Fatalf("post-upgrade coverage %d/%d, want 0/6 (backfilled unknowns)", known, sealed)
	}
	checkSearch("post-upgrade", ix2, want)
	close2()

	_, ix3, close3 := reopen("v5 reopen")
	if ix3.version != indexVersion {
		t.Fatalf("v5 reopen: version %d, want %d", ix3.version, indexVersion)
	}
	if known, sealed := ix3.ZoneMapCoverage(); known != 0 || sealed != 6 {
		t.Fatalf("v5 reopen coverage %d/%d, want 0/6", known, sealed)
	}
	checkSearch("v5 reopen", ix3, want)

	// New stripes sealed after the upgrade carry real summaries: coverage
	// grows, and pruning engages on the fresh data.
	for i := 0; i < 8; i++ {
		if _, err := ix3.Insert(map[model.AttrID]model.Value{num: model.Num(float64(2000 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix3.Sync(); err != nil {
		t.Fatal(err)
	}
	known, sealed := ix3.ZoneMapCoverage()
	if known == 0 || sealed <= 6 {
		t.Fatalf("post-upgrade seals not covered: %d/%d", known, sealed)
	}
	wantWide, _, err := ix3.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix3.SetZoneMaps(false)
	offWide, _, err := ix3.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix3.SetZoneMaps(true)
	for i := range wantWide {
		if offWide[i] != wantWide[i] {
			t.Fatalf("zones on/off diverged post-upgrade: %+v vs %+v", wantWide[i], offWide[i])
		}
	}
	close3()
}

// TestOpenV5Upgrade walks the in-place v5→v6 upgrade. v6 added no superblock
// fields — only the per-attribute codec bytes, which a codec-0 build leaves
// zero exactly as a v5 writer's element padding did — so downgrading a fresh
// codec-0 build's version word yields a faithful v5 image. The file must
// open (every list raw, no block directories), answer identically, then
// commit version 6 on its first Sync and keep answering across a reopen.
func TestOpenV5Upgrade(t *testing.T) {
	pool := storage.NewPool(0, 1<<20)
	tblDev, idxDev := storage.NewMemDevice(), storage.NewMemDevice()
	tblF := storage.NewFile(pool, tblDev)
	idxF := storage.NewFile(pool, idxDev)
	cat := table.NewCatalog()
	num, err := cat.AddAttr("price", model.KindNumeric)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := cat.AddAttr("title", model.KindText)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := table.New(tblF, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		vals := map[model.AttrID]model.Value{num: model.Num(float64(i * 3))}
		if i%2 == 0 {
			vals[txt] = model.Text(fmt.Sprintf("row-%d", i), "upgrade")
		}
		if _, _, err := tbl.Append(vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(tbl, idxF, Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := &model.Query{K: 4}
	q.NumTerm(num, 30)
	want, _, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	tblF.Close()
	idxF.Close()

	downgradeToV5(t, idxDev)

	reopen := func(stage string) (*table.Table, *Index, func()) {
		p := storage.NewPool(0, 1<<20)
		tf := storage.NewFile(p, tblDev)
		xf := storage.NewFile(p, idxDev)
		tb, err := table.Open(tf, cat)
		if err != nil {
			t.Fatalf("%s: table open: %v", stage, err)
		}
		x, err := Open(xf, tb, Options{})
		if err != nil {
			t.Fatalf("%s: index open: %v", stage, err)
		}
		return tb, x, func() { tf.Close(); xf.Close() }
	}
	checkSearch := func(stage string, x *Index) {
		t.Helper()
		got, _, err := x.Search(q, nil)
		if err != nil {
			t.Fatalf("%s: search: %v", stage, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", stage, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", stage, i, got[i], want[i])
			}
		}
		rep, err := x.Check()
		if err != nil {
			t.Fatalf("%s: check: %v", stage, err)
		}
		if !rep.Ok() {
			t.Fatalf("%s: check problems: %v", stage, rep.Problems)
		}
	}

	tb2, ix2, close2 := reopen("v5 open")
	if ix2.version != 5 {
		t.Fatalf("v5 open: version %d, want 5", ix2.version)
	}
	for i := range ix2.attrs {
		st := &ix2.attrs[i]
		if st.codecID != vector.CodecRaw || st.codedWords != 0 || len(st.dir) != 0 {
			t.Fatalf("v5 open: attr %d carries codec state", i)
		}
	}
	if !ix2.zonesEnabled() {
		t.Fatal("v5 open: zone maps lost in the downgrade")
	}
	checkSearch("v5 open", ix2)

	// First write + Sync commits version 6 in place; every list stays codec 0.
	if _, err := ix2.Insert(map[model.AttrID]model.Value{
		num: model.Num(1000), txt: model.Text("post-upgrade", "upgrade"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tb2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Sync(); err != nil {
		t.Fatal(err)
	}
	if ix2.version != indexVersion {
		t.Fatalf("upgrade sync left version %d, want %d", ix2.version, indexVersion)
	}
	checkSearch("post-upgrade", ix2)
	close2()

	_, ix3, close3 := reopen("v6 reopen")
	defer close3()
	if ix3.version != indexVersion {
		t.Fatalf("v6 reopen: version %d, want %d", ix3.version, indexVersion)
	}
	if ix3.Entries() != 25 {
		t.Fatalf("v6 reopen: %d entries, want 25", ix3.Entries())
	}
	for i := range ix3.attrs {
		if ix3.attrs[i].codecID != vector.CodecRaw {
			t.Fatalf("v6 reopen: attr %d not codec 0 after upgrade", i)
		}
	}
	checkSearch("v6 reopen", ix3)
}

// downgradeToV5 rewrites a committed v6 superblock as version 5: no field
// moves (v6 added none), so only the version word and the CRC over the
// prefix change.
func downgradeToV5(t *testing.T, idxDev *storage.MemDevice) {
	t.Helper()
	sb := make([]byte, superblockSize)
	if _, err := idxDev.ReadAt(sb, 0); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(sb[4:], 5)
	binary.LittleEndian.PutUint32(sb[sbCRCOff:], storage.Checksum(sb[:sbCRCOff]))
	if _, err := idxDev.WriteAt(sb, 0); err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeCrashSweep replays the v5→v6 upgrade — open a v5 image, insert
// one row, sync — with the index device armed to fail after every possible
// number of device operations, exactly like the build/insert torture sweep.
// Every crash point must leave a state a fresh process recovers: the store
// opens from one of the two sync-time candidates (24 entries at version 5,
// or 25 at version 6), passes a full integrity check, answers the baseline
// query byte-identically, and completes the upgrade on the next sync.
func TestUpgradeCrashSweep(t *testing.T) {
	step := int64(1)
	if testing.Short() {
		step = 7
	}
	crashes := 0
	for budget := int64(0); ; budget += step {
		done := runUpgradeCrashOnce(t, budget)
		if done {
			t.Logf("sweep done: %d crash points recovered, upgrade uses <%d device ops", crashes, budget)
			return
		}
		crashes++
	}
}

// runUpgradeCrashOnce prepares a fresh v5 image, arms the index device with
// the given fault budget, and drives the upgrade. It reports true when the
// upgrade ran to completion without tripping the fault.
func runUpgradeCrashOnce(t *testing.T, budget int64) bool {
	t.Helper()
	// Unfaulted setup: build a deterministic codec-0 store and downgrade it.
	tblDev, idxDev := storage.NewMemDevice(), storage.NewMemDevice()
	pool := storage.NewPool(0, 1<<20)
	tblF := storage.NewFile(pool, tblDev)
	idxF := storage.NewFile(pool, idxDev)
	cat := table.NewCatalog()
	num, err := cat.AddAttr("price", model.KindNumeric)
	if err != nil {
		t.Fatal(err)
	}
	txt, err := cat.AddAttr("title", model.KindText)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := table.New(tblF, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		vals := map[model.AttrID]model.Value{num: model.Num(float64(i * 3))}
		if i%2 == 0 {
			vals[txt] = model.Text(fmt.Sprintf("row-%d", i), "upgrade")
		}
		if _, _, err := tbl.Append(vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Sync(); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(tbl, idxF, Options{CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := &model.Query{K: 4}
	q.NumTerm(num, 30)
	want, _, err := ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	catBase := cat.Encode()
	tblF.Close()
	idxF.Close()
	downgradeToV5(t, idxDev)

	// Faulted phase: the v5 open, the insert, and the upgrading sync all run
	// against the armed index device. The inserted value is far from the
	// query point, so the baseline top-4 stays valid at 24 and 25 entries.
	fd := storage.NewFaultDevice(idxDev, budget)
	fPool := storage.NewPool(0, 1<<20)
	fTblF := storage.NewFile(fPool, tblDev)
	fIdxF := storage.NewFile(fPool, fd)
	defer fTblF.Close()
	defer fIdxF.Close()
	fTbl, err := table.Open(fTblF, cat)
	if err != nil {
		t.Fatalf("budget %d: table open: %v", budget, err)
	}
	var catPost []byte
	script := func() error {
		fIx, err := Open(fIdxF, fTbl, Options{})
		if err != nil {
			return err
		}
		if fIx.version != 5 {
			t.Fatalf("budget %d: opened version %d, want 5", budget, fIx.version)
		}
		if _, err := fIx.Insert(map[model.AttrID]model.Value{
			num: model.Num(1000), txt: model.Text("post-upgrade", "upgrade"),
		}); err != nil {
			return err
		}
		catPost = cat.Encode()
		if err := fTbl.Sync(); err != nil {
			return err
		}
		if err := fIx.Sync(); err != nil {
			return err
		}
		if fIx.version != indexVersion {
			t.Fatalf("budget %d: upgrade sync left version %d", budget, fIx.version)
		}
		return nil
	}
	err = script()
	if err == nil {
		if fd.Tripped() {
			t.Fatalf("budget %d: upgrade succeeded past an injected fault", budget)
		}
		return true
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("budget %d: crash surfaced a non-injected error: %v", budget, err)
	}

	// Recovery: disarm, drop every cache, reopen from a sync candidate.
	fd.Reset(-1)
	type candidate struct {
		entries int64
		cat     []byte
		version uint32
	}
	cands := []candidate{{24, catBase, 5}}
	if catPost != nil {
		cands = append(cands, candidate{25, catPost, indexVersion})
	}
	rPool := storage.NewPool(0, 1<<20)
	rTblF := storage.NewFile(rPool, tblDev)
	rIdxF := storage.NewFile(rPool, idxDev)
	defer rTblF.Close()
	defer rIdxF.Close()
	var (
		rIx  *Index
		rTbl *table.Table
	)
	for i := len(cands) - 1; i >= 0; i-- {
		cand := cands[i]
		cat2, err := table.DecodeCatalog(cand.cat)
		if err != nil {
			t.Fatalf("budget %d: candidate %d decode: %v", budget, i, err)
		}
		tb, err := table.Open(rTblF, cat2)
		if err != nil {
			continue
		}
		x, err := Open(rIdxF, tb, Options{})
		if err != nil {
			continue
		}
		if x.Entries() != cand.entries {
			continue
		}
		if x.version != cand.version {
			t.Fatalf("budget %d: recovered %d entries at version %d, want %d",
				budget, x.Entries(), x.version, cand.version)
		}
		rIx, rTbl = x, tb
		break
	}
	if rIx == nil {
		t.Fatalf("budget %d: no sync candidate recovered", budget)
	}
	rep, err := rIx.Check()
	if err != nil {
		t.Fatalf("budget %d: recovered check: %v", budget, err)
	}
	if !rep.Ok() {
		t.Fatalf("budget %d: recovered state inconsistent: %v", budget, rep.Problems)
	}
	got, _, err := rIx.Search(q, nil)
	if err != nil {
		t.Fatalf("budget %d: recovered search: %v", budget, err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("budget %d: recovered result %d = %+v, want %+v", budget, i, got[i], want[i])
		}
	}
	// Resume: the next insert + sync must finish the upgrade from either
	// recovered version.
	if _, err := rIx.Insert(map[model.AttrID]model.Value{num: model.Num(2000)}); err != nil {
		t.Fatalf("budget %d: resumed insert: %v", budget, err)
	}
	if err := rTbl.Sync(); err != nil {
		t.Fatalf("budget %d: resumed table sync: %v", budget, err)
	}
	if err := rIx.Sync(); err != nil {
		t.Fatalf("budget %d: resumed index sync: %v", budget, err)
	}
	if rIx.version != indexVersion {
		t.Fatalf("budget %d: resumed sync left version %d", budget, rIx.version)
	}
	rep, err = rIx.Check()
	if err != nil || !rep.Ok() {
		t.Fatalf("budget %d: post-resume check: %v %v", budget, err, rep.Problems)
	}
	return false
}
