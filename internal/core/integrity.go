package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/sparsewide/iva/internal/storage"
)

// IntegrityMode selects how a checksum mismatch is handled at read time.
type IntegrityMode int

const (
	// IntegrityDegrade (the default) keeps queries answerable: a corrupt
	// vector-list segment is treated as contributing a zero lower bound for
	// its tuples, which sends them all to the refine phase — slower, but the
	// paper's no-false-negative guarantee survives because refinement
	// computes exact distances from the (separately checksummed) table.
	// Corrupt tuple-list segments and table records still fail the query:
	// without trustworthy ptrs or record bytes there is nothing to refine.
	IntegrityDegrade IntegrityMode = iota
	// IntegrityStrict fails any operation that touches corrupt bytes.
	IntegrityStrict
)

// segCRC is the committed checksum-map entry of one index segment.
type segCRC struct {
	crc  uint32 // CRC32C over the committed span
	n    int    // committed payload bytes (span is always a prefix)
	mask uint8  // committed bits of the final byte; 0 means all 8
	off  int64  // byte offset of this crc word in the committed crc chain; -1 = not on disk
}

// integrityState is the v4 checksum machinery of an open index. The
// per-segment CRC32C words live out-of-line in a ping-ponged pair of
// checksum chains committed by the superblock, so segment payloads keep
// their full v3 size and a v3 file upgrades in place without rewriting data.
type integrityState struct {
	mu       sync.Mutex
	enabled  bool // v4 semantics active (building or committed)
	words    map[storage.SegID]segCRC
	dirty    map[storage.SegID]struct{} // written since the last Sync; unverifiable
	verified map[storage.SegID]struct{} // verified since open

	// full forces the next Sync to recompute every covered segment: set on a
	// v3→v4 upgrade and when the committed map itself failed verification.
	full bool
	// mapDropped records that the committed checksum map was unreadable and
	// DegradeReads continued without it (reads run unverified until the next
	// Sync rewrites the map).
	mapDropped bool
	// droppedCkpts counts checkpoint records discarded at open because their
	// CRC trailer mismatched (DegradeReads only); droppedZones likewise for
	// zone-map records, droppedCodecDirs for packed-list block directories
	// whose open-time header walk failed (the list then reads degraded and
	// rejects writes until a rebuild).
	droppedCkpts     int
	droppedZones     int
	droppedCodecDirs int
}

// chainCover names one chain whose committed prefix the checksum map covers.
type chainCover struct {
	chain storage.ChainID
	bits  int64
}

const crcMapMagic = 0x4352434D // "CRCM"

// markDirty is the SegStore write observer: any segment whose payload is
// written becomes unverifiable until the next Sync recomputes its word.
func (ix *Index) markDirty(id storage.SegID) {
	it := &ix.integ
	it.mu.Lock()
	if it.enabled {
		it.dirty[id] = struct{}{}
		delete(it.verified, id)
	}
	it.mu.Unlock()
}

// initIntegrity arms the integrity state and installs the write observer.
// full requests a whole-map recompute at the next Sync (fresh build or
// upgrade from a pre-v4 file).
func (ix *Index) initIntegrity(full bool) {
	it := &ix.integ
	it.mu.Lock()
	it.enabled = true
	it.full = it.full || full
	if it.words == nil {
		it.words = make(map[storage.SegID]segCRC)
	}
	if it.dirty == nil {
		it.dirty = make(map[storage.SegID]struct{})
	}
	if it.verified == nil {
		it.verified = make(map[storage.SegID]struct{})
	}
	it.mu.Unlock()
	ix.segs.SetWriteObserver(ix.markDirty)
}

// coveredChains lists the chains the checksum map covers together with their
// committed bit lengths: the tuple list, the attribute-list slot named by
// slotChain, and every attribute's vector list. The checkpoint chain is
// covered by per-record trailers instead, and the checksum chains cover
// themselves with a trailing map CRC.
func (ix *Index) coveredChains(attrList storage.ChainID) []chainCover {
	covers := make([]chainCover, 0, 2+len(ix.attrs))
	covers = append(covers, chainCover{ix.tupleChain, ix.tupleBits})
	if attrList != storage.NoSegment {
		covers = append(covers, chainCover{attrList, int64(attrElemSize*len(ix.attrs)) * 8})
	}
	for i := range ix.attrs {
		if ix.attrs[i].exists {
			// Checksums cover the PHYSICAL stream: under codec 1 that is the
			// sealed block containers (headers included) plus the raw tail.
			covers = append(covers, chainCover{ix.attrs[i].chain, ix.attrs[i].physBits()})
		}
	}
	return covers
}

// segSpan returns the committed span of the k-th segment of a chain holding
// `bits` committed bits.
func segSpan(k int, bits int64, pay int) (n int, mask uint8) {
	cb := (bits + 7) / 8
	start := int64(k) * int64(pay)
	span := cb - start
	if span <= 0 {
		return 0, 0
	}
	if span > int64(pay) {
		return pay, 0
	}
	if rem := uint8(bits & 7); rem != 0 {
		return int(span), rem
	}
	return int(span), 0
}

// maskTail zeroes the uncommitted low bits of the final committed byte
// (streams are MSB-first, so committed bits are the high ones).
func maskTail(p []byte, mask uint8) {
	if mask != 0 && len(p) > 0 {
		p[len(p)-1] &= 0xFF << (8 - mask)
	}
}

// recomputeChainCRCs refreshes the in-memory words for one covered chain.
// When onlyStale is true, segments whose dirty flag is clear and whose
// stored span already matches the committed length are kept as-is.
func (ix *Index) recomputeChainCRCs(cov chainCover, onlyStale bool, buf []byte) error {
	ids, err := ix.segs.ChainSegments(cov.chain)
	if err != nil {
		return err
	}
	pay := ix.segs.PayloadSize()
	it := &ix.integ
	for k, id := range ids {
		n, mask := segSpan(k, cov.bits, pay)
		it.mu.Lock()
		old, ok := it.words[id]
		_, isDirty := it.dirty[id]
		it.mu.Unlock()
		if onlyStale && ok && !isDirty && old.n == n && old.mask == mask {
			continue
		}
		var crc uint32
		if n > 0 {
			if err := ix.segs.ReadSegmentPayload(id, buf[:n]); err != nil {
				return err
			}
			maskTail(buf[:n], mask)
			crc = storage.Checksum(buf[:n])
		}
		it.mu.Lock()
		it.words[id] = segCRC{crc: crc, n: n, mask: mask, off: -1}
		it.verified[id] = struct{}{}
		it.mu.Unlock()
	}
	return nil
}

// writeCRCMap recomputes stale segment words, serializes the checksum map,
// and writes it to the target checksum-chain slot. Offsets of the crc words
// within the target chain are recorded so a later Delete can write its word
// through; they become authoritative when the superblock commits the slot.
// Caller holds ix.mu.
func (ix *Index) writeCRCMap(target storage.ChainID) error {
	it := &ix.integ
	it.mu.Lock()
	full := it.full
	it.mu.Unlock()

	covers := ix.coveredChains(ix.slotChain(1 - ix.attrSlot))
	// The attribute list being committed is the slot Sync just wrote, which
	// is the one the superblock is about to point at: 1-attrSlot before the
	// in-memory flip. coveredChains above received it explicitly.
	buf := make([]byte, ix.segs.PayloadSize())
	for _, cov := range covers {
		if err := ix.recomputeChainCRCs(cov, !full, buf); err != nil {
			return err
		}
	}

	var blob []byte
	blob = binary.LittleEndian.AppendUint32(blob, crcMapMagic)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(covers)))
	type wordPos struct {
		id  storage.SegID
		off int64
	}
	var poss []wordPos
	for _, cov := range covers {
		ids, err := ix.segs.ChainSegments(cov.chain)
		if err != nil {
			return err
		}
		blob = binary.LittleEndian.AppendUint32(blob, uint32(cov.chain))
		blob = binary.LittleEndian.AppendUint64(blob, uint64(cov.bits))
		blob = binary.LittleEndian.AppendUint32(blob, uint32(len(ids)))
		it.mu.Lock()
		for _, id := range ids {
			poss = append(poss, wordPos{id, int64(len(blob))})
			blob = binary.LittleEndian.AppendUint32(blob, it.words[id].crc)
		}
		it.mu.Unlock()
	}
	blob = binary.LittleEndian.AppendUint32(blob, storage.Checksum(blob))
	if err := ix.segs.WriteAt(target, blob, 0); err != nil {
		return err
	}
	it.mu.Lock()
	for _, p := range poss {
		w := it.words[p.id]
		w.off = p.off
		it.words[p.id] = w
	}
	it.mu.Unlock()
	return nil
}

// commitIntegrity finalizes integrity state after the superblock committed:
// dirty segments were recomputed, the map was written, the new epoch starts.
func (ix *Index) commitIntegrity() {
	it := &ix.integ
	it.mu.Lock()
	it.dirty = make(map[storage.SegID]struct{})
	it.full = false
	it.mapDropped = false
	it.mu.Unlock()
}

// loadCRCMap reads the committed checksum map from chain c. A map that is
// itself damaged is detected by its trailing CRC; under DegradeReads the
// index continues with verification disabled until the next Sync (recorded
// in mapDropped), under Strict the open fails.
func (ix *Index) loadCRCMap(c storage.ChainID) error {
	fail := func(detail string) error {
		if ix.imode == IntegrityStrict {
			return &storage.CorruptionError{File: "iva.idx",
				Offset: ix.segs.SegmentOffset(c), Segment: uint32(c), Detail: detail}
		}
		it := &ix.integ
		it.mu.Lock()
		it.words = make(map[storage.SegID]segCRC)
		it.mapDropped = true
		it.full = true
		it.mu.Unlock()
		return nil
	}
	capBytes, err := ix.segs.Len(c)
	if err != nil {
		return err
	}
	var pos int64
	running := uint32(0)
	read := func(p []byte) bool {
		if pos+int64(len(p)) > capBytes {
			return false
		}
		if err := ix.segs.ReadAt(c, p, pos); err != nil {
			return false
		}
		pos += int64(len(p))
		running = storage.ChecksumUpdate(running, p)
		return true
	}
	var hdr [8]byte
	if !read(hdr[:]) || binary.LittleEndian.Uint32(hdr[0:4]) != crcMapMagic {
		return fail("checksum map header")
	}
	nchains := binary.LittleEndian.Uint32(hdr[4:8])
	if nchains > uint32(ix.segs.Segments())+1 {
		return fail("checksum map chain count")
	}
	type pendingWord struct {
		id storage.SegID
		segCRC
	}
	var pending []pendingWord
	pay := ix.segs.PayloadSize()
	for i := uint32(0); i < nchains; i++ {
		var ch [16]byte
		if !read(ch[:]) {
			return fail("checksum map truncated")
		}
		head := storage.ChainID(binary.LittleEndian.Uint32(ch[0:4]))
		bits := int64(binary.LittleEndian.Uint64(ch[4:12]))
		nsegs := binary.LittleEndian.Uint32(ch[12:16])
		ids, err := ix.segs.ChainSegments(head)
		if err != nil || uint32(len(ids)) < nsegs {
			return fail("checksum map names unknown segments")
		}
		for k := uint32(0); k < nsegs; k++ {
			var w [4]byte
			wordOff := pos
			if !read(w[:]) {
				return fail("checksum map truncated")
			}
			n, mask := segSpan(int(k), bits, pay)
			pending = append(pending, pendingWord{ids[k], segCRC{
				crc: binary.LittleEndian.Uint32(w[:]), n: n, mask: mask, off: wordOff,
			}})
		}
	}
	want := running
	var trailer [4]byte
	if pos+4 > capBytes {
		return fail("checksum map truncated")
	}
	if err := ix.segs.ReadAt(c, trailer[:], pos); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(trailer[:]) != want {
		return fail("checksum map trailer mismatch")
	}
	it := &ix.integ
	it.mu.Lock()
	for _, p := range pending {
		it.words[p.id] = p.segCRC
	}
	it.mu.Unlock()
	return nil
}

// verifySegment checks one segment against its committed CRC32C word on
// first touch. Dirty (unsynced) and uncovered segments are skipped; a
// verified segment is not re-read until the next open (Scrub forces a full
// re-verification).
func (ix *Index) verifySegment(id storage.SegID) error {
	it := &ix.integ
	it.mu.Lock()
	if !it.enabled {
		it.mu.Unlock()
		return nil
	}
	if _, ok := it.dirty[id]; ok {
		it.mu.Unlock()
		return nil
	}
	if _, ok := it.verified[id]; ok {
		it.mu.Unlock()
		return nil
	}
	e, ok := it.words[id]
	it.mu.Unlock()
	if !ok {
		return nil
	}
	if err := ix.checkWord(id, e); err != nil {
		return err
	}
	it.mu.Lock()
	it.verified[id] = struct{}{}
	it.mu.Unlock()
	return nil
}

// checkWord reads a segment's committed span and compares it to e.
func (ix *Index) checkWord(id storage.SegID, e segCRC) error {
	var crc uint32
	if e.n > 0 {
		buf := make([]byte, e.n)
		if err := ix.segs.ReadSegmentPayload(id, buf); err != nil {
			return err
		}
		maskTail(buf, e.mask)
		crc = storage.Checksum(buf)
	}
	if crc != e.crc {
		return &storage.CorruptionError{File: "iva.idx",
			Offset: ix.segs.SegmentOffset(id), Segment: uint32(id),
			Detail: fmt.Sprintf("segment checksum mismatch (%d committed bytes)", e.n)}
	}
	return nil
}

// attachVerify hooks first-touch checksum verification into a chain reader.
// The chain's segment list is resolved once: appends cannot race a query
// (both run under ix.mu), and pooled readers re-attach after every Reset.
func (ix *Index) attachVerify(r *storage.ChainBitReader, c storage.ChainID) {
	it := &ix.integ
	it.mu.Lock()
	enabled := it.enabled
	it.mu.Unlock()
	if !enabled {
		r.SetVerify(nil)
		return
	}
	ids, err := ix.segs.ChainSegments(c)
	if err != nil {
		return // the read itself will surface the chain error
	}
	pay := int64(ix.segs.PayloadSize())
	r.SetVerify(func(off, n int64) error {
		first := off / pay
		last := (off + n - 1) / pay
		for k := first; k <= last && k < int64(len(ids)); k++ {
			if err := ix.verifySegment(ids[k]); err != nil {
				return err
			}
		}
		return nil
	})
}

// crcRepairRange recomputes and writes through the checksum words of the
// segments under a bit range that was just mutated in place (tombstoning a
// tuple-list ptr is the only such mutation). The committed map must stay
// true for the committed bytes it describes without waiting for a Sync,
// because a tombstone may become durable before the Sync that acknowledges
// it. A crash between the tombstone write and this write-through leaves a
// detected (never silent) mismatch on that segment; scrub -repair rebuilds.
func (ix *Index) crcRepairRange(c storage.ChainID, bitOff int64, width int) error {
	it := &ix.integ
	it.mu.Lock()
	enabled := it.enabled
	it.mu.Unlock()
	if !enabled {
		return nil
	}
	ids, err := ix.segs.ChainSegments(c)
	if err != nil {
		return err
	}
	pay := int64(ix.segs.PayloadSize())
	firstSeg := (bitOff / 8) / pay
	lastSeg := ((bitOff+int64(width)+7)/8 - 1) / pay
	for k := firstSeg; k <= lastSeg && k < int64(len(ids)); k++ {
		id := ids[k]
		it.mu.Lock()
		e, ok := it.words[id]
		it.mu.Unlock()
		if !ok || e.n == 0 {
			continue
		}
		buf := make([]byte, e.n)
		if err := ix.segs.ReadSegmentPayload(id, buf); err != nil {
			return err
		}
		maskTail(buf, e.mask)
		e.crc = storage.Checksum(buf)
		it.mu.Lock()
		it.words[id] = e
		it.verified[id] = struct{}{}
		it.mu.Unlock()
		if e.off >= 0 && ix.crcChain(ix.crcSlot) != storage.NoSegment {
			var w [4]byte
			binary.LittleEndian.PutUint32(w[:], e.crc)
			if err := ix.segs.WriteAt(ix.crcChain(ix.crcSlot), w[:], e.off); err != nil {
				return err
			}
		}
	}
	return nil
}

// verifyChain checks every committed segment of a chain against its word
// immediately (not first-touch). Open uses it on the attribute-list slot,
// whose reads bypass ChainBitReader: corrupt attribute metadata cannot be
// degraded around (it defines every layout), so damage here fails the open
// in both modes.
func (ix *Index) verifyChain(c storage.ChainID) error {
	it := &ix.integ
	it.mu.Lock()
	enabled := it.enabled
	it.mu.Unlock()
	if !enabled || c == storage.NoSegment {
		return nil
	}
	ids, err := ix.segs.ChainSegments(c)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := ix.verifySegment(id); err != nil {
			return err
		}
	}
	return nil
}

// crcChain maps a checksum-map slot number to its chain.
func (ix *Index) crcChain(slot int) storage.ChainID {
	if slot == 0 {
		return ix.crcChainA
	}
	return ix.crcChainB
}

// FormatVersion returns the committed on-disk format version (4 after the
// first Sync of an upgraded store; pre-4 files read checksum-free).
func (ix *Index) FormatVersion() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int(ix.version)
}

// IntegrityMode returns the mode the index was opened with.
func (ix *Index) IntegrityMode() IntegrityMode { return ix.imode }

// DroppedCheckpoints returns the number of checkpoint records discarded at
// open because their CRC trailer failed (DegradeReads only).
func (ix *Index) DroppedCheckpoints() int {
	it := &ix.integ
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.droppedCkpts
}

// DroppedCodecDirs returns the number of packed vector lists whose block
// directory failed its open-time header walk and now reads degraded
// (DegradeReads only; Strict fails the open instead).
func (ix *Index) DroppedCodecDirs() int {
	it := &ix.integ
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.droppedCodecDirs
}
