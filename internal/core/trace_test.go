package core

import (
	"strconv"
	"testing"

	"github.com/sparsewide/iva/internal/obs"
)

// TestSearchTraced verifies the span hierarchy a traced search emits:
// query → filter (with one term:<name> child per query term) and
// query → refine → fetch, with consistent annotation counts.
func TestSearchTraced(t *testing.T) {
	fx := newFixture(t, 400, Options{}, 7)
	q := fx.randQuery(t, 3, 10)

	root := obs.StartSpan("query")
	_, st, err := fx.ix.SearchTraced(q, nil, root)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	filter := root.Find("filter")
	refine := root.Find("refine")
	if filter == nil || refine == nil {
		t.Fatalf("missing phase spans; children = %d", len(root.Children()))
	}
	if refine.Find("fetch") == nil {
		t.Fatal("refine span has no fetch child")
	}

	var termSpans []*obs.Span
	for _, c := range filter.Children() {
		if len(c.Name()) > 5 && c.Name()[:5] == "term:" {
			termSpans = append(termSpans, c)
		}
	}
	if len(termSpans) != len(q.Terms) {
		t.Fatalf("got %d term spans, want %d", len(termSpans), len(q.Terms))
	}
	for _, ts := range termSpans {
		defined := attrInt(t, ts, "defined")
		ndf := attrInt(t, ts, "ndf")
		if defined+ndf != st.Scanned {
			t.Errorf("%s: defined %d + ndf %d != scanned %d", ts.Name(), defined, ndf, st.Scanned)
		}
	}

	if got := attrInt(t, filter, "scanned"); got != st.Scanned {
		t.Errorf("filter scanned = %d, want %d", got, st.Scanned)
	}
	fetched := st.Scanned - attrInt(t, filter, "pruned")
	if got := attrInt(t, refine, "fetched"); got != fetched {
		t.Errorf("refine fetched = %d, want %d", got, fetched)
	}
	// Every prune is credited to exactly one term.
	var credited int64
	for _, ts := range termSpans {
		credited += attrInt(t, ts, "pruned")
	}
	if want := attrInt(t, filter, "pruned"); credited != want {
		t.Errorf("per-term pruned sums to %d, filter pruned = %d", credited, want)
	}
}

// TestSearchUntracedMatchesTraced checks tracing changes no results.
func TestSearchUntracedMatchesTraced(t *testing.T) {
	fx := newFixture(t, 300, Options{}, 11)
	q := fx.randQuery(t, 2, 5)
	plain, _, err := fx.ix.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	root := obs.StartSpan("query")
	traced, _, err := fx.ix.SearchTraced(q, nil, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(traced) {
		t.Fatalf("result counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, plain[i], traced[i])
		}
	}
}

func attrInt(t *testing.T, s *obs.Span, key string) int64 {
	t.Helper()
	v, ok := s.Attr(key)
	if !ok {
		t.Fatalf("span %s missing attr %q", s.Name(), key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("span %s attr %q = %q: %v", s.Name(), key, v, err)
	}
	return n
}
