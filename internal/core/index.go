// Package core implements the iVA-file (§III-D, §IV): the inverted vector
// approximation file. An iVA-file consists of
//
//   - one tuple list: <tid, ptr> elements in increasing tid order, where ptr
//     is the tuple's byte offset in the table file (all-ones marks a
//     deleted tuple),
//   - one attribute list: per-attribute metadata (list location and tail,
//     layout widths, quantizer domain) — the paper's
//     <ptr1, ptr2, df, str, α> elements, and
//   - one vector list per attribute holding the approximation vectors
//     (nG-signatures for text, relative-domain codes for numbers) in one of
//     the four organizations of §III-D.
//
// Queries run the parallel filter-and-refine plan of Algorithm 1; updates
// follow §IV-B (tail appends, tombstone deletes, periodic rebuild).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/signature"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/vaq"
	"github.com/sparsewide/iva/internal/vector"
)

// Options configure an iVA-file build.
type Options struct {
	// Alpha is the relative vector length α (Table I default: 20%).
	Alpha float64
	// N is the gram length n (Table I default: 2).
	N int
	// NumericBytes is r, the stored width of a numeric value in bytes;
	// numeric vectors take ⌈α·r⌉ bytes. Default 8 (float64).
	NumericBytes int
	// SegmentSize is the extent size of the index file in bytes.
	SegmentSize int
	// TIDHeadroom reserves id space above the build-time maximum tid so
	// that inserts keep fitting the packed tid width between rebuilds.
	// Zero selects max(1024, |T|/4).
	TIDHeadroom int64
	// ForceType, when nonzero, disables the §III-D size-based selection
	// and uses this organization for every attribute it is legal for
	// (ablation: Type I everywhere). Illegal combinations fall back to
	// Type I.
	ForceType vector.ListType
	// AbsoluteDomains makes numeric quantizers use a fixed absolute domain
	// instead of the relative domain (ablation of §III-C). The domain used
	// is [-AbsDomainBound, +AbsDomainBound].
	AbsoluteDomains bool
	AbsDomainBound  float64
	// AlphaOverride sets a per-attribute relative vector length, as the
	// paper's attribute-list element allows (§III-D stores α per
	// attribute). Attributes absent from the map use the global Alpha.
	AlphaOverride map[model.AttrID]float64
	// SearchParallelism is the worker count of the striped filter plan.
	// 0 selects runtime.GOMAXPROCS(0); 1 forces the sequential plan.
	SearchParallelism int
	// CheckpointEvery is the stripe width: a resumable checkpoint is
	// recorded every CheckpointEvery tuple-list entries. Default 2048.
	CheckpointEvery int64
	// DisableZoneMaps turns off zone-map stripe pruning at query time (zone
	// records are still maintained). Pruning never changes results — a
	// stripe is skipped only when its proven lower bound exceeds the
	// admission bar — so this exists for benchmarking and differential
	// testing, not tuning.
	DisableZoneMaps bool
	// Integrity selects how checksum mismatches are handled at read time:
	// IntegrityDegrade (default) widens corrupt vector segments to zero
	// lower bounds, IntegrityStrict fails fast.
	Integrity IntegrityMode
	// Codec selects the block codec for vector lists built by Build/Rebuild
	// (format v6): 0 stores the raw bit-packed streams byte-compatible with
	// v5; 1 packs sealed stripes into word-aligned blocks with skip headers
	// and delta-coded tuple-id gaps. Results are byte-identical either way
	// — the codec changes only the physical layout. Type III/IV lists and
	// post-build tail appends always store raw bits regardless.
	Codec int
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.20
	}
	if o.N == 0 {
		o.N = 2
	}
	if o.NumericBytes == 0 {
		o.NumericBytes = 8
	}
	if o.SegmentSize == 0 {
		// One page per segment: a mostly-empty attribute wastes at most a
		// page of slack, while the Build-time 64 KiB flush batches keep
		// each list's segments in long contiguous runs for scanning.
		o.SegmentSize = 4 << 10
	}
	if o.AbsDomainBound == 0 {
		o.AbsDomainBound = math.MaxInt32
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = defaultCheckpointEvery
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Alpha <= 0 || o.Alpha > 1 {
		return fmt.Errorf("core: alpha = %v, want in (0,1]", o.Alpha)
	}
	if o.N < 1 || o.N > 8 {
		return fmt.Errorf("core: n = %d, want in [1,8]", o.N)
	}
	if o.NumericBytes < 1 || o.NumericBytes > 8 {
		return fmt.Errorf("core: numeric bytes = %d, want in [1,8]", o.NumericBytes)
	}
	if _, ok := vector.CodecByID(uint8(o.Codec)); !ok || o.Codec < 0 || o.Codec > 255 {
		return fmt.Errorf("core: codec = %d, want a registered codec id", o.Codec)
	}
	return nil
}

// ErrNeedsRebuild is returned by update operations when a packed field
// width (tid or string count) can no longer represent a new element; the
// caller must rebuild the index (Store.Rebuild does this).
var ErrNeedsRebuild = errors.New("core: packed field overflow, index rebuild required")

// ErrNotFound is returned when a tid does not name a live tuple.
var ErrNotFound = errors.New("core: tuple not found")

const (
	superblockSize = 4096
	indexMagic     = 0x69564146 // "iVAF"
	// v2 added the checkpoint chain; v3 added the shadow attribute-list slot
	// and moved the authoritative checkpoint count into the superblock so a
	// torn Sync can never mix new attribute tails with an old superblock; v4
	// adds CRC32C integrity: a superblock trailer, per-record checkpoint
	// trailers, and an out-of-line per-segment checksum map in a ping-ponged
	// pair of checksum chains; v5 adds the stripe zone-map chain (see
	// zonemap.go), which shifts the superblock CRC trailer to make room for
	// its two fields; v6 adds pluggable block codecs for vector lists (see
	// vector/codec.go) — the codec id and coded-region length live in the
	// attribute element (bytes 5 and 56..59), so the superblock layout and
	// its CRC trailer offset are unchanged from v5 and a v5 file upgrades in
	// place on its first Sync just by committing the new version word.
	// Older versions still open (checksum-free for pre-v4, with a warning
	// gauge) and are upgraded in place by their next Sync.
	indexVersion = 6
	ptrBits      = 40 // table offsets up to 1 TiB
)

// Superblock byte offsets of the v4/v5 fields. The CRC trailer covers
// bytes [0, sbCRCOff) — v4 files, whose trailer predates the zone fields,
// keep theirs at sbCRCOffV4 until their upgrade Sync rewrites the block.
const (
	sbCRCChainAOff = 88
	sbCRCChainBOff = 92
	sbCRCSlotOff   = 96
	sbCRCOffV4     = 100
	sbZoneChainOff = 100
	sbZoneCountOff = 104
	sbCRCOff       = 108
)

// sbCRCOffFor returns the superblock CRC trailer offset a given committed
// format version uses. Both Open and Scrub must check the trailer where the
// on-disk version put it, not where the current version would.
func sbCRCOffFor(version uint32) int {
	if version < 5 {
		return sbCRCOffV4
	}
	return sbCRCOff
}

// SuperblockStamp hashes a committed superblock page into a state stamp,
// EXCLUDING the embedded CRC trailer word. The exclusion is load-bearing,
// not cosmetic: CRC32C is linear, so for any two pages that each carry a
// valid trailer over their payload, the trailer difference exactly cancels
// the payload difference and a whole-page hash comes out identical — a
// constant, in fact, for every valid superblock ever written (the classic
// crc(m‖crc(m)) residue, generalized). A whole-page stamp therefore can
// never distinguish two committed states. Skipping the 4 trailer bytes
// (version-aware, like Open and Scrub) restores content sensitivity.
func SuperblockStamp(page []byte) uint32 {
	if len(page) < 8 {
		return storage.Checksum(page)
	}
	if binary.LittleEndian.Uint32(page[0:]) != indexMagic {
		return storage.Checksum(page)
	}
	at := sbCRCOffFor(binary.LittleEndian.Uint32(page[4:]))
	if at+4 > len(page) {
		return storage.Checksum(page)
	}
	return storage.ChecksumUpdate(storage.Checksum(page[:at]), page[at+4:])
}

// tombstonePtr marks a deleted tuple in the tuple list.
const tombstonePtr = uint64(1)<<ptrBits - 1

// attrState is the in-memory attribute-list element.
//
// bitLen is always the LOGICAL length of the vector list — the bit stream
// the Encoder produced and every reader, checkpoint and zone map addresses.
// Under codec 0 the physical stream is identical. Under codec 1 sealed
// stripes are transcoded into block containers occupying codedWords whole
// 64-bit words, followed by a raw tail of (bitLen - codedLogical) logical
// bits appended by inserts since the last seal; physBits() is the physical
// stream length checksums and appends operate on.
type attrState struct {
	layout vector.Layout
	chain  storage.ChainID
	bitLen int64
	alpha  float64        // the attribute's relative vector length
	quant  *vaq.Quantizer // numeric attributes
	exists bool           // attribute has a vector list

	// Format-v6 block codec state. codecID and codedWords persist in the
	// attribute element; codedLogical and dir are rebuilt at open time by
	// walking the self-describing block headers (vector.WalkBlocks), so
	// they survive dropped checkpoint chains. dirBroken marks a packed
	// list whose directory failed that walk under DegradeReads: reads
	// degrade per the usual corrupt-segment policy and writes demand a
	// rebuild (the tail position is unknowable).
	codecID      uint8
	codedWords   int64
	codedLogical int64
	dir          []vector.BlockMeta
	dirBroken    bool
}

// physBits returns the physical bit length of the attribute's vector list:
// the sealed block containers plus the raw logical tail. Equal to bitLen
// under codec 0 (codedWords and codedLogical are both zero).
func (a *attrState) physBits() int64 {
	return a.codedWords*64 + (a.bitLen - a.codedLogical)
}

// tupleEntry mirrors one on-disk tuple-list element.
type tupleEntry struct {
	tid     model.TID
	ptr     int64
	deleted bool
}

// Index is an open iVA-file bound to its table.
type Index struct {
	opts  Options
	f     *storage.File
	segs  *storage.SegStore
	codec *signature.Codec
	tbl   *table.Table

	mu         sync.RWMutex
	attrs      []attrState
	attrChain  storage.ChainID
	attrChainB storage.ChainID // shadow attribute-list slot (v3; see Sync)
	attrSlot   int             // slot the last committed superblock points at
	tupleChain storage.ChainID
	tupleBits  int64
	ltid       int
	entries    []tupleEntry
	posByTID   map[model.TID]int64
	deleted    int64

	// Stripe checkpoints for the parallel filter plan. ckptChain is
	// NoSegment for indexes opened from a v1 file, which disables both
	// checkpoint recording and the parallel plan.
	ckptChain storage.ChainID
	ckptEvery int64
	ckpts     []checkpoint

	// Stripe zone maps (v5; see zonemap.go). zoneChain is NoSegment for
	// pre-v5 files until their upgrade Sync, and after zone damage was
	// degraded around at open — both disable recording and pruning.
	// zoneDiskRecs is the record count of the last committed writeZones,
	// bounding the spans ZoneExtents reports; zoneOff is the runtime
	// pruning toggle (recording continues regardless).
	zoneChain    storage.ChainID
	zones        []zoneRec
	zacc         zoneAcc
	zoneDiskRecs int
	zoneOff      bool

	// Format-v4 integrity: the committed on-disk version, the read-time
	// mismatch policy, the ping-ponged checksum-map chains, and the
	// in-memory checksum state (see integrity.go).
	version   uint32
	imode     IntegrityMode
	crcChainA storage.ChainID
	crcChainB storage.ChainID
	crcSlot   int
	integ     integrityState
}

// Table returns the table the index is bound to.
func (ix *Index) Table() *table.Table { return ix.tbl }

// Codec returns the signature codec (for diagnostics and tests).
func (ix *Index) Codec() *signature.Codec { return ix.codec }

// Options returns the build options in effect.
func (ix *Index) Options() Options { return ix.opts }

// SetSearchParallelism changes the worker cap of the striped filter plan at
// runtime (0 selects runtime.GOMAXPROCS, 1 forces the sequential plan).
// Results are identical at any setting; the differential oracle exercises
// this to prove it.
func (ix *Index) SetSearchParallelism(p int) {
	ix.mu.Lock()
	ix.opts.SearchParallelism = p
	ix.mu.Unlock()
}

// SizeBytes returns the index file's size.
func (ix *Index) SizeBytes() int64 { return ix.f.Size() }

// Entries returns the tuple-list length (live + tombstoned).
func (ix *Index) Entries() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int64(len(ix.entries))
}

// Deleted returns the number of tombstoned tuples awaiting cleaning.
func (ix *Index) Deleted() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.deleted
}

// Live reports whether tid names a non-deleted tuple.
func (ix *Index) Live(tid model.TID) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.posByTID[tid]
	return ok
}

// LiveTIDs returns the ids of all live tuples in tuple-list order.
func (ix *Index) LiveTIDs() []model.TID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]model.TID, 0, len(ix.entries)-int(ix.deleted))
	for _, e := range ix.entries {
		if !e.deleted {
			out = append(out, e.tid)
		}
	}
	return out
}

// DeletedFraction returns deleted/entries, the quantity compared against the
// cleaning trigger threshold β of §V-C.
func (ix *Index) DeletedFraction() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.entries) == 0 {
		return 0
	}
	return float64(ix.deleted) / float64(len(ix.entries))
}

// ListType reports the organization chosen for an attribute (diagnostics
// and the list-selection experiments).
func (ix *Index) ListType(a model.AttrID) (vector.ListType, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if int(a) >= len(ix.attrs) || !ix.attrs[a].exists {
		return 0, false
	}
	return ix.attrs[a].layout.Type, true
}

// codecFor returns the index's default codec or a fresh one for a
// per-attribute α override.
func (ix *Index) codecFor(alpha float64) (*signature.Codec, error) {
	if alpha == ix.codec.Alpha() {
		return ix.codec, nil
	}
	return signature.NewCodec(ix.opts.N, alpha)
}

// elemBits is the width of one tuple-list element.
func (ix *Index) elemBits() int { return ix.ltid + ptrBits }

// maxTID is the largest id the packed tuple list can hold.
func (ix *Index) maxTID() model.TID { return model.TID(uint64(1)<<uint(ix.ltid) - 1) }

// chooseLayout builds the layout for one attribute from catalog statistics.
// codec is the attribute's signature codec (the index default, or one built
// for a per-attribute α override).
func chooseLayout(opts Options, codec *signature.Codec, info table.AttrInfo, ltid int, tupleEntries int64) (vector.Layout, *vaq.Quantizer, error) {
	alpha := codec.Alpha()
	switch info.Kind {
	case model.KindText:
		lnum := bitio.BitsFor(uint64(info.MaxStrs)) + 1 // headroom for growth
		if lnum < 2 {
			lnum = 2
		}
		if lnum > 16 {
			lnum = 16
		}
		typ := vector.ChooseText(ltid, lnum, info.DF, info.Str, tupleEntries, 0)
		if opts.ForceType != 0 {
			typ = opts.ForceType
			if typ == vector.TypeIV {
				typ = vector.TypeI
			}
		}
		return vector.Layout{
			Type: typ, Kind: model.KindText,
			LTid: ltid, LNum: lnum, Codec: codec,
		}, nil, nil
	case model.KindNumeric:
		vecBits := 8 * int(math.Ceil(alpha*float64(opts.NumericBytes)))
		if vecBits < 2 {
			vecBits = 2
		}
		if vecBits > 63 {
			vecBits = 63
		}
		min, max := info.Min, info.Max
		if !info.HasDomain {
			min, max = 0, 0
		}
		if opts.AbsoluteDomains {
			min, max = -opts.AbsDomainBound, opts.AbsDomainBound
		}
		quant, err := vaq.New(min, max, vecBits)
		if err != nil {
			return vector.Layout{}, nil, err
		}
		typ := vector.ChooseNumeric(ltid, vecBits, info.DF, tupleEntries)
		if opts.ForceType != 0 {
			typ = opts.ForceType
			if typ == vector.TypeII || typ == vector.TypeIII {
				typ = vector.TypeI
			}
		}
		return vector.Layout{
			Type: typ, Kind: model.KindNumeric,
			LTid: ltid, VecBits: vecBits, NDFCode: quant.NDFReserved(),
		}, quant, nil
	default:
		return vector.Layout{}, nil, fmt.Errorf("core: unknown kind %v", info.Kind)
	}
}

// --- superblock and attribute-list persistence -----------------------------

// writeSuperblock commits the current state, recording slot as the valid
// attribute-list copy and crcSlot as the valid checksum-map copy. It is the
// last write of a Sync (see Sync).
func (ix *Index) writeSuperblock(slot, crcSlot int) error {
	var b [superblockSize]byte
	binary.LittleEndian.PutUint32(b[0:], indexMagic)
	binary.LittleEndian.PutUint32(b[4:], indexVersion)
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(ix.opts.Alpha))
	binary.LittleEndian.PutUint32(b[16:], uint32(ix.opts.N))
	b[20] = byte(ix.ltid)
	b[21] = ptrBits
	binary.LittleEndian.PutUint32(b[24:], uint32(ix.tupleChain))
	binary.LittleEndian.PutUint64(b[28:], uint64(ix.tupleBits))
	binary.LittleEndian.PutUint64(b[36:], uint64(len(ix.entries)))
	binary.LittleEndian.PutUint64(b[44:], uint64(ix.deleted))
	binary.LittleEndian.PutUint32(b[52:], uint32(ix.attrChain))
	binary.LittleEndian.PutUint32(b[56:], uint32(len(ix.attrs)))
	binary.LittleEndian.PutUint32(b[60:], uint32(ix.opts.NumericBytes))
	binary.LittleEndian.PutUint32(b[64:], uint32(ix.opts.SegmentSize))
	binary.LittleEndian.PutUint32(b[68:], uint32(ix.ckptChain))
	binary.LittleEndian.PutUint32(b[72:], uint32(ix.ckptEvery))
	binary.LittleEndian.PutUint32(b[76:], uint32(ix.attrChainB))
	b[80] = byte(slot)
	binary.LittleEndian.PutUint32(b[84:], uint32(len(ix.ckpts)))
	binary.LittleEndian.PutUint32(b[sbCRCChainAOff:], uint32(ix.crcChainA))
	binary.LittleEndian.PutUint32(b[sbCRCChainBOff:], uint32(ix.crcChainB))
	b[sbCRCSlotOff] = byte(crcSlot)
	binary.LittleEndian.PutUint32(b[sbZoneChainOff:], uint32(ix.zoneChain))
	binary.LittleEndian.PutUint32(b[sbZoneCountOff:], uint32(len(ix.zones)))
	binary.LittleEndian.PutUint32(b[sbCRCOff:], storage.Checksum(b[:sbCRCOff]))
	return ix.f.WriteAt(b[:], 0)
}

// attrElemSize is the fixed on-disk size of one attribute-list element.
const attrElemSize = 64

func (ix *Index) writeAttrList(chain storage.ChainID) error {
	buf := make([]byte, attrElemSize*len(ix.attrs))
	for i, a := range ix.attrs {
		e := buf[i*attrElemSize:]
		if !a.exists {
			e[0] = 0
			continue
		}
		e[0] = byte(a.layout.Type)
		e[1] = byte(a.layout.Kind)
		e[2] = byte(a.layout.LTid)
		e[3] = byte(a.layout.LNum)
		e[4] = byte(a.layout.VecBits)
		e[5] = a.codecID
		binary.LittleEndian.PutUint32(e[8:], uint32(a.chain))
		binary.LittleEndian.PutUint64(e[12:], uint64(a.bitLen))
		binary.LittleEndian.PutUint64(e[20:], a.layout.NDFCode)
		if a.quant != nil {
			min, max := a.quant.Domain()
			binary.LittleEndian.PutUint64(e[28:], math.Float64bits(min))
			binary.LittleEndian.PutUint64(e[36:], math.Float64bits(max))
		}
		binary.LittleEndian.PutUint64(e[44:], math.Float64bits(a.alpha))
		// The coded-region word count as u32 caps one attribute's sealed
		// blocks at 32 GiB — far beyond the packed tid widths anyway.
		binary.LittleEndian.PutUint32(e[56:], uint32(a.codedWords))
	}
	return ix.segs.WriteAt(chain, buf, 0)
}

func (ix *Index) readAttrList(n int, chain storage.ChainID) error {
	buf := make([]byte, attrElemSize*n)
	if err := ix.segs.ReadAt(chain, buf, 0); err != nil {
		return err
	}
	ix.attrs = make([]attrState, n)
	for i := 0; i < n; i++ {
		e := buf[i*attrElemSize:]
		if e[0] == 0 {
			continue
		}
		a := attrState{exists: true}
		a.layout.Type = vector.ListType(e[0])
		a.layout.Kind = model.Kind(e[1])
		a.layout.LTid = int(e[2])
		a.layout.LNum = int(e[3])
		a.layout.VecBits = int(e[4])
		a.chain = storage.ChainID(binary.LittleEndian.Uint32(e[8:]))
		a.bitLen = int64(binary.LittleEndian.Uint64(e[12:]))
		a.layout.NDFCode = binary.LittleEndian.Uint64(e[20:])
		a.alpha = math.Float64frombits(binary.LittleEndian.Uint64(e[44:]))
		// Codec fields are meaningful from v6 on; genuine v5 elements hold
		// zeros there, but gate on the committed version anyway so stray
		// bytes in an older file cannot fabricate a coded region.
		if ix.version >= 6 {
			a.codecID = e[5]
			a.codedWords = int64(binary.LittleEndian.Uint32(e[56:]))
			if _, ok := vector.CodecByID(a.codecID); !ok {
				return fmt.Errorf("core: attr %d: unknown codec %d", i, a.codecID)
			}
			if a.codecID == vector.CodecRaw && a.codedWords != 0 {
				return fmt.Errorf("core: attr %d: raw codec with %d coded words", i, a.codedWords)
			}
		}
		if a.alpha == 0 {
			a.alpha = ix.opts.Alpha
		}
		if a.layout.Kind == model.KindText {
			codec, err := ix.codecFor(a.alpha)
			if err != nil {
				return fmt.Errorf("core: attr %d codec: %w", i, err)
			}
			a.layout.Codec = codec
		} else {
			min := math.Float64frombits(binary.LittleEndian.Uint64(e[28:]))
			max := math.Float64frombits(binary.LittleEndian.Uint64(e[36:]))
			q, err := vaq.New(min, max, a.layout.VecBits)
			if err != nil {
				return fmt.Errorf("core: attr %d quantizer: %w", i, err)
			}
			a.quant = q
		}
		if err := a.layout.Validate(); err != nil {
			return fmt.Errorf("core: attr %d: %w", i, err)
		}
		ix.attrs[i] = a
	}
	return nil
}

// Sync checkpoints all metadata (attribute list, stripe checkpoints,
// superblock) and flushes.
//
// Crash consistency: the superblock is the single commit point. The
// attribute list — whose per-attribute bit lengths define how far each
// vector chain is valid — is written to the slot the committed superblock
// does NOT reference (ping-pong between attrChain and attrChainB), and the
// checkpoint chain is append-stable (records for old stripes re-serialize
// to identical bytes, and the authoritative count lives in the superblock).
// A crash anywhere before the superblock write therefore leaves the
// previously committed state fully intact, and the superblock itself is one
// page-atomic write: reopening always recovers exactly the last synced
// prefix.
func (ix *Index) Sync() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	target := 1 - ix.attrSlot
	if target == 1 && ix.attrChainB == storage.NoSegment {
		// File predates the shadow slot (v1/v2): allocate it now; the
		// superblock write below upgrades the file to v3. A crash before
		// that commit leaves the old superblock pointing at slot 0,
		// untouched, and the fresh chain unreferenced.
		chain, err := ix.segs.Create()
		if err != nil {
			return err
		}
		ix.attrChainB = chain
	}
	if ix.version < 4 {
		// Upgrading a pre-v4 file: v4 checkpoint records carry CRC trailers
		// (a different record size), so they go into a NEW chain — the old
		// superblock keeps pointing at the intact old-format chain if we
		// crash before the commit below. The checksum-map chains are fresh
		// allocations for the same reason. The old checkpoint chain leaks a
		// few segments; a rebuild reclaims them.
		if ix.ckptChain != storage.NoSegment {
			chain, err := ix.segs.Create()
			if err != nil {
				return err
			}
			ix.ckptChain = chain
		}
		ix.initIntegrity(true)
	}
	if ix.version < 5 && ix.ckptChain != storage.NoSegment && ix.zoneChain == storage.NoSegment {
		// Upgrading a pre-v5 file: allocate the zone chain and backfill one
		// explicit "unknown" record per already-sealed stripe, preserving the
		// record-per-stripe alignment without having observed their values
		// (a rebuild replaces them with real summaries). A crash before the
		// superblock commit leaves the old superblock — which has no zone
		// fields — untouched, and the fresh chain unreferenced. A v5 file
		// whose committed superblock says NoSegment stays disabled: its zone
		// records were dropped for damage, and resurrecting an empty chain
		// here would break stripe alignment for the records already sealed
		// in memory.
		chain, err := ix.segs.Create()
		if err != nil {
			return err
		}
		ix.zoneChain = chain
		ix.zones = make([]zoneRec, int64(len(ix.entries))/ix.ckptEvery)
		ix.zacc.reset(int64(len(ix.entries))%ix.ckptEvery == 0)
	}
	if ix.crcChainA == storage.NoSegment {
		chain, err := ix.segs.Create()
		if err != nil {
			return err
		}
		ix.crcChainA = chain
	}
	if ix.crcChainB == storage.NoSegment {
		chain, err := ix.segs.Create()
		if err != nil {
			return err
		}
		ix.crcChainB = chain
	}
	if err := ix.writeAttrList(ix.slotChain(target)); err != nil {
		return err
	}
	if err := ix.writeCheckpoints(); err != nil {
		return err
	}
	if err := ix.writeZones(); err != nil {
		return err
	}
	crcTarget := 1 - ix.crcSlot
	if ix.version < 4 {
		// First v4 commit: there is no committed map yet, either slot works;
		// keep slot 0 so the layout is deterministic.
		crcTarget = 0
	}
	if err := ix.writeCRCMap(ix.crcChain(crcTarget)); err != nil {
		return err
	}
	if err := ix.writeSuperblock(target, crcTarget); err != nil {
		return err
	}
	// The superblock write is durable in the write-through cache, so the
	// on-disk commit now references target: flip before Sync so that even if
	// the flush errors, a retry will not overwrite the committed slot.
	ix.attrSlot = target
	ix.crcSlot = crcTarget
	ix.version = indexVersion
	ix.commitIntegrity()
	return ix.f.Sync()
}

// slotChain maps an attribute-list slot number to its chain.
func (ix *Index) slotChain(slot int) storage.ChainID {
	if slot == 0 {
		return ix.attrChain
	}
	return ix.attrChainB
}

// Open attaches to an iVA-file previously built over tbl.
func Open(f *storage.File, tbl *table.Table, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	var b [superblockSize]byte
	if err := f.ReadAt(b[:], 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(b[0:]) != indexMagic {
		return nil, fmt.Errorf("core: bad index magic")
	}
	version := binary.LittleEndian.Uint32(b[4:])
	if version < 1 || version > indexVersion {
		return nil, fmt.Errorf("core: index version %d unsupported", version)
	}
	if version >= 4 {
		// Everything below trusts the superblock fields, so the trailer is
		// checked before any of them are used. v4 trailers sit where v5 put
		// the zone fields, so the offset is version-dependent.
		crcAt := sbCRCOffFor(version)
		if storage.Checksum(b[:crcAt]) != binary.LittleEndian.Uint32(b[crcAt:]) {
			return nil, &storage.CorruptionError{File: "iva.idx", Offset: 0,
				Segment: storage.NoCorruptSegment, Detail: "superblock checksum mismatch"}
		}
	}
	opts.Alpha = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	opts.N = int(binary.LittleEndian.Uint32(b[16:]))
	opts.NumericBytes = int(binary.LittleEndian.Uint32(b[60:]))
	opts.SegmentSize = int(binary.LittleEndian.Uint32(b[64:]))
	// The superblock fields drive allocations below, so a corrupt or hostile
	// file must fail validation here rather than panic or exhaust memory.
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: superblock: %w", err)
	}
	codec, err := signature.NewCodec(opts.N, opts.Alpha)
	if err != nil {
		return nil, err
	}
	segs, err := storage.NewSegStore(f, superblockSize, opts.SegmentSize)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		opts:       opts,
		f:          f,
		segs:       segs,
		codec:      codec,
		tbl:        tbl,
		ltid:       int(b[20]),
		tupleChain: storage.ChainID(binary.LittleEndian.Uint32(b[24:])),
		tupleBits:  int64(binary.LittleEndian.Uint64(b[28:])),
		deleted:    int64(binary.LittleEndian.Uint64(b[44:])),
		attrChain:  storage.ChainID(binary.LittleEndian.Uint32(b[52:])),
		posByTID:   make(map[model.TID]int64),
		version:    version,
		imode:      opts.Integrity,
		crcChainA:  storage.NoSegment,
		crcChainB:  storage.NoSegment,
		// The ChainID zero value is a valid id, so the zone chain must be
		// disabled explicitly for files that predate it.
		zoneChain: storage.NoSegment,
		zoneOff:   opts.DisableZoneMaps,
	}
	if pb := int(b[21]); pb != ptrBits {
		return nil, fmt.Errorf("core: index built with %d ptr bits, binary uses %d", pb, ptrBits)
	}
	if ix.ltid < 1 || ix.ltid > 32 {
		return nil, fmt.Errorf("core: superblock ltid %d outside [1,32]", ix.ltid)
	}
	entryCount := int64(binary.LittleEndian.Uint64(b[36:]))
	nattrs := int(binary.LittleEndian.Uint32(b[56:]))
	if ix.tupleBits < 0 || ix.tupleBits > 8*f.Size() {
		return nil, fmt.Errorf("core: superblock tuple list of %d bits exceeds file", ix.tupleBits)
	}
	if entryCount < 0 || entryCount*int64(ix.elemBits()) > ix.tupleBits {
		return nil, fmt.Errorf("core: superblock entry count %d exceeds tuple list", entryCount)
	}
	if ix.deleted < 0 || ix.deleted > entryCount {
		return nil, fmt.Errorf("core: superblock deleted count %d exceeds entries", ix.deleted)
	}
	if nattrs < 0 || int64(nattrs)*attrElemSize > f.Size() {
		return nil, fmt.Errorf("core: superblock attribute count %d exceeds file", nattrs)
	}
	// v1 files predate stripe checkpoints: recording and the parallel plan
	// stay off for them until the next rebuild writes a v2 file.
	ix.ckptChain = storage.NoSegment
	ix.ckptEvery = opts.CheckpointEvery
	if version >= 2 {
		ix.ckptChain = storage.ChainID(binary.LittleEndian.Uint32(b[68:]))
		if every := int64(binary.LittleEndian.Uint32(b[72:])); every > 0 {
			ix.ckptEvery = every
		}
	}
	// v3 superblocks name the committed attribute-list slot and the valid
	// checkpoint count; older files have a single slot and keep the count in
	// the checkpoint chain (clamped on read, see readCheckpoints).
	ix.attrChainB = storage.NoSegment
	ckptCount := -1
	if version >= 3 {
		ix.attrChainB = storage.ChainID(binary.LittleEndian.Uint32(b[76:]))
		ix.attrSlot = int(b[80])
		if ix.attrSlot != 0 && ix.attrSlot != 1 {
			return nil, fmt.Errorf("core: superblock attribute slot %d", ix.attrSlot)
		}
		ckptCount = int(binary.LittleEndian.Uint32(b[84:]))
	}
	// v4 superblocks name the ping-ponged checksum-map chains. The committed
	// map loads before any chain data is read so the first-touch verification
	// hooks below have words to check against.
	if version >= 4 {
		ix.crcChainA = storage.ChainID(binary.LittleEndian.Uint32(b[sbCRCChainAOff:]))
		ix.crcChainB = storage.ChainID(binary.LittleEndian.Uint32(b[sbCRCChainBOff:]))
		ix.crcSlot = int(b[sbCRCSlotOff])
		if ix.crcSlot != 0 && ix.crcSlot != 1 {
			return nil, fmt.Errorf("core: superblock checksum slot %d", ix.crcSlot)
		}
		ix.initIntegrity(false)
		if ix.crcChain(ix.crcSlot) != storage.NoSegment {
			if err := ix.loadCRCMap(ix.crcChain(ix.crcSlot)); err != nil {
				return nil, err
			}
		}
	}
	// The attribute list is read through segs.ReadAt (no reader hook), and
	// corrupt layout metadata cannot be degraded around — verify its
	// committed segments up front in both modes.
	if err := ix.verifyChain(ix.slotChain(ix.attrSlot)); err != nil {
		return nil, err
	}
	if err := ix.readAttrList(nattrs, ix.slotChain(ix.attrSlot)); err != nil {
		return nil, err
	}
	if err := ix.loadCodecDirs(); err != nil {
		return nil, err
	}
	if err := ix.loadTupleList(entryCount); err != nil {
		return nil, err
	}
	if err := ix.readCheckpoints(ckptCount); err != nil {
		return nil, err
	}
	// v5 superblocks name the zone-map chain; the count is clamped and each
	// record verified in readZones. The accumulator only starts valid when
	// the tuple list ends exactly on a stripe boundary — otherwise the open
	// stripe has entries this instance never observed and it seals unknown.
	if version >= 5 {
		ix.zoneChain = storage.ChainID(binary.LittleEndian.Uint32(b[sbZoneChainOff:]))
		if err := ix.readZones(int(binary.LittleEndian.Uint32(b[sbZoneCountOff:]))); err != nil {
			return nil, err
		}
	}
	ix.zacc.reset(ix.zonesEnabled() && int64(len(ix.entries))%ix.ckptEvery == 0)
	return ix, nil
}

// loadCodecDirs rebuilds every packed attribute's block directory by walking
// the self-describing block headers (the directory is deliberately not
// persisted: checkpoint chains may be dropped wholesale under DegradeReads,
// so block metadata cannot depend on them). The walk reads through a
// verifying chain reader, so segment checksums cover the block headers.
// Damage fails the open under Strict; under DegradeReads the attribute is
// marked dirBroken — reads degrade to zero bounds, writes demand a rebuild.
func (ix *Index) loadCodecDirs() error {
	for i := range ix.attrs {
		st := &ix.attrs[i]
		if !st.exists || st.codecID == vector.CodecRaw {
			continue
		}
		dir, logical, err := ix.walkCodecDir(st)
		if err == nil && logical > st.bitLen {
			err = &storage.CorruptionError{File: "iva.idx", Offset: -1,
				Segment: storage.NoCorruptSegment,
				Detail:  fmt.Sprintf("attr %d blocks decode to %d bits, list holds %d", i, logical, st.bitLen)}
		}
		if err != nil {
			var ce *storage.CorruptionError
			if !errors.As(err, &ce) || ix.imode == IntegrityStrict {
				return err
			}
			st.dir, st.codedLogical = nil, 0
			st.dirBroken = true
			ix.integ.droppedCodecDirs++
			continue
		}
		st.dir, st.codedLogical = dir, logical
	}
	return nil
}

func (ix *Index) walkCodecDir(st *attrState) ([]vector.BlockMeta, int64, error) {
	r := storage.NewChainBitReader(ix.segs, st.chain, st.codedWords*64)
	defer r.Close()
	ix.attachVerify(r, st.chain)
	return vector.WalkBlocks(r, st.codedWords)
}

// termSource wraps an attribute's physical chain reader (opened over
// physBits()) into the logical BitSource cursors consume. Codec-0 lists
// return the reader itself; packed lists return a BlockSource over the
// block directory. A dirBroken packed list returns the typed corruption
// error the caller's degrade-or-fail policy already handles.
func (ix *Index) termSource(st *attrState, rd *storage.ChainBitReader) (vector.BitSource, error) {
	if st.codecID == vector.CodecRaw {
		return rd, nil
	}
	if st.dirBroken {
		return nil, &storage.CorruptionError{File: "iva.idx", Offset: -1,
			Segment: storage.NoCorruptSegment,
			Detail:  "packed vector list with dropped block directory"}
	}
	return vector.NewBlockSource(st.layout, rd, st.dir, st.codedWords, st.bitLen), nil
}

// loadTupleList reads the on-disk tuple list into the in-memory mirror.
func (ix *Index) loadTupleList(entryCount int64) error {
	r := storage.NewChainBitReader(ix.segs, ix.tupleChain, ix.tupleBits)
	defer r.Close()
	ix.attachVerify(r, ix.tupleChain)
	ix.entries = make([]tupleEntry, 0, entryCount)
	for i := int64(0); i < entryCount; i++ {
		tid, err := r.ReadBits(ix.ltid)
		if err != nil {
			return err
		}
		ptr, err := r.ReadBits(ptrBits)
		if err != nil {
			return err
		}
		e := tupleEntry{tid: model.TID(tid), ptr: int64(ptr), deleted: ptr == tombstonePtr}
		ix.entries = append(ix.entries, e)
		if !e.deleted {
			ix.posByTID[e.tid] = i
		}
	}
	return nil
}
