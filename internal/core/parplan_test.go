package core

import (
	"context"
	"sync"
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// stripedFixture builds a fixture small stripes wide enough for the parallel
// plan, with tombstones straddling several stripe boundaries.
func stripedFixture(t testing.TB, tuples int, every int64, seed int64) *fixture {
	fx := newFixture(t, tuples, Options{CheckpointEvery: every, TIDHeadroom: 1 << 20}, seed)
	if !fx.ix.parallelEligible() {
		t.Fatalf("fixture not parallel-eligible: %d ckpts over %d entries", len(fx.ix.ckpts), len(fx.ix.entries))
	}
	return fx
}

// straddleDeletes tombstones the tuples on both sides of every stripe
// boundary, so workers see stripes that begin and end in deleted runs.
func straddleDeletes(t testing.TB, fx *fixture) {
	t.Helper()
	every := fx.ix.ckptEvery
	for b := every; b < int64(len(fx.ix.entries)); b += every {
		for _, tid := range []model.TID{model.TID(b - 1), model.TID(b), model.TID(b + 1)} {
			if err := fx.ix.Delete(tid); err != nil && err != ErrNotFound {
				t.Fatal(err)
			}
		}
	}
}

// fixtureMetrics is the equivalence matrix: every combiner crossed with both
// weighting schemes.
func fixtureMetrics(fx *fixture) map[string]*metric.Metric {
	cat := fx.tbl.Catalog()
	itf := func() metric.Weighter {
		return metric.NewITF(fx.tbl.Live, func(a model.AttrID) int64 {
			info, _ := cat.Info(a)
			return info.DF
		})
	}
	return map[string]*metric.Metric{
		"L1/EQU":   metric.New(metric.L1{}, metric.Equal{}),
		"L2/EQU":   metric.New(metric.L2{}, metric.Equal{}),
		"Linf/EQU": metric.New(metric.LInf{}, metric.Equal{}),
		"L1/ITF":   metric.New(metric.L1{}, itf()),
		"L2/ITF":   metric.New(metric.L2{}, itf()),
		"Linf/ITF": metric.New(metric.LInf{}, itf()),
	}
}

// identicalResults demands byte-identical answers: same tids in the same
// order with exactly equal distances.
func identicalResults(a, b []model.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TID != b[i].TID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestParallelMatchesSequential is the randomized equivalence suite: the
// parallel plan must return byte-identical results to the sequential plan
// under every metric/weighting pair, with identical Scanned counts, on a
// fixture whose tombstones straddle stripe boundaries.
func TestParallelMatchesSequential(t *testing.T) {
	fx := stripedFixture(t, 3000, 256, 301)
	straddleDeletes(t, fx)
	for name, m := range fixtureMetrics(fx) {
		for trial := 0; trial < 8; trial++ {
			q := fx.randQuery(t, 1+fx.rng.Intn(3), 1+fx.rng.Intn(10))
			fx.ix.mu.RLock()
			seq, seqStats, seqErr := fx.ix.searchSequential(context.Background(), q, m, nil)
			fx.ix.mu.RUnlock()
			if seqErr != nil {
				t.Fatalf("%s trial %d: sequential: %v", name, trial, seqErr)
			}
			for _, par := range []int{2, 4, 8} {
				fx.ix.mu.RLock()
				got, stats, err := fx.ix.searchParallel(context.Background(), q, m, nil, par)
				fx.ix.mu.RUnlock()
				if err != nil {
					t.Fatalf("%s trial %d par %d: %v", name, trial, par, err)
				}
				if !identicalResults(got, seq) {
					t.Fatalf("%s trial %d par %d: results differ\n got %v\nwant %v\nquery %+v",
						name, trial, par, got, seq, q)
				}
				if stats.Scanned != seqStats.Scanned {
					t.Fatalf("%s trial %d par %d: scanned %d, sequential %d",
						name, trial, par, stats.Scanned, seqStats.Scanned)
				}
			}
			// Brute force anchors both plans to the ground truth.
			if want := bruteForce(t, fx, q, m); !sameDistances(seq, want) {
				t.Fatalf("%s trial %d: sequential diverged from brute force", name, trial)
			}
		}
	}
}

// TestParallelOneWorkerFullStatsEquality pins the checkpoint resume logic: a
// single worker claims stripes in order and carries one pool across them, so
// its admission sequence — and with it every counter, including the fetch
// count — must be exactly the sequential plan's.
func TestParallelOneWorkerFullStatsEquality(t *testing.T) {
	fx := stripedFixture(t, 2000, 128, 302)
	straddleDeletes(t, fx)
	for name, m := range fixtureMetrics(fx) {
		for trial := 0; trial < 6; trial++ {
			q := fx.randQuery(t, 2, 5)
			fx.ix.mu.RLock()
			seq, seqStats, err1 := fx.ix.searchSequential(context.Background(), q, m, nil)
			got, stats, err2 := fx.ix.searchParallel(context.Background(), q, m, nil, 1)
			fx.ix.mu.RUnlock()
			if err1 != nil || err2 != nil {
				t.Fatalf("%s trial %d: %v / %v", name, trial, err1, err2)
			}
			if !identicalResults(got, seq) {
				t.Fatalf("%s trial %d: results differ", name, trial)
			}
			if stats.Scanned != seqStats.Scanned || stats.TableAccesses != seqStats.TableAccesses {
				t.Fatalf("%s trial %d: stats differ: scanned %d/%d accesses %d/%d",
					name, trial, stats.Scanned, seqStats.Scanned,
					stats.TableAccesses, seqStats.TableAccesses)
			}
		}
	}
}

// TestParallelAfterUpdates drives checkpoints through the update paths:
// single inserts and a boundary-crossing batch must both extend the stripe
// set, and the parallel plan must keep matching afterwards.
func TestParallelAfterUpdates(t *testing.T) {
	fx := newFixture(t, 300, Options{CheckpointEvery: 128, TIDHeadroom: 1 << 20}, 303)
	for i := 0; i < 150; i++ {
		if _, err := fx.ix.Insert(fx.randValues()); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]map[model.AttrID]model.Value, 600)
	for i := range batch {
		batch[i] = fx.randValues()
	}
	if _, err := fx.ix.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if !fx.ix.checkpointsEnabled() {
		t.Fatal("updates disabled checkpoints")
	}
	if got, want := int64(len(fx.ix.ckpts)), (int64(len(fx.ix.entries))-1)/fx.ix.ckptEvery+1; got != want {
		t.Fatalf("checkpoints after updates: %d, want %d", got, want)
	}
	straddleDeletes(t, fx)
	m := metric.Default()
	for trial := 0; trial < 10; trial++ {
		q := fx.randQuery(t, 2, 8)
		fx.ix.mu.RLock()
		seq, _, err1 := fx.ix.searchSequential(context.Background(), q, m, nil)
		got, _, err2 := fx.ix.searchParallel(context.Background(), q, m, nil, 4)
		fx.ix.mu.RUnlock()
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if !identicalResults(got, seq) {
			t.Fatalf("trial %d after updates: plans differ\n got %v\nwant %v", trial, got, seq)
		}
		if want := bruteForce(t, fx, q, m); !sameDistances(seq, want) {
			t.Fatalf("trial %d: diverged from brute force", trial)
		}
	}
}

// TestCheckpointPersistence round-trips checkpoints through Sync and Open:
// the reopened index must hold the same stripe set and the parallel plan
// must still match the sequential one.
func TestCheckpointPersistence(t *testing.T) {
	pool := storage.NewPool(0, 10<<20)
	cat := table.NewCatalog()
	tblDev := storage.NewMemDevice()
	idxDev := storage.NewMemDevice()
	tbl, err := table.New(storage.NewFile(pool, tblDev), cat)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cat.AddAttr("name", model.KindText)
	b, _ := cat.AddAttr("price", model.KindNumeric)
	for i := 0; i < 1200; i++ {
		if _, _, err := tbl.Append(map[model.AttrID]model.Value{
			a: model.Text(words[i%len(words)]),
			b: model.Num(float64(i % 700)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{CheckpointEvery: 128}
	ix, err := Build(tbl, storage.NewFile(pool, idxDev), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(storage.NewFile(pool, idxDev), tbl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix2.ckpts) != len(ix.ckpts) {
		t.Fatalf("reopened checkpoint count: %d, want %d", len(ix2.ckpts), len(ix.ckpts))
	}
	for i := range ix.ckpts {
		if co := ix.ckpts[i].attrOff; len(co) != len(ix2.ckpts[i].attrOff) {
			t.Fatalf("checkpoint %d width differs", i)
		} else {
			for aIdx := range co {
				if co[aIdx] != ix2.ckpts[i].attrOff[aIdx] {
					t.Fatalf("checkpoint %d attr %d: %d vs %d", i, aIdx, co[aIdx], ix2.ckpts[i].attrOff[aIdx])
				}
			}
		}
	}
	if !ix2.parallelEligible() {
		t.Fatal("reopened index not parallel-eligible")
	}
	m := metric.Default()
	q := (&model.Query{K: 7}).TextTerm(a, "canon").NumTerm(b, 300)
	ix2.mu.RLock()
	seq, _, err1 := ix2.searchSequential(context.Background(), q, m, nil)
	par, _, err2 := ix2.searchParallel(context.Background(), q, m, nil, 4)
	ix2.mu.RUnlock()
	if err1 != nil || err2 != nil {
		t.Fatalf("%v / %v", err1, err2)
	}
	if !identicalResults(par, seq) {
		t.Fatalf("reopened parallel plan differs: %v vs %v", par, seq)
	}
}

// TestDisabledCheckpointsFallBack simulates a v1 index (no checkpoint chain):
// dispatch must stay sequential and correct.
func TestDisabledCheckpointsFallBack(t *testing.T) {
	fx := newFixture(t, 600, Options{CheckpointEvery: 128, SearchParallelism: 8}, 304)
	fx.ix.ckptChain = storage.NoSegment
	fx.ix.ckpts = nil
	if fx.ix.parallelEligible() {
		t.Fatal("disabled checkpoints still parallel-eligible")
	}
	if got := fx.ix.SearchWorkers(); got != 1 {
		t.Fatalf("SearchWorkers = %d, want 1", got)
	}
	m := metric.Default()
	q := fx.randQuery(t, 2, 5)
	got, _, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForce(t, fx, q, m); !sameDistances(got, want) {
		t.Fatal("sequential fallback diverged from brute force")
	}
}

// TestSearchWorkersGaugeValues pins the iva_search_workers gauge source.
func TestSearchWorkersGaugeValues(t *testing.T) {
	fx := newFixture(t, 1000, Options{CheckpointEvery: 64, SearchParallelism: 4}, 305)
	if got := fx.ix.SearchWorkers(); got != 4 {
		t.Fatalf("SearchWorkers = %d, want 4", got)
	}
	fx.ix.opts.SearchParallelism = 1
	if got := fx.ix.SearchWorkers(); got != 1 {
		t.Fatalf("SearchWorkers with parallelism 1 = %d, want 1", got)
	}
	fx.ix.opts.SearchParallelism = 1 << 20 // clamped to the stripe count
	if got, n := fx.ix.SearchWorkers(), len(fx.ix.ckpts); got != n {
		t.Fatalf("SearchWorkers = %d, want stripe count %d", got, n)
	}
}

// TestConcurrentSearchUpdate hammers parallel searches against concurrent
// inserts and deletes; run with -race. Queries and rows are pre-generated so
// the fixture's rng stays single-threaded.
func TestConcurrentSearchUpdate(t *testing.T) {
	fx := stripedFixture(t, 2000, 128, 306)
	fx.ix.opts.SearchParallelism = 4
	m := metric.Default()
	queries := make([]*model.Query, 32)
	for i := range queries {
		queries[i] = fx.randQuery(t, 2, 6)
	}
	rows := make([]map[model.AttrID]model.Value, 200)
	for i := range rows {
		rows[i] = fx.randValues()
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, _, err := fx.ix.Search(queries[(g*7+i)%len(queries)], m); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, row := range rows {
			if _, err := fx.ix.Insert(row); err != nil {
				errc <- err
				return
			}
			if i%3 == 0 {
				if err := fx.ix.Delete(model.TID(i * 5)); err != nil && err != ErrNotFound {
					errc <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// The index is still coherent after the storm.
	q := queries[0]
	got, _, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteForce(t, fx, q, m); !sameDistances(got, want) {
		t.Fatal("post-storm search diverged from brute force")
	}
}

// --- benchmarks -------------------------------------------------------------

var (
	benchFxOnce sync.Once
	benchFx     *fixture
	benchQs     []*model.Query
)

// benchFixture is shared across the plan benchmarks: building it dominates
// any single measurement.
func benchFixture(b *testing.B) (*fixture, []*model.Query) {
	benchFxOnce.Do(func() {
		benchFx = newFixture(b, 16384, Options{CheckpointEvery: 512}, 400)
		benchQs = make([]*model.Query, 16)
		for i := range benchQs {
			benchQs[i] = benchFx.randQuery(b, 3, 10)
		}
	})
	return benchFx, benchQs
}

func benchmarkPlan(b *testing.B, par int) {
	fx, queries := benchFixture(b)
	m := metric.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		fx.ix.mu.RLock()
		var err error
		if par == 0 {
			_, _, err = fx.ix.searchSequential(context.Background(), q, m, nil)
		} else {
			_, _, err = fx.ix.searchParallel(context.Background(), q, m, nil, par)
		}
		fx.ix.mu.RUnlock()
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSequential(b *testing.B) { benchmarkPlan(b, 0) }
func BenchmarkSearchParallel1(b *testing.B)  { benchmarkPlan(b, 1) }
func BenchmarkSearchParallel4(b *testing.B)  { benchmarkPlan(b, 4) }
func BenchmarkSearchParallel8(b *testing.B)  { benchmarkPlan(b, 8) }
