package core

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

// TestCorruptionSoak is the randomized companion to the deterministic
// torture sweep: for a bounded wall-clock budget it keeps flipping random
// bits (sometimes several at once) anywhere in the committed index image,
// reopening in a random integrity mode at a random parallelism, and holding
// the same contract — fail or answer exactly, and always detect damage to
// checksummed bytes. The budget defaults to ~2s so the tier-1 run stays
// fast; nightly CI sets IVA_CORRUPTION_SOAK (a Go duration) to run it for
// minutes under -race.
func TestCorruptionSoak(t *testing.T) {
	budget := 2 * time.Second
	if env := os.Getenv("IVA_CORRUPTION_SOAK"); env != "" {
		d, err := time.ParseDuration(env)
		if err != nil {
			t.Fatalf("IVA_CORRUPTION_SOAK=%q: %v", env, err)
		}
		budget = d
	} else if testing.Short() {
		budget = 300 * time.Millisecond
	}

	cf := buildCorruptionFixture(t)
	rng := rand.New(rand.NewSource(0x50a4_c0de))
	deadline := time.Now().Add(budget)
	iters, degradedTotal := 0, 0
	for time.Now().Before(deadline) {
		iters++
		cf.restore(t)
		mode := IntegrityMode(rng.Intn(2))
		flips := 1 + rng.Intn(3)
		anyCommitted := false
		var firstOff int64
		for f := 0; f < flips; f++ {
			off := rng.Int63n(int64(len(cf.snapshot)))
			if f == 0 {
				firstOff = off
			}
			if cf.committed[off] {
				anyCommitted = true
			}
			cf.flip(t, off, uint(rng.Intn(8)))
		}
		detected := cf.runOnce(t, mode, firstOff, &degradedTotal)
		if anyCommitted && !detected {
			t.Fatalf("soak iter %d (mode=%v, %d flips): corruption of a checksummed byte was not detected",
				iters, mode, flips)
		}
	}
	cf.restore(t)
	t.Logf("corruption soak: %d iterations in %v, %d degraded segment reads", iters, budget, degradedTotal)
	if iters < 3 {
		t.Fatalf("soak budget %v only allowed %d iterations", budget, iters)
	}
}
