package core

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

func soakBudget(t *testing.T, env string) time.Duration {
	budget := 2 * time.Second
	if v := os.Getenv(env); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("%s=%q: %v", env, v, err)
		}
		budget = d
	} else if testing.Short() {
		budget = 300 * time.Millisecond
	}
	return budget
}

// corruptionSoak keeps flipping random bits (sometimes several at once)
// anywhere in the fixture's committed index image for a bounded wall-clock
// budget, reopening in a random integrity mode at a random parallelism, and
// holds the usual contract — fail or answer exactly, and always detect
// damage to checksummed bytes.
func corruptionSoak(t *testing.T, cf *corruptionFixture, budget time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(budget)
	iters, degradedTotal := 0, 0
	for time.Now().Before(deadline) {
		iters++
		cf.restore(t)
		mode := IntegrityMode(rng.Intn(2))
		flips := 1 + rng.Intn(3)
		anyCommitted := false
		var firstOff int64
		for f := 0; f < flips; f++ {
			off := rng.Int63n(int64(len(cf.snapshot)))
			if f == 0 {
				firstOff = off
			}
			if cf.committed[off] {
				anyCommitted = true
			}
			cf.flip(t, off, uint(rng.Intn(8)))
		}
		detected := cf.runOnce(t, mode, firstOff, &degradedTotal)
		if anyCommitted && !detected {
			t.Fatalf("soak iter %d (mode=%v, %d flips): corruption of a checksummed byte was not detected",
				iters, mode, flips)
		}
	}
	cf.restore(t)
	t.Logf("corruption soak: %d iterations in %v, %d degraded segment reads", iters, budget, degradedTotal)
	if iters < 3 {
		t.Fatalf("soak budget %v only allowed %d iterations", budget, iters)
	}
}

// TestCorruptionSoak is the randomized companion to the deterministic
// torture sweep over a codec-0 image. The budget defaults to ~2s so the
// tier-1 run stays fast; nightly CI sets IVA_CORRUPTION_SOAK (a Go
// duration) to run it for minutes under -race.
func TestCorruptionSoak(t *testing.T) {
	corruptionSoak(t, buildCorruptionFixture(t), soakBudget(t, "IVA_CORRUPTION_SOAK"), 0x50a4_c0de)
}

// TestCodecCorruptionSoak repeats the randomized soak over a format-v6
// image whose text list is stored as packed blocks, so random flips land in
// block headers, delta payloads and the raw tail as well as the structures
// the codec-0 soak covers. Nightly CI sets IVA_CODEC_SOAK.
func TestCodecCorruptionSoak(t *testing.T) {
	cf := buildCorruptionFixtureWith(t, Options{CheckpointEvery: 16, Codec: 1}, true)
	if cf.packedAttrs == 0 {
		t.Fatal("codec soak fixture packed no attribute")
	}
	corruptionSoak(t, cf, soakBudget(t, "IVA_CODEC_SOAK"), 0x50a4_c0d6)
}
