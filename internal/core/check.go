package core

import (
	"fmt"

	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/vector"
)

// CheckReport summarizes an index integrity scan.
type CheckReport struct {
	Entries     int64 // tuple-list elements
	Live        int64 // non-tombstoned elements
	Attributes  int   // attribute-list elements with vector lists
	VectorElems int64 // decoded vector-list elements across all live tuples
	Problems    []string
}

// Ok reports whether the check found no problems.
func (r CheckReport) Ok() bool { return len(r.Problems) == 0 }

func (r *CheckReport) addf(format string, args ...interface{}) {
	if len(r.Problems) < 50 {
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

// Check walks the whole iVA-file and cross-validates it against the table:
// tuple-list order and pointers, per-attribute vector lists against the
// stored values (signature widths, string counts, quantizer codes, the
// lower-bound property for every stored numeric value), and the catalog's
// df statistics. It is the maintenance "fsck" a production deployment runs
// after crashes or migrations.
func (ix *Index) Check() (CheckReport, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var rep CheckReport
	rep.Entries = int64(len(ix.entries))

	// Pass 1: the on-disk tuple list (not the in-memory mirror) — order,
	// tombstones, pointer validity, agreement with the mirror.
	var lastTID model.TID
	first := true
	df := make(map[model.AttrID]int64)
	type liveTuple struct {
		tid model.TID
		pos int64
		tp  *model.Tuple
	}
	var live []liveTuple
	var rds readerSet
	defer rds.close()
	tr := rds.open(ix, ix.tupleChain, ix.tupleBits)
	for pos := int64(0); pos < int64(len(ix.entries)); pos++ {
		tidBits, err := tr.ReadBits(ix.ltid)
		if err != nil {
			rep.addf("tuple list read at pos %d: %v", pos, err)
			break
		}
		ptr, err := tr.ReadBits(ptrBits)
		if err != nil {
			rep.addf("tuple list read at pos %d: %v", pos, err)
			break
		}
		tid := model.TID(tidBits)
		mirror := ix.entries[pos]
		if mirror.deleted != (ptr == tombstonePtr) {
			rep.addf("pos %d: disk tombstone=%v, mirror=%v", pos, ptr == tombstonePtr, mirror.deleted)
		}
		if ptr == tombstonePtr {
			continue
		}
		if mirror.tid != tid || mirror.ptr != int64(ptr) {
			rep.addf("pos %d: disk element (%d,%d) differs from mirror (%d,%d)",
				pos, tid, ptr, mirror.tid, mirror.ptr)
		}
		rep.Live++
		if !first && tid <= lastTID {
			rep.addf("tuple list out of order at pos %d: tid %d after %d", pos, tid, lastTID)
		}
		first, lastTID = false, tid
		tp, err := ix.tbl.Fetch(int64(ptr))
		if err != nil {
			rep.addf("pos %d tid %d: table fetch failed: %v", pos, tid, err)
			continue
		}
		if tp.TID != tid {
			rep.addf("pos %d: tuple list says tid %d, table record says %d", pos, tid, tp.TID)
			continue
		}
		for a := range tp.Values {
			df[a]++
		}
		live = append(live, liveTuple{tid, pos, tp})
	}

	// Pass 2: every attribute's vector list against the stored values.
	for id := range ix.attrs {
		st := &ix.attrs[id]
		if !st.exists {
			continue
		}
		rep.Attributes++
		aid := model.AttrID(id)
		src, err := ix.termSource(st, rds.open(ix, st.chain, st.physBits()))
		if err != nil {
			rep.addf("attr %d: codec source: %v", id, err)
			continue
		}
		cur, err := vector.NewCursor(st.layout, src)
		if err != nil {
			rep.addf("attr %d: cursor: %v", id, err)
			continue
		}
		for _, lt := range live {
			v, defined := lt.tp.Get(aid)
			e, err := cur.MoveTo(lt.tid, lt.pos)
			if err != nil {
				rep.addf("attr %d tid %d: scan: %v", id, lt.tid, err)
				break
			}
			if e.NDF != !defined {
				rep.addf("attr %d tid %d: index NDF=%v but table defined=%v", id, lt.tid, e.NDF, defined)
				continue
			}
			if e.NDF {
				continue
			}
			rep.VectorElems++
			switch st.layout.Kind {
			case model.KindText:
				if len(e.Sigs) != len(v.Strs) {
					rep.addf("attr %d tid %d: %d signatures for %d strings", id, lt.tid, len(e.Sigs), len(v.Strs))
					continue
				}
				for i, s := range v.Strs {
					ref := st.layout.Codec.Encode(s)
					if e.Sigs[i].Len != ref.Len {
						rep.addf("attr %d tid %d sig %d: cL %d, want %d", id, lt.tid, i, e.Sigs[i].Len, ref.Len)
						continue
					}
					for w := range ref.H {
						if e.Sigs[i].H[w] != ref.H[w] {
							rep.addf("attr %d tid %d sig %d: cH mismatch", id, lt.tid, i)
							break
						}
					}
				}
			case model.KindNumeric:
				want := st.quant.Encode(v.Num)
				if e.Code != want {
					rep.addf("attr %d tid %d: code %d, want %d", id, lt.tid, e.Code, want)
				}
				if d := st.quant.MinDist(v.Num, e.Code); d != 0 {
					rep.addf("attr %d tid %d: stored value %v outside its own slice (lb %v)", id, lt.tid, v.Num, d)
				}
			}
		}
	}

	// Pass 3: catalog df statistics against observed counts.
	for id, info := range ix.tbl.Catalog().Attrs() {
		if got := df[model.AttrID(id)]; got != info.DF {
			rep.addf("attr %d (%s): catalog df %d, observed %d", id, info.Name, info.DF, got)
		}
	}
	return rep, nil
}

// AttrReport describes one attribute's index layout for introspection.
type AttrReport struct {
	ID       model.AttrID
	Name     string
	Kind     model.Kind
	ListType vector.ListType
	Alpha    float64
	BitLen   int64
	DF       int64
	Str      int64
	// Codec names the block codec the list is stored under (format v6);
	// CodedBlocks is the number of sealed block containers it holds.
	Codec       string
	CodedBlocks int
}

// Attrs returns a layout report per indexed attribute.
func (ix *Index) Attrs() []AttrReport {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	infos := ix.tbl.Catalog().Attrs()
	var out []AttrReport
	for id := range ix.attrs {
		st := &ix.attrs[id]
		if !st.exists {
			continue
		}
		r := AttrReport{
			ID:          model.AttrID(id),
			Kind:        st.layout.Kind,
			ListType:    st.layout.Type,
			Alpha:       st.alpha,
			BitLen:      st.bitLen,
			Codec:       vector.CodecName(st.codecID),
			CodedBlocks: len(st.dir),
		}
		if id < len(infos) {
			r.Name = infos[id].Name
			r.DF = infos[id].DF
			r.Str = infos[id].Str
		}
		out = append(out, r)
	}
	return out
}
