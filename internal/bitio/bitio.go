// Package bitio provides MSB-first bit-level readers and writers over byte
// slices. The iVA-file vector lists are bit-packed (tuple ids, string counts
// and approximation vectors occupy exactly as many bits as their width
// requires, as in the paper's Fig. 6), so every on-disk list structure in
// this repository is produced by a Writer and consumed by a Reader.
//
// Bit order is most-significant-bit first within each byte: the first bit
// written lands in bit 7 of byte 0. Values wider than one word are handled
// by the WriteBits/ReadBits pair in up-to-64-bit chunks; arbitrarily wide
// vectors (long nG-signatures) use WriteWords/ReadWords.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader methods when fewer bits remain than
// were requested.
var ErrShortBuffer = errors.New("bitio: short buffer")

// Writer appends bits to an internal byte buffer.
// The zero value is an empty writer ready for use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// NewWriter returns a writer whose buffer has the given capacity in bytes.
func NewWriter(capBytes int) *Writer {
	return &Writer{buf: make([]byte, 0, capBytes)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the underlying buffer. The final byte is zero-padded.
// The returned slice aliases the writer's storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to zero bits, retaining the buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint) {
	off := w.nbit & 7
	if off == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - off)
	}
	w.nbit++
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	for width > 0 {
		off := w.nbit & 7
		if off == 0 {
			w.buf = append(w.buf, 0)
		}
		room := 8 - off // bits available in the current byte
		take := width
		if take > room {
			take = room
		}
		// Bits of v to place: the top `take` of the remaining `width`.
		chunk := byte(v>>(width-take)) & (1<<take - 1)
		w.buf[len(w.buf)-1] |= chunk << (room - take)
		w.nbit += take
		width -= take
	}
}

// WriteWords appends `width` bits from the word slice ws, where ws packs the
// bit string big-endian-by-word: bit i of the stream is bit (63-i%64) of
// ws[i/64]. This is the layout produced by signature encoding.
func (w *Writer) WriteWords(ws []uint64, width int) {
	for width >= 64 {
		w.WriteBits(ws[0], 64)
		ws = ws[1:]
		width -= 64
	}
	if width > 0 {
		w.WriteBits(ws[0]>>(64-width), width)
	}
}

// Align pads with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	if r := w.nbit & 7; r != 0 {
		w.nbit += 8 - r
	}
}

// Reader consumes bits from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // bit position
	nbit int // total readable bits
}

// NewReader returns a reader over buf exposing nbits bits. If nbits < 0 the
// whole slice (8*len(buf) bits) is readable.
func NewReader(buf []byte, nbits int) *Reader {
	if nbits < 0 || nbits > 8*len(buf) {
		nbits = 8 * len(buf)
	}
	return &Reader{buf: buf, nbit: nbits}
}

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Seek moves the read position to the absolute bit offset pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return fmt.Errorf("bitio: seek to %d outside [0,%d]", pos, r.nbit)
	}
	r.pos = pos
	return nil
}

// Skip advances the position by n bits.
func (r *Reader) Skip(n int) error {
	if n < 0 || r.pos+n > r.nbit {
		return ErrShortBuffer
	}
	r.pos += n
	return nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrShortBuffer
	}
	b := (r.buf[r.pos>>3] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits reads `width` bits (≤64) MSB-first and returns them in the low
// bits of the result.
//
// The hot path assembles up to 9 bytes into one 64-bit word instead of
// looping byte by byte; the loop remains only for reads near the end of the
// buffer where a full word load would run past it.
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortBuffer
	}
	i := r.pos >> 3
	if off := r.pos & 7; i+9 <= len(r.buf) {
		x := binary.BigEndian.Uint64(r.buf[i:])
		if off > 0 {
			x = x<<off | uint64(r.buf[i+8])>>(8-off)
		}
		r.pos += width
		return x >> (64 - width), nil
	} else if off+width <= 64 && i+8 <= len(r.buf) {
		x := binary.BigEndian.Uint64(r.buf[i:]) << off
		r.pos += width
		return x >> (64 - width), nil
	}
	var v uint64
	for width > 0 {
		off := r.pos & 7
		room := 8 - off
		take := width
		if take > room {
			take = room
		}
		chunk := (r.buf[r.pos>>3] >> (room - take)) & (1<<take - 1)
		v = v<<take | uint64(chunk)
		r.pos += take
		width -= take
	}
	return v, nil
}

// ReadWords reads `width` bits into dst using the WriteWords layout.
// dst must have at least (width+63)/64 words; extra words are untouched.
func (r *Reader) ReadWords(dst []uint64, width int) error {
	if r.pos+width > r.nbit {
		return ErrShortBuffer
	}
	i := 0
	for width >= 64 {
		v, err := r.ReadBits(64)
		if err != nil {
			return err
		}
		dst[i] = v
		i++
		width -= 64
	}
	if width > 0 {
		v, err := r.ReadBits(width)
		if err != nil {
			return err
		}
		dst[i] = v << (64 - width)
	}
	return nil
}

// BitsFor returns the number of bits required to represent v
// (at least 1, so that zero-valued fields still occupy a slot).
func BitsFor(v uint64) int {
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
