package bitio

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadBits drives a Writer with a fuzzer-chosen op script, then replays
// the script against the produced buffer and demands every value round-trip
// exactly. The script bytes double as the value stream, so the fuzzer mutates
// widths, values and alignment together. Afterwards the reader is over-read
// to confirm the ErrShortBuffer boundary is exact, and the raw input is also
// decoded as an arbitrary bit stream to prove Reader never panics on
// hostile bytes.
func FuzzReadBits(f *testing.F) {
	f.Add([]byte{0x01, 0x3f, 0xff, 0x40, 0x00, 0x07, 0xaa})
	f.Add([]byte{0x00})
	f.Add([]byte{0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41})
	f.Add(bytes.Repeat([]byte{0xff, 0x00, 0x80}, 20))
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 1<<12 {
			return
		}
		// Pass 1: interpret the script as (width, value...) ops and write.
		type op struct {
			width int
			val   uint64
		}
		var (
			w   Writer
			ops []op
		)
		for i := 0; i < len(script); {
			width := int(script[i] % 65) // 0..64
			i++
			nb := (width + 7) / 8
			var val uint64
			for j := 0; j < nb && i < len(script); j++ {
				val = val<<8 | uint64(script[i])
				i++
			}
			if width < 64 {
				val &= 1<<uint(width) - 1
			}
			ops = append(ops, op{width, val})
			w.WriteBits(val, width)
		}
		total := 0
		for _, o := range ops {
			total += o.width
		}
		if w.Len() != total {
			t.Fatalf("writer holds %d bits, ops wrote %d", w.Len(), total)
		}

		// Pass 2: replay against the buffer.
		r := NewReader(w.Bytes(), w.Len())
		for i, o := range ops {
			got, err := r.ReadBits(o.width)
			if err != nil {
				t.Fatalf("op %d: ReadBits(%d): %v", i, o.width, err)
			}
			if got != o.val {
				t.Fatalf("op %d: ReadBits(%d) = %#x, want %#x", i, o.width, got, o.val)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("reader has %d bits left after replay", r.Remaining())
		}
		// Over-read by one bit must fail cleanly, not wrap or panic.
		if _, err := r.ReadBit(); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("over-read: got %v, want ErrShortBuffer", err)
		}

		// Pass 3: replay bit-by-bit from a fresh reader; single-bit reads must
		// agree with the wide reads.
		r2 := NewReader(w.Bytes(), w.Len())
		for i, o := range ops {
			var v uint64
			for j := 0; j < o.width; j++ {
				b, err := r2.ReadBit()
				if err != nil {
					t.Fatalf("op %d bit %d: %v", i, j, err)
				}
				v = v<<1 | uint64(b)
			}
			if v != o.val {
				t.Fatalf("op %d: bitwise read = %#x, want %#x", i, o.width, v)
			}
		}

		// Pass 4: the raw input as a hostile bit stream — exhaust it with
		// script-derived widths and seeks; nothing may panic.
		r3 := NewReader(script, -1)
		for i := 0; r3.Remaining() > 0; i++ {
			width := int(script[i%len(script)])%64 + 1
			if width > r3.Remaining() {
				width = r3.Remaining()
			}
			if _, err := r3.ReadBits(width); err != nil {
				t.Fatalf("raw decode: ReadBits(%d) with %d remaining: %v", width, r3.Remaining()+width, err)
			}
		}
		if err := r3.Seek(0); err != nil {
			t.Fatalf("seek 0: %v", err)
		}
		if err := r3.Seek(8*len(script) + 1); err == nil {
			t.Fatal("seek past end succeeded")
		}
	})
}
