package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	var w Writer
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err != ErrShortBuffer {
		t.Fatalf("read past end: err = %v, want ErrShortBuffer", err)
	}
}

func TestWriteBitsKnownLayout(t *testing.T) {
	// Writing 0b101 (3 bits) then 0b0110 (4 bits) must produce 1010110x.
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0b0110, 4)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b10101100 {
		t.Fatalf("bytes = %08b, want 10101100", got[0])
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	var w Writer
	w.WriteBits(0xFFFF, 0)
	if w.Len() != 0 {
		t.Fatalf("zero-width write advanced to %d bits", w.Len())
	}
}

func TestRoundTripRandomWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type field struct {
		v     uint64
		width int
	}
	for trial := 0; trial < 200; trial++ {
		var fields []field
		var w Writer
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			width := 1 + rng.Intn(64)
			v := rng.Uint64()
			if width < 64 {
				v &= 1<<width - 1
			}
			fields = append(fields, field{v, width})
			w.WriteBits(v, width)
		}
		r := NewReader(w.Bytes(), w.Len())
		for i, f := range fields {
			got, err := r.ReadBits(f.width)
			if err != nil {
				t.Fatalf("trial %d field %d: %v", trial, i, err)
			}
			if got != f.v {
				t.Fatalf("trial %d field %d: got %x want %x (width %d)", trial, i, got, f.v, f.width)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("trial %d: %d bits remain", trial, r.Remaining())
		}
	}
}

func TestWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		width := 1 + rng.Intn(300)
		nw := (width + 63) / 64
		ws := make([]uint64, nw)
		for i := range ws {
			ws[i] = rng.Uint64()
		}
		// Zero bits beyond width so comparison is exact.
		if rem := width & 63; rem != 0 {
			ws[nw-1] &= ^uint64(0) << (64 - rem)
		}
		var w Writer
		w.WriteBits(0b11, 2) // misalign
		w.WriteWords(ws, width)
		r := NewReader(w.Bytes(), w.Len())
		if _, err := r.ReadBits(2); err != nil {
			t.Fatal(err)
		}
		dst := make([]uint64, nw)
		if err := r.ReadWords(dst, width); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range ws {
			if dst[i] != ws[i] {
				t.Fatalf("trial %d word %d: got %x want %x (width %d)", trial, i, dst[i], ws[i], width)
			}
		}
	}
}

func TestSeekSkip(t *testing.T) {
	var w Writer
	for i := 0; i < 10; i++ {
		w.WriteBits(uint64(i), 8)
	}
	r := NewReader(w.Bytes(), w.Len())
	if err := r.Seek(24); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(8)
	if err != nil || v != 3 {
		t.Fatalf("after seek: v=%d err=%v, want 3", v, err)
	}
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	v, _ = r.ReadBits(8)
	if v != 5 {
		t.Fatalf("after skip: v=%d, want 5", v)
	}
	if err := r.Seek(-1); err == nil {
		t.Fatal("negative seek accepted")
	}
	if err := r.Skip(1000); err == nil {
		t.Fatal("skip past end accepted")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9, 1<<32 - 1: 32}
	for v, want := range cases {
		if got := BitsFor(v); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestBitsForProperty(t *testing.T) {
	f := func(v uint64) bool {
		n := BitsFor(v)
		if n < 1 || n > 64 {
			return false
		}
		// v must fit in n bits and (if n > 1) not in n-1 bits.
		if n < 64 && v>>uint(n) != 0 {
			return false
		}
		if n > 1 && v>>uint(n-1) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripSingleValue(t *testing.T) {
	f := func(v uint64, w8 uint8) bool {
		width := int(w8%64) + 1
		if width < 64 {
			v &= 1<<width - 1
		}
		var wr Writer
		wr.WriteBits(v, width)
		r := NewReader(wr.Bytes(), wr.Len())
		got, err := r.ReadBits(width)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAlign(t *testing.T) {
	var w Writer
	w.WriteBits(0b1, 1)
	w.Align()
	if w.Len() != 8 {
		t.Fatalf("Len after align = %d, want 8", w.Len())
	}
	w.Align() // aligning an aligned writer is a no-op
	if w.Len() != 8 {
		t.Fatalf("Len after second align = %d, want 8", w.Len())
	}
}

func TestReset(t *testing.T) {
	var w Writer
	w.WriteBits(123, 32)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteBits(0xAB, 8)
	if w.Bytes()[0] != 0xAB {
		t.Fatal("writer unusable after Reset")
	}
}

func BenchmarkWriteBits(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<20 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func TestReadBitsNearBufferTail(t *testing.T) {
	// The word-at-a-time fast path loads up to 9 bytes; reads whose fields
	// end inside the last few bytes must fall back to the per-byte loop and
	// still decode the same values.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		var w Writer
		var fields []struct {
			v     uint64
			width int
		}
		// Short buffers: every field sits within 9 bytes of the end.
		total := 0
		for total < 40 {
			width := 1 + rng.Intn(40)
			v := rng.Uint64() & (1<<uint(width) - 1)
			w.WriteBits(v, width)
			fields = append(fields, struct {
				v     uint64
				width int
			}{v, width})
			total += width
		}
		r := NewReader(w.Bytes(), w.Len())
		for i, f := range fields {
			got, err := r.ReadBits(f.width)
			if err != nil {
				t.Fatalf("trial %d field %d: %v", trial, i, err)
			}
			if got != f.v {
				t.Fatalf("trial %d field %d: got %x want %x (width %d)", trial, i, got, f.v, f.width)
			}
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	var w Writer
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 17)
	}
	r := NewReader(w.Bytes(), w.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 17 {
			r.Seek(0)
		}
		r.ReadBits(17)
	}
}

func BenchmarkReadWords(b *testing.B) {
	const width = 192 // three words per signature
	rng := rand.New(rand.NewSource(31))
	var w Writer
	w.WriteBits(0b10110, 5) // misalign every subsequent word read
	sig := make([]uint64, 3)
	for i := 0; i < 2048; i++ {
		for j := range sig {
			sig[j] = rng.Uint64()
		}
		w.WriteWords(sig, width)
	}
	r := NewReader(w.Bytes(), w.Len())
	dst := make([]uint64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < width {
			r.Seek(0)
			r.Skip(5)
		}
		if err := r.ReadWords(dst, width); err != nil {
			b.Fatal(err)
		}
	}
}
