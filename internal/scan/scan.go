// Package scan implements DST, the paper's no-index baseline: answering a
// top-k structured similarity query by a direct sequential scan of the table
// file, computing every live tuple's exact distance. Its query time is
// essentially constant in all parameters (≈30 s per query on the paper's
// testbed) and serves as the floor the indexes are measured against; its
// update cost is the table-file append/tombstone alone, the cheapest of the
// three methods.
package scan

import (
	"sync"
	"time"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/topk"
)

// Scanner answers queries by scanning tbl directly. It keeps its own
// tombstone set (DST has no index file; a deployment would persist deletions
// in the table header — here the set is rebuilt from the driving workload).
type Scanner struct {
	tbl *table.Table

	mu      sync.RWMutex
	deleted map[model.TID]bool
	values  map[model.TID]int64 // tid → ptr for delete/update bookkeeping
}

// New returns a scanner over tbl, registering the live tuples.
func New(tbl *table.Table) (*Scanner, error) {
	s := &Scanner{
		tbl:     tbl,
		deleted: make(map[model.TID]bool),
		values:  make(map[model.TID]int64),
	}
	err := tbl.Scan(func(ptr int64, tp *model.Tuple) error {
		s.values[tp.TID] = ptr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Table returns the underlying table.
func (s *Scanner) Table() *table.Table { return s.tbl }

// SearchStats reports a DST query's work.
type SearchStats struct {
	Scanned int64
	Wall    time.Duration
}

// Total returns the query's wall time.
func (s SearchStats) Total() time.Duration { return s.Wall }

// Search computes the exact top-k by scanning the whole table file.
func (s *Scanner) Search(q *model.Query, m *metric.Metric) ([]model.Result, SearchStats, error) {
	var stats SearchStats
	if err := q.Validate(); err != nil {
		return nil, stats, err
	}
	if m == nil {
		m = metric.Default()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	start := time.Now()
	pool := topk.New(q.K)
	err := s.tbl.Scan(func(_ int64, tp *model.Tuple) error {
		if s.deleted[tp.TID] {
			return nil
		}
		stats.Scanned++
		pool.Insert(tp.TID, m.TupleDistance(q, tp))
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.Wall = time.Since(start)
	return pool.Results(), stats, nil
}

// Insert appends a tuple to the table file.
func (s *Scanner) Insert(values map[model.AttrID]model.Value) (model.TID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tid, ptr, err := s.tbl.Append(values)
	if err != nil {
		return 0, err
	}
	s.values[tid] = ptr
	return tid, nil
}

// Delete tombstones a tuple.
func (s *Scanner) Delete(tid model.TID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ptr, ok := s.values[tid]
	if !ok || s.deleted[tid] {
		return table.ErrNotFound
	}
	tp, err := s.tbl.Fetch(ptr)
	if err != nil {
		return err
	}
	if err := s.tbl.NoteDelete(tp.Values); err != nil {
		return err
	}
	s.deleted[tid] = true
	return nil
}

// MarkDeleted re-applies a tombstone after a reopen without touching the
// catalog statistics, which already account for the original Delete (the
// tombstone set is rebuilt from the driving workload; see the type comment).
func (s *Scanner) MarkDeleted(tid model.TID) {
	s.mu.Lock()
	s.deleted[tid] = true
	s.mu.Unlock()
}

// Update is delete + insert under a fresh tid.
func (s *Scanner) Update(tid model.TID, values map[model.AttrID]model.Value) (model.TID, error) {
	if err := s.Delete(tid); err != nil {
		return 0, err
	}
	return s.Insert(values)
}

// Deleted returns the tombstone count.
func (s *Scanner) Deleted() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.deleted))
}
