package scan

import (
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

func newScanner(t *testing.T) (*Scanner, model.AttrID, model.AttrID) {
	t.Helper()
	pool := storage.NewPool(0, 1<<20)
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(pool, storage.NewMemDevice()), cat)
	if err != nil {
		t.Fatal(err)
	}
	name, _ := cat.AddAttr("name", model.KindText)
	price, _ := cat.AddAttr("price", model.KindNumeric)
	s, err := New(tbl)
	if err != nil {
		t.Fatal(err)
	}
	return s, name, price
}

func TestSearchExact(t *testing.T) {
	s, name, price := newScanner(t)
	for i, n := range []string{"canon", "sony", "nikon"} {
		if _, err := s.Insert(map[model.AttrID]model.Value{
			name:  model.Text(n),
			price: model.Num(float64(100 * (i + 1))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	m := metric.Default()
	q := (&model.Query{K: 2}).TextTerm(name, "cannon").NumTerm(price, 100)
	res, stats, err := s.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	// "canon" at price 100: ed 1, |Δ| 0 → dist 1. Must win.
	if res[0].TID != 0 || res[0].Dist != 1 {
		t.Fatalf("top = %+v", res[0])
	}
	if stats.Scanned != 3 {
		t.Fatalf("scanned %d", stats.Scanned)
	}
}

func TestDeleteHidesTuple(t *testing.T) {
	s, name, _ := newScanner(t)
	tid, _ := s.Insert(map[model.AttrID]model.Value{name: model.Text("gone")})
	s.Insert(map[model.AttrID]model.Value{name: model.Text("stays")})
	if err := s.Delete(tid); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(tid); err != table.ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if err := s.Delete(999); err != table.ErrNotFound {
		t.Fatalf("unknown delete: %v", err)
	}
	m := metric.Default()
	res, stats, err := s.Search((&model.Query{K: 5}).TextTerm(name, "gone"), m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 1 {
		t.Fatalf("scanned %d, want 1", stats.Scanned)
	}
	for _, r := range res {
		if r.TID == tid {
			t.Fatal("deleted tuple in results")
		}
	}
	if s.Deleted() != 1 {
		t.Fatalf("Deleted = %d", s.Deleted())
	}
}

func TestUpdateGetsFreshTID(t *testing.T) {
	s, name, _ := newScanner(t)
	tid, _ := s.Insert(map[model.AttrID]model.Value{name: model.Text("v1")})
	newTID, err := s.Update(tid, map[model.AttrID]model.Value{name: model.Text("v2")})
	if err != nil {
		t.Fatal(err)
	}
	if newTID == tid {
		t.Fatal("update reused tid")
	}
	m := metric.Default()
	res, _, _ := s.Search((&model.Query{K: 1}).TextTerm(name, "v2"), m)
	if res[0].TID != newTID || res[0].Dist != 0 {
		t.Fatalf("updated tuple not found: %+v", res)
	}
}

func TestValidation(t *testing.T) {
	s, _, _ := newScanner(t)
	m := metric.Default()
	if _, _, err := s.Search(&model.Query{K: 0}, m); err == nil {
		t.Fatal("invalid query accepted")
	}
}
