// Package invidx implements SII, the sparse inverted index of Yu et al. [7]
// — the only index previously evaluated for sparse wide tables and the
// paper's primary baseline. For each attribute it keeps the sorted list of
// ids of the tuples that define the attribute; a query scans the lists of
// its defined attributes ("partial scan") and random-accesses the table file
// for every tuple appearing in at least one list. The index distinguishes
// only ndf from non-ndf — it captures nothing about values — which is
// exactly the filtering weakness the iVA-file addresses.
//
// Tuples defining none of the query's attributes all share one exactly-known
// distance (every per-attribute difference is the ndf penalty), so SII
// admits them to a non-full pool without fetching.
//
// The on-disk format mirrors the iVA-file's substrate: a superblock, a
// directory chain of <tid, ptr> elements (ptr all-ones marks deletion), and
// one bit-packed tid chain per attribute, all growable at the tail.
package invidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/sparsewide/iva/internal/bitio"
	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
	"github.com/sparsewide/iva/internal/topk"
)

const (
	magic          = 0x53494958 // "SIIX"
	version        = 1
	superblockSize = 4096
	ptrBits        = 40
	attrElemSize   = 16
)

var tombstonePtr = uint64(1)<<ptrBits - 1

// ErrNeedsRebuild mirrors the iVA-file's overflow signal.
var ErrNeedsRebuild = errors.New("invidx: packed field overflow, index rebuild required")

// ErrNotFound is returned for operations on unknown tuple ids.
var ErrNotFound = errors.New("invidx: tuple not found")

// Options configure an SII build.
type Options struct {
	SegmentSize int
	TIDHeadroom int64
}

func (o Options) withDefaults() Options {
	if o.SegmentSize == 0 {
		o.SegmentSize = 4 << 10
	}
	return o
}

type attrList struct {
	chain  storage.ChainID
	bitLen int64
	exists bool
}

type dirEntry struct {
	tid     model.TID
	ptr     int64
	deleted bool
}

// Index is an open SII bound to its table.
type Index struct {
	f    *storage.File
	segs *storage.SegStore
	tbl  *table.Table
	opts Options

	mu       sync.RWMutex
	ltid     int
	attrs    []attrList
	attrMeta storage.ChainID
	dirChain storage.ChainID
	dirBits  int64
	entries  []dirEntry
	posByTID map[model.TID]int64
	deleted  int64
}

// Table returns the bound table.
func (ix *Index) Table() *table.Table { return ix.tbl }

// SizeBytes returns the index file size.
func (ix *Index) SizeBytes() int64 { return ix.f.Size() }

// Entries returns the directory length including tombstones.
func (ix *Index) Entries() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int64(len(ix.entries))
}

// Deleted returns the tombstone count.
func (ix *Index) Deleted() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.deleted
}

// DeletedFraction returns deleted/entries for the cleaning policy.
func (ix *Index) DeletedFraction() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.entries) == 0 {
		return 0
	}
	return float64(ix.deleted) / float64(len(ix.entries))
}

func (ix *Index) maxTID() model.TID { return model.TID(uint64(1)<<uint(ix.ltid) - 1) }

// Build constructs an SII over every record of tbl into f.
func Build(tbl *table.Table, f *storage.File, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := f.Truncate(0); err != nil {
		return nil, err
	}
	segs, err := storage.NewSegStore(f, superblockSize, opts.SegmentSize)
	if err != nil {
		return nil, err
	}
	headroom := opts.TIDHeadroom
	if headroom <= 0 {
		headroom = tbl.Total() / 4
		if headroom < 1024 {
			headroom = 1024
		}
	}
	ltid := bitio.BitsFor(uint64(tbl.NextTID()) + uint64(headroom))
	if ltid > 32 {
		ltid = 32
	}
	ix := &Index{
		f: f, segs: segs, tbl: tbl, opts: opts,
		ltid:     ltid,
		posByTID: make(map[model.TID]int64),
	}
	if ix.dirChain, err = segs.Create(); err != nil {
		return nil, err
	}
	if ix.attrMeta, err = segs.Create(); err != nil {
		return nil, err
	}
	nattrs := tbl.Catalog().NumAttrs()
	writers := make([]*bitio.Writer, nattrs)
	for i := 0; i < nattrs; i++ {
		chain, err := segs.Create()
		if err != nil {
			return nil, err
		}
		ix.attrs = append(ix.attrs, attrList{chain: chain, exists: true})
		writers[i] = &bitio.Writer{}
	}
	var dirW bitio.Writer
	err = tbl.Scan(func(ptr int64, tp *model.Tuple) error {
		if tp.TID > ix.maxTID() {
			return fmt.Errorf("invidx: tid %d exceeds %d bits", tp.TID, ix.ltid)
		}
		if uint64(ptr) >= tombstonePtr {
			return fmt.Errorf("invidx: ptr %d exceeds %d bits", ptr, ptrBits)
		}
		pos := int64(len(ix.entries))
		dirW.WriteBits(uint64(tp.TID), ix.ltid)
		dirW.WriteBits(uint64(ptr), ptrBits)
		ix.entries = append(ix.entries, dirEntry{tid: tp.TID, ptr: ptr})
		ix.posByTID[tp.TID] = pos
		for _, a := range tp.Attrs() {
			writers[a].WriteBits(uint64(tp.TID), ix.ltid)
		}
		// Bound memory: flush big writers as we go.
		if dirW.Len() >= 64<<10*8 {
			if err := ix.flushDir(&dirW); err != nil {
				return err
			}
		}
		for i, w := range writers {
			if w.Len() >= 64<<10*8 {
				if err := ix.flushAttr(model.AttrID(i), w); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := ix.flushDir(&dirW); err != nil {
		return nil, err
	}
	for i, w := range writers {
		if err := ix.flushAttr(model.AttrID(i), w); err != nil {
			return nil, err
		}
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}
	return ix, nil
}

func (ix *Index) flushDir(w *bitio.Writer) error {
	if w.Len() == 0 {
		return nil
	}
	n, err := storage.AppendBits(ix.segs, ix.dirChain, ix.dirBits, w.Bytes(), w.Len())
	if err != nil {
		return err
	}
	ix.dirBits = n
	w.Reset()
	return nil
}

func (ix *Index) flushAttr(a model.AttrID, w *bitio.Writer) error {
	if w.Len() == 0 {
		return nil
	}
	st := &ix.attrs[a]
	n, err := storage.AppendBits(ix.segs, st.chain, st.bitLen, w.Bytes(), w.Len())
	if err != nil {
		return err
	}
	st.bitLen = n
	w.Reset()
	return nil
}

// Sync checkpoints the superblock and attribute metadata.
func (ix *Index) Sync() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	buf := make([]byte, attrElemSize*len(ix.attrs))
	for i, a := range ix.attrs {
		e := buf[i*attrElemSize:]
		if !a.exists {
			continue
		}
		e[0] = 1
		binary.LittleEndian.PutUint32(e[4:], uint32(a.chain))
		binary.LittleEndian.PutUint64(e[8:], uint64(a.bitLen))
	}
	if err := ix.segs.WriteAt(ix.attrMeta, buf, 0); err != nil {
		return err
	}
	var b [superblockSize]byte
	binary.LittleEndian.PutUint32(b[0:], magic)
	binary.LittleEndian.PutUint32(b[4:], version)
	b[8] = byte(ix.ltid)
	binary.LittleEndian.PutUint32(b[12:], uint32(ix.dirChain))
	binary.LittleEndian.PutUint64(b[16:], uint64(ix.dirBits))
	binary.LittleEndian.PutUint64(b[24:], uint64(len(ix.entries)))
	binary.LittleEndian.PutUint64(b[32:], uint64(ix.deleted))
	binary.LittleEndian.PutUint32(b[40:], uint32(ix.attrMeta))
	binary.LittleEndian.PutUint32(b[44:], uint32(len(ix.attrs)))
	binary.LittleEndian.PutUint32(b[48:], uint32(ix.opts.SegmentSize))
	if err := ix.f.WriteAt(b[:], 0); err != nil {
		return err
	}
	return ix.f.Sync()
}

// Open attaches to an SII previously built over tbl.
func Open(f *storage.File, tbl *table.Table, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	var b [superblockSize]byte
	if err := f.ReadAt(b[:], 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(b[0:]) != magic {
		return nil, fmt.Errorf("invidx: bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != version {
		return nil, fmt.Errorf("invidx: version %d unsupported", v)
	}
	opts.SegmentSize = int(binary.LittleEndian.Uint32(b[48:]))
	segs, err := storage.NewSegStore(f, superblockSize, opts.SegmentSize)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		f: f, segs: segs, tbl: tbl, opts: opts,
		ltid:     int(b[8]),
		dirChain: storage.ChainID(binary.LittleEndian.Uint32(b[12:])),
		dirBits:  int64(binary.LittleEndian.Uint64(b[16:])),
		deleted:  int64(binary.LittleEndian.Uint64(b[32:])),
		attrMeta: storage.ChainID(binary.LittleEndian.Uint32(b[40:])),
		posByTID: make(map[model.TID]int64),
	}
	nattrs := int(binary.LittleEndian.Uint32(b[44:]))
	meta := make([]byte, attrElemSize*nattrs)
	if err := ix.segs.ReadAt(ix.attrMeta, meta, 0); err != nil {
		return nil, err
	}
	ix.attrs = make([]attrList, nattrs)
	for i := 0; i < nattrs; i++ {
		e := meta[i*attrElemSize:]
		if e[0] != 1 {
			continue
		}
		ix.attrs[i] = attrList{
			chain:  storage.ChainID(binary.LittleEndian.Uint32(e[4:])),
			bitLen: int64(binary.LittleEndian.Uint64(e[8:])),
			exists: true,
		}
	}
	entryCount := int64(binary.LittleEndian.Uint64(b[24:]))
	r := storage.NewChainBitReader(segs, ix.dirChain, ix.dirBits)
	defer r.Close()
	ix.entries = make([]dirEntry, 0, entryCount)
	for i := int64(0); i < entryCount; i++ {
		tid, err := r.ReadBits(ix.ltid)
		if err != nil {
			return nil, err
		}
		ptr, err := r.ReadBits(ptrBits)
		if err != nil {
			return nil, err
		}
		e := dirEntry{tid: model.TID(tid), ptr: int64(ptr), deleted: ptr == tombstonePtr}
		ix.entries = append(ix.entries, e)
		if !e.deleted {
			ix.posByTID[e.tid] = i
		}
	}
	return ix, nil
}

// SearchStats mirrors core.SearchStats for the comparison harness.
type SearchStats struct {
	Scanned       int64
	Candidates    int64
	TableAccesses int64
	FilterWall    time.Duration
	RefineWall    time.Duration
	FilterIO      storage.Snapshot
	RefineIO      storage.Snapshot
}

// Total returns the full wall time.
func (s SearchStats) Total() time.Duration { return s.FilterWall + s.RefineWall }

// Search answers a top-k query: scan the tid lists of the query's
// attributes, fetch-and-check every tuple defining at least one of them, and
// admit all-ndf tuples at their exactly-known constant distance without
// fetching.
func (ix *Index) Search(q *model.Query, m *metric.Metric) ([]model.Result, SearchStats, error) {
	var stats SearchStats
	if err := q.Validate(); err != nil {
		return nil, stats, err
	}
	if m == nil {
		m = metric.Default()
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pstats := ix.f.Pool().Stats()
	startIO := pstats.Snapshot()
	wallStart := time.Now()
	startAccesses := ix.tbl.Accesses()

	// Filter: merge the sorted tid lists of the queried attributes.
	candidates := make(map[model.TID]bool)
	for _, term := range q.Terms {
		if int(term.Attr) >= len(ix.attrs) || !ix.attrs[term.Attr].exists {
			continue
		}
		st := ix.attrs[term.Attr]
		r := storage.NewChainBitReader(ix.segs, st.chain, st.bitLen)
		for r.Remaining() >= int64(ix.ltid) {
			v, err := r.ReadBits(ix.ltid)
			if err != nil {
				r.Close()
				return nil, stats, err
			}
			candidates[model.TID(v)] = true
		}
		r.Close()
	}
	stats.Candidates = int64(len(candidates))

	pool := topk.New(q.K)
	// Refine: sequential pass over the directory; fetch candidates, admit
	// non-candidates at the all-ndf distance without fetching.
	ndfDist := m.AllNDFDistance(q)
	refineStart := time.Now()
	stats.FilterWall = refineStart.Sub(wallStart)
	stats.FilterIO = pstats.Snapshot().Sub(startIO)
	refineIOStart := pstats.Snapshot()

	r := storage.NewChainBitReader(ix.segs, ix.dirChain, ix.dirBits)
	defer r.Close()
	for i := int64(0); i < int64(len(ix.entries)); i++ {
		tidBits, err := r.ReadBits(ix.ltid)
		if err != nil {
			return nil, stats, err
		}
		ptr, err := r.ReadBits(ptrBits)
		if err != nil {
			return nil, stats, err
		}
		if ptr == tombstonePtr {
			continue
		}
		tid := model.TID(tidBits)
		stats.Scanned++
		if candidates[tid] {
			tp, err := ix.tbl.Fetch(int64(ptr))
			if err != nil {
				return nil, stats, err
			}
			pool.Insert(tid, m.TupleDistance(q, tp))
		} else if pool.Admits(ndfDist) {
			pool.Insert(tid, ndfDist)
		}
	}
	stats.RefineWall = time.Since(refineStart)
	stats.RefineIO = pstats.Snapshot().Sub(refineIOStart)
	stats.TableAccesses = ix.tbl.Accesses() - startAccesses
	return pool.Results(), stats, nil
}

// Insert appends a tuple to the table, the directory tail, and the tid list
// of every defined attribute.
func (ix *Index) Insert(values map[model.AttrID]model.Value) (model.TID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tid := ix.tbl.NextTID()
	if tid > ix.maxTID() {
		return 0, ErrNeedsRebuild
	}
	if n := ix.tbl.Catalog().NumAttrs(); n > len(ix.attrs) {
		for i := len(ix.attrs); i < n; i++ {
			chain, err := ix.segs.Create()
			if err != nil {
				return 0, err
			}
			ix.attrs = append(ix.attrs, attrList{chain: chain, exists: true})
		}
	}
	gotTID, ptr, err := ix.tbl.Append(values)
	if err != nil {
		return 0, err
	}
	if gotTID != tid {
		return 0, fmt.Errorf("invidx: tid raced: %d vs %d", tid, gotTID)
	}
	if uint64(ptr) >= tombstonePtr {
		return 0, ErrNeedsRebuild
	}
	var w bitio.Writer
	w.WriteBits(uint64(tid), ix.ltid)
	w.WriteBits(uint64(ptr), ptrBits)
	if ix.dirBits, err = storage.AppendBits(ix.segs, ix.dirChain, ix.dirBits, w.Bytes(), w.Len()); err != nil {
		return 0, err
	}
	ix.posByTID[tid] = int64(len(ix.entries))
	ix.entries = append(ix.entries, dirEntry{tid: tid, ptr: ptr})
	for a := range values {
		if int(a) >= len(ix.attrs) {
			return 0, fmt.Errorf("invidx: value on unregistered attribute %d", a)
		}
		var aw bitio.Writer
		aw.WriteBits(uint64(tid), ix.ltid)
		st := &ix.attrs[a]
		if st.bitLen, err = storage.AppendBits(ix.segs, st.chain, st.bitLen, aw.Bytes(), aw.Len()); err != nil {
			return 0, err
		}
	}
	return tid, nil
}

// Delete tombstones a tuple in the directory; attribute lists keep its tid
// until rebuild (queries resolve liveness through the directory).
func (ix *Index) Delete(tid model.TID) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	pos, ok := ix.posByTID[tid]
	if !ok {
		return ErrNotFound
	}
	tp, err := ix.tbl.Fetch(ix.entries[pos].ptr)
	if err != nil {
		return err
	}
	bitOff := pos*int64(ix.ltid+ptrBits) + int64(ix.ltid)
	if err := storage.WriteBitsAt(ix.segs, ix.dirChain, bitOff, tombstonePtr, ptrBits); err != nil {
		return err
	}
	if err := ix.tbl.NoteDelete(tp.Values); err != nil {
		return err
	}
	ix.entries[pos].deleted = true
	delete(ix.posByTID, tid)
	ix.deleted++
	return nil
}

// Update is delete + insert under a fresh tid.
func (ix *Index) Update(tid model.TID, values map[model.AttrID]model.Value) (model.TID, error) {
	if err := ix.Delete(tid); err != nil {
		return 0, err
	}
	return ix.Insert(values)
}
