package invidx

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/scan"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

type fixture struct {
	pool *storage.Pool
	tbl  *table.Table
	ix   *Index
	dst  *scan.Scanner

	textAttrs []model.AttrID
	numAttrs  []model.AttrID
	rng       *rand.Rand
}

var words = []string{
	"digital camera", "job position", "music album", "canon", "sony",
	"google", "computer", "software", "wide-angle", "telephoto",
}

func newFixture(t testing.TB, tuples int, seed int64) *fixture {
	t.Helper()
	fx := &fixture{
		pool: storage.NewPool(0, 10<<20),
		rng:  rand.New(rand.NewSource(seed)),
	}
	cat := table.NewCatalog()
	tbl, err := table.New(storage.NewFile(fx.pool, storage.NewMemDevice()), cat)
	if err != nil {
		t.Fatal(err)
	}
	fx.tbl = tbl
	for i := 0; i < 8; i++ {
		id, _ := cat.AddAttr(fmt.Sprintf("t%d", i), model.KindText)
		fx.textAttrs = append(fx.textAttrs, id)
	}
	for i := 0; i < 3; i++ {
		id, _ := cat.AddAttr(fmt.Sprintf("n%d", i), model.KindNumeric)
		fx.numAttrs = append(fx.numAttrs, id)
	}
	for i := 0; i < tuples; i++ {
		if _, _, err := tbl.Append(fx.randValues()); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(tbl, storage.NewFile(fx.pool, storage.NewMemDevice()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx.ix = ix
	dst, err := scan.New(tbl)
	if err != nil {
		t.Fatal(err)
	}
	fx.dst = dst
	return fx
}

func (fx *fixture) randValues() map[model.AttrID]model.Value {
	vals := make(map[model.AttrID]model.Value)
	n := 1 + fx.rng.Intn(4)
	for j := 0; j < n; j++ {
		if fx.rng.Intn(3) == 0 {
			vals[fx.numAttrs[fx.rng.Intn(len(fx.numAttrs))]] = model.Num(float64(fx.rng.Intn(1000)))
		} else {
			vals[fx.textAttrs[fx.rng.Intn(len(fx.textAttrs))]] = model.Text(words[fx.rng.Intn(len(words))])
		}
	}
	return vals
}

func (fx *fixture) randQuery(t testing.TB, nvals, k int) *model.Query {
	t.Helper()
	q := &model.Query{K: k}
	seen := map[model.AttrID]bool{}
	for len(q.Terms) < nvals {
		pos := fx.rng.Int63n(fx.ix.Entries())
		e := fx.ix.entries[pos]
		if e.deleted {
			continue
		}
		tp, err := fx.tbl.Fetch(e.ptr)
		if err != nil {
			t.Fatal(err)
		}
		attrs := tp.Attrs()
		a := attrs[fx.rng.Intn(len(attrs))]
		if seen[a] {
			continue
		}
		seen[a] = true
		v := tp.Values[a]
		if v.Kind == model.KindNumeric {
			q.NumTerm(a, v.Num)
		} else {
			q.TextTerm(a, v.Strs[0])
		}
	}
	return q
}

func sameDistances(a, b []model.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

// TestSIIMatchesDST is the correctness anchor: both methods are exact, so
// their top-k distance sequences must agree on every query and metric.
func TestSIIMatchesDST(t *testing.T) {
	fx := newFixture(t, 300, 51)
	for _, m := range []*metric.Metric{
		metric.New(metric.L1{}, metric.Equal{}),
		metric.New(metric.L2{}, metric.Equal{}),
		metric.New(metric.LInf{}, metric.Equal{}),
	} {
		for trial := 0; trial < 20; trial++ {
			q := fx.randQuery(t, 1+fx.rng.Intn(3), 1+fx.rng.Intn(12))
			got, _, err := fx.ix.Search(q, m)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := fx.dst.Search(q, m)
			if err != nil {
				t.Fatal(err)
			}
			if !sameDistances(got, want) {
				t.Fatalf("%s trial %d: SII %v != DST %v", m.Name(), trial, got, want)
			}
		}
	}
}

func TestSIIAllNDFAdmission(t *testing.T) {
	// A query on an attribute almost nobody defines must still return k
	// results, padding with all-ndf tuples at the constant distance.
	fx := newFixture(t, 100, 52)
	rare, _ := fx.tbl.Catalog().AddAttr("rare", model.KindText)
	if _, err := fx.ix.Insert(map[model.AttrID]model.Value{rare: model.Text("unique")}); err != nil {
		t.Fatal(err)
	}
	m := metric.Default()
	q := (&model.Query{K: 5}).TextTerm(rare, "unique")
	got, stats, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("%d results, want 5", len(got))
	}
	if got[0].Dist != 0 {
		t.Fatalf("exact match not first: %v", got[0])
	}
	for _, r := range got[1:] {
		if r.Dist != m.AllNDFDistance(q) {
			t.Fatalf("pad result at %v, want all-ndf %v", r.Dist, m.AllNDFDistance(q))
		}
	}
	// Only the single candidate should have been fetched.
	if stats.TableAccesses != 1 {
		t.Fatalf("TableAccesses = %d, want 1", stats.TableAccesses)
	}
}

func TestSIIInsertDeleteUpdate(t *testing.T) {
	fx := newFixture(t, 150, 53)
	m := metric.Default()
	for i := 0; i < 40; i++ {
		if _, err := fx.ix.Insert(fx.randValues()); err != nil {
			t.Fatal(err)
		}
	}
	// The two engines share one table, so drive inserts through SII only
	// and refresh DST's view afterwards.
	dst, err := scan.New(fx.tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tid := model.TID(fx.rng.Intn(150))
		errIx := fx.ix.Delete(tid)
		errDst := dst.Delete(tid)
		if (errIx == nil) != (errDst == nil) {
			t.Fatalf("delete disagreement on %d: %v vs %v", tid, errIx, errDst)
		}
	}
	for trial := 0; trial < 10; trial++ {
		q := fx.randQuery(t, 2, 8)
		got, _, err := fx.ix.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := dst.Search(q, m)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDistances(got, want) {
			t.Fatalf("trial %d after updates: %v != %v", trial, got, want)
		}
	}
}

func TestSIIOpenRoundTrip(t *testing.T) {
	pool := storage.NewPool(0, 10<<20)
	cat := table.NewCatalog()
	tblDev := storage.NewMemDevice()
	idxDev := storage.NewMemDevice()
	tbl, _ := table.New(storage.NewFile(pool, tblDev), cat)
	a, _ := cat.AddAttr("x", model.KindText)
	for i := 0; i < 30; i++ {
		tbl.Append(map[model.AttrID]model.Value{a: model.Text(words[i%len(words)])})
	}
	ix, err := Build(tbl, storage.NewFile(pool, idxDev), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix.Delete(3)
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	tbl2, err := table.Open(storage.NewFile(pool, tblDev), cat)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(storage.NewFile(pool, idxDev), tbl2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Entries() != 30 || ix2.Deleted() != 1 {
		t.Fatalf("reopened: entries=%d deleted=%d", ix2.Entries(), ix2.Deleted())
	}
	m := metric.Default()
	q := (&model.Query{K: 3}).TextTerm(a, "canon")
	got, _, err := ix2.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := ix.Search(q, m)
	if !sameDistances(got, want) {
		t.Fatalf("reopened results differ")
	}

	// The reopened index keeps accepting updates, including on an
	// attribute registered after the build.
	b, _ := cat.AddAttr("fresh", model.KindNumeric)
	tid, err := ix2.Insert(map[model.AttrID]model.Value{
		a: model.Text("canon"),
		b: model.Num(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix2.Search((&model.Query{K: 1}).NumTerm(b, 7), m)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].TID != tid || res[0].Dist != 0 {
		t.Fatalf("post-reopen insert not found: %v", res)
	}
	if err := ix2.Delete(tid); err != nil {
		t.Fatal(err)
	}
	if err := ix2.Delete(tid); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSIIFetchesEveryCandidate(t *testing.T) {
	// SII's weakness (the paper's motivation): it must fetch every tuple
	// defining a queried attribute, regardless of value.
	fx := newFixture(t, 200, 54)
	m := metric.Default()
	q := fx.randQuery(t, 3, 10)
	_, stats, err := fx.ix.Search(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TableAccesses != stats.Candidates {
		t.Fatalf("accesses %d != candidates %d", stats.TableAccesses, stats.Candidates)
	}
}
