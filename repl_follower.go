package iva

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/obs"
	"github.com/sparsewide/iva/internal/repl"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// Replication, follower side. A follower is a read-only replica that polls a
// primary for synced-prefix deltas and applies each one under the same
// crash-atomic discipline the store itself commits with: a durable redo
// journal first, then every non-superblock byte, fsync, read-back
// verification of every applied byte against the shipped CRCs, and only then
// the index superblock — the commit point — followed by the durable
// replication cursor. A crash at any boundary either replays the journal or
// re-polls; a verification failure never reaches the commit point, so the
// follower never serves bytes it could not verify.

// replSource is the follower's view of a primary: *repl.Client over HTTP in
// production, an in-process adapter in tests.
type replSource interface {
	Snapshot(ctx context.Context) (*repl.Delta, error)
	Deltas(ctx context.Context, epoch, from uint64) (*repl.Batch, error)
}

// FollowerOptions shape the follower's poll loop.
type FollowerOptions struct {
	// Poll is the idle poll interval once caught up (default 1s). Transport
	// errors back off exponentially with jitter on top of this.
	Poll time.Duration
	// RequestTimeout bounds each HTTP round trip (default 60s; snapshots of
	// large stores need headroom).
	RequestTimeout time.Duration
}

// followerState is the poll-loop state of a follower store.
type followerState struct {
	src  replSource
	poll time.Duration

	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	epoch      uint64
	gen        uint64
	primaryGen uint64
	lastErr    string
	lastOK     time.Time

	applied      *obs.Counter
	appliedBytes *obs.Counter
	failures     *obs.Counter
	resyncs      *obs.Counter
	pollErrs     *obs.Counter
}

// followerDurableState is the follower's persisted replication cursor: the
// epoch and generation of the last fully verified, committed apply.
type followerDurableState struct {
	Epoch uint64 `json:"epoch"`
	Gen   uint64 `json:"gen"`
}

func saveFollowerState(dir string, epoch, gen uint64) error {
	blob, _ := json.Marshal(followerDurableState{Epoch: epoch, Gen: gen})
	return writeFileAtomic(filepath.Join(dir, replFollowerStateFile), blob)
}

func loadFollowerState(dir string) (followerDurableState, error) {
	var st followerDurableState
	blob, err := os.ReadFile(filepath.Join(dir, replFollowerStateFile))
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(blob, &st); err != nil {
		return st, err
	}
	return st, nil
}

// OpenFollower opens (bootstrapping or crash-recovering as needed) a
// follower replica of the primary serving at primaryURL, and starts the
// background poll loop. The store is read-only — writes return ErrFollower —
// and never syncs locally: its durable state advances only by applying
// verified deltas. The primary doubles as the read-repair peer.
func OpenFollower(dir, primaryURL string, fopts FollowerOptions, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("iva: a follower requires a directory")
	}
	timeout := fopts.RequestTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	c := repl.NewClient(primaryURL, timeout)
	s, err := openFollower(dir, c, fopts, opts)
	if err != nil {
		return nil, err
	}
	s.SetRepairPeer(c)
	return s, nil
}

// openFollower is OpenFollower over any replSource (test seam).
func openFollower(dir string, src replSource, fopts FollowerOptions, opts Options) (*Store, error) {
	if fopts.Poll <= 0 {
		fopts.Poll = time.Second
	}
	statePath := filepath.Join(dir, replFollowerStateFile)
	_, catErr := os.Stat(filepath.Join(dir, catalogFileName))
	_, stErr := os.Stat(statePath)
	switch {
	case stErr == nil && catErr == nil:
		if err := RecoverFollowerJournal(dir); err != nil {
			return nil, err
		}
		// An unreadable journal drops the cursor; fall through to a fresh
		// bootstrap in that case.
		if _, err := os.Stat(statePath); err != nil {
			if err := bootstrapFollower(context.Background(), dir, src); err != nil {
				return nil, err
			}
		}
	case catErr == nil:
		return nil, fmt.Errorf("iva: %s holds a store that is not a follower (no %s); refusing to overwrite it", dir, replFollowerStateFile)
	default:
		if err := bootstrapFollower(context.Background(), dir, src); err != nil {
			return nil, err
		}
	}
	cur, err := loadFollowerState(dir)
	if err != nil {
		return nil, fmt.Errorf("iva: follower state: %w", err)
	}
	s, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	f := &followerState{
		src:   src,
		poll:  fopts.Poll,
		done:  make(chan struct{}),
		epoch: cur.Epoch,
		gen:   cur.Gen,
	}
	labels := s.opts.obsLabels
	f.applied = s.reg.Counter("iva_repl_applied_total", "Replication deltas applied and committed.", labels)
	f.appliedBytes = s.reg.Counter("iva_repl_applied_bytes_total", "Payload bytes of applied replication deltas.", labels)
	f.failures = s.reg.Counter("iva_repl_apply_failures_total", "Delta applies abandoned before commit (verification or I/O failure).", labels)
	f.resyncs = s.reg.Counter("iva_repl_resyncs_total", "Full snapshot resyncs taken after losing incremental continuity.", labels)
	f.pollErrs = s.reg.Counter("iva_repl_poll_errors_total", "Failed poll round trips to the primary.", labels)
	s.reg.GaugeFunc("iva_repl_generation", "Committed replication generation (primary: cut; follower: applied).", labels, func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.gen)
	})
	s.reg.GaugeFunc("iva_repl_lag_generations", "Generations the follower trails the primary by, as of the last successful poll.", labels, func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.primaryGen > f.gen {
			return float64(f.primaryGen - f.gen)
		}
		return 0
	})
	s.fol = f
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go s.runFollower(ctx)
	return s, nil
}

// stopFollower stops the poll loop and waits for it. Idempotent; no-op on
// non-followers.
func (s *Store) stopFollower() {
	f := s.fol
	if f == nil || f.cancel == nil {
		return
	}
	f.cancel()
	<-f.done
}

func (f *followerState) noteOK(primaryGen uint64) {
	f.mu.Lock()
	f.primaryGen = primaryGen
	f.lastErr = ""
	f.lastOK = time.Now()
	f.mu.Unlock()
}

func (f *followerState) noteErr(err error) {
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

func (f *followerState) status() ReplStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := ReplStatus{Role: "follower", Epoch: f.epoch, Gen: f.gen, PrimaryGen: f.primaryGen, LastError: f.lastErr}
	if f.primaryGen > f.gen {
		st.LagGenerations = f.primaryGen - f.gen
	}
	if !f.lastOK.IsZero() {
		st.LastApplyAge = time.Since(f.lastOK)
	}
	return st
}

// runFollower is the poll loop: apply whatever the primary has, resync on
// lost continuity, back off with jitter on transport errors, idle-poll when
// caught up.
func (s *Store) runFollower(ctx context.Context) {
	f := s.fol
	defer close(f.done)
	bo := storage.NewBackoff(200*time.Millisecond, 10*time.Second, 0)
	fails := 0
	for ctx.Err() == nil {
		f.mu.Lock()
		epoch, gen := f.epoch, f.gen
		f.mu.Unlock()
		batch, err := f.src.Deltas(ctx, epoch, gen)
		switch {
		case ctx.Err() != nil:
			return
		case err == nil:
			fails = 0
			f.noteOK(batch.PrimaryGen)
			ok := true
			for _, d := range batch.Deltas {
				if aerr := s.ApplyReplDelta(d); aerr != nil {
					f.failures.Inc()
					f.noteErr(aerr)
					// The apply never reached its commit point; whatever went
					// wrong (local I/O, non-contiguous delta), a snapshot
					// re-establishes a verified state.
					ok = s.followerResync(ctx)
					break
				}
			}
			if !ok {
				fails++
				_ = bo.Wait(ctx, min(fails, 8))
			} else if len(batch.Deltas) == 0 {
				sleepCtx(ctx, f.poll)
			}
		case errors.Is(err, repl.ErrResync):
			if s.followerResync(ctx) {
				fails = 0
			} else {
				fails++
				_ = bo.Wait(ctx, min(fails, 8))
			}
		default:
			f.pollErrs.Inc()
			f.noteErr(err)
			_ = bo.Wait(ctx, min(fails, 8))
			fails++
		}
	}
}

// sleepCtx sleeps d, returning early on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// followerResync fetches and applies a full snapshot.
func (s *Store) followerResync(ctx context.Context) bool {
	f := s.fol
	d, err := f.src.Snapshot(ctx)
	if err != nil {
		f.pollErrs.Inc()
		f.noteErr(err)
		return false
	}
	if err := s.ApplyReplDelta(d); err != nil {
		f.failures.Inc()
		f.noteErr(err)
		return false
	}
	f.resyncs.Inc()
	return true
}

// ApplyReplDelta applies one wire-verified delta to the follower with the
// store's crash-atomic commit discipline:
//
//  1. the encoded delta is journaled durably (redo on crash);
//  2. every table byte and every non-superblock index byte is written and
//     fsynced;
//  3. every applied byte is read back from the device — below the page
//     cache — and verified against the shipped CRCs;
//  4. only then the index superblock page (the commit point) is written,
//     fsynced and verified the same way;
//  5. the catalog and the durable replication cursor follow, the journal is
//     dropped, and the in-memory engines reopen over the new bytes.
//
// A failure anywhere before step 4 leaves the previous generation committed.
// Incremental deltas must continue the applied prefix exactly; Full deltas
// (snapshots) reset it.
func (s *Store) ApplyReplDelta(d *repl.Delta) error {
	f := s.fol
	if f == nil {
		return fmt.Errorf("iva: ApplyReplDelta on a non-follower store")
	}
	f.mu.Lock()
	epoch, gen := f.epoch, f.gen
	f.mu.Unlock()
	if !d.Full && (d.Epoch != epoch || d.Gen != gen+1) {
		return fmt.Errorf("iva: delta (epoch %d, gen %d) does not continue the applied prefix (epoch %d, gen %d)", d.Epoch, d.Gen, epoch, gen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The engine lock is held for the whole apply: concurrent searches see
	// either the previous generation or the new one, never bytes in flight.
	s.engineMu.Lock()
	defer s.engineMu.Unlock()

	if err := writeFileAtomic(filepath.Join(s.dir, replJournalFile), d.Encode()); err != nil {
		return fmt.Errorf("iva: apply delta: journal: %w", err)
	}
	var catBlob []byte
	var sbRanges []repl.Range
	for _, fd := range d.Files {
		switch fd.ID {
		case repl.FileTable, repl.FileIndex:
			file := s.tblFile
			if fd.ID == repl.FileIndex {
				file = s.ixFile
			}
			if d.Full {
				if err := file.Truncate(0); err != nil {
					return fmt.Errorf("iva: apply delta: %w", err)
				}
			}
			for _, r := range fd.Ranges {
				if fd.ID == repl.FileIndex && r.Off < replSuperblockSize {
					sbRanges = append(sbRanges, r)
					continue
				}
				if err := file.WriteAt(r.Data, r.Off); err != nil {
					return fmt.Errorf("iva: apply delta: %w", err)
				}
			}
		case repl.FileCatalog:
			if len(fd.Ranges) != 1 || fd.Ranges[0].Off != 0 || int64(len(fd.Ranges[0].Data)) != fd.Size {
				return fmt.Errorf("iva: apply delta: catalog must ship as one whole range")
			}
			catBlob = fd.Ranges[0].Data
		default:
			return fmt.Errorf("iva: apply delta: unknown file id %d", fd.ID)
		}
	}
	if err := s.tblFile.Sync(); err != nil {
		return fmt.Errorf("iva: apply delta: %w", err)
	}
	if err := s.ixFile.Sync(); err != nil {
		return fmt.Errorf("iva: apply delta: %w", err)
	}
	if err := s.replVerifyApplied(d, false); err != nil {
		return err
	}
	// Commit point: the superblock page goes last, after everything it
	// references verified on disk.
	for _, r := range sbRanges {
		if err := s.ixFile.WriteAt(r.Data, r.Off); err != nil {
			return fmt.Errorf("iva: apply delta: superblock: %w", err)
		}
	}
	if len(sbRanges) > 0 {
		if err := s.ixFile.Sync(); err != nil {
			return fmt.Errorf("iva: apply delta: superblock: %w", err)
		}
		if err := s.replVerifyApplied(d, true); err != nil {
			return err
		}
	}
	if catBlob != nil {
		if err := writeFileAtomic(filepath.Join(s.dir, catalogFileName), catBlob); err != nil {
			return fmt.Errorf("iva: apply delta: catalog: %w", err)
		}
	}
	for _, fd := range d.Files {
		switch fd.ID {
		case repl.FileTable:
			s.tblFile.SetSize(fd.Size)
		case repl.FileIndex:
			s.ixFile.SetSize(fd.Size)
		}
	}
	if err := saveFollowerState(s.dir, d.Epoch, d.Gen); err != nil {
		return fmt.Errorf("iva: apply delta: %w", err)
	}
	_ = os.Remove(filepath.Join(s.dir, replJournalFile))
	if err := s.reopenEnginesLocked(catBlob); err != nil {
		return fmt.Errorf("iva: apply delta: reopen: %w", err)
	}
	f.mu.Lock()
	f.epoch, f.gen = d.Epoch, d.Gen
	f.lastOK = time.Now()
	f.mu.Unlock()
	f.applied.Inc()
	f.appliedBytes.Add(d.Bytes())
	return nil
}

// replVerifyApplied re-reads every applied range straight from the device —
// below the page pool, so the bytes the next open will see — and checks them
// against the shipped CRCs. sbOnly selects the superblock-page ranges
// (verified separately, after the body).
func (s *Store) replVerifyApplied(d *repl.Delta, sbOnly bool) error {
	for _, fd := range d.Files {
		if fd.ID == repl.FileCatalog {
			continue
		}
		td := s.tracker(repl.FileName(fd.ID))
		if td == nil {
			return fmt.Errorf("iva: apply delta: no device for %s", repl.FileName(fd.ID))
		}
		for _, r := range fd.Ranges {
			isSB := fd.ID == repl.FileIndex && r.Off < replSuperblockSize
			if isSB != sbOnly {
				continue
			}
			buf := make([]byte, len(r.Data))
			if _, err := td.ReadAt(buf, r.Off); err != nil {
				return fmt.Errorf("iva: apply delta: read back %s: %w", repl.FileName(fd.ID), err)
			}
			if storage.Checksum(buf) != r.CRC {
				return fmt.Errorf("iva: apply delta: %s range [%d,+%d) failed read-back verification; refusing to commit", repl.FileName(fd.ID), r.Off, len(r.Data))
			}
		}
	}
	return nil
}

// reopenEnginesLocked rebuilds the in-memory engines over the just-applied
// bytes. Caller holds s.mu and s.engineMu.
func (s *Store) reopenEnginesLocked(catBlob []byte) error {
	if catBlob != nil {
		cat, err := table.DecodeCatalog(catBlob)
		if err != nil {
			return err
		}
		s.cat = cat
	}
	tbl, err := table.Open(s.tblFile, s.cat)
	if err != nil {
		return err
	}
	s.tbl = tbl
	ix, err := core.Open(s.ixFile, tbl, s.coreOptions())
	if err != nil {
		return err
	}
	s.ix = ix
	s.builtTuples = tbl.Live()
	return s.buildMetric()
}

// bootstrapFollower materializes a fresh follower directory from a full
// snapshot: files first (each range verified after write), durable cursor
// last, so a crash mid-bootstrap re-bootstraps cleanly.
func bootstrapFollower(ctx context.Context, dir string, src replSource) error {
	d, err := src.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("iva: bootstrap follower: %w", err)
	}
	if !d.Full {
		return fmt.Errorf("iva: bootstrap follower: snapshot not marked full")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := applyDeltaToDir(dir, d); err != nil {
		return fmt.Errorf("iva: bootstrap follower: %w", err)
	}
	return saveFollowerState(dir, d.Epoch, d.Gen)
}

// RecoverFollowerJournal redoes an interrupted delta apply left in the
// follower directory's journal, before the store opens. Redo is idempotent:
// the journal holds the complete verified delta, and replaying it lands on
// exactly the generation the apply was committing. An unreadable journal
// (possible only through disk corruption — the journal is written atomically)
// drops the follower cursor so the next open re-bootstraps from a snapshot.
func RecoverFollowerJournal(dir string) error {
	jp := filepath.Join(dir, replJournalFile)
	blob, err := os.ReadFile(jp)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	d, derr := repl.DecodeDelta(blob)
	if derr != nil {
		_ = os.Remove(jp)
		_ = os.Remove(filepath.Join(dir, replFollowerStateFile))
		return nil
	}
	if err := applyDeltaToDir(dir, d); err != nil {
		return fmt.Errorf("iva: recover follower journal: %w", err)
	}
	if err := saveFollowerState(dir, d.Epoch, d.Gen); err != nil {
		return err
	}
	return os.Remove(jp)
}

// applyDeltaToDir applies a delta to raw store files — the path used before
// a Store exists (bootstrap) or can exist (journal redo). Non-superblock
// bytes are written, fsynced and read back verified, then the superblock
// page, mirroring the live apply's ordering.
func applyDeltaToDir(dir string, d *repl.Delta) error {
	for _, fd := range d.Files {
		name := repl.FileName(fd.ID)
		if name == "" {
			return fmt.Errorf("unknown file id %d", fd.ID)
		}
		path := filepath.Join(dir, name)
		if fd.ID == repl.FileCatalog {
			if len(fd.Ranges) != 1 || fd.Ranges[0].Off != 0 {
				return fmt.Errorf("catalog must ship as one whole range")
			}
			if err := writeFileAtomic(path, fd.Ranges[0].Data); err != nil {
				return err
			}
			continue
		}
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		err = func() error {
			if d.Full {
				if err := f.Truncate(0); err != nil {
					return err
				}
			}
			// Body first, superblock page last, with an fsync + read-back
			// verification barrier between.
			for pass := 0; pass < 2; pass++ {
				wroteAny := false
				for _, r := range fd.Ranges {
					isSB := fd.ID == repl.FileIndex && r.Off < replSuperblockSize
					if (pass == 1) != isSB {
						continue
					}
					if _, err := f.WriteAt(r.Data, r.Off); err != nil {
						return err
					}
					wroteAny = true
				}
				if !wroteAny {
					continue
				}
				if err := f.Sync(); err != nil {
					return err
				}
				for _, r := range fd.Ranges {
					isSB := fd.ID == repl.FileIndex && r.Off < replSuperblockSize
					if (pass == 1) != isSB {
						continue
					}
					buf := make([]byte, len(r.Data))
					if _, err := f.ReadAt(buf, r.Off); err != nil {
						return err
					}
					if storage.Checksum(buf) != r.CRC {
						return fmt.Errorf("%s range [%d,+%d) failed read-back verification", name, r.Off, len(r.Data))
					}
				}
			}
			return nil
		}()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadReplState reads the durable replication role of a store directory
// without opening the store — `ivatool stats` uses it to report offline.
func ReadReplState(dir string) (ReplStatus, bool) {
	if st, err := loadReplPrimaryState(filepath.Join(dir, replPrimaryStateFile)); err == nil {
		return ReplStatus{Role: "primary", Epoch: st.Epoch, Gen: st.Gen}, true
	}
	if st, err := loadFollowerState(dir); err == nil {
		return ReplStatus{Role: "follower", Epoch: st.Epoch, Gen: st.Gen}, true
	}
	return ReplStatus{Role: "none"}, false
}
