// Package-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation (§V). Each drives the same engines and workloads as
// the ivabench harness; run `go run ./cmd/ivabench` for the full tables
// with modeled 2009-HDD times and paper-side comparisons.
//
// Reported custom metrics:
//
//	accesses/query   random table-file fetches (Fig. 8's y-axis)
//	filter-ms/query  measured wall time of the filtering step
//	refine-ms/query  measured wall time of the refining step
//	var-ms2          per-query wall-time variance (Fig. 11's stability)
//
// The default scale is 20,000 tuples; set IVA_BENCH_TUPLES to change it
// (the paper uses 779,019).
package iva_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/sparsewide/iva/internal/bench"
	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
)

func benchConfig() bench.Config {
	tuples := 20000
	if s := os.Getenv("IVA_BENCH_TUPLES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			tuples = v
		}
	}
	return bench.Config{Tuples: tuples, Seed: 42}
}

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	e, err := bench.SharedEnv(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func defaultMetric(b *testing.B, e *bench.Env) *metric.Metric {
	b.Helper()
	m, err := e.Metric("EQU", "L2")
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// searchIVA runs b.N iVA queries round-robin over qs, reporting accesses
// and the filter/refine wall split.
func searchIVA(b *testing.B, e *bench.Env, qs []*model.Query, m *metric.Metric) {
	b.Helper()
	var accesses int64
	var filter, refine time.Duration
	var totals []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := e.IVA.Search(qs[i%len(qs)], m)
		if err != nil {
			b.Fatal(err)
		}
		accesses += st.TableAccesses
		filter += st.FilterWall
		refine += st.RefineWall
		totals = append(totals, float64((st.FilterWall+st.RefineWall).Microseconds())/1000)
	}
	b.StopTimer()
	reportQueryMetrics(b, accesses, filter, refine, totals)
}

func searchSII(b *testing.B, e *bench.Env, qs []*model.Query, m *metric.Metric) {
	b.Helper()
	var accesses int64
	var filter, refine time.Duration
	var totals []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := e.SII.Search(qs[i%len(qs)], m)
		if err != nil {
			b.Fatal(err)
		}
		accesses += st.TableAccesses
		filter += st.FilterWall
		refine += st.RefineWall
		totals = append(totals, float64((st.FilterWall+st.RefineWall).Microseconds())/1000)
	}
	b.StopTimer()
	reportQueryMetrics(b, accesses, filter, refine, totals)
}

func reportQueryMetrics(b *testing.B, accesses int64, filter, refine time.Duration, totals []float64) {
	n := float64(b.N)
	b.ReportMetric(float64(accesses)/n, "accesses/query")
	b.ReportMetric(float64(filter.Microseconds())/1000/n, "filter-ms/query")
	b.ReportMetric(float64(refine.Microseconds())/1000/n, "refine-ms/query")
	mean := 0.0
	for _, t := range totals {
		mean += t
	}
	mean /= n
	v := 0.0
	for _, t := range totals {
		v += (t - mean) * (t - mean)
	}
	if len(totals) > 1 {
		b.ReportMetric(v/float64(len(totals)-1), "var-ms2")
	}
}

// BenchmarkFig8TableAccesses — Fig. 8: table-file accesses per query vs.
// defined values per query (see accesses/query), iVA vs. SII.
// BenchmarkFig9FilterRefine and BenchmarkFig10Overall share these runs: the
// filter/refine wall split and ns/op are reported on every sub-benchmark.
func BenchmarkFig8TableAccesses(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	for _, nv := range []int{1, 3, 5, 7, 9} {
		qs, _ := e.Queries(nv, 10, 16, nv)
		b.Run(fmt.Sprintf("values=%d/engine=iva", nv), func(b *testing.B) { searchIVA(b, e, qs, m) })
		b.Run(fmt.Sprintf("values=%d/engine=sii", nv), func(b *testing.B) { searchSII(b, e, qs, m) })
	}
}

// BenchmarkFig9FilterRefine — Fig. 9: filtering vs. refining time per query
// at the Table I defaults (see filter-ms/query and refine-ms/query).
func BenchmarkFig9FilterRefine(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	qs, _ := e.Queries(3, 10, 16, 9)
	b.Run("engine=iva", func(b *testing.B) { searchIVA(b, e, qs, m) })
	b.Run("engine=sii", func(b *testing.B) { searchSII(b, e, qs, m) })
}

// BenchmarkFig10Overall — Fig. 10: overall query time per query (ns/op).
func BenchmarkFig10Overall(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	for _, nv := range []int{1, 3, 5, 7, 9} {
		qs, _ := e.Queries(nv, 10, 16, nv)
		b.Run(fmt.Sprintf("values=%d/engine=iva", nv), func(b *testing.B) { searchIVA(b, e, qs, m) })
		b.Run(fmt.Sprintf("values=%d/engine=sii", nv), func(b *testing.B) { searchSII(b, e, qs, m) })
	}
}

// BenchmarkFig11Stability — Fig. 11: per-query time variance (var-ms2).
func BenchmarkFig11Stability(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	qs, _ := e.Queries(3, 10, 40, 11)
	b.Run("engine=iva", func(b *testing.B) { searchIVA(b, e, qs, m) })
	b.Run("engine=sii", func(b *testing.B) { searchSII(b, e, qs, m) })
}

// BenchmarkFig12K — Fig. 12: query time vs. k.
func BenchmarkFig12K(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	for _, k := range []int{5, 10, 15, 20, 25} {
		qs, _ := e.Queries(3, k, 16, 100+k)
		b.Run(fmt.Sprintf("k=%d/engine=iva", k), func(b *testing.B) { searchIVA(b, e, qs, m) })
		b.Run(fmt.Sprintf("k=%d/engine=sii", k), func(b *testing.B) { searchSII(b, e, qs, m) })
	}
}

// BenchmarkFig13Metrics — Fig. 13: the six metric/weight settings S1–S6.
func BenchmarkFig13Metrics(b *testing.B) {
	e := benchEnv(b)
	qs, _ := e.Queries(3, 10, 16, 13)
	for _, s := range []struct{ w, c string }{
		{"EQU", "L1"}, {"EQU", "L2"}, {"EQU", "Linf"},
		{"ITF", "L1"}, {"ITF", "L2"}, {"ITF", "Linf"},
	} {
		m, err := e.Metric(s.w, s.c)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("setting=%s+%s/engine=iva", s.w, s.c), func(b *testing.B) { searchIVA(b, e, qs, m) })
		b.Run(fmt.Sprintf("setting=%s+%s/engine=sii", s.w, s.c), func(b *testing.B) { searchSII(b, e, qs, m) })
	}
}

// BenchmarkFig14Alpha — Figs. 14/15: iVA query time and filter/refine split
// vs. relative vector length α (rebuilds the index per α).
func BenchmarkFig14Alpha(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	qs, _ := e.Queries(3, 10, 16, 14)
	for _, alpha := range []float64{0.10, 0.15, 0.20, 0.25, 0.30} {
		if err := e.RebuildIVA(core.Options{Alpha: alpha, N: e.Cfg.N}); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("alpha=%.0f%%", alpha*100), func(b *testing.B) { searchIVA(b, e, qs, m) })
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig16GramLength — Fig. 16: iVA query time vs. gram length n.
func BenchmarkFig16GramLength(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	qs, _ := e.Queries(3, 10, 16, 16)
	for _, n := range []int{2, 3, 4, 5} {
		if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: n}); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { searchIVA(b, e, qs, m) })
	}
	if err := e.RebuildIVA(core.Options{Alpha: e.Cfg.Alpha, N: e.Cfg.N}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig17Update — Fig. 17's primitives: the per-operation cost of
// one insertion and one deletion for each engine (the amortized curves over
// β come from ivabench -exp fig17, which adds the rebuild term).
func BenchmarkFig17Update(b *testing.B) {
	cfg := benchConfig()
	cfg.Tuples = min(cfg.Tuples, 8000) // private mutable envs per sub-bench

	b.Run("engine=iva", func(b *testing.B) {
		e, err := bench.NewEnv(cfg)
		if err != nil {
			b.Fatal(err)
		}
		live := e.IVA.LiveTIDs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.IVA.Insert(e.TupleValues(cfg.Tuples + i)); err != nil {
				b.Fatal(err)
			}
			if i < len(live) {
				if err := e.IVA.Delete(live[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine=sii", func(b *testing.B) {
		e, err := bench.NewEnv(cfg)
		if err != nil {
			b.Fatal(err)
		}
		live := e.IVA.LiveTIDs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.SII.Insert(e.TupleValues(cfg.Tuples + i)); err != nil {
				b.Fatal(err)
			}
			if i < len(live) {
				if err := e.SII.Delete(live[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine=dst", func(b *testing.B) {
		e, err := bench.NewEnv(cfg)
		if err != nil {
			b.Fatal(err)
		}
		live := e.IVA.LiveTIDs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.DST.Insert(e.TupleValues(cfg.Tuples + i)); err != nil {
				b.Fatal(err)
			}
			if i < len(live) {
				if err := e.DST.Delete(live[i]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkTableIDefaults — Table I: one query at every default setting
// through the three engines (DST included to show the ~constant scan cost).
func BenchmarkTableIDefaults(b *testing.B) {
	e := benchEnv(b)
	m := defaultMetric(b, e)
	qs, _ := e.Queries(3, 10, 16, 1)
	b.Run("engine=iva", func(b *testing.B) { searchIVA(b, e, qs, m) })
	b.Run("engine=sii", func(b *testing.B) { searchSII(b, e, qs, m) })
	b.Run("engine=dst", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.DST.Search(qs[i%len(qs)], m); err != nil {
				b.Fatal(err)
			}
		}
	})
}
