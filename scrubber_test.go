package iva

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"
)

// healthzStatus probes a scrubber's /healthz handler and returns the HTTP
// status code plus the decoded "status" field.
func healthzStatus(t *testing.T, sc *Scrubber) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	sc.ServeHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	var body struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, body.Status
}

// noThrottle keeps sweeps instantaneous and the background loop out of the
// way so SweepNow drives every assertion deterministically.
var noThrottle = ScrubberOptions{Interval: time.Hour, Throttle: -1}

// TestScrubberSeededCorruption is the telemetry plane's end-to-end story on a
// partitioned store: corrupt one shard's committed index on disk, watch
// queries observe DegradedSegments, confirm the scheduler sweeps that shard
// first (degradation-priority), walk /healthz through ok → degraded →
// damaged → ok across discovery and repair, check the iva_scrub_* metrics
// recorded the sweeps, and verify queries racing a sweep stay bit-identical
// to the pre-corruption baseline.
func TestScrubberSeededCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSharded(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 240; i++ {
		if _, err := s.Insert(map[string]Value{
			"Type":  Strings("Digital Camera"),
			"Price": Num(float64(100 + i%83)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	q := NewQuery(5).WhereNum("Price", 140).WhereText("Type", "Camera")
	want, _, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy phase: after one full rotation the verdict is ok.
	sc := s.StartScrubber(noThrottle)
	swept := map[int]bool{}
	for range s.shards {
		swept[sc.SweepNow()] = true
	}
	if len(swept) != len(s.shards) {
		t.Fatalf("full rotation swept shards %v, want all 3", swept)
	}
	if code, status := healthzStatus(t, sc); code != 200 || status != "ok" {
		t.Fatalf("healthy store: healthz %d %q, want 200 ok", code, status)
	}
	if sc.Units() == 0 {
		t.Fatal("sweeps verified zero units")
	}
	sc.Stop()

	// Flip one committed bit in shard 1's index while the store is closed.
	exts := s.shards[1].ix.VectorExtents()
	if len(exts) == 0 {
		t.Fatal("shard 1 has no committed vector extents")
	}
	off := exts[0].Offset + exts[0].Len/2
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "shard-1", "iva.idx")
	blob, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[off] ^= 0x08
	if err := os.WriteFile(idxPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err = OpenSharded(dir, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc = s.StartScrubber(noThrottle)
	defer sc.Stop()

	// Queries still answer exactly but observe the degraded segment.
	res, qs, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if qs.DegradedSegments < 1 {
		t.Fatalf("degraded search reported %d degraded segments", qs.DegradedSegments)
	}
	checkResults(t, "degraded", res, want)

	// Query-reported degradation downgrades health before any sweep runs...
	if code, status := healthzStatus(t, sc); code != 200 || status != "degraded" {
		t.Fatalf("pre-sweep healthz %d %q, want 200 degraded", code, status)
	}
	// ...and prioritizes the damaged shard for the next sweep.
	if got := sc.SweepNow(); got != 1 {
		t.Fatalf("scheduler swept shard %d first, want the degraded shard 1", got)
	}
	if code, status := healthzStatus(t, sc); code != 503 || status != "damaged" {
		t.Fatalf("post-sweep healthz %d %q, want 503 damaged", code, status)
	}

	// Queries racing a sweep stay bit-identical to the baseline.
	var wg sync.WaitGroup
	qerrs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 8; n++ {
				res, _, err := s.Search(q)
				if err != nil {
					qerrs <- err
					return
				}
				for i := range res {
					if res[i].TID != want[i].TID || res[i].Dist != want[i].Dist {
						qerrs <- fmt.Errorf("concurrent result %d diverged", i)
						return
					}
				}
			}
		}()
	}
	sc.SweepNow()
	wg.Wait()
	close(qerrs)
	for err := range qerrs {
		t.Fatal(err)
	}

	// Repair shard 1 from its clean table; the next sweeps restore ok.
	if err := s.shards[1].Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := s.shards[1].Sync(); err != nil {
		t.Fatal(err)
	}
	// A full rotation re-sweeps the repaired shard and gives the age gauge
	// a complete picture (it reports -1 until every shard has been swept).
	for range s.shards {
		sc.SweepNow()
	}
	for i := 0; i < len(s.shards); i++ {
		if h, _ := sc.Health(); h == HealthOK {
			break
		}
		sc.SweepNow()
	}
	if code, status := healthzStatus(t, sc); code != 200 || status != "ok" {
		t.Fatalf("post-repair healthz %d %q, want 200 ok", code, status)
	}
	res, qs, err = s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if qs.DegradedSegments != 0 {
		t.Fatalf("post-repair search still degraded: %d", qs.DegradedSegments)
	}
	checkResults(t, "post-repair", res, want)

	// The sweeps left their trail in the shared registry...
	text := s.MetricsText()
	for _, pat := range []string{
		`iva_scrub_sweeps_total [1-9]`,
		`iva_scrub_units_total [1-9]`,
		`iva_scrub_corrupt_found_total [1-9]`,
		`iva_scrub_errors_total 0`,
		`iva_scrub_sweeping_shard -1`,
		`iva_scrub_last_sweep_age_seconds \d`,
		`iva_health_state 0`,
	} {
		if ok, err := regexp.MatchString(pat, text); err != nil || !ok {
			t.Errorf("metrics missing %q (err=%v)", pat, err)
		}
	}
	// ...and the persisted snapshot agrees.
	snap, err := LoadScrubReport(filepath.Join(dir, "scrub-report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Health != "ok" || len(snap.Shards) != 3 {
		t.Fatalf("persisted snapshot health=%q shards=%d, want ok/3", snap.Health, len(snap.Shards))
	}
	if len(sc.History()) == 0 {
		t.Fatal("scrubber recorded no sweep history")
	}
}

func checkResults(t *testing.T, phase string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", phase, len(got), len(want))
	}
	for i := range got {
		if got[i].TID != want[i].TID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s result %d: got (%d, %g), want (%d, %g)",
				phase, i, got[i].TID, got[i].Dist, want[i].TID, want[i].Dist)
		}
	}
}

// TestScrubberSingleStore covers the single-store surface: SweepNow always
// picks shard 0, the throttle counter moves when a throttle is configured,
// and Stop is idempotent.
func TestScrubberSingleStore(t *testing.T) {
	s, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 300; i++ {
		if _, err := s.Insert(map[string]Value{"Price": Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	sc := s.StartScrubber(ScrubberOptions{
		Interval: time.Hour, Throttle: time.Microsecond, ThrottleEvery: 16,
	})
	if got := sc.SweepNow(); got != 0 {
		t.Fatalf("single store swept shard %d, want 0", got)
	}
	if sc.Units() < 300 {
		t.Fatalf("sweep verified %d units, want >= 300 (one per table record)", sc.Units())
	}
	if h, reason := sc.Health(); h != HealthOK {
		t.Fatalf("clean store health %v (%s), want ok", h, reason)
	}
	text := s.MetricsText()
	for _, pat := range []string{
		`iva_scrub_throttle_sleeps_total [1-9]`,
		`iva_scrub_throttle_seconds [0-9.e-]`,
	} {
		if ok, _ := regexp.MatchString(pat, text); !ok {
			t.Errorf("metrics missing %q", pat)
		}
	}
	hist := sc.History()
	if len(hist) != 1 || hist[0].Shard != 0 || hist[0].Report == nil || !hist[0].Report.Clean() {
		t.Fatalf("history after one clean sweep: %+v", hist)
	}
	sc.Stop()
	sc.Stop() // idempotent
}

// TestScrubberSoak runs the background loop for real — tight interval,
// concurrent writers and readers — and is meant for `go test -race` in the
// nightly job. Gated by IVA_SCRUB_SOAK (a duration, e.g. "60s").
func TestScrubberSoak(t *testing.T) {
	env := os.Getenv("IVA_SCRUB_SOAK")
	if env == "" {
		t.Skip("set IVA_SCRUB_SOAK=<duration> to run the scrubber soak")
	}
	dur, err := time.ParseDuration(env)
	if err != nil {
		dur = 2 * time.Second
	}
	s, err := CreateSharded(t.TempDir(), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 120; i++ {
		if _, err := s.Insert(map[string]Value{"Price": Num(float64(i % 53))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	sc := s.StartScrubber(ScrubberOptions{Interval: 30 * time.Millisecond, ShardPause: time.Millisecond})
	defer sc.Stop()

	deadline := time.Now().Add(dur)
	q := NewQuery(5).WhereNum("Price", 25)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, _, err := s.Search(q); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			if _, err := s.Insert(map[string]Value{"Price": Num(float64(i % 53))}); err != nil {
				errs <- err
				return
			}
			if i%50 == 0 {
				if err := s.Sync(); err != nil {
					errs <- err
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(sc.History()) == 0 {
		t.Fatal("soak completed with zero background sweeps")
	}
	if h, reason := sc.Health(); h != HealthOK {
		t.Fatalf("soak left health %v (%s)", h, reason)
	}
}
